// Package repro is a from-scratch Go reproduction of "Tarantula: A Vector
// Extension to the Alpha Architecture" (Espasa et al., ISCA 2002): a
// functional implementation of the vector ISA plus a whole-chip timing model
// (EV8-class core, Vbox vector engine, banked L2 with the conflict-free
// address reordering scheme, CR box, PUMP, MAF and P-bit coherency, and a
// RAMBUS memory controller), the paper's Table 2 workloads hand-coded in
// vector and scalar form, and harnesses regenerating every table and figure
// of the evaluation.
//
// Entry points:
//
//   - cmd/tartables — regenerate Tables 1/3/4 and Figures 6-9
//   - cmd/tarsim    — run one benchmark on one machine
//   - cmd/tarasm    — disassemble kernel traces
//   - examples/     — runnable API walkthroughs
//
// The top-level benchmarks in bench_test.go map one-to-one onto the paper's
// tables and figures; see DESIGN.md and EXPERIMENTS.md.
package repro
