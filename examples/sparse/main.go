// Frequency-scaling study on sparse matrix-vector product: the Figure 8
// observation that gather-bound, memory-latency-sensitive codes stop
// scaling with clock frequency ("sparsemxv barely reaches speedups of 1.6
// and 1.8 when scaling the frequency by 2.2X and 5X").
//
//	go run ./examples/sparse [-scale test|bench]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	scaleFlag := flag.String("scale", "test", "input scale: test or bench")
	flag.Parse()
	scale := workloads.Test
	if *scaleFlag == "bench" {
		scale = workloads.Bench
	}

	for _, name := range []string{"sparsemxv", "dgemm"} {
		b, err := workloads.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s:\n", name)
		var baseWall float64
		for _, cfg := range []*sim.Config{sim.T(), sim.T4(), sim.T10()} {
			res, err := b.Run(cfg, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			wall := float64(res.Stats.Cycles) / cfg.CPUGHz // ns
			if baseWall == 0 {
				baseWall = wall
			}
			fmt.Printf("  %-5s %6.2f GHz  %12d cycles  speedup vs T: %5.2fx\n",
				cfg.Name, cfg.CPUGHz, res.Stats.Cycles, baseWall/wall)
		}
	}
	fmt.Println("\ndgemm (cache-resident) rides the clock; sparsemxv is pinned by")
	fmt.Println("gather latency and the processor-to-RAMBUS ratio growing with")
	fmt.Println("frequency, the Figure 8 contrast.")
}
