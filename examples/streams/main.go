// STREAMS bandwidth on all the Table 3 machines: the memory-system
// comparison behind Table 4. Demonstrates running a registered benchmark
// kernel on multiple configurations through the public workload API.
//
//	go run ./examples/streams [-scale test|bench]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	scaleFlag := flag.String("scale", "test", "input scale: test or bench")
	flag.Parse()
	scale := workloads.Test
	if *scaleFlag == "bench" {
		scale = workloads.Bench
	}

	configs := []*sim.Config{sim.EV8(), sim.EV8Plus(), sim.T(), sim.T4()}
	kernels := []string{"streams_copy", "streams_scale", "streams_add", "streams_triadd"}

	fmt.Printf("%-16s", "Kernel")
	for _, c := range configs {
		fmt.Printf("%12s", c.Name)
	}
	fmt.Println("   (STREAMS MB/s)")
	for _, name := range kernels {
		b, err := workloads.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-16s", name)
		for _, cfg := range configs {
			res, err := b.Run(cfg, scale)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			res.Stats.UsefulBytes = b.UsefulBytes(scale)
			fmt.Printf("%12.0f", res.Stats.BandwidthMBs(cfg.CPUGHz))
		}
		fmt.Println()
	}
	fmt.Println("\nEV8+ (Tarantula's memory system, no vector unit) helps streaming,")
	fmt.Println("but only the vector machine reaches the controller's service rate:")
	fmt.Println("one vector load keeps 128 cache lines in flight where the scalar")
	fmt.Println("core is capped at 64 outstanding misses (§6).")
}
