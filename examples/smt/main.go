// Simultaneous multithreading on the vector machine: §3.3's design
// constraint ("to avoid excessive burden onto the operating system, the
// Vbox was also multithreaded") exercised. One flop-bound thread (dgemm
// inner product style) shares the chip with a latency-bound gather thread —
// the combination the SMT literature [18,19] shows profits most.
//
//	go run ./examples/smt
package main

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vasm"
)

// flopThread: long dependent-free chains of vector FP work.
func flopThread(b *vasm.Builder) {
	b.Loop(isa.R(16), 400, func(int) {
		for r := 0; r < 4; r++ {
			b.VV(isa.OpVMULT, isa.V(r), isa.V(8+r), isa.V(12+r))
			b.VV(isa.OpVADDT, isa.V(4+r), isa.V(4+r), isa.V(r))
		}
	})
	b.Halt()
}

// gatherThread: pointer-chasing gathers, mostly waiting on the L2.
func gatherThread(b *vasm.Builder) {
	base := uint64(1 << 20)
	rng := uint64(12345)
	for i := 0; i < isa.VLMax; i++ {
		rng = rng*6364136223846793005 + 1
		b.M.V[1][i] = (rng >> 16) % (1 << 18) &^ 7
		b.M.Mem.StoreQ(base+b.M.V[1][i], rng)
	}
	b.Li(isa.R(1), int64(base))
	b.Loop(isa.R(16), 400, func(int) {
		b.VGath(isa.V(2), isa.V(1), isa.R(1))
		b.VV(isa.OpVXOR, isa.V(1), isa.V(1), isa.V(2)) // serialise: next indices depend on data
		b.VS(isa.OpVSAND, isa.V(1), isa.V(1), isa.R(2))
	})
	b.Halt()
}

func main() {
	cfg := sim.T()

	s1, _ := sim.Run(cfg, func(b *vasm.Builder) { b.Li(isa.R(2), (1<<18)-8); flopThread(b) })
	s2, _ := sim.Run(cfg, func(b *vasm.Builder) { b.Li(isa.R(2), (1<<18)-8); gatherThread(b) })
	smt, _ := sim.RunSMT(cfg, []vasm.Kernel{
		func(b *vasm.Builder) { b.Li(isa.R(2), (1<<18)-8); flopThread(b) },
		func(b *vasm.Builder) { b.Li(isa.R(2), (1<<18)-8); gatherThread(b) },
	})

	serial := s1.Cycles + s2.Cycles
	fmt.Printf("flop thread alone:    %8d cycles\n", s1.Cycles)
	fmt.Printf("gather thread alone:  %8d cycles\n", s2.Cycles)
	fmt.Printf("both, serially:       %8d cycles\n", serial)
	fmt.Printf("both, SMT:            %8d cycles\n", smt.Cycles)
	fmt.Printf("throughput gain:      %.2fx\n", float64(serial)/float64(smt.Cycles))
	fmt.Println("\nThe gather thread's L2 round trips leave issue ports idle that the")
	fmt.Println("flop thread fills — the reason the Vbox carries per-thread rename")
	fmt.Println("state (and a much larger register file) rather than being single-")
	fmt.Println("threaded (§3.3).")
}
