// Tracing: run one benchmark with the cycle-interval sampler armed and
// export the series as Chrome trace-event JSON. Open the output in
// chrome://tracing or https://ui.perfetto.dev — IPC, memory bandwidth and
// per-component occupancy (zbox/l2/vbox/core) appear as counter tracks
// over simulated time.
//
//	go run ./examples/tracing            # writes dgemm_T.trace.json
//	go run ./examples/tracing fft EV8    # any benchmark/config pair
package main

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	bench, config := "dgemm", "T"
	if len(os.Args) > 2 {
		bench, config = os.Args[1], os.Args[2]
	}
	b, err := workloads.Get(bench)
	check(err)
	base := sim.ByName(config)
	if base == nil {
		check(fmt.Errorf("unknown config %q (have %v)", config, sim.Names()))
	}

	// Sampling is an unexported knob outside the config's content
	// identity: arm it on a copy, and the run's counters stay
	// bit-identical to an unsampled run.
	cfg := *base
	cfg.EnableSampling(500, 0)
	res, err := b.Run(&cfg, workloads.Test)
	check(err)

	name := fmt.Sprintf("%s_%s.trace.json", bench, config)
	f, err := os.Create(name)
	check(err)
	defer f.Close()
	check(metrics.WriteChromeTrace(f, fmt.Sprintf("%s on %s", bench, config), cfg.CPUGHz, res.Series))

	fmt.Printf("%s on %s: %d cycles, %d sample points (every %d cycles)\n",
		bench, config, res.Stats.Cycles, len(res.Series.Points), res.Series.Every)
	fmt.Printf("wrote %s — open it in chrome://tracing or https://ui.perfetto.dev\n", name)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracing:", err)
		os.Exit(1)
	}
}
