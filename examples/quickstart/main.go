// Quickstart: hand-assemble a DAXPY kernel in the Tarantula vector ISA, run
// it on the simulated chip, and print the performance counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vasm"
)

func main() {
	const n = 64 * 1024 // elements
	const a = 3.0

	// A kernel is a Go function that drives the macro-assembler. It runs
	// functionally while being recorded, so after simulation the memory
	// image holds the real results.
	kernel := func(b *vasm.Builder) {
		x := b.AllocF64(n, 0)
		y := b.AllocF64(n, 0)
		for i := 0; i < n; i++ { // host-side data initialisation (untimed)
			b.M.Mem.StoreQ(x+uint64(i)*8, f64bits(float64(i)))
			b.M.Mem.StoreQ(y+uint64(i)*8, f64bits(1.0))
		}

		rx, ry, rs := isa.R(1), isa.R(2), isa.R(9)
		fa := isa.F(1)
		b.M.WriteF(1, a)
		b.Li(rx, int64(x))
		b.Li(ry, int64(y))
		b.SetVSImm(rs, 8) // unit stride over quadwords

		b.Loop(isa.R(16), n/isa.VLMax, func(int) {
			b.VPref(rx, 8*isa.VLMax*8) // software prefetch ahead
			b.VLdQ(isa.V(0), rx, 0)    // x chunk
			b.VLdQ(isa.V(1), ry, 0)    // y chunk
			b.VS(isa.OpVSMULT, isa.V(0), isa.V(0), fa)
			b.VV(isa.OpVADDT, isa.V(1), isa.V(1), isa.V(0))
			b.VStQ(isa.V(1), ry, 0)
			b.AddImm(rx, rx, isa.VLMax*8)
			b.AddImm(ry, ry, isa.VLMax*8)
		})
		b.Halt()
	}

	cfg := sim.T() // the Tarantula configuration of Table 3
	st, m := sim.Run(cfg, kernel)

	// The functional machine computed the actual values.
	yBase := uint64(1<<20) + uint64(n)*8 // second allocation
	_ = yBase
	got := f64from(m.Mem.LoadQ(m.R[2] - 8)) // last y element written
	fmt.Printf("y[n-1] = %.1f (want %.1f)\n", got, 1.0+a*float64(n-1))

	opc, fpc, mpc, other := st.OPC()
	fmt.Printf("cycles: %d\n", st.Cycles)
	fmt.Printf("sustained OPC: %.2f  (flops %.2f, memory %.2f, other %.2f)\n",
		opc, fpc, mpc, other)
	fmt.Printf("vector instructions retired: %d\n", st.VectorIns)
	fmt.Printf("L2 pump slices: %d (stride-1 double-bandwidth mode)\n", st.L2PumpSlices)
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }
func f64from(b uint64) float64 { return math.Float64frombits(b) }
