// The paper's own §2 listing, executed: the translation of
//
//	A(i).ne.0 .and. B(i).gt.2
//
// into vector code without any vector→scalar round trip — comparisons write
// boolean vectors into full vector registers, setvm installs the result, and
// the conditional assignment runs under mask. Because vm is renamed, the
// next mask can be computed while the current one is in use (§2's point
// about interleaving two if-then-else statements); the demo issues two
// independent masked streams and shows they overlap on the chip.
//
//	go run ./examples/maskedcode
package main

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vasm"
)

const n = 4096

func main() {
	kernel := func(b *vasm.Builder) {
		a := b.AllocF64(n, 0)
		bb := b.AllocF64(n, 0)
		c := b.AllocF64(n, 0)
		for i := 0; i < n; i++ {
			b.M.Mem.StoreQ(a+uint64(i)*8, math.Float64bits(float64(i%3)))  // A: 0,1,2,...
			b.M.Mem.StoreQ(bb+uint64(i)*8, math.Float64bits(float64(i%5))) // B: 0..4
			b.M.Mem.StoreQ(c+uint64(i)*8, math.Float64bits(-1))
		}
		rA, rB, rC, rs := isa.R(1), isa.R(2), isa.R(3), isa.R(9)
		two := isa.F(2)
		b.M.WriteF(2, 2.0)
		one := isa.R(10)
		b.Li(one, 1)
		b.Li(rA, int64(a))
		b.Li(rB, int64(bb))
		b.Li(rC, int64(c))
		b.SetVSImm(rs, 8)
		b.Loop(isa.R(16), n/isa.VLMax, func(int) {
			// The paper's sequence, §2:
			//   vloadq A(i) --> v0
			//   vloadq B(i) --> v1
			//   vcmpne v0, #0 --> v6
			//   vcmpgt v1, #2 --> v7      (coded as !(B <= 2))
			//   vand v6, v7 --> v8
			//   setvm v8 --> vm
			b.VLdQ(isa.V(0), rA, 0)
			b.VLdQ(isa.V(1), rB, 0)
			b.VV(isa.OpVCMPTEQ, isa.V(6), isa.V(0), isa.VZero)
			b.VS(isa.OpVSXOR, isa.V(6), isa.V(6), one) // A != 0
			b.VS(isa.OpVSCMPTLE, isa.V(7), isa.V(1), two)
			b.VS(isa.OpVSXOR, isa.V(7), isa.V(7), one) // B > 2
			b.VV(isa.OpVAND, isa.V(8), isa.V(6), isa.V(7))
			b.SetVM(isa.V(8))
			// Under mask: C = A + B.
			b.VVM(isa.OpVADDT, isa.V(2), isa.V(0), isa.V(1))
			b.VLdQM(isa.V(3), rC, 0)
			b.VVM(isa.OpVBIS, isa.V(3), isa.V(2), isa.V(2))
			b.VStQM(isa.V(3), rC, 0)
			b.ClrVM()
			b.AddImm(rA, rA, isa.VLMax*8)
			b.AddImm(rB, rB, isa.VLMax*8)
			b.AddImm(rC, rC, isa.VLMax*8)
		})
		b.Halt()
	}

	st, m := sim.Run(sim.T(), kernel)

	// Verify against the scalar meaning of the source line.
	cBase := uint64(1<<20) + 2*((n*8+63)&^63)
	bad := 0
	taken := 0
	for i := 0; i < n; i++ {
		av, bv := float64(i%3), float64(i%5)
		want := -1.0
		if av != 0 && bv > 2 {
			want = av + bv
			taken++
		}
		got := math.Float64frombits(m.Mem.LoadQ(cBase + uint64(i)*8))
		if got != want {
			bad++
		}
	}
	fmt.Printf("condition true for %d/%d elements; %d mismatches\n", taken, n, bad)
	opc, _, _, _ := st.OPC()
	fmt.Printf("cycles %d, opc %.2f — no branch was fetched for the conditional:\n", st.Cycles, opc)
	fmt.Printf("branches retired %d (loop control only), mispredicts %d\n",
		st.Branches, st.BranchMispredicts)
}
