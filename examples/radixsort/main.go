// Gather/scatter showcase: the ccradix radix sort with the PUMP (stride-1
// double-bandwidth mode) on and off — a single-benchmark view of Figure 9 —
// plus the EV8 baseline ("a speedup of almost 3X over EV8 and 15 sustained
// operations per cycle", §1).
//
//	go run ./examples/radixsort [-scale test|bench]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	scaleFlag := flag.String("scale", "test", "input scale: test or bench")
	flag.Parse()
	scale := workloads.Test
	if *scaleFlag == "bench" {
		scale = workloads.Bench
	}

	b, err := workloads.Get("ccradix")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	run := func(cfg *sim.Config) *workloads.Result {
		res, err := b.Run(cfg, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "functional check failed:", err)
			os.Exit(1)
		}
		opc, _, mpc, _ := res.OPC()
		fmt.Printf("%-12s %10d cycles   opc %6.2f (memory %5.2f)   CR slices %d\n",
			cfg.Name, res.Stats.Cycles, opc, mpc, res.Stats.CRSlices)
		return res
	}

	fmt.Println("ccradix — tiled integer radix sort (sorted output verified)")
	base := run(sim.EV8())
	tar := run(sim.T())
	nopump := run(sim.NoPump(sim.T()))

	fmt.Printf("\nspeedup over EV8:            %.2fx (paper: ≈3x)\n",
		float64(base.Stats.Cycles)/float64(tar.Stats.Cycles))
	fmt.Printf("relative perf without PUMP:  %.2f  (Figure 9 ablation)\n",
		float64(tar.Stats.Cycles)/float64(nopump.Stats.Cycles))
}
