// The benchmark harness of deliverable (d): one top-level benchmark per
// table and figure of the paper's evaluation section. Each reports the
// quantity the paper plots as a custom metric (MB/s, operations/cycle,
// speedup), so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. Set REPRO_BENCH_SCALE=test for a quick
// pass or =full for inputs closer to the paper's (slow).
package repro

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/tables"
	"repro/internal/workloads"
)

func benchScale() workloads.Scale {
	switch os.Getenv("REPRO_BENCH_SCALE") {
	case "test":
		return workloads.Test
	case "full":
		return workloads.Full
	}
	return workloads.Bench
}

// benchParallel reads REPRO_BENCH_PARALLEL (default GOMAXPROCS, 1 =
// sequential) — the worker-pool width BenchmarkSweepAll hands the Runner.
func benchParallel() int {
	if v, err := strconv.Atoi(os.Getenv("REPRO_BENCH_PARALLEL")); err == nil && v > 0 {
		return v
	}
	return runtime.GOMAXPROCS(0)
}

// runOn executes a benchmark on one machine once per b.N iteration and
// returns the last result.
func runOn(b *testing.B, name string, cfg *sim.Config) *workloads.Result {
	b.Helper()
	bench, err := workloads.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	var res *workloads.Result
	for i := 0; i < b.N; i++ {
		res, err = bench.Run(cfg, benchScale())
		if err != nil {
			b.Fatalf("functional check failed: %v", err)
		}
	}
	return res
}

// ---- Table 1 ----

// BenchmarkTable1_PowerModel evaluates the §5 analytical power/area model
// and reports the headline Gflops/Watt advantage (paper: 3.4X).
func BenchmarkTable1_PowerModel(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = power.Ratio(power.Paper2006())
	}
	b.ReportMetric(ratio, "gflops/W-ratio")
	b.ReportMetric(power.Model(power.Tarantula(), power.Paper2006()).GFPerWatt, "tarantula-gflops/W")
}

// ---- Table 4 ----

// BenchmarkTable4 reruns the six bandwidth microkernels on Tarantula and
// reports STREAMS-convention MB/s (paper column "Streams BW") and raw
// controller MB/s including directory traffic (column "Raw BW").
func BenchmarkTable4(b *testing.B) {
	for _, name := range []string{
		"streams_copy", "streams_scale", "streams_add", "streams_triadd",
		"rndcopy", "rndmemscale",
	} {
		b.Run(name, func(b *testing.B) {
			cfg := sim.T()
			res := runOn(b, name, cfg)
			bench, _ := workloads.Get(name)
			res.Stats.UsefulBytes = bench.UsefulBytes(benchScale())
			b.ReportMetric(res.Stats.BandwidthMBs(cfg.CPUGHz), "streams-MB/s")
			b.ReportMetric(res.Stats.RawBandwidthMBs(cfg.CPUGHz), "raw-MB/s")
		})
	}
}

// ---- Figure 6 ----

// BenchmarkFig6 reruns every evaluation benchmark on Tarantula and reports
// sustained operations per cycle with the paper's FPC/MPC/Other split.
func BenchmarkFig6(b *testing.B) {
	for _, name := range workloads.Figure6Set() {
		b.Run(name, func(b *testing.B) {
			res := runOn(b, name, sim.T())
			opc, fpc, mpc, other := res.OPC()
			b.ReportMetric(opc, "opc")
			b.ReportMetric(fpc, "fpc")
			b.ReportMetric(mpc, "mpc")
			b.ReportMetric(other, "other")
		})
	}
}

// ---- Figure 7 ----

// BenchmarkFig7 reruns each benchmark on EV8, EV8+ and Tarantula, reporting
// the speedups over EV8 (paper: typically ≥5X for T, little for EV8+).
func BenchmarkFig7(b *testing.B) {
	for _, name := range workloads.Figure6Set() {
		b.Run(name, func(b *testing.B) {
			base := runOn(b, name, sim.EV8())
			plus := runOn(b, name, sim.EV8Plus())
			tar := runOn(b, name, sim.T())
			b.ReportMetric(float64(base.Stats.Cycles)/float64(plus.Stats.Cycles), "ev8plus-speedup")
			b.ReportMetric(float64(base.Stats.Cycles)/float64(tar.Stats.Cycles), "t-speedup")
		})
	}
}

// ---- Figure 8 ----

// BenchmarkFig8 reruns each benchmark on T, T4 and T10 and reports the
// wall-clock speedups of the faster clocks (frequency ratios 2.25X / 5X;
// memory-bound codes scale far below them).
func BenchmarkFig8(b *testing.B) {
	for _, name := range workloads.Figure6Set() {
		b.Run(name, func(b *testing.B) {
			t := runOn(b, name, sim.T())
			t4 := runOn(b, name, sim.T4())
			t10 := runOn(b, name, sim.T10())
			wall := func(r *workloads.Result, ghz float64) float64 {
				return float64(r.Stats.Cycles) / ghz
			}
			b.ReportMetric(wall(t, 2.13)/wall(t4, 4.8), "t4-speedup")
			b.ReportMetric(wall(t, 2.13)/wall(t10, 10.6), "t10-speedup")
		})
	}
}

// ---- Figure 9 ----

// BenchmarkFig9 disables the PUMP (stride-1 double-bandwidth mode) and
// reports each benchmark's relative performance (paper: untiled and
// stride-1-hungry codes suffer most; MAF pressure grows 8X).
func BenchmarkFig9(b *testing.B) {
	for _, name := range workloads.Figure6Set() {
		b.Run(name, func(b *testing.B) {
			t := runOn(b, name, sim.T())
			np := runOn(b, name, sim.NoPump(sim.T()))
			b.ReportMetric(float64(t.Stats.Cycles)/float64(np.Stats.Cycles), "rel-perf")
		})
	}
}

// ---- Whole-sweep wall clock ----

// BenchmarkSweepAll times the complete evaluation (Tables 2 and 4, Figures
// 6–9) through the memoising Runner — the same work `tartables -all` does.
// Every iteration uses a fresh Runner so nothing carries over. Compare
// REPRO_BENCH_PARALLEL=1 against the default (GOMAXPROCS) to measure the
// worker-pool speedup on a multi-core host.
func BenchmarkSweepAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := tables.NewRunner(benchScale())
		r.Quiet = true
		r.Parallel = benchParallel()
		if r.Parallel > 1 {
			r.Prewarm()
		}
		if _, err := r.Table2(); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Table4(); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Fig6(); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Fig7(); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Fig8(); err != nil {
			b.Fatal(err)
		}
		if _, err := r.Fig9(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchParallel()), "workers")
}

// ---- Table 3 (configuration self-check, not a measurement) ----

// BenchmarkTable3_Configs exercises the configuration constructors (the
// "experiment" is that all five machines assemble and run a trivial kernel).
func BenchmarkTable3_Configs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = tables.Table3()
	}
}

// ---- Table 2 ----

// BenchmarkTable2 measures the vectorisation percentage of every benchmark
// on Tarantula (Table 2's "Vect. %" column).
func BenchmarkTable2(b *testing.B) {
	for _, name := range workloads.Figure6Set() {
		b.Run(name, func(b *testing.B) {
			res := runOn(b, name, sim.T())
			b.ReportMetric(res.Stats.VectorPct(), "vect-%")
		})
	}
}
