// Ablation benchmarks for the design choices DESIGN.md calls out: structure
// sizes and policies the paper fixes without sweeping. Each reports cycles
// (lower is better) so the sensitivity of the headline results to each
// choice is visible:
//
//	go test -bench=Ablation -benchtime=1x
package repro

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func ablRun(b *testing.B, bench string, cfg *sim.Config) uint64 {
	b.Helper()
	w, err := workloads.Get(bench)
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := w.Run(cfg, workloads.Test)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Stats.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
	return cycles
}

// BenchmarkAblation_MAFSize sweeps the miss-address-file depth on the
// memory-bound random-update microkernel. The paper fixes 64 outstanding
// misses; the sweep shows where that sits on the curve (vector codes need
// the misses in flight that scalar EV8 cannot generate, §6).
func BenchmarkAblation_MAFSize(b *testing.B) {
	for _, size := range []int{8, 16, 32, 64, 128} {
		b.Run(fmt.Sprintf("maf=%d", size), func(b *testing.B) {
			cfg := sim.T()
			cfg.L2.MAFSize = size
			ablRun(b, "rndmemscale", cfg)
		})
	}
}

// BenchmarkAblation_MemInsts sweeps how many vector memory instructions the
// Vbox keeps in its memory pipeline at once (the load/store queue of §3.2).
func BenchmarkAblation_MemInsts(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("meminsts=%d", n), func(b *testing.B) {
			cfg := sim.T()
			cfg.Vbox.MemInsts = n
			ablRun(b, "rndcopy", cfg)
		})
	}
}

// BenchmarkAblation_SliceQueue sweeps the L2's vector input queue depth.
func BenchmarkAblation_SliceQueue(b *testing.B) {
	for _, n := range []int{2, 4, 16, 64} {
		b.Run(fmt.Sprintf("sliceq=%d", n), func(b *testing.B) {
			cfg := sim.T()
			cfg.L2.SliceQueue = n
			ablRun(b, "rndcopy", cfg)
		})
	}
}

// BenchmarkAblation_TLBRefill compares the two PALcode refill strategies of
// §3.4 — (1) refill only the missing lanes, (2) peek at vs and refill every
// mapping the instruction needs — on a gather whose pages miss constantly.
func BenchmarkAblation_TLBRefill(b *testing.B) {
	for _, all := range []bool{false, true} {
		name := "strategy1-lanes"
		if all {
			name = "strategy2-all"
		}
		b.Run(name, func(b *testing.B) {
			cfg := sim.T()
			cfg.Vbox.TLBRefillAll = all
			cfg.Vbox.TLBEntries = 4 // tiny TLBs so refills dominate
			ablRun(b, "moldyn", cfg)
		})
	}
}

// BenchmarkAblation_FMA is the §5 extension study on a real kernel: the
// register-tiled dgemm with mul+add pairs versus VSFMAT.
func BenchmarkAblation_FMA(b *testing.B) {
	var base, fma uint64
	b.Run("mul-add", func(b *testing.B) { base = ablRun(b, "dgemm", sim.T()) })
	b.Run("fmac", func(b *testing.B) { fma = ablRun(b, "dgemm_fma", sim.T()) })
	if base > 0 && fma > 0 {
		b.Logf("FMAC speedup on dgemm: %.2fx (paper §5: ≈2x at peak)", float64(base)/float64(fma))
	}
}

// BenchmarkAblation_ReplayThreshold sweeps how many replays a sleeping slice
// tolerates before the MAF enters panic mode (§3.4's livelock guard).
func BenchmarkAblation_ReplayThreshold(b *testing.B) {
	for _, thr := range []int{1, 4, 8, 32} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			cfg := sim.T()
			cfg.L2.ReplayThreshold = thr
			ablRun(b, "rndmemscale", cfg)
		})
	}
}

// BenchmarkAblation_WriteBuffer sweeps the EV8 write-buffer depth, which
// throttles the scalar store stream and every DrainM barrier.
func BenchmarkAblation_WriteBuffer(b *testing.B) {
	for _, n := range []int{4, 8, 32, 64} {
		b.Run(fmt.Sprintf("wb=%d", n), func(b *testing.B) {
			cfg := sim.EV8()
			cfg.Core.WriteBuffer = n
			ablRun(b, "streams_copy", cfg)
		})
	}
}

// BenchmarkAblation_VRegFile sweeps the physical vector register file. The
// paper notes SMT "forced using a much larger register file"; the sweep
// shows where renaming begins to throttle a register-hungry kernel.
func BenchmarkAblation_VRegFile(b *testing.B) {
	for _, n := range []int{40, 48, 64, 128} {
		b.Run(fmt.Sprintf("physvregs=%d", n), func(b *testing.B) {
			cfg := sim.T()
			cfg.Vbox.PhysVRegs = n
			ablRun(b, "dgemm", cfg)
		})
	}
}

// BenchmarkAblation_SwimTiling reproduces the §6 tiling experiment: "we
// also ran a naive non-tiled version of swim ... the non-tiled version was
// almost 2X slower". The comparison needs the grid above the 16 MB L2, so
// it runs at Full scale regardless of REPRO_BENCH_SCALE.
func BenchmarkAblation_SwimTiling(b *testing.B) {
	run := func(name string) uint64 {
		w, err := workloads.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		res, err := w.Run(sim.T(), workloads.Full)
		if err != nil {
			b.Fatal(err)
		}
		return res.Stats.Cycles
	}
	var tiled, naive uint64
	b.Run("tiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tiled = run("swim")
		}
		b.ReportMetric(float64(tiled), "cycles")
	})
	b.Run("untiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			naive = run("swim_untiled")
		}
		b.ReportMetric(float64(naive), "cycles")
	})
	if tiled > 0 && naive > 0 {
		b.Logf("untiled/tiled slowdown: %.2fx (paper: almost 2x)", float64(naive)/float64(tiled))
	}
}
