// Package vm implements Tarantula's virtual-memory layer: 512 MB pages
// (§3.4 — "Piggy-backing on other work developed at Compaq to support large
// pages, the Tarantula architecture adopted a 512 Mbyte virtual memory page
// size"), a page table the PALcode refill handlers walk, and translation
// with protection bits.
//
// The workloads run on an identity-mapped space (the simulator's functional
// memory is addressed by virtual address), so the package's role in the
// timing path is the miss/refill behaviour: the per-lane TLBs in the Vbox
// cache PTEs from here, and a missing or invalid PTE is an access fault
// (squashed for prefetches, per §2).
package vm

import "fmt"

// PageBits is log2 of the page size: 512 MB pages.
const PageBits = 29

// PageSize is the page size in bytes.
const PageSize = 1 << PageBits

// Prot is a page protection mask.
type Prot uint8

const (
	// Read permission.
	Read Prot = 1 << iota
	// Write permission.
	Write
)

// PTE is one page-table entry.
type PTE struct {
	Frame uint64 // physical frame number (physical address >> PageBits)
	Prot  Prot
	Valid bool
}

// Fault describes a failed translation.
type Fault struct {
	VA    uint64
	Write bool
	Why   string
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("vm: %s fault at %#x: %s", kind, f.VA, f.Why)
}

// Space is one address space: a sparse top-level page table. With 512 MB
// pages a flat map is exactly what PALcode sees.
type Space struct {
	ptes map[uint64]PTE
	// Identity, when set, synthesises an identity mapping for any page not
	// explicitly present — the configuration the workloads run under
	// (functional memory is VA-addressed).
	Identity bool
}

// NewIdentity returns the identity-mapped space the simulator uses.
func NewIdentity() *Space {
	return &Space{ptes: map[uint64]PTE{}, Identity: true}
}

// New returns an empty space; every page must be mapped explicitly.
func New() *Space {
	return &Space{ptes: map[uint64]PTE{}}
}

// Map installs a translation for the page containing va.
func (s *Space) Map(va, pa uint64, prot Prot) {
	s.ptes[va>>PageBits] = PTE{Frame: pa >> PageBits, Prot: prot, Valid: true}
}

// Unmap removes the page containing va.
func (s *Space) Unmap(va uint64) {
	delete(s.ptes, va>>PageBits)
}

// Lookup returns the PTE for the page containing va — the page-table walk
// PALcode performs on a TLB miss.
func (s *Space) Lookup(va uint64) (PTE, bool) {
	vpn := va >> PageBits
	if pte, ok := s.ptes[vpn]; ok {
		return pte, pte.Valid
	}
	if s.Identity {
		return PTE{Frame: vpn, Prot: Read | Write, Valid: true}, true
	}
	return PTE{}, false
}

// Translate maps a virtual address to physical, checking protections.
func (s *Space) Translate(va uint64, write bool) (uint64, error) {
	pte, ok := s.Lookup(va)
	if !ok {
		return 0, &Fault{VA: va, Write: write, Why: "no valid mapping"}
	}
	need := Read
	if write {
		need = Write
	}
	if pte.Prot&need == 0 {
		return 0, &Fault{VA: va, Write: write, Why: "protection violation"}
	}
	return pte.Frame<<PageBits | va&(PageSize-1), nil
}

// PagesTouched returns the distinct virtual page numbers of a strided
// access — what PALcode's strategy (2) refill computes by peeking at vs
// (§3.4: "PALcode may peek at the vs value and refill the TLBs with all the
// mappings that might be needed by the offending instruction").
func PagesTouched(base uint64, strideBytes int64, n int) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for i := 0; i < n; i++ {
		vpn := (base + uint64(int64(i)*strideBytes)) >> PageBits
		if !seen[vpn] {
			seen[vpn] = true
			out = append(out, vpn)
		}
	}
	return out
}
