package vm

import (
	"testing"
	"testing/quick"
)

func TestIdentityTranslate(t *testing.T) {
	s := NewIdentity()
	for _, va := range []uint64{0, 0x1234, 5 << PageBits, 1 << 40} {
		pa, err := s.Translate(va, true)
		if err != nil || pa != va {
			t.Fatalf("identity Translate(%#x) = %#x, %v", va, pa, err)
		}
	}
}

func TestExplicitMapping(t *testing.T) {
	s := New()
	s.Map(0, 7<<PageBits, Read)
	pa, err := s.Translate(0x1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 7<<PageBits|0x1000 {
		t.Fatalf("pa = %#x", pa)
	}
	if _, err := s.Translate(0x1000, true); err == nil {
		t.Fatal("write to read-only page must fault")
	}
	if _, err := s.Translate(1<<PageBits, false); err == nil {
		t.Fatal("unmapped page must fault")
	}
	s.Unmap(0)
	if _, err := s.Translate(0, false); err == nil {
		t.Fatal("unmapped after Unmap")
	}
}

func TestFaultMessage(t *testing.T) {
	s := New()
	_, err := s.Translate(0xdead0000, true)
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if f.VA != 0xdead0000 || !f.Write {
		t.Fatalf("fault = %+v", f)
	}
	if f.Error() == "" {
		t.Fatal("empty message")
	}
}

func TestTranslatePreservesOffset(t *testing.T) {
	f := func(off uint32) bool {
		s := New()
		s.Map(3<<PageBits, 9<<PageBits, Read|Write)
		va := uint64(3)<<PageBits | uint64(off)%PageSize
		pa, err := s.Translate(va, false)
		return err == nil && pa&(PageSize-1) == va&(PageSize-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPagesTouched(t *testing.T) {
	// 128 elements at a 64-byte stride stay in one page.
	if got := PagesTouched(0, 64, 128); len(got) != 1 {
		t.Fatalf("unit-ish stride touched %d pages", len(got))
	}
	// A page-sized stride touches a page per element.
	if got := PagesTouched(0, PageSize, 128); len(got) != 128 {
		t.Fatalf("page stride touched %d pages, want 128", len(got))
	}
	// Straddling: base near a page end.
	got := PagesTouched(PageSize-64, 64, 4)
	if len(got) != 2 {
		t.Fatalf("straddling access touched %d pages, want 2", len(got))
	}
}
