package l2

import (
	"testing"

	"repro/internal/creorder"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/zbox"
)

func testSetup() (*L2, *zbox.Zbox, *stats.Stats) {
	reg := metrics.NewRegistry()
	z := zbox.New(zbox.Config{
		Ports: 8, LineCycles: 16, BaseLatency: 100,
		RowBytes: 2048, DevicesPerPort: 32, RowMissCycles: 12, TurnCycles: 5,
	}, reg)
	c := New(Config{
		Bytes: 1 << 20, Assoc: 8, LineBytes: 64,
		ScalarLat: 12, VecLatPump: 34, VecLatOdd: 38,
		MAFSize: 64, ReplayThreshold: 8, RetryDelay: 6,
		SliceQueue: 16, PBitPenalty: 12,
	}, reg, z)
	return c, z, reg.Stats()
}

func drive(c *L2, z *zbox.Zbox, from, max uint64) uint64 {
	cy := from
	for (c.Busy() || z.Busy()) && cy < from+max {
		cy++
		z.Tick(cy)
		c.Tick(cy)
	}
	return cy
}

// slice builds a conflict-free read/write slice over n distinct banks.
func mkSlice(base uint64, n int, write bool) *SliceOp {
	s := creorder.Slice{}
	for i := 0; i < n; i++ {
		s.Elems = append(s.Elems, creorder.Elem{Index: i, Addr: base + uint64(i)*64})
	}
	s.QWords = n
	return &SliceOp{Slice: s, Write: write}
}

func TestScalarMissThenHit(t *testing.T) {
	c, z, st := testSetup()
	var first, second uint64
	c.ScalarRead(0, 0x10000, func(cy uint64) { first = cy })
	drive(c, z, 0, 10_000)
	if first == 0 {
		t.Fatal("miss never filled")
	}
	if st.L2Misses != 1 {
		t.Fatalf("misses = %d", st.L2Misses)
	}
	c.ScalarRead(first, 0x10008, func(cy uint64) { second = cy })
	end := drive(c, z, first, 10_000)
	_ = end
	if second == 0 || second-first > uint64(c.cfg.ScalarLat)+4 {
		t.Fatalf("hit latency %d, want ≈%d", second-first, c.cfg.ScalarLat)
	}
	if st.L2Hits != 1 {
		t.Fatalf("hits = %d", st.L2Hits)
	}
}

func TestSliceHitLatencies(t *testing.T) {
	c, z, _ := testSetup()
	// Warm 16 lines via a write-allocating WH64 path.
	for i := uint64(0); i < 16; i++ {
		c.WH64(0, 0x20000+i*64, nil)
	}
	drive(c, z, 0, 10_000)

	var pumpDone, oddDone uint64
	p := mkSlice(0x20000, 16, false)
	p.Slice.Pump = true
	p.Done = func(cy uint64) { pumpDone = cy }
	c.SubmitSlice(p)
	start := uint64(1000)
	drive(c, z, start, 10_000)
	o := mkSlice(0x20000, 16, false)
	o.Done = func(cy uint64) { oddDone = cy }
	c.SubmitSlice(o)
	start2 := pumpDone
	drive(c, z, start2, 10_000)
	if pumpDone == 0 || oddDone == 0 {
		t.Fatal("slices never completed")
	}
	if lat := pumpDone - start; lat < 34 || lat > 40 {
		t.Fatalf("pump hit latency %d, want ≈34", lat)
	}
	if lat := oddDone - start2; lat < 38 || lat > 44 {
		t.Fatalf("odd-stride hit latency %d, want ≈38", lat)
	}
}

func TestSliceAtomicMissSleepsInMAF(t *testing.T) {
	c, z, st := testSetup()
	var done uint64
	s := mkSlice(0x40000, 16, false)
	s.Done = func(cy uint64) { done = cy }
	c.SubmitSlice(s)
	// Tick once: the slice looks up, misses on all 16 lines, sleeps.
	z.Tick(1)
	c.Tick(1)
	if st.L2Misses != 1 {
		t.Fatalf("expected one slice-granular miss, got %d", st.L2Misses)
	}
	if got := c.MAFInUse(); got != 16 {
		t.Fatalf("MAF holds %d fills, want 16", got)
	}
	if done != 0 {
		t.Fatal("slice completed before fills")
	}
	drive(c, z, 1, 10_000)
	if done == 0 {
		t.Fatal("slice never woke up")
	}
	// One replay: the retry walks the pipe again after the last fill.
	if st.L2SliceReplays != 1 {
		t.Fatalf("replays = %d, want 1", st.L2SliceReplays)
	}
	if st.MemReads != 16 {
		t.Fatalf("memory reads = %d, want 16", st.MemReads)
	}
}

func TestFillMergesSleepers(t *testing.T) {
	c, z, st := testSetup()
	done := 0
	for k := 0; k < 3; k++ {
		s := mkSlice(0x50000, 16, false) // same 16 lines each time
		s.Done = func(uint64) { done++ }
		c.SubmitSlice(s)
	}
	drive(c, z, 0, 20_000)
	if done != 3 {
		t.Fatalf("completed %d slices, want 3", done)
	}
	if st.MemReads != 16 {
		t.Fatalf("memory reads = %d, want 16 (fills merged)", st.MemReads)
	}
}

func TestWriteSliceMarksDirtyAndWritesBack(t *testing.T) {
	c, z, st := testSetup()
	var done uint64
	s := mkSlice(0x60000, 16, true)
	s.Done = func(cy uint64) { done = cy }
	c.SubmitSlice(s)
	drive(c, z, 0, 20_000)
	if done == 0 {
		t.Fatal("write slice never completed")
	}
	if st.MemDirOps != 16 {
		t.Fatalf("dirty upgrades = %d, want 16", st.MemDirOps)
	}
	// Evict by filling the same sets with > assoc distinct tags.
	// Set period for a 1 MiB 8-way cache is 128 KiB.
	for w := uint64(1); w <= 9; w++ {
		for i := uint64(0); i < 16; i++ {
			c.ScalarRead(0, 0x60000+w*(1<<17)+i*64, nil)
		}
		drive(c, z, done+w*5000, 20_000)
	}
	if st.L2Writebacks == 0 {
		t.Fatal("dirty lines were never written back")
	}
	if st.MemWrites == 0 {
		t.Fatal("writebacks did not reach the controller")
	}
}

func TestPBitInvalidateOnVectorTouch(t *testing.T) {
	c, z, st := testSetup()
	invalidated := map[uint64]bool{}
	c.OnPBitInvalidate = func(line uint64) bool {
		invalidated[line] = true
		return false
	}
	// Scalar read sets the P-bit.
	c.ScalarRead(0, 0x70000, nil)
	drive(c, z, 0, 10_000)
	// Vector slice touching the same line must invalidate the L1 copy.
	s := mkSlice(0x70000, 1, false)
	var done uint64
	s.Done = func(cy uint64) { done = cy }
	c.SubmitSlice(s)
	drive(c, z, 5000, 10_000)
	if done == 0 {
		t.Fatal("slice never completed")
	}
	if !invalidated[0x70000] {
		t.Fatal("L1 was not invalidated on the P-bit touch")
	}
	if st.L2PBitInvalidates == 0 {
		t.Fatal("P-bit invalidate not counted")
	}
}

func TestWH64DoesNotSetPBit(t *testing.T) {
	c, z, _ := testSetup()
	called := false
	c.OnPBitInvalidate = func(uint64) bool { called = true; return false }
	c.WH64(0, 0x80000, nil)
	drive(c, z, 0, 10_000)
	s := mkSlice(0x80000, 1, true)
	c.SubmitSlice(s)
	drive(c, z, 1000, 10_000)
	if called {
		t.Fatal("WH64 allocation must not set the P-bit (it bypasses the L1)")
	}
}

func TestWH64AvoidsMemoryRead(t *testing.T) {
	c, z, st := testSetup()
	c.WH64(0, 0x90000, nil)
	drive(c, z, 0, 10_000)
	if st.MemReads != 0 {
		t.Fatalf("WH64 caused %d memory reads, want 0", st.MemReads)
	}
	if st.MemDirOps != 1 {
		t.Fatalf("WH64 dir ops = %d, want 1 (Invalid→Dirty)", st.MemDirOps)
	}
}

func TestMAFFullBackpressure(t *testing.T) {
	c, z, st := testSetup()
	// 5 slices × 16 distinct lines = 80 fills > 64 MAF entries.
	done := 0
	for k := 0; k < 5; k++ {
		s := mkSlice(0xA0000+uint64(k)*16*64, 16, false)
		s.Done = func(uint64) { done++ }
		c.SubmitSlice(s)
	}
	drive(c, z, 0, 50_000)
	if done != 5 {
		t.Fatalf("completed %d slices, want 5", done)
	}
	if st.MAFPeak < 60 {
		t.Fatalf("MAF peak %d suspiciously low", st.MAFPeak)
	}
	if st.MAFFullStalls == 0 {
		t.Fatal("expected MAF-full stalls with 80 outstanding fills")
	}
}

func TestPumpBusOccupancy(t *testing.T) {
	c, z, _ := testSetup()
	for i := uint64(0); i < 32; i++ {
		c.WH64(0, 0xB0000+i*64, nil)
	}
	drive(c, z, 0, 10_000)
	// Two pump read slices: the second must start ≥4 cycles after the
	// first (32 qw/cycle streaming occupies the read bus 4 cycles).
	var d1, d2 uint64
	p1 := mkSlice(0xB0000, 16, false)
	p1.Slice.Pump = true
	p1.Done = func(cy uint64) { d1 = cy }
	p2 := mkSlice(0xB0000+16*64, 16, false)
	p2.Slice.Pump = true
	p2.Done = func(cy uint64) { d2 = cy }
	c.SubmitSlice(p1)
	c.SubmitSlice(p2)
	drive(c, z, 2000, 10_000)
	if d1 == 0 || d2 == 0 {
		t.Fatal("pump slices never completed")
	}
	if d2-d1 != 4 {
		t.Fatalf("second pump slice finished %d cycles after the first, want 4", d2-d1)
	}
}

func TestPanicModeOnRepeatedReplay(t *testing.T) {
	c, z, st := testSetup()
	c.cfg.ReplayThreshold = 1
	// A victim set under constant attack: the sleeping slice's line keeps
	// being evicted by a stream of scalar fills mapping to the same set.
	var done uint64
	s := mkSlice(0xC0000, 1, false)
	s.Done = func(cy uint64) { done = cy }
	c.SubmitSlice(s)
	cy := uint64(0)
	for i := 0; done == 0 && i < 40_000; i++ {
		cy++
		if i%3 == 0 {
			c.ScalarRead(cy, 0xC0000+uint64(1+i/3)*(1<<17), nil)
		}
		z.Tick(cy)
		c.Tick(cy)
	}
	if done == 0 {
		t.Fatal("slice starved forever: panic mode failed to guarantee progress")
	}
	if st.L2PanicEvents == 0 {
		t.Skip("slice completed without entering panic mode (no livelock arose)")
	}
}

func TestScalarPrefetchDoesNotBlock(t *testing.T) {
	c, z, st := testSetup()
	c.ScalarPrefetch(0, 0xD0000)
	drive(c, z, 0, 10_000)
	if st.MemReads != 1 {
		t.Fatalf("prefetch fetched %d lines, want 1", st.MemReads)
	}
	// Line must now be resident: a read hits.
	var done uint64
	c.ScalarRead(5000, 0xD0000, func(cy uint64) { done = cy })
	drive(c, z, 5000, 1000)
	if done == 0 || st.L2Hits != 1 {
		t.Fatalf("prefetched line not resident (hits=%d)", st.L2Hits)
	}
}
