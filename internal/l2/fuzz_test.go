package l2

import (
	"math/rand"
	"testing"

	"repro/internal/creorder"
)

// TestRandomTrafficCompletes hammers the cache with a random mix of scalar
// reads/writes/prefetches/WH64s and vector slices (pump, reordered and
// CR-style) and asserts the liveness invariant: every request with a
// completion callback eventually completes, and the model reaches
// quiescence. This is the guard against lost wakeups in the MAF
// sleep/retry/panic machinery.
func TestRandomTrafficCompletes(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, z, st := testSetup()
		expected, completed := 0, 0
		done := func(uint64) { completed++ }

		cy := uint64(0)
		for burst := 0; burst < 40; burst++ {
			n := 1 + rng.Intn(6)
			for i := 0; i < n; i++ {
				addr := uint64(rng.Intn(1<<22)) &^ 7
				switch rng.Intn(6) {
				case 0:
					expected++
					c.ScalarRead(cy, addr, done)
				case 1:
					expected++
					c.ScalarWrite(cy, addr, done)
				case 2:
					c.ScalarPrefetch(cy, addr)
				case 3:
					expected++
					c.WH64(cy, addr, done)
				default:
					// A random (possibly conflicting-bank) slice.
					var sl creorder.Slice
					var banks [16]bool
					var lanes [16]bool
					for e := 0; e < 1+rng.Intn(16); e++ {
						a := uint64(rng.Intn(1<<22)) &^ 7
						b, l := creorder.BankOf(a), e
						if banks[b] || lanes[l] {
							continue
						}
						banks[b], lanes[l] = true, true
						sl.Elems = append(sl.Elems, creorder.Elem{Index: e, Addr: a})
					}
					if len(sl.Elems) == 0 {
						continue
					}
					sl.QWords = len(sl.Elems)
					op := &SliceOp{Slice: sl, Write: rng.Intn(2) == 0, Done: done}
					if c.SubmitSlice(op) {
						expected++
					}
				}
			}
			// Advance a random number of cycles between bursts.
			for k := 0; k < 1+rng.Intn(50); k++ {
				cy++
				z.Tick(cy)
				c.Tick(cy)
			}
		}
		// Drain to quiescence.
		for i := 0; i < 500_000 && (c.Busy() || z.Busy()); i++ {
			cy++
			z.Tick(cy)
			c.Tick(cy)
		}
		if c.Busy() || z.Busy() {
			t.Fatalf("seed %d: machine never quiesced (completed %d/%d)", seed, completed, expected)
		}
		if completed != expected {
			t.Fatalf("seed %d: %d of %d requests completed", seed, completed, expected)
		}
		_ = st
	}
}

// TestResidencyAfterFill asserts the basic cache property under random
// traffic: immediately after a read completes, a repeat read of the same
// line is a hit (no pathological thrash in the install path).
func TestResidencyAfterFill(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c, z, st := testSetup()
	cy := uint64(0)
	for round := 0; round < 50; round++ {
		addr := uint64(rng.Intn(1<<21)) &^ 63
		fired := false
		c.ScalarRead(cy, addr, func(uint64) { fired = true })
		for i := 0; i < 100_000 && !fired; i++ {
			cy++
			z.Tick(cy)
			c.Tick(cy)
		}
		if !fired {
			t.Fatalf("round %d: read never completed", round)
		}
		hitsBefore := st.L2Hits
		fired = false
		c.ScalarRead(cy, addr, func(uint64) { fired = true })
		for i := 0; i < 1000 && !fired; i++ {
			cy++
			z.Tick(cy)
			c.Tick(cy)
		}
		if st.L2Hits != hitsBefore+1 {
			t.Fatalf("round %d: repeat read of %#x missed", round, addr)
		}
	}
}
