package l2

import (
	"fmt"

	"repro/internal/snapshot"
)

// SaveState encodes the cache's durable state at a quiescent boundary: the
// full tag store (valid/dirty/P-bit/LRU per way), the LRU clock and the two
// bus-free cycles (delta-encoded against the snapshot cycle). In-flight
// machinery — slice queues, the retry queue, pending fills, the event wheel
// — holds callbacks and is required to be empty; Busy() is the caller's
// precondition and the wheel re-checks it here.
func (c *L2) SaveState(w *snapshot.Writer, now uint64) error {
	if c.Busy() {
		return fmt.Errorf("l2: busy (queues or fills outstanding); snapshots require a quiescent chip")
	}
	w.Tag("l2")
	w.U64(uint64(len(c.ways)))
	w.U64(c.assoc)
	for i := range c.ways {
		wy := &c.ways[i]
		w.U64(wy.tag)
		w.Bool(wy.valid)
		w.Bool(wy.dirty)
		w.Bool(wy.pbit)
		w.Bool(wy.locked)
		w.U64(wy.lru)
	}
	w.U64(c.lruClock)
	w.Delta(c.readBusFree, now)
	w.Delta(c.writeBusFree, now)
	return c.wheel.SaveState(w, now)
}

// LoadState restores the tag store onto an already-constructed (and
// geometry-matching) cache. The mirrored flat tag array is rebuilt from the
// way records rather than trusted from the blob.
func (c *L2) LoadState(r *snapshot.Reader, now uint64) error {
	r.Tag("l2")
	nways := r.Len(20)
	assoc := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if nways != len(c.ways) || assoc != c.assoc {
		return fmt.Errorf("%w: L2 geometry %d ways/assoc %d, chip has %d/%d", snapshot.ErrCorrupt, nways, assoc, len(c.ways), c.assoc)
	}
	for i := range c.ways {
		wy := &c.ways[i]
		wy.tag = r.U64()
		wy.valid = r.Bool()
		wy.dirty = r.Bool()
		wy.pbit = r.Bool()
		wy.locked = r.Bool()
		wy.lru = r.U64()
		if wy.valid {
			c.tags[i] = wy.tag
		} else {
			c.tags[i] = ^uint64(0)
		}
	}
	c.lruClock = r.U64()
	c.readBusFree = r.Abs(now)
	c.writeBusFree = r.Abs(now)
	return c.wheel.LoadState(r, now)
}
