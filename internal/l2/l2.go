// Package l2 models Tarantula's second-level cache (§3.4): sixteen banks
// read in parallel for vector slices, the PUMP structures that double
// stride-1 bandwidth, slice-atomic miss handling in the MAF (sleep, fill,
// wakeup, retry, panic mode), P-bit scalar↔vector coherency, and the shared
// path for scalar (EV8-side) refills and write-buffer drains.
//
// Timing is slice-granular: a conflict-free slice cycles all sixteen banks
// at once, so the model charges bank/bus occupancy per slice rather than per
// element — the granularity at which the paper's contention effects occur.
package l2

import (
	"repro/internal/creorder"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/zbox"
)

// Config sets the cache geometry and timing.
type Config struct {
	Bytes     int // total capacity
	Assoc     int
	LineBytes int // 64 throughout the paper

	ScalarLat  int // load-to-use for scalar requests (Table 3)
	VecLatPump int // load-to-use for vector stride-1 (Table 3)
	VecLatOdd  int // load-to-use for vector non-unit strides (Table 3)

	MAFSize         int // outstanding miss entries
	ReplayThreshold int // replays before panic mode (§3.4)
	RetryDelay      int // cycles between wakeup and replay

	SliceQueue int // vector input queue depth per direction

	// PBitPenalty is the extra latency a vector access pays when it must
	// send invalidates to the L1 for a P-bit line.
	PBitPenalty int

	// Faults, when non-nil, adds deterministic jitter to response latencies
	// (sim.New installs the chip's injector).
	Faults *faults.Injector
}

// SliceOp is a vector slice request walking the memory pipeline.
type SliceOp struct {
	Slice creorder.Slice
	Write bool
	// Done is called when the slice's data transfer completes.
	Done func(cycle uint64)

	replays int
	waiting int // outstanding line fills
	panic_  bool
}

type way struct {
	tag    uint64 // line address
	valid  bool
	dirty  bool
	pbit   bool
	locked bool // pinned by a panicked slice
	lru    uint64
}

// pendingFill tracks one in-flight line fetch and the slices sleeping on it.
type pendingFill struct {
	sleepers []*SliceOp
	scalar   []func(cycle uint64) // scalar waiters (L1 refills)
	forWrite bool
}

// L2 is the cache model.
type L2 struct {
	cfg Config
	z   *zbox.Zbox

	// The tag store is flattened: set s occupies ways[s*assoc:(s+1)*assoc].
	// tags mirrors the tag of each valid way (invalid ways hold ^0, never a
	// real line address since lines are at least 64-byte aligned) so a probe
	// scans one contiguous cache line of tags instead of chasing per-set
	// slices of 32-byte way structs.
	ways  []way
	tags  []uint64
	mask  uint64
	assoc uint64

	// Registered counter handles (l2.* namespace).
	hits, misses           metrics.Counter
	scalarReqs             metrics.Counter
	vecSlices, pumpSlices  metrics.Counter
	sliceReplays           metrics.Counter
	panicEvents            metrics.Counter
	pbitInvalidates        metrics.Counter
	writebacks             metrics.Counter
	mafPeak, mafFullStalls metrics.Counter

	lruClock uint64

	// OnPBitInvalidate is installed by the core: the L2 calls it when a
	// vector access touches (or an eviction removes) a line the EV8 core
	// has in its L1. It returns true when the L1 copy was dirty and had to
	// be written through first.
	OnPBitInvalidate func(lineAddr uint64) bool

	readQ, writeQ []*SliceOp
	scalarQ       []scalarReq
	retryQ        []*SliceOp

	// retrySliceFn re-queues a slice after a retry delay; bound once so the
	// (hot) fill-completion and MAF-retry paths schedule without closures.
	retrySliceFn func(uint64, any)

	// missScratch backs lookupSlice's per-slice missing-line list, reused
	// across slices (it never escapes the call).
	missScratch []uint64

	fills map[uint64]*pendingFill // line addr -> fill in flight

	readBusFree, writeBusFree uint64

	wheel *sched.Wheel
}

type scalarReq struct {
	addr  uint64
	write bool
	wh64  bool
	pref  bool
	done  func(cycle uint64)
}

// callDone invokes a stored completion callback with the fired cycle — the
// AtCall form of the old `func() { done(cy+lat) }` closures (func values are
// pointer-shaped, so storing one in the event's any costs no allocation).
func callDone(cy uint64, a any) { a.(func(uint64))(cy) }

// New returns an L2 backed by the given memory controller, registering its
// counters and queue-depth gauges under the registry's l2 namespace.
func New(cfg Config, reg *metrics.Registry, z *zbox.Zbox) *L2 {
	nsets := cfg.Bytes / (cfg.LineBytes * cfg.Assoc)
	c := &L2{
		cfg:   cfg,
		z:     z,
		ways:  make([]way, nsets*cfg.Assoc),
		tags:  make([]uint64, nsets*cfg.Assoc),
		mask:  uint64(nsets - 1),
		assoc: uint64(cfg.Assoc),
		fills: make(map[uint64]*pendingFill),
		wheel: sched.NewWheel(),
	}
	c.retrySliceFn = func(_ uint64, a any) { c.retryQ = append(c.retryQ, a.(*SliceOp)) }
	for i := range c.tags {
		c.tags[i] = ^uint64(0)
	}
	m := reg.Scope("l2")
	c.hits = m.Counter("hits")
	c.misses = m.Counter("misses")
	c.scalarReqs = m.Counter("scalar_reqs")
	c.vecSlices = m.Counter("vec_slices")
	c.pumpSlices = m.Counter("pump_slices")
	c.sliceReplays = m.Counter("slice_replays")
	c.panicEvents = m.Counter("panic_events")
	c.pbitInvalidates = m.Counter("pbit_invalidates")
	c.writebacks = m.Counter("writebacks")
	c.mafPeak = m.Counter("maf_peak")
	c.mafFullStalls = m.Counter("maf_full_stalls")
	m.Gauge("read_q", "Vector read slices queued at the L2.",
		func(uint64) int { return len(c.readQ) })
	m.Gauge("write_q", "Vector write slices queued at the L2.",
		func(uint64) int { return len(c.writeQ) })
	m.Gauge("retry_q", "Woken slices awaiting replay.",
		func(uint64) int { return len(c.retryQ) })
	m.Gauge("maf", "Occupied miss-address-file entries.",
		func(uint64) int { return len(c.fills) })
	return c
}

func (c *L2) line(addr uint64) uint64 { return addr &^ uint64(c.cfg.LineBytes-1) }
func (c *L2) base(line uint64) uint64 { return ((line >> 6) & c.mask) * c.assoc }

// probe returns the way holding line, or nil.
func (c *L2) probe(line uint64) *way {
	base := c.base(line)
	for i, t := range c.tags[base : base+c.assoc] {
		if t == line {
			return &c.ways[base+uint64(i)]
		}
	}
	return nil
}

// Present reports whether line is cached, without touching LRU or P-bit
// state — the invariant checker's L1-inclusion sweep must observe the cache
// without perturbing replacement order.
func (c *L2) Present(line uint64) bool { return c.probe(line) != nil }

func (c *L2) touch(w *way) {
	c.lruClock++
	w.lru = c.lruClock
}

// markDirty transitions a line to dirty, charging the directory-update
// transaction the coherency protocol performs on the Shared→Dirty (or
// Invalid→Dirty, for WH64 allocations) edge.
func (c *L2) markDirty(w *way) {
	if !w.dirty {
		w.dirty = true
		c.z.Request(w.tag, zbox.DirOp, nil)
	}
}

// victim picks the LRU unlocked way in the set of line (by index into the
// flattened tag store), or -1 if every way is pinned by panicked slices.
func (c *L2) victim(line uint64) int {
	base := c.base(line)
	v := -1
	for i := base; i < base+c.assoc; i++ {
		w := &c.ways[i]
		if !w.valid {
			return int(i)
		}
		if w.locked {
			continue
		}
		if v < 0 || w.lru < c.ways[v].lru {
			v = int(i)
		}
	}
	return v
}

// install places line into the cache, evicting as needed. Returns nil if no
// victim is available (all ways locked).
func (c *L2) install(line uint64, dirty bool) *way {
	idx := c.victim(line)
	if idx < 0 {
		return nil
	}
	w := &c.ways[idx]
	if w.valid {
		if w.pbit && c.OnPBitInvalidate != nil {
			// Evicting a P-bit line invalidates the L1 copy (§3.4).
			c.pbitInvalidates.Inc()
			if c.OnPBitInvalidate(w.tag) {
				w.dirty = true // L1 write-through merged into the victim
			}
		}
		if w.dirty {
			c.writebacks.Inc()
			c.z.Request(w.tag, zbox.Write, nil)
		}
	}
	*w = way{tag: line, valid: true, dirty: dirty}
	c.tags[idx] = line
	c.touch(w)
	if dirty {
		// Fresh dirty allocation (WH64): Invalid→Dirty directory edge.
		c.z.Request(line, zbox.DirOp, nil)
	}
	return w
}

// ---- external request API ----

// SubmitSlice offers a vector slice to the cache. It returns false when the
// input queue for that direction is full (the Vbox keeps the slice and
// retries next cycle).
func (c *L2) SubmitSlice(op *SliceOp) bool {
	q := &c.readQ
	if op.Write {
		q = &c.writeQ
	}
	if len(*q) >= c.cfg.SliceQueue {
		return false
	}
	*q = append(*q, op)
	return true
}

// ScalarRead requests the line containing addr on behalf of the EV8 core
// (an L1 refill). The P-bit is set: the core now has the line. done fires
// when the line is available to the L1.
func (c *L2) ScalarRead(cy uint64, addr uint64, done func(cycle uint64)) {
	c.scalarQ = append(c.scalarQ, scalarReq{addr: c.line(addr), done: done})
}

// ScalarPrefetch is a non-binding scalar prefetch: it fills the L2 (and is
// dropped on MAF pressure) but never blocks the requester.
func (c *L2) ScalarPrefetch(cy uint64, addr uint64) {
	c.scalarQ = append(c.scalarQ, scalarReq{addr: c.line(addr), pref: true})
}

// ScalarWrite drains one store (or an L1 dirty writeback) into the cache,
// setting the P-bit, per the write-buffer behaviour of §3.4. done, if
// non-nil, fires when the write is durably in the L2 (DrainM waits on it).
func (c *L2) ScalarWrite(cy uint64, addr uint64, done func(cycle uint64)) {
	c.scalarQ = append(c.scalarQ, scalarReq{addr: c.line(addr), write: true, done: done})
}

// WH64 allocates the line dirty without a memory read (the write-hint that
// saves read-for-ownership traffic). The allocation bypasses the L1, so the
// P-bit is not set and later vector stores do not pay invalidates.
func (c *L2) WH64(cy uint64, addr uint64, done func(cycle uint64)) {
	c.scalarQ = append(c.scalarQ, scalarReq{addr: c.line(addr), write: true, wh64: true, done: done})
}

// Busy reports whether the cache still has work in flight.
func (c *L2) Busy() bool {
	return len(c.readQ)+len(c.writeQ)+len(c.scalarQ)+len(c.retryQ)+len(c.fills) > 0 ||
		c.wheel.Pending()
}

// MAFInUse returns the number of occupied miss entries.
func (c *L2) MAFInUse() int { return len(c.fills) }

// NextWake returns the earliest cycle after now at which Tick can change any
// cache state. Queued slices and scalar requests are serviced every cycle, so
// any backlog pins the wake-up to now+1; otherwise the cache is purely
// event-driven (wheel completions; in-flight fills resolve through the Zbox,
// whose own NextWake covers them). ^uint64(0) means nothing will ever happen
// without new input.
func (c *L2) NextWake(now uint64) uint64 {
	if len(c.retryQ) > 0 || len(c.readQ) > 0 || len(c.writeQ) > 0 || len(c.scalarQ) > 0 {
		return now + 1
	}
	wake := c.wheel.Next()
	if wake <= now {
		wake = now + 1
	}
	return wake
}

// ---- per-cycle processing ----

// Tick advances the cache one cycle.
func (c *L2) Tick(cy uint64) {
	c.wheel.Advance(cy)

	// Replays have priority over new slices: a woken slice walks the pipe
	// again ahead of fresh traffic (it holds a MAF entry others may need).
	if len(c.retryQ) > 0 {
		op := c.retryQ[0]
		if c.tryBus(cy, op) {
			c.retryQ = c.retryQ[1:]
			c.sliceReplays.Inc()
			c.lookupSlice(cy, op)
		}
	}

	// Accept at most one new slice per direction per cycle, bus permitting.
	if len(c.readQ) > 0 && c.readQ[0] != nil {
		if op := c.readQ[0]; c.tryBus(cy, op) {
			c.readQ = c.readQ[1:]
			c.lookupSlice(cy, op)
		}
	}
	if len(c.writeQ) > 0 {
		if op := c.writeQ[0]; c.tryBus(cy, op) {
			c.writeQ = c.writeQ[1:]
			c.lookupSlice(cy, op)
		}
	}

	// Two scalar requests per cycle (a line read + a line write stream,
	// EV8's 273 GB/s sustainable figure from Table 3).
	for n := 0; n < 2 && len(c.scalarQ) > 0; n++ {
		req := c.scalarQ[0]
		c.scalarQ = c.scalarQ[1:]
		c.lookupScalar(cy, req)
	}
}

// tryBus reserves the data bus for the slice: pump slices stream 32 qw/cycle
// for four cycles; normal slices move their ≤16 quadwords in one.
func (c *L2) tryBus(cy uint64, op *SliceOp) bool {
	occ := uint64(1)
	if op.Slice.Pump {
		occ = 4
	}
	if op.Write {
		if c.writeBusFree > cy {
			return false
		}
		c.writeBusFree = cy + occ
	} else {
		if c.readBusFree > cy {
			return false
		}
		c.readBusFree = cy + occ
	}
	return true
}

func (c *L2) lookupSlice(cy uint64, op *SliceOp) {
	c.vecSlices.Inc()
	if op.Slice.Pump {
		c.pumpSlices.Inc()
	}
	missing := c.missScratch[:0]
	pbitHit := false
	// Consecutive elements of a slice overwhelmingly share a cache line
	// (a pump slice spans two lines, any other slice one per bank), so the
	// associativity scan is memoised per line. Every per-element side effect
	// (LRU touch, P-bit handling, duplicate miss entries) still happens per
	// element, keeping the state byte-identical to the unmemoised walk.
	lastLine := ^uint64(0)
	var lastW *way
	for _, e := range op.Slice.Elems {
		line := c.line(e.Addr)
		var w *way
		if line == lastLine {
			w = lastW
		} else {
			w = c.probe(line)
			lastLine, lastW = line, w
		}
		if w == nil {
			missing = append(missing, line)
			continue
		}
		c.touch(w)
		if w.pbit {
			pbitHit = true
			c.pbitInvalidates.Inc()
			if c.OnPBitInvalidate != nil && c.OnPBitInvalidate(line) {
				w.dirty = true
			}
			w.pbit = false
		}
		if op.Write {
			c.markDirty(w)
		}
	}
	c.missScratch = missing[:0]
	if len(missing) == 0 {
		c.hits.Inc()
		if op.panic_ {
			c.exitPanic(op)
		}
		lat := uint64(c.cfg.VecLatOdd)
		if op.Slice.Pump {
			lat = uint64(c.cfg.VecLatPump)
		}
		if pbitHit {
			lat += uint64(c.cfg.PBitPenalty)
		}
		lat += c.cfg.Faults.L2Latency(cy)
		if op.Done != nil {
			c.wheel.AtCall(cy+lat, callDone, op.Done)
		}
		return
	}

	// Miss: the slice sleeps in the MAF with a waiting bit per missing
	// line (§3.4 "Servicing Vector Misses").
	c.misses.Inc()
	op.replays++
	if op.replays > c.cfg.ReplayThreshold && !op.panic_ {
		c.enterPanic(op)
	}
	op.waiting = 0
	for _, line := range missing {
		if c.requestFill(line, op, op.Write) {
			op.waiting++
		}
	}
	if op.waiting == 0 {
		// Every fill was NACKed (MAF exhausted): retry later.
		c.mafFullStalls.Inc()
		c.wheel.AtCall(cy+uint64(c.cfg.RetryDelay), c.retrySliceFn, op)
	}
}

// requestFill attaches op to the in-flight fetch of line, creating it if
// needed. Returns false when the MAF has no free entry.
func (c *L2) requestFill(line uint64, op *SliceOp, forWrite bool) bool {
	if pf, ok := c.fills[line]; ok {
		if op != nil {
			pf.sleepers = append(pf.sleepers, op)
		}
		pf.forWrite = pf.forWrite || forWrite
		return true
	}
	if len(c.fills) >= c.cfg.MAFSize {
		return false
	}
	pf := &pendingFill{forWrite: forWrite}
	if op != nil {
		pf.sleepers = append(pf.sleepers, op)
	}
	c.fills[line] = pf
	c.mafPeak.Peak(uint64(len(c.fills)))
	c.z.Request(line, zbox.Read, func(cycle uint64) { c.fillArrived(cycle, line) })
	return true
}

// fillArrived installs the line and wakes sleepers whose waiting bits all
// cleared; they move to the retry queue and walk the pipe again.
func (c *L2) fillArrived(cy uint64, line uint64) {
	pf := c.fills[line]
	w := c.install(line, false)
	if w == nil {
		// Every way pinned by panicked slices: retry the install shortly.
		c.wheel.At(cy+1, func() { c.fillArrived(cy+1, line) })
		return
	}
	delete(c.fills, line)
	for _, op := range pf.sleepers {
		op.waiting--
		if op.waiting == 0 {
			c.wheel.AtCall(cy+uint64(c.cfg.RetryDelay), c.retrySliceFn, op)
		}
	}
	for _, done := range pf.scalar {
		done(cy)
	}
}

// enterPanic pins the slice's lines so competing traffic cannot evict them
// (the MAF "starts NACKing all requests that may prevent forward progress",
// §3.4 — we model the effect: guaranteed completion on the next replay).
func (c *L2) enterPanic(op *SliceOp) {
	op.panic_ = true
	c.panicEvents.Inc()
	for _, e := range op.Slice.Elems {
		if w := c.probe(c.line(e.Addr)); w != nil {
			w.locked = true
		}
	}
}

func (c *L2) exitPanic(op *SliceOp) {
	op.panic_ = false
	for _, e := range op.Slice.Elems {
		if w := c.probe(c.line(e.Addr)); w != nil {
			w.locked = false
		}
	}
}

func (c *L2) lookupScalar(cy uint64, req scalarReq) {
	c.scalarReqs.Inc()
	w := c.probe(req.addr)
	if req.wh64 {
		if w == nil {
			w = c.install(req.addr, true)
		} else {
			c.touch(w)
			c.markDirty(w)
		}
		if req.done != nil {
			c.wheel.AtCall(cy+1, callDone, req.done)
		}
		return
	}
	if w != nil {
		c.hits.Inc()
		c.touch(w)
		if req.write {
			c.markDirty(w)
			w.pbit = true
		} else if !req.pref {
			w.pbit = true
		}
		if req.done != nil {
			lat := uint64(c.cfg.ScalarLat) + c.cfg.Faults.L2Latency(cy)
			c.wheel.AtCall(cy+lat, callDone, req.done)
		}
		return
	}
	c.misses.Inc()
	if req.pref {
		// Prefetches are dropped rather than stalled when the MAF is full.
		c.requestFill(req.addr, nil, false)
		return
	}
	pf, ok := c.fills[req.addr]
	if !ok {
		if !c.requestFill(req.addr, nil, req.write) {
			// MAF full: retry the scalar request next cycle.
			c.mafFullStalls.Inc()
			c.wheel.At(cy+1, func() { c.scalarQ = append(c.scalarQ, req) })
			return
		}
		pf = c.fills[req.addr]
	}
	write := req.write
	addr := req.addr
	done := req.done
	lat := uint64(c.cfg.ScalarLat) + c.cfg.Faults.L2Latency(cy)
	pf.scalar = append(pf.scalar, func(cycle uint64) {
		if w := c.probe(addr); w != nil {
			if write {
				c.markDirty(w)
			}
			w.pbit = true
		}
		if done != nil {
			done(cycle + lat)
		}
	})
}

// Depths reports the cache's queue occupancies for profiling tools.
func (c *L2) Depths() (readQ, writeQ, retryQ, maf int) {
	return len(c.readQ), len(c.writeQ), len(c.retryQ), len(c.fills)
}
