// Package sched provides the simulator's event scheduling machinery: a
// hierarchical timing wheel (Wheel) for per-component completion events, and
// an ordered participant group (Group) the chip loop uses to advance only the
// components that actually have work on a given cycle.
//
// The Wheel replaces the map-keyed event multimaps the components grew up
// with (pipe.EventWheel and the local copies in l2/zbox). Those maps made
// Next() — the idle-cycle fast-forward's bound — an O(pending) full-map scan
// on every active cycle, which dominated the simulator's profile. The wheel
// makes At, Advance and Next O(1) amortised, and it is fully deterministic:
// events fire in exact (cycle, registration order) sequence, with no map
// iteration anywhere.
//
// Semantics are deliberately bit-compatible with the old maps, because the
// whole-chip A/B tests compare wheel-driven runs against single-stepped runs
// byte for byte, including under fault injection:
//
//   - Advance(c) fires only events scheduled at exactly cycle c. Events at
//     skipped cycles (possible only when a fault campaign inflates NextWake
//     hints past a due event) are stranded: they never fire, but they keep
//     Pending() true and bound Next(), exactly like an unvisited map key.
//     A healthy run never strands anything — the NextWake contract
//     guarantees Advance is called at every cycle with a due event.
//   - An event scheduled for cycle c while Advance(c) is firing joins the
//     current batch and fires in registration order. (The old map lost such
//     events forever; no component relies on that, and the property tests
//     pin the stronger contract.)
package sched

import "math/bits"

const (
	slotBits  = 6
	slotCount = 1 << slotBits // 64 slots per level
	slotMask  = slotCount - 1
	// 11 levels x 6 bits = 66 bits: the top level covers the full uint64
	// cycle space, so placement never overflows.
	numLevels = (64 + slotBits - 1) / slotBits
)

// Infinity is the "no event scheduled" cycle, matching the NextWake
// convention used across the simulator.
const Infinity = ^uint64(0)

// event is one scheduled callback. Events are wheel-owned and recycled
// through a free list; callers hold them only via Handle.
type event struct {
	cycle uint64
	gen   uint64 // bumped on recycle so stale Handles cannot cancel
	fn    func()
	// AtCall form: fnc(cycle, arg). Splitting the callback from its operand
	// lets hot paths schedule a long-lived func value plus a pointer-shaped
	// argument with zero heap allocations, where At's closures cost one
	// allocation per event.
	fnc  func(uint64, any)
	arg  any
	next *event
}

// live reports whether the event still has a callback (not cancelled).
func (e *event) live() bool { return e.fn != nil || e.fnc != nil }

// Handle identifies a scheduled event for cancellation. The zero Handle is
// valid and cancels nothing.
type Handle struct {
	e   *event
	gen uint64
}

// list is an intrusive FIFO of events; registration order is preserved
// everywhere (push to tail, pop from head).
type list struct {
	head, tail *event
}

func (l *list) push(e *event) {
	e.next = nil
	if l.tail == nil {
		l.head = e
	} else {
		l.tail.next = e
	}
	l.tail = e
}

func (l *list) pop() *event {
	e := l.head
	if e != nil {
		l.head = e.next
		if l.head == nil {
			l.tail = nil
		}
	}
	return e
}

// level is one ring of the hierarchy: level L's slots are 64^L cycles wide.
// occ has bit s set iff slot s holds at least one event (possibly cancelled).
type level struct {
	occ  uint64
	slot [slotCount]list
}

// Wheel is a hierarchical timing wheel over the full uint64 cycle space.
// The zero value is ready to use (base 0). Not safe for concurrent use —
// each component owns its wheel, like the maps it replaces.
//
// Invariant (restored after every Advance): every live event sits at the
// lowest level whose slot width can still distinguish it from base, i.e.
// level floor(log64(cycle XOR base)). Crossing a slot-0 window boundary
// cascades the entered higher-level slot down, so the first non-empty level
// always contains the globally earliest event and Next() needs no search
// beyond it.
type Wheel struct {
	base     uint64 // cycle of the last Advance (or 0)
	n        int    // live (scheduled, not cancelled) events, stranded included
	resident int    // events (cancelled husks included) filed in level slots
	levels   [numLevels]level

	// Stranded events: passed over by an Advance jump (fault-injected
	// too-late hints only). They never fire but stay pending, mirroring an
	// unvisited key in the old map wheels.
	stranded  list
	strandMin uint64 // min cycle of stranded live events (conservative)

	free *event

	nextV  uint64 // cached Next() value
	nextOK bool
}

// NewWheel returns an empty wheel. Equivalent to new(Wheel); kept for
// symmetry with the constructors it replaces.
func NewWheel() *Wheel { return new(Wheel) }

func (w *Wheel) alloc() *event {
	e := w.free
	if e == nil {
		return &event{}
	}
	w.free = e.next
	return e
}

func (w *Wheel) recycle(e *event) {
	e.fn, e.fnc, e.arg = nil, nil, nil
	e.gen++
	e.next = w.free
	w.free = e
}

// At schedules fn to run when Advance reaches exactly cycle c, after every
// event already scheduled for c. The returned Handle cancels it; callers
// that never cancel may discard the Handle. Scheduling at or before the
// last advanced cycle parks the event as stranded (it never fires but stays
// pending), except during Advance(c) itself, where an At(c, fn) joins the
// currently firing batch.
func (w *Wheel) At(c uint64, fn func()) Handle {
	e := w.alloc()
	e.cycle, e.fn = c, fn
	w.n++
	w.place(e)
	return Handle{e: e, gen: e.gen}
}

// AtCall schedules fn(c, arg) with the same semantics as At. It exists for
// allocation-free scheduling on hot paths: fn is typically a long-lived
// method value stored once at construction, and arg a pointer, so neither
// the callback nor its operand escapes per event.
func (w *Wheel) AtCall(c uint64, fn func(uint64, any), arg any) Handle {
	e := w.alloc()
	e.cycle, e.fnc, e.arg = c, fn, arg
	w.n++
	w.place(e)
	return Handle{e: e, gen: e.gen}
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending; cancelling an already-fired, already-cancelled or zero Handle is
// a harmless no-op. The event's slot entry is reclaimed lazily, so Next()
// may transiently report the cancelled cycle (a conservative-early wake,
// which the NextWake contract permits).
func (w *Wheel) Cancel(h Handle) bool {
	if h.e == nil || h.e.gen != h.gen || !h.e.live() {
		return false
	}
	h.e.fn, h.e.fnc, h.e.arg = nil, nil, nil
	w.n--
	return true
}

// Pending reports whether any live events remain (stranded ones included).
func (w *Wheel) Pending() bool { return w.n > 0 }

// Len returns the number of live events (stranded ones included).
func (w *Wheel) Len() int { return w.n }

// place files e at the level/slot determined by the highest bit in which its
// cycle differs from base. Events at or before base are stranded.
func (w *Wheel) place(e *event) {
	if e.cycle < w.base {
		w.strandEvent(e)
		return
	}
	d := e.cycle ^ w.base
	lv := 0
	if d != 0 {
		lv = (bits.Len64(d) - 1) / slotBits
	}
	s := int(e.cycle>>(uint(lv)*slotBits)) & slotMask
	w.levels[lv].slot[s].push(e)
	w.levels[lv].occ |= 1 << uint(s)
	w.resident++
	if w.nextOK && e.cycle < w.nextV {
		w.nextV = e.cycle
	}
}

func (w *Wheel) strandEvent(e *event) {
	if !e.live() { // cancelled husk: reclaim instead
		w.recycle(e)
		return
	}
	if w.stranded.head == nil || e.cycle < w.strandMin {
		w.strandMin = e.cycle
	}
	w.stranded.push(e)
	w.nextOK = false
}

// Next returns the earliest cycle with a scheduled event, or Infinity when
// the wheel is empty. Exact for live events; a cancelled-but-unreclaimed
// event may make it conservative-early.
func (w *Wheel) Next() uint64 {
	if w.n == 0 {
		return Infinity
	}
	if w.nextOK {
		return w.nextV
	}
	next := Infinity
	if w.stranded.head != nil {
		next = w.strandMin
	}
	for lv := range w.levels {
		l := &w.levels[lv]
		if l.occ == 0 {
			continue
		}
		// The cascade invariant makes the first non-empty level hold the
		// earliest wheel event, in its lowest occupied slot.
		s := uint(bits.TrailingZeros64(l.occ))
		min := Infinity
		for e := w.levels[lv].slot[s].head; e != nil; e = e.next {
			if e.cycle < min {
				min = e.cycle
			}
		}
		if min < next {
			next = min
		}
		break
	}
	w.nextV, w.nextOK = next, true
	return next
}

// Advance moves the wheel to cycle c and fires, in registration order, every
// event scheduled at exactly c — including events scheduled for c by the
// firing callbacks themselves. Events at cycles in (base, c) that were never
// advanced to are stranded (see the package comment); callers honouring the
// NextWake contract never skip a due cycle, so stranding only happens under
// injected too-late hints. Advancing backwards is a no-op.
func (w *Wheel) Advance(c uint64) {
	if c < w.base {
		return
	}
	if c > w.base {
		w.moveBase(c)
	}
	w.fire(c)
}

// moveBase advances base to c in O(occupied slots), independent of the jump
// distance. Level by level, from the bottom up:
//
//   - A level whose (level+1)-window differs between old base and c lies
//     entirely before c: every event in it was skipped, so strand them all.
//   - The first level where the windows agree is the boundary: slots below
//     c's digit are skipped (strand), c's own slot is re-filed relative to
//     the new base (events land at lower levels, at cycle c itself, or —
//     if their cycle is below c — in the stranded list), and slots above
//     keep their placement, which stays valid because their level-and-up
//     windows did not change.
//   - Levels above the boundary share all their windows with c already, so
//     their placements remain valid untouched.
func (w *Wheel) moveBase(c uint64) {
	old := w.base
	w.base = c
	w.nextOK = false
	if w.resident == 0 {
		return
	}
	for lv := 0; lv < numLevels; lv++ {
		shiftHi := uint(lv+1) * slotBits
		l := &w.levels[lv]
		if shiftHi < 64 && old>>shiftHi != c>>shiftHi {
			w.strandSlots(lv, l.occ) // whole level entirely before c
			continue
		}
		idx := uint(c>>(uint(lv)*slotBits)) & slotMask
		w.strandSlots(lv, l.occ&(1<<idx-1))
		if lv > 0 && l.occ&(1<<idx) != 0 {
			l.occ &^= 1 << idx
			for e := l.slot[idx].pop(); e != nil; e = l.slot[idx].pop() {
				w.resident--
				if !e.live() {
					w.recycle(e)
					continue
				}
				w.place(e)
			}
		}
		return
	}
}

// strandSlots strands every event in the level's slots selected by mask.
func (w *Wheel) strandSlots(lv int, mask uint64) {
	l := &w.levels[lv]
	for mask != 0 {
		s := uint(bits.TrailingZeros64(mask))
		mask &^= 1 << s
		for e := l.slot[s].pop(); e != nil; e = l.slot[s].pop() {
			w.resident--
			w.strandEvent(e)
		}
		l.occ &^= 1 << s
	}
}

// fire runs the events scheduled at exactly cycle c (base == c here). The
// loop re-reads the slot head each iteration so callbacks scheduling more
// work for cycle c extend the current batch.
func (w *Wheel) fire(c uint64) {
	l := &w.levels[0]
	s := uint(c) & slotMask
	if l.occ&(1<<s) == 0 {
		return
	}
	for e := l.slot[s].pop(); e != nil; e = l.slot[s].pop() {
		w.resident--
		fn, fnc, arg := e.fn, e.fnc, e.arg
		w.recycle(e)
		if fnc != nil {
			w.n--
			fnc(c, arg)
		} else if fn != nil {
			w.n--
			fn()
		}
	}
	l.occ &^= 1 << s
	w.nextOK = false
}
