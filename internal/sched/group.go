package sched

// Participant is a simulated component driven by the event-driven chip loop:
// Tick(cy) advances it to cycle cy (firing its own due events), and
// NextWake(now) returns the earliest cycle after now at which Tick could
// change any of its state — Infinity when it is fully idle. The NextWake
// contract is the one PR 1 established for the idle-cycle fast-forward:
// conservative-early hints cost a wasted (no-op) tick, too-late hints are
// bugs, and the checker's hint audit convicts them.
type Participant interface {
	Tick(cy uint64)
	NextWake(now uint64) uint64
}

// Group schedules an ordered set of participants. Order is significant and
// preserved: TickDue always advances due participants in registration order,
// which is how the chip loop keeps its z -> l2 -> vbox -> core tick order —
// the order the single-stepping loop uses, and therefore the order the
// bit-identity A/B tests pin.
//
// The group tracks one due cycle per participant. A participant whose due
// cycle is later than the current cycle is provably quiescent (its NextWake
// said so), so TickDue skips it entirely — that skip, applied across four
// components on every cycle, is the event-driven loop's whole speedup.
// Because one participant's tick may hand work to another (core issues to
// L2, L2 fills to zbox, callbacks run the other way), TickDue recomputes
// every participant's due cycle after ticking, not just the ticked ones.
type Group struct {
	parts []Participant
	due   []uint64
}

// Add registers p after every previously added participant. Wakes are
// initially due at every cycle until the first TickDue reschedules.
func (g *Group) Add(p Participant) {
	g.parts = append(g.parts, p)
	g.due = append(g.due, 0)
}

// Next returns the earliest due cycle across participants (Infinity when
// every participant is idle).
func (g *Group) Next() uint64 {
	next := Infinity
	for _, d := range g.due {
		if d < next {
			next = d
		}
	}
	return next
}

// TickDue advances to cycle cy: participants whose due cycle has arrived are
// ticked in registration order, then every participant's due cycle is
// recomputed from NextWake(cy). Ticking a not-yet-due participant would be a
// harmless no-op (the NextWake contract), so a caller that jumps to a cycle
// before the group's Next — the watchdog clamp does — simply ticks nothing.
func (g *Group) TickDue(cy uint64) {
	for i, p := range g.parts {
		if g.due[i] <= cy {
			p.Tick(cy)
		}
	}
	for i, p := range g.parts {
		g.due[i] = p.NextWake(cy)
	}
}
