package sched

import (
	"fmt"

	"repro/internal/snapshot"
)

// SaveState encodes the wheel for a chip checkpoint. Snapshots are taken
// only at quiescent boundaries, where every wheel is empty — pending events
// hold closures, which have no serializable form — so the durable state is
// just the base cycle, delta-encoded like every other cycle field. A wheel
// with live events refuses to encode rather than silently dropping them.
func (w *Wheel) SaveState(sw *snapshot.Writer, now uint64) error {
	if w.n > 0 {
		return fmt.Errorf("sched: wheel has %d pending events; snapshots require a quiescent chip", w.n)
	}
	sw.Tag("wheel")
	sw.Delta(w.base, now)
	return nil
}

// LoadState restores an empty wheel's base cycle. Residual events on the
// destination wheel would violate the quiescence contract the encoder
// enforced, so they are rejected too.
func (w *Wheel) LoadState(r *snapshot.Reader, now uint64) error {
	if w.n > 0 {
		return fmt.Errorf("sched: restore target wheel has %d pending events", w.n)
	}
	r.Tag("wheel")
	w.base = r.Abs(now)
	w.nextOK = false
	return r.Err()
}
