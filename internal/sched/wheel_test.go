package sched

import (
	"fmt"
	"testing"
)

// splitmix64 is the test's deterministic PRNG (no seed-dependent flakiness,
// no math/rand ordering changes across Go versions).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// drain advances the wheel event by event (the healthy-caller discipline:
// never skip a due cycle) and returns nothing; firing callbacks record.
func drain(w *Wheel) {
	for w.Pending() {
		w.Advance(w.Next())
	}
}

// TestWheelFiresInOrder is the core property: events fire in exact
// (cycle, registration order) sequence, whatever order they were scheduled
// in and however far apart their cycles are (crossing hierarchy levels).
func TestWheelFiresInOrder(t *testing.T) {
	rng := splitmix64(1)
	w := NewWheel()
	type ev struct {
		cycle uint64
		id    int
	}
	var want []ev
	var got []ev
	// Cycles spanning every hierarchy level: dense near the base, sparse out
	// to 2^40, with deliberate duplicates to exercise same-cycle ordering.
	for id := 0; id < 2000; id++ {
		var c uint64
		switch id % 4 {
		case 0:
			c = rng.next() % 64
		case 1:
			c = rng.next() % 4096
		case 2:
			c = rng.next() % (1 << 18)
		default:
			c = rng.next() % (1 << 40)
		}
		want = append(want, ev{c, id})
		w.At(c, func() { got = append(got, ev{c, id}) })
	}
	// Reference order: stable sort by cycle (registration order within one).
	for i := 1; i < len(want); i++ {
		for j := i; j > 0 && want[j-1].cycle > want[j].cycle; j-- {
			want[j-1], want[j] = want[j], want[j-1]
		}
	}
	drain(w)
	if w.Len() != 0 {
		t.Fatalf("Len() = %d after drain, want 0", w.Len())
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d = {cy=%d id=%d}, want {cy=%d id=%d}",
				i, got[i].cycle, got[i].id, want[i].cycle, want[i].id)
		}
	}
}

// TestWheelSameCycleReschedule: an event scheduled for cycle c by a callback
// firing at cycle c joins the current batch, after everything already queued
// for c — the upgrade over the old map wheel, which lost such events.
func TestWheelSameCycleReschedule(t *testing.T) {
	w := NewWheel()
	var got []string
	w.At(100, func() {
		got = append(got, "a")
		w.At(100, func() {
			got = append(got, "a-child")
			w.At(100, func() { got = append(got, "a-grandchild") })
		})
	})
	w.At(100, func() { got = append(got, "b") })
	w.Advance(100)
	want := []string{"a", "b", "a-child", "a-grandchild"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("batch order = %v, want %v", got, want)
	}
	if w.Pending() {
		t.Fatal("Pending() after the batch drained")
	}
}

// TestWheelCancel: a cancelled event never fires, cancellation is
// idempotent, and a Handle goes stale once its event has fired.
func TestWheelCancel(t *testing.T) {
	w := NewWheel()
	fired := map[string]bool{}
	hKeep := w.At(10, func() { fired["keep"] = true })
	hDrop := w.At(10, func() { fired["drop"] = true })
	hFar := w.At(1 << 30, func() { fired["far"] = true })
	if !w.Cancel(hDrop) {
		t.Fatal("Cancel(pending) = false, want true")
	}
	if w.Cancel(hDrop) {
		t.Fatal("second Cancel = true, want false (idempotent)")
	}
	if !w.Cancel(hFar) {
		t.Fatal("Cancel(far pending) = false, want true")
	}
	if w.Len() != 1 {
		t.Fatalf("Len() = %d after cancels, want 1", w.Len())
	}
	drain(w)
	if !fired["keep"] || fired["drop"] || fired["far"] {
		t.Fatalf("fired = %v, want only keep", fired)
	}
	if w.Cancel(hKeep) {
		t.Fatal("Cancel(fired) = true, want false (stale handle)")
	}
	if w.Cancel(Handle{}) {
		t.Fatal("Cancel(zero Handle) = true, want false")
	}
	// A recycled event slot must not be cancellable through the old handle.
	var ranNew bool
	w.At(20, func() { ranNew = true })
	if w.Cancel(hKeep) || w.Cancel(hDrop) {
		t.Fatal("stale handle cancelled a recycled event")
	}
	drain(w)
	if !ranNew {
		t.Fatal("recycled-slot event did not fire")
	}
}

// TestWheelStranding pins the map-wheel compatibility semantics the chip's
// fault-injection A/B tests rely on: an event at a cycle Advance skipped
// (possible only under inflated NextWake hints) never fires, but it keeps
// the wheel Pending and bounds Next — exactly like an unvisited map key.
func TestWheelStranding(t *testing.T) {
	w := NewWheel()
	var fired []uint64
	for _, c := range []uint64{5, 70, 70, 4100, 9000} {
		w.At(c, func() { fired = append(fired, c) })
	}
	w.Advance(9000) // skips 5, 70, 70 and 4100
	if fmt.Sprint(fired) != "[9000]" {
		t.Fatalf("fired = %v, want [9000]", fired)
	}
	if !w.Pending() || w.Len() != 4 {
		t.Fatalf("Pending=%v Len=%d, want stranded events still pending", w.Pending(), w.Len())
	}
	if next := w.Next(); next != 5 {
		t.Fatalf("Next() = %d, want the stranded minimum 5", next)
	}
	// Later advances never resurrect stranded events.
	w.Advance(20000)
	if len(fired) != 1 || w.Len() != 4 {
		t.Fatalf("stranded events fired late: fired=%v Len=%d", fired, w.Len())
	}
	// Scheduling at or before the advanced-past cycle strands immediately.
	w.At(20000, func() { fired = append(fired, 20000) })
	w.Advance(30000)
	if len(fired) != 1 || w.Len() != 5 {
		t.Fatalf("at-base event fired: fired=%v Len=%d", fired, w.Len())
	}
}

// TestWheelAdvanceSkipsNothingDue: Advance(c) with c before every scheduled
// event moves the base without firing or stranding anything — the watchdog
// clamp jumps the chip loop to such cycles routinely.
func TestWheelAdvanceSkipsNothingDue(t *testing.T) {
	w := NewWheel()
	ran := false
	w.At(1_000_000, func() { ran = true })
	for _, c := range []uint64{10, 63, 64, 4095, 4096, 999_999} {
		w.Advance(c)
		if ran || w.Len() != 1 {
			t.Fatalf("Advance(%d) disturbed a future event (ran=%v Len=%d)", c, ran, w.Len())
		}
		if next := w.Next(); next != 1_000_000 {
			t.Fatalf("Next() after Advance(%d) = %d, want 1000000", c, next)
		}
	}
	w.Advance(1_000_000)
	if !ran || w.Pending() {
		t.Fatalf("event at 1000000 did not fire (ran=%v)", ran)
	}
}

// TestWheelRandomizedAgainstModel drives the wheel through a long random
// schedule/advance/cancel workload and checks every observable (firing
// sequence, Pending, Len, Next lower bound) against a brute-force reference
// with the same exact-cycle-plus-stranding semantics.
func TestWheelRandomizedAgainstModel(t *testing.T) {
	type mev struct {
		cycle     uint64
		id        int
		cancelled bool
		stranded  bool
	}
	rng := splitmix64(42)
	w := NewWheel()
	var model []*mev
	handles := map[int]Handle{}
	var got, want []int
	now := uint64(0)
	nextID := 0
	for step := 0; step < 20000; step++ {
		switch rng.next() % 8 {
		case 0, 1, 2, 3: // schedule at a future cycle
			c := now + 1 + rng.next()%(1<<(rng.next()%20))
			id := nextID
			nextID++
			model = append(model, &mev{cycle: c, id: id})
			handles[id] = w.At(c, func() { got = append(got, id) })
		case 4: // cancel a random live model event
			for _, m := range model {
				if !m.cancelled && !m.stranded && m.cycle > now {
					if !w.Cancel(handles[m.id]) {
						t.Fatalf("step %d: Cancel(live id=%d) = false", step, m.id)
					}
					m.cancelled = true
					break
				}
			}
		case 5, 6: // advance to the next live future event (healthy discipline)
			n := Infinity
			for _, m := range model {
				if !m.cancelled && !m.stranded && m.cycle > now && m.cycle < n {
					n = m.cycle
				}
			}
			if n == Infinity {
				continue
			}
			// Next() must never exceed the model's earliest live event (it
			// may be earlier: cancelled husks and stranded events bound it).
			if wn := w.Next(); wn > n {
				t.Fatalf("step %d: Next() = %d, later than live event at %d", step, wn, n)
			}
			now = n
			w.Advance(now)
			for _, m := range model {
				if m.cycle == now && !m.cancelled && !m.stranded {
					want = append(want, m.id)
					m.stranded = true // consumed
				}
			}
		case 7: // jump past events (the fault-injected skip)
			now += 1 + rng.next()%2048
			w.Advance(now)
			for _, m := range model {
				if m.cycle == now && !m.cancelled && !m.stranded {
					want = append(want, m.id)
					m.stranded = true // consumed
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: fired %d events, model fired %d", step, len(got), len(want))
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d: got id=%d, model id=%d", i, got[i], want[i])
		}
	}
	// Live events = scheduled, not cancelled, not fired (stranded-by-skip
	// events count as live-but-dead, exactly like unvisited map keys).
	live := 0
	for _, m := range model {
		if !m.cancelled && !m.stranded && m.cycle <= now {
			live++ // stranded by a case-7 jump
		}
		if !m.cancelled && !m.stranded && m.cycle > now {
			live++
		}
	}
	if w.Len() != live {
		t.Fatalf("Len() = %d, model says %d live events", w.Len(), live)
	}
}

// tickRecorder is a Group participant with a scripted wake schedule.
type tickRecorder struct {
	name  string
	wakes []uint64 // pre-scripted NextWake answers, popped per call
	log   *[]string
	last  uint64
}

func (r *tickRecorder) Tick(cy uint64) { *r.log = append(*r.log, fmt.Sprintf("%s@%d", r.name, cy)) }
func (r *tickRecorder) NextWake(now uint64) uint64 {
	if len(r.wakes) == 0 {
		return Infinity
	}
	w := r.wakes[0]
	if w <= now {
		r.wakes = r.wakes[1:]
		return r.NextWake(now)
	}
	r.wakes = r.wakes[1:]
	return w
}

// TestGroupTickOrderAndSkipping: due participants tick in registration
// order; not-yet-due participants are skipped entirely.
func TestGroupTickOrderAndSkipping(t *testing.T) {
	var log []string
	g := &Group{}
	a := &tickRecorder{name: "a", log: &log, wakes: []uint64{5, 9, 9, 9}}
	b := &tickRecorder{name: "b", log: &log, wakes: []uint64{5, 5, 7, 9}}
	g.Add(a)
	g.Add(b)
	for cy := g.Next(); cy != Infinity; cy = g.Next() {
		g.TickDue(cy)
	}
	want := "[a@0 b@0 a@5 b@5 b@7 a@9 b@9]"
	if fmt.Sprint(log) != want {
		t.Fatalf("tick log = %v, want %v", log, want)
	}
}
