// Package snapshot is the versioned binary encoding layer under the chip
// checkpoint feature: a deterministic little-endian Writer/Reader pair with
// a magic header, a schema stamp and a whole-blob CRC, shared by every
// component's SaveState/LoadState implementation.
//
// Design rules, in service of the two contracts the feature depends on:
//
//   - Determinism. The same chip state always encodes to the same bytes:
//     maps are emitted in sorted key order, floats as their IEEE-754 bit
//     patterns, and there is no timestamp, pointer or padding anywhere in
//     the stream. Snapshot bytes are therefore content-addressable and
//     directly comparable (the warmup-confhash soundness test relies on
//     byte equality across excluded-knob mutations).
//
//   - Translation invariance. Components never store absolute cycle
//     numbers; busy-until style fields are delta-encoded against the
//     snapshot cycle via Delta/Abs, clamped at zero, so a restored chip
//     behaves identically no matter what clock base it resumes from.
//
//   - Hostile-input safety. A Reader never panics on corrupt input:
//     the header, schema and CRC are validated up front, every length
//     prefix is bounds-checked against the remaining payload, and the
//     first failure latches a sticky error that every subsequent accessor
//     observes. Callers check Err (or Close) once at the end.
//
// Section tags (Tag) frame each component's region so a drifted encoder/
// decoder pair fails loudly at the component boundary instead of silently
// misinterpreting the stream.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// SchemaVersion identifies the snapshot wire layout. Bump it on any change
// to what any component encodes: restore refuses blobs from another schema
// (ErrSchema), and the serve-layer snapshot store keys its directory by this
// constant so skewed blobs from older builds are never even offered.
const SchemaVersion = 1

// magic opens every snapshot blob. The trailing zero byte keeps it from
// being a prefix of any plausible text format.
var magic = [8]byte{'T', 'A', 'R', 'S', 'N', 'A', 'P', 0}

// headerLen is magic + uint32 schema; the blob ends with a uint32 CRC.
const headerLen = len(magic) + 4

// ErrCorrupt tags every decode failure caused by the blob itself —
// truncation, CRC mismatch, bad magic, an over-long length prefix, a tag
// mismatch. Callers branch on it with errors.Is to route bad blobs to
// quarantine instead of treating them as internal faults.
var ErrCorrupt = errors.New("snapshot: corrupt blob")

// ErrSchema tags a well-formed blob written by a different schema version.
// Distinct from ErrCorrupt so stores can count skew separately from damage,
// though both are non-fatal cache misses to the feature's callers.
var ErrSchema = errors.New("snapshot: schema mismatch")

// Writer builds one snapshot blob. The zero value is ready to use; Finish
// seals the header, payload and CRC into the final byte slice.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the header pre-staged.
func NewWriter() *Writer {
	w := &Writer{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, magic[:]...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, SchemaVersion)
	return w
}

// U64 appends one little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// U32 appends one little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// I64 appends one little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Delta appends abs relative to base, clamped at zero. Busy-until fields in
// the past are equivalent to "free now", so the clamp loses nothing, and the
// encoding is identical whatever clock base the chip ran under.
func (w *Writer) Delta(abs, base uint64) {
	if abs <= base {
		w.U64(0)
		return
	}
	w.U64(abs - base)
}

// Tag frames the start of a named section. Reader.Tag verifies it, turning
// any encoder/decoder drift into a positional error at the component
// boundary.
func (w *Writer) Tag(name string) { w.String(name) }

// Finish seals the blob: payload so far plus a CRC-32 (IEEE) over
// everything before it. The Writer must not be used afterwards.
func (w *Writer) Finish() []byte {
	crc := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc)
	return w.buf
}

// Verify checks a blob's envelope — magic, schema stamp, CRC — without
// decoding the payload. It is the cheap admission test the snapshot stores
// run before caching or serving a blob.
func Verify(blob []byte) error {
	_, err := payload(blob)
	return err
}

// payload validates the envelope and returns the payload bytes between the
// header and the CRC trailer.
func payload(blob []byte) ([]byte, error) {
	if len(blob) < headerLen+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorrupt, len(blob))
	}
	for i := range magic {
		if blob[i] != magic[i] {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	body, trailer := blob[:len(blob)-4], blob[len(blob)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	if schema := binary.LittleEndian.Uint32(blob[len(magic):]); schema != SchemaVersion {
		return nil, fmt.Errorf("%w: blob is schema %d, this build reads schema %d", ErrSchema, schema, SchemaVersion)
	}
	return body[headerLen:], nil
}

// Reader decodes one snapshot blob. Construction validates the envelope;
// accessors return zero values after the first failure and latch it for Err.
type Reader struct {
	buf []byte
	pos int
	err error
}

// NewReader validates blob's magic, schema and CRC and returns a Reader
// positioned at the payload. ErrSchema and ErrCorrupt are distinguishable
// with errors.Is.
func NewReader(blob []byte) (*Reader, error) {
	p, err := payload(blob)
	if err != nil {
		return nil, err
	}
	return &Reader{buf: p}, nil
}

// fail latches the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: offset %d: %s", ErrCorrupt, r.pos, fmt.Sprintf(format, args...))
	}
}

// take returns the next n payload bytes, or nil after latching truncation.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.pos {
		r.fail("need %d bytes, %d remain", n, len(r.buf)-r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// U64 reads one uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// U32 reads one uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I64 reads one int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64-encoded int, rejecting values outside the platform
// int range is unnecessary (64-bit builds) but negative-where-impossible
// checks belong to callers.
func (r *Reader) Int() int { return int(r.I64()) }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool, rejecting anything but 0 or 1.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte")
		return false
	}
}

// F64 reads a float64 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a length prefix and bounds-checks it against the remaining
// payload scaled by elemSize (1 for raw bytes), so a hostile length cannot
// drive an allocation beyond the blob itself.
func (r *Reader) Len(elemSize int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(len(r.buf)-r.pos)/uint64(elemSize) {
		r.fail("length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice (copied out of the blob).
func (r *Reader) Bytes() []byte {
	n := r.Len(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Abs reads a Delta-encoded cycle field and rebases it onto base. A zero
// delta decodes to base itself — "free now" — matching the Writer's clamp.
func (r *Reader) Abs(base uint64) uint64 {
	d := r.U64()
	if d > math.MaxUint64-base {
		r.fail("cycle delta %d overflows base %d", d, base)
		return base
	}
	return base + d
}

// Tag consumes a section tag and verifies it matches name.
func (r *Reader) Tag(name string) {
	got := r.String()
	if r.err == nil && got != name {
		r.fail("section tag %q, want %q", got, name)
	}
}

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Close finishes a decode: it returns the sticky error if any, and
// otherwise requires the payload to be fully consumed — trailing garbage
// means the encoder and decoder disagree about the layout.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes after decode", ErrCorrupt, len(r.buf)-r.pos)
	}
	return nil
}
