package snapshot

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

// buildBlob assembles one blob exercising every writer primitive.
func buildBlob() []byte {
	w := NewWriter()
	w.Tag("test")
	w.U64(math.MaxUint64)
	w.U32(0xdeadbeef)
	w.I64(-42)
	w.Int(7)
	w.U8(200)
	w.Bool(true)
	w.Bool(false)
	w.F64(3.14159)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.Delta(100, 40)
	w.Delta(40, 100) // clamped to zero
	return w.Finish()
}

func TestRoundTrip(t *testing.T) {
	r, err := NewReader(buildBlob())
	if err != nil {
		t.Fatal(err)
	}
	r.Tag("test")
	if got := r.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.U8(); got != 200 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool pair mismatch")
	}
	if got := r.F64(); got != 3.14159 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bytes(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Abs(40); got != 100 {
		t.Errorf("Abs = %d", got)
	}
	if got := r.Abs(100); got != 100 {
		t.Errorf("clamped Abs = %d", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaTranslationInvariance(t *testing.T) {
	enc := func(base uint64) []byte {
		w := NewWriter()
		w.Delta(base+17, base)
		return w.Finish()
	}
	a, b := enc(1000), enc(5_000_000)
	if string(a) != string(b) {
		t.Error("delta encoding is not translation-invariant")
	}
}

func TestCloseRejectsTrailingBytes(t *testing.T) {
	r, err := NewReader(buildBlob())
	if err != nil {
		t.Fatal(err)
	}
	r.Tag("test")
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Close with unread payload = %v, want ErrCorrupt", err)
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	blob := buildBlob()
	for n := 0; n < len(blob); n++ {
		if _, err := NewReader(blob[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestBitFlipsDetected(t *testing.T) {
	blob := buildBlob()
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		r, err := NewReader(mut)
		if err != nil {
			continue // envelope caught it
		}
		// Envelope passed (flip canceled out in CRC? impossible for a
		// single flip) — drain and require an error somewhere.
		r.Tag("test")
		for r.Err() == nil && r.pos < len(r.buf) {
			r.U8()
		}
		if r.Close() == nil {
			t.Errorf("bit flip at %d undetected", i)
		}
	}
}

func TestSchemaSkew(t *testing.T) {
	blob := buildBlob()
	// Rewrite the schema word and repair the CRC so only the skew trips.
	mut := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(mut[len(magic):], SchemaVersion+1)
	binary.LittleEndian.PutUint32(mut[len(mut)-4:], crc32.ChecksumIEEE(mut[:len(mut)-4]))
	_, err := NewReader(mut)
	if !errors.Is(err, ErrSchema) {
		t.Errorf("schema skew = %v, want ErrSchema", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Error("schema skew should be distinguishable from corruption")
	}
}

func TestBadMagic(t *testing.T) {
	blob := buildBlob()
	mut := append([]byte(nil), blob...)
	mut[0] ^= 0xff
	if _, err := NewReader(mut); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic = %v, want ErrCorrupt", err)
	}
}

func TestBoolRejectsJunk(t *testing.T) {
	w := NewWriter()
	w.U8(2)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	r.Bool()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("Bool(2) = %v, want ErrCorrupt", r.Err())
	}
}

func TestLenBoundsCheck(t *testing.T) {
	// A length prefix claiming more elements than the remaining payload
	// could hold must fail in Len, not in a giant make().
	w := NewWriter()
	w.U64(1 << 40)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Len(16); n != 0 || !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("oversized Len = %d err %v, want 0/ErrCorrupt", n, r.Err())
	}
}

func TestAbsOverflow(t *testing.T) {
	w := NewWriter()
	w.U64(math.MaxUint64)
	r, err := NewReader(w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	if r.Abs(2); !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("overflowing Abs err = %v, want ErrCorrupt", r.Err())
	}
}

func TestTagMismatch(t *testing.T) {
	r, err := NewReader(buildBlob())
	if err != nil {
		t.Fatal(err)
	}
	r.Tag("nope")
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Errorf("tag mismatch err = %v, want ErrCorrupt", r.Err())
	}
}

func TestStickyError(t *testing.T) {
	r, err := NewReader(buildBlob())
	if err != nil {
		t.Fatal(err)
	}
	r.Tag("nope")
	first := r.Err()
	r.U64()
	_ = r.String()
	if r.Err() != first {
		t.Error("reader error is not sticky")
	}
}

func TestVerify(t *testing.T) {
	blob := buildBlob()
	if err := Verify(blob); err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), blob...)
	mut[len(mut)-1] ^= 1
	if err := Verify(mut); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Verify on damaged blob = %v, want ErrCorrupt", err)
	}
}
