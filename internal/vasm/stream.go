package vasm

import (
	"fmt"
	"sync"

	"repro/internal/arch"
)

// Kernel is a hand-coded benchmark kernel: it drives the Builder, which
// functionally executes and records every instruction.
type Kernel func(b *Builder)

const batchSize = 4096

// Trace streams the dynamic instructions of a kernel to a consumer without
// materialising the whole run. The kernel executes in a producer goroutine;
// instruction batches cross a channel. Close must be called if the consumer
// abandons the trace early; Next returning nil means the kernel finished —
// or died: check Err to distinguish, because a trace that aborts mid-kernel
// never emits HALT and would otherwise leave the timing model waiting for
// one.
type Trace struct {
	ch   chan []DynInst
	free chan []DynInst // exhausted batches recycled back to the producer
	done chan struct{}
	cur  []DynInst
	pos  int
	n    uint64

	mu  sync.Mutex
	err error
}

type traceAbort struct{}

// NewTrace starts kernel on machine m and returns the trace reader.
func NewTrace(m *arch.Machine, kernel Kernel) *Trace {
	t := &Trace{
		ch:   make(chan []DynInst, 2),
		free: make(chan []DynInst, 2),
		done: make(chan struct{}),
	}
	go func() {
		defer close(t.ch)
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			switch ab := r.(type) {
			case traceAbort:
				// Consumer abandoned the trace; nothing to report.
			case buildAbort:
				t.setErr(ab.err)
			default:
				// A Go panic inside the kernel function itself (not the
				// functional machine) — surface it as an error instead of
				// crashing the process from a goroutine nobody can recover.
				t.setErr(&BuildError{Cause: "kernel panic: " + fmt.Sprint(r)})
			}
		}()
		newBatch := func() []DynInst {
			select {
			case b := <-t.free:
				return b[:0]
			default:
				return make([]DynInst, 0, batchSize)
			}
		}
		batch := newBatch()
		b := NewBuilder(m, func() *DynInst {
			if len(batch) == batchSize {
				select {
				case t.ch <- batch:
				case <-t.done:
					panic(traceAbort{})
				}
				batch = newBatch()
			}
			batch = batch[:len(batch)+1]
			return &batch[len(batch)-1]
		})
		kernel(b)
		if len(batch) > 0 {
			select {
			case t.ch <- batch:
			case <-t.done:
			}
		}
	}()
	return t
}

func (t *Trace) setErr(err error) {
	t.mu.Lock()
	t.err = err
	t.mu.Unlock()
}

// Err returns the error that aborted the producer, or nil. Safe to call
// from the consumer while the producer is still running — the simulator
// polls it mid-run so a dead trace (which will never emit HALT) is reported
// promptly instead of after a multi-million-cycle watchdog window.
func (t *Trace) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Next returns the next dynamic instruction, or nil at end of trace. The
// returned pointer is valid only until the following batch boundary is
// crossed — the exhausted batch is handed back to the producer for reuse
// there — so the timing models copy what they retain.
func (t *Trace) Next() *DynInst {
	for t.pos >= len(t.cur) {
		batch, ok := <-t.ch
		if !ok {
			return nil
		}
		if t.cur != nil {
			select {
			case t.free <- t.cur:
			default:
			}
		}
		t.cur, t.pos = batch, 0
	}
	d := &t.cur[t.pos]
	t.pos++
	t.n++
	return d
}

// Consumed returns how many instructions Next has handed out.
func (t *Trace) Consumed() uint64 { return t.n }

// Close releases the producer goroutine if the trace is abandoned early.
func (t *Trace) Close() {
	select {
	case <-t.done:
	default:
		close(t.done)
	}
	// Drain so the producer's pending send completes and it exits.
	for range t.ch {
	}
}

// CollectChecked runs kernel to completion and returns the full trace, or
// the positional error of the first failing instruction. Intended for tests
// and small kernels only.
func CollectChecked(m *arch.Machine, kernel Kernel) (out []DynInst, err error) {
	defer func() {
		if r := recover(); r != nil {
			ab, ok := r.(buildAbort)
			if !ok {
				panic(r)
			}
			err = ab.err
		}
	}()
	b := NewBuilder(m, func() *DynInst {
		out = append(out, DynInst{})
		return &out[len(out)-1]
	})
	kernel(b)
	return out, nil
}

// Collect is CollectChecked for callers that treat a bad kernel as a
// programming error; it panics with the positional BuildError.
func Collect(m *arch.Machine, kernel Kernel) []DynInst {
	out, err := CollectChecked(m, kernel)
	if err != nil {
		panic(err)
	}
	return out
}
