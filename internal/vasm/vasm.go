// Package vasm is the Go-embedded macro-assembler used to hand-code every
// benchmark kernel, mirroring the paper's methodology ("these were coded in
// vector assembly by hand", §6). A kernel is a Go function that drives a
// Builder; the Builder executes each instruction on the functional machine
// immediately and appends the instruction plus its dynamic effect (resolved
// addresses, branch outcome, active element count) to the trace the timing
// models consume.
package vasm

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/isa"
)

// BuildError reports an assembly/execution failure with its position in the
// dynamic instruction stream: the sequence number, the static-site id (the
// PC stand-in), and the offending instruction. It replaces the functional
// machine's raw panics so harnesses can print *which* instruction of
// *which* kernel died instead of a bare stack trace.
type BuildError struct {
	Seq   uint64   // dynamic sequence number of the failing instruction
	Site  uint32   // static-site id (PC stand-in); 0 when unknown
	Inst  isa.Inst // the instruction being executed; zero when the kernel itself panicked
	Cause string   // the underlying panic message
}

func (e *BuildError) Error() string {
	if e.Inst.Op == 0 && e.Seq == 0 {
		return fmt.Sprintf("vasm: kernel panic: %s", e.Cause)
	}
	return fmt.Sprintf("vasm: seq %d site %d [%s]: %s", e.Seq, e.Site, e.Inst.String(), e.Cause)
}

// buildAbort unwinds a kernel after the first BuildError: the functional
// state is garbage past that point, so execution cannot meaningfully
// continue. It is recovered by the Trace producer and by CollectChecked.
type buildAbort struct{ err *BuildError }

// DynInst is one dynamic (executed) instruction.
type DynInst struct {
	Seq  uint64 // global dynamic sequence number
	Site uint32 // static-site id (stands in for the PC; branch predictor key)
	Inst isa.Inst
	Eff  arch.Effect
}

// Builder assembles and functionally executes a kernel, producing a trace.
type Builder struct {
	M    *arch.Machine
	slot func() *DynInst

	seq      uint64
	nextSite uint32
	heap     uint64 // bump allocator over simulated memory
	err      *BuildError
}

// NewBuilder returns a Builder bound to machine m; slot returns the record
// to fill for each executed instruction, so the ~140-byte DynInst is written
// exactly once, in place, instead of staged through a scratch copy. The heap
// starts at 1 MiB to keep address 0 out of the workloads' way.
func NewBuilder(m *arch.Machine, slot func() *DynInst) *Builder {
	return &Builder{M: m, slot: slot, heap: 1 << 20}
}

// Site allocates a fresh static-site id (used to key branch prediction).
func (b *Builder) Site() uint32 {
	b.nextSite++
	return b.nextSite
}

// Emit executes in on the functional machine and appends it to the trace.
func (b *Builder) Emit(in isa.Inst) arch.Effect {
	return b.EmitAt(in, b.Site())
}

// EmitAt is Emit with an explicit static-site id, for kernels that re-emit
// the same branch site across iterations (the predictor's key).
func (b *Builder) EmitAt(in isa.Inst, site uint32) arch.Effect {
	return b.emitAt(in, site)
}

func (b *Builder) emitAt(in isa.Inst, site uint32) arch.Effect {
	eff := b.step(&in, site)
	b.seq++
	d := b.slot()
	d.Seq, d.Site, d.Inst, d.Eff = b.seq, site, in, eff
	return eff
}

// step executes in on the functional machine, converting a machine panic
// (unimplemented op, bad register class, bad memory access) into a
// positional BuildError and unwinding the kernel via buildAbort.
func (b *Builder) step(in *isa.Inst, site uint32) arch.Effect {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(buildAbort); ok {
				panic(r) // already positional; keep unwinding
			}
			b.err = &BuildError{Seq: b.seq + 1, Site: site, Inst: *in, Cause: fmt.Sprint(r)}
			panic(buildAbort{b.err})
		}
	}()
	return b.M.Step(in)
}

// Err returns the positional error of the first failed instruction, or nil.
func (b *Builder) Err() error {
	if b.err == nil {
		return nil
	}
	return b.err
}

// Count returns the number of instructions emitted so far.
func (b *Builder) Count() uint64 { return b.seq }

// Alloc reserves n bytes of simulated memory aligned to align and returns
// the base address. The paper pads STREAMS arrays (65856 bytes) to spread
// them across L2 banks; kernels do that through the align/pad arguments.
func (b *Builder) Alloc(n, align uint64) uint64 {
	if align == 0 {
		align = 64
	}
	b.heap = (b.heap + align - 1) &^ (align - 1)
	base := b.heap
	b.heap += n
	return base
}

// AllocF64 reserves an n-element float64 array padded by pad bytes and
// returns its base address.
func (b *Builder) AllocF64(n int, pad uint64) uint64 {
	base := b.Alloc(uint64(n)*8+pad, 64)
	return base
}

// ---- scalar convenience emitters ----

// Li loads a 64-bit immediate into rd. Real Alpha synthesises large
// constants from LDA/LDAH sequences; we charge a single LDA, which slightly
// favours the scalar baseline.
func (b *Builder) Li(rd isa.Reg, v int64) {
	b.Emit(isa.Inst{Op: isa.OpLDA, Dst: rd, Src1: isa.RZero, Imm: v})
}

// Mov copies ra to rd (BIS ra, ra).
func (b *Builder) Mov(rd, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpBIS, Dst: rd, Src1: ra, Src2: ra})
}

// Op3 emits a three-register operate instruction.
func (b *Builder) Op3(op isa.Op, rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: op, Dst: rd, Src1: ra, Src2: rb})
}

// OpImm emits an operate instruction with an immediate second operand.
func (b *Builder) OpImm(op isa.Op, rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Dst: rd, Src1: ra, Imm: imm})
}

// AddImm adds an immediate via LDA (the Alpha idiom for pointer bumps).
func (b *Builder) AddImm(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpLDA, Dst: rd, Src1: ra, Imm: imm})
}

// LdQ / LdT / StQ / StT emit scalar memory operations.
func (b *Builder) LdQ(rd, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpLDQ, Dst: rd, Src2: base, Imm: off})
}
func (b *Builder) LdT(fd, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpLDT, Dst: fd, Src2: base, Imm: off})
}
func (b *Builder) StQ(rs, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpSTQ, Src1: rs, Src2: base, Imm: off})
}
func (b *Builder) StT(fs, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpSTT, Src1: fs, Src2: base, Imm: off})
}

// WH64 emits a write-hint (zero-allocate line, no read-for-ownership).
func (b *Builder) WH64(base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpWH64, Src2: base, Imm: off})
}

// Prefetch emits a scalar software prefetch of the line at base+off.
func (b *Builder) Prefetch(base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpPREFQ, Dst: isa.RZero, Src2: base, Imm: off})
}

// DrainM emits the scalar-write → vector-read memory barrier of §3.4.
func (b *Builder) DrainM() { b.Emit(isa.Inst{Op: isa.OpDRAINM}) }

// Halt emits the end-of-program marker.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHALT}) }

// Loop runs body n times, emitting the counter maintenance and the
// loop-closing conditional branch each iteration, using ctr as the counter
// register (counts down from n). The branch shares one static site so the
// timing model's predictor sees a stable loop branch: predicted taken,
// mispredicted once on exit.
func (b *Builder) Loop(ctr isa.Reg, n int, body func(iter int)) {
	if n <= 0 {
		return
	}
	b.Li(ctr, int64(n))
	site := b.Site()
	for i := 0; i < n; i++ {
		body(i)
		b.OpImm(isa.OpSUBQ, ctr, ctr, 1)
		b.emitAt(isa.Inst{Op: isa.OpBNE, Src1: ctr, Imm: -1}, site)
	}
}

// ---- vector convenience emitters ----

// SetVL sets the vector length from register ra.
func (b *Builder) SetVL(ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpSETVL, Src1: ra})
}

// SetVLImm sets vl to an immediate via a scratch register.
func (b *Builder) SetVLImm(scratch isa.Reg, vl int) {
	b.Li(scratch, int64(vl))
	b.SetVL(scratch)
}

// SetVS sets the vector stride (bytes) from register ra.
func (b *Builder) SetVS(ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpSETVS, Src1: ra})
}

// SetVSImm sets vs to an immediate via a scratch register.
func (b *Builder) SetVSImm(scratch isa.Reg, stride int64) {
	b.Li(scratch, stride)
	b.SetVS(scratch)
}

// SetVM copies the low bit of each element of va into the mask register.
func (b *Builder) SetVM(va isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpSETVM, Src1: va})
}

// ClrVM resets the mask to all-ones.
func (b *Builder) ClrVM() { b.Emit(isa.Inst{Op: isa.OpVCLRM}) }

// VV emits a vector-vector operate.
func (b *Builder) VV(op isa.Op, vd, va, vb isa.Reg) {
	b.Emit(isa.Inst{Op: op, Dst: vd, Src1: va, Src2: vb})
}

// VVM emits a vector-vector operate under mask.
func (b *Builder) VVM(op isa.Op, vd, va, vb isa.Reg) {
	b.Emit(isa.Inst{Op: op, Dst: vd, Src1: va, Src2: vb, Masked: true})
}

// VFMA emits the §5 FMAC extension: vd += va·vb (2 flops per element).
func (b *Builder) VFMA(vd, va, vb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpVFMAT, Dst: vd, Src1: va, Src2: vb})
}

// VSFMA emits vd += va·scalar.
func (b *Builder) VSFMA(vd, va, scalar isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpVSFMAT, Dst: vd, Src1: va, Src2: scalar})
}

// VS emits a vector-scalar operate (scalar from the EV8 register file).
func (b *Builder) VS(op isa.Op, vd, va, scalar isa.Reg) {
	b.Emit(isa.Inst{Op: op, Dst: vd, Src1: va, Src2: scalar})
}

// VLdQ emits a strided vector load: vd[i] = mem[base+off+i*vs].
func (b *Builder) VLdQ(vd, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpVLDQ, Dst: vd, Src2: base, Imm: off})
}

// VLdQM emits a strided vector load under mask.
func (b *Builder) VLdQM(vd, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpVLDQ, Dst: vd, Src2: base, Imm: off, Masked: true})
}

// VStQ emits a strided vector store: mem[base+off+i*vs] = vs_[i].
func (b *Builder) VStQ(vs_, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpVSTQ, Src1: vs_, Src2: base, Imm: off})
}

// VStQM emits a strided vector store under mask.
func (b *Builder) VStQM(vs_, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpVSTQ, Src1: vs_, Src2: base, Imm: off, Masked: true})
}

// VPref emits a strided vector prefetch (destination v31; a single
// instruction can preload 128 cache lines, §6).
func (b *Builder) VPref(base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: isa.OpVLDQ, Dst: isa.VZero, Src2: base, Imm: off})
}

// VGath emits a gather: vd[i] = mem[base + vidx[i]].
func (b *Builder) VGath(vd, vidx, base isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpVGATHQ, Dst: vd, Idx: vidx, Src2: base})
}

// VGathPref emits a gather prefetch (destination v31).
func (b *Builder) VGathPref(vidx, base isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpVGATHQ, Dst: isa.VZero, Idx: vidx, Src2: base})
}

// VScat emits a scatter: mem[base + vidx[i]] = va[i].
func (b *Builder) VScat(va, vidx, base isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpVSCATQ, Src1: va, Idx: vidx, Src2: base})
}

// VScatM emits a scatter under mask.
func (b *Builder) VScatM(va, vidx, base isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpVSCATQ, Src1: va, Idx: vidx, Src2: base, Masked: true})
}

// VExtr moves element rb of va into scalar rd (20-cycle round trip, §2).
func (b *Builder) VExtr(rd, va, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpVEXTR, Dst: rd, Src1: va, Src2: rb})
}

// VIns writes scalar ra into element rb of vd.
func (b *Builder) VIns(vd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpVINS, Dst: vd, Src1: ra, Src2: rb})
}
