package vasm

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
)

func newM() *arch.Machine { return arch.New(mem.New()) }

// daxpyKernel hand-codes y += a*x over n elements, the canonical vector
// kernel, and is reused by several tests.
func daxpyKernel(xBase, yBase uint64, n int, a float64) Kernel {
	return func(b *Builder) {
		rx, ry, rn, rs := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		fa := isa.F(1)
		vx, vy := isa.V(0), isa.V(1)
		b.Li(rx, int64(xBase))
		b.Li(ry, int64(yBase))
		b.SetVSImm(rs, 8)
		b.M.WriteF(1, a) // scalar setup outside the timed loop
		full := n / isa.VLMax
		b.Loop(rn, full, func(int) {
			b.VLdQ(vx, rx, 0)
			b.VLdQ(vy, ry, 0)
			b.VS(isa.OpVSMULT, vx, vx, fa)
			b.VV(isa.OpVADDT, vy, vy, vx)
			b.VStQ(vy, ry, 0)
			b.AddImm(rx, rx, isa.VLMax*8)
			b.AddImm(ry, ry, isa.VLMax*8)
		})
		if rem := n % isa.VLMax; rem > 0 {
			b.SetVLImm(rs, rem)
			b.VLdQ(vx, rx, 0)
			b.VLdQ(vy, ry, 0)
			b.VS(isa.OpVSMULT, vx, vx, fa)
			b.VV(isa.OpVADDT, vy, vy, vx)
			b.VStQ(vy, ry, 0)
		}
		b.Halt()
	}
}

func TestDaxpyFunctionalCorrectness(t *testing.T) {
	m := newM()
	const n = 300 // exercises the remainder path (300 = 2*128 + 44)
	xBase, yBase := uint64(1<<20), uint64(2<<20)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) * 0.5
		y := float64(n - i)
		m.Mem.StoreQ(xBase+uint64(i)*8, f64bits(x))
		m.Mem.StoreQ(yBase+uint64(i)*8, f64bits(y))
		want[i] = y + 3.0*x
	}
	trace := Collect(m, daxpyKernel(xBase, yBase, n, 3.0))
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	for i := 0; i < n; i++ {
		got := f64from(m.Mem.LoadQ(yBase + uint64(i)*8))
		if got != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestTraceEffectsCarryAddresses(t *testing.T) {
	m := newM()
	trace := Collect(m, daxpyKernel(1<<20, 2<<20, 256, 1.0))
	vloads := 0
	for i := range trace {
		d := &trace[i]
		if d.Inst.Op == isa.OpVLDQ {
			vloads++
			if len(d.Eff.Addrs) != isa.VLMax {
				t.Fatalf("vldq carries %d addrs", len(d.Eff.Addrs))
			}
			if d.Eff.Stride != 8 {
				t.Fatalf("vldq stride = %d", d.Eff.Stride)
			}
		}
	}
	if vloads != 4 {
		t.Fatalf("expected 4 vector loads, got %d", vloads)
	}
}

func TestLoopEmitsStableBranchSite(t *testing.T) {
	m := newM()
	trace := Collect(m, func(b *Builder) {
		b.Loop(isa.R(1), 5, func(int) {
			b.OpImm(isa.OpADDQ, isa.R(2), isa.R(2), 1)
		})
		b.Halt()
	})
	var site uint32
	branches := 0
	for i := range trace {
		d := &trace[i]
		if d.Inst.Op != isa.OpBNE {
			continue
		}
		branches++
		if site == 0 {
			site = d.Site
		} else if d.Site != site {
			t.Fatal("loop branch site changed between iterations")
		}
		wantTaken := branches < 5
		if d.Eff.Taken != wantTaken {
			t.Fatalf("iteration %d: taken=%v, want %v", branches, d.Eff.Taken, wantTaken)
		}
	}
	if branches != 5 {
		t.Fatalf("expected 5 loop branches, got %d", branches)
	}
	if m.R[2] != 5 {
		t.Fatalf("loop body ran %d times", m.R[2])
	}
}

func TestStreamingTraceMatchesCollect(t *testing.T) {
	k := daxpyKernel(1<<20, 2<<20, 512, 2.0)
	collected := Collect(newM(), k)

	tr := NewTrace(newM(), k)
	defer tr.Close()
	var streamed []DynInst
	for d := tr.Next(); d != nil; d = tr.Next() {
		streamed = append(streamed, *d)
	}
	if len(streamed) != len(collected) {
		t.Fatalf("streamed %d, collected %d", len(streamed), len(collected))
	}
	for i := range streamed {
		if streamed[i].Inst.Op != collected[i].Inst.Op || streamed[i].Seq != collected[i].Seq {
			t.Fatalf("divergence at %d: %v vs %v", i, streamed[i].Inst, collected[i].Inst)
		}
	}
	if tr.Consumed() != uint64(len(collected)) {
		t.Fatalf("Consumed = %d", tr.Consumed())
	}
}

func TestTraceEarlyClose(t *testing.T) {
	// A consumer abandoning a long trace must not leak the producer.
	tr := NewTrace(newM(), func(b *Builder) {
		for i := 0; i < 1_000_000; i++ {
			b.OpImm(isa.OpADDQ, isa.R(1), isa.R(1), 1)
		}
	})
	for i := 0; i < 10; i++ {
		if tr.Next() == nil {
			t.Fatal("trace ended prematurely")
		}
	}
	tr.Close() // must not hang
}

func TestAllocAlignmentAndPadding(t *testing.T) {
	b := NewBuilder(newM(), func() *DynInst { return new(DynInst) })
	a1 := b.Alloc(100, 64)
	if a1%64 != 0 {
		t.Fatalf("misaligned alloc %#x", a1)
	}
	a2 := b.Alloc(8, 4096)
	if a2%4096 != 0 {
		t.Fatalf("misaligned alloc %#x", a2)
	}
	if a2 < a1+100 {
		t.Fatal("allocations overlap")
	}
	f := b.AllocF64(10, 65856) // the paper's STREAMS padding
	g := b.AllocF64(10, 65856)
	if g-f < 10*8+65856 {
		t.Fatalf("padding not honoured: gap %d", g-f)
	}
}

func TestMaskedScatterSkipsInactive(t *testing.T) {
	m := newM()
	Collect(m, func(b *Builder) {
		// mask = element index even
		for i := 0; i < isa.VLMax; i++ {
			m.V[9][i] = uint64((i + 1) % 2)
			m.V[1][i] = uint64(i * 8)
			m.V[0][i] = 0x77
		}
		b.SetVM(isa.V(9))
		b.Li(isa.R(1), 1<<20)
		b.VScatM(isa.V(0), isa.V(1), isa.R(1))
		b.Halt()
	})
	for i := 0; i < isa.VLMax; i++ {
		got := m.Mem.LoadQ(1<<20 + uint64(i*8))
		if i%2 == 0 && got != 0x77 {
			t.Fatalf("active element %d not scattered", i)
		}
		if i%2 == 1 && got != 0 {
			t.Fatalf("inactive element %d scattered", i)
		}
	}
}

func f64bits(v float64) uint64 {
	return mathFloat64bits(v)
}

func f64from(b uint64) float64 {
	return mathFloat64from(b)
}

func TestLoopZeroIterations(t *testing.T) {
	m := newM()
	trace := Collect(m, func(b *Builder) {
		b.Loop(isa.R(1), 0, func(int) { t.Fatal("body must not run") })
		b.Halt()
	})
	if len(trace) != 1 {
		t.Fatalf("zero-iteration loop emitted %d instructions", len(trace))
	}
}

func TestFMAHelpers(t *testing.T) {
	m := newM()
	Collect(m, func(b *Builder) {
		for i := 0; i < isa.VLMax; i++ {
			m.WriteVF(0, i, 2.0)
			m.WriteVF(1, i, 3.0)
			m.WriteVF(2, i, 10.0)
		}
		m.WriteF(1, 4.0)
		b.VFMA(isa.V(2), isa.V(0), isa.V(1))  // 10 + 2*3 = 16
		b.VSFMA(isa.V(2), isa.V(0), isa.F(1)) // 16 + 2*4 = 24
		b.Halt()
	})
	if got := m.ReadVF(2, 7); got != 24.0 {
		t.Fatalf("fma chain = %v, want 24", got)
	}
}

func TestBuilderCount(t *testing.T) {
	var b *Builder
	Collect(newM(), func(bb *Builder) {
		b = bb
		bb.Li(isa.R(1), 1)
		bb.Li(isa.R(2), 2)
		bb.Halt()
	})
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
}
