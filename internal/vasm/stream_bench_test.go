package vasm

import (
	"testing"

	"repro/internal/isa"
)

// benchKernel mixes vector memory, vector arithmetic and scalar memory — the
// instruction classes whose Effects used to allocate in the trace hot path.
func benchKernel(b *Builder) {
	base := b.AllocF64(1<<14, 0)
	b.Li(isa.R(1), int64(base))
	b.SetVLImm(isa.R(9), isa.VLMax)
	b.SetVSImm(isa.R(10), 8)
	b.Loop(isa.R(2), 512, func(iter int) {
		b.VLdQ(isa.V(1), isa.R(1), 0)
		b.VV(isa.OpVADDT, isa.V(2), isa.V(1), isa.V(1))
		b.VStQ(isa.V(2), isa.R(1), 0)
		b.LdT(isa.F(1), isa.R(1), 0)
		b.Op3(isa.OpADDT, isa.F(2), isa.F(1), isa.F(1))
		b.StT(isa.F(2), isa.R(1), 8)
	})
	b.Halt()
}

// BenchmarkTraceStream measures the streaming trace machinery itself (no
// timing model attached): instructions produced, batched across the channel
// and consumed. The allocs/op column is the guard — batch recycling plus the
// arch address arenas keep it to a few dozen allocations for the ~4600
// instructions each iteration streams.
func BenchmarkTraceStream(b *testing.B) {
	b.ReportAllocs()
	var insts uint64
	for i := 0; i < b.N; i++ {
		tr := NewTrace(newM(), benchKernel)
		for tr.Next() != nil {
		}
		insts = tr.Consumed()
		tr.Close()
	}
	b.ReportMetric(float64(insts), "insts")
}
