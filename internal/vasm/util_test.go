package vasm

import "math"

func mathFloat64bits(v float64) uint64 { return math.Float64bits(v) }
func mathFloat64from(b uint64) float64 { return math.Float64frombits(b) }
