package vasm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestCollectCheckedPositionalError: a kernel whose instruction faults
// functionally must come back as a *BuildError naming the exact dynamic
// instruction, not as a bare panic.
func TestCollectCheckedPositionalError(t *testing.T) {
	_, err := CollectChecked(arch.New(mem.New()), func(b *Builder) {
		b.Li(isa.R(1), 1234) // not 8-aligned
		b.LdT(isa.F(1), isa.R(1), 0)
		b.Halt()
	})
	var be *BuildError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *BuildError", err, err)
	}
	if be.Seq != 2 {
		t.Errorf("Seq = %d, want 2 (the faulting ldt is the second instruction)", be.Seq)
	}
	if be.Inst.Op != isa.OpLDT {
		t.Errorf("Inst.Op = %v, want OpLDT", be.Inst.Op)
	}
	if !strings.Contains(be.Cause, "unaligned") {
		t.Errorf("Cause = %q, want the mem panic text", be.Cause)
	}
	if !strings.Contains(be.Error(), "seq 2") {
		t.Errorf("Error() = %q missing the position", be.Error())
	}
}

// TestCollectCheckedCleanKernel: a healthy kernel returns its trace and a
// nil error.
func TestCollectCheckedCleanKernel(t *testing.T) {
	out, err := CollectChecked(arch.New(mem.New()), func(b *Builder) {
		b.Li(isa.R(1), 8)
		b.Halt()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("%d instructions, want 2", len(out))
	}
}

// TestCollectStillPanics: the legacy surface treats a bad kernel as a
// programming error and panics with the positional BuildError.
func TestCollectStillPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Collect did not panic")
		}
		if _, ok := r.(*BuildError); !ok {
			t.Fatalf("Collect panicked with %T, want *BuildError", r)
		}
	}()
	Collect(arch.New(mem.New()), func(b *Builder) {
		b.Li(isa.R(1), 1234)
		b.LdQ(isa.R(2), isa.R(1), 0)
	})
}

// TestTraceErrSurfacesProducerDeath: the streaming path must convert a dead
// producer into Err() instead of hanging or crashing the consumer, and the
// channel must still close so Next terminates.
func TestTraceErrSurfacesProducerDeath(t *testing.T) {
	tr := NewTrace(arch.New(mem.New()), func(b *Builder) {
		b.Li(isa.R(1), 1234)
		b.LdT(isa.F(1), isa.R(1), 0)
		b.Halt()
	})
	n := 0
	for tr.Next() != nil {
		n++
	}
	var be *BuildError
	if !errors.As(tr.Err(), &be) {
		t.Fatalf("Err() = %v, want *BuildError", tr.Err())
	}
	// Batching may withhold the li, but the aborted halt must never arrive.
	if n > 1 {
		t.Errorf("consumed %d instructions from a kernel that faulted on its second", n)
	}
}

// TestTraceErrKernelGoPanic: a kernel that panics in plain Go (not through
// an instruction) is still reported as a BuildError, with the zero Seq
// marking it as non-positional.
func TestTraceErrKernelGoPanic(t *testing.T) {
	tr := NewTrace(arch.New(mem.New()), func(b *Builder) {
		panic("boom")
	})
	for tr.Next() != nil {
	}
	var be *BuildError
	if !errors.As(tr.Err(), &be) {
		t.Fatalf("Err() = %v, want *BuildError", tr.Err())
	}
	if be.Seq != 0 {
		t.Errorf("Seq = %d, want 0 for a non-positional kernel panic", be.Seq)
	}
	if !strings.Contains(be.Error(), "boom") {
		t.Errorf("Error() = %q missing the panic value", be.Error())
	}
}

// TestTraceCleanRunHasNoErr: the error surface stays nil on success.
func TestTraceCleanRunHasNoErr(t *testing.T) {
	tr := NewTrace(arch.New(mem.New()), func(b *Builder) {
		b.Li(isa.R(1), 8)
		b.Halt()
	})
	for tr.Next() != nil {
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("Err() = %v on a clean run", err)
	}
}
