// Package zbox models Tarantula's memory controller: eight ports of RAMBUS
// channels (§3.1), with the effects that determine Table 4 — per-port
// occupancy, open-row (RDRAM page) tracking with activate/precharge costs,
// read↔write turnaround penalties, and directory-update transactions that
// consume raw bandwidth without moving useful data.
//
// All timing is expressed in CPU cycles; the sim package derives the
// constants from each configuration's CPU:RAMBUS frequency ratio, which is
// how the frequency-scaling study (Figure 8) changes memory behaviour.
package zbox

import (
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Kind is the transaction type.
type Kind uint8

const (
	// Read moves a 64-byte line from memory.
	Read Kind = iota
	// Write moves a 64-byte line to memory (victim writeback).
	Write
	// DirOp is a directory state transition (e.g. the Invalid→Dirty
	// transition a WH64 performs, §6). It occupies the port like a line
	// transfer, which reproduces the paper's "1/3 of raw bandwidth is
	// directory updates" accounting for the copy loop.
	DirOp
)

// Config sets the controller's timing, in CPU cycles.
type Config struct {
	Ports          int    // independent RAMBUS ports (8 on Tarantula, 2 on EV8)
	LineCycles     int    // port occupancy of one 64-byte transaction
	BaseLatency    int    // access latency beyond queuing/occupancy
	RowBytes       uint64 // RDRAM page size tracked per device
	DevicesPerPort int    // open-row trackers per port
	RowMissCycles  int    // activate+precharge cost on a row miss
	TurnCycles     int    // penalty when a port switches read↔write

	// Faults, when non-nil, adds deterministic occupancy jitter per
	// transaction (sim.New installs the chip's injector).
	Faults *faults.Injector
}

type request struct {
	addr uint64
	kind Kind
	done func(cycle uint64)
}

type port struct {
	queue     []request
	busyUntil uint64
	lastKind  Kind
	openRow   []uint64 // per device; ^0 = closed
}

// Zbox is the memory controller model.
type Zbox struct {
	cfg   Config
	ports []*port
	wheel *sched.Wheel

	// Registered counter handles (zbox.* namespace).
	reads, writes, dirOps metrics.Counter
	rowActivates, rowHits metrics.Counter
	turnarounds           metrics.Counter
}

// New returns a controller with the given configuration, registering its
// counters and queue-depth gauge under the registry's zbox namespace.
func New(cfg Config, reg *metrics.Registry) *Zbox {
	z := &Zbox{cfg: cfg, wheel: sched.NewWheel()}
	for i := 0; i < cfg.Ports; i++ {
		p := &port{openRow: make([]uint64, cfg.DevicesPerPort)}
		for j := range p.openRow {
			p.openRow[j] = ^uint64(0)
		}
		z.ports = append(z.ports, p)
	}
	m := reg.Scope("zbox")
	z.reads = m.Counter("reads")
	z.writes = m.Counter("writes")
	z.dirOps = m.Counter("dir_ops")
	z.rowActivates = m.Counter("row_activates")
	z.rowHits = m.Counter("row_hits")
	z.turnarounds = m.Counter("turnarounds")
	m.Gauge("queue", "Queued (not yet started) memory transactions.",
		func(uint64) int { return z.QueueDepth() })
	return z
}

// Request enqueues a transaction for the line containing addr. done is
// called with the cycle at which the transaction's data is available (reads)
// or durably accepted (writes/directory ops). Lines interleave across ports
// by address bits just above the line offset.
func (z *Zbox) Request(addr uint64, kind Kind, done func(cycle uint64)) {
	p := z.ports[int(addr>>6)%len(z.ports)]
	p.queue = append(p.queue, request{addr: addr, kind: kind, done: done})
}

// Busy reports whether any transactions are queued, in flight, or have
// undelivered completions.
func (z *Zbox) Busy() bool {
	if z.wheel.Pending() {
		return true
	}
	for _, p := range z.ports {
		if len(p.queue) > 0 {
			return true
		}
	}
	return false
}

// Tick advances the controller to cycle c: delivers due completions and
// starts at most one new transaction per idle port.
func (z *Zbox) Tick(c uint64) {
	z.wheel.Advance(c)
	for pi, p := range z.ports {
		if p.busyUntil > c || len(p.queue) == 0 {
			continue
		}
		req := p.queue[0]
		p.queue = p.queue[1:]
		occ := z.cfg.LineCycles

		// Open-row model: sequential streams stay within a page and pay
		// the activate cost once; random traffic (RndMemScale) reopens
		// pages constantly.
		dev := int(req.addr/z.cfg.RowBytes) % z.cfg.DevicesPerPort
		row := req.addr / z.cfg.RowBytes
		if p.openRow[dev] != row {
			p.openRow[dev] = row
			occ += z.cfg.RowMissCycles
			z.rowActivates.Inc()
		} else {
			z.rowHits.Inc()
		}

		// Read↔write turnaround: the bus direction change costs dead
		// cycles (the effect that caps STREAMS copy at ~90% of the
		// post-directory peak, §6).
		if req.kind != p.lastKind && (req.kind == Write) != (p.lastKind == Write) {
			occ += z.cfg.TurnCycles
			z.turnarounds.Inc()
		}
		p.lastKind = req.kind

		// Injected RAMBUS timing noise (deterministic per port and cycle).
		occ += int(z.cfg.Faults.MemLatency(pi, c))

		p.busyUntil = c + uint64(occ)
		switch req.kind {
		case Read:
			z.reads.Inc()
		case Write:
			z.writes.Inc()
		case DirOp:
			z.dirOps.Inc()
		}
		if req.done != nil {
			z.wheel.AtCall(c+uint64(occ)+uint64(z.cfg.BaseLatency), callDone, req.done)
		}
	}
}

// callDone invokes a stored completion callback with the fired cycle,
// allocation-free (see the l2 package's twin).
func callDone(cy uint64, a any) { a.(func(uint64))(cy) }

// NextWake returns the earliest cycle after now at which Tick can change any
// controller state: the next completion delivery, or the first cycle a port
// with queued work becomes free. ^uint64(0) means the controller is fully
// idle and will stay so without new requests.
func (z *Zbox) NextWake(now uint64) uint64 {
	wake := z.wheel.Next()
	for _, p := range z.ports {
		if len(p.queue) == 0 {
			continue
		}
		start := p.busyUntil
		if start <= now {
			start = now + 1
		}
		if start < wake {
			wake = start
		}
	}
	if wake <= now {
		wake = now + 1
	}
	return wake
}

// QueueDepth returns the total number of queued (not yet started)
// transactions, used by tests and by the L2's backpressure heuristics.
func (z *Zbox) QueueDepth() int {
	n := 0
	for _, p := range z.ports {
		n += len(p.queue)
	}
	return n
}
