package zbox

import (
	"testing"

	"repro/internal/metrics"
)

func testCfg() Config {
	return Config{
		Ports:          8,
		LineCycles:     16,
		BaseLatency:    100,
		RowBytes:       2048,
		DevicesPerPort: 32,
		RowMissCycles:  12,
		TurnCycles:     5,
	}
}

// drive advances the controller until quiescent, returning the final cycle.
func drive(z *Zbox, from uint64, max uint64) uint64 {
	cy := from
	for z.Busy() && cy < from+max {
		cy++
		z.Tick(cy)
	}
	return cy
}

func TestSingleReadLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	z := New(testCfg(), reg)
	st := reg.Stats()
	var done uint64
	z.Request(0x1000, Read, func(cy uint64) { done = cy })
	end := drive(z, 0, 10_000)
	if done == 0 {
		t.Fatalf("read never completed (end cycle %d)", end)
	}
	// occupancy 16 + row miss 12 + base latency 100, started at cycle 1.
	want := uint64(1 + 16 + 12 + 100)
	if done != want {
		t.Fatalf("read done at %d, want %d", done, want)
	}
	if st.MemReads != 1 || st.RowActivates != 1 {
		t.Fatalf("counters: reads=%d activates=%d", st.MemReads, st.RowActivates)
	}
}

func TestRowHitVsMiss(t *testing.T) {
	reg := metrics.NewRegistry()
	z := New(testCfg(), reg)
	st := reg.Stats()
	// Reads on different ports each open their own row.
	z.Request(0x0, Read, nil)  // port 0
	z.Request(0x40, Read, nil) // port 1
	drive(z, 0, 10_000)
	if st.RowActivates != 2 {
		t.Fatalf("expected 2 activates on distinct ports, got %d", st.RowActivates)
	}
	// Same port, same row: second should hit the open row.
	reg2 := metrics.NewRegistry()
	z2 := New(testCfg(), reg2)
	st2 := reg2.Stats()
	z2.Request(0x0, Read, nil)
	z2.Request(0x0+8*64, Read, nil) // +512B: port = same (addr>>6 mod 8), row same
	drive(z2, 0, 10_000)
	if st2.RowActivates != 1 || st2.RowHits != 1 {
		t.Fatalf("activates=%d hits=%d, want 1/1", st2.RowActivates, st2.RowHits)
	}
}

func TestReadWriteTurnaround(t *testing.T) {
	reg := metrics.NewRegistry()
	z := New(testCfg(), reg)
	st := reg.Stats()
	z.Request(0x0, Read, nil)
	z.Request(0x0+512, Write, nil)
	z.Request(0x0+1024, Read, nil)
	drive(z, 0, 10_000)
	if st.Turnarounds != 2 {
		t.Fatalf("turnarounds = %d, want 2 (read→write→read)", st.Turnarounds)
	}
}

func TestPortParallelism(t *testing.T) {
	// N lines spread over all 8 ports should take ~1/8 the time of N lines
	// on one port.
	cfg := testCfg()
	timeFor := func(stride uint64) uint64 {
		reg := metrics.NewRegistry()
		z := New(cfg, reg)
		var last uint64
		for i := uint64(0); i < 64; i++ {
			z.Request(i*stride, Read, func(cy uint64) { last = cy })
		}
		drive(z, 0, 100_000)
		return last
	}
	spread := timeFor(64)     // consecutive lines: round-robin over ports
	single := timeFor(8 * 64) // every 8th line: same port every time
	if single < 4*spread {
		t.Fatalf("port parallelism missing: single-port %d vs spread %d", single, spread)
	}
}

func TestDirOpCountsInRawTraffic(t *testing.T) {
	reg := metrics.NewRegistry()
	z := New(testCfg(), reg)
	st := reg.Stats()
	z.Request(0x40, DirOp, nil)
	drive(z, 0, 10_000)
	if st.MemDirOps != 1 {
		t.Fatalf("dir ops = %d", st.MemDirOps)
	}
	if st.RawMemBytes() != 64 {
		t.Fatalf("raw bytes = %d, want 64", st.RawMemBytes())
	}
}

func TestBandwidthUnderLoad(t *testing.T) {
	// Saturate all ports with a sequential stream: sustained throughput
	// should approach one line per LineCycles per port.
	cfg := testCfg()
	reg := metrics.NewRegistry()
	z := New(cfg, reg)
	const n = 800
	for i := uint64(0); i < n; i++ {
		z.Request(i*64, Read, nil)
	}
	end := drive(z, 0, 1_000_000)
	perPort := n / uint64(cfg.Ports)
	ideal := perPort * uint64(cfg.LineCycles)
	if end > ideal*3/2 {
		t.Fatalf("sequential stream took %d cycles, ideal ~%d", end, ideal)
	}
}

func TestRandomStreamActivatesMoreRows(t *testing.T) {
	cfg := testCfg()
	regSeq := metrics.NewRegistry()
	z := New(cfg, regSeq)
	seq := regSeq.Stats()
	for i := uint64(0); i < 256; i++ {
		z.Request(i*64, Read, nil)
	}
	drive(z, 0, 1_000_000)

	regRnd := metrics.NewRegistry()
	z2 := New(cfg, regRnd)
	rnd := regRnd.Stats()
	for i := uint64(0); i < 256; i++ {
		// Large-stride pseudo-random addresses thrash the open rows —
		// the RndMemScale effect ("2.5X more row activates", §6).
		z2.Request((i*2654435761)%(1<<26)&^63, Read, nil)
	}
	drive(z2, 0, 1_000_000)

	if rnd.RowActivates < 2*seq.RowActivates {
		t.Fatalf("random activates %d not >> sequential %d", rnd.RowActivates, seq.RowActivates)
	}
}

func TestCompletionOrderWithinPort(t *testing.T) {
	reg := metrics.NewRegistry()
	z := New(testCfg(), reg)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		z.Request(uint64(i)*512*8, Read, func(uint64) { order = append(order, i) })
	}
	drive(z, 0, 100_000)
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("same-port requests completed out of order: %v", order)
		}
	}
}
