package zbox

import (
	"fmt"

	"repro/internal/snapshot"
)

// SaveState encodes the controller's durable state at a quiescent boundary:
// per-port busy-until (delta-encoded), last transfer direction, and the
// open-row tracker of every device. Queued transactions carry completion
// callbacks and must be gone; Busy() is the caller's precondition, enforced
// again here so a non-quiescent save is an error instead of silent loss.
func (z *Zbox) SaveState(w *snapshot.Writer, now uint64) error {
	if z.Busy() {
		return fmt.Errorf("zbox: transactions in flight; snapshots require a quiescent chip")
	}
	w.Tag("zbox")
	w.U64(uint64(len(z.ports)))
	for _, p := range z.ports {
		w.Delta(p.busyUntil, now)
		w.U8(uint8(p.lastKind))
		w.U64(uint64(len(p.openRow)))
		for _, row := range p.openRow {
			w.U64(row)
		}
	}
	return z.wheel.SaveState(w, now)
}

// LoadState restores the controller; the blob's port/device geometry must
// match the constructed configuration.
func (z *Zbox) LoadState(r *snapshot.Reader, now uint64) error {
	r.Tag("zbox")
	nports := r.Len(17)
	if r.Err() != nil {
		return r.Err()
	}
	if nports != len(z.ports) {
		return fmt.Errorf("%w: %d zbox ports, chip has %d", snapshot.ErrCorrupt, nports, len(z.ports))
	}
	for _, p := range z.ports {
		p.busyUntil = r.Abs(now)
		k := r.U8()
		if k > uint8(DirOp) {
			return fmt.Errorf("%w: unknown transaction kind %d", snapshot.ErrCorrupt, k)
		}
		p.lastKind = Kind(k)
		ndev := r.Len(8)
		if r.Err() != nil {
			return r.Err()
		}
		if ndev != len(p.openRow) {
			return fmt.Errorf("%w: %d zbox devices per port, chip has %d", snapshot.ErrCorrupt, ndev, len(p.openRow))
		}
		for j := range p.openRow {
			p.openRow[j] = r.U64()
		}
	}
	return z.wheel.LoadState(r, now)
}
