package faults_test

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// runJittered executes one real benchmark under a fault campaign and returns
// its statistics; the workload layer (not a synthetic kernel) is used so the
// determinism contract is tested across every injection hook at once.
func runJittered(t *testing.T, fc *faults.Config) *stats.Stats {
	t.Helper()
	b, err := workloads.Get("streams_add")
	if err != nil {
		t.Fatal(err)
	}
	cfg := *sim.T()
	cfg.Faults = fc
	res, err := b.Run(&cfg, workloads.Test)
	if err != nil {
		t.Fatalf("jittered run failed: %v", err)
	}
	return res.Stats
}

// TestSameSeedSameStats is the harness's core contract: a fault campaign is
// a pure function of its seed, so two runs with the same seed must produce
// bit-identical statistics, and the perturbation must actually perturb.
func TestSameSeedSameStats(t *testing.T) {
	clean := runJittered(t, nil)
	a := runJittered(t, faults.Jitter(7))
	b := runJittered(t, faults.Jitter(7))
	c := runJittered(t, faults.Jitter(8))
	if *a != *b {
		t.Errorf("same seed diverged:\n  a: %+v\n  b: %+v", *a, *b)
	}
	if *a == *clean {
		t.Error("Jitter(7) left the statistics identical to a fault-free run; the campaign injected nothing")
	}
	if *a == *c {
		t.Error("seeds 7 and 8 produced identical statistics; the seed is not reaching the hash")
	}
}

// TestTargetsExactCells verifies the explicit cell list is an exact match.
func TestTargetsExactCells(t *testing.T) {
	fc := &faults.Config{Cells: []string{"streams_add@T"}}
	if !fc.Targets("streams_add@T") {
		t.Error("listed cell not targeted")
	}
	if fc.Targets("streams_copy@T") || fc.Targets("streams_add@EV8") {
		t.Error("unlisted cell targeted")
	}
}

// TestTargetsSeededSubset checks the seeded selection is deterministic and
// lands near the documented one-in-four rate.
func TestTargetsSeededSubset(t *testing.T) {
	fc := &faults.Config{Seed: 3}
	again := &faults.Config{Seed: 3}
	hit := 0
	for i := 0; i < 400; i++ {
		key := string(rune('a'+i%26)) + "@" + string(rune('A'+i%7))
		key += string(rune('0' + i/26%10))
		if fc.Targets(key) != again.Targets(key) {
			t.Fatalf("selection for %q not deterministic", key)
		}
		if fc.Targets(key) {
			hit++
		}
	}
	if hit < 50 || hit > 160 {
		t.Errorf("seeded selection hit %d/400 cells; want roughly 1 in 4", hit)
	}
	if (*faults.Config)(nil).Targets("x@T") {
		t.Error("nil campaign targeted a cell")
	}
}

// TestNilInjectorSafe proves every hook is callable through a nil injector —
// the components rely on this to avoid branching on the fault config.
func TestNilInjectorSafe(t *testing.T) {
	var i *faults.Injector
	if i.MemLatency(0, 1) != 0 || i.L2Latency(1) != 0 {
		t.Error("nil injector added latency")
	}
	if i.StallFUs(1) || i.StallVPorts(1) {
		t.Error("nil injector stalled a unit")
	}
	if i.InflateWake(5, 9) != 9 {
		t.Error("nil injector perturbed a wake hint")
	}
	if i.Active() {
		t.Error("nil injector reports active")
	}
}

// TestInflateWakeOnlyDelays checks the hint perturbation models exactly the
// too-late bug class: hints may move later, never earlier.
func TestInflateWakeOnlyDelays(t *testing.T) {
	i := faults.New(&faults.Config{Seed: 1, DropWakePct: 100, DropWakeSpan: 16})
	for cy := uint64(0); cy < 1000; cy++ {
		w := i.InflateWake(cy, cy+4)
		if w <= cy+4 {
			t.Fatalf("cy=%d: 100%% campaign returned hint %d, want strictly later than %d", cy, w, cy+4)
		}
		if w > cy+4+17 {
			t.Fatalf("cy=%d: inflation %d exceeds span bound", cy, w-(cy+4))
		}
	}
}

// TestKillWorker pins the out-of-process drill's selection rules: targeted
// cell only, first attempt only, nil-safe, and off unless armed.
func TestKillWorker(t *testing.T) {
	i := faults.New(faults.WorkerKiller("dgemm@T", "streams_copy@EV8"))
	if !i.KillWorker("dgemm@T", 0) || !i.KillWorker("streams_copy@EV8", 0) {
		t.Error("targeted cell not killed on first attempt")
	}
	if i.KillWorker("dgemm@T", 1) || i.KillWorker("dgemm@T", 2) {
		t.Error("retry attempt killed: the drill must prove recovery, not permanent denial")
	}
	if i.KillWorker("dgemm@EV8", 0) {
		t.Error("untargeted cell killed")
	}
	if (*faults.Injector)(nil).KillWorker("dgemm@T", 0) {
		t.Error("nil injector killed a worker")
	}
	// A campaign without WorkerKill never kills, even for targeted cells.
	j := faults.New(&faults.Config{Cells: []string{"dgemm@T"}})
	if j.KillWorker("dgemm@T", 0) {
		t.Error("unarmed campaign killed a worker")
	}
}

// TestKillStorm pins the storm escalation: targeted cells are killed on
// every attempt below the depth, untargeted cells never, and the plain
// drill's first-attempt-only rule is unchanged by an unarmed storm field.
func TestKillStorm(t *testing.T) {
	i := faults.New(faults.KillStorm(1, 3, "dgemm@T"))
	for attempt := 0; attempt < 3; attempt++ {
		if !i.KillWorker("dgemm@T", attempt) {
			t.Errorf("storm depth 3 spared attempt %d", attempt)
		}
	}
	if i.KillWorker("dgemm@T", 3) {
		t.Error("storm killed past its depth")
	}
	if i.KillWorker("dgemm@EV8", 0) {
		t.Error("storm killed an untargeted cell")
	}
	if (*faults.Injector)(nil).KillWorker("dgemm@T", 0) {
		t.Error("nil injector stormed")
	}
}

// TestDiskFaultHooks checks the service-layer hooks: nil-safe, off when
// unarmed, deterministic per (seed, operation order), and firing at roughly
// the configured rate.
func TestDiskFaultHooks(t *testing.T) {
	var nilInj *faults.Injector
	if nilInj.DiskReadError() || nilInj.DiskWriteError() || nilInj.TornWrite() {
		t.Error("nil injector faulted a disk op")
	}
	if off := faults.New(&faults.Config{Seed: 3}); off.DiskReadError() || off.DiskWriteError() || off.TornWrite() {
		t.Error("unarmed campaign faulted a disk op")
	}

	draw := func(seed int64) []bool {
		i := faults.New(faults.DiskChaos(seed))
		out := make([]bool, 0, 300)
		for n := 0; n < 100; n++ {
			out = append(out, i.DiskReadError(), i.DiskWriteError(), i.TornWrite())
		}
		return out
	}
	a, b, c := draw(11), draw(11), draw(12)
	same := true
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at op %d", k)
		}
		if a[k] != c[k] {
			same = false
		}
	}
	if same {
		t.Error("seeds 11 and 12 drew identical fault sequences")
	}
	hits := 0
	for _, v := range a {
		if v {
			hits++
		}
	}
	// 25% nominal over 300 draws: accept a generous band, the contract is
	// "the campaign actually injects", not an exact rate.
	if hits < 30 || hits > 150 {
		t.Errorf("DiskChaos fired %d/300 ops, want within [30,150]", hits)
	}
}
