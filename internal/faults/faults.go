// Package faults is the simulator's deterministic fault-injection harness.
// It exists to prove a negative: that the timing model's safety nets — the
// retirement watchdog, the post-HALT drain loops, the idle-cycle
// fast-forward clamps — degrade gracefully under perturbation instead of
// hanging the process or silently corrupting statistics.
//
// Every decision is a pure function of (seed, cycle, stream): the injector
// carries no mutable state, so the same seed reproduces the same fault
// pattern regardless of how many times a hook is consulted, in which order
// components tick, or whether the fast-forward skips the surrounding idle
// cycles. That purity is what makes "same seed, same Stats" a testable
// contract.
package faults

import (
	"hash/fnv"
	"sync/atomic"
	"time"
)

// Config describes one fault campaign. The zero value injects nothing.
type Config struct {
	// Seed selects the deterministic perturbation pattern.
	Seed int64

	// MemJitter adds 0..MemJitter extra occupancy cycles to each memory
	// controller transaction (RAMBUS timing noise).
	MemJitter int

	// L2Jitter adds 0..L2Jitter extra cycles to each L2 response latency.
	L2Jitter int

	// FUStallPct freezes every core functional-unit pool for a cycle with
	// the given percent probability (transient issue-logic stalls).
	FUStallPct int

	// VPortStallPct freezes the Vbox issue ports for a cycle with the given
	// percent probability.
	VPortStallPct int

	// StallStormFrom, when non-zero, permanently stalls every core FU pool
	// from that cycle on: the machine is guaranteed to wedge, and the
	// watchdog must convert the wedge into a WedgeError instead of a hang.
	StallStormFrom uint64

	// DropWakePct inflates idle-cycle fast-forward wake hints with the given
	// percent probability — the "too-late NextWake" bug class, seeded
	// deliberately so the invariant checker can prove it catches it.
	DropWakePct int
	// DropWakeSpan bounds the inflation in cycles (default 64).
	DropWakeSpan int

	// WorkerKill arms the out-of-process fault drill: the subprocess
	// execution backend SIGKILLs the worker of every targeted cell mid-job,
	// on the job's first attempt only. The server-visible contract under
	// test is that the job still completes — retried on another worker —
	// and the service itself never notices beyond a retry counter. The
	// in-process backend ignores the flag (there is no process to kill).
	WorkerKill bool

	// WorkerKillStorm escalates the drill into a storm: targeted cells'
	// workers are SIGKILLed on every attempt below the value, so a storm
	// deeper than the retry budget deterministically exhausts it. The
	// contract under test shifts from "the retry recovers" to "the server
	// sheds with a structured worker_crash envelope and quarantines the
	// poisoned confhash instead of retry-looping the fleet to death".
	WorkerKillStorm int

	// DiskErrPct injects I/O errors into the disk result store with the
	// given percent probability per read or write. A failed write costs
	// durability for that one artifact (the miss re-simulates); a failed
	// read is a transient miss. Neither may corrupt the store or hang a
	// request.
	DiskErrPct int

	// DiskTornPct, per store write, persists a torn artifact — a prefix of
	// the real bytes at the final path, modeling a crash that beat the
	// atomic-rename protocol (power loss between rename and data flush).
	// The store's corruption-tolerant loader must quarantine the file on
	// the next read instead of serving it or crashing.
	DiskTornPct int

	// Cells, when non-empty, restricts a sweep-level campaign to these
	// exact (benchmark@config) keys. When empty, Targets selects a seeded
	// pseudo-random subset of cells instead.
	Cells []string
}

// Targets reports whether a sweep cell (keyed "bench@config") is under
// attack in this campaign. With an explicit Cells list the match is exact;
// otherwise roughly one cell in four is selected, deterministically from
// the seed, so a fault drill always hits a reproducible subset.
func (c *Config) Targets(key string) bool {
	if c == nil {
		return false
	}
	if len(c.Cells) > 0 {
		for _, k := range c.Cells {
			if k == key {
				return true
			}
		}
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return splitmix64(uint64(c.Seed)^h.Sum64())%4 == 0
}

// Jitter is the canned single-run campaign (tarsim -faults): latency noise
// on the memory system plus transient issue stalls. Runs complete — slower
// and with different counters, but without wedging.
func Jitter(seed int64) *Config {
	return &Config{Seed: seed, MemJitter: 24, L2Jitter: 12, FUStallPct: 5, VPortStallPct: 5}
}

// Storm is the canned sweep campaign (tartables -faults): targeted cells
// have every core FU pool frozen from cycle `from` on, guaranteeing a wedge
// the per-cell hardening must report as an error row.
func Storm(seed int64, from uint64) *Config {
	if from == 0 {
		from = 100_000
	}
	return &Config{Seed: seed, StallStormFrom: from}
}

// WorkerKiller is the canned out-of-process campaign (tarserved
// -kill-worker): SIGKILL the subprocess worker of each listed cell mid-job,
// first attempt only. No timing perturbation — the fault is the process
// death itself.
func WorkerKiller(cells ...string) *Config {
	return &Config{WorkerKill: true, Cells: cells}
}

// KillStorm is the canned worker-kill storm (tarserved -chaos storm):
// targeted cells' workers are SIGKILLed on every attempt below depth. With
// depth within the retry budget the job survives the storm; past it the
// server must shed with worker_crash and poison the confhash.
func KillStorm(seed int64, depth int, cells ...string) *Config {
	if depth <= 0 {
		depth = 2
	}
	return &Config{Seed: seed, WorkerKillStorm: depth, Cells: cells}
}

// DiskChaos is the canned disk-store campaign (tarserved -chaos disk): one
// in four store operations fails with an injected I/O error and one in four
// writes lands torn. The store must quarantine what it cannot decode, miss
// on what it cannot read, and never serve a corrupt artifact.
func DiskChaos(seed int64) *Config {
	return &Config{Seed: seed, DiskErrPct: 25, DiskTornPct: 25}
}

// Injector is the per-chip view of a Config. A nil *Injector is valid and
// injects nothing, so components call the hooks unconditionally.
//
// Simulation hooks stay pure functions of (seed, cycle, stream). The
// service-layer hooks (disk faults) have no simulated cycle to key on, so
// they draw from a per-injector operation counter instead: the decision
// sequence is deterministic for a given seed and serial operation order,
// which is the strongest reproducibility a concurrent service can offer.
type Injector struct {
	cfg Config
	opN atomic.Uint64
}

// New returns an injector for cfg, or nil when cfg is nil (no faults).
func New(cfg *Config) *Injector {
	if cfg == nil {
		return nil
	}
	return &Injector{cfg: *cfg}
}

// Streams namespace the hash so the same cycle rolls independently per hook.
const (
	streamMem      uint64 = 0x9e3779b97f4a7c15
	streamL2       uint64 = 0xd1b54a32d192ed03
	streamFU       uint64 = 0x8cb92ba72f3d8dd7
	streamVPort    uint64 = 0xaef17502108ef2d9
	streamWake     uint64 = 0xf1357aea2e62a9c5
	streamDiskRead uint64 = 0xc6a4a7935bd1e995
	streamDiskWr   uint64 = 0xff51afd7ed558ccd
	streamDiskTorn uint64 = 0xc4ceb9fe1a85ec53
)

// splitmix64 is the standard 64-bit finalizer; one application is enough to
// decorrelate consecutive cycles.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns the deterministic 64-bit draw for (seed, stream, cy, lane).
func (i *Injector) roll(stream, cy, lane uint64) uint64 {
	return splitmix64(uint64(i.cfg.Seed) ^ stream ^ splitmix64(cy*0x2545f4914f6cdd1d+lane))
}

// MemLatency returns the extra occupancy cycles for a memory transaction
// starting at cycle cy on the given controller port.
func (i *Injector) MemLatency(port int, cy uint64) uint64 {
	if i == nil || i.cfg.MemJitter <= 0 {
		return 0
	}
	return i.roll(streamMem, cy, uint64(port)) % uint64(i.cfg.MemJitter+1)
}

// L2Latency returns the extra response cycles for an L2 lookup at cycle cy.
func (i *Injector) L2Latency(cy uint64) uint64 {
	if i == nil || i.cfg.L2Jitter <= 0 {
		return 0
	}
	return i.roll(streamL2, cy, 0) % uint64(i.cfg.L2Jitter+1)
}

// StallFUs reports whether every core functional-unit pool is frozen at
// cycle cy (transient stall or permanent storm).
func (i *Injector) StallFUs(cy uint64) bool {
	if i == nil {
		return false
	}
	if i.cfg.StallStormFrom > 0 && cy >= i.cfg.StallStormFrom {
		return true
	}
	if i.cfg.FUStallPct <= 0 {
		return false
	}
	return i.roll(streamFU, cy, 0)%100 < uint64(i.cfg.FUStallPct)
}

// StallVPorts reports whether the Vbox issue ports are frozen at cycle cy.
func (i *Injector) StallVPorts(cy uint64) bool {
	if i == nil || i.cfg.VPortStallPct <= 0 {
		return false
	}
	return i.roll(streamVPort, cy, 0)%100 < uint64(i.cfg.VPortStallPct)
}

// InflateWake perturbs a fast-forward wake hint, returning a possibly later
// cycle — a seeded model of the "hint claims idle too long" bug class. The
// caller's watchdog clamp is what keeps this a detectable fault rather than
// a hang.
func (i *Injector) InflateWake(now, wake uint64) uint64 {
	if i == nil || i.cfg.DropWakePct <= 0 {
		return wake
	}
	if i.roll(streamWake, now, 0)%100 >= uint64(i.cfg.DropWakePct) {
		return wake
	}
	span := i.cfg.DropWakeSpan
	if span <= 0 {
		span = 64
	}
	return wake + 1 + i.roll(streamWake, now, 1)%uint64(span)
}

// KillWorker reports whether the subprocess backend should SIGKILL the
// worker executing the given cell on this attempt (0-based). The plain
// drill (WorkerKill) fires on the first attempt only, so the retried job
// always completes — it proves recovery, not permanent denial. A storm
// (WorkerKillStorm) fires on every attempt below its depth, so a storm
// deeper than the retry budget proves the shed-and-quarantine path instead.
func (i *Injector) KillWorker(key string, attempt int) bool {
	if i == nil || !i.cfg.Targets(key) {
		return false
	}
	if i.cfg.WorkerKillStorm > 0 && attempt < i.cfg.WorkerKillStorm {
		return true
	}
	return i.cfg.WorkerKill && attempt == 0
}

// serviceRoll draws the next decision for a service-layer stream: the op
// counter substitutes for the simulated cycle the disk has no notion of.
func (i *Injector) serviceRoll(stream uint64) uint64 {
	return i.roll(stream, i.opN.Add(1), 0)
}

// DiskReadError reports whether this disk-store read should fail with an
// injected I/O error (a transient miss; the entry itself stays intact).
func (i *Injector) DiskReadError() bool {
	if i == nil || i.cfg.DiskErrPct <= 0 {
		return false
	}
	return i.serviceRoll(streamDiskRead)%100 < uint64(i.cfg.DiskErrPct)
}

// DiskWriteError reports whether this disk-store write should fail with an
// injected I/O error (the artifact loses durability; nothing is persisted).
func (i *Injector) DiskWriteError() bool {
	if i == nil || i.cfg.DiskErrPct <= 0 {
		return false
	}
	return i.serviceRoll(streamDiskWr)%100 < uint64(i.cfg.DiskErrPct)
}

// TornWrite reports whether this disk-store write should persist only a
// prefix of the artifact at its final path — the crash-beat-the-rename
// corruption the store's loader must quarantine rather than serve.
func (i *Injector) TornWrite() bool {
	if i == nil || i.cfg.DiskTornPct <= 0 {
		return false
	}
	return i.serviceRoll(streamDiskTorn)%100 < uint64(i.cfg.DiskTornPct)
}

// Active reports whether the injector perturbs anything at all.
func (i *Injector) Active() bool { return i != nil }

// String summarises the campaign for log lines and error rows.
func (i *Injector) String() string {
	if i == nil {
		return "faults: off"
	}
	return "faults: seeded campaign"
}

// Deadline is a small helper shared by the run harnesses: zero means no
// deadline, anything else converts to an absolute wall-clock instant.
func Deadline(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}
