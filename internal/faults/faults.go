// Package faults is the simulator's deterministic fault-injection harness.
// It exists to prove a negative: that the timing model's safety nets — the
// retirement watchdog, the post-HALT drain loops, the idle-cycle
// fast-forward clamps — degrade gracefully under perturbation instead of
// hanging the process or silently corrupting statistics.
//
// Every decision is a pure function of (seed, cycle, stream): the injector
// carries no mutable state, so the same seed reproduces the same fault
// pattern regardless of how many times a hook is consulted, in which order
// components tick, or whether the fast-forward skips the surrounding idle
// cycles. That purity is what makes "same seed, same Stats" a testable
// contract.
package faults

import (
	"hash/fnv"
	"time"
)

// Config describes one fault campaign. The zero value injects nothing.
type Config struct {
	// Seed selects the deterministic perturbation pattern.
	Seed int64

	// MemJitter adds 0..MemJitter extra occupancy cycles to each memory
	// controller transaction (RAMBUS timing noise).
	MemJitter int

	// L2Jitter adds 0..L2Jitter extra cycles to each L2 response latency.
	L2Jitter int

	// FUStallPct freezes every core functional-unit pool for a cycle with
	// the given percent probability (transient issue-logic stalls).
	FUStallPct int

	// VPortStallPct freezes the Vbox issue ports for a cycle with the given
	// percent probability.
	VPortStallPct int

	// StallStormFrom, when non-zero, permanently stalls every core FU pool
	// from that cycle on: the machine is guaranteed to wedge, and the
	// watchdog must convert the wedge into a WedgeError instead of a hang.
	StallStormFrom uint64

	// DropWakePct inflates idle-cycle fast-forward wake hints with the given
	// percent probability — the "too-late NextWake" bug class, seeded
	// deliberately so the invariant checker can prove it catches it.
	DropWakePct int
	// DropWakeSpan bounds the inflation in cycles (default 64).
	DropWakeSpan int

	// WorkerKill arms the out-of-process fault drill: the subprocess
	// execution backend SIGKILLs the worker of every targeted cell mid-job,
	// on the job's first attempt only. The server-visible contract under
	// test is that the job still completes — retried on another worker —
	// and the service itself never notices beyond a retry counter. The
	// in-process backend ignores the flag (there is no process to kill).
	WorkerKill bool

	// Cells, when non-empty, restricts a sweep-level campaign to these
	// exact (benchmark@config) keys. When empty, Targets selects a seeded
	// pseudo-random subset of cells instead.
	Cells []string
}

// Targets reports whether a sweep cell (keyed "bench@config") is under
// attack in this campaign. With an explicit Cells list the match is exact;
// otherwise roughly one cell in four is selected, deterministically from
// the seed, so a fault drill always hits a reproducible subset.
func (c *Config) Targets(key string) bool {
	if c == nil {
		return false
	}
	if len(c.Cells) > 0 {
		for _, k := range c.Cells {
			if k == key {
				return true
			}
		}
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return splitmix64(uint64(c.Seed)^h.Sum64())%4 == 0
}

// Jitter is the canned single-run campaign (tarsim -faults): latency noise
// on the memory system plus transient issue stalls. Runs complete — slower
// and with different counters, but without wedging.
func Jitter(seed int64) *Config {
	return &Config{Seed: seed, MemJitter: 24, L2Jitter: 12, FUStallPct: 5, VPortStallPct: 5}
}

// Storm is the canned sweep campaign (tartables -faults): targeted cells
// have every core FU pool frozen from cycle `from` on, guaranteeing a wedge
// the per-cell hardening must report as an error row.
func Storm(seed int64, from uint64) *Config {
	if from == 0 {
		from = 100_000
	}
	return &Config{Seed: seed, StallStormFrom: from}
}

// WorkerKiller is the canned out-of-process campaign (tarserved
// -kill-worker): SIGKILL the subprocess worker of each listed cell mid-job,
// first attempt only. No timing perturbation — the fault is the process
// death itself.
func WorkerKiller(cells ...string) *Config {
	return &Config{WorkerKill: true, Cells: cells}
}

// Injector is the per-chip view of a Config. A nil *Injector is valid and
// injects nothing, so components call the hooks unconditionally.
type Injector struct {
	cfg Config
}

// New returns an injector for cfg, or nil when cfg is nil (no faults).
func New(cfg *Config) *Injector {
	if cfg == nil {
		return nil
	}
	return &Injector{cfg: *cfg}
}

// Streams namespace the hash so the same cycle rolls independently per hook.
const (
	streamMem   uint64 = 0x9e3779b97f4a7c15
	streamL2    uint64 = 0xd1b54a32d192ed03
	streamFU    uint64 = 0x8cb92ba72f3d8dd7
	streamVPort uint64 = 0xaef17502108ef2d9
	streamWake  uint64 = 0xf1357aea2e62a9c5
)

// splitmix64 is the standard 64-bit finalizer; one application is enough to
// decorrelate consecutive cycles.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns the deterministic 64-bit draw for (seed, stream, cy, lane).
func (i *Injector) roll(stream, cy, lane uint64) uint64 {
	return splitmix64(uint64(i.cfg.Seed) ^ stream ^ splitmix64(cy*0x2545f4914f6cdd1d+lane))
}

// MemLatency returns the extra occupancy cycles for a memory transaction
// starting at cycle cy on the given controller port.
func (i *Injector) MemLatency(port int, cy uint64) uint64 {
	if i == nil || i.cfg.MemJitter <= 0 {
		return 0
	}
	return i.roll(streamMem, cy, uint64(port)) % uint64(i.cfg.MemJitter+1)
}

// L2Latency returns the extra response cycles for an L2 lookup at cycle cy.
func (i *Injector) L2Latency(cy uint64) uint64 {
	if i == nil || i.cfg.L2Jitter <= 0 {
		return 0
	}
	return i.roll(streamL2, cy, 0) % uint64(i.cfg.L2Jitter+1)
}

// StallFUs reports whether every core functional-unit pool is frozen at
// cycle cy (transient stall or permanent storm).
func (i *Injector) StallFUs(cy uint64) bool {
	if i == nil {
		return false
	}
	if i.cfg.StallStormFrom > 0 && cy >= i.cfg.StallStormFrom {
		return true
	}
	if i.cfg.FUStallPct <= 0 {
		return false
	}
	return i.roll(streamFU, cy, 0)%100 < uint64(i.cfg.FUStallPct)
}

// StallVPorts reports whether the Vbox issue ports are frozen at cycle cy.
func (i *Injector) StallVPorts(cy uint64) bool {
	if i == nil || i.cfg.VPortStallPct <= 0 {
		return false
	}
	return i.roll(streamVPort, cy, 0)%100 < uint64(i.cfg.VPortStallPct)
}

// InflateWake perturbs a fast-forward wake hint, returning a possibly later
// cycle — a seeded model of the "hint claims idle too long" bug class. The
// caller's watchdog clamp is what keeps this a detectable fault rather than
// a hang.
func (i *Injector) InflateWake(now, wake uint64) uint64 {
	if i == nil || i.cfg.DropWakePct <= 0 {
		return wake
	}
	if i.roll(streamWake, now, 0)%100 >= uint64(i.cfg.DropWakePct) {
		return wake
	}
	span := i.cfg.DropWakeSpan
	if span <= 0 {
		span = 64
	}
	return wake + 1 + i.roll(streamWake, now, 1)%uint64(span)
}

// KillWorker reports whether the subprocess backend should SIGKILL the
// worker executing the given cell on this attempt (0-based). Kills fire on
// the first attempt only, so the retried job always completes — the drill
// proves recovery, not permanent denial.
func (i *Injector) KillWorker(key string, attempt int) bool {
	return i != nil && i.cfg.WorkerKill && attempt == 0 && i.cfg.Targets(key)
}

// Active reports whether the injector perturbs anything at all.
func (i *Injector) Active() bool { return i != nil }

// String summarises the campaign for log lines and error rows.
func (i *Injector) String() string {
	if i == nil {
		return "faults: off"
	}
	return "faults: seeded campaign"
}

// Deadline is a small helper shared by the run harnesses: zero means no
// deadline, anything else converts to an absolute wall-clock instant.
func Deadline(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}
