// Package confhash gives every experiment a content-addressed identity: a
// stable hash over the full machine configuration plus the benchmark name
// and input scale. Two semantically identical sim.Config values — same
// knobs, regardless of which constructor produced them or what display
// Name they carry — hash equal; changing any knob (cache geometry, clock,
// integrity settings like Deadline or an attached fault campaign) changes
// the hash.
//
// The hash is the shared currency of the result-caching layers: the sweep
// runner in internal/tables keys its singleflight memoisation on it, the
// tarserved job server keys its LRU result cache on it, and cmd/tartables
// -json stamps it onto every exported cell so CLI and API artifacts are
// comparable by identity, not provenance.
package confhash

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"
	"sort"

	"repro/internal/sim"
)

// Config returns the canonical digest of a machine configuration. The
// display Name is excluded (it is presentation, not semantics): sim.T()
// renamed "T-prime" hashes the same, while flipping any actual knob —
// including the integrity layer's Check/Deadline/Watchdog/Faults — does
// not.
func Config(cfg *sim.Config) string {
	h := sha256.New()
	c := *cfg
	c.Name = ""
	writeValue(h, reflect.ValueOf(&c).Elem())
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Key returns the content address of one experiment: benchmark × input
// scale × machine configuration. It is the memoisation key in
// internal/tables and the cache key in the tarserved server.
func Key(bench, scale string, cfg *sim.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "bench=%s;scale=%s;cfg=%s", bench, scale, Config(cfg))
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// WarmupKey returns the content address of an experiment's warm-up phase:
// benchmark × input scale × machine configuration with the knobs that
// cannot influence pre-ROI timing normalized away. Two configurations that
// differ only in those knobs share a warm-up key — and therefore share a
// post-Setup chip snapshot — while their full Keys still differ.
//
// The only normalized knob today is Vbox.PhysVRegs: warm-up kernels emit
// no vector instructions (setup is scalar data placement), so the physical
// vector register file size cannot affect a single warm-up cycle. The
// warm-up snapshot A/B tests enforce this empirically — snapshot payloads
// must be byte-identical across PhysVRegs values — so widening the
// normalized set requires the same proof, not just the argument.
func WarmupKey(bench, scale string, cfg *sim.Config) string {
	c := *cfg
	c.Vbox.PhysVRegs = 0
	h := sha256.New()
	fmt.Fprintf(h, "warmup;bench=%s;scale=%s;cfg=%s", bench, scale, Config(&c))
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// writeValue streams a canonical encoding of v. Struct fields are visited
// in declaration order with their names (so reordering-with-renaming cannot
// collide), pointers distinguish nil from zero values, maps are emitted in
// sorted key order, and unexported fields are skipped (the only ones in a
// configuration tree are the per-chip fault injectors, which carry no
// caller-visible state).
func writeValue(w io.Writer, v reflect.Value) {
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			io.WriteString(w, "nil")
			return
		}
		io.WriteString(w, "&")
		writeValue(w, v.Elem())
	case reflect.Struct:
		t := v.Type()
		io.WriteString(w, "{")
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				continue
			}
			fmt.Fprintf(w, "%s=", t.Field(i).Name)
			writeValue(w, v.Field(i))
			io.WriteString(w, ";")
		}
		io.WriteString(w, "}")
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			io.WriteString(w, "nil")
			return
		}
		io.WriteString(w, "[")
		for i := 0; i < v.Len(); i++ {
			writeValue(w, v.Index(i))
			io.WriteString(w, ",")
		}
		io.WriteString(w, "]")
	case reflect.Map:
		if v.IsNil() {
			io.WriteString(w, "nil")
			return
		}
		keys := make([]string, 0, v.Len())
		byKey := make(map[string]reflect.Value, v.Len())
		for _, k := range v.MapKeys() {
			s := fmt.Sprintf("%v", k.Interface())
			keys = append(keys, s)
			byKey[s] = v.MapIndex(k)
		}
		sort.Strings(keys)
		io.WriteString(w, "map[")
		for _, k := range keys {
			fmt.Fprintf(w, "%s:", k)
			writeValue(w, byKey[k])
			io.WriteString(w, ",")
		}
		io.WriteString(w, "]")
	case reflect.Func, reflect.Chan:
		// Configurations must stay pure data; a callback smuggled into one
		// has no canonical encoding and would silently alias distinct
		// experiments.
		panic(fmt.Sprintf("confhash: cannot hash %s field", v.Kind()))
	default:
		fmt.Fprintf(w, "%v", v)
	}
}
