package confhash_test

import (
	"bytes"
	"testing"

	"repro/internal/confhash"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestWarmupKeyNormalization pins the WarmupKey contract: configurations
// differing only in a normalized knob share a warm-up key while their full
// experiment keys still differ, and any non-normalized knob splits both.
func TestWarmupKeyNormalization(t *testing.T) {
	base := sim.T()
	vregs := sim.T()
	vregs.Vbox.PhysVRegs = 64
	if confhash.Key("rndcopy", "test", base) == confhash.Key("rndcopy", "test", vregs) {
		t.Fatal("PhysVRegs change did not change the experiment key")
	}
	if confhash.WarmupKey("rndcopy", "test", base) != confhash.WarmupKey("rndcopy", "test", vregs) {
		t.Error("PhysVRegs change split the warm-up key; it is a normalized knob")
	}
	clock := sim.T()
	clock.CPUGHz *= 2
	if confhash.WarmupKey("rndcopy", "test", base) == confhash.WarmupKey("rndcopy", "test", clock) {
		t.Error("clock change did not split the warm-up key")
	}
	if confhash.WarmupKey("rndcopy", "test", base) == confhash.WarmupKey("rndcopy", "huge", base) {
		t.Error("scale change did not split the warm-up key")
	}
	if confhash.WarmupKey("rndcopy", "test", base) == confhash.WarmupKey("streams_copy", "test", base) {
		t.Error("benchmark change did not split the warm-up key")
	}
	if confhash.WarmupKey("rndcopy", "test", base) == confhash.Key("rndcopy", "test", base) {
		t.Error("warm-up key collides with the experiment key for the same spec")
	}
}

// TestWarmupKeyExclusionSound is the empirical proof behind WarmupKey's
// normalized-knob set: for every benchmark with a warm-up phase, the
// post-Setup chip snapshot must be byte-identical across values of the
// normalized knob. If a future warm-up kernel starts emitting vector
// destinations (making PhysVRegs timing-relevant before the ROI), this
// fails before any cache could serve a wrong snapshot.
func TestWarmupKeyExclusionSound(t *testing.T) {
	for _, name := range workloads.Names() {
		b, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Setup == nil {
			continue
		}
		capture := func(cfg *sim.Config) []byte {
			var blob []byte
			_, err := b.RunOpt(cfg, workloads.Test, workloads.RunOpts{
				OnWarmupSnapshot: func(_ uint64, bb []byte) { blob = bb },
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return blob
		}
		base := capture(sim.T())
		mut := sim.T()
		mut.Vbox.PhysVRegs = 64
		if !bytes.Equal(base, capture(mut)) {
			t.Errorf("%s: warm-up snapshot depends on PhysVRegs; WarmupKey must not normalize it", name)
		}
	}
}
