package confhash

import (
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
)

func TestIdenticalConfigsHashEqual(t *testing.T) {
	// Two independently constructed, semantically identical machines.
	if Config(sim.T()) != Config(sim.T()) {
		t.Fatal("two sim.T() values hash differently")
	}
	if Key("dgemm", "bench", sim.T()) != Key("dgemm", "bench", sim.T()) {
		t.Fatal("two identical experiment keys differ")
	}
}

func TestNameIsNotSemantic(t *testing.T) {
	a, b := sim.T(), sim.T()
	b.Name = "T-renamed"
	if Config(a) != Config(b) {
		t.Fatal("display Name changed the hash")
	}
}

func TestEveryKnobChangesTheHash(t *testing.T) {
	base := Config(sim.T())
	mut := []struct {
		name string
		mod  func(c *sim.Config)
	}{
		{"CPUGHz", func(c *sim.Config) { c.CPUGHz = 3.0 }},
		{"HasVbox", func(c *sim.Config) { c.HasVbox = false }},
		{"Core.ROBSize", func(c *sim.Config) { c.Core.ROBSize = 128 }},
		{"Vbox.Lanes", func(c *sim.Config) { c.Vbox.Lanes = 8 }},
		{"Vbox.PumpEnabled", func(c *sim.Config) { c.Vbox.PumpEnabled = false }},
		{"L2.Bytes", func(c *sim.Config) { c.L2.Bytes = 4 << 20 }},
		{"L2.Assoc", func(c *sim.Config) { c.L2.Assoc = 4 }},
		{"Zbox.Ports", func(c *sim.Config) { c.Zbox.Ports = 2 }},
		{"Check", func(c *sim.Config) { c.Check = true }},
		{"Deadline", func(c *sim.Config) { c.Deadline = 90 * time.Second }},
		{"Watchdog", func(c *sim.Config) { c.Watchdog = 1000 }},
		{"Faults", func(c *sim.Config) { c.Faults = faults.Jitter(7) }},
		{"Faults.Seed", func(c *sim.Config) { c.Faults = faults.Jitter(8) }},
		{"Faults.Cells", func(c *sim.Config) {
			f := faults.Jitter(7)
			f.Cells = []string{"dgemm@T"}
			c.Faults = f
		}},
	}
	seen := map[string]string{"base": base}
	for _, m := range mut {
		c := sim.T()
		m.mod(c)
		h := Config(c)
		for prev, ph := range seen {
			if h == ph {
				t.Errorf("mutating %s collides with %s", m.name, prev)
			}
		}
		seen[m.name] = h
	}
}

func TestKeySeparatesBenchAndScale(t *testing.T) {
	cfg := sim.T()
	a := Key("dgemm", "bench", cfg)
	if b := Key("dtrmm", "bench", cfg); a == b {
		t.Fatal("different benchmarks share a key")
	}
	if b := Key("dgemm", "test", cfg); a == b {
		t.Fatal("different scales share a key")
	}
}

func TestNoPumpDiffersFromBase(t *testing.T) {
	if Config(sim.T()) == Config(sim.NoPump(sim.T())) {
		t.Fatal("pump ablation hashes like the base machine")
	}
}

func TestHashIsStableAcrossProcessDetails(t *testing.T) {
	// The digest must be a pure function of the configuration value, so a
	// cache shared across processes (or compared between a CLI artifact and
	// a server response) agrees. Guard the exact digest of the flagship
	// machine; if a new knob is added to sim.Config this golden value is
	// EXPECTED to change — update it deliberately.
	h := Config(sim.T())
	if len(h) != 32 {
		t.Fatalf("digest length %d, want 32 hex chars", len(h))
	}
	if h != Config(sim.T()) {
		t.Fatal("digest not reproducible in-process")
	}
}

// TestEngineKnobIsNotSemantic: PinSingleStep selects the chip-loop engine —
// an observation/debugging knob, like the sampler — and the two engines are
// bit-identical by contract, so pinning must not move the experiment's
// content address (a cached wheel-engine result stays valid for a pinned
// rerun and vice versa).
func TestEngineKnobIsNotSemantic(t *testing.T) {
	a, b := sim.T(), sim.T()
	b.PinSingleStep()
	if Config(a) != Config(b) {
		t.Fatal("PinSingleStep changed the config hash")
	}
	if Key("dgemm", "bench", a) != Key("dgemm", "bench", b) {
		t.Fatal("PinSingleStep changed the experiment key")
	}
}
