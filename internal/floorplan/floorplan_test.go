package floorplan

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDerivedQuantitiesMatchPaper(t *testing.T) {
	// "each cache lane holds 48 stacked banks, over which run 512 wires to
	// read/write the cache line data": 512 bits = one 64-byte line.
	if WiresPerCacheLane != 64*8 {
		t.Fatalf("wires per lane %d ≠ one 64-byte line", WiresPerCacheLane)
	}
	// "the central bus itself carries 4096 bits": exactly the pump-mode
	// peak of 32 read + 32 written quadwords per cycle.
	if BusBitsFromDatapath() != CentralBusBits {
		t.Fatalf("datapath-derived bus %d bits ≠ quoted %d", BusBitsFromDatapath(), CentralBusBits)
	}
	// "folded onto itself ... equivalent to a 2048-bit bus".
	if FoldedBusBits != 2048 {
		t.Fatalf("folded bus = %d", FoldedBusBits)
	}
	// 16 MB over 16 lanes × 48 banks ≈ 21.3 KB banks.
	if kb := BankKB(); kb < 20 || kb > 23 {
		t.Fatalf("bank size %.1f KB implausible", kb)
	}
	if CacheLanes != 16 {
		t.Fatalf("cache lanes = %d", CacheLanes)
	}
}

func TestPlanSymmetry(t *testing.T) {
	p := Compute()
	if !p.Symmetric() {
		t.Fatal("quadrants are not mirror-symmetric ('the floorplan is highly symmetric')")
	}
}

func TestPlanHasAllBlocks(t *testing.T) {
	p := Compute()
	want := map[string]int{
		"L2 quadrant": 4, "Vbox group": 4, "central bus": 1, "EV8 core": 1, "R/Z box": 1,
	}
	got := map[string]int{}
	for _, b := range p.Blocks {
		for prefix := range want {
			if strings.HasPrefix(b.Name, prefix) {
				got[prefix]++
			}
		}
	}
	for prefix, n := range want {
		if got[prefix] != n {
			t.Errorf("%s: %d blocks, want %d", prefix, got[prefix], n)
		}
	}
}

func TestBlocksInsideDie(t *testing.T) {
	for _, b := range Compute().Blocks {
		if b.X < 0 || b.Y < 0 || b.X+b.W > 100 || b.Y+b.H > 100 {
			t.Errorf("%s sticks out of the die: %+v", b.Name, b)
		}
		if b.W <= 0 || b.H <= 0 {
			t.Errorf("%s has no area: %+v", b.Name, b)
		}
	}
}

func TestNoOverlapBetweenMajorBlocks(t *testing.T) {
	blocks := Compute().Blocks
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			a, b := blocks[i], blocks[j]
			if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
				t.Errorf("%s overlaps %s", a.Name, b.Name)
			}
		}
	}
}

// TestPlanForReproducesPaperPlan pins the parameterization: at sim.T() the
// config-driven layout must equal the paper's Figure 5 plan exactly — same
// rectangles, same die, 4 lane groups, 48 banks per cache lane.
func TestPlanForReproducesPaperPlan(t *testing.T) {
	got := PlanFor(sim.T())
	if got.VboxGroups != VboxLaneGroups {
		t.Errorf("PlanFor(T) groups = %d, want %d", got.VboxGroups, VboxLaneGroups)
	}
	if got.BanksPerLane != BanksPerCacheLane {
		t.Errorf("PlanFor(T) banks/lane = %d, want %d", got.BanksPerLane, BanksPerCacheLane)
	}
	ref := Compute()
	if !reflect.DeepEqual(got, ref) {
		t.Errorf("PlanFor(sim.T()) diverges from Compute():\n got %+v\nwant %+v", got, ref)
	}
	// The historical Figure 5 geometry, pinned absolutely so a regression
	// in the underlying power model cannot silently move the paper's plan.
	if got.DieMM2 != 286 {
		t.Errorf("die = %v mm², want 286", got.DieMM2)
	}
}

// TestPlanForSweptConfigs lays out swept design points and checks the
// geometric invariants hold away from the anchor: every block inside the
// die, no overlaps, group/bank counts following the knobs, and scalar
// machines carrying no vector structures.
func TestPlanForSweptConfigs(t *testing.T) {
	cases := []*sim.Config{sim.T(), sim.EV8(), sim.EV8Plus()}
	lanes8 := sim.T()
	lanes8.Vbox.Lanes = 8
	lanes32 := sim.T()
	lanes32.Vbox.Lanes = 32
	smallL2 := sim.T()
	smallL2.L2.Bytes = 4 << 20
	bigL2 := sim.T()
	bigL2.L2.Bytes = 64 << 20
	lanes4big := sim.T()
	lanes4big.Vbox.Lanes = 4
	lanes4big.L2.Bytes = 64 << 20
	cases = append(cases, lanes8, lanes32, smallL2, bigL2, lanes4big)
	for _, cfg := range cases {
		p := PlanFor(cfg)
		for _, b := range p.Blocks {
			if b.X < 0 || b.Y < 0 || b.X+b.W > 100 || b.Y+b.H > 100 {
				t.Errorf("%s: %s sticks out of the die: %+v", cfg.Name, b.Name, b)
			}
			if b.W <= 0 || b.H <= 0 {
				t.Errorf("%s: %s has no area: %+v", cfg.Name, b.Name, b)
			}
		}
		for i := 0; i < len(p.Blocks); i++ {
			for j := i + 1; j < len(p.Blocks); j++ {
				a, b := p.Blocks[i], p.Blocks[j]
				if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
					t.Errorf("%s: %s overlaps %s", cfg.Name, a.Name, b.Name)
				}
			}
		}
		if !p.Symmetric() {
			t.Errorf("%s: quadrants not mirror-symmetric", cfg.Name)
		}
	}
	if g := PlanFor(lanes8).VboxGroups; g != 2 {
		t.Errorf("8 lanes → %d groups, want 2", g)
	}
	if g := PlanFor(lanes32).VboxGroups; g != 8 {
		t.Errorf("32 lanes → %d groups, want 8", g)
	}
	if b := PlanFor(smallL2).BanksPerLane; b != 12 {
		t.Errorf("4 MB → %d banks/lane, want 12", b)
	}
	ev8 := PlanFor(sim.EV8())
	for _, b := range ev8.Blocks {
		if strings.HasPrefix(b.Name, "Vbox") || b.Name == "central bus" {
			t.Errorf("scalar plan contains %s", b.Name)
		}
	}
	if ev8.VboxGroups != 0 {
		t.Errorf("scalar plan reports %d lane groups", ev8.VboxGroups)
	}
}

func TestRender(t *testing.T) {
	s := Compute().Render()
	for _, want := range []string{"C", "V", "|", "E", "Z", "4096", "2048", "286"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}
