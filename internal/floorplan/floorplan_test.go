package floorplan

import (
	"strings"
	"testing"
)

func TestDerivedQuantitiesMatchPaper(t *testing.T) {
	// "each cache lane holds 48 stacked banks, over which run 512 wires to
	// read/write the cache line data": 512 bits = one 64-byte line.
	if WiresPerCacheLane != 64*8 {
		t.Fatalf("wires per lane %d ≠ one 64-byte line", WiresPerCacheLane)
	}
	// "the central bus itself carries 4096 bits": exactly the pump-mode
	// peak of 32 read + 32 written quadwords per cycle.
	if BusBitsFromDatapath() != CentralBusBits {
		t.Fatalf("datapath-derived bus %d bits ≠ quoted %d", BusBitsFromDatapath(), CentralBusBits)
	}
	// "folded onto itself ... equivalent to a 2048-bit bus".
	if FoldedBusBits != 2048 {
		t.Fatalf("folded bus = %d", FoldedBusBits)
	}
	// 16 MB over 16 lanes × 48 banks ≈ 21.3 KB banks.
	if kb := BankKB(); kb < 20 || kb > 23 {
		t.Fatalf("bank size %.1f KB implausible", kb)
	}
	if CacheLanes != 16 {
		t.Fatalf("cache lanes = %d", CacheLanes)
	}
}

func TestPlanSymmetry(t *testing.T) {
	p := Compute()
	if !p.Symmetric() {
		t.Fatal("quadrants are not mirror-symmetric ('the floorplan is highly symmetric')")
	}
}

func TestPlanHasAllBlocks(t *testing.T) {
	p := Compute()
	want := map[string]int{
		"L2 quadrant": 4, "Vbox group": 4, "central bus": 1, "EV8 core": 1, "R/Z box": 1,
	}
	got := map[string]int{}
	for _, b := range p.Blocks {
		for prefix := range want {
			if strings.HasPrefix(b.Name, prefix) {
				got[prefix]++
			}
		}
	}
	for prefix, n := range want {
		if got[prefix] != n {
			t.Errorf("%s: %d blocks, want %d", prefix, got[prefix], n)
		}
	}
}

func TestBlocksInsideDie(t *testing.T) {
	for _, b := range Compute().Blocks {
		if b.X < 0 || b.Y < 0 || b.X+b.W > 100 || b.Y+b.H > 100 {
			t.Errorf("%s sticks out of the die: %+v", b.Name, b)
		}
		if b.W <= 0 || b.H <= 0 {
			t.Errorf("%s has no area: %+v", b.Name, b)
		}
	}
}

func TestNoOverlapBetweenMajorBlocks(t *testing.T) {
	blocks := Compute().Blocks
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			a, b := blocks[i], blocks[j]
			if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
				t.Errorf("%s overlaps %s", a.Name, b.Name)
			}
		}
	}
}

func TestRender(t *testing.T) {
	s := Compute().Render()
	for _, want := range []string{"C", "V", "|", "E", "Z", "4096", "2048", "286"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}
