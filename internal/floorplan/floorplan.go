// Package floorplan models the §4 physical organisation (Figure 5): the
// 16 MB cache split into four quadrants at the die corners (address bits
// <7:6>), four cache lanes per quadrant (bits <9:8>) of 48 stacked banks
// each, the sixteen Vbox lanes in four groups around the replicated
// instruction queues, the EV8 core, and the folded central bus that
// implements the lane↔cache crossbar.
//
// The numbers the paper quotes are all derivable, and this package derives
// them: 512 wires per cache lane (one 64-byte line), a 4096-bit central bus
// (32 read + 32 write quadwords per cycle in pump mode) folded onto
// alternate east-west metal layers into a 2048-bit-wide track, and ~21 KB
// banks. Tests pin each identity.
package floorplan

import (
	"fmt"
	"strings"

	"repro/internal/power"
	"repro/internal/sim"
)

// Geometry quantities of the Figure 5 organisation.
const (
	// Quadrants of the L2, at the die corners (addr bits <7:6>).
	Quadrants = 4
	// CacheLanesPerQuadrant selected by addr bits <9:8>.
	CacheLanesPerQuadrant = 4
	// CacheLanes total (the sixteen banks of the slice machinery).
	CacheLanes = Quadrants * CacheLanesPerQuadrant
	// BanksPerCacheLane: "each cache lane holds 48 stacked banks".
	BanksPerCacheLane = 48
	// WiresPerCacheLane: "over which run 512 wires to read/write the cache
	// line data" — exactly one 64-byte line.
	WiresPerCacheLane = 512
	// CentralBusBits: "the central bus itself carries 4096 bits".
	CentralBusBits = 4096
	// FoldedBusBits: "folded onto itself by using alternate East-West
	// metal layers, so that it uses an area equivalent to a 2048-bit bus".
	FoldedBusBits = CentralBusBits / 2
	// VboxLaneGroups: "the different Vbox lanes are organized in four
	// groups of four lanes".
	VboxLaneGroups = 4
	// VboxLanesPerGroup lanes per group.
	VboxLanesPerGroup = 4
)

// CacheBytes is the L2 capacity.
const CacheBytes = 16 << 20

// BankKB returns the derived capacity of one stacked bank in KB.
func BankKB() float64 {
	return float64(CacheBytes) / float64(CacheLanes*BanksPerCacheLane) / 1024
}

// BusBitsFromDatapath derives the central bus width from the pump-mode data
// rates: 32 quadwords read + 32 written per cycle.
func BusBitsFromDatapath() int {
	const qwBits = 64
	return (32 + 32) * qwBits
}

// Rect is a normalised block placement (units: 1/100 of die edge).
type Rect struct {
	Name       string
	X, Y, W, H int
}

// Plan is a computed floorplan.
type Plan struct {
	DieMM2 float64
	Blocks []Rect
	// VboxGroups and BanksPerLane record the configuration-derived
	// organisation: lane groups of four flanking the central bus, and
	// stacked banks per cache lane at the paper's fixed ~21.3 KB bank size.
	VboxGroups   int
	BanksPerLane int
}

// Compute lays out the paper's Tarantula die following Figure 5: cache
// quadrants in the four corners, the Vbox lane groups flanking the central
// bus area, the core and the R/Z boxes on the middle band. It is PlanFor at
// the fixed Table 3 design point; areas come from the §5 model so the
// picture and the power table stay consistent.
func Compute() *Plan { return PlanFor(sim.T()) }

// PlanFor lays out the die of an arbitrary machine configuration: block
// areas come from power.DesignFor (so the floorplan and the power table
// stay consistent for every swept design point), the lane groups follow the
// configured lane count (four lanes per group, split across the two columns
// flanking the central bus), and the per-lane bank stack follows the L2
// capacity at the paper's fixed bank size. Scalar configurations (no Vbox)
// place no lane groups and no vector bus. At sim.T() the result is exactly
// the paper's Figure 5 plan — tests pin it against the committed geometry.
func PlanFor(cfg *sim.Config) *Plan {
	d := power.DesignFor(cfg, power.Paper2006())
	area := map[string]float64{}
	for _, b := range d.Blocks {
		area[b.Name] = b.AreaPct
	}
	p := &Plan{
		DieMM2:       d.DieMM2,
		BanksPerLane: BanksFor(cfg.L2.Bytes),
	}
	// Cache: the L2 share split into four corner quadrants. The side is
	// clamped so extreme swept points (a huge L2 on a tiny Vbox) cannot
	// push a quadrant across the fixed central-bus column or squeeze the
	// core band to nothing — the normalised grid distorts aspect ratios
	// before it allows overlap.
	qside := intSqrt(area["L2 cache"] / 4)
	maxSide := 47
	if cfg.HasVbox {
		maxSide = 43 // leave the X44..56 bus column clear
	}
	if qside > maxSide {
		qside = maxSide
	}
	corners := [][2]int{{0, 0}, {100 - qside, 0}, {0, 100 - qside}, {100 - qside, 100 - qside}}
	for q, c := range corners {
		p.Blocks = append(p.Blocks, Rect{
			Name: fmt.Sprintf("L2 quadrant %d", q), X: c[0], Y: c[1], W: qside, H: qside,
		})
	}
	if cfg.HasVbox {
		// Vbox lane groups on the horizontal midline, flanking the bus
		// column: ceil(lanes/4) groups, the left column taking the extra
		// one when the count is odd.
		groups := (cfg.Vbox.Lanes + VboxLanesPerGroup - 1) / VboxLanesPerGroup
		p.VboxGroups = groups
		half := (groups + 1) / 2
		gw := 12
		if max := 44/half - 2; gw > max {
			gw = max // narrow the groups so a tall column still fits
		}
		gh := intSqrt(area["Vbox"]/float64(groups)) + 4
		if max := 98 - 2*qside; gh > max {
			gh = max // keep the midline band clear of the corner quadrants
		}
		if gw < 1 {
			gw = 1
		}
		if gh < 2 {
			gh = 2
		}
		for g := 0; g < groups; g++ {
			x := 2 + g*(gw+2)
			if g >= half {
				x = 58 + (g-half)*(gw+2) // right column, past the bus
			}
			p.Blocks = append(p.Blocks, Rect{
				Name: fmt.Sprintf("Vbox group %d", g), X: x, Y: 50 - gh/2, W: gw, H: gh,
			})
		}
		// Central bus column between the lane groups.
		p.Blocks = append(p.Blocks, Rect{Name: "central bus", X: 44, Y: 20, W: 12, H: 60})
	}
	// Core on the top band between the quadrants; R/Z on the bottom band.
	p.Blocks = append(p.Blocks, Rect{Name: "EV8 core", X: qside + 2, Y: 2, W: 96 - 2*qside, H: 16})
	p.Blocks = append(p.Blocks, Rect{Name: "R/Z box", X: qside + 2, Y: 82, W: 96 - 2*qside, H: 16})
	return p
}

// BanksFor derives the stacked-bank count per cache lane for an L2 of the
// given capacity, holding the paper's ~21.3 KB bank size fixed: the 16 MB
// design gets exactly BanksPerCacheLane (48), a 4 MB cache gets 12.
func BanksFor(l2Bytes int) int {
	banks := l2Bytes * BanksPerCacheLane / CacheBytes
	if banks < 1 {
		banks = 1
	}
	return banks
}

func intSqrt(pct float64) int {
	// pct of a 100×100 grid -> side of a square with that area.
	area := pct * 100
	s := 1
	for s*s < int(area) {
		s++
	}
	return s
}

// Symmetric reports whether the quadrants are mirror-symmetric about both
// axes ("the floorplan is highly symmetric").
func (p *Plan) Symmetric() bool {
	var qs []Rect
	for _, b := range p.Blocks {
		if strings.HasPrefix(b.Name, "L2 quadrant") {
			qs = append(qs, b)
		}
	}
	if len(qs) != 4 {
		return false
	}
	for _, q := range qs {
		mx := Rect{X: 100 - q.X - q.W, Y: q.Y, W: q.W, H: q.H}
		my := Rect{X: q.X, Y: 100 - q.Y - q.H, W: q.W, H: q.H}
		if !p.hasQuadrantAt(mx) || !p.hasQuadrantAt(my) {
			return false
		}
	}
	return true
}

func (p *Plan) hasQuadrantAt(want Rect) bool {
	for _, b := range p.Blocks {
		if strings.HasPrefix(b.Name, "L2 quadrant") &&
			b.X == want.X && b.Y == want.Y && b.W == want.W && b.H == want.H {
			return true
		}
	}
	return false
}

// Render draws the floorplan as ASCII art on a 50×25 grid.
func (p *Plan) Render() string {
	const w, h = 64, 26
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", w))
	}
	mark := func(r Rect, ch byte) {
		x0, y0 := r.X*w/100, r.Y*h/100
		x1, y1 := (r.X+r.W)*w/100, (r.Y+r.H)*h/100
		for y := y0; y < y1 && y < h; y++ {
			for x := x0; x < x1 && x < w; x++ {
				grid[y][x] = ch
			}
		}
	}
	legend := map[string]byte{
		"L2 quadrant": 'C', "Vbox group": 'V', "central bus": '|',
		"EV8 core": 'E', "R/Z box": 'Z',
	}
	for _, b := range p.Blocks {
		for prefix, ch := range legend {
			if strings.HasPrefix(b.Name, prefix) {
				mark(b, ch)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", w) + "+\n")
	for _, row := range grid {
		sb.WriteString("|" + string(row) + "|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", w) + "+\n")
	fmt.Fprintf(&sb, "C = L2 quadrant (4 cache lanes × %d banks, %d data wires/lane)\n",
		BanksPerCacheLane, WiresPerCacheLane)
	fmt.Fprintf(&sb, "V = Vbox lane group (4 lanes; queues/LSQ/CR at the centre)\n")
	fmt.Fprintf(&sb, "| = central bus: %d bits folded to %d-bit-equivalent width\n",
		CentralBusBits, FoldedBusBits)
	fmt.Fprintf(&sb, "E = EV8 core, Z = R/Z boxes;  die %0.f mm²\n", p.DieMM2)
	return sb.String()
}
