package creorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func allActive() []bool {
	a := make([]bool, isa.VLMax)
	for i := range a {
		a[i] = true
	}
	return a
}

func checkConflictFree(t *testing.T, s Slice) {
	t.Helper()
	var banks, lanes [16]bool
	for _, e := range s.Elems {
		b := BankOf(e.Addr)
		if banks[b] {
			t.Fatalf("slice %d: bank %d used twice", s.Tag, b)
		}
		banks[b] = true
		if !s.Pump {
			l := LaneOf(e.Index)
			if lanes[l] {
				t.Fatalf("slice %d: lane %d used twice", s.Tag, l)
			}
			lanes[l] = true
		}
	}
}

func TestClassifyStride(t *testing.T) {
	cases := []struct {
		stride int64
		want   Mode
	}{
		{8, ModePump},          // unit stride
		{16, ModeReorder},      // q=2 = 1·2^1
		{24, ModeReorder},      // q=3 odd
		{40, ModeReorder},      // q=5
		{64, ModeReorder},      // q=8 = 1·2^3, boundary s=3
		{128, ModeCR},          // q=16 = 1·2^4, self-conflicting (s=4)
		{256, ModeCR},          // q=32
		{1024, ModeCR},         // q=128
		{8 * 96, ModeCR},       // q=96 = 3·2^5
		{0, ModeCR},            // degenerate
		{4, ModeCR},            // sub-quadword
		{-16, ModeReorder},     // negative strides classify by magnitude
		{8 * 312, ModeReorder}, // q=312 = 39·8, s=3
		{8 * 624, ModeCR},      // q=624 = 39·16, s=4
	}
	for _, c := range cases {
		if got := ClassifyStride(c.stride); got != c.want {
			t.Errorf("ClassifyStride(%d) = %s, want %s", c.stride, got, c.want)
		}
	}
}

func TestReorderTheorem(t *testing.T) {
	// The paper's theorem: for any reorderable stride S = σ·2^s (σ odd) and
	// any base, the 128 elements pack into exactly 8 slices, bank- and
	// lane-conflict free. Under the bits<9:6> bank mapping this holds for
	// s ≤ 3 (see BankOf); sweep σ and s exhaustively over a generous range
	// of σ and representative base offsets.
	for s := 0; s <= 3; s++ {
		for sigma := int64(1); sigma <= 33; sigma += 2 {
			q := sigma << s
			if q == 1 {
				continue // stride-1 takes the pump path
			}
			stride := q * 8
			for _, baseOff := range []uint64{0, 8, 64, 72, 512, 1016} {
				base := uint64(1<<20) + baseOff
				slices, mode := ScheduleStrided(base, stride, allActive(), 0)
				if mode != ModeReorder {
					t.Fatalf("stride %d classified %s", stride, mode)
				}
				if len(slices) > 8 {
					t.Fatalf("stride %d (σ=%d,s=%d) base %#x: %d slices, want ≤8",
						stride, sigma, s, base, len(slices))
				}
				covered := map[int]bool{}
				for _, sl := range slices {
					checkConflictFree(t, sl)
					for _, e := range sl.Elems {
						if covered[e.Index] {
							t.Fatalf("element %d scheduled twice", e.Index)
						}
						covered[e.Index] = true
						want := base + uint64(int64(e.Index)*stride)
						if e.Addr != want {
							t.Fatalf("element %d addr %#x, want %#x", e.Index, e.Addr, want)
						}
					}
				}
				if len(covered) != isa.VLMax {
					t.Fatalf("stride %d: only %d/128 elements covered", stride, len(covered))
				}
			}
		}
	}
}

func TestReorderTheoremProperty(t *testing.T) {
	f := func(sigmaSeed uint8, s uint8, baseSeed uint16) bool {
		sigma := int64(sigmaSeed) | 1 // force odd
		sExp := int(s) % 4
		stride := (sigma << sExp) * 8
		if stride == 8 {
			return true
		}
		base := (uint64(baseSeed) * 8) % (1 << 18)
		slices, mode := ScheduleStrided(1<<20+base, stride, allActive(), 0)
		if mode != ModeReorder {
			return false
		}
		if len(slices) > 8 {
			return false
		}
		n := 0
		for _, sl := range slices {
			var banks, lanes [16]bool
			for _, e := range sl.Elems {
				b, l := BankOf(e.Addr), LaneOf(e.Index)
				if banks[b] || lanes[l] {
					return false
				}
				banks[b], lanes[l] = true, true
				n++
			}
		}
		return n == isa.VLMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReorderShortVectorStillEightSlices(t *testing.T) {
	// vl < 128 still pays the full requesting order: the schedule keeps its
	// (possibly empty) slice positions (§3.4: "vector instructions with
	// vector length below 128 still pay the full eight cycles").
	active := make([]bool, isa.VLMax)
	for i := 0; i < 40; i++ {
		active[i] = true
	}
	slices, _ := ScheduleStrided(1<<20, 16, active, 0)
	if len(slices) > 8 {
		t.Fatalf("%d slices for vl=40", len(slices))
	}
	n := 0
	for _, s := range slices {
		checkConflictFree(t, s)
		n += len(s.Elems)
	}
	if n != 40 {
		t.Fatalf("covered %d elements, want 40", n)
	}
}

func TestPumpAligned(t *testing.T) {
	// 128 consecutive quadwords from a line-aligned base: exactly 16 lines,
	// one per bank, one pump slice.
	slices, mode := ScheduleStrided(1<<20, 8, allActive(), 0)
	if mode != ModePump {
		t.Fatalf("mode %s", mode)
	}
	if len(slices) != 1 {
		t.Fatalf("%d slices, want 1", len(slices))
	}
	s := slices[0]
	if !s.Pump || len(s.Elems) != 16 || s.QWords != 128 {
		t.Fatalf("pump slice = %+v", s)
	}
	checkConflictFree(t, s)
}

func TestPumpMisaligned(t *testing.T) {
	// A base not aligned to a line boundary touches 17 lines → two pump
	// slices (§3.4 footnote 3).
	slices, mode := ScheduleStrided(1<<20+8, 8, allActive(), 0)
	if mode != ModePump {
		t.Fatalf("mode %s", mode)
	}
	if len(slices) != 2 {
		t.Fatalf("%d slices, want 2 for misaligned stride-1", len(slices))
	}
	if got := slices[0].QWords + slices[1].QWords; got != 128 {
		t.Fatalf("pump qwords %d, want 128", got)
	}
}

func TestPumpShortVector(t *testing.T) {
	active := make([]bool, isa.VLMax)
	for i := 0; i < 32; i++ {
		active[i] = true
	}
	slices, _ := ScheduleStrided(1<<20, 8, active, 0)
	if len(slices) != 1 {
		t.Fatalf("%d slices", len(slices))
	}
	if slices[0].QWords != 32 || len(slices[0].Elems) != 4 {
		t.Fatalf("slice = %+v", slices[0])
	}
}

func TestCRBoxRandomPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	elems := make([]Elem, isa.VLMax)
	perm := rng.Perm(4096)
	for i := range elems {
		elems[i] = Elem{Index: i, Addr: 1<<20 + uint64(perm[i])*8}
	}
	var cr CRBox
	slices, rounds := cr.Pack(elems, 0)
	n := 0
	for _, s := range slices {
		checkConflictFree(t, s)
		n += len(s.Elems)
	}
	if n != isa.VLMax {
		t.Fatalf("covered %d, want 128", n)
	}
	if rounds != len(slices) {
		t.Fatalf("rounds %d != slices %d", rounds, len(slices))
	}
	// Random addresses should pack far better than worst case but worse
	// than the perfect 8.
	if len(slices) < 8 || len(slices) > 40 {
		t.Fatalf("suspicious slice count %d for random pattern", len(slices))
	}
}

func TestCRBoxWorstCaseSingleBank(t *testing.T) {
	// All addresses on one bank: 128 slices (the paper's stated worst case).
	elems := make([]Elem, isa.VLMax)
	for i := range elems {
		elems[i] = Elem{Index: i, Addr: 1<<20 + uint64(i)*1024} // bank 0 every time
	}
	var cr CRBox
	slices, _ := cr.Pack(elems, 0)
	if len(slices) != isa.VLMax {
		t.Fatalf("%d slices, want 128", len(slices))
	}
	for _, s := range slices {
		if len(s.Elems) != 1 {
			t.Fatalf("worst-case slice holds %d elements", len(s.Elems))
		}
	}
}

func TestCRBoxPreservesPerLaneOrder(t *testing.T) {
	// Within a lane, elements must be scheduled oldest-first (per-lane
	// FIFO): check element indices of one lane appear in increasing order.
	rng := rand.New(rand.NewSource(7))
	elems := make([]Elem, isa.VLMax)
	for i := range elems {
		elems[i] = Elem{Index: i, Addr: 1<<20 + uint64(rng.Intn(512))*8}
	}
	var cr CRBox
	slices, _ := cr.Pack(elems, 0)
	last := make(map[int]int)
	for _, s := range slices {
		for _, e := range s.Elems {
			l := LaneOf(e.Index)
			if prev, ok := last[l]; ok && e.Index < prev {
				t.Fatalf("lane %d scheduled element %d after %d", l, e.Index, prev)
			}
			last[l] = e.Index
		}
	}
}

func TestCRBoxSelfConflictingStride(t *testing.T) {
	// Stride of 2048 bytes (q=256 = 1·2^8): every address maps to bank of
	// base; PackStrided must serialise completely.
	var cr CRBox
	slices, _ := cr.PackStrided(1<<20, 2048, allActive(), 0)
	if len(slices) != isa.VLMax {
		t.Fatalf("self-conflicting stride gave %d slices, want 128", len(slices))
	}
}

func TestCRBoxProperty(t *testing.T) {
	// Every packing covers all elements exactly once and every slice is
	// conflict-free, for arbitrary address patterns.
	f := func(offsets [64]uint16) bool {
		elems := make([]Elem, len(offsets))
		for i, o := range offsets {
			elems[i] = Elem{Index: i, Addr: 1<<20 + uint64(o)*8}
		}
		var cr CRBox
		slices, _ := cr.Pack(elems, 0)
		n := 0
		for _, s := range slices {
			var banks [16]bool
			var lanes [16]bool
			for _, e := range s.Elems {
				b, l := BankOf(e.Addr), LaneOf(e.Index)
				if banks[b] || lanes[l] {
					return false
				}
				banks[b], lanes[l] = true, true
				n++
			}
		}
		return n == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestROMMemoisationConsistency(t *testing.T) {
	// Two bases with the same offset pattern must produce the same element
	// grouping (exercises the ROM hit path).
	a1, _ := ScheduleStrided(1<<20+24*8, 24, allActive(), 0)
	a2, _ := ScheduleStrided(5<<20+24*8, 24, allActive(), 0)
	if len(a1) != len(a2) {
		t.Fatalf("slice counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if len(a1[i].Elems) != len(a2[i].Elems) {
			t.Fatalf("slice %d shapes differ", i)
		}
		for j := range a1[i].Elems {
			if a1[i].Elems[j].Index != a2[i].Elems[j].Index {
				t.Fatalf("slice %d elem %d: index %d vs %d",
					i, j, a1[i].Elems[j].Index, a2[i].Elems[j].Index)
			}
		}
	}
}

func BenchmarkReorderROMHit(b *testing.B) {
	act := allActive()
	ScheduleStrided(1<<20, 24, act, 0) // warm the ROM
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScheduleStrided(1<<20, 24, act, 0)
	}
}

func BenchmarkCRBoxPack(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	elems := make([]Elem, isa.VLMax)
	for i := range elems {
		elems[i] = Elem{Index: i, Addr: uint64(rng.Intn(1<<20)) &^ 7}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cr CRBox
		cr.Pack(elems, 0)
	}
}

func TestMaskedScheduleOnlyActiveElements(t *testing.T) {
	active := make([]bool, isa.VLMax)
	for i := 0; i < isa.VLMax; i += 3 {
		active[i] = true
	}
	slices, mode := ScheduleStrided(1<<20, 24, active, 0)
	if mode != ModeReorder {
		t.Fatalf("mode %s", mode)
	}
	n := 0
	for _, s := range slices {
		checkConflictFree(t, s)
		for _, e := range s.Elems {
			if !active[e.Index] {
				t.Fatalf("inactive element %d scheduled", e.Index)
			}
			n++
		}
	}
	if n != (isa.VLMax+2)/3 {
		t.Fatalf("scheduled %d elements", n)
	}
}

func TestNoPumpPathForcesReorder(t *testing.T) {
	slices, mode := ScheduleStridedNoPump(1<<20, 8, allActive(), 0)
	if mode != ModeReorder {
		t.Fatalf("no-pump stride-1 mode = %s, want reorder", mode)
	}
	if len(slices) != 8 {
		t.Fatalf("no-pump stride-1 gave %d slices, want 8 (the §6 8x MAF pressure)", len(slices))
	}
	for _, s := range slices {
		if s.Pump {
			t.Fatal("no-pump slice carries the pump bit")
		}
		checkConflictFree(t, s)
	}
}
