package creorder

import "repro/internal/isa"

// CRBox models the conflict-resolution box (§3.4): gather/scatter and
// self-conflicting-stride addresses do not form an arithmetic series the
// reordering scheme covers, so the box sorts them into bank-conflict-free
// buckets with a selection tournament.
//
// The hardware receives sixteen bank identifiers per cycle — one per
// address generator, i.e. one per lane — and keeps whatever lost the
// previous tournament. We model that exactly: per-lane FIFO queues of
// pending elements; each round the sixteen queue heads compete and the
// largest bank-distinct subset (one element per distinct bank, oldest lane
// first) is packed into a slice.
type CRBox struct {
	// Rounds accumulates tournament rounds run, which the Vbox timing
	// model charges one cycle each.
	Rounds int
	// Slices accumulates slices produced.
	Slices int
}

// Pack sorts the element addresses into conflict-free slices and returns
// them along with the number of tournament rounds the packing took. Element
// lane assignment follows the register file slicing (index mod 16). In the
// worst case — all addresses on one bank — a 128-element instruction yields
// 128 single-element slices (the paper's stated worst case).
func (cr *CRBox) Pack(elems []Elem, tag0 int) ([]Slice, int) {
	var lanes [isa.NumLanes][]Elem
	n := 0
	for _, e := range elems {
		l := LaneOf(e.Index)
		lanes[l] = append(lanes[l], e)
		n++
	}
	var out []Slice
	rounds := 0
	for n > 0 {
		rounds++
		var bankUsed [NumBanks]bool
		s := Slice{Tag: tag0 + len(out)}
		for l := 0; l < isa.NumLanes; l++ {
			if len(lanes[l]) == 0 {
				continue
			}
			head := lanes[l][0]
			b := BankOf(head.Addr)
			if bankUsed[b] {
				continue // loses this tournament, retries next round
			}
			bankUsed[b] = true
			s.Elems = append(s.Elems, head)
			lanes[l] = lanes[l][1:]
			n--
		}
		s.QWords = len(s.Elems)
		out = append(out, s)
	}
	cr.Rounds += rounds
	cr.Slices += len(out)
	return out, rounds
}

// PackStrided routes a self-conflicting strided access (σ·2^s, s > 4, or a
// degenerate stride) through the CR box, per §3.4: "Any instruction with
// such a stride is treated exactly like a gather/scatter."
func (cr *CRBox) PackStrided(base uint64, strideBytes int64, active []bool, tag0 int) ([]Slice, int) {
	elems := make([]Elem, 0, len(active))
	for i, act := range active {
		if !act {
			continue
		}
		elems = append(elems, Elem{Index: i, Addr: base + uint64(int64(i)*strideBytes)})
	}
	return cr.Pack(elems, tag0)
}
