// Package creorder implements Tarantula's conflict-free vector address
// generation (§3.4): the address reordering scheme that lets a strided
// vector instruction read sixteen independent cache lines per cycle from the
// sixteen L2 banks, the PUMP slice generation for stride-1, and the CR
// (conflict resolution) box that packs gather/scatter and self-conflicting
// strides into bank-conflict-free slices.
//
// The unit of the whole vector memory pipeline is the slice: a group of up
// to 16 addresses that are pairwise L2-bank conflict-free (address bits
// <9:6>) and register-lane conflict-free (element index mod 16), so the 16
// banks can be cycled in parallel and each lane accepts at most one quadword
// per cycle.
package creorder

import (
	"sync"

	"repro/internal/isa"
)

// NumBanks is the number of L2 banks cycled in parallel.
const NumBanks = 16

// LineBytes is the L2 cache line size.
const LineBytes = 64

// BankOf returns the L2 bank of addr: address bits <9:6>, exactly as the CR
// box description in §3.4 states.
//
// With this mapping, a counting argument shows the per-bank element count of
// a 128-element access with stride σ·2^s quadwords (σ odd) is exactly 8 for
// every s ≤ 3 and every base — each lane also holds exactly 8 elements, so
// the lane→bank multigraph is 8-regular and decomposes into 8 perfect
// matchings (König), which is the paper's 8-slice theorem. For s = 4 the
// elements collapse onto 8 banks (16 per bank) and no 8-group schedule can
// exist, so we place the self-conflicting boundary at s ≥ 4. (The scanned
// text reads "s LS 4" for the theorem and "s > 4" for self-conflicting
// strides; under the stated <9:6> bank mapping only s < 4 is feasible, and
// we follow the math.)
func BankOf(addr uint64) int { return int(addr>>6) & (NumBanks - 1) }

// LaneOf returns the Vbox lane holding element i of a vector register.
func LaneOf(elem int) int { return elem & (isa.NumLanes - 1) }

// Elem is one address within a slice.
type Elem struct {
	Index int    // element index within the vector instruction (0..127)
	Addr  uint64 // quadword address (or line address for pump slices)
}

// Slice is a group of bank- and lane-conflict-free addresses, tagged when it
// is created in the address generators and tracked by that tag through the
// memory pipeline (§3.4).
type Slice struct {
	Tag   int
	Pump  bool   // stride-1 double-bandwidth slice: Elems are line addresses
	Elems []Elem // ≤16 entries; entries may be missing (vl<128 or masked)

	// QWords is the number of data quadwords the slice moves (for pump
	// slices this can be up to 128; for normal slices it equals len(Elems)).
	QWords int
}

// Mode says which address-generation path an access took.
type Mode uint8

const (
	// ModePump is stride-1 double-bandwidth mode: 16 full cache lines per
	// slice, streamed at 2 qw/cycle/bank through the PUMP registers.
	ModePump Mode = iota
	// ModeReorder is the conflict-free reordering scheme for strides
	// σ·2^s quadwords, σ odd, s ≤ 4.
	ModeReorder
	// ModeCR routes addresses through the conflict-resolution box:
	// gather/scatter and self-conflicting strides (s > 4), or degenerate
	// strides the reordering theorem does not cover.
	ModeCR
)

func (m Mode) String() string {
	switch m {
	case ModePump:
		return "pump"
	case ModeReorder:
		return "reorder"
	case ModeCR:
		return "crbox"
	}
	return "mode?"
}

// ClassifyStride decides the path for a strided access with the given byte
// stride. Quadword strides q = σ·2^s with σ odd: q == 1 pumps; s ≤ 3
// reorders conflict-free; s ≥ 4 is self-conflicting and goes through the CR
// box, as do sub-quadword or zero strides (see BankOf for why the boundary
// sits at 4).
func ClassifyStride(strideBytes int64) Mode {
	if strideBytes == 8 {
		return ModePump
	}
	if strideBytes == 0 || strideBytes%8 != 0 {
		return ModeCR
	}
	q := strideBytes / 8
	if q < 0 {
		q = -q
	}
	s := 0
	for q%2 == 0 {
		q /= 2
		s++
	}
	if s >= 4 {
		return ModeCR
	}
	return ModeReorder
}

// scheduleROM memoises full-128-element schedules keyed by the bank pattern
// of the access — the software analogue of the paper's 2.1 KB ROM
// distributed across the lanes. Two accesses with the same per-element bank
// sequence reuse the same requesting order.
var scheduleROM sync.Map // string(bank pattern) -> [][]int (element index groups)

// ScheduleStrided partitions the active elements of a strided access into
// conflict-free slices. base is the address of element 0, strideBytes the
// byte distance between elements, and active[i] says whether element i
// participates (vl and mask applied by the caller). The tag numbering starts
// at tag0.
//
// The returned mode tells the caller which pipeline treatment (and timing)
// applies. For ModeReorder the slice count is at most 8 for any σ odd,
// s ≤ 4 — the property the paper proves and our tests check. For ModePump
// the slices carry whole-line addresses. ModeCR is handled by the caller via
// a CRBox (the address stream must be merged with scatter data availability
// there), so this function never returns ModeCR slices itself.
func ScheduleStrided(base uint64, strideBytes int64, active []bool, tag0 int) ([]Slice, Mode) {
	mode := ClassifyStride(strideBytes)
	switch mode {
	case ModePump:
		return pumpSlices(base, active, tag0), ModePump
	case ModeReorder:
		return reorderSlices(base, strideBytes, active, tag0), ModeReorder
	default:
		return nil, ModeCR
	}
}

// pumpSlices builds stride-1 double-bandwidth slices: the 128 quadwords of
// an aligned stride-1 access live in exactly 16 lines, one per bank; the
// address generators emit the 16 line addresses and set the pump bit. A
// misaligned base touches 17 lines and is forced to generate two pump
// slices (§3.4 footnote).
func pumpSlices(base uint64, active []bool, tag0 int) []Slice {
	type lineInfo struct {
		addr uint64
		qw   int
	}
	var lines []lineInfo
	lineIdx := make(map[uint64]int)
	for i, act := range active {
		if !act {
			continue
		}
		la := (base + uint64(i)*8) &^ (LineBytes - 1)
		j, ok := lineIdx[la]
		if !ok {
			j = len(lines)
			lineIdx[la] = j
			lines = append(lines, lineInfo{addr: la})
		}
		lines[j].qw++
	}
	if len(lines) == 0 {
		return nil
	}
	// Split at 1 KiB block boundaries: a block holds one line per bank, so
	// each pump slice is conflict-free. An aligned 128-element access is
	// one slice; a misaligned base straddles a block boundary and is forced
	// to generate two slices, both with the pump bit set (§3.4 footnote 3).
	var out []Slice
	block := func(a uint64) uint64 { return a >> 10 }
	start := 0
	for start < len(lines) {
		end := start + 1
		for end < len(lines) && end-start < NumBanks && block(lines[end].addr) == block(lines[start].addr) {
			end++
		}
		s := Slice{Tag: tag0 + len(out), Pump: true}
		for j := start; j < end; j++ {
			s.Elems = append(s.Elems, Elem{Index: j, Addr: lines[j].addr})
			s.QWords += lines[j].qw
		}
		out = append(out, s)
		start = end
	}
	return out
}

// reorderSlices implements the conflict-free reordering scheme. The full
// 128-element schedule is computed once per (base offset, stride) bank
// pattern via bipartite matching and memoised (the "ROM"); the vl/mask
// filter is applied on the way out, so short or masked vectors still follow
// the full-vector requesting order — which is why they still pay all eight
// address-generation cycles (§3.4).
func reorderSlices(base uint64, strideBytes int64, active []bool, tag0 int) []Slice {
	var pattern [isa.VLMax]byte
	for i := 0; i < isa.VLMax; i++ {
		pattern[i] = byte(BankOf(base + uint64(int64(i)*strideBytes)))
	}
	key := string(pattern[:])
	var sched [][]int
	if v, ok := scheduleROM.Load(key); ok {
		sched = v.([][]int)
	} else {
		sched = computeSchedule(base, strideBytes)
		scheduleROM.Store(key, sched)
	}
	var out []Slice
	for _, group := range sched {
		s := Slice{Tag: tag0 + len(out)}
		for _, idx := range group {
			if idx < len(active) && active[idx] {
				s.Elems = append(s.Elems, Elem{Index: idx, Addr: base + uint64(int64(idx)*strideBytes)})
			}
		}
		s.QWords = len(s.Elems)
		// Empty groups still exist in the requesting order but produce no
		// L2 traffic; the Vbox timing charges the address-generation cycle
		// regardless, so we emit the (possibly empty) slice.
		out = append(out, s)
	}
	return out
}

// computeSchedule partitions element indices 0..127 into groups that are
// bank- and lane-conflict-free, using a maximum bipartite matching
// (lane → bank) per group. For valid strides (σ odd, s ≤ 4) eight groups
// always suffice; the matching construction is our stand-in for the closed
// form behind the paper's ROM contents.
func computeSchedule(base uint64, strideBytes int64) [][]int {
	remaining := make([]bool, isa.VLMax)
	left := isa.VLMax
	for i := range remaining {
		remaining[i] = true
	}
	bank := func(i int) int { return BankOf(base + uint64(int64(i)*strideBytes)) }

	var groups [][]int
	for left > 0 && len(groups) < isa.VLMax {
		// candidates[lane][bank] = smallest remaining element index for
		// that (lane, bank) pair, or -1.
		var cand [isa.NumLanes][NumBanks]int
		for l := range cand {
			for b := range cand[l] {
				cand[l][b] = -1
			}
		}
		for i := 0; i < isa.VLMax; i++ {
			if !remaining[i] {
				continue
			}
			l, b := LaneOf(i), bank(i)
			if cand[l][b] == -1 {
				cand[l][b] = i
			}
		}
		// Maximum matching lanes → banks (augmenting paths).
		matchBank := [NumBanks]int{}
		for b := range matchBank {
			matchBank[b] = -1
		}
		var try func(l int, seen *[NumBanks]bool) bool
		try = func(l int, seen *[NumBanks]bool) bool {
			for b := 0; b < NumBanks; b++ {
				if cand[l][b] == -1 || seen[b] {
					continue
				}
				seen[b] = true
				if matchBank[b] == -1 || try(matchBank[b], seen) {
					matchBank[b] = l
					return true
				}
			}
			return false
		}
		for l := 0; l < isa.NumLanes; l++ {
			var seen [NumBanks]bool
			try(l, &seen)
		}
		var group []int
		for b := 0; b < NumBanks; b++ {
			if matchBank[b] == -1 {
				continue
			}
			i := cand[matchBank[b]][b]
			group = append(group, i)
			remaining[i] = false
			left--
		}
		if len(group) == 0 {
			// No progress is impossible while elements remain (every
			// element is a 1-edge matching), but guard anyway.
			break
		}
		groups = append(groups, group)
	}
	return groups
}

// ScheduleStridedNoPump is the Figure 9 ablation path: with the PUMP
// disabled, stride-1 accesses lose double-bandwidth mode and are treated as
// ordinary reorderable strides — eight slices of sixteen quadwords instead
// of one pump slice, which also multiplies MAF pressure by 8 on misses
// (§6, "Stride-1 Double Bandwidth mode").
func ScheduleStridedNoPump(base uint64, strideBytes int64, active []bool, tag0 int) ([]Slice, Mode) {
	if ClassifyStride(strideBytes) == ModePump {
		return reorderSlices(base, strideBytes, active, tag0), ModeReorder
	}
	return ScheduleStrided(base, strideBytes, active, tag0)
}
