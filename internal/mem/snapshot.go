package mem

import (
	"fmt"
	"sort"

	"repro/internal/snapshot"
)

// SaveState encodes the memory image: the lazily allocated frames in sorted
// frame-id order plus the high-water mark. Frame order is canonicalised so
// the same memory contents always produce the same bytes regardless of map
// iteration or allocation history.
func (m *Memory) SaveState(w *snapshot.Writer) {
	w.Tag("mem")
	w.U64(m.size)
	ids := make([]uint64, 0, len(m.frames))
	for id := range m.frames {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U64(uint64(len(ids)))
	for _, id := range ids {
		w.U64(id)
		w.Bytes(m.frames[id])
	}
}

// LoadState replaces the memory image with the encoded one.
func (m *Memory) LoadState(r *snapshot.Reader) error {
	r.Tag("mem")
	m.size = r.U64()
	n := r.Len(8)
	m.frames = make(map[uint64][]byte, n)
	for i := 0; i < n; i++ {
		id := r.U64()
		f := r.Bytes()
		if r.Err() != nil {
			return r.Err()
		}
		if len(f) != FrameSize {
			return fmt.Errorf("%w: frame %d has %d bytes, want %d", snapshot.ErrCorrupt, id, len(f), FrameSize)
		}
		if _, dup := m.frames[id]; dup {
			return fmt.Errorf("%w: duplicate frame %d", snapshot.ErrCorrupt, id)
		}
		m.frames[id] = f
	}
	return r.Err()
}
