// Package mem implements the simulated physical memory backing the
// Tarantula chip model. Memory is allocated lazily in fixed-size frames so
// that sparse address spaces (the 512 MB-page virtual layout used by the
// workloads) stay cheap to host.
package mem

import "fmt"

// FrameBits is the log2 of the lazy-allocation frame size. 1 MiB frames keep
// the frame map small while avoiding huge up-front allocations.
const FrameBits = 20

// FrameSize is the number of bytes per lazily allocated frame.
const FrameSize = 1 << FrameBits

// Memory is a sparse, lazily allocated physical memory. The zero value is
// ready to use. Memory is not safe for concurrent use; the simulator is
// single-threaded by design (the chip model advances one cycle at a time).
type Memory struct {
	frames map[uint64][]byte
	// Size tracks the highest touched address + 1, for reporting.
	size uint64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{frames: make(map[uint64][]byte)}
}

func (m *Memory) frame(addr uint64) []byte {
	if m.frames == nil {
		m.frames = make(map[uint64][]byte)
	}
	id := addr >> FrameBits
	f, ok := m.frames[id]
	if !ok {
		f = make([]byte, FrameSize)
		m.frames[id] = f
	}
	if end := addr + 1; end > m.size {
		m.size = end
	}
	return f
}

// Footprint returns the number of bytes of host memory allocated for frames.
func (m *Memory) Footprint() uint64 {
	return uint64(len(m.frames)) * FrameSize
}

// HighWater returns the highest touched address plus one.
func (m *Memory) HighWater() uint64 { return m.size }

// LoadQ reads a 64-bit little-endian quadword. The address must be
// quadword-aligned; Alpha requires natural alignment and the Tarantula
// kernels are written that way, so misalignment is a kernel bug we want to
// catch loudly.
func (m *Memory) LoadQ(addr uint64) uint64 {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned quadword load at %#x", addr))
	}
	f := m.frame(addr)
	off := addr & (FrameSize - 1)
	if off+8 <= FrameSize {
		b := f[off : off+8 : off+8]
		return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	}
	// Aligned quadwords never straddle a 1 MiB frame boundary.
	panic("mem: quadword straddles frame")
}

// StoreQ writes a 64-bit little-endian quadword at a quadword-aligned
// address.
func (m *Memory) StoreQ(addr, v uint64) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mem: unaligned quadword store at %#x", addr))
	}
	f := m.frame(addr)
	off := addr & (FrameSize - 1)
	b := f[off : off+8 : off+8]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
	if end := addr + 8; end > m.size {
		m.size = end
	}
}

// LoadL reads a 32-bit little-endian longword (sign handling is the
// caller's concern, as on Alpha).
func (m *Memory) LoadL(addr uint64) uint32 {
	if addr&3 != 0 {
		panic(fmt.Sprintf("mem: unaligned longword load at %#x", addr))
	}
	f := m.frame(addr)
	off := addr & (FrameSize - 1)
	b := f[off : off+4 : off+4]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// StoreL writes a 32-bit little-endian longword.
func (m *Memory) StoreL(addr uint64, v uint32) {
	if addr&3 != 0 {
		panic(fmt.Sprintf("mem: unaligned longword store at %#x", addr))
	}
	f := m.frame(addr)
	off := addr & (FrameSize - 1)
	b := f[off : off+4 : off+4]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	if end := addr + 4; end > m.size {
		m.size = end
	}
}

// ZeroLine zeroes the 64-byte cache line containing addr. This is the
// semantic effect of the Alpha WH64 (write hint 64) instruction, which the
// STREAMS kernels use to avoid read-for-ownership traffic.
func (m *Memory) ZeroLine(addr uint64) {
	base := addr &^ 63
	f := m.frame(base)
	off := base & (FrameSize - 1)
	clear(f[off : off+64])
}
