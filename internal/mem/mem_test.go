package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreQ(t *testing.T) {
	m := New()
	m.StoreQ(0x1000, 0xdeadbeefcafef00d)
	if got := m.LoadQ(0x1000); got != 0xdeadbeefcafef00d {
		t.Fatalf("LoadQ = %#x", got)
	}
	if got := m.LoadQ(0x2000); got != 0 {
		t.Fatalf("untouched memory = %#x, want 0", got)
	}
}

func TestLoadStoreQRoundTrip(t *testing.T) {
	m := New()
	f := func(addr uint64, v uint64) bool {
		addr = (addr % (1 << 30)) &^ 7
		m.StoreQ(addr, v)
		return m.LoadQ(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.StoreQ(0, 0x0807060504030201)
	if got := m.LoadL(0); got != 0x04030201 {
		t.Fatalf("low longword = %#x", got)
	}
	if got := m.LoadL(4); got != 0x08070605 {
		t.Fatalf("high longword = %#x", got)
	}
}

func TestLoadStoreL(t *testing.T) {
	m := New()
	m.StoreL(0x100, 0x11223344)
	m.StoreL(0x104, 0x55667788)
	if got := m.LoadQ(0x100); got != 0x5566778811223344 {
		t.Fatalf("combined quadword = %#x", got)
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := New()
	for _, f := range []func(){
		func() { m.LoadQ(3) },
		func() { m.StoreQ(5, 0) },
		func() { m.LoadL(2) },
		func() { m.StoreL(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on unaligned access")
				}
			}()
			f()
		}()
	}
}

func TestZeroLine(t *testing.T) {
	m := New()
	for i := uint64(0); i < 16; i++ {
		m.StoreQ(0x1000+i*8, ^uint64(0))
	}
	m.ZeroLine(0x1060) // any address within the second line (0x1040..0x107f)
	for i := uint64(0); i < 8; i++ {
		if got := m.LoadQ(0x1000 + i*8); got != ^uint64(0) {
			t.Fatalf("first line clobbered at +%d", i*8)
		}
	}
	for i := uint64(8); i < 16; i++ {
		if got := m.LoadQ(0x1000 + i*8); got != 0 {
			t.Fatalf("second line not zeroed at +%d: %#x", i*8, got)
		}
	}
}

func TestSparseFrames(t *testing.T) {
	m := New()
	m.StoreQ(0, 1)
	m.StoreQ(1<<40, 2) // far-away address should cost one frame, not 1 TB
	if m.Footprint() > 4*FrameSize {
		t.Fatalf("footprint %d too large for two touches", m.Footprint())
	}
	if m.LoadQ(1<<40) != 2 {
		t.Fatal("far store lost")
	}
}

func TestHighWater(t *testing.T) {
	m := New()
	m.StoreQ(0x500, 7)
	if hw := m.HighWater(); hw != 0x508 {
		t.Fatalf("HighWater = %#x, want 0x508", hw)
	}
}
