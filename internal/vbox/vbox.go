// Package vbox is the timing model of Tarantula's vector execution engine
// (§3.2–§3.4): sixteen identical lanes fronted by two issue ports (an
// instruction occupies a port for ⌈vl/16⌉ cycles, so a dual-issue window
// governs 32 functional units), the address generators feeding the
// conflict-free reordering scheme or the CR box, per-lane 32-entry TLBs with
// PAL refill, and the slice pipeline into the L2.
//
// Renaming and retirement happen in the core on the Vbox's behalf (§3.3);
// the Vbox receives renamed micro-ops over a 3-instruction bus, pulls scalar
// operands over two 64-bit operand buses, and reports completions back.
package vbox

import (
	"repro/internal/creorder"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/l2"
	"repro/internal/metrics"
	"repro/internal/pipe"
	"repro/internal/sched"
	"repro/internal/vm"
)

// Config sets the Vbox structure sizes and timing.
type Config struct {
	Lanes int // 16

	Queue         int // instruction queue entries
	DispatchWidth int // instructions per cycle over the core→Vbox bus (3)
	OperandBuses  int // scalar operands per cycle from the EV8 register file (2)

	Ports int // issue ports (2: north and south)

	MemInsts int // vector memory instructions simultaneously in the memory pipeline

	// PumpEnabled selects stride-1 double-bandwidth mode; Figure 9 turns
	// it off.
	PumpEnabled bool

	// Per-lane TLBs: 32 fully associative entries over 512 MB pages (§3.4).
	TLBEntries      int
	PageBits        int  // 29 for 512 MB pages
	TLBRefillCycles int  // PAL refill cost
	TLBRefillAll    bool // PAL strategy (2): refill every mapping the
	// instruction needs in one trap, instead of per-lane refills.

	// WritebackLat is the lane register-file write latency after the last
	// slice of a load returns.
	WritebackLat int

	// PhysVRegs is the physical vector register file size (32 architected
	// + rename copies). Renaming a vector destination stalls dispatch when
	// no physical register is free — the pressure §3.3 mentions: making
	// the Vbox multithreaded "forced using a much larger register file".
	// Zero means unlimited.
	PhysVRegs int

	// Faults, when non-nil, can freeze the issue ports for a cycle
	// (sim.New installs the chip's injector).
	Faults *faults.Injector
}

// VBox is the vector engine model. It satisfies core.VectorUnit.
type VBox struct {
	cfg Config
	l2c *l2.L2

	// Registered counter handles (vbox.* namespace).
	vsBusTransfers metrics.Counter
	addrGenCycles  metrics.Counter
	reorderSlices  metrics.Counter
	crRounds       metrics.Counter
	crSlices       metrics.Counter
	tlbMisses      metrics.Counter
	tlbRefills     metrics.Counter

	// Space is the address space whose page table PALcode walks on TLB
	// refills; the simulator runs identity-mapped.
	Space *vm.Space

	// OnDone is the completion path back to the core (the VCU sending
	// instruction identifiers for retirement, §3.3).
	OnDone func(cy uint64, u *pipe.UOp)

	queued     int
	vregsInUse int // physical vector registers held by in-flight writers
	readyArith pipe.ReadyQueue
	readyMem   []*pipe.UOp // FIFO: the address generators serialise these

	portFree []uint64

	opBusAt   uint64
	opBusUsed int

	agFree   uint64 // address generators busy until
	memInFly int

	readSubQ  []*pendingSlice
	writeSubQ []*pendingSlice

	tlb         []laneTLB
	lastPage    uint64
	lastPageHot bool
	cr          creorder.CRBox
	tagSeq      int

	wheel *sched.Wheel

	// Bound method values for AtCall, so completion scheduling allocates
	// nothing per event.
	finishFn    func(uint64, any)
	memFinishFn func(uint64, any)

	// activeScratch is the per-instruction element mask, reused across
	// buildSlices calls instead of allocated per vector memory instruction.
	activeScratch [isa.VLMax]bool
	elemScratch   []creorder.Elem
}

type pendingSlice struct {
	op      *l2.SliceOp
	availCy uint64 // cycle the address generators produce it
}

// New returns a Vbox bound to the L2, registering its counters and
// occupancy gauges under the registry's vbox namespace.
func New(cfg Config, reg *metrics.Registry, l2c *l2.L2) *VBox {
	v := &VBox{
		cfg:      cfg,
		l2c:      l2c,
		portFree: make([]uint64, cfg.Ports),
		tlb:      make([]laneTLB, cfg.Lanes),
		wheel:    sched.NewWheel(),
	}
	for i := range v.tlb {
		v.tlb[i] = laneTLB{cap: cfg.TLBEntries, pages: map[uint64]uint64{}}
	}
	v.finishFn = func(cy uint64, a any) { v.finish(cy, a.(*pipe.UOp)) }
	v.memFinishFn = func(cy uint64, a any) {
		v.memInFly--
		v.finish(cy, a.(*pipe.UOp))
	}
	v.Space = vm.NewIdentity()
	m := reg.Scope("vbox")
	v.vsBusTransfers = m.Counter("vs_bus_transfers")
	v.addrGenCycles = m.Counter("addr_gen_cycles")
	v.reorderSlices = m.Counter("reorder_slices")
	v.crRounds = m.Counter("cr_rounds")
	v.crSlices = m.Counter("cr_slices")
	v.tlbMisses = m.Counter("tlb_misses")
	v.tlbRefills = m.Counter("tlb_refills")
	m.Gauge("ports_busy", "Issue ports mid-instruction.",
		func(cy uint64) int { return v.Snapshot(cy).PortsBusy })
	m.Gauge("mem_in_fly", "Vector memory instructions in the pipeline.",
		func(uint64) int { return v.memInFly })
	m.Gauge("queued", "Dispatched, waiting vector instructions.",
		func(uint64) int { return v.queued })
	m.Gauge("slices_wait", "Slices generated but not yet accepted by the L2.",
		func(uint64) int { return len(v.readSubQ) + len(v.writeSubQ) })
	return v
}

// hasVDest reports whether u allocates a physical vector register.
func hasVDest(u *pipe.UOp) bool {
	return u.Inst.Dst.Kind == isa.KindVec && !u.Inst.Dst.IsZero() &&
		!u.Inst.Info().IsStore
}

// Dispatch accepts a renamed vector instruction from the core's bus; false
// applies backpressure (queue full, or no free physical vector register for
// the destination).
func (v *VBox) Dispatch(cy uint64, u *pipe.UOp) bool {
	if v.queued >= v.cfg.Queue {
		return false
	}
	if hasVDest(u) {
		if v.cfg.PhysVRegs > 0 && v.vregsInUse >= v.cfg.PhysVRegs-32 {
			return false // rename stall: register file exhausted
		}
		v.vregsInUse++
	}
	v.queued++
	u.InVbox = true
	return true
}

// CanDispatch reports whether Dispatch would accept u right now, without
// performing it — the core's fast-forward lookahead uses it to tell V-bus
// width staging apart from real queue/register backpressure.
func (v *VBox) CanDispatch(u *pipe.UOp) bool {
	if v.queued >= v.cfg.Queue {
		return false
	}
	if hasVDest(u) && v.cfg.PhysVRegs > 0 && v.vregsInUse >= v.cfg.PhysVRegs-32 {
		return false
	}
	return true
}

// finish releases the physical register (approximating the free at the
// point the value is architecturally visible) and reports completion.
func (v *VBox) finish(cy uint64, u *pipe.UOp) {
	if hasVDest(u) {
		v.vregsInUse--
	}
	v.OnDone(cy, u)
}

// MarkReady is called by the core's wakeup logic when the op's last source
// operand (scalar or vector) completes.
func (v *VBox) MarkReady(cy uint64, u *pipe.UOp) {
	if u.Inst.IsVMem() {
		v.readyMem = append(v.readyMem, u)
	} else {
		v.readyArith.Push(u)
	}
}

// Busy reports in-flight Vbox work.
func (v *VBox) Busy() bool {
	return v.queued > 0 || v.memInFly > 0 || v.readyArith.Len() > 0 ||
		len(v.readyMem) > 0 || len(v.readSubQ) > 0 || len(v.writeSubQ) > 0 ||
		v.wheel.Pending()
}

// Tick advances the Vbox one cycle.
func (v *VBox) Tick(cy uint64) {
	v.wheel.Advance(cy)
	v.submitSlices(cy)
	v.issue(cy)
}

// NextWake returns the earliest cycle after now at which Tick can change any
// Vbox state: the next completion event, the cycle the address generators or
// an issue port free up with work waiting, or the cycle a generated slice
// becomes available for submission to the L2. Dispatched instructions whose
// operands have not arrived wake through the core's completion events, and a
// full L2 input queue keeps the L2 itself awake — both are covered by the
// other components' NextWake. ^uint64(0) means the engine is drained.
func (v *VBox) NextWake(now uint64) uint64 {
	wake := v.wheel.Next()
	min1 := func(c uint64) {
		if c <= now {
			c = now + 1
		}
		if c < wake {
			wake = c
		}
	}
	if len(v.readyMem) > 0 && v.memInFly < v.cfg.MemInsts {
		min1(v.agFree)
	}
	if v.readyArith.Len() > 0 {
		earliest := v.portFree[0]
		for _, f := range v.portFree[1:] {
			if f < earliest {
				earliest = f
			}
		}
		min1(earliest)
	}
	if len(v.readSubQ) > 0 {
		min1(v.readSubQ[0].availCy)
	}
	if len(v.writeSubQ) > 0 {
		min1(v.writeSubQ[0].availCy)
	}
	if wake <= now {
		wake = now + 1
	}
	return wake
}

// ---- issue ----

func (v *VBox) issue(cy uint64) {
	if v.cfg.Faults.StallVPorts(cy) {
		return // injected port stall: nothing issues this cycle
	}
	// One memory instruction can enter the address generators per cycle;
	// head-of-line only, since the AG stage serialises them anyway.
	if len(v.readyMem) > 0 && v.issueMem(cy, v.readyMem[0]) {
		copy(v.readyMem, v.readyMem[1:])
		v.readyMem = v.readyMem[:len(v.readyMem)-1]
	}
	// Arithmetic issues oldest-first while ports accept.
	for issued := 0; v.readyArith.Len() > 0 && issued < v.cfg.Ports; issued++ {
		if !v.tryIssueArith(cy, v.readyArith.Peek()) {
			break
		}
		v.readyArith.Pop()
	}
}

// needsOperandBus reports how many scalar operands ride the operand buses
// for this instruction ("all vector instructions except those of the VV
// group require a scalar operand", §3.3).
func needsOperandBus(in *isa.Inst) int {
	switch in.Info().Group {
	case isa.GVV:
		return 0
	case isa.GSM, isa.GRM, isa.GVS, isa.GVC:
		return 1
	}
	return 0
}

func (v *VBox) takeOperandBus(cy uint64, n int) bool {
	if n == 0 {
		return true
	}
	if v.opBusAt != cy {
		v.opBusAt, v.opBusUsed = cy, 0
	}
	if v.opBusUsed+n > v.cfg.OperandBuses {
		return false
	}
	v.opBusUsed += n
	v.vsBusTransfers.Add(uint64(n))
	return true
}

func (v *VBox) tryIssueArith(cy uint64, u *pipe.UOp) bool {
	// Arithmetic / control: needs a free issue port; the sixteen lanes of
	// that port then work synchronously for ⌈vl/16⌉ cycles.
	port := -1
	for p := range v.portFree {
		if v.portFree[p] <= cy {
			port = p
			break
		}
	}
	if port == -1 {
		return false
	}
	if !v.takeOperandBus(cy, needsOperandBus(&u.Inst)) {
		return false
	}
	info := u.Inst.Info()
	occ := v.occupancy(u)
	if info.Unpipelined {
		// Divide/sqrt iterate in the lanes: the port is held for the whole
		// element-serial operation.
		occ *= uint64(info.Latency)
	}
	v.portFree[port] = cy + occ
	v.queued--
	done := cy + occ + uint64(info.Latency)
	v.wheel.AtCall(done, v.finishFn, u)
	return true
}

// occupancy is ⌈vl/16⌉ — the port-busy time of §3.2 ("typically, 8 cycles").
func (v *VBox) occupancy(u *pipe.UOp) uint64 {
	vl := u.Eff.VL
	if vl <= 0 {
		vl = 1
	}
	occ := (vl + v.cfg.Lanes - 1) / v.cfg.Lanes
	return uint64(occ)
}

// ---- memory pipeline ----

func (v *VBox) issueMem(cy uint64, u *pipe.UOp) bool {
	if v.memInFly >= v.cfg.MemInsts {
		return false
	}
	if v.agFree > cy {
		return false
	}
	if !v.takeOperandBus(cy, needsOperandBus(&u.Inst)) {
		return false
	}

	write := u.Inst.Info().IsStore
	prefetch := u.Inst.IsPrefetch()

	// TLB: translate every active element's page in the lane that generates
	// it. Misses on prefetches are squashed (§2).
	agStart := cy + 1
	if !prefetch {
		agStart += v.tlbCheck(u)
	}

	slices, agCycles := v.buildSlices(u)
	v.addrGenCycles.Add(uint64(agCycles))
	v.agFree = agStart + uint64(agCycles)
	v.queued--
	v.memInFly++

	if len(slices) == 0 {
		// vl=0 or fully masked-off: nothing to transfer.
		v.wheel.AtCall(v.agFree, v.memFinishFn, u)
		return true
	}

	if prefetch {
		// Prefetches do not block: the instruction completes once its
		// addresses are generated; the slices fill the L2 in the background.
		v.wheel.AtCall(v.agFree, v.memFinishFn, u)
		for i, s := range slices {
			ps := &pendingSlice{
				op:      &l2.SliceOp{Slice: s, Write: false},
				availCy: agStart + uint64(i),
			}
			v.readSubQ = append(v.readSubQ, ps)
		}
		return true
	}

	u.SlicesOut = len(slices)
	// One Done callback per instruction, shared by all its slices (the old
	// per-slice closures were len(slices) identical allocations).
	sliceDone := func(doneCy uint64) {
		u.SlicesOut--
		if u.SlicesOut == 0 {
			v.wheel.AtCall(doneCy+uint64(v.cfg.WritebackLat), v.memFinishFn, u)
		}
	}
	for i, s := range slices {
		op := &l2.SliceOp{Slice: s, Write: write, Done: sliceDone}
		ps := &pendingSlice{op: op, availCy: agStart + uint64(i)}
		if write {
			v.writeSubQ = append(v.writeSubQ, ps)
		} else {
			v.readSubQ = append(v.readSubQ, ps)
		}
	}
	return true
}

// buildSlices runs the address-generation path for a vector memory
// instruction: pump / reorder ROM / CR box. It returns the slices and the
// number of address-generation cycles consumed.
func (v *VBox) buildSlices(u *pipe.UOp) ([]creorder.Slice, int) {
	eff := &u.Eff
	group := u.Inst.Info().Group
	tag0 := v.tagSeq

	if group == isa.GSM {
		active := v.activeScratch[:]
		clear(active)
		for _, idx := range eff.ElemIdx {
			active[idx] = true
		}
		var slices []creorder.Slice
		var mode creorder.Mode
		if v.cfg.PumpEnabled {
			slices, mode = creorder.ScheduleStrided(eff.Base, eff.Stride, active, tag0)
		} else {
			slices, mode = creorder.ScheduleStridedNoPump(eff.Base, eff.Stride, active, tag0)
		}
		switch mode {
		case creorder.ModePump:
			v.tagSeq += len(slices)
			// The modified control produces the sixteen line addresses
			// directly: one cycle per pump slice.
			return slices, len(slices)
		case creorder.ModeReorder:
			v.reorderSlices.Add(uint64(len(slices)))
			v.tagSeq += len(slices)
			// Eight address-generation cycles regardless of vl (§3.4).
			ag := 8
			if len(slices) > ag {
				ag = len(slices)
			}
			return slices, ag
		default:
			// Self-conflicting stride: "treated exactly like a
			// gather/scatter and run through the CR box" (§3.4).
			slices, rounds := v.cr.PackStrided(eff.Base, eff.Stride, active, tag0)
			v.tagSeq += len(slices)
			v.crRounds.Add(uint64(rounds))
			v.crSlices.Add(uint64(len(slices)))
			return slices, rounds
		}
	}

	// Gather/scatter: random addresses through the CR box.
	if cap(v.elemScratch) < len(eff.Addrs) {
		v.elemScratch = make([]creorder.Elem, len(eff.Addrs))
	}
	elems := v.elemScratch[:len(eff.Addrs)]
	for i, a := range eff.Addrs {
		elems[i] = creorder.Elem{Index: int(eff.ElemIdx[i]), Addr: a}
	}
	slices, rounds := v.cr.Pack(elems, tag0)
	v.tagSeq += len(slices)
	v.crRounds.Add(uint64(rounds))
	v.crSlices.Add(uint64(len(slices)))
	return slices, rounds
}

// submitSlices pushes at most one available slice per direction into the L2
// each cycle, preserving pipeline order.
func (v *VBox) submitSlices(cy uint64) {
	if len(v.readSubQ) > 0 && v.readSubQ[0].availCy <= cy {
		if v.l2c.SubmitSlice(v.readSubQ[0].op) {
			v.readSubQ = v.readSubQ[1:]
		}
	}
	if len(v.writeSubQ) > 0 && v.writeSubQ[0].availCy <= cy {
		if v.l2c.SubmitSlice(v.writeSubQ[0].op) {
			v.writeSubQ = v.writeSubQ[1:]
		}
	}
}

// ---- per-lane TLBs ----

type laneTLB struct {
	cap   int
	pages map[uint64]uint64 // page -> last-use tick
	tick  uint64
}

func (t *laneTLB) lookup(page uint64) bool {
	t.tick++
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.tick
		return true
	}
	return false
}

func (t *laneTLB) insert(page uint64) {
	t.tick++
	if len(t.pages) >= t.cap {
		// Evict LRU (fully associative, §3.4: CAM-based, 32 entries).
		var victim uint64
		oldest := ^uint64(0)
		for p, use := range t.pages {
			if use < oldest {
				oldest, victim = use, p
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.tick
}

// tlbCheck translates every active element and returns the stall cycles due
// to TLB refills. Strategy (1) refills only missing lanes (one trap per
// batch of misses); strategy (2) peeks at vs and refills every mapping the
// instruction needs in a single trap (§3.4).
func (v *VBox) tlbCheck(u *pipe.UOp) uint64 {
	// Fast path: the common case is an access confined to one recently
	// used 512 MB page (every lane already maps it).
	if n := len(u.Eff.Addrs); n > 0 {
		lo := u.Eff.Addrs[0] >> v.cfg.PageBits
		hi := u.Eff.Addrs[n-1] >> v.cfg.PageBits
		if lo == hi && lo == v.lastPage && v.lastPageHot {
			return 0
		}
	}
	misses := 0
	for i, a := range u.Eff.Addrs {
		lane := int(u.Eff.ElemIdx[i]) % v.cfg.Lanes
		page := a >> v.cfg.PageBits
		if !v.tlb[lane].lookup(page) {
			misses++
			v.tlbMisses.Inc()
			// PALcode walks the page table; only valid PTEs enter the TLB
			// (an invalid mapping would be an access fault — the workloads
			// run identity-mapped, so it cannot arise here).
			if _, ok := v.Space.Lookup(a); !ok {
				continue
			}
			v.tlb[lane].insert(page)
			if v.cfg.TLBRefillAll {
				// One PALcode invocation loads the mapping into every lane
				// (strategy (2): peek at vs for all needed pages).
				for l := range v.tlb {
					if !v.tlb[l].lookup(page) {
						v.tlb[l].insert(page)
					}
				}
			}
		}
	}
	if n := len(u.Eff.Addrs); n > 0 {
		lo := u.Eff.Addrs[0] >> v.cfg.PageBits
		if lo == u.Eff.Addrs[n-1]>>v.cfg.PageBits {
			v.lastPage, v.lastPageHot = lo, true
		} else {
			v.lastPageHot = false
		}
	}
	if misses == 0 {
		return 0
	}
	v.tlbRefills.Inc()
	if v.cfg.TLBRefillAll {
		return uint64(v.cfg.TLBRefillCycles)
	}
	return uint64(misses) * uint64(v.cfg.TLBRefillCycles) / 4
}

// Utilization is a point-in-time occupancy snapshot for profiling tools.
type Utilization struct {
	PortsBusy  int // issue ports mid-instruction
	MemInFly   int // vector memory instructions in the pipeline
	Queued     int // dispatched, waiting instructions
	SlicesWait int // slices generated but not yet accepted by the L2
}

// Snapshot reports the engine's occupancy at cycle cy.
func (v *VBox) Snapshot(cy uint64) Utilization {
	u := Utilization{
		MemInFly:   v.memInFly,
		Queued:     v.queued,
		SlicesWait: len(v.readSubQ) + len(v.writeSubQ),
	}
	for _, free := range v.portFree {
		if free > cy {
			u.PortsBusy++
		}
	}
	return u
}
