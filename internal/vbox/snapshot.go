package vbox

import (
	"fmt"
	"sort"

	"repro/internal/snapshot"
)

// SaveState encodes the Vbox's durable state at a quiescent boundary:
// per-port and address-generator busy cycles (delta-encoded), the operand
// bus window, every lane's TLB (sorted page order), the open-page
// predictor, the conflict-resolution box's cumulative round/slice totals
// and the slice tag counter. In-flight uops and pending slices must have
// drained (Busy() precondition, re-enforced here).
func (v *VBox) SaveState(w *snapshot.Writer, now uint64) error {
	if v.Busy() {
		return fmt.Errorf("vbox: vector work in flight; snapshots require a quiescent chip")
	}
	if v.vregsInUse != 0 {
		return fmt.Errorf("vbox: %d physical vector registers still held; snapshots require a quiescent chip", v.vregsInUse)
	}
	w.Tag("vbox")
	w.U64(uint64(len(v.portFree)))
	for _, p := range v.portFree {
		w.Delta(p, now)
	}
	w.Delta(v.opBusAt, now)
	w.Int(v.opBusUsed)
	w.Delta(v.agFree, now)
	w.U64(v.lastPage)
	w.Bool(v.lastPageHot)
	w.Int(v.cr.Rounds)
	w.Int(v.cr.Slices)
	w.Int(v.tagSeq)
	w.U64(uint64(len(v.tlb)))
	for i := range v.tlb {
		t := &v.tlb[i]
		w.U64(t.tick)
		pages := make([]uint64, 0, len(t.pages))
		for p := range t.pages {
			pages = append(pages, p)
		}
		sort.Slice(pages, func(a, b int) bool { return pages[a] < pages[b] })
		w.U64(uint64(len(pages)))
		for _, p := range pages {
			w.U64(p)
			w.U64(t.pages[p])
		}
	}
	return v.wheel.SaveState(w, now)
}

// LoadState restores the Vbox state saved by SaveState; lane and port
// geometry must match the constructed configuration.
func (v *VBox) LoadState(r *snapshot.Reader, now uint64) error {
	r.Tag("vbox")
	nports := r.Len(8)
	if r.Err() != nil {
		return r.Err()
	}
	if nports != len(v.portFree) {
		return fmt.Errorf("%w: %d vbox ports, chip has %d", snapshot.ErrCorrupt, nports, len(v.portFree))
	}
	for i := range v.portFree {
		v.portFree[i] = r.Abs(now)
	}
	v.opBusAt = r.Abs(now)
	v.opBusUsed = r.Int()
	v.agFree = r.Abs(now)
	v.lastPage = r.U64()
	v.lastPageHot = r.Bool()
	v.cr.Rounds = r.Int()
	v.cr.Slices = r.Int()
	v.tagSeq = r.Int()
	nlanes := r.Len(8)
	if r.Err() != nil {
		return r.Err()
	}
	if nlanes != len(v.tlb) {
		return fmt.Errorf("%w: %d vbox lanes, chip has %d", snapshot.ErrCorrupt, nlanes, len(v.tlb))
	}
	for i := range v.tlb {
		t := &v.tlb[i]
		t.tick = r.U64()
		n := r.Len(16)
		if r.Err() != nil {
			return r.Err()
		}
		if n > t.cap {
			return fmt.Errorf("%w: lane TLB holds %d pages, capacity is %d", snapshot.ErrCorrupt, n, t.cap)
		}
		t.pages = make(map[uint64]uint64, n)
		for j := 0; j < n; j++ {
			p := r.U64()
			tick := r.U64()
			if _, dup := t.pages[p]; dup {
				return fmt.Errorf("%w: duplicate TLB page %#x", snapshot.ErrCorrupt, p)
			}
			t.pages[p] = tick
		}
	}
	return v.wheel.LoadState(r, now)
}
