package vbox

import (
	"testing"

	"repro/internal/l2"
	"repro/internal/metrics"
	"repro/internal/pipe"
	"repro/internal/zbox"
)

func testVBox(queue int) *VBox {
	reg := metrics.NewRegistry()
	z := zbox.New(zbox.Config{
		Ports: 8, LineCycles: 16, BaseLatency: 100,
		RowBytes: 2048, DevicesPerPort: 32, RowMissCycles: 12, TurnCycles: 5,
	}, reg)
	l2c := l2.New(l2.Config{
		Bytes: 1 << 20, Assoc: 8, LineBytes: 64,
		ScalarLat: 12, VecLatPump: 34, VecLatOdd: 38,
		MAFSize: 64, ReplayThreshold: 8, RetryDelay: 6,
		SliceQueue: 16, PBitPenalty: 12,
	}, reg, z)
	v := New(Config{
		Lanes: 16, Queue: queue, DispatchWidth: 3, OperandBuses: 2,
		Ports: 2, MemInsts: 16, PumpEnabled: true,
		TLBEntries: 32, PageBits: 29, TLBRefillCycles: 200, TLBRefillAll: true,
		WritebackLat: 2,
	}, reg, l2c)
	v.OnDone = func(uint64, *pipe.UOp) {}
	return v
}

func TestDispatchBackpressure(t *testing.T) {
	v := testVBox(2)
	u := func() *pipe.UOp { return &pipe.UOp{} }
	if !v.Dispatch(1, u()) || !v.Dispatch(1, u()) {
		t.Fatal("queue of 2 must accept two instructions")
	}
	if v.Dispatch(1, u()) {
		t.Fatal("third dispatch must be rejected (queue full)")
	}
}

func TestLaneTLBCapacityAndLRU(t *testing.T) {
	tlb := laneTLB{cap: 4, pages: map[uint64]uint64{}}
	for p := uint64(0); p < 4; p++ {
		if tlb.lookup(p) {
			t.Fatalf("page %d should miss initially", p)
		}
		tlb.insert(p)
	}
	// All resident.
	for p := uint64(0); p < 4; p++ {
		if !tlb.lookup(p) {
			t.Fatalf("page %d should hit", p)
		}
	}
	// Touch 0..2 so page 3 is LRU, then insert a fifth page.
	tlb.lookup(0)
	tlb.lookup(1)
	tlb.lookup(2)
	tlb.insert(99)
	if tlb.lookup(3) {
		t.Fatal("LRU page 3 should have been evicted")
	}
	if !tlb.lookup(99) || !tlb.lookup(0) {
		t.Fatal("recently used pages evicted instead")
	}
}

func TestOccupancyCeiling(t *testing.T) {
	v := testVBox(64)
	cases := []struct {
		vl   int
		want uint64
	}{{128, 8}, {100, 7}, {16, 1}, {1, 1}, {17, 2}, {0, 1}}
	for _, c := range cases {
		u := &pipe.UOp{}
		u.Eff.VL = c.vl
		if got := v.occupancy(u); got != c.want {
			t.Errorf("occupancy(vl=%d) = %d, want %d", c.vl, got, c.want)
		}
	}
}
