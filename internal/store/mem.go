package store

import (
	"container/list"
	"sync"
)

// Mem is the in-memory tier: per-namespace bounded maps with the retention
// policy the namespace asks for — entry-bounded LRU for results, small FIFO
// for sweep blobs, byte-bounded FIFO for snapshots (full memory images, so
// an entry bound would let a handful of large blobs dominate the heap).
// Standing alone it is the everything-dies-with-the-process store tarserved
// launches with; under a Tiered store it becomes the read cache in front of
// the disk tier.
type Mem struct {
	mu sync.Mutex
	ns map[Namespace]*memNS
}

type memNS struct {
	pol     Policy
	order   *list.List // front = most recent; values are *memEntry
	entries map[string]*list.Element
	bytes   int64
	evicted uint64
}

type memEntry struct {
	key  string
	blob []byte
}

// NewMem builds the memory tier from the per-namespace policies.
func NewMem(cfg Config) *Mem {
	m := &Mem{ns: make(map[Namespace]*memNS, len(cfg))}
	for ns, pol := range cfg {
		m.ns[ns] = &memNS{pol: pol, order: list.New(), entries: make(map[string]*list.Element)}
	}
	return m
}

func (m *Mem) space(ns Namespace) *memNS {
	s, ok := m.ns[ns]
	if !ok {
		// Unconfigured namespace: retain nothing rather than grow unbounded.
		return nil
	}
	return s
}

// Get returns the stored bytes, refreshing recency for LRU namespaces.
func (m *Mem) Get(ns Namespace, key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.space(ns)
	if s == nil {
		return nil, false
	}
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	if s.pol.MemLRU {
		s.order.MoveToFront(el)
	}
	return el.Value.(*memEntry).blob, true
}

// Put inserts (or replaces) an entry, evicting past the namespace bounds.
// A single blob larger than a byte bound is not retained at all.
func (m *Mem) Put(ns Namespace, key string, blob []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.space(ns)
	if s == nil {
		return
	}
	if s.pol.MemBytes > 0 && int64(len(blob)) > s.pol.MemBytes {
		return
	}
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*memEntry)
		s.bytes += int64(len(blob)) - int64(len(e.blob))
		e.blob = blob
		if s.pol.MemLRU {
			s.order.MoveToFront(el)
		}
		s.evictLocked()
		return
	}
	s.entries[key] = s.order.PushFront(&memEntry{key: key, blob: blob})
	s.bytes += int64(len(blob))
	s.evictLocked()
}

func (s *memNS) evictLocked() {
	for (s.pol.MemEntries > 0 && s.order.Len() > s.pol.MemEntries) ||
		(s.pol.MemBytes > 0 && s.bytes > s.pol.MemBytes) {
		oldest := s.order.Back()
		if oldest == nil {
			return
		}
		e := oldest.Value.(*memEntry)
		s.order.Remove(oldest)
		delete(s.entries, e.key)
		s.bytes -= int64(len(e.blob))
		s.evicted++
	}
}

// Len reports the namespace's resident entry count.
func (m *Mem) Len(ns Namespace) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.space(ns)
	if s == nil {
		return 0
	}
	return s.order.Len()
}

// Status reports the memory-only store health.
func (m *Mem) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{Tier: "mem", NS: make(map[Namespace]NSStatus, len(m.ns))}
	for ns, s := range m.ns {
		st.NS[ns] = NSStatus{MemEntries: s.order.Len(), MemBytes: s.bytes, MemEvicted: s.evicted}
	}
	return st
}

// Close is a no-op: the memory tier has nothing to release.
func (m *Mem) Close() error { return nil }

var _ Interface = (*Mem)(nil)
