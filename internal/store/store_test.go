package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faults"
)

// testConfig mirrors the serve layer's namespace shapes at byte level: an
// indexed, validated, evicting "results" namespace; an unindexed "sweeps"
// namespace; and a verify-everywhere "snapshots" namespace.
func testConfig() Config {
	return Config{
		Results: {
			Schema:         1,
			Ext:            ".json",
			Validate:       validateBlob,
			ScanOnOpen:     true,
			VerifyOnRead:   true,
			DiskEvict:      true,
			TornWriteChaos: true,
			MemEntries:     16,
			MemLRU:         true,
		},
		Sweeps: {Schema: 1, Subdir: "sweeps", Ext: ".json", MemEntries: 4},
		Snapshots: {
			Schema:        1,
			Subdir:        "snapshots",
			Ext:           ".snap",
			Validate:      validateBlob,
			ScanOnOpen:    true,
			VerifyOnRead:  true,
			ValidateOnPut: true,
			DiskEvict:     true,
			MemBytes:      1 << 20,
		},
	}
}

// blobFor builds a self-describing test artifact; validateBlob is the
// matching per-namespace validator (the store-level stand-in for the serve
// layer's decodeArtifact / snapshot.Verify hooks).
func blobFor(key, fill string) []byte {
	return []byte("blob:" + key + ":" + fill)
}

func validateBlob(key string, raw []byte) error {
	if !bytes.HasPrefix(raw, []byte("blob:"+key+":")) {
		return errors.New("blob contradicts its content address")
	}
	return nil
}

func openTestDisk(t *testing.T, dir string, maxBytes int64, inj *faults.Injector) *Disk {
	t.Helper()
	if inj == nil {
		inj = faults.New(nil)
	}
	d, err := OpenDisk(dir, maxBytes, inj, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiskStoreRoundTripAndWarmStart: a put survives a process "restart"
// (reopening the store on the same directory) byte-identically — the
// crash-recovery primitive everything else builds on.
func TestDiskStoreRoundTripAndWarmStart(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, 0, nil)
	d.Put(Results, "aaaa1111", blobFor("aaaa1111", "alpha"))
	d.Put(Results, "bbbb2222", blobFor("bbbb2222", "beta"))
	if d.Len(Results) != 2 {
		t.Fatalf("len = %d, want 2", d.Len(Results))
	}
	if _, ok := d.Get(Results, "aaaa1111"); !ok {
		t.Fatal("get missed a just-put artifact")
	}

	d2 := openTestDisk(t, dir, 0, nil)
	st := d2.Status()
	r := st.NS[Results]
	if r.WarmStart != 2 || r.DiskEntries != 2 || r.Quarantined != 0 {
		t.Fatalf("warm-start status = %+v", st)
	}
	raw, ok := d2.Get(Results, "aaaa1111")
	if !ok || !bytes.Equal(raw, blobFor("aaaa1111", "alpha")) {
		t.Fatalf("warm-started get = %q ok=%v", raw, ok)
	}
}

// TestDiskStoreEviction: the byte cap evicts least-recently-accessed
// artifacts, and the files actually leave the disk.
func TestDiskStoreEviction(t *testing.T) {
	one := int64(len(blobFor("key0", "xxxx")))
	d := openTestDisk(t, t.TempDir(), 3*one+one/2, nil)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("key%d", i)
		d.Put(Results, key, blobFor(key, "xxxx"))
	}
	d.Get(Results, "key0") // refresh: key1 becomes the coldest
	d.Put(Results, "key3", blobFor("key3", "xxxx"))
	r := d.Status().NS[Results]
	if r.Evicted != 1 || r.DiskEntries != 3 {
		t.Fatalf("eviction status = %+v", r)
	}
	if _, ok := d.Get(Results, "key1"); ok {
		t.Fatal("coldest entry survived the cap")
	}
	if _, ok := d.Get(Results, "key0"); !ok {
		t.Fatal("recently-accessed entry was evicted")
	}
	if _, err := os.Stat(d.ns[Results].path("key1")); !os.IsNotExist(err) {
		t.Fatalf("evicted artifact still on disk: %v", err)
	}
}

// TestDiskStoreNamespaceIsolation: the same key in different namespaces
// holds different bytes, and eviction pressure in one namespace cannot
// touch another (separate byte accounting against the shared cap).
func TestDiskStoreNamespaceIsolation(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), 0, nil)
	d.Put(Results, "cafe0123", blobFor("cafe0123", "result"))
	d.Put(Snapshots, "cafe0123", blobFor("cafe0123", "snapshot"))
	r, _ := d.Get(Results, "cafe0123")
	s, _ := d.Get(Snapshots, "cafe0123")
	if bytes.Equal(r, s) {
		t.Fatal("namespaces are not isolated")
	}
	if d.Len(Results) != 1 || d.Len(Snapshots) != 1 {
		t.Fatalf("lens: results=%d snapshots=%d", d.Len(Results), d.Len(Snapshots))
	}
}

// TestDiskStoreCorruptionQuarantine plants corrupt files on disk and
// asserts the loader quarantines them at open — counted, moved aside,
// never part of the warm start, never served — and that rot landing after
// the open is caught by read-time verification.
func TestDiskStoreCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, 0, nil)
	d.Put(Results, "good0000", blobFor("good0000", "fine"))
	d.Put(Results, "good1111", blobFor("good1111", "fine"))
	resDir := d.ns[Results].dir
	bad := map[string][]byte{
		"bad_keyskew":  blobFor("otherkey", "fine"), // valid bytes, wrong address
		"bad_garbage":  []byte("\x00\xffnot a blob"),
		"bad_empty":    nil,
		"bad_truncate": []byte("blo"),
	}
	for key, raw := range bad {
		if err := os.WriteFile(filepath.Join(resDir, key+".json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Tmp debris from a "crashed" writer must be removed, not quarantined.
	if err := os.WriteFile(filepath.Join(resDir, TmpPrefix+"debris"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDisk(t, dir, 0, nil)
	r := d2.Status().NS[Results]
	if r.Quarantined != uint64(len(bad)) || r.WarmStart != 2 || r.DiskEntries != 2 {
		t.Fatalf("status after corrupt open = %+v, want %d quarantined / 2 warm", r, len(bad))
	}
	for key := range bad {
		if _, ok := d2.Get(Results, key); ok {
			t.Fatalf("corrupt artifact %q was served", key)
		}
	}
	if _, ok := d2.Get(Results, "good0000"); !ok {
		t.Fatal("valid artifact lost in the corrupt sweep")
	}
	if names, _ := os.ReadDir(filepath.Join(dir, "quarantine")); len(names) != len(bad) {
		t.Fatalf("quarantine holds %d files, want %d", len(names), len(bad))
	}
	if _, err := os.Stat(filepath.Join(resDir, TmpPrefix+"debris")); !os.IsNotExist(err) {
		t.Error("tmp debris survived the open")
	}

	// Post-open rot: caught at read time, quarantined then, not served.
	if err := os.WriteFile(filepath.Join(resDir, "good1111.json"), []byte("blo"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Get(Results, "good1111"); ok {
		t.Fatal("post-open corruption was served")
	}
	if got := d2.Status().NS[Results].Quarantined; got != uint64(len(bad))+1 {
		t.Fatalf("read-time quarantine not counted: %d", got)
	}
}

// TestDiskStoreValidateOnPut: a namespace with put-time validation refuses
// bytes it would later quarantine, and unsafe keys never touch the disk.
func TestDiskStoreValidateOnPut(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), 0, nil)
	d.Put(Snapshots, "badblob0", []byte("not a valid blob"))
	d.Put(Snapshots, "../evil", blobFor("../evil", "x"))
	if n := d.Len(Snapshots); n != 0 {
		t.Fatalf("invalid put was persisted: %d entries", n)
	}
}

// TestDiskSnapshotNamespaceEviction: the snapshot-style namespace evicts
// least-recently-accessed entries against the byte cap without touching
// the results namespace.
func TestDiskSnapshotNamespaceEviction(t *testing.T) {
	pad := make([]byte, 60)
	for i := range pad {
		pad[i] = 'a'
	}
	one := int64(len(blobFor("snapa000", string(pad))))
	d := openTestDisk(t, t.TempDir(), 2*one+one/2, nil)
	d.Put(Results, "keepme00", blobFor("keepme00", "small"))
	for _, key := range []string{"snapa000", "snapb000", "snapc000"} {
		d.Put(Snapshots, key, blobFor(key, string(pad)))
	}
	s := d.Status().NS[Snapshots]
	if s.Evicted == 0 {
		t.Fatalf("byte cap did not evict: %+v", s)
	}
	if s.DiskBytes > 2*one+one/2 {
		t.Errorf("snapshot bytes %d exceed the cap", s.DiskBytes)
	}
	if _, ok := d.Get(Snapshots, "snapa000"); ok {
		t.Error("coldest snapshot survived eviction")
	}
	if _, ok := d.Get(Results, "keepme00"); !ok {
		t.Error("snapshot pressure evicted a result")
	}
}

// TestTieredStoreSingleFlight: concurrent Put and Get traffic on one key
// (the exact shape of a result completing while a warm-start load is in
// flight) must neither drop the artifact nor tear it, and the disk tier
// ends with exactly one copy. Run under -race in CI.
func TestTieredStoreSingleFlight(t *testing.T) {
	disk := openTestDisk(t, t.TempDir(), 0, nil)
	ts := NewTiered(NewMem(testConfig()), disk)
	defer ts.Close()
	const key = "cafe0123"
	blob := blobFor(key, "payload")

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				if i%2 == 0 {
					ts.Put(Results, key, blob)
				} else if got, ok := ts.Get(Results, key); ok && !bytes.Equal(got, blob) {
					t.Errorf("torn read: %q", got)
				}
			}
		}(i)
	}
	wg.Wait()
	got, ok := ts.Get(Results, key)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("artifact lost after concurrent traffic: %q ok=%v", got, ok)
	}
	if n := disk.Len(Results); n != 1 {
		t.Fatalf("disk tier holds %d entries, want exactly 1", n)
	}
	if st := ts.Status(); st.Tier != "mem+disk" || st.IOErrors != 0 {
		t.Fatalf("tiered status = %+v", st)
	}
}

// TestChaosDiskStore runs the disk tier under the DiskChaos campaign
// (injected read/write errors and torn writes) and asserts the robustness
// contract: every Get is either the exact stored bytes or a structural
// miss — never corrupt bytes, never a panic — while the injected faults
// show up in the status counters.
func TestChaosDiskStore(t *testing.T) {
	d := openTestDisk(t, t.TempDir(), 0, faults.New(faults.DiskChaos(7)))
	served, missed := 0, 0
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("chaos%02d", i)
		blob := blobFor(key, "payload")
		d.Put(Results, key, blob)
		raw, ok := d.Get(Results, key)
		if !ok {
			missed++
			continue
		}
		served++
		if !bytes.Equal(raw, blob) {
			t.Fatalf("chaos store served a corrupt artifact: %q", raw)
		}
	}
	r := d.Status()
	if r.IOErrors == 0 {
		t.Fatalf("chaos campaign injected no I/O errors: %+v (served=%d missed=%d)", r, served, missed)
	}
	if r.NS[Results].Quarantined == 0 {
		t.Fatalf("no torn write reached the quarantine path: %+v", r)
	}
	if served == 0 {
		t.Fatal("chaos store never served anything — campaign too hot to be a test")
	}
}

// ---- memory tier policies ----

// TestMemLRUPolicy: entry-bounded LRU with recency refresh on Get.
func TestMemLRUPolicy(t *testing.T) {
	m := NewMem(Config{Results: {MemEntries: 2, MemLRU: true}})
	m.Put(Results, "a", []byte("1"))
	m.Put(Results, "b", []byte("2"))
	m.Get(Results, "a") // refresh: b becomes coldest
	m.Put(Results, "c", []byte("3"))
	if _, ok := m.Get(Results, "b"); ok {
		t.Fatal("b survived past the bound")
	}
	if _, ok := m.Get(Results, "a"); !ok {
		t.Fatal("recently-used a was evicted")
	}
	if m.Len(Results) != 2 {
		t.Fatalf("len = %d, want 2", m.Len(Results))
	}
}

// TestMemFIFOPolicy: without MemLRU, Get does not refresh — retention is
// pure insertion order (the sweep-blob shape).
func TestMemFIFOPolicy(t *testing.T) {
	m := NewMem(Config{Sweeps: {MemEntries: 2}})
	m.Put(Sweeps, "a", []byte("1"))
	m.Put(Sweeps, "b", []byte("2"))
	m.Get(Sweeps, "a") // no refresh
	m.Put(Sweeps, "c", []byte("3"))
	if _, ok := m.Get(Sweeps, "a"); ok {
		t.Fatal("FIFO retained the oldest entry")
	}
	if _, ok := m.Get(Sweeps, "b"); !ok {
		t.Fatal("FIFO evicted the wrong entry")
	}
}

// TestMemByteBound: byte-bounded namespaces evict oldest-first past the
// cap, and a single blob larger than the cap is not retained at all.
func TestMemByteBound(t *testing.T) {
	m := NewMem(Config{Snapshots: {MemBytes: 10}})
	m.Put(Snapshots, "big", make([]byte, 11))
	if _, ok := m.Get(Snapshots, "big"); ok {
		t.Fatal("oversized blob was retained")
	}
	m.Put(Snapshots, "a", make([]byte, 4))
	m.Put(Snapshots, "b", make([]byte, 4))
	m.Put(Snapshots, "c", make([]byte, 4))
	if _, ok := m.Get(Snapshots, "a"); ok {
		t.Fatal("byte cap did not evict the oldest")
	}
	st := m.Status().NS[Snapshots]
	if st.MemBytes > 10 || st.MemEvicted == 0 {
		t.Fatalf("byte-bound status = %+v", st)
	}
	// Replacing a resident key adjusts bytes instead of double-counting.
	m.Put(Snapshots, "b", make([]byte, 6))
	if st := m.Status().NS[Snapshots]; st.MemBytes > 10 {
		t.Fatalf("replace double-counted bytes: %+v", st)
	}
}

// TestMemUnconfiguredNamespace: an unconfigured namespace retains nothing
// rather than growing unbounded.
func TestMemUnconfiguredNamespace(t *testing.T) {
	m := NewMem(Config{Results: {MemEntries: 2, MemLRU: true}})
	m.Put(Sweeps, "a", []byte("1"))
	if _, ok := m.Get(Sweeps, "a"); ok {
		t.Fatal("unconfigured namespace retained data")
	}
	if m.Len(Sweeps) != 0 {
		t.Fatal("unconfigured namespace has entries")
	}
}

// ---- shared-directory (cluster) tier ----

// TestSharedStoreCrossProcessVisibility is the cluster-store property: two
// stores opened on the same directory (two nodes on one NFS mount) see
// each other's writes without reopening, because nothing is indexed — any
// node's Put is every node's hit.
func TestSharedStoreCrossProcessVisibility(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(nil)
	a, err := OpenShared(dir, inj, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenShared(dir, inj, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// b opened before a's put: visibility must not depend on open order.
	a.Put(Results, "aaaa1111", blobFor("aaaa1111", "from-a"))
	raw, ok := b.Get(Results, "aaaa1111")
	if !ok || !bytes.Equal(raw, blobFor("aaaa1111", "from-a")) {
		t.Fatalf("peer write invisible: %q ok=%v", raw, ok)
	}
	// All namespaces share: sweeps and snapshots too.
	a.Put(Sweeps, "swp00000", []byte("sweep-blob"))
	if raw, ok := b.Get(Sweeps, "swp00000"); !ok || !bytes.Equal(raw, []byte("sweep-blob")) {
		t.Fatalf("peer sweep blob invisible: %q ok=%v", raw, ok)
	}
	a.Put(Snapshots, "snp00000", blobFor("snp00000", "snap"))
	if _, ok := b.Get(Snapshots, "snp00000"); !ok {
		t.Fatal("peer snapshot invisible")
	}
	if st := a.Status(); st.Tier != "shared" {
		t.Fatalf("tier = %q, want shared", st.Tier)
	}
}

// TestSharedStoreReadValidation: a shared store validates on every read
// (there is no open-time scan to trust), quarantining corrupt files.
func TestSharedStoreReadValidation(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenShared(dir, faults.New(nil), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a.Put(Results, "cafe0123", blobFor("cafe0123", "ok"))
	path := a.ns[Results].path("cafe0123")
	if err := os.WriteFile(path, []byte("blo"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Get(Results, "cafe0123"); ok {
		t.Fatal("shared store served corrupt bytes")
	}
	if q := a.Status().NS[Results].Quarantined; q != 1 {
		t.Fatalf("quarantined = %d, want 1", q)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt file still at final path")
	}
	// Plain misses are not I/O errors.
	if _, ok := a.Get(Results, "feed0000"); ok {
		t.Fatal("miss served something")
	}
	if io := a.Status().IOErrors; io != 0 {
		t.Fatalf("miss counted as I/O error: %d", io)
	}
}

// TestSharedTieredCluster: the full per-node composition — memory tier
// over the shared directory — gives node B a warm hit for node A's write,
// the "any node's cache hit is every node's cache hit" contract.
func TestSharedTieredCluster(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(nil)
	openNode := func() *Tiered {
		sh, err := OpenShared(dir, inj, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		return NewTiered(NewMem(testConfig()), sh)
	}
	nodeA, nodeB := openNode(), openNode()
	nodeA.Put(Results, "aaaa1111", blobFor("aaaa1111", "from-a"))
	raw, ok := nodeB.Get(Results, "aaaa1111")
	if !ok || !bytes.Equal(raw, blobFor("aaaa1111", "from-a")) {
		t.Fatalf("cluster hit missed: %q ok=%v", raw, ok)
	}
	// The hit promoted into B's memory tier.
	if n := nodeB.Len(Results); n != 1 {
		t.Fatalf("promotion missed: mem len = %d", n)
	}
	if st := nodeB.Status(); st.Tier != "mem+shared" || st.NS[Results].WarmHits != 1 {
		t.Fatalf("cluster status = %+v", st)
	}
}
