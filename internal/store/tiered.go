package store

import (
	"hash/fnv"
	"sync"
)

// Tiered layers the memory tier over a disk (or shared-directory) tier:
// gets read through (memory first, disk on miss, promoting hits), puts
// write through to both. Per-key shard locks serialize a disk load against
// a concurrent completion of the same content key, so an artifact finishing
// during a warm-start load can neither be dropped nor written twice (disk
// puts are idempotent by content address).
type Tiered struct {
	mem  *Mem
	disk *Disk

	// shards are per-key mutexes (hash-sharded): held across the slow path
	// (disk read + memory promote) and across Put, never across the pure
	// memory fast path.
	shards [64]sync.Mutex

	mu       sync.Mutex
	warmHits map[Namespace]uint64
}

// NewTiered composes the memory tier over the disk tier.
func NewTiered(mem *Mem, disk *Disk) *Tiered {
	return &Tiered{mem: mem, disk: disk, warmHits: make(map[Namespace]uint64)}
}

func (t *Tiered) shard(key string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &t.shards[h.Sum32()%uint32(len(t.shards))]
}

func (t *Tiered) Get(ns Namespace, key string) ([]byte, bool) {
	if blob, ok := t.mem.Get(ns, key); ok {
		return blob, true
	}
	lock := t.shard(key)
	lock.Lock()
	defer lock.Unlock()
	// Re-check under the key lock: a Put may have landed between the fast
	// path and here, and its (identical, content-addressed) bytes must not
	// be raced by a stale disk load.
	if blob, ok := t.mem.Get(ns, key); ok {
		return blob, true
	}
	blob, ok := t.disk.Get(ns, key)
	if !ok {
		return nil, false
	}
	t.mem.Put(ns, key, blob)
	t.mu.Lock()
	t.warmHits[ns]++
	t.mu.Unlock()
	return blob, true
}

func (t *Tiered) Put(ns Namespace, key string, blob []byte) {
	lock := t.shard(key)
	lock.Lock()
	defer lock.Unlock()
	t.mem.Put(ns, key, blob)
	t.disk.Put(ns, key, blob)
}

// Len reports the memory tier's count — the fastest tier, per the
// interface contract.
func (t *Tiered) Len(ns Namespace) int { return t.mem.Len(ns) }

func (t *Tiered) Status() Status {
	st := t.disk.Status()
	st.Tier = "mem+" + st.Tier
	mem := t.mem.Status()
	t.mu.Lock()
	for ns, s := range st.NS {
		ms := mem.NS[ns]
		s.MemEntries = ms.MemEntries
		s.MemBytes = ms.MemBytes
		s.MemEvicted = ms.MemEvicted
		s.WarmHits = t.warmHits[ns]
		st.NS[ns] = s
	}
	t.mu.Unlock()
	return st
}

func (t *Tiered) Close() error { return t.disk.Close() }

var _ Interface = (*Tiered)(nil)
