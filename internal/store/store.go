// Package store is the unified content-addressed artifact store behind
// tarserved. One generic interface — Get/Put/Len/Status/Close keyed by
// (namespace, content key) — replaces the three near-identical store faces
// the serve layer grew (results, sweep blobs, chip snapshots), so the memory
// tier, the crash-safe disk tier, quarantine, eviction and the shared-
// directory (cluster) tier are each written exactly once and every artifact
// kind gets them for free.
//
// The store moves opaque bytes. What the bytes mean — JobResult JSON, sweep
// blobs, snapshot envelopes — belongs to the caller, which injects a
// per-namespace Validate hook so the store can still refuse to serve (or
// persist) bytes it cannot vouch for without importing the encodings.
//
// The contract every implementation honors: a Get either returns bytes
// identical to what some Put stored under that key, or reports a miss. A
// store may lose artifacts (eviction, I/O faults, corruption quarantine)
// but may never serve a wrong or corrupt one. A miss is always safe — the
// caller re-simulates.
package store

// Namespace names an artifact kind. Namespaces are isolated: keys live in
// separate index and directory spaces, and each namespace carries its own
// schema version, layout and retention policy.
type Namespace string

const (
	// Results holds per-experiment JobResult artifacts keyed by confhash.
	Results Namespace = "results"
	// Sweeps holds aggregate sweep-result blobs keyed by sweep spec hash.
	Sweeps Namespace = "sweeps"
	// Snapshots holds chip warm-up snapshots keyed by confhash.WarmupKey.
	Snapshots Namespace = "snapshots"
)

// Interface is the one generic content-addressed store API.
type Interface interface {
	// Get returns the stored bytes for a content key, or a miss.
	Get(ns Namespace, key string) ([]byte, bool)
	// Put stores bytes under a content key. Best-effort: a failed put
	// costs durability, never correctness.
	Put(ns Namespace, key string, blob []byte)
	// Len reports resident entries in the fastest tier of a namespace.
	Len(ns Namespace) int
	// Status reports store health for /healthz and /metrics.
	Status() Status
	// Close releases store resources. Idempotent.
	Close() error
}

// Policy describes how one namespace behaves across tiers. The caller (the
// serve layer) owns the policy; the store owns the mechanics.
type Policy struct {
	// Schema versions the on-disk directory: artifacts land under
	// Subdir/schema-<Schema>/. Directory-structural isolation means an
	// older build's artifacts are a different directory, never a
	// byte-diff hazard.
	Schema int
	// Subdir is the namespace directory relative to the store root; ""
	// places the schema directory at the root (the results layout).
	Subdir string
	// Ext is the artifact filename extension, e.g. ".json" or ".snap".
	Ext string
	// Validate checks raw bytes against their claimed key; nil accepts
	// anything (the caller validates after load).
	Validate func(key string, raw []byte) error
	// ScanOnOpen indexes and validates the namespace directory when the
	// disk tier opens (quarantining anything Validate rejects) and serves
	// gets from that index. Namespaces without it read files directly on
	// every Get — the mode the shared-directory cluster tier uses for all
	// namespaces, since another process may have written the file after
	// this one opened.
	ScanOnOpen bool
	// VerifyOnRead re-runs Validate on every disk read, quarantining rot
	// that postdates the open-time scan.
	VerifyOnRead bool
	// ValidateOnPut refuses puts whose bytes fail Validate — the store
	// never persists what it would later quarantine.
	ValidateOnPut bool
	// DiskEvict enforces the store byte cap on this namespace with
	// least-recently-accessed eviction (each namespace accounts its bytes
	// separately, so snapshots can never push results out).
	DiskEvict bool
	// TornWriteChaos opts this namespace into the injector's torn-write
	// fault (a prefix landing at the final path, as if a crash beat the
	// rename protocol), exercising read-time quarantine.
	TornWriteChaos bool

	// Memory-tier policy: an entry bound (MemEntries > 0), a byte bound
	// (MemBytes > 0), or both. MemLRU refreshes recency on access;
	// otherwise retention is insertion-order FIFO.
	MemEntries int
	MemBytes   int64
	MemLRU     bool
}

// Config maps each namespace the caller uses to its policy.
type Config map[Namespace]Policy

// NSStatus is per-namespace health, reported by Status for both tiers.
type NSStatus struct {
	// MemEntries/MemBytes/MemEvicted describe the memory tier.
	MemEntries int
	MemBytes   int64
	MemEvicted uint64
	// DiskEntries/DiskBytes describe the disk tier's resident artifacts.
	DiskEntries int
	DiskBytes   int64
	// WarmStart counts artifacts recovered at open — the crash-recovery
	// payoff, visible at a glance after a restart.
	WarmStart int
	// WarmHits counts gets answered by the disk tier after a memory miss.
	WarmHits uint64
	// Quarantined counts files that failed validation and were set aside
	// instead of served; Evicted counts artifacts dropped by the byte cap.
	Quarantined uint64
	Evicted     uint64
}

// Status is the whole-store health block.
type Status struct {
	// Tier names the composition: "mem", "disk", "shared", "mem+disk" or
	// "mem+shared".
	Tier string
	// IOErrors counts disk reads/writes that failed (real or injected).
	IOErrors uint64
	// NS holds per-namespace health.
	NS map[Namespace]NSStatus
}

// TmpPrefix marks in-flight temp files of the atomic write protocol;
// anything carrying it at open is crash debris.
const TmpPrefix = ".tmp-"

// SafeKey reports whether a content key can be used as a filename verbatim.
// Real content keys are 32 hex characters; anything outside the safe set
// (or absurdly long) is not persisted rather than risking path tricks.
func SafeKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}
