package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faults"
)

// DefaultMaxBytes bounds a disk store when no cap is configured: 1 GiB per
// evicting namespace, far beyond any single-node sweep at today's scales.
const DefaultMaxBytes = 1 << 30

// Disk is the crash-safe tier: one file per artifact under
// <root>/<subdir>/schema-<N>/<key><ext>. Durability comes from the write
// protocol (temp file → fsync → rename → directory fsync), schema isolation
// from the directory name, and corruption tolerance from validation: any
// file the namespace's Validate hook rejects is moved to <root>/quarantine/
// and counted — never served, never fatal.
//
// Namespaces with ScanOnOpen are indexed at open (the warm start) and evict
// least-recently-accessed artifacts by a logical access clock against the
// byte cap. Namespaces without it are read directly from the filesystem on
// every Get — the shared-directory mode, where another process (a cluster
// peer over NFS) may have written the file after this store opened.
type Disk struct {
	root     string
	quarDir  string
	maxBytes int64
	shared   bool
	inj      *faults.Injector

	mu       sync.Mutex
	ns       map[Namespace]*diskNS
	clock    int64 // logical access time, bumped per touch
	ioErrors uint64
}

type diskNS struct {
	pol       Policy
	dir       string
	entries   map[string]*diskEntry // indexed namespaces only
	total     int64
	warmStart int
	quarCount uint64
	evicted   uint64
}

type diskEntry struct {
	size  int64
	atime int64
}

// OpenDisk opens (and for indexed namespaces, scans) a single-owner disk
// store at root. Crash debris (orphaned temp files) is removed; everything
// that survives validation is the warm start, served without re-simulation.
// inj arms fault injection (pass faults.New(nil) for none).
func OpenDisk(root string, maxBytes int64, inj *faults.Injector, cfg Config) (*Disk, error) {
	return openDisk(root, maxBytes, inj, cfg, false)
}

// OpenShared opens the shared-directory (NFS-style) tier at root: every
// namespace reads files directly per Get with read-time validation, puts
// are atomic renames (content-addressed last-writer-wins across writers),
// and nothing is indexed or evicted — the directory is a cluster-wide
// resource no single node owns, so no single node may count or delete its
// contents. Any node's Put is every node's hit.
func OpenShared(root string, inj *faults.Injector, cfg Config) (*Disk, error) {
	shared := make(Config, len(cfg))
	for ns, pol := range cfg {
		pol.ScanOnOpen = false
		pol.DiskEvict = false
		pol.VerifyOnRead = pol.Validate != nil
		shared[ns] = pol
	}
	return openDisk(root, 0, inj, shared, true)
}

func openDisk(root string, maxBytes int64, inj *faults.Injector, cfg Config, shared bool) (*Disk, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	d := &Disk{
		root:     root,
		quarDir:  filepath.Join(root, "quarantine"),
		maxBytes: maxBytes,
		shared:   shared,
		inj:      inj,
		ns:       make(map[Namespace]*diskNS, len(cfg)),
	}
	for ns, pol := range cfg {
		sub := root
		if pol.Subdir != "" {
			sub = filepath.Join(root, pol.Subdir)
		}
		d.ns[ns] = &diskNS{
			pol:     pol,
			dir:     filepath.Join(sub, fmt.Sprintf("schema-%d", pol.Schema)),
			entries: make(map[string]*diskEntry),
		}
	}
	if err := os.MkdirAll(d.quarDir, 0o755); err != nil {
		return nil, err
	}
	// The primary namespace directory (results) is created eagerly so the
	// store root exists and is writable from the start; secondary
	// namespaces are created on first Put.
	if s, ok := d.ns[Results]; ok {
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, err
		}
	}
	for nsName, s := range d.ns {
		if !s.pol.ScanOnOpen {
			continue
		}
		d.scan(nsName, s)
	}
	return d, nil
}

// scan validates every resident artifact of one indexed namespace at open,
// in file-modification order so the seeded access clock preserves the
// previous process's recency ordering for eviction purposes.
func (d *Disk) scan(nsName Namespace, s *diskNS) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return // no directory yet: first run, nothing to recover
	}
	type candidate struct {
		name string
		mod  int64
	}
	var cands []candidate
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasPrefix(name, TmpPrefix) {
			os.Remove(filepath.Join(s.dir, name)) // crash debris
			continue
		}
		if !strings.HasSuffix(name, s.pol.Ext) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		cands = append(cands, candidate{name: name, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mod < cands[j].mod })
	for _, c := range cands {
		key := strings.TrimSuffix(c.name, s.pol.Ext)
		path := filepath.Join(s.dir, c.name)
		raw, err := os.ReadFile(path)
		if err != nil {
			d.ioErrors++
			continue
		}
		if s.pol.Validate != nil {
			if err := s.pol.Validate(key, raw); err != nil {
				d.quarantineLocked(s, key, path)
				continue
			}
		}
		d.clock++
		s.entries[key] = &diskEntry{size: int64(len(raw)), atime: d.clock}
		s.total += int64(len(raw))
	}
	s.warmStart = len(s.entries)
	d.evictLocked(s)
}

func (s *diskNS) path(key string) string { return filepath.Join(s.dir, key+s.pol.Ext) }

// Get loads one artifact. A read failure is a transient miss; a validation
// failure quarantines the file and misses. Either way the caller
// re-simulates — the store never serves bytes it cannot vouch for.
func (d *Disk) Get(ns Namespace, key string) ([]byte, bool) {
	if !SafeKey(key) {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.ns[ns]
	if !ok {
		return nil, false
	}
	var e *diskEntry
	if s.pol.ScanOnOpen {
		// Indexed namespace: the index is the source of truth.
		if e, ok = s.entries[key]; !ok {
			return nil, false
		}
	}
	if d.inj.DiskReadError() {
		d.ioErrors++
		return nil, false
	}
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && !s.pol.ScanOnOpen {
			return nil, false // direct-read miss, not an I/O fault
		}
		d.ioErrors++
		return nil, false
	}
	if s.pol.VerifyOnRead && s.pol.Validate != nil {
		if err := s.pol.Validate(key, raw); err != nil {
			if e != nil {
				delete(s.entries, key)
				s.total -= e.size
			}
			d.quarantineLocked(s, key, path)
			return nil, false
		}
	}
	if e != nil {
		d.clock++
		e.atime = d.clock
	}
	return raw, true
}

// Put persists one artifact with the atomic write protocol. For indexed
// namespaces, content-addressed idempotence makes a re-put of a resident
// key a no-op — exactly what the tiered store's single-flight contract
// needs. For direct-read (shared) namespaces, an existing file is likewise
// left alone: same key, same bytes, and a concurrent peer's rename already
// made it durable. Failures (real or injected) cost durability for this
// one artifact, nothing else.
func (d *Disk) Put(ns Namespace, key string, blob []byte) {
	if !SafeKey(key) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.ns[ns]
	if !ok {
		return
	}
	if s.pol.ValidateOnPut && s.pol.Validate != nil && s.pol.Validate(key, blob) != nil {
		return
	}
	if s.pol.ScanOnOpen {
		if _, ok := s.entries[key]; ok {
			return
		}
	} else if _, err := os.Stat(s.path(key)); err == nil {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		d.ioErrors++
		return
	}
	if d.inj.DiskWriteError() {
		d.ioErrors++
		return
	}
	if s.pol.TornWriteChaos && d.inj.TornWrite() {
		// Chaos: a prefix lands at the final path, as if a crash beat the
		// atomic-rename protocol. The entry is registered so the next read
		// exercises the quarantine path.
		torn := blob[:len(blob)/2]
		if err := os.WriteFile(s.path(key), torn, 0o644); err != nil {
			d.ioErrors++
			return
		}
		if s.pol.ScanOnOpen {
			d.clock++
			s.entries[key] = &diskEntry{size: int64(len(torn)), atime: d.clock}
			s.total += int64(len(torn))
			d.evictLocked(s)
		}
		return
	}
	tmp, err := os.CreateTemp(s.dir, TmpPrefix+key+"-*")
	if err != nil {
		d.ioErrors++
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(blob)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmpName)
		d.ioErrors++
		return
	}
	if err := os.Rename(tmpName, s.path(key)); err != nil {
		os.Remove(tmpName)
		d.ioErrors++
		return
	}
	d.syncDir(s.dir)
	if s.pol.ScanOnOpen {
		d.clock++
		s.entries[key] = &diskEntry{size: int64(len(blob)), atime: d.clock}
		s.total += int64(len(blob))
		d.evictLocked(s)
	}
}

// syncDir flushes the directory entry so the rename itself is durable.
// Best-effort: a failure here narrows the crash window, it does not corrupt
// anything (the artifact file is already synced).
func (d *Disk) syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// quarantineLocked moves a distrusted file aside (removing it if the move
// fails) and counts it. Requires d.mu (or open-time exclusivity).
func (d *Disk) quarantineLocked(s *diskNS, key, path string) {
	dst := filepath.Join(d.quarDir, key+s.pol.Ext)
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.quarCount++
}

// evictLocked enforces the byte cap on one evicting namespace:
// least-recently-accessed artifacts are deleted until the namespace fits.
// Each namespace accounts separately against the same cap, so one kind can
// never push another out. Requires d.mu.
func (d *Disk) evictLocked(s *diskNS) {
	if !s.pol.DiskEvict {
		return
	}
	for s.total > d.maxBytes && len(s.entries) > 0 {
		var coldKey string
		var cold *diskEntry
		for k, e := range s.entries {
			if cold == nil || e.atime < cold.atime {
				coldKey, cold = k, e
			}
		}
		delete(s.entries, coldKey)
		s.total -= cold.size
		os.Remove(s.path(coldKey))
		s.evicted++
	}
}

// Len reports an indexed namespace's resident artifacts (0 for direct-read
// namespaces, whose population no single process owns).
func (d *Disk) Len(ns Namespace) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.ns[ns]; ok {
		return len(s.entries)
	}
	return 0
}

func (d *Disk) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	tier := "disk"
	if d.shared {
		tier = "shared"
	}
	st := Status{Tier: tier, IOErrors: d.ioErrors, NS: make(map[Namespace]NSStatus, len(d.ns))}
	for ns, s := range d.ns {
		st.NS[ns] = NSStatus{
			DiskEntries: len(s.entries),
			DiskBytes:   s.total,
			WarmStart:   s.warmStart,
			Quarantined: s.quarCount,
			Evicted:     s.evicted,
		}
	}
	return st
}

// Close is a no-op: every put is already durable at rename time.
func (d *Disk) Close() error { return nil }

var _ Interface = (*Disk)(nil)
