package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOPCBreakdown(t *testing.T) {
	s := &Stats{Cycles: 100, Flops: 500, MemOps: 300, OtherOps: 200}
	opc, fpc, mpc, other := s.OPC()
	if fpc != 5 || mpc != 3 || other != 2 || opc != 10 {
		t.Fatalf("OPC = %v %v %v %v", opc, fpc, mpc, other)
	}
}

func TestOPCZeroCycles(t *testing.T) {
	s := &Stats{}
	opc, _, _, _ := s.OPC()
	if opc != 0 {
		t.Fatal("zero-cycle OPC must be 0, not NaN")
	}
}

func TestBandwidth(t *testing.T) {
	// 2.13 GHz, 2130 cycles = 1 µs; 100 MB in 1 µs = 100 TB/s = 1e8 MB/s.
	s := &Stats{Cycles: 2130, UsefulBytes: 100 << 20}
	got := s.BandwidthMBs(2.13)
	want := float64(100<<20) / 1e-6 / 1e6
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("bandwidth %g, want %g", got, want)
	}
}

func TestRawMemBytes(t *testing.T) {
	s := &Stats{MemReads: 2, MemWrites: 3, MemDirOps: 5}
	if s.RawMemBytes() != 10*64 {
		t.Fatalf("raw = %d", s.RawMemBytes())
	}
}

func TestVectorPct(t *testing.T) {
	s := &Stats{VecOps: 990, ScalarIns: 10}
	if got := s.VectorPct(); got != 99.0 {
		t.Fatalf("vect%% = %v", got)
	}
	if (&Stats{}).VectorPct() != 0 {
		t.Fatal("empty stats must report 0%")
	}
}

func TestSub(t *testing.T) {
	a := &Stats{Cycles: 100, Flops: 50, MAFPeak: 7}
	b := &Stats{Cycles: 30, Flops: 20, MAFPeak: 5}
	d := Sub(a, b)
	if d.Cycles != 70 || d.Flops != 30 {
		t.Fatalf("Sub = %+v", d)
	}
	if d.MAFPeak != 7 {
		t.Fatalf("MAFPeak should keep the later value, got %d", d.MAFPeak)
	}
}

func TestSubProperty(t *testing.T) {
	// (a+b) - a == b for the counter fields.
	f := func(c1, c2, f1, f2 uint32) bool {
		a := &Stats{Cycles: uint64(c1), Flops: uint64(f1)}
		sum := &Stats{Cycles: uint64(c1) + uint64(c2), Flops: uint64(f1) + uint64(f2)}
		d := Sub(sum, a)
		return d.Cycles == uint64(c2) && d.Flops == uint64(f2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGMean(t *testing.T) {
	if g := GMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("gmean(2,8) = %v", g)
	}
	if g := GMean([]float64{5, 0, -1}); math.Abs(g-5) > 1e-12 {
		t.Fatalf("non-positive entries must be ignored: %v", g)
	}
	if GMean(nil) != 0 {
		t.Fatal("empty gmean must be 0")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if Median(nil) != 0 {
		t.Fatal("empty median must be 0")
	}
}

func TestTableListsEveryCounterGroup(t *testing.T) {
	s := &Stats{Cycles: 1}
	out := s.Table()
	for _, want := range []string{"cycles", "L2 vector slices", "CR rounds", "mem dir ops", "TLB misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

// TestSubCoversEveryCounterField walks the struct with reflection so a
// counter added to Stats can never silently escape ROI accounting: every
// field must be uint64 (Sub skips other kinds), and Sub must subtract each
// one — except MAFPeak, which keeps the later value by design. The matching
// guarantee for the registry's compat view lives in
// internal/metrics.TestNamespaceCoversEveryStatsField (metrics imports
// stats, not the reverse).
func TestSubCoversEveryCounterField(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	s, base := &Stats{}, &Stats{}
	sv := reflect.ValueOf(s).Elem()
	bv := reflect.ValueOf(base).Elem()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			t.Fatalf("field %s is %s, not uint64: Sub and the metrics registry both skip it — extend them before adding non-counter state", f.Name, f.Type)
		}
		sv.Field(i).SetUint(1000 + uint64(i))
		bv.Field(i).SetUint(uint64(i))
	}
	d := Sub(s, base)
	dv := reflect.ValueOf(d).Elem()
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		want := uint64(1000)
		if name == "MAFPeak" {
			want = 1000 + uint64(i) // peak keeps the later value
		}
		if got := dv.Field(i).Uint(); got != want {
			t.Errorf("Sub dropped field %s: got %d, want %d", name, got, want)
		}
	}
}
