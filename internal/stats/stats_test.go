package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOPCBreakdown(t *testing.T) {
	s := &Stats{Cycles: 100, Flops: 500, MemOps: 300, OtherOps: 200}
	opc, fpc, mpc, other := s.OPC()
	if fpc != 5 || mpc != 3 || other != 2 || opc != 10 {
		t.Fatalf("OPC = %v %v %v %v", opc, fpc, mpc, other)
	}
}

func TestOPCZeroCycles(t *testing.T) {
	s := &Stats{}
	opc, _, _, _ := s.OPC()
	if opc != 0 {
		t.Fatal("zero-cycle OPC must be 0, not NaN")
	}
}

func TestBandwidth(t *testing.T) {
	// 2.13 GHz, 2130 cycles = 1 µs; 100 MB in 1 µs = 100 TB/s = 1e8 MB/s.
	s := &Stats{Cycles: 2130, UsefulBytes: 100 << 20}
	got := s.BandwidthMBs(2.13)
	want := float64(100<<20) / 1e-6 / 1e6
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("bandwidth %g, want %g", got, want)
	}
}

func TestRawMemBytes(t *testing.T) {
	s := &Stats{MemReads: 2, MemWrites: 3, MemDirOps: 5}
	if s.RawMemBytes() != 10*64 {
		t.Fatalf("raw = %d", s.RawMemBytes())
	}
}

func TestVectorPct(t *testing.T) {
	s := &Stats{VecOps: 990, ScalarIns: 10}
	if got := s.VectorPct(); got != 99.0 {
		t.Fatalf("vect%% = %v", got)
	}
	if (&Stats{}).VectorPct() != 0 {
		t.Fatal("empty stats must report 0%")
	}
}

func TestSub(t *testing.T) {
	a := &Stats{Cycles: 100, Flops: 50, MAFPeak: 7}
	b := &Stats{Cycles: 30, Flops: 20, MAFPeak: 5}
	d := Sub(a, b)
	if d.Cycles != 70 || d.Flops != 30 {
		t.Fatalf("Sub = %+v", d)
	}
	if d.MAFPeak != 7 {
		t.Fatalf("MAFPeak should keep the later value, got %d", d.MAFPeak)
	}
}

func TestSubProperty(t *testing.T) {
	// (a+b) - a == b for the counter fields.
	f := func(c1, c2, f1, f2 uint32) bool {
		a := &Stats{Cycles: uint64(c1), Flops: uint64(f1)}
		sum := &Stats{Cycles: uint64(c1) + uint64(c2), Flops: uint64(f1) + uint64(f2)}
		d := Sub(sum, a)
		return d.Cycles == uint64(c2) && d.Flops == uint64(f2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGMean(t *testing.T) {
	if g := GMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("gmean(2,8) = %v", g)
	}
	if g := GMean([]float64{5, 0, -1}); math.Abs(g-5) > 1e-12 {
		t.Fatalf("non-positive entries must be ignored: %v", g)
	}
	if GMean(nil) != 0 {
		t.Fatal("empty gmean must be 0")
	}
}

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if Median(nil) != 0 {
		t.Fatal("empty median must be 0")
	}
}

func TestTableListsEveryCounterGroup(t *testing.T) {
	s := &Stats{Cycles: 1}
	out := s.Table()
	for _, want := range []string{"cycles", "L2 vector slices", "CR rounds", "mem dir ops", "TLB misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
