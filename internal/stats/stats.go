// Package stats collects the counters the evaluation section reports:
// operations per cycle split into flops / memory ops / other (Figure 6),
// bandwidth in the STREAMS convention versus raw including directory
// traffic (Table 4), and per-component occupancy counters used by the
// ablation experiments.
package stats

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"strings"
)

// Stats is the chip-wide counter set. One instance is shared by every
// component of a simulation.
type Stats struct {
	Cycles uint64

	// Retired operation counts at element granularity, the unit of
	// Figure 6 (a vl=128 vector add retires 128 operations).
	Flops     uint64 // floating-point operations (FPC numerator)
	MemOps    uint64 // memory operations, element granularity (MPC numerator)
	OtherOps  uint64 // integer/scalar/control (Other numerator)
	ScalarIns uint64 // retired scalar instructions
	VectorIns uint64 // retired vector instructions
	VecOps    uint64 // element operations retired by vector instructions

	// Memory system.
	L1Hits, L1Misses      uint64
	L2Hits, L2Misses      uint64
	L2ScalarReqs          uint64
	L2VecSlices           uint64
	L2PumpSlices          uint64
	L2SliceReplays        uint64
	L2PanicEvents         uint64
	L2PBitInvalidates     uint64
	L2Writebacks          uint64
	MAFPeak               uint64
	MAFFullStalls         uint64
	CRRounds, CRSlices    uint64
	ReorderSlices         uint64
	AddrGenCycles         uint64
	TLBMisses, TLBRefills uint64
	DrainMs               uint64
	BranchMispredicts     uint64
	Branches              uint64
	VSBusTransfers        uint64

	// Zbox (memory controller).
	MemReads, MemWrites, MemDirOps uint64 // transactions (64 B each)
	RowActivates, RowHits          uint64
	Turnarounds                    uint64

	// Useful (STREAMS-convention) bytes, credited by the workload harness.
	UsefulBytes uint64
}

// VectorPct returns the percentage of retired operations executed in vector
// mode — Table 2's "Vect. %" column.
func (s *Stats) VectorPct() float64 {
	total := s.VecOps + s.ScalarIns
	if total == 0 {
		return 0
	}
	return 100 * float64(s.VecOps) / float64(total)
}

// RawMemBytes returns total bytes moved at the memory controller, including
// directory traffic — the "Raw BW" column of Table 4.
func (s *Stats) RawMemBytes() uint64 {
	return (s.MemReads + s.MemWrites + s.MemDirOps) * 64
}

// OPC returns sustained operations per cycle and its Figure 6 breakdown
// (flops per cycle, memory ops per cycle, other per cycle).
func (s *Stats) OPC() (opc, fpc, mpc, other float64) {
	if s.Cycles == 0 {
		return 0, 0, 0, 0
	}
	c := float64(s.Cycles)
	fpc = float64(s.Flops) / c
	mpc = float64(s.MemOps) / c
	other = float64(s.OtherOps) / c
	return fpc + mpc + other, fpc, mpc, other
}

// BandwidthMBs converts the useful-byte counter into MB/s given the clock.
func (s *Stats) BandwidthMBs(cpuGHz float64) float64 {
	if s.Cycles == 0 {
		return 0
	}
	secs := float64(s.Cycles) / (cpuGHz * 1e9)
	return float64(s.UsefulBytes) / secs / 1e6
}

// RawBandwidthMBs converts the raw Zbox traffic into MB/s.
func (s *Stats) RawBandwidthMBs(cpuGHz float64) float64 {
	if s.Cycles == 0 {
		return 0
	}
	secs := float64(s.Cycles) / (cpuGHz * 1e9)
	return float64(s.RawMemBytes()) / secs / 1e6
}

// Table renders the counters as an aligned two-column listing for the
// cmd/tarsim -v output.
func (s *Stats) Table() string {
	rows := []struct {
		k string
		v uint64
	}{
		{"cycles", s.Cycles},
		{"flops", s.Flops},
		{"mem ops", s.MemOps},
		{"other ops", s.OtherOps},
		{"scalar insts", s.ScalarIns},
		{"vector insts", s.VectorIns},
		{"L1 hits", s.L1Hits},
		{"L1 misses", s.L1Misses},
		{"L2 hits", s.L2Hits},
		{"L2 misses", s.L2Misses},
		{"L2 vector slices", s.L2VecSlices},
		{"L2 pump slices", s.L2PumpSlices},
		{"L2 slice replays", s.L2SliceReplays},
		{"L2 panic events", s.L2PanicEvents},
		{"P-bit invalidates", s.L2PBitInvalidates},
		{"L2 writebacks", s.L2Writebacks},
		{"MAF peak", s.MAFPeak},
		{"MAF-full stalls", s.MAFFullStalls},
		{"CR rounds", s.CRRounds},
		{"CR slices", s.CRSlices},
		{"reorder slices", s.ReorderSlices},
		{"TLB misses", s.TLBMisses},
		{"DrainM barriers", s.DrainMs},
		{"branches", s.Branches},
		{"mispredicts", s.BranchMispredicts},
		{"mem reads", s.MemReads},
		{"mem writes", s.MemWrites},
		{"mem dir ops", s.MemDirOps},
		{"row activates", s.RowActivates},
		{"row hits", s.RowHits},
		{"rd/wr turnarounds", s.Turnarounds},
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s %12d\n", r.k, r.v)
	}
	return b.String()
}

// GMean returns the geometric mean of vs, ignoring non-positive entries.
func GMean(vs []float64) float64 {
	logsum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			logsum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logsum / float64(n))
}

// Median returns the median of vs.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	c := append([]float64(nil), vs...)
	sort.Float64s(c)
	if len(c)%2 == 1 {
		return c[len(c)/2]
	}
	return (c[len(c)/2-1] + c[len(c)/2]) / 2
}

// Sub returns s - base field-wise: the counters attributable to a region of
// interest when base was snapshotted at its start. Peak-style fields
// (MAFPeak) keep the later value.
func Sub(s, base *Stats) *Stats {
	out := &Stats{}
	sv := reflect.ValueOf(*s)
	bv := reflect.ValueOf(*base)
	ov := reflect.ValueOf(out).Elem()
	for i := 0; i < sv.NumField(); i++ {
		if sv.Field(i).Kind() != reflect.Uint64 {
			continue
		}
		ov.Field(i).SetUint(sv.Field(i).Uint() - bv.Field(i).Uint())
	}
	out.MAFPeak = s.MAFPeak
	return out
}
