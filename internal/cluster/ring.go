// Package cluster turns N independent tarserved nodes into one service:
// a consistent-hash ring places every experiment (by its RouteKey content
// address) on exactly one owning node, a node-side Forwarder hands
// mis-routed flights to their owner, a health-probed Membership takes
// dead nodes out of the ring without dropping anyone else's queued jobs,
// and the tarrouter front door routes client traffic, hedges slow waits
// onto the ring successor, and fails over when an owner is unreachable.
// All nodes share one content-addressed store directory, so any node's
// cache hit — and any node's in-flight simulation — is every node's.
package cluster

import (
	"fmt"
	"sort"
)

// vnodesPerMember is how many virtual points each member contributes to
// the ring. 64 keeps the load split within a few percent of even for
// single-digit cluster sizes while the ring stays tiny (a few KiB).
const vnodesPerMember = 64

// ringHash hashes a string for ring placement: 64-bit FNV-1a through a
// murmur-style avalanche finalizer. Plain FNV-1a maps near-identical
// strings (vnode labels, sequential keys) into tight arcs of the ring;
// the finalizer spreads them uniformly. Stable across processes,
// architectures and releases, which is what makes placement a pure
// function of (member set, key).
func ringHash(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

type vnode struct {
	hash   uint64
	member string
}

// Ring is an immutable consistent-hash ring over a member set. Build a new
// one when membership changes; lookups are lock-free.
type Ring struct {
	vnodes  []vnode
	members []string
}

// NewRing builds the ring. Members are identified by their advertise
// address; duplicates are collapsed. An empty member set yields a ring
// whose lookups return "".
func NewRing(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	r := &Ring{}
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
		for v := 0; v < vnodesPerMember; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: ringHash(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	sort.Strings(r.members)
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member // deterministic under (vanishingly rare) collisions
	})
	return r
}

// Members returns the member set, sorted.
func (r *Ring) Members() []string { return r.members }

// Lookup returns the member owning key: the first vnode clockwise from the
// key's hash. "" when the ring is empty.
func (r *Ring) Lookup(key string) string {
	owners := r.Successors(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Successors returns up to n distinct members in ring order starting at
// key's owner — the owner first, then the members that would inherit the
// key if the owner left. This is the hedge and failover candidate list.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.vnodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		m := r.vnodes[(start+i)%len(r.vnodes)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}
