package cluster

import (
	"fmt"
	"testing"
)

func testMembers(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("http://10.0.0.%d:8077", i+1))
	}
	return out
}

func testKeys(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("confhash-%04d", i))
	}
	return out
}

// Placement must be a pure function of (member set, key): two rings built
// from the same members — in any order — agree on every key, and repeated
// lookups never wander.
func TestRingDeterministicPlacement(t *testing.T) {
	members := testMembers(4)
	a := NewRing(members)
	b := NewRing([]string{members[2], members[0], members[3], members[1]})
	counts := map[string]int{}
	for _, k := range testKeys(200) {
		owner := a.Lookup(k)
		if owner == "" {
			t.Fatalf("key %s: no owner", k)
		}
		if got := b.Lookup(k); got != owner {
			t.Fatalf("key %s: member order changed placement: %s vs %s", k, owner, got)
		}
		if again := a.Lookup(k); again != owner {
			t.Fatalf("key %s: repeated lookup moved: %s vs %s", k, owner, again)
		}
		counts[owner]++
	}
	// 64 vnodes/member keeps the split rough but real: every member owns a
	// meaningful share of 200 keys.
	for _, m := range members {
		if counts[m] < 10 {
			t.Fatalf("member %s owns only %d/200 keys — ring badly unbalanced: %v", m, counts[m], counts)
		}
	}
}

// Consistent hashing's defining property: removing one member moves only
// the keys it owned, and re-adding it restores the original placement
// exactly.
func TestRingMinimalMovementOnJoinLeave(t *testing.T) {
	members := testMembers(4)
	full := NewRing(members)
	keys := testKeys(300)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = full.Lookup(k)
	}

	gone := members[1]
	shrunk := NewRing([]string{members[0], members[2], members[3]})
	for _, k := range keys {
		after := shrunk.Lookup(k)
		if after == gone {
			t.Fatalf("key %s placed on removed member %s", k, gone)
		}
		if before[k] != gone && after != before[k] {
			t.Fatalf("key %s moved from %s to %s though %s left — movement must be minimal", k, before[k], after, gone)
		}
	}

	rejoined := NewRing(members)
	for _, k := range keys {
		if got := rejoined.Lookup(k); got != before[k] {
			t.Fatalf("key %s: rejoin did not restore placement: %s vs %s", k, got, before[k])
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	members := testMembers(3)
	r := NewRing(members)
	for _, k := range testKeys(50) {
		succ := r.Successors(k, 2)
		if len(succ) != 2 {
			t.Fatalf("key %s: want 2 successors, got %v", k, succ)
		}
		if succ[0] != r.Lookup(k) {
			t.Fatalf("key %s: first successor %s is not the owner %s", k, succ[0], r.Lookup(k))
		}
		if succ[0] == succ[1] {
			t.Fatalf("key %s: successors not distinct: %v", k, succ)
		}
		if all := r.Successors(k, 10); len(all) != len(members) {
			t.Fatalf("key %s: asked for 10 of %d members, got %v", k, len(members), all)
		}
	}
	if got := NewRing(nil).Lookup("anything"); got != "" {
		t.Fatalf("empty ring returned owner %q", got)
	}
	if succ := NewRing(nil).Successors("anything", 3); succ != nil {
		t.Fatalf("empty ring returned successors %v", succ)
	}
}

// Membership: marking nodes dead/alive rebuilds the ring over the alive
// set and bumps the generation; redundant marks are no-ops.
func TestMembershipRingRebuild(t *testing.T) {
	members := testMembers(3)
	m := NewMembership(members)
	_, gen0 := m.Ring()
	if got := len(m.Alive()); got != 3 {
		t.Fatalf("want 3 alive, got %d", got)
	}

	m.MarkDead(members[2])
	ring, gen1 := m.Ring()
	if gen1 <= gen0 {
		t.Fatalf("generation did not advance on death: %d -> %d", gen0, gen1)
	}
	if got := len(ring.Members()); got != 2 {
		t.Fatalf("dead member still on ring: %v", ring.Members())
	}
	m.MarkDead(members[2]) // idempotent
	if _, gen := m.Ring(); gen != gen1 {
		t.Fatalf("redundant MarkDead bumped generation: %d -> %d", gen1, gen)
	}

	m.MarkAlive(members[2])
	ring, gen2 := m.Ring()
	if gen2 <= gen1 {
		t.Fatalf("generation did not advance on rejoin: %d -> %d", gen1, gen2)
	}
	if got := len(ring.Members()); got != 3 {
		t.Fatalf("rejoined member missing from ring: %v", ring.Members())
	}
}

func TestBaseURL(t *testing.T) {
	cases := map[string]string{
		"127.0.0.1:8077":         "http://127.0.0.1:8077",
		"http://127.0.0.1:8077/": "http://127.0.0.1:8077",
		"https://node-a:443":     "https://node-a:443",
	}
	for in, want := range cases {
		if got := BaseURL(in); got != want {
			t.Errorf("BaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
