package cluster

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"
)

// BaseURL normalizes a node address ("127.0.0.1:8077" or a full URL) to a
// scheme-qualified base with no trailing slash.
func BaseURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/")
}

// Membership is the live view of the cluster: the configured peer set,
// which peers are currently believed alive, and the consistent-hash ring
// over the alive set. Every alive-set change rebuilds the ring and bumps
// the generation, so consumers can cheaply detect topology changes. Nodes
// that leave the ring stop receiving NEW placements; work already queued
// on live nodes is untouched — leave never cancels anything.
type Membership struct {
	client *http.Client

	mu         sync.Mutex
	all        []string // configured peer base URLs, stable order
	dead       map[string]bool
	ring       *Ring
	generation uint64
}

// NewMembership builds the view over the configured peers (any address
// form BaseURL accepts). All peers start alive; the prober and the
// forwarders adjust from there.
func NewMembership(addrs []string) *Membership {
	m := &Membership{
		client: &http.Client{Timeout: 2 * time.Second},
		dead:   make(map[string]bool),
	}
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		u := BaseURL(a)
		if u == "http:/" || u == "" || seen[u] {
			continue
		}
		seen[u] = true
		m.all = append(m.all, u)
	}
	m.rebuildLocked()
	return m
}

// rebuildLocked recomputes the ring over the alive set and bumps the
// generation. Requires m.mu.
func (m *Membership) rebuildLocked() {
	alive := make([]string, 0, len(m.all))
	for _, a := range m.all {
		if !m.dead[a] {
			alive = append(alive, a)
		}
	}
	m.ring = NewRing(alive)
	m.generation++
}

// Ring returns the current ring and its generation.
func (m *Membership) Ring() (*Ring, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring, m.generation
}

// Peers returns the configured peer set, stable order.
func (m *Membership) Peers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.all...)
}

// Alive returns the peers currently in the ring, stable order.
func (m *Membership) Alive() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	alive := make([]string, 0, len(m.all))
	for _, a := range m.all {
		if !m.dead[a] {
			alive = append(alive, a)
		}
	}
	return alive
}

// MarkDead takes a peer out of the ring (idempotent). Forwarders call it
// on transport failure so the next placement already avoids the dead node,
// one probe interval before the prober confirms.
func (m *Membership) MarkDead(addr string) {
	m.setDead(BaseURL(addr), true)
}

// MarkAlive returns a peer to the ring (idempotent).
func (m *Membership) MarkAlive(addr string) {
	m.setDead(BaseURL(addr), false)
}

func (m *Membership) setDead(addr string, dead bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead[addr] == dead {
		return
	}
	if dead {
		m.dead[addr] = true
	} else {
		delete(m.dead, addr)
	}
	m.rebuildLocked()
}

// Probe sweeps every configured peer's /healthz once and reconciles the
// alive set. A peer is alive iff it answers HTTP 200 — a draining node
// (503) leaves the ring gracefully before it stops accepting work.
func (m *Membership) Probe(ctx context.Context) {
	for _, addr := range m.Peers() {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := m.client.Do(req)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			resp.Body.Close()
		}
		m.setDead(addr, !ok)
	}
}

// StartProber probes on the given interval until the returned stop
// function is called.
func (m *Membership) StartProber(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				m.Probe(ctx)
				cancel()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
