package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/serve"
	"repro/internal/workloads"
)

// remoteTimeout bounds one remote execution end to end when the spec
// carries no deadline of its own.
const remoteTimeout = 30 * time.Minute

// Forwarder is the node-side serve.Router: it places each flight's route
// key on the membership ring and, when a peer owns it, runs the experiment
// there end to end — so every unique experiment executes on exactly one
// node fleet-wide, no matter where it was submitted. Unreachable owners
// are marked dead (the ring heals one probe early) and the flight falls
// back to local execution: routing degrades placement, never availability.
type Forwarder struct {
	self   string // this node's advertise base URL
	nodeID string // forward-marker value
	m      *Membership
	client *http.Client
}

// NewForwarder wires the hook for one node. self is the node's advertise
// address (must match how peers list it); nodeID names the node in the
// forward marker.
func NewForwarder(self, nodeID string, m *Membership) *Forwarder {
	return &Forwarder{self: BaseURL(self), nodeID: nodeID, m: m, client: &http.Client{}}
}

// Execute implements serve.Router.
func (f *Forwarder) Execute(spec *serve.JobSpec) (*workloads.Result, *serve.JobError, serve.RouteVerdict) {
	if spec.Route == "" {
		return nil, nil, serve.RouteLocal
	}
	ring, _ := f.m.Ring()
	owner := ring.Lookup(spec.Route)
	if owner == "" || owner == f.self {
		return nil, nil, serve.RouteLocal
	}
	ctx, cancel := context.WithTimeout(context.Background(), remoteBudget(spec))
	defer cancel()
	res, jobErr, err := RunRemote(ctx, f.client, owner, f.nodeID, specRequest(spec))
	if err != nil {
		f.m.MarkDead(owner)
		return nil, nil, serve.RouteFallback
	}
	if jobErr != nil && retryLocally(jobErr.JSON.Code) {
		// The peer refused for capacity reasons, not because the experiment
		// is broken — the local backend can still answer.
		return nil, nil, serve.RouteFallback
	}
	return res, jobErr, serve.RouteRemote
}

// remoteBudget is the wall-clock allowance for one remote execution: the
// spec's own deadline plus slack for the peer's queue, else the default.
func remoteBudget(spec *serve.JobSpec) time.Duration {
	if spec.DeadlineMs > 0 {
		return time.Duration(spec.DeadlineMs)*time.Millisecond + 2*time.Minute
	}
	return remoteTimeout
}

// retryLocally reports whether a peer error is a capacity refusal the
// local backend should absorb rather than surface to the client.
func retryLocally(code string) bool {
	return code == serve.ErrCodeQueueFull || code == serve.ErrCodeDraining
}

// specRequest converts a resolved JobSpec back into the SubmitRequest the
// peer's HTTP surface accepts. The resolved deadline rides along (so the
// submitting node's clamping decision wins); sampling stays server-side on
// the executing peer.
func specRequest(spec *serve.JobSpec) *serve.SubmitRequest {
	return &serve.SubmitRequest{
		Bench:         spec.Bench,
		Config:        spec.Config,
		Scale:         spec.Scale,
		NoPump:        spec.NoPump,
		Check:         spec.Check,
		DeadlineMs:    spec.DeadlineMs,
		Watchdog:      spec.Watchdog,
		FaultSeed:     spec.FaultSeed,
		FaultCampaign: spec.FaultCampaign,
		Knobs:         spec.Knobs,
	}
}

// RunRemote executes one experiment on the node at base: submit with the
// forward marker (so the peer executes locally — no loops), long-poll to a
// terminal state, and decode the outcome. A non-nil error means the peer
// was unreachable mid-protocol (transport failure); a *serve.JobError is
// the experiment's own outcome, reconstructed from the peer's envelope.
func RunRemote(ctx context.Context, client *http.Client, base, fromNode string, req *serve.SubmitRequest) (*workloads.Result, *serve.JobError, error) {
	base = BaseURL(base)
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(serve.ForwardedHeader, fromNode)
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	st, jobErr, err := decodeJobResponse(resp)
	if err != nil || jobErr != nil {
		return nil, jobErr, err
	}
	for st.State != serve.StateDone && st.State != serve.StateFailed {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+st.ID+"?wait=10s", nil)
		if err != nil {
			return nil, nil, err
		}
		resp, err := client.Do(hreq)
		if err != nil {
			return nil, nil, err
		}
		st, jobErr, err = decodeJobResponse(resp)
		if err != nil || jobErr != nil {
			return nil, jobErr, err
		}
	}
	if st.State == serve.StateFailed {
		if st.Error == nil {
			return nil, nil, fmt.Errorf("peer %s: failed job %s carries no error envelope", base, st.ID)
		}
		return nil, envelopeError(st.Error), nil
	}
	if st.Result == nil {
		return nil, nil, fmt.Errorf("peer %s: done job %s carries no result", base, st.ID)
	}
	res, err := serve.DecodeResult(st.Result)
	if err != nil {
		return nil, nil, fmt.Errorf("peer %s: %w", base, err)
	}
	return res, nil, nil
}

// decodeJobResponse parses one /v1/jobs response: a JobStatus on success,
// a reconstructed *serve.JobError when the peer answered with the error
// envelope, or a transport-level error when the body is neither.
func decodeJobResponse(resp *http.Response) (*serve.JobStatus, *serve.JobError, error) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var envelope struct {
			Error serve.ErrorJSON `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code == "" {
			return nil, nil, fmt.Errorf("peer answered HTTP %d with no envelope", resp.StatusCode)
		}
		return nil, envelopeError(&envelope.Error), nil
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, nil, fmt.Errorf("peer job status: %w", err)
	}
	return &st, nil, nil
}

// envelopeError rebuilds a JobError from a peer's wire envelope, mapping
// the code back to its HTTP status through the closed set.
func envelopeError(ej *serve.ErrorJSON) *serve.JobError {
	status, ok := serve.ErrorCodeStatus[ej.Code]
	if !ok {
		status = 500
	}
	return &serve.JobError{Status: status, JSON: *ej}
}

var _ serve.Router = (*Forwarder)(nil)
