package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// swapHandler lets a httptest server exist (and know its URL) before the
// serve.Server that answers on it — membership needs the URLs, the server
// needs the membership.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "starting", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

type testNode struct {
	url string
	srv *serve.Server
	m   *cluster.Membership
}

// startCluster brings up n in-process tarserved nodes over one shared
// store directory, each with its own membership view and forwarder —
// the same wiring cmd/tarserved does in cluster mode.
func startCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	dir := t.TempDir()
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		st, err := serve.OpenSharedStore(dir, 64, nil)
		if err != nil {
			t.Fatalf("shared store: %v", err)
		}
		m := cluster.NewMembership(urls)
		nodeID := fmt.Sprintf("n%d", i+1)
		srv := serve.New(serve.Options{
			Workers:    4,
			QueueDepth: 64,
			Store:      st,
			Router:     cluster.NewForwarder(urls[i], nodeID, m),
			NodeID:     nodeID,
			ClusterInfo: func() (uint64, int) {
				_, gen := m.Ring()
				return gen, len(m.Alive())
			},
		})
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Drain(ctx)
		})
		swaps[i].set(srv.Handler())
		nodes[i] = &testNode{url: urls[i], srv: srv, m: m}
	}
	return nodes
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// submitAndWait drives one job to a terminal state through the node or
// router at base.
func submitAndWait(t *testing.T, base, bench, config string) *serve.JobStatus {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/jobs", map[string]any{"bench": bench, "config": config, "scale": "test"})
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s@%s: HTTP %d: %s", bench, config, resp.StatusCode, body)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit decode: %v (%s)", err, body)
	}
	deadline := time.Now().Add(60 * time.Second)
	for st.State != serve.StateDone && st.State != serve.StateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", st.ID, st.State)
		}
		resp, body := getJSON(t, base+"/v1/jobs/"+st.ID+"?wait=2s")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: HTTP %d: %s", st.ID, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status decode: %v", err)
		}
	}
	return &st
}

func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, body := getJSON(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", resp.StatusCode)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(string(body))
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

func clusterSum(t *testing.T, nodes []*testNode, name string) float64 {
	t.Helper()
	total := 0.0
	for _, n := range nodes {
		total += metricValue(t, n.url, name)
	}
	return total
}

// The tentpole invariant: a 3-node cluster submits every experiment via
// every node concurrently, yet each unique confhash simulates exactly once
// fleet-wide — mis-routed flights forward to the ring owner, and repeats
// land as cross-node dedup hits there.
func TestClusterSingleFlight(t *testing.T) {
	nodes := startCluster(t, 3)
	pairs := [][2]string{{"dgemm", "T"}, {"streams_copy", "T"}, {"dgemm", "EV8"}}

	var wg sync.WaitGroup
	for _, p := range pairs {
		for _, n := range nodes {
			wg.Add(1)
			go func(base, bench, config string) {
				defer wg.Done()
				st := submitAndWait(t, base, bench, config)
				if st.State != serve.StateDone {
					t.Errorf("%s@%s via %s: state %s (%+v)", bench, config, base, st.State, st.Error)
				}
			}(n.url, p[0], p[1])
		}
	}
	wg.Wait()

	if sims := clusterSum(t, nodes, "tarserved_sims_started_total"); sims != float64(len(pairs)) {
		t.Errorf("cluster ran %.0f simulations for %d unique experiments — single-flight broken", sims, len(pairs))
	}
	if fwd := clusterSum(t, nodes, "tarserved_jobs_forwarded_total"); fwd < 1 {
		t.Errorf("no flight was forwarded — the ring is not spreading ownership (forwarded=%.0f)", fwd)
	}
	if dedup := clusterSum(t, nodes, "tarserved_cross_node_dedup_total"); dedup < 1 {
		t.Errorf("no cross-node dedup hit recorded (dedup=%.0f)", dedup)
	}
	// The same experiment resubmitted anywhere after completion is a shared
	// store hit — no queueing, no forwarding.
	st := submitAndWait(t, nodes[2].url, "dgemm", "T")
	if !st.CacheHit {
		t.Errorf("post-completion resubmission was not a cache hit: %+v", st)
	}
	if sims := clusterSum(t, nodes, "tarserved_sims_started_total"); sims != float64(len(pairs)) {
		t.Errorf("resubmission re-simulated: %.0f sims", sims)
	}
}

// A node whose ring owner is unreachable falls back to local execution:
// placement degrades, availability does not. The dead peer leaves the ring
// on the first failed forward.
func TestClusterForwardFallback(t *testing.T) {
	dir := t.TempDir()
	sh := &swapHandler{}
	ts := httptest.NewServer(sh)
	t.Cleanup(ts.Close)

	// Pick a dead peer address that owns the experiment we will submit, so
	// the live node must attempt (and survive) the forward.
	req := &serve.SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"}
	key, err := serve.RouteKey(req)
	if err != nil {
		t.Fatal(err)
	}
	dead := ""
	for port := 9; port < 200; port += 10 {
		cand := fmt.Sprintf("http://127.0.0.1:%d", port)
		if cluster.NewRing([]string{ts.URL, cand}).Lookup(key) == cand {
			dead = cand
			break
		}
	}
	if dead == "" {
		t.Fatal("could not find a dead-peer address owning the test key")
	}

	st, err := serve.OpenSharedStore(dir, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := cluster.NewMembership([]string{ts.URL, dead})
	srv := serve.New(serve.Options{
		Workers: 2, QueueDepth: 16, Store: st,
		Router: cluster.NewForwarder(ts.URL, "n1", m), NodeID: "n1",
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	sh.set(srv.Handler())

	js := submitAndWait(t, ts.URL, "dgemm", "T")
	if js.State != serve.StateDone {
		t.Fatalf("job did not survive the dead owner: %+v", js)
	}
	if fb := metricValue(t, ts.URL, "tarserved_forward_fallback_total"); fb != 1 {
		t.Errorf("forward_fallback = %.0f, want 1", fb)
	}
	if alive := m.Alive(); len(alive) != 1 || alive[0] != ts.URL {
		t.Errorf("dead peer still on ring: %v", alive)
	}
}

// The router front door: content-addressed placement, node-namespaced ids,
// reads routed back by suffix, list fan-out, and the same wire protocol a
// single node speaks.
func TestRouterEndToEnd(t *testing.T) {
	nodes := startCluster(t, 3)
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.url
	}
	p := cluster.NewProxy(urls, 0) // hedging exercised separately
	rt := httptest.NewServer(p.Handler())
	t.Cleanup(rt.Close)

	st := submitAndWait(t, rt.URL, "dgemm", "T")
	if st.State != serve.StateDone {
		t.Fatalf("job via router: %+v", st)
	}
	local, name, ok := strings.Cut(st.ID, "@")
	if !ok || local == "" || !strings.HasPrefix(name, "n") {
		t.Fatalf("router id %q is not node-namespaced", st.ID)
	}

	resp, body := getJSON(t, rt.URL+"/v1/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result via router: HTTP %d: %s", resp.StatusCode, body)
	}

	// Identical resubmission routes to the same node and is a cache hit.
	st2 := submitAndWait(t, rt.URL, "dgemm", "T")
	if !st2.CacheHit {
		t.Errorf("resubmission via router not a cache hit: %+v", st2)
	}
	if _, name2, _ := strings.Cut(st2.ID, "@"); name2 != name {
		t.Errorf("resubmission routed to %s, first went to %s — placement not content-addressed", name2, name)
	}

	// The merged job list carries the global ids.
	resp, body = getJSON(t, rt.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list via router: HTTP %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(st.ID)) {
		t.Errorf("job list missing global id %s: %s", st.ID, body)
	}

	// Sweeps route by canonical spec key and proxy back by id suffix.
	spec := map[string]any{
		"config": "T", "benches": []string{"dgemm"}, "scale": "test",
		"axes": map[string]any{"lanes": map[string]any{"values": []float64{8, 16}}},
	}
	resp, body = postJSON(t, rt.URL+"/v1/sweeps", spec)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep via router: HTTP %d: %s", resp.StatusCode, body)
	}
	var sw struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &sw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sw.ID, "@") {
		t.Fatalf("sweep id %q not namespaced", sw.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for sw.State != "done" && sw.State != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in %s", sw.ID, sw.State)
		}
		resp, body = getJSON(t, rt.URL+"/v1/sweeps/"+sw.ID+"?wait=500ms")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep status: HTTP %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &sw); err != nil {
			t.Fatal(err)
		}
	}
	if sw.State != "done" {
		t.Fatalf("sweep failed: %s", body)
	}
	resp, _ = getJSON(t, rt.URL+"/v1/sweeps/"+sw.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep result via router: HTTP %d", resp.StatusCode)
	}

	// Router introspection: per-node health and its own counters.
	resp, body = getJSON(t, rt.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router healthz: HTTP %d", resp.StatusCode)
	}
	var hz struct {
		Nodes []struct {
			Name  string `json:"name"`
			Alive bool   `json:"alive"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if len(hz.Nodes) != 3 {
		t.Fatalf("router healthz lists %d nodes, want 3: %s", len(hz.Nodes), body)
	}
	for _, n := range hz.Nodes {
		if !n.Alive {
			t.Errorf("node %s reported dead: %s", n.Name, body)
		}
	}
	if reqs := metricValue(t, rt.URL, "tarrouter_requests_total"); reqs < 1 {
		t.Errorf("tarrouter_requests_total = %.0f", reqs)
	}

	// The cluster behind the router still simulated each experiment once:
	// one job (its sweep-baseline sibling may share) plus the sweep points.
	if dupes := clusterSum(t, nodes, "tarserved_sims_started_total"); dupes > 6 {
		t.Errorf("suspiciously many simulations for 1 job + 2-point sweep: %.0f", dupes)
	}
}

// Hedged status waits: when the owner stalls, the router re-submits to
// another node after the hedge threshold and returns the winner under the
// original id; the loser's long-poll is cancelled. Exactly one response.
func TestRouterHedgeCancelsLoser(t *testing.T) {
	primaryCancelled := make(chan struct{}, 4)
	var hedgePosts sync.Map
	mkNode := func(name string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			switch {
			case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && r.Header.Get(serve.ForwardedHeader) != "":
				// Hedge re-submission: the shared store would answer
				// instantly; model that with an immediate done.
				hedgePosts.Store(name, r.Header.Get(serve.ForwardedHeader))
				json.NewEncoder(w).Encode(serve.JobStatus{ID: "job-hedge", State: serve.StateDone, CacheHit: true, Key: "k0"})
			case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
				w.WriteHeader(http.StatusAccepted)
				json.NewEncoder(w).Encode(serve.JobStatus{ID: "job-1", State: serve.StateQueued, Key: "k0"})
			case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
				// A stalled owner: never answer until the router gives up on
				// us. Record that the loser really was cancelled.
				<-r.Context().Done()
				primaryCancelled <- struct{}{}
			default:
				http.NotFound(w, r)
			}
		}))
	}
	a, b := mkNode("a"), mkNode("b")
	t.Cleanup(a.Close)
	t.Cleanup(b.Close)

	p := cluster.NewProxy([]string{a.URL, b.URL}, 100*time.Millisecond)
	rt := httptest.NewServer(p.Handler())
	t.Cleanup(rt.Close)

	resp, body := postJSON(t, rt.URL+"/v1/jobs", map[string]any{"bench": "dgemm", "config": "T", "scale": "test"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	globalID := st.ID

	start := time.Now()
	resp, body = getJSON(t, rt.URL+"/v1/jobs/"+globalID+"?wait=10s")
	took := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged wait: HTTP %d: %s", resp.StatusCode, body)
	}
	var final serve.JobStatus
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone {
		t.Fatalf("hedged wait returned state %s: %s", final.State, body)
	}
	if final.ID != globalID {
		t.Errorf("winner rendered under id %q, want the original %q", final.ID, globalID)
	}
	if took > 5*time.Second {
		t.Errorf("hedge took %s — the stalled owner was waited out", took)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(5 * time.Second):
		t.Error("the losing long-poll was never cancelled")
	}
	if fired := metricValue(t, rt.URL, "tarrouter_hedges_fired_total"); fired != 1 {
		t.Errorf("hedges_fired = %.0f, want 1", fired)
	}
	if wins := metricValue(t, rt.URL, "tarrouter_hedge_wins_total"); wins != 1 {
		t.Errorf("hedge_wins = %.0f, want 1", wins)
	}
	count := 0
	hedgePosts.Range(func(_, _ any) bool { count++; return true })
	if count != 1 {
		t.Errorf("hedge re-submitted to %d nodes, want exactly 1", count)
	}
}

// Submission failover: when the ring owner is down the router tries the
// successor; when every candidate is down the client gets the closed-set
// peer_unreachable envelope, not a hung connection.
func TestRouterFailoverAndPeerUnreachable(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.JobStatus{ID: "job-1", State: serve.StateQueued})
	}))
	t.Cleanup(live.Close)

	req := &serve.SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"}
	key, err := serve.RouteKey(req)
	if err != nil {
		t.Fatal(err)
	}
	dead := ""
	for port := 9; port < 200; port += 10 {
		cand := fmt.Sprintf("http://127.0.0.1:%d", port)
		if cluster.NewRing([]string{live.URL, cand}).Lookup(key) == cand {
			dead = cand
			break
		}
	}
	if dead == "" {
		t.Fatal("could not find a dead address owning the test key")
	}

	p := cluster.NewProxy([]string{live.URL, dead}, 0)
	rt := httptest.NewServer(p.Handler())
	t.Cleanup(rt.Close)

	resp, body := postJSON(t, rt.URL+"/v1/jobs", map[string]any{"bench": "dgemm", "config": "T", "scale": "test"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("failover submit: HTTP %d: %s", resp.StatusCode, body)
	}
	if fo := metricValue(t, rt.URL, "tarrouter_failovers_total"); fo != 1 {
		t.Errorf("failovers = %.0f, want 1", fo)
	}

	// All candidates down.
	p2 := cluster.NewProxy([]string{"http://127.0.0.1:9", "http://127.0.0.1:19"}, 0)
	rt2 := httptest.NewServer(p2.Handler())
	t.Cleanup(rt2.Close)
	resp, body = postJSON(t, rt2.URL+"/v1/jobs", map[string]any{"bench": "dgemm", "config": "T", "scale": "test"})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all-dead submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var envelope struct {
		Error serve.ErrorJSON `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != serve.ErrCodePeerUnreachable {
		t.Errorf("error code %q, want %q", envelope.Error.Code, serve.ErrCodePeerUnreachable)
	}
}
