package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/dse"
	"repro/internal/serve"
)

// maxSubmitRecords bounds the router's memory of routed jobs (used to hedge
// slow waits by re-submitting). Oldest records fall off first; a job whose
// record aged out simply loses hedging, never correctness.
const maxSubmitRecords = 4096

// Proxy is the tarrouter front door: one HTTP surface over an N-node
// tarserved cluster. Submissions are placed on the consistent-hash ring by
// their content address (serve.RouteKey for jobs, the canonical dse spec
// key for sweeps), so identical experiments land on the same node no
// matter which client sent them. Job and sweep ids are namespaced with the
// owning node ("job-7@n2") so status reads route straight back without any
// router-side state. Slow status waits are hedged: after hedgeAfter the
// router re-submits the remembered request to the ring successor and
// returns whichever copy finishes first — the shared store makes the
// duplicate a cache hit or a dedup join, never a second simulation.
type Proxy struct {
	m     *Membership
	hedge time.Duration

	names map[string]string // base URL -> node name ("n1"...)
	addrs map[string]string // node name -> base URL
	order []string          // node names, flag order

	client *http.Client

	mu      sync.Mutex
	submits map[string][]byte // global job id -> original request body
	fifo    []string

	met proxyMetrics
}

type proxyMetrics struct {
	requests    uint64
	hedgesFired uint64
	hedgeWins   uint64
	failovers   uint64
	peerErrors  uint64
}

// NewProxy builds the front door over the given node addresses (flag
// order; names n1..nN are assigned in that order). hedgeAfter <= 0
// disables hedging. The caller owns probing: start it with
// p.Membership().StartProber.
func NewProxy(addrs []string, hedgeAfter time.Duration) *Proxy {
	p := &Proxy{
		m:       NewMembership(addrs),
		hedge:   hedgeAfter,
		names:   make(map[string]string),
		addrs:   make(map[string]string),
		client:  &http.Client{},
		submits: make(map[string][]byte),
	}
	for i, a := range p.m.Peers() {
		name := fmt.Sprintf("n%d", i+1)
		p.names[a] = name
		p.addrs[name] = a
		p.order = append(p.order, name)
	}
	return p
}

// Membership exposes the live cluster view (for the prober and tests).
func (p *Proxy) Membership() *Membership { return p.m }

// Handler returns the router's HTTP surface.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", p.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", p.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", p.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		p.proxyByID(w, r, "/v1/jobs/%s/result", "unknown job")
	})
	mux.HandleFunc("POST /v1/sweeps", p.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", p.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/knobs", func(w http.ResponseWriter, r *http.Request) {
		p.proxyAny(w, r, "/v1/sweeps/knobs")
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		p.proxyByID(w, r, "/v1/sweeps/%s", "unknown sweep")
	})
	mux.HandleFunc("GET /v1/sweeps/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		p.proxyByID(w, r, "/v1/sweeps/%s/result", "unknown sweep")
	})
	mux.HandleFunc("GET /v1/benches", func(w http.ResponseWriter, r *http.Request) {
		p.proxyAny(w, r, "/v1/benches")
	})
	mux.HandleFunc("GET /v1/configs", func(w http.ResponseWriter, r *http.Request) {
		p.proxyAny(w, r, "/v1/configs")
	})
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		p.met.requests++
		p.mu.Unlock()
		mux.ServeHTTP(w, r)
	})
}

// ---- submission routing ----

// handleJobSubmit places the job on the ring by its route key and submits
// it to the owner, failing over along the successor list when a node is
// unreachable. The response id is namespaced with the executing node.
func (p *Proxy) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		proxyError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, "read body: "+err.Error())
		return
	}
	var req serve.SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		proxyError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	key, err := serve.RouteKey(&req)
	if err != nil {
		proxyError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err.Error())
		return
	}
	p.submitTo(w, r, p.candidates(key), "/v1/jobs", body, true)
}

// handleSweepSubmit routes a sweep by its canonical spec key, so the same
// sweep submitted through any client lands on the same node.
func (p *Proxy) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		proxyError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, "read body: "+err.Error())
		return
	}
	var spec dse.Spec
	if err := json.Unmarshal(body, &spec); err != nil {
		proxyError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	if err := spec.Canonicalize(); err != nil {
		proxyError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err.Error())
		return
	}
	p.submitTo(w, r, p.candidates(spec.Key()), "/v1/sweeps", body, false)
}

// candidates is the failover list for a route key: the owner first, then
// the ring successor.
func (p *Proxy) candidates(key string) []string {
	ring, _ := p.m.Ring()
	return ring.Successors(key, 2)
}

// submitTo POSTs body to the first reachable candidate, marking dead nodes
// as it goes. remember records the request for later hedging (jobs only).
func (p *Proxy) submitTo(w http.ResponseWriter, r *http.Request, candidates []string, path string, body []byte, remember bool) {
	for i, addr := range candidates {
		status, respBody, err := p.do(r.Context(), http.MethodPost, addr+path, body, "")
		if err != nil {
			p.peerDown(addr)
			continue
		}
		if i > 0 {
			p.mu.Lock()
			p.met.failovers++
			p.mu.Unlock()
		}
		name := p.names[addr]
		respBody = rewriteBody(respBody, func(m map[string]any) {
			id, ok := m["id"].(string)
			if !ok {
				return
			}
			global := id + "@" + name
			m["id"] = global
			if remember && status < 400 {
				p.rememberSubmit(global, body)
			}
		})
		writeRaw(w, status, respBody)
		return
	}
	proxyError(w, http.StatusBadGateway, serve.ErrCodePeerUnreachable, "no reachable node for this key")
}

func (p *Proxy) rememberSubmit(globalID string, body []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.submits[globalID]; ok {
		return
	}
	p.submits[globalID] = body
	p.fifo = append(p.fifo, globalID)
	for len(p.fifo) > maxSubmitRecords {
		delete(p.submits, p.fifo[0])
		p.fifo = p.fifo[1:]
	}
}

func (p *Proxy) submitRecord(globalID string) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.submits[globalID]
}

// ---- status reads and hedging ----

// handleJobStatus proxies a status read to the owning node. Long-poll
// waits longer than the hedge threshold race the owner against a
// re-submission on another node: the duplicate is a shared-store cache hit
// or a cross-node dedup join, so the hedge buys tail latency without a
// second simulation. The loser's request is cancelled; exactly one status
// is returned, always under the original global id.
func (p *Proxy) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	globalID := r.PathValue("id")
	localID, name, ok := splitID(globalID)
	if !ok {
		proxyError(w, http.StatusNotFound, serve.ErrCodeNotFound, "unknown job")
		return
	}
	addr, ok := p.addrs[name]
	if !ok {
		proxyError(w, http.StatusNotFound, serve.ErrCodeNotFound, "unknown job")
		return
	}
	wait, err := waitParam(r)
	if err != nil {
		proxyError(w, http.StatusBadRequest, serve.ErrCodeBadRequest, err.Error())
		return
	}
	rec := p.submitRecord(globalID)
	target := p.hedgeTarget(addr)
	if p.hedge <= 0 || wait <= p.hedge || rec == nil || target == "" {
		p.proxyStatus(w, r, addr, localID, globalID, wait)
		return
	}
	p.raceStatus(w, r, addr, localID, globalID, wait, rec, target)
}

// hedgeTarget picks the node a hedge re-submission goes to: the first
// alive member that is not the owner.
func (p *Proxy) hedgeTarget(owner string) string {
	for _, a := range p.m.Alive() {
		if a != owner {
			return a
		}
	}
	return ""
}

// proxyStatus is the non-hedged read path.
func (p *Proxy) proxyStatus(w http.ResponseWriter, r *http.Request, addr, localID, globalID string, wait time.Duration) {
	url := addr + "/v1/jobs/" + localID
	if wait > 0 {
		url += "?wait=" + wait.String()
	}
	status, body, err := p.do(r.Context(), http.MethodGet, url, nil, "")
	if err != nil {
		p.peerDown(addr)
		proxyError(w, http.StatusBadGateway, serve.ErrCodePeerUnreachable, "node "+p.names[addr]+" unreachable")
		return
	}
	writeRaw(w, status, rewriteBody(body, func(m map[string]any) {
		if _, ok := m["id"].(string); ok {
			m["id"] = globalID
		}
	}))
}

// statusOutcome is one arm of the hedged race.
type statusOutcome struct {
	st     *serve.JobStatus
	je     *serve.JobError
	err    error
	hedged bool
}

// conclusive reports whether an outcome ends the race: a terminal job
// state or a definite experiment error envelope.
func (o *statusOutcome) conclusive() bool {
	if o.err != nil {
		return false
	}
	if o.je != nil {
		return true
	}
	return o.st != nil && (o.st.State == serve.StateDone || o.st.State == serve.StateFailed)
}

// raceStatus runs the owner long-poll against a delayed hedge and returns
// the first conclusive outcome. The losing arm is cancelled through the
// shared context the moment a winner renders.
func (p *Proxy) raceStatus(w http.ResponseWriter, r *http.Request, addr, localID, globalID string, wait time.Duration, rec []byte, target string) {
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	ch := make(chan statusOutcome, 2)
	go func() {
		st, je, err := p.fetchStatus(ctx, addr, localID, wait)
		ch <- statusOutcome{st: st, je: je, err: err}
	}()
	timer := time.AfterFunc(p.hedge, func() {
		p.mu.Lock()
		p.met.hedgesFired++
		p.mu.Unlock()
		go func() {
			st, je, err := p.runHedge(ctx, target, rec, wait-p.hedge)
			ch <- statusOutcome{st: st, je: je, err: err, hedged: true}
		}()
	})
	defer timer.Stop()

	var fallback *statusOutcome
	expect := 2
	for i := 0; i < expect; i++ {
		o := <-ch
		if o.conclusive() {
			cancel()
			if o.hedged {
				p.mu.Lock()
				p.met.hedgeWins++
				p.mu.Unlock()
			}
			p.renderOutcome(w, &o, globalID)
			return
		}
		if o.err != nil {
			if o.hedged {
				p.peerDown(target)
			} else {
				p.peerDown(addr)
			}
		}
		if fallback == nil || (fallback.st == nil && o.st != nil) || (fallback.err != nil && o.err == nil && !o.hedged) {
			cp := o
			fallback = &cp
		}
		// If the hedge timer never fired, no second arm exists.
		if i == 0 && !o.hedged && timer.Stop() {
			expect = 1
		}
	}
	if fallback != nil && (fallback.st != nil || fallback.je != nil) {
		p.renderOutcome(w, fallback, globalID)
		return
	}
	proxyError(w, http.StatusBadGateway, serve.ErrCodePeerUnreachable, "node "+p.names[addr]+" unreachable")
}

func (p *Proxy) renderOutcome(w http.ResponseWriter, o *statusOutcome, globalID string) {
	if o.je != nil {
		writeProxyJSON(w, o.je.Status, map[string]any{"error": o.je.JSON})
		return
	}
	st := *o.st
	st.ID = globalID
	writeProxyJSON(w, http.StatusOK, &st)
}

// fetchStatus long-polls one node for one local job id.
func (p *Proxy) fetchStatus(ctx context.Context, addr, localID string, wait time.Duration) (*serve.JobStatus, *serve.JobError, error) {
	url := addr + "/v1/jobs/" + localID
	if wait > 0 {
		url += "?wait=" + wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	return decodeJobResponse(resp)
}

// runHedge re-submits the remembered request to target with the forward
// marker (pinning execution there) and polls it for the remaining budget.
// The shared store turns this into a cache hit or dedup join when the
// original copy finishes first.
func (p *Proxy) runHedge(ctx context.Context, target string, body []byte, budget time.Duration) (*serve.JobStatus, *serve.JobError, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.ForwardedHeader, "tarrouter-hedge")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	st, je, err := decodeJobResponse(resp)
	if err != nil || je != nil {
		return st, je, err
	}
	if st.State == serve.StateDone || st.State == serve.StateFailed {
		return st, nil, nil
	}
	if budget < time.Second {
		budget = time.Second
	}
	return p.fetchStatus(ctx, target, st.ID, budget)
}

// ---- list fan-out and generic proxying ----

// handleJobList fans out to every alive node and merges the job lists,
// namespacing each id with its node.
func (p *Proxy) handleJobList(w http.ResponseWriter, r *http.Request) {
	p.fanoutList(w, r, "/v1/jobs", "jobs")
}

func (p *Proxy) handleSweepList(w http.ResponseWriter, r *http.Request) {
	p.fanoutList(w, r, "/v1/sweeps", "sweeps")
}

func (p *Proxy) fanoutList(w http.ResponseWriter, r *http.Request, path, key string) {
	type nodeList struct {
		name  string
		items []any
	}
	alive := p.m.Alive()
	results := make([]nodeList, len(alive))
	var wg sync.WaitGroup
	for i, addr := range alive {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			status, body, err := p.do(r.Context(), http.MethodGet, addr+path, nil, "")
			if err != nil {
				p.peerDown(addr)
				return
			}
			if status >= 400 {
				return
			}
			var m map[string]any
			if json.Unmarshal(body, &m) != nil {
				return
			}
			items, _ := m[key].([]any)
			name := p.names[addr]
			for _, it := range items {
				if obj, ok := it.(map[string]any); ok {
					if id, ok := obj["id"].(string); ok {
						obj["id"] = id + "@" + name
					}
				}
			}
			results[i] = nodeList{name: name, items: items}
		}(i, addr)
	}
	wg.Wait()
	merged := make([]any, 0)
	for _, nl := range results {
		merged = append(merged, nl.items...)
	}
	sort.SliceStable(merged, func(i, j int) bool {
		a, _ := merged[i].(map[string]any)
		b, _ := merged[j].(map[string]any)
		ai, _ := a["id"].(string)
		bi, _ := b["id"].(string)
		return ai < bi
	})
	writeProxyJSON(w, http.StatusOK, map[string]any{key: merged})
}

// proxyByID forwards a read for one namespaced id ("sweep-3@n2") to its
// node, rewriting any id in the response back to the global form.
func (p *Proxy) proxyByID(w http.ResponseWriter, r *http.Request, pathFmt, missing string) {
	globalID := r.PathValue("id")
	localID, name, ok := splitID(globalID)
	if !ok {
		proxyError(w, http.StatusNotFound, serve.ErrCodeNotFound, missing)
		return
	}
	addr, ok := p.addrs[name]
	if !ok {
		proxyError(w, http.StatusNotFound, serve.ErrCodeNotFound, missing)
		return
	}
	url := addr + fmt.Sprintf(pathFmt, localID)
	if q := r.URL.RawQuery; q != "" {
		url += "?" + q
	}
	status, body, err := p.do(r.Context(), http.MethodGet, url, nil, "")
	if err != nil {
		p.peerDown(addr)
		proxyError(w, http.StatusBadGateway, serve.ErrCodePeerUnreachable, "node "+name+" unreachable")
		return
	}
	writeRaw(w, status, rewriteBody(body, func(m map[string]any) {
		if id, ok := m["id"].(string); ok && id == localID {
			m["id"] = globalID
		}
	}))
}

// proxyAny forwards a node-agnostic read (benches, configs, knobs) to the
// first reachable alive node.
func (p *Proxy) proxyAny(w http.ResponseWriter, r *http.Request, path string) {
	for _, addr := range p.m.Alive() {
		url := addr + path
		if q := r.URL.RawQuery; q != "" {
			url += "?" + q
		}
		status, body, err := p.do(r.Context(), http.MethodGet, url, nil, "")
		if err != nil {
			p.peerDown(addr)
			continue
		}
		writeRaw(w, status, body)
		return
	}
	proxyError(w, http.StatusBadGateway, serve.ErrCodePeerUnreachable, "no reachable node")
}

// ---- router introspection ----

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, gen := p.m.Ring()
	alive := make(map[string]bool)
	for _, a := range p.m.Alive() {
		alive[a] = true
	}
	nodes := make([]map[string]any, 0, len(p.order))
	for _, name := range p.order {
		addr := p.addrs[name]
		nodes = append(nodes, map[string]any{"name": name, "addr": addr, "alive": alive[addr]})
	}
	writeProxyJSON(w, http.StatusOK, map[string]any{
		"status":          "ok",
		"role":            "router",
		"ring_generation": gen,
		"nodes":           nodes,
	})
}

func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	_, gen := p.m.Ring()
	aliveCount := len(p.m.Alive())
	p.mu.Lock()
	m := p.met
	p.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "tarrouter_requests_total %d\n", m.requests)
	fmt.Fprintf(w, "tarrouter_hedges_fired_total %d\n", m.hedgesFired)
	fmt.Fprintf(w, "tarrouter_hedge_wins_total %d\n", m.hedgeWins)
	fmt.Fprintf(w, "tarrouter_failovers_total %d\n", m.failovers)
	fmt.Fprintf(w, "tarrouter_peer_errors_total %d\n", m.peerErrors)
	fmt.Fprintf(w, "tarrouter_nodes_alive %d\n", aliveCount)
	fmt.Fprintf(w, "tarrouter_ring_generation %d\n", gen)
}

// ---- plumbing ----

// do issues one upstream request and slurps the response. A non-nil error
// is a transport failure (the node is unreachable); HTTP-level errors come
// back as (status, body).
func (p *Proxy) do(ctx context.Context, method, url string, body []byte, forwarded string) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if forwarded != "" {
		req.Header.Set(serve.ForwardedHeader, forwarded)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// peerDown records a transport failure against a node: metric plus ring
// eviction (the prober brings it back when it answers /healthz again).
func (p *Proxy) peerDown(addr string) {
	p.mu.Lock()
	p.met.peerErrors++
	p.mu.Unlock()
	p.m.MarkDead(addr)
}

// splitID splits a global id "job-7@n2" into its local id and node name.
func splitID(globalID string) (localID, name string, ok bool) {
	at := -1
	for i := len(globalID) - 1; i >= 0; i-- {
		if globalID[i] == '@' {
			at = i
			break
		}
	}
	if at <= 0 || at == len(globalID)-1 {
		return "", "", false
	}
	return globalID[:at], globalID[at+1:], true
}

// waitParam parses the ?wait long-poll duration, zero when absent.
func waitParam(r *http.Request) (time.Duration, error) {
	s := r.URL.Query().Get("wait")
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad wait duration: %s", err)
	}
	return d, nil
}

// rewriteBody applies fn to a JSON object body and re-encodes it. Bodies
// that are not JSON objects pass through untouched.
func rewriteBody(body []byte, fn func(map[string]any)) []byte {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	fn(m)
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return out
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeProxyJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRaw(w, status, b)
}

func proxyError(w http.ResponseWriter, status int, code, msg string) {
	writeProxyJSON(w, status, map[string]any{"error": serve.ErrorJSON{Code: code, Message: msg}})
}
