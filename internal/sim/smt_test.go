package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vasm"
)

// smtKernel is a small vector workload (daxpy over n elements) used to
// exercise multithreaded execution.
func smtKernel(n int, a float64) vasm.Kernel {
	return func(b *vasm.Builder) {
		x := b.AllocF64(n, 0)
		y := b.AllocF64(n, 0)
		for i := 0; i < n; i++ {
			b.M.Mem.StoreQ(x+uint64(i)*8, mathBits(float64(i)))
			b.M.Mem.StoreQ(y+uint64(i)*8, mathBits(1.0))
		}
		b.M.WriteF(1, a)
		b.Li(isa.R(1), int64(x))
		b.Li(isa.R(2), int64(y))
		b.SetVSImm(isa.R(9), 8)
		b.Loop(isa.R(16), n/isa.VLMax, func(int) {
			b.VLdQ(isa.V(0), isa.R(1), 0)
			b.VLdQ(isa.V(1), isa.R(2), 0)
			b.VS(isa.OpVSMULT, isa.V(0), isa.V(0), isa.F(1))
			b.VV(isa.OpVADDT, isa.V(1), isa.V(1), isa.V(0))
			b.VStQ(isa.V(1), isa.R(2), 0)
			b.AddImm(isa.R(1), isa.R(1), isa.VLMax*8)
			b.AddImm(isa.R(2), isa.R(2), isa.VLMax*8)
		})
		b.Halt()
	}
}

func TestSMTBothThreadsCorrect(t *testing.T) {
	const n = 4096
	st, machines := RunSMT(T(), []vasm.Kernel{smtKernel(n, 2.0), smtKernel(n, 5.0)})
	if len(machines) != 2 {
		t.Fatal("expected two machines")
	}
	for th, a := range []float64{2.0, 5.0} {
		m := machines[th]
		yBase := uint64(1<<20) + n*8
		for i := 0; i < n; i += 311 {
			got := m.Mem.LoadQ(yBase + uint64(i)*8)
			want := mathBits(1.0 + a*float64(i))
			if got != want {
				t.Fatalf("thread %d: y[%d] = %#x, want %#x", th, i, got, want)
			}
		}
	}
	if st.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestSMTThroughputBeatsSerial(t *testing.T) {
	const n = 8192
	// Two threads sharing the chip vs the same two kernels back to back.
	stSMT, _ := RunSMT(T(), []vasm.Kernel{smtKernel(n, 2.0), smtKernel(n, 3.0)})
	st1, _ := Run(T(), smtKernel(n, 2.0))
	st2, _ := Run(T(), smtKernel(n, 3.0))
	serial := st1.Cycles + st2.Cycles
	t.Logf("SMT %d cycles vs serial %d (gain %.2fx)",
		stSMT.Cycles, serial, float64(serial)/float64(stSMT.Cycles))
	if stSMT.Cycles >= serial {
		t.Fatalf("SMT (%d cy) should beat running the threads serially (%d cy)",
			stSMT.Cycles, serial)
	}
	// But not by more than 2x (only two threads).
	if float64(serial)/float64(stSMT.Cycles) > 2.05 {
		t.Fatalf("SMT gain over 2x is impossible with two threads")
	}
}

func TestSMTAddressSpacesIsolated(t *testing.T) {
	// Both threads write the same virtual addresses with different values;
	// isolation means both final images are correct (no cross-thread
	// clobbering through the shared cache model).
	k := func(val uint64) vasm.Kernel {
		return func(b *vasm.Builder) {
			b.Li(isa.R(1), 1<<20)
			b.Li(isa.R(2), int64(val))
			b.Loop(isa.R(16), 64, func(int) {
				b.StQ(isa.R(2), isa.R(1), 0)
				b.AddImm(isa.R(1), isa.R(1), 8)
			})
			b.Halt()
		}
	}
	_, machines := RunSMT(T(), []vasm.Kernel{k(111), k(222)})
	for th, want := range []uint64{111, 222} {
		for i := uint64(0); i < 64; i++ {
			if got := machines[th].Mem.LoadQ(1<<20 + i*8); got != want {
				t.Fatalf("thread %d slot %d = %d, want %d", th, i, got, want)
			}
		}
	}
}

func TestSMTFourThreads(t *testing.T) {
	// EV8 was a 4-thread SMT design; run four scalar threads.
	k := func(b *vasm.Builder) {
		b.Loop(isa.R(16), 500, func(int) {
			b.OpImm(isa.OpADDQ, isa.R(1), isa.R(1), 1)
		})
		b.Halt()
	}
	st, machines := RunSMT(EV8(), []vasm.Kernel{k, k, k, k})
	for th, m := range machines {
		if m.R[1] != 500 {
			t.Fatalf("thread %d computed %d", th, m.R[1])
		}
	}
	if st.ScalarIns == 0 {
		t.Fatal("no instructions retired")
	}
}

func TestSMTNeedsLargerRegisterFile(t *testing.T) {
	// §3.3: making the Vbox multithreaded "forced using a much larger
	// register file". With two threads sharing a small physical file,
	// rename stalls must show up where a large file runs free.
	const n = 8192
	kernels := []vasm.Kernel{smtKernel(n, 2.0), smtKernel(n, 3.0)}
	small := T()
	small.Vbox.PhysVRegs = 36 // 4 rename copies for two threads
	stSmall, _ := RunSMT(small, kernels)
	large := T()
	large.Vbox.PhysVRegs = 128
	stLarge, _ := RunSMT(large, kernels)
	t.Logf("SMT with 36 phys vregs: %d cy; with 128: %d cy", stSmall.Cycles, stLarge.Cycles)
	if stSmall.Cycles <= stLarge.Cycles {
		t.Fatal("a starved register file should slow multithreaded execution")
	}
}
