package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vasm"
)

// vecDaxpy hand-codes y += a*x (vector form) over n float64s.
func vecDaxpy(n int) vasm.Kernel {
	return func(b *vasm.Builder) {
		x := b.AllocF64(n, 0)
		y := b.AllocF64(n, 0)
		for i := 0; i < n; i++ {
			b.M.Mem.StoreQ(x+uint64(i)*8, f64(2.0))
			b.M.Mem.StoreQ(y+uint64(i)*8, f64(1.0))
		}
		rx, ry, rn, rs := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		fa := isa.F(1)
		b.M.WriteF(1, 3.0)
		b.Li(rx, int64(x))
		b.Li(ry, int64(y))
		b.SetVSImm(rs, 8)
		b.Loop(rn, n/isa.VLMax, func(int) {
			b.VLdQ(isa.V(0), rx, 0)
			b.VLdQ(isa.V(1), ry, 0)
			b.VS(isa.OpVSMULT, isa.V(0), isa.V(0), fa)
			b.VV(isa.OpVADDT, isa.V(1), isa.V(1), isa.V(0))
			b.VStQ(isa.V(1), ry, 0)
			b.AddImm(rx, rx, isa.VLMax*8)
			b.AddImm(ry, ry, isa.VLMax*8)
		})
		b.Halt()
	}
}

// scalarDaxpy is the same computation in scalar Alpha code, 4x unrolled.
func scalarDaxpy(n int) vasm.Kernel {
	return func(b *vasm.Builder) {
		x := b.AllocF64(n, 0)
		y := b.AllocF64(n, 0)
		for i := 0; i < n; i++ {
			b.M.Mem.StoreQ(x+uint64(i)*8, f64(2.0))
			b.M.Mem.StoreQ(y+uint64(i)*8, f64(1.0))
		}
		rx, ry, rn := isa.R(1), isa.R(2), isa.R(3)
		fa := isa.F(1)
		b.M.WriteF(1, 3.0)
		b.Li(rx, int64(x))
		b.Li(ry, int64(y))
		b.Loop(rn, n/4, func(int) {
			for u := 0; u < 4; u++ {
				off := int64(u * 8)
				b.LdT(isa.F(2), rx, off)
				b.LdT(isa.F(3), ry, off)
				b.Op3(isa.OpMULT, isa.F(2), isa.F(2), fa)
				b.Op3(isa.OpADDT, isa.F(3), isa.F(3), isa.F(2))
				b.StT(isa.F(3), ry, off)
			}
			b.AddImm(rx, rx, 32)
			b.AddImm(ry, ry, 32)
		})
		b.Halt()
	}
}

func f64(v float64) uint64 {
	return mathBits(v)
}

func TestDaxpyOnTarantula(t *testing.T) {
	const n = 16 * 1024
	st, m := Run(T(), vecDaxpy(n))
	if st.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	// Functional result must be correct.
	got := m.Mem.LoadQ(m.R[2] - 8) // last y element written
	if got != f64(1.0+3.0*2.0) {
		t.Fatalf("y[last] = %#x, want 7.0", got)
	}
	opc, fpc, mpc, _ := st.OPC()
	t.Logf("T daxpy: cycles=%d opc=%.2f fpc=%.2f mpc=%.2f", st.Cycles, opc, fpc, mpc)
	if opc < 4 {
		t.Fatalf("Tarantula daxpy OPC %.2f implausibly low", opc)
	}
	if st.VectorIns == 0 {
		t.Fatal("no vector instructions retired")
	}
}

func TestDaxpyOnEV8(t *testing.T) {
	const n = 16 * 1024
	st, _ := Run(EV8(), scalarDaxpy(n))
	if st.Cycles == 0 {
		t.Fatal("no cycles simulated")
	}
	opc, fpc, _, _ := st.OPC()
	t.Logf("EV8 daxpy: cycles=%d opc=%.2f fpc=%.2f mispred=%d l1hit=%d l1miss=%d",
		st.Cycles, opc, fpc, st.BranchMispredicts, st.L1Hits, st.L1Misses)
	if st.VectorIns != 0 {
		t.Fatal("scalar kernel must not retire vector instructions")
	}
	if opc <= 0.5 {
		t.Fatalf("EV8 daxpy OPC %.2f implausibly low", opc)
	}
}

func TestTarantulaBeatsEV8OnDaxpy(t *testing.T) {
	const n = 16 * 1024
	stT, _ := Run(T(), vecDaxpy(n))
	stE, _ := Run(EV8(), scalarDaxpy(n))
	speedup := float64(stE.Cycles) / float64(stT.Cycles)
	t.Logf("daxpy speedup T/EV8 = %.2fx (EV8 %d cy, T %d cy)", speedup, stE.Cycles, stT.Cycles)
	if speedup < 2 {
		t.Fatalf("expected a clear vector win on daxpy, got %.2fx", speedup)
	}
}
