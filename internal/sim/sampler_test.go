package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/vasm"
)

// runSampledKernel runs the mixed scalar+vector ff kernel on cfg and returns
// the chip for series inspection.
func runSampledKernel(t *testing.T, cfg *Config) *Chip {
	t.Helper()
	for _, c := range ffCases() {
		if c.name == "mixed-scalar-vector" {
			return runSampledKernelWith(t, cfg, c)
		}
	}
	t.Fatal("mixed-scalar-vector ff case missing")
	return nil
}

func runSampledKernelWith(t *testing.T, cfg *Config, c ffCase) *Chip {
	t.Helper()
	chip := New(cfg)
	m := arch.New(mem.New())
	tr := vasm.NewTrace(m, c.kernel)
	defer tr.Close()
	if err := chip.RunTraceChecked(tr); err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	return chip
}

// wedgeOnStorm provokes a watchdog wedge with a stall storm and returns the
// chip and its typed error.
func wedgeOnStorm(t *testing.T) (*Chip, *WedgeError) {
	t.Helper()
	cfg := *T()
	cfg.Faults = &faults.Config{StallStormFrom: 300}
	cfg.Watchdog = 30_000
	chip := New(&cfg)
	m := arch.New(mem.New())
	tr := vasm.NewTrace(m, wedgeKernel)
	defer tr.Close()
	err := chip.RunTraceChecked(tr)
	var w *WedgeError
	if !errors.As(err, &w) {
		t.Fatalf("err = %v (%T), want *WedgeError", err, err)
	}
	return chip, w
}

// TestSamplerSeriesShape: an armed sampler produces points on exact cycle
// boundaries with one gauge column per registered gauge, and the dump's
// gauge names are the registry's registration order.
func TestSamplerSeriesShape(t *testing.T) {
	cfg := *T()
	cfg.EnableSampling(500, 0)
	chip := runSampledKernel(t, &cfg)
	d := chip.Series()
	if d == nil || len(d.Points) == 0 {
		t.Fatal("sampler armed but no points taken")
	}
	names := chip.Reg.GaugeNames()
	if len(d.Gauges) != len(names) {
		t.Fatalf("dump has %d gauge columns, registry has %d", len(d.Gauges), len(names))
	}
	for i, n := range names {
		if d.Gauges[i] != n {
			t.Fatalf("gauge column %d = %q, want %q", i, d.Gauges[i], n)
		}
	}
	var prev uint64
	for _, p := range d.Points {
		if p.Cycle%500 != 0 || p.Cycle <= prev {
			t.Fatalf("point at cycle %d: not on a 500-cycle boundary after %d", p.Cycle, prev)
		}
		prev = p.Cycle
		if len(p.Gauges) != len(names) {
			t.Fatalf("point has %d gauge values, want %d", len(p.Gauges), len(names))
		}
		if p.IPC < 0 {
			t.Fatalf("negative interval IPC %v", p.IPC)
		}
	}
}

// TestSamplerDoesNotPerturbCounters is the observation-only contract: the
// sampler disables the idle-cycle fast-forward (it reads fixed cycles) but
// must leave every counter bit-identical to an unsampled run.
func TestSamplerDoesNotPerturbCounters(t *testing.T) {
	for _, c := range ffCases() {
		base := c.configs[0]
		plain := runFF(base, c.kernel, true)
		cfg := *base
		cfg.EnableSampling(100, 0)
		chip := runSampledKernelWith(t, &cfg, c)
		if *chip.Stats != *plain {
			t.Errorf("%s: sampling changed the statistics:\n  sampled: %+v\n  plain:   %+v",
				c.name, *chip.Stats, *plain)
		}
	}
}

// TestWedgeOccupancyCoversEveryGauge is the registry-backed wedge snapshot
// guarantee: every occupancy gauge a component registered appears, by name,
// in the WedgeError text, grouped under its component namespace. A gauge
// added to any component can never be silently missing from wedge reports.
func TestWedgeOccupancyCoversEveryGauge(t *testing.T) {
	chip, w := wedgeOnStorm(t)
	gauges := chip.Reg.Gauges()
	if len(gauges) == 0 {
		t.Fatal("registry has no gauges — components did not register occupancy probes")
	}
	if len(w.Occ) != len(gauges) {
		t.Fatalf("Occ has %d samples, registry has %d gauges", len(w.Occ), len(gauges))
	}
	msg := w.Error()
	for _, g := range gauges {
		comp, metric, ok := strings.Cut(g.Name, ".")
		if !ok {
			t.Fatalf("gauge %q is not namespaced", g.Name)
		}
		if !strings.Contains(msg, metric+"=") {
			t.Errorf("gauge %s missing from wedge report: %q", g.Name, msg)
		}
		if !strings.Contains(msg, comp+"[") {
			t.Errorf("component group %s[ missing from wedge report: %q", comp, msg)
		}
	}
}
