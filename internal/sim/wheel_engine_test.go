package sim

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/vasm"
)

// drainKernel halts with a write-buffer full of vector stores still in
// flight — no DRAINM — so a meaningful share of the run happens in the
// post-HALT drain loop, the code path TestDrainLoopEngineEquivalence pins.
func drainKernel(b *vasm.Builder) {
	base := b.AllocF64(1<<14, 0)
	b.Li(isa.R(1), int64(base))
	b.SetVLImm(isa.R(9), 128)
	for i := 0; i < 8; i++ {
		b.VLdQ(isa.V(1), isa.R(1), int64(i*1024))
		b.VV(isa.OpVADDT, isa.V(2), isa.V(1), isa.V(1))
		b.VStQ(isa.V(2), isa.R(1), int64(i*1024))
	}
	b.Halt()
}

// runEngine runs kernel on cfg with either the event-wheel engine (the
// default) or the legacy loop pinned via PinSingleStep.
func runEngine(t *testing.T, base *Config, kernel vasm.Kernel, singleStep bool) (*Chip, error) {
	t.Helper()
	cfg := *base
	if singleStep {
		cfg.PinSingleStep()
	}
	chip := New(&cfg)
	m := arch.New(mem.New())
	tr := vasm.NewTrace(m, kernel)
	defer tr.Close()
	return chip, chip.RunTraceChecked(tr)
}

// TestDrainLoopEngineEquivalence: the post-HALT drain loop (hoisted Busy
// evaluation, event-driven advance) must leave the chip bit-identical to
// the legacy single-stepped drain — cycle counts included.
func TestDrainLoopEngineEquivalence(t *testing.T) {
	wheel, err := runEngine(t, T(), drainKernel, false)
	if err != nil {
		t.Fatal(err)
	}
	step, err := runEngine(t, T(), drainKernel, true)
	if err != nil {
		t.Fatal(err)
	}
	if *wheel.Stats != *step.Stats {
		t.Errorf("drain statistics diverge across engines:\n  wheel: %+v\n  step:  %+v",
			*wheel.Stats, *step.Stats)
	}
}

// TestWatchdogTripsSameCycleAcrossEngines: the wheel clamps its jumps at the
// watchdog boundary, so a wedged machine must be convicted at exactly the
// cycle the single-stepped engine reports — not merely with the same
// verdict.
func TestWatchdogTripsSameCycleAcrossEngines(t *testing.T) {
	run := func(singleStep bool) *WedgeError {
		cfg := *T()
		cfg.Faults = &faults.Config{StallStormFrom: 300}
		cfg.Watchdog = 30_000
		_, err := runEngine(t, &cfg, wedgeKernel, singleStep)
		var w *WedgeError
		if !errors.As(err, &w) {
			t.Fatalf("singleStep=%v: err = %v, want *WedgeError", singleStep, err)
		}
		return w
	}
	wheel, step := run(false), run(true)
	if wheel.Reason != step.Reason || wheel.Cycle != step.Cycle || wheel.Retired != step.Retired {
		t.Errorf("engines disagree on the wedge:\n  wheel: cycle=%d retired=%d reason=%q\n  step:  cycle=%d retired=%d reason=%q",
			wheel.Cycle, wheel.Retired, wheel.Reason, step.Cycle, step.Retired, step.Reason)
	}
}

// TestSeededTooLateEventCaught seeds the too-late-NextWake bug class (a
// component promising to sleep past its own next state change) and requires
// both integrity nets to fire: the event-wheel engine, which trusts the
// hints, must wedge on the watchdog rather than silently corrupt timing;
// and the checker — which pins the legacy single-stepped loop — must
// convict the same seed as a nextwake invariant violation.
func TestSeededTooLateEventCaught(t *testing.T) {
	seeded := func() *Config {
		cfg := *T()
		cfg.Faults = &faults.Config{Seed: 42, DropWakePct: 100, DropWakeSpan: 64}
		cfg.Watchdog = 30_000
		return &cfg
	}

	_, err := runEngine(t, seeded(), wedgeKernel, false)
	var w *WedgeError
	if !errors.As(err, &w) {
		t.Fatalf("wheel engine ran to completion on inflated hints: err = %v", err)
	}
	if w.Reason != ReasonWatchdog {
		t.Errorf("wheel engine: Reason = %q, want %q", w.Reason, ReasonWatchdog)
	}

	cfg := seeded()
	cfg.Check = true
	_, _, err = RunChecked(cfg, wedgeKernel)
	if !errors.As(err, &w) {
		t.Fatalf("checker missed the seeded broken hints: err = %v", err)
	}
	if w.Reason != ReasonInvariant {
		t.Errorf("checker: Reason = %q, want %q", w.Reason, ReasonInvariant)
	}
	if w.Violation == nil || w.Violation.Invariant != "nextwake" {
		t.Errorf("checker: Violation = %+v, want the nextwake audit", w.Violation)
	}
}
