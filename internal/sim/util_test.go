package sim

import "math"

func mathBits(v float64) uint64 { return math.Float64bits(v) }
