package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/stats"
	"repro/internal/vasm"
)

// runK runs a kernel on cfg and returns the chip stats.
func runK(t *testing.T, cfg *Config, k vasm.Kernel) *stats.Stats {
	t.Helper()
	st, _ := Run(cfg, k)
	return st
}

func TestVectorPortOccupancy(t *testing.T) {
	// 64 independent vector adds, vl=128: two ports × 8-cycle occupancy
	// bounds the region at ≥ 64*8/2 = 256 cycles; massive slack would mean
	// the ⌈vl/16⌉ occupancy isn't modeled.
	st := runK(t, T(), func(b *vasm.Builder) {
		for i := 0; i < 64; i++ {
			b.VV(isa.OpVADDQ, isa.V(i%8), isa.V(8+i%8), isa.V(16+i%8))
		}
		b.Halt()
	})
	if st.Cycles < 256 {
		t.Fatalf("64 vl=128 adds finished in %d cycles — ports are over-issuing", st.Cycles)
	}
	if st.Cycles > 400 {
		t.Fatalf("64 independent adds took %d cycles — dual issue missing", st.Cycles)
	}
}

func TestShortVectorsOccupyLess(t *testing.T) {
	run := func(vl int) uint64 {
		st := runK(t, T(), func(b *vasm.Builder) {
			b.SetVLImm(isa.R(9), vl)
			for i := 0; i < 64; i++ {
				b.VV(isa.OpVADDQ, isa.V(i%8), isa.V(8+i%8), isa.V(16+i%8))
			}
			b.Halt()
		})
		return st.Cycles
	}
	long, short := run(128), run(16)
	if short >= long/2 {
		t.Fatalf("vl=16 (%d cy) should be far cheaper than vl=128 (%d cy) on the ports", short, long)
	}
}

func TestUnpipelinedDivideHoldsPort(t *testing.T) {
	div := runK(t, T(), func(b *vasm.Builder) {
		for i := 0; i < 8; i++ {
			b.VV(isa.OpVDIVT, isa.V(1), isa.V(2), isa.V(3))
		}
		b.Halt()
	})
	add := runK(t, T(), func(b *vasm.Builder) {
		for i := 0; i < 8; i++ {
			b.VV(isa.OpVADDT, isa.V(1), isa.V(2), isa.V(3))
		}
		b.Halt()
	})
	if div.Cycles < 4*add.Cycles {
		t.Fatalf("divides (%d cy) should be far slower than adds (%d cy)", div.Cycles, add.Cycles)
	}
}

func TestChainingWaitsForFullVector(t *testing.T) {
	// A load followed by a dependent add: the add cannot start until every
	// element returned (the §3.4 consequence of out-of-order slices), so
	// the dependent pair must cost at least the full load latency.
	st := runK(t, T(), func(b *vasm.Builder) {
		b.Li(isa.R(1), 1<<20)
		b.SetVSImm(isa.R(9), 16) // stride-2: reorder path, 8 slices
		b.VLdQ(isa.V(0), isa.R(1), 0)
		b.VV(isa.OpVADDT, isa.V(1), isa.V(0), isa.V(0))
		b.Halt()
	})
	// 8 AG cycles + 8 slices + 38 load-to-use + 8 occupancy + latency.
	if st.Cycles < 55 {
		t.Fatalf("dependent load→add completed in %d cycles — chaining too eager", st.Cycles)
	}
}

func TestSelfConflictingStrideIsSlow(t *testing.T) {
	run := func(strideBytes int64) uint64 {
		st := runK(t, T(), func(b *vasm.Builder) {
			b.Li(isa.R(1), 1<<20)
			b.SetVSImm(isa.R(9), strideBytes)
			for i := 0; i < 8; i++ {
				b.VLdQ(isa.V(0), isa.R(1), 0)
				b.AddImm(isa.R(1), isa.R(1), 64)
			}
			b.Halt()
		})
		return st.Cycles
	}
	odd := run(24)        // σ=3: conflict-free reordering
	selfc := run(128 * 8) // 2^7 quadwords: every address on one bank
	if selfc < 4*odd {
		t.Fatalf("self-conflicting stride (%d cy) should be much slower than odd stride (%d cy)",
			selfc, odd)
	}
}

func TestShortStridedVectorStillPaysEightAGCycles(t *testing.T) {
	// §3.4: vl < 128 still pays the full 8 address-generation cycles on
	// the reorder path, so back-to-back short strided loads can't beat a
	// ~8-cycle cadence.
	st := runK(t, T(), func(b *vasm.Builder) {
		b.Li(isa.R(1), 1<<20)
		b.SetVSImm(isa.R(9), 16)
		b.SetVLImm(isa.R(9), 8)
		for i := 0; i < 32; i++ {
			b.VLdQ(isa.V(0), isa.R(1), 0)
			b.AddImm(isa.R(1), isa.R(1), 4096)
		}
		b.Halt()
	})
	if st.Cycles < 32*8 {
		t.Fatalf("32 short strided loads took %d cycles; 8 AG cycles each means ≥256", st.Cycles)
	}
}

func TestDrainMWaitsForWriteBuffer(t *testing.T) {
	with := runK(t, T(), func(b *vasm.Builder) {
		b.Li(isa.R(1), 1<<20)
		for i := 0; i < 16; i++ {
			b.StQ(isa.R(2), isa.R(1), int64(i*64))
		}
		b.DrainM()
		b.VLdQ(isa.V(0), isa.R(1), 0)
		b.Halt()
	})
	without := runK(t, T(), func(b *vasm.Builder) {
		b.Li(isa.R(1), 1<<20)
		for i := 0; i < 16; i++ {
			b.StQ(isa.R(2), isa.R(1), int64(i*64))
		}
		b.VLdQ(isa.V(0), isa.R(1), 0)
		b.Halt()
	})
	if with.DrainMs != 1 {
		t.Fatalf("DrainM count = %d", with.DrainMs)
	}
	if with.Cycles <= without.Cycles {
		t.Fatalf("DrainM (%d cy) must cost more than no barrier (%d cy)", with.Cycles, without.Cycles)
	}
}

func TestPBitInvalidateOnScalarThenVector(t *testing.T) {
	st := runK(t, T(), func(b *vasm.Builder) {
		b.Li(isa.R(1), 1<<20)
		b.LdQ(isa.R(2), isa.R(1), 0) // scalar touch: L1 fill sets the P-bit
		b.DrainM()
		b.VLdQ(isa.V(0), isa.R(1), 0) // vector read of the same lines
		b.Halt()
	})
	if st.L2PBitInvalidates == 0 {
		t.Fatal("vector touch of an L1-resident line must invalidate")
	}
}

func TestVectorTLBMissAndRefill(t *testing.T) {
	// Gathers touching many distinct 512 MB pages force per-lane TLB
	// misses and PAL refills.
	st := runK(t, T(), func(b *vasm.Builder) {
		for i := 0; i < isa.VLMax; i++ {
			b.M.V[1][i] = uint64(i) << 29 // one page per element
		}
		b.Li(isa.R(1), 0)
		b.VGath(isa.V(0), isa.V(1), isa.R(1))
		b.Halt()
	})
	if st.TLBMisses == 0 || st.TLBRefills == 0 {
		t.Fatalf("TLB misses=%d refills=%d, want >0", st.TLBMisses, st.TLBRefills)
	}
}

func TestTLBMissesSquashedOnPrefetch(t *testing.T) {
	st := runK(t, T(), func(b *vasm.Builder) {
		for i := 0; i < isa.VLMax; i++ {
			b.M.V[1][i] = uint64(i+200) << 29
		}
		b.Li(isa.R(1), 0)
		b.VGathPref(isa.V(1), isa.R(1)) // prefetch: faults ignored (§2)
		b.Halt()
	})
	if st.TLBMisses != 0 {
		t.Fatalf("prefetch TLB misses = %d, want 0 (squashed)", st.TLBMisses)
	}
}

func TestBranchMispredictCharged(t *testing.T) {
	// Data-dependent alternating branches vs a stable loop branch.
	alternating := runK(t, EV8(), func(b *vasm.Builder) {
		site := b.Site()
		for i := 0; i < 400; i++ {
			b.OpImm(isa.OpADDQ, isa.R(1), isa.RZero, int64(i%2))
			eff := b.EmitAt(isa.Inst{Op: isa.OpBNE, Src1: isa.R(1), Imm: 1}, site)
			_ = eff
		}
		b.Halt()
	})
	stable := runK(t, EV8(), func(b *vasm.Builder) {
		b.Loop(isa.R(16), 400, func(int) {
			b.OpImm(isa.OpADDQ, isa.R(1), isa.R(1), 1)
		})
		b.Halt()
	})
	if alternating.BranchMispredicts < 100 {
		t.Fatalf("alternating mispredicts = %d", alternating.BranchMispredicts)
	}
	if stable.BranchMispredicts > 3 {
		t.Fatalf("loop branch mispredicts = %d", stable.BranchMispredicts)
	}
	if alternating.Cycles < 2*stable.Cycles {
		t.Fatalf("mispredicted code (%d cy) should be much slower than predicted (%d cy)",
			alternating.Cycles, stable.Cycles)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	st := runK(t, EV8(), func(b *vasm.Builder) {
		b.Li(isa.R(1), 1<<20)
		b.Li(isa.R(2), 42)
		for i := 0; i < 100; i++ {
			b.StQ(isa.R(2), isa.R(1), 0)
			b.LdQ(isa.R(3), isa.R(1), 0) // forwarded, never misses
		}
		b.Halt()
	})
	if st.L1Misses > 2 {
		t.Fatalf("forwarded loads missed the L1 %d times", st.L1Misses)
	}
	if st.Cycles > 1000 {
		t.Fatalf("forwarding chain took %d cycles", st.Cycles)
	}
}

func TestEV8PlusMatchesTOnScalarCode(t *testing.T) {
	k := func(b *vasm.Builder) {
		b.Li(isa.R(1), 1<<20)
		b.Loop(isa.R(16), 2000, func(int) {
			b.LdT(isa.F(1), isa.R(1), 0)
			b.Op3(isa.OpADDT, isa.F(2), isa.F(2), isa.F(1))
			b.AddImm(isa.R(1), isa.R(1), 8)
		})
		b.Halt()
	}
	stP, _ := Run(EV8Plus(), k)
	stT, _ := Run(T(), k)
	// A pure scalar kernel should behave nearly identically on EV8+ and T
	// (T's scalar L2 latency is higher; that's the only difference).
	ratio := float64(stT.Cycles) / float64(stP.Cycles)
	if ratio < 0.9 || ratio > 2.0 {
		t.Fatalf("scalar code on T vs EV8+: ratio %.2f (T=%d, EV8+=%d)", ratio, stT.Cycles, stP.Cycles)
	}
}

func TestOperandBusLimitsVSIssue(t *testing.T) {
	// VS ops need a scalar operand over the two buses; VV ops do not. A
	// burst of VS ops can sustain at most 2 issues/cycle of bus traffic.
	st := runK(t, T(), func(b *vasm.Builder) {
		for i := 0; i < 64; i++ {
			b.VS(isa.OpVSADDT, isa.V(i%8), isa.V(8+i%8), isa.F(1))
		}
		b.Halt()
	})
	if st.VSBusTransfers != 64 {
		t.Fatalf("operand-bus transfers = %d, want 64", st.VSBusTransfers)
	}
}
