// The checkpoint/fork A/B guard lives in an external test package for the
// same reason as the fast-forward one: it drives real paper workloads
// (workloads imports sim) and compares artifacts with the serve encoding
// (serve imports workloads).
package sim_test

import (
	"encoding/json"
	"testing"

	"repro/internal/isa"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/vasm"
	"repro/internal/workloads"
)

// synthSetup is a warm-up phase for benchmarks that do not define one: a
// scalar prefetch walk over a fixed window. Any deterministic kernel works
// here — the A/B test only needs a post-Setup boundary to snapshot at, and
// the walk perturbs cache and predictor state enough that a restore which
// dropped state would show up in the ROI statistics.
func synthSetup(workloads.Scale, bool) vasm.Kernel {
	return func(b *vasm.Builder) {
		b.Li(isa.R(1), 1<<20)
		b.Loop(isa.R(16), 256, func(int) {
			b.Prefetch(isa.R(1), 0)
			b.AddImm(isa.R(1), isa.R(1), 64)
		})
	}
}

// runAB executes bench on cfg twice — straight (capturing the post-Setup
// snapshot) and restored from that snapshot — and requires the region of
// interest to be bit-identical: every counter, the final clock, and the
// serve artifact encoding.
func runAB(t *testing.T, bench *workloads.Benchmark, cfg *sim.Config) {
	t.Helper()
	var blob []byte
	var atCycle uint64
	straight, err := bench.RunOpt(cfg, workloads.Test, workloads.RunOpts{
		OnWarmupSnapshot: func(cy uint64, b []byte) { atCycle, blob = cy, b },
	})
	if err != nil {
		t.Fatalf("straight run: %v", err)
	}
	if blob == nil {
		t.Fatal("warm-up snapshot was not captured")
	}
	if atCycle == 0 || atCycle != straight.WarmupCycles {
		t.Fatalf("snapshot cycle %d, straight run reports warm-up boundary %d", atCycle, straight.WarmupCycles)
	}
	restored, err := bench.RunOpt(cfg, workloads.Test, workloads.RunOpts{WarmupSnapshot: blob})
	if err != nil {
		t.Fatalf("restored run: %v", err)
	}
	if !restored.WarmupRestored || restored.WarmupCycles != atCycle {
		t.Fatalf("restored run reports restored=%v boundary=%d, want true/%d",
			restored.WarmupRestored, restored.WarmupCycles, atCycle)
	}
	if *straight.Stats != *restored.Stats {
		t.Errorf("restore changed the ROI statistics:\n  straight: %+v\n  restored: %+v",
			*straight.Stats, *restored.Stats)
	}
	if straight.SimCycles != restored.SimCycles {
		t.Errorf("restore changed the final clock: straight %d, restored %d",
			straight.SimCycles, restored.SimCycles)
	}
	aj, err := json.Marshal(serve.EncodeResult("ab", straight))
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(serve.EncodeResult("ab", restored))
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.CompareArtifacts(aj, bj); err != nil {
		t.Errorf("serve artifacts differ across restore: %v", err)
	}
}

// TestSnapshotRestoreABMatrix covers every Table 4 microkernel on both
// engines: snapshot at the post-Setup boundary, restore into a fresh chip,
// run to completion, and require bit-identity with the straight run.
// Benchmarks without a warm-up phase get a synthesized one so each kernel
// still crosses a snapshot boundary.
func TestSnapshotRestoreABMatrix(t *testing.T) {
	defer func() { sim.FastForward = true }()
	kernels := []string{
		"streams_copy", "streams_scale", "streams_add", "streams_triadd",
		"rndcopy", "rndmemscale",
	}
	for _, name := range kernels {
		b, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		bench := *b
		if bench.Setup == nil {
			bench.Setup = synthSetup
		}
		for _, ff := range []bool{true, false} {
			engine := "wheel"
			if !ff {
				engine = "step"
			}
			t.Run(name+"/"+engine, func(t *testing.T) {
				sim.FastForward = ff
				runAB(t, &bench, sim.T())
			})
		}
	}
}

// TestSnapshotRestoreScalarConfig runs the A/B check on a Vbox-less
// configuration, covering the snapshot layout branch without vector state.
func TestSnapshotRestoreScalarConfig(t *testing.T) {
	b, err := workloads.Get("rndcopy")
	if err != nil {
		t.Fatal(err)
	}
	runAB(t, b, sim.EV8())
}
