// The fast-forward A/B guard over real paper workloads lives in an external
// test package: workloads imports sim, so an in-package test could not.
package sim_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestFastForwardABOnWorkloads runs full paper benchmarks with the
// fast-forward on and off and requires identical cycle and retired-operation
// counts. The set covers an L2-resident kernel (rndcopy), a memory-bound
// stream (streams_copy), and fft — whose mixed scalar/vector dispatch
// pattern caught a wake-hint bug during development.
func TestFastForwardABOnWorkloads(t *testing.T) {
	defer func() { sim.FastForward = true }()
	for _, name := range []string{"rndcopy", "streams_copy", "fft"} {
		b, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []*sim.Config{sim.T(), sim.EV8()} {
			run := func(ff bool) *workloads.Result {
				sim.FastForward = ff
				res, err := b.Run(cfg, workloads.Test)
				if err != nil {
					t.Fatalf("%s on %s (ff=%v): %v", name, cfg.Name, ff, err)
				}
				return res
			}
			on, off := run(true), run(false)
			if *on.Stats != *off.Stats {
				t.Errorf("%s on %s: fast-forward changed the statistics:\n  on:  %+v\n  off: %+v",
					name, cfg.Name, *on.Stats, *off.Stats)
			}
		}
	}
}
