// Package sim assembles the whole-chip simulator and defines the four
// machine configurations of Table 3 (EV8, EV8+, T, T4) plus the T10 point
// of Figure 8. A Chip runs one hand-coded kernel trace to completion and
// returns the statistics the evaluation harness turns into the paper's
// tables and figures.
package sim

import (
	"fmt"
	"os"
	"time"

	"repro/internal/arch"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/l2"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/vasm"
	"repro/internal/vbox"
	"repro/internal/zbox"
)

// Config is a whole-machine configuration.
type Config struct {
	Name   string
	CPUGHz float64

	HasVbox bool

	Core core.Config
	Vbox vbox.Config
	L2   l2.Config
	Zbox zbox.Config

	// ---- integrity layer (all optional; zero values = today's behavior) ----

	// Check enables the microarchitectural invariant checker: per-retirement
	// validation of ROB order, store-queue consistency and L1/L2 inclusion,
	// plus NextWake hint-soundness auditing. Checked runs single-step (no
	// idle-cycle fast-forward) so the audit can observe every cycle.
	Check bool

	// Deadline bounds one run's wall-clock time; exceeding it aborts with a
	// WedgeError (ReasonDeadline). Zero means no deadline.
	Deadline time.Duration

	// Watchdog overrides the no-retirement-progress window in cycles. Zero
	// selects the default (2M cycles).
	Watchdog uint64

	// Faults configures deterministic fault injection; nil injects nothing.
	Faults *faults.Config

	// Sampling knobs are unexported on purpose: confhash walks exported
	// fields only (and panics on funcs), so observation settings must never
	// leak into the configuration identity. Use EnableSampling/SetOnSeries.
	sampleEvery uint64
	sampleCap   int
	onSeries    func(*metrics.SeriesDump)

	// singleStep pins chips built from this configuration to the legacy
	// single-stepping cycle loop (no event wheel, no idle-cycle jumps).
	// Unexported for the same reason as the sampling knobs: engine choice
	// is an observation/performance setting, never configuration identity.
	singleStep bool
}

// PinSingleStep forces chips built from this configuration onto the legacy
// single-stepping loop — every cycle ticked, no event-driven scheduling. The
// sampler and checker pin it implicitly (they must observe fixed cycles);
// this knob is the explicit handle for A/B tests and bit-identity audits.
func (c *Config) PinSingleStep() { c.singleStep = true }

// EnableSampling turns on the cycle-interval sampler for chips built from
// this configuration: every `every` cycles the chip snapshots interval IPC,
// memory traffic and every registered occupancy gauge into a bounded ring
// (capacity 0 selects metrics.DefaultSeriesCap). Sampling observes fixed
// cycles, so it implicitly disables the idle-cycle fast-forward; it never
// changes simulated timing or counters.
func (c *Config) EnableSampling(every uint64, capacity int) {
	c.sampleEvery = every
	c.sampleCap = capacity
}

// SetOnSeries installs the harness callback that receives the sampled series
// after a successful RunChecked/RunROIChecked/RunSMTChecked.
func (c *Config) SetOnSeries(fn func(*metrics.SeriesDump)) { c.onSeries = fn }

// Sampling reports the sampler setting.
func (c *Config) Sampling() (every uint64, capacity int) { return c.sampleEvery, c.sampleCap }

// Chip is one assembled machine.
type Chip struct {
	Cfg *Config

	// Reg is the chip's metric registry: every component registered its
	// counters and occupancy gauges against it at construction. Stats is the
	// registry's live flat compat view (the same storage), kept for ROI
	// deltas, the evaluation tables and the byte-comparable serve encoding.
	Reg   *metrics.Registry
	Stats *stats.Stats

	z  *zbox.Zbox
	l2 *l2.L2
	vb *vbox.VBox
	c  *core.Core

	chk *check.Checker   // nil unless Cfg.Check
	inj *faults.Injector // nil unless Cfg.Faults

	now uint64 // global cycle, shared across RunTrace phases

	ff bool // idle-cycle fast-forward enabled

	// Checker-mode hint audit state (per chip, unlike the test-only ffVerify
	// globals): the window the last fast-forward hint claimed was idle, and
	// the registry epoch at its start.
	ckSkipFrom, ckSkipTo uint64
	ckEpochAt            uint64

	// Cycle-interval sampler state (nil series = sampling off).
	series       *metrics.Series
	gaugeScratch []int
	lastRetired  uint64 // at the previous sample point
	lastRawBytes uint64

	// simWall accumulates wall-clock time spent inside the chip loop
	// (bound + drain, all phases) — the denominator of the simulator's
	// cycles-per-second throughput. Trace construction, functional
	// verification and harness overhead are excluded on purpose: the
	// number tracks the engine, not the workload's setup cost.
	simWall time.Duration
}

// SimWall returns the cumulative wall-clock time this chip has spent inside
// its cycle loop, across every phase run so far.
func (ch *Chip) SimWall() time.Duration { return ch.simWall }

// Clock returns the chip's current cycle — total simulated time including
// post-HALT drain, across every phase run so far.
func (ch *Chip) Clock() uint64 { return ch.now }

// FastForward is the package-wide default for the idle-cycle fast-forward:
// when every component reports it is blocked on a scheduled completion event,
// the simulator jumps the clock straight to the earliest such event instead
// of ticking through dead cycles. The optimisation is a pure wall-clock win —
// retired-instruction counts, Stats.Cycles and every queue-contention effect
// are bit-identical to single-stepping (see the A/B guard test). Chips
// snapshot the value at New; flip a single chip with SetFastForward.
var FastForward = true

// EngineName reports the chip-loop engine the package default selects, for
// bench rows and diagnostics.
func EngineName() string {
	if !FastForward {
		return "single-step"
	}
	return "wheel"
}

// wheelDebug prints the event-wheel jump ratio after each bound run.
var wheelDebug = os.Getenv("TARSIM_WHEEL_DEBUG") != ""

var wheelWhy [4]uint64

// ffVerify, when enabled (tests only), runs the simulator single-stepped but
// still computes every fast-forward hint, checking that no statistic changes
// inside a window the hints claimed was idle. A violation means a NextWake
// returned a too-late cycle — exactly the class of bug that would silently
// skew results.
var (
	ffVerify     bool
	ffViolations []string
	ffSkipFrom   uint64
	ffSkipTo     uint64
	ffEpochAt    uint64
)

// setFFVerify arms or disarms hint verification and returns the violations
// recorded so far (used by the soundness guard test).
func setFFVerify(on bool) []string {
	ffVerify, ffSkipFrom = on, 0
	v := ffViolations
	ffViolations = nil
	return v
}

// New assembles a chip from cfg. Every component registers its counters and
// gauges against one fresh per-chip registry; the chip's Stats field is the
// registry's live compat view.
func New(cfg *Config) *Chip {
	reg := metrics.NewRegistry()
	inj := faults.New(cfg.Faults)
	// The injector rides into each component on a local copy of its config,
	// so the caller's Config literal stays untouched (tables share them
	// across cells).
	zc := cfg.Zbox
	zc.Faults = inj
	z := zbox.New(zc, reg)
	l2cfg := cfg.L2
	l2cfg.Faults = inj
	l2c := l2.New(l2cfg, reg, z)
	var vb *vbox.VBox
	var vu core.VectorUnit
	if cfg.HasVbox {
		vc := cfg.Vbox
		vc.Faults = inj
		vb = vbox.New(vc, reg, l2c)
		vu = vb
	}
	cc := cfg.Core
	cc.Faults = inj
	c := core.New(cc, reg, l2c, vu)
	if vb != nil {
		vb.OnDone = c.VectorDone
	}
	ch := &Chip{Cfg: cfg, Reg: reg, Stats: reg.Stats(), z: z, l2: l2c, vb: vb, c: c, inj: inj,
		ff: FastForward && !cfg.singleStep}
	if cfg.Check {
		ch.chk = check.New()
		c.SetChecker(ch.chk)
	}
	if cfg.sampleEvery > 0 {
		ch.EnableSampling(cfg.sampleEvery, cfg.sampleCap)
	}
	return ch
}

// EnableSampling arms the chip's cycle-interval sampler: every `every`
// cycles the current interval IPC, interval memory-controller bytes and all
// registered occupancy gauges are pushed into a bounded ring (capacity 0
// selects metrics.DefaultSeriesCap; the ring overwrites oldest-first).
func (ch *Chip) EnableSampling(every uint64, capacity int) {
	if every == 0 {
		ch.series = nil
		return
	}
	ch.series = metrics.NewSeries(every, capacity, ch.Reg.GaugeNames())
}

// Series returns the sampled series, or nil when sampling was never enabled.
func (ch *Chip) Series() *metrics.SeriesDump {
	if ch.series == nil {
		return nil
	}
	return ch.series.Dump()
}

// SetFastForward overrides the package default for this chip (the sampler
// also disables it implicitly, since samples are taken on fixed cycles).
func (ch *Chip) SetFastForward(on bool) { ch.ff = on }

// watchdogWindow is how many cycles of zero progress trip the deadlock
// detector.
const watchdogWindow = 2_000_000

// Run executes the kernel on a fresh machine state and returns the
// statistics. The kernel runs functionally in a streaming trace; the chip
// model consumes it cycle by cycle until the HALT marker retires. Run
// panics on a wedge.
//
// Deprecated: Use Execute with a RunSpec selecting Kernel.
func Run(cfg *Config, kernel vasm.Kernel) (*stats.Stats, *arch.Machine) {
	st, m, err := RunChecked(cfg, kernel)
	if err != nil {
		panic(err)
	}
	return st, m
}

// RunChecked is Run with a structured error surface: a wedged machine, a
// blown deadline, a failed invariant or a dead trace returns a typed
// *WedgeError instead of panicking.
//
// Deprecated: Use Execute with a RunSpec selecting Kernel.
func RunChecked(cfg *Config, kernel vasm.Kernel) (*stats.Stats, *arch.Machine, error) {
	out, err := Execute(RunSpec{Config: cfg, Kernel: kernel})
	if out == nil {
		return nil, nil, err
	}
	return out.Stats, out.Machine, err
}

// RunTrace drives the chip with an existing trace until HALT, panicking on
// a wedge.
//
// Deprecated: Use Execute with a RunSpec selecting Chip and Trace.
func (ch *Chip) RunTrace(tr *vasm.Trace) {
	if err := ch.RunTraceChecked(tr); err != nil {
		panic(err)
	}
}

// RunTraceChecked drives the chip with an existing trace until HALT,
// returning a *WedgeError if the run fails.
//
// Deprecated: Use Execute with a RunSpec selecting Chip and Trace.
func (ch *Chip) RunTraceChecked(tr *vasm.Trace) error {
	_, err := Execute(RunSpec{Chip: ch, Trace: tr})
	return err
}

// nextWake returns the earliest cycle after now at which any component can
// change state, short-circuiting as soon as one component wants the very next
// cycle. All completion wheels key events by exact cycle, so jumping the
// clock to this value (and no further) fires every event single-stepping
// would have fired, in the same order.
func (ch *Chip) nextWake(now uint64) uint64 {
	wake := ch.c.NextWake(now)
	if wake == now+1 {
		return wake
	}
	if w := ch.z.NextWake(now); w < wake {
		wake = w
	}
	if wake == now+1 {
		return wake
	}
	if w := ch.l2.NextWake(now); w < wake {
		wake = w
	}
	if wake == now+1 {
		return wake
	}
	if ch.vb != nil {
		if w := ch.vb.NextWake(now); w < wake {
			wake = w
		}
	}
	return wake
}

// wake is nextWake plus fault injection: a campaign with DropWakePct
// inflates hints here, modelling the too-late-NextWake bug class both for
// the checker's audit (which must catch it) and for the fast-forward path
// (whose watchdog clamp must keep it from hanging).
func (ch *Chip) wake(now uint64) uint64 {
	w := ch.nextWake(now)
	if ch.inj != nil {
		w = ch.inj.InflateWake(now, w)
	}
	return w
}

// deadlineCheckMask throttles the wall-clock and trace-health polls to one
// every 4096 loop iterations; time.Now on every cycle would dominate the
// simulator's own work.
const deadlineCheckMask = 4095

// anyBusy reports whether any component still has in-flight background work
// (the post-HALT drain condition), evaluated once per call site.
func (ch *Chip) anyBusy() bool {
	return ch.z.Busy() || ch.l2.Busy() || ch.c.Busy() || (ch.vb != nil && ch.vb.Busy())
}

// runBound drives the machine until every thread halts, then drains
// background traffic. trs are the bound traces, polled for producer-side
// errors so a kernel that dies mid-trace (and will therefore never emit
// HALT) is reported promptly rather than after a full watchdog window.
//
// Two engines implement it. The default is the event-driven wheel loop
// (runWheel): every component schedules its own completions on an O(1)
// hierarchical timing wheel, the chip jumps straight to the earliest due
// cycle and ticks only the components with work. Observed runs — the
// sampler (fixed-cycle snapshots), the checker (per-cycle hint audit), the
// ffVerify test harness and configurations pinned via PinSingleStep — take
// the legacy loop below, which ticks every component every cycle. The two
// engines are bit-identical on every statistic (see TestFastForwardBitIdentical
// and the golden-sweep guard); the wheel is purely a wall-clock win.
func (ch *Chip) runBound(trs []*vasm.Trace) error {
	if ch.ff && ch.series == nil && ch.chk == nil && !ffVerify {
		return ch.runWheel(trs)
	}
	return ch.runStep(trs)
}

// runStep is the legacy chip loop: tick every component every cycle, with an
// optional idle-cycle fast-forward jump between active cycles.
func (ch *Chip) runStep(trs []*vasm.Trace) error {
	start := ch.now
	lastProgress := ch.now
	lastRetired := uint64(0)
	wd := ch.Cfg.Watchdog
	if wd == 0 {
		wd = watchdogWindow
	}
	var deadline time.Time
	if ch.Cfg.Deadline > 0 {
		deadline = time.Now().Add(ch.Cfg.Deadline)
	}
	// The sampler observes the machine on fixed cycles, so fast-forwarding
	// (which skips observably-idle cycles) would drop samples; the checker
	// single-steps so its hint audit can watch the claimed-idle windows.
	ff := ch.ff && ch.series == nil && ch.chk == nil
	iter := uint64(0)
	for !ch.c.Halted() {
		ch.now++
		cy := ch.now
		ch.z.Tick(cy)
		ch.l2.Tick(cy)
		if ch.vb != nil {
			ch.vb.Tick(cy)
		}
		ch.c.Tick(cy)
		ch.sample()

		if retired := ch.Stats.ScalarIns + ch.Stats.VectorIns; retired != lastRetired {
			lastRetired = retired
			lastProgress = cy
		} else if cy-lastProgress > wd {
			return ch.wedge(ReasonWatchdog, wd)
		}

		if ch.chk.Violated() {
			return ch.wedge(ReasonInvariant, wd)
		}

		if iter&deadlineCheckMask == 0 {
			if err := ch.checkHealth(trs, deadline, wd); err != nil {
				return err
			}
		}
		iter++

		if ffVerify {
			if ffSkipFrom != 0 {
				if ch.Reg.Epoch() != ffEpochAt && cy < ffSkipTo {
					ffViolations = append(ffViolations,
						fmt.Sprintf("%s: hint at cy=%d claimed idle until %d, but stats changed at cy=%d",
							ch.Cfg.Name, ffSkipFrom, ffSkipTo, cy))
					ffSkipFrom = 0
				} else if cy >= ffSkipTo-1 {
					ffSkipFrom = 0
				}
			}
			if ffSkipFrom == 0 && !ch.c.Halted() {
				if wake := ch.wake(cy); wake > cy+1 {
					ffSkipFrom, ffSkipTo = cy, wake
					ffEpochAt = ch.Reg.Epoch()
				}
			}
		}
		if ch.chk != nil {
			// Same audit as ffVerify, but per-chip and reported through the
			// checker: single-step while checking that no counter moves
			// inside a window the hints claimed was idle (the registry epoch
			// advances on every counter mutation, so one compare replaces the
			// old whole-struct equality). This is what catches a seeded (or
			// real) too-late NextWake.
			if ch.ckSkipFrom != 0 {
				if ch.Reg.Epoch() != ch.ckEpochAt && cy < ch.ckSkipTo {
					ch.chk.Failf("nextwake", cy,
						"hint at cy=%d claimed idle until %d, but stats changed at cy=%d",
						ch.ckSkipFrom, ch.ckSkipTo, cy)
					return ch.wedge(ReasonInvariant, wd)
				} else if cy >= ch.ckSkipTo-1 {
					ch.ckSkipFrom = 0
				}
			}
			if ch.ckSkipFrom == 0 && !ch.c.Halted() {
				if wake := ch.wake(cy); wake > cy+1 {
					ch.ckSkipFrom, ch.ckSkipTo = cy, wake
					ch.ckEpochAt = ch.Reg.Epoch()
				}
			}
		}
		// The jump must not move the clock once the loop is about to exit —
		// HALT retiring this very cycle means the machine is done, not idle.
		if ff && !ch.c.Halted() {
			if wake := ch.wake(cy); wake > cy+1 {
				// Never jump past the watchdog boundary: a genuinely wedged
				// machine must still trip the watchdog at the same cycle a
				// single-stepped run would.
				if limit := lastProgress + wd + 1; wake > limit {
					wake = limit
				}
				if wake > cy+1 {
					ch.now = wake - 1 // the loop header ticks cycle `wake`
				}
			}
		}
	}
	// Timing stops when HALT retires, like a STREAM timer. Phase cycles are
	// accumulated so an ROI phase reports only its own duration.
	ch.Stats.Cycles += ch.now - start
	haltCy := ch.now
	// Let outstanding background work (write buffers, prefetches) drain so
	// the traffic accounting is complete and the next phase starts with a
	// quiescent machine. Busy() is evaluated once per iteration (after the
	// ticks) and reused for both the fast-forward exit guard and the next
	// loop condition — the four-component check walks every queue, so the
	// old double evaluation paid it twice per drained cycle.
	busy := ch.anyBusy()
	for ch.now-haltCy < 10_000_000 && busy {
		ch.now++
		cy := ch.now
		ch.z.Tick(cy)
		ch.l2.Tick(cy)
		if ch.vb != nil {
			ch.vb.Tick(cy)
		}
		ch.c.Tick(cy)
		if iter&deadlineCheckMask == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return ch.wedge(ReasonDeadline, wd)
		}
		iter++
		// Same exit guard as above: once the machine goes quiescent the loop
		// must stop with ch.now exactly where single-stepping would leave it
		// (ch.now seeds the next ROI phase's clock).
		busy = ch.anyBusy()
		if ff && busy {
			if wake := ch.wake(cy); wake > cy+1 {
				if limit := haltCy + 10_000_000; wake > limit {
					wake = limit
				}
				if wake > cy+1 {
					ch.now = wake - 1
				}
			}
		}
	}
	return nil
}

// runWheel is the event-driven chip loop. Each iteration asks every
// component for its next wake cycle (an O(1) wheel lookup plus queue-head
// checks), jumps the clock straight to the earliest one, and ticks only the
// components that are due there.
//
// Bit-identity with single-stepping follows from the per-component NextWake
// soundness contract (audited by ffVerify and the checker): ticking a
// component before its reported wake cycle is a no-op, so skipping those
// ticks cannot change any statistic. One asymmetry needs care: components
// tick in the fixed order z → l2 → vb → core, and a tick may synchronously
// mutate a component *later* in that order (a Zbox completion delivers an L2
// fill; a Vbox completion calls the core's VectorDone), making the later
// component's tick at the same cycle meaningful even though its own wake
// hint said idle. Mutations against an *earlier* component land after its
// tick under single-stepping and are therefore next-cycle by construction.
// Hence the rule: the first due component and every component after it in
// tick order run; only the prefix strictly before the first due component is
// skipped.
//
// The watchdog clamp mirrors the legacy loop: the clock never jumps past
// lastProgress+wd+1, so a wedged machine (including one wedged by a seeded
// too-late NextWake, whose events the component wheels then strand) trips
// the watchdog at exactly the cycle single-stepping would.
func (ch *Chip) runWheel(trs []*vasm.Trace) error {
	start := ch.now
	lastProgress := ch.now
	// Unlike the legacy loop's zero sentinel (which records one spurious
	// "progress" event on the first tick of any phase after the first), the
	// watchdog baseline starts from the counters as they stand. A healthy
	// run is bit-identical either way — the baseline only times wedges.
	lastRetired := ch.Stats.ScalarIns + ch.Stats.VectorIns
	wd := ch.Cfg.Watchdog
	if wd == 0 {
		wd = watchdogWindow
	}
	var deadline time.Time
	if ch.Cfg.Deadline > 0 {
		deadline = time.Now().Add(ch.Cfg.Deadline)
	}
	const idle = ^uint64(0)
	iter := uint64(0)
	for !ch.c.Halted() {
		now := ch.now
		dz := ch.z.NextWake(now)
		dl := ch.l2.NextWake(now)
		dv := idle
		if ch.vb != nil {
			dv = ch.vb.NextWake(now)
		}
		dc := ch.c.NextWake(now)
		wake := min(dz, dl, dv, dc)
		if wheelDebug {
			next := now + 1
			if dz <= next {
				wheelWhy[0]++
			}
			if dl <= next {
				wheelWhy[1]++
			}
			if dv <= next {
				wheelWhy[2]++
			}
			if dc <= next {
				wheelWhy[3]++
			}
		}
		if ch.inj != nil {
			wake = ch.inj.InflateWake(now, wake)
		}
		if limit := lastProgress + wd + 1; wake > limit {
			wake = limit
		}
		cy := now + 1
		if wake > cy {
			cy = wake
		}
		ch.now = cy
		switch {
		case dz <= cy:
			ch.z.Tick(cy)
			fallthrough
		case dl <= cy:
			ch.l2.Tick(cy)
			fallthrough
		case dv <= cy:
			if ch.vb != nil {
				ch.vb.Tick(cy)
			}
			fallthrough
		case dc <= cy:
			ch.c.Tick(cy)
		}

		if retired := ch.Stats.ScalarIns + ch.Stats.VectorIns; retired != lastRetired {
			lastRetired = retired
			lastProgress = cy
		} else if cy-lastProgress > wd {
			return ch.wedge(ReasonWatchdog, wd)
		}

		if iter&deadlineCheckMask == 0 {
			if err := ch.checkHealth(trs, deadline, wd); err != nil {
				return err
			}
		}
		iter++
	}
	if wheelDebug {
		fmt.Fprintf(os.Stderr, "wheel: %d cycles in %d iterations (%.2f cyc/iter) due z=%d l2=%d vb=%d core=%d\n", ch.now-start, iter, float64(ch.now-start)/float64(iter), wheelWhy[0], wheelWhy[1], wheelWhy[2], wheelWhy[3])
	}
	ch.Stats.Cycles += ch.now - start
	haltCy := ch.now
	for ch.now-haltCy < 10_000_000 && ch.anyBusy() {
		now := ch.now
		dz := ch.z.NextWake(now)
		dl := ch.l2.NextWake(now)
		dv := idle
		if ch.vb != nil {
			dv = ch.vb.NextWake(now)
		}
		dc := ch.c.NextWake(now)
		wake := min(dz, dl, dv, dc)
		if ch.inj != nil {
			wake = ch.inj.InflateWake(now, wake)
		}
		// A busy component whose wake hint is beyond the drain budget (or a
		// fault-inflated hint) must leave the clock exactly where the legacy
		// loop's clamp would: at the drain cutoff.
		if limit := haltCy + 10_000_000; wake > limit {
			wake = limit
		}
		cy := now + 1
		if wake > cy {
			cy = wake
		}
		ch.now = cy
		switch {
		case dz <= cy:
			ch.z.Tick(cy)
			fallthrough
		case dl <= cy:
			ch.l2.Tick(cy)
			fallthrough
		case dv <= cy:
			if ch.vb != nil {
				ch.vb.Tick(cy)
			}
			fallthrough
		case dc <= cy:
			ch.c.Tick(cy)
		}
		if iter&deadlineCheckMask == 0 && !deadline.IsZero() && time.Now().After(deadline) {
			return ch.wedge(ReasonDeadline, wd)
		}
		iter++
	}
	return nil
}

// checkHealth is the periodic (every-4096-iterations) poll for conditions
// the cycle loop itself cannot see: a blown wall-clock deadline and a trace
// whose producer died (which would otherwise spin until the watchdog).
func (ch *Chip) checkHealth(trs []*vasm.Trace, deadline time.Time, wd uint64) error {
	if !deadline.IsZero() && time.Now().After(deadline) {
		return ch.wedge(ReasonDeadline, wd)
	}
	for _, tr := range trs {
		if err := tr.Err(); err != nil {
			w := ch.wedge(ReasonTrace, wd)
			w.Cause = err
			return w
		}
	}
	return nil
}

// RunROI runs setup (cache warmup, data preloading) and then the region of
// interest on the same chip, returning statistics for the ROI alone — the
// equivalent of starting the STREAM timer after the warm-up pass. Setup may
// be nil. RunROI panics on a wedge; RunROIChecked returns it.
//
// Deprecated: Use Execute with a RunSpec selecting Setup and Kernel.
func RunROI(cfg *Config, setup, roi vasm.Kernel) (*stats.Stats, *arch.Machine) {
	st, m, err := RunROIChecked(cfg, setup, roi)
	if err != nil {
		panic(err)
	}
	return st, m
}

// RunROIChecked is RunROI with the structured error surface. A failure in
// either phase (setup or ROI) returns a *WedgeError.
//
// Deprecated: Use Execute with a RunSpec selecting Setup and Kernel.
func RunROIChecked(cfg *Config, setup, roi vasm.Kernel) (*stats.Stats, *arch.Machine, error) {
	out, err := Execute(RunSpec{Config: cfg, Setup: setup, Kernel: roi})
	if out == nil {
		return nil, nil, err
	}
	return out.Stats, out.Machine, err
}

// RunSMT runs one kernel per hardware thread simultaneously on a single
// chip — the §3.3 design constraint ("to avoid excessive burden onto the
// operating system, the Vbox was also multithreaded") exercised. Each
// thread gets its own architectural machine and address space; caches,
// Vbox and memory system are shared. Returns the shared statistics and the
// per-thread machines. RunSMT panics on a wedge; RunSMTChecked returns it.
//
// Deprecated: Use Execute with a RunSpec selecting Kernels.
func RunSMT(cfg *Config, kernels []vasm.Kernel) (*stats.Stats, []*arch.Machine) {
	st, ms, err := RunSMTChecked(cfg, kernels)
	if err != nil {
		panic(err)
	}
	return st, ms
}

// RunSMTChecked is RunSMT with the structured error surface.
//
// Deprecated: Use Execute with a RunSpec selecting Kernels.
func RunSMTChecked(cfg *Config, kernels []vasm.Kernel) (*stats.Stats, []*arch.Machine, error) {
	out, err := Execute(RunSpec{Config: cfg, Kernels: kernels})
	if out == nil {
		return nil, nil, err
	}
	return out.Stats, out.Machines, err
}

// RunTraces drives the chip with one trace per hardware thread until every
// thread halts, panicking on a wedge.
//
// Deprecated: Use Execute with a RunSpec selecting Chip and Traces.
func (ch *Chip) RunTraces(trs []*vasm.Trace) {
	if err := ch.RunTracesChecked(trs); err != nil {
		panic(err)
	}
}

// RunTracesChecked is RunTraces with the structured error surface.
//
// Deprecated: Use Execute with a RunSpec selecting Chip and Traces.
func (ch *Chip) RunTracesChecked(trs []*vasm.Trace) error {
	_, err := Execute(RunSpec{Chip: ch, Traces: trs})
	return err
}

// sample pushes one cycle-interval point into the series ring when the
// sampler is armed and the clock sits on a sample boundary. IPC and RawBytes
// are interval quantities (since the previous boundary); gauges are read
// through the registry, in registration order.
func (ch *Chip) sample() {
	if ch.series == nil || ch.now%ch.series.Every() != 0 {
		return
	}
	every := ch.series.Every()
	retired := ch.Stats.ScalarIns + ch.Stats.VectorIns
	raw := ch.Stats.RawMemBytes()
	ch.gaugeScratch = ch.Reg.ReadGaugeValues(ch.now, ch.gaugeScratch)
	ch.series.Add(metrics.Point{
		Cycle:    ch.now,
		Retired:  retired,
		IPC:      float64(retired-ch.lastRetired) / float64(every),
		RawBytes: raw - ch.lastRawBytes,
		Gauges:   ch.gaugeScratch,
	})
	ch.lastRetired = retired
	ch.lastRawBytes = raw
}
