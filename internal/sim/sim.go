// Package sim assembles the whole-chip simulator and defines the four
// machine configurations of Table 3 (EV8, EV8+, T, T4) plus the T10 point
// of Figure 8. A Chip runs one hand-coded kernel trace to completion and
// returns the statistics the evaluation harness turns into the paper's
// tables and figures.
package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/l2"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/vasm"
	"repro/internal/vbox"
	"repro/internal/zbox"
)

// Config is a whole-machine configuration.
type Config struct {
	Name   string
	CPUGHz float64

	HasVbox bool

	Core core.Config
	Vbox vbox.Config
	L2   l2.Config
	Zbox zbox.Config
}

// Chip is one assembled machine.
type Chip struct {
	Cfg   *Config
	Stats *stats.Stats

	z  *zbox.Zbox
	l2 *l2.L2
	vb *vbox.VBox
	c  *core.Core

	now uint64 // global cycle, shared across RunTrace phases

	ff bool // idle-cycle fast-forward enabled

	sampleEvery uint64
	onSample    func(Sample)
}

// FastForward is the package-wide default for the idle-cycle fast-forward:
// when every component reports it is blocked on a scheduled completion event,
// the simulator jumps the clock straight to the earliest such event instead
// of ticking through dead cycles. The optimisation is a pure wall-clock win —
// retired-instruction counts, Stats.Cycles and every queue-contention effect
// are bit-identical to single-stepping (see the A/B guard test). Chips
// snapshot the value at New; flip a single chip with SetFastForward.
var FastForward = true

// ffVerify, when enabled (tests only), runs the simulator single-stepped but
// still computes every fast-forward hint, checking that no statistic changes
// inside a window the hints claimed was idle. A violation means a NextWake
// returned a too-late cycle — exactly the class of bug that would silently
// skew results.
var (
	ffVerify     bool
	ffViolations []string
	ffSkipFrom   uint64
	ffSkipTo     uint64
	ffStatsAt    stats.Stats
)

// setFFVerify arms or disarms hint verification and returns the violations
// recorded so far (used by the soundness guard test).
func setFFVerify(on bool) []string {
	ffVerify, ffSkipFrom = on, 0
	v := ffViolations
	ffViolations = nil
	return v
}

// New assembles a chip from cfg.
func New(cfg *Config) *Chip {
	st := &stats.Stats{}
	z := zbox.New(cfg.Zbox, st)
	l2c := l2.New(cfg.L2, st, z)
	var vb *vbox.VBox
	var vu core.VectorUnit
	if cfg.HasVbox {
		vb = vbox.New(cfg.Vbox, st, l2c)
		vu = vb
	}
	c := core.New(cfg.Core, st, l2c, vu)
	if vb != nil {
		vb.OnDone = c.VectorDone
	}
	return &Chip{Cfg: cfg, Stats: st, z: z, l2: l2c, vb: vb, c: c, ff: FastForward}
}

// SetFastForward overrides the package default for this chip (the sampler
// also disables it implicitly, since samples are taken on fixed cycles).
func (ch *Chip) SetFastForward(on bool) { ch.ff = on }

// watchdogWindow is how many cycles of zero progress trip the deadlock
// detector.
const watchdogWindow = 2_000_000

// Run executes the kernel on a fresh machine state and returns the
// statistics. The kernel runs functionally in a streaming trace; the chip
// model consumes it cycle by cycle until the HALT marker retires.
func Run(cfg *Config, kernel vasm.Kernel) (*stats.Stats, *arch.Machine) {
	m := arch.New(mem.New())
	chip := New(cfg)
	tr := vasm.NewTrace(m, kernel)
	defer tr.Close()
	chip.RunTrace(tr)
	return chip.Stats, m
}

// RunTrace drives the chip with an existing trace until HALT.
func (ch *Chip) RunTrace(tr *vasm.Trace) {
	ch.c.Bind(tr)
	ch.runBound()
}

// nextWake returns the earliest cycle after now at which any component can
// change state, short-circuiting as soon as one component wants the very next
// cycle. All completion wheels key events by exact cycle, so jumping the
// clock to this value (and no further) fires every event single-stepping
// would have fired, in the same order.
func (ch *Chip) nextWake(now uint64) uint64 {
	wake := ch.c.NextWake(now)
	if wake == now+1 {
		return wake
	}
	if w := ch.z.NextWake(now); w < wake {
		wake = w
	}
	if wake == now+1 {
		return wake
	}
	if w := ch.l2.NextWake(now); w < wake {
		wake = w
	}
	if wake == now+1 {
		return wake
	}
	if ch.vb != nil {
		if w := ch.vb.NextWake(now); w < wake {
			wake = w
		}
	}
	return wake
}

func (ch *Chip) runBound() {
	start := ch.now
	lastProgress := ch.now
	lastRetired := uint64(0)
	// The sampler observes the machine on fixed cycles, so fast-forwarding
	// (which skips observably-idle cycles) would drop samples.
	ff := ch.ff && !(ch.onSample != nil && ch.sampleEvery > 0)
	for !ch.c.Halted() {
		ch.now++
		cy := ch.now
		ch.z.Tick(cy)
		ch.l2.Tick(cy)
		if ch.vb != nil {
			ch.vb.Tick(cy)
		}
		ch.c.Tick(cy)
		ch.sample()

		if retired := ch.Stats.ScalarIns + ch.Stats.VectorIns; retired != lastRetired {
			lastRetired = retired
			lastProgress = cy
		} else if cy-lastProgress > watchdogWindow {
			panic(fmt.Sprintf("sim(%s): no retirement progress for %d cycles at cycle %d (%d insts retired)",
				ch.Cfg.Name, watchdogWindow, cy, lastRetired))
		}

		if ffVerify {
			if ffSkipFrom != 0 {
				if *ch.Stats != ffStatsAt && cy < ffSkipTo {
					ffViolations = append(ffViolations,
						fmt.Sprintf("%s: hint at cy=%d claimed idle until %d, but stats changed at cy=%d",
							ch.Cfg.Name, ffSkipFrom, ffSkipTo, cy))
					ffSkipFrom = 0
				} else if cy >= ffSkipTo-1 {
					ffSkipFrom = 0
				}
			}
			if ffSkipFrom == 0 && !ch.c.Halted() {
				if wake := ch.nextWake(cy); wake > cy+1 {
					ffSkipFrom, ffSkipTo = cy, wake
					ffStatsAt = *ch.Stats
				}
			}
		}
		// The jump must not move the clock once the loop is about to exit —
		// HALT retiring this very cycle means the machine is done, not idle.
		if ff && !ch.c.Halted() {
			if wake := ch.nextWake(cy); wake > cy+1 {
				// Never jump past the watchdog boundary: a genuinely wedged
				// machine must still trip the panic at the same cycle a
				// single-stepped run would.
				if limit := lastProgress + watchdogWindow + 1; wake > limit {
					wake = limit
				}
				if wake > cy+1 {
					ch.now = wake - 1 // the loop header ticks cycle `wake`
				}
			}
		}
	}
	// Timing stops when HALT retires, like a STREAM timer. Phase cycles are
	// accumulated so an ROI phase reports only its own duration.
	ch.Stats.Cycles += ch.now - start
	haltCy := ch.now
	// Let outstanding background work (write buffers, prefetches) drain so
	// the traffic accounting is complete and the next phase starts with a
	// quiescent machine.
	for ch.now-haltCy < 10_000_000 && (ch.z.Busy() || ch.l2.Busy() || ch.c.Busy() || (ch.vb != nil && ch.vb.Busy())) {
		ch.now++
		cy := ch.now
		ch.z.Tick(cy)
		ch.l2.Tick(cy)
		if ch.vb != nil {
			ch.vb.Tick(cy)
		}
		ch.c.Tick(cy)
		// Same exit guard as above: once the machine goes quiescent the loop
		// must stop with ch.now exactly where single-stepping would leave it
		// (ch.now seeds the next ROI phase's clock).
		if ff && (ch.z.Busy() || ch.l2.Busy() || ch.c.Busy() || (ch.vb != nil && ch.vb.Busy())) {
			if wake := ch.nextWake(cy); wake > cy+1 {
				if limit := haltCy + 10_000_000; wake > limit {
					wake = limit
				}
				if wake > cy+1 {
					ch.now = wake - 1
				}
			}
		}
	}
}

// RunROI runs setup (cache warmup, data preloading) and then the region of
// interest on the same chip, returning statistics for the ROI alone — the
// equivalent of starting the STREAM timer after the warm-up pass. Either
// kernel may be nil.
func RunROI(cfg *Config, setup, roi vasm.Kernel) (*stats.Stats, *arch.Machine) {
	m := arch.New(mem.New())
	chip := New(cfg)
	if setup != nil {
		tr := vasm.NewTrace(m, func(b *vasm.Builder) { setup(b); b.Halt() })
		chip.RunTrace(tr)
		tr.Close()
		chip.c.ResetHalt()
	}
	before := *chip.Stats
	tr := vasm.NewTrace(m, roi)
	defer tr.Close()
	chip.RunTrace(tr)
	roiStats := stats.Sub(chip.Stats, &before)
	return roiStats, m
}

// RunSMT runs one kernel per hardware thread simultaneously on a single
// chip — the §3.3 design constraint ("to avoid excessive burden onto the
// operating system, the Vbox was also multithreaded") exercised. Each
// thread gets its own architectural machine and address space; caches,
// Vbox and memory system are shared. Returns the shared statistics and the
// per-thread machines.
func RunSMT(cfg *Config, kernels []vasm.Kernel) (*stats.Stats, []*arch.Machine) {
	chip := New(cfg)
	machines := make([]*arch.Machine, len(kernels))
	traces := make([]*vasm.Trace, len(kernels))
	for i, k := range kernels {
		machines[i] = arch.New(mem.New())
		traces[i] = vasm.NewTrace(machines[i], k)
		defer traces[i].Close()
	}
	chip.RunTraces(traces)
	return chip.Stats, machines
}

// RunTraces drives the chip with one trace per hardware thread until every
// thread halts.
func (ch *Chip) RunTraces(trs []*vasm.Trace) {
	ch.c.BindSMT(trs)
	ch.runBound()
}

// Sample is a periodic utilization snapshot for profiling (tarsim -sample).
type Sample struct {
	Cycle                           uint64
	VPortsBusy, VMemInFly, VQueued  int
	L2ReadQ, L2WriteQ, L2Retry, MAF int
	MemQueue                        int
	Retired                         uint64
}

// OnSample, when set together with SampleEvery, receives a snapshot every
// SampleEvery cycles during RunTrace.
func (ch *Chip) SetSampler(every uint64, fn func(Sample)) {
	ch.sampleEvery = every
	ch.onSample = fn
}

func (ch *Chip) sample() {
	if ch.onSample == nil || ch.sampleEvery == 0 || ch.now%ch.sampleEvery != 0 {
		return
	}
	s := Sample{Cycle: ch.now, Retired: ch.Stats.ScalarIns + ch.Stats.VectorIns}
	if ch.vb != nil {
		u := ch.vb.Snapshot(ch.now)
		s.VPortsBusy, s.VMemInFly, s.VQueued = u.PortsBusy, u.MemInFly, u.Queued
	}
	s.L2ReadQ, s.L2WriteQ, s.L2Retry, s.MAF = ch.l2.Depths()
	s.MemQueue = ch.z.QueueDepth()
	ch.onSample(s)
}
