package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/vasm"
)

// ffCase pairs a kernel with the configurations able to run it (vector
// kernels need a Vbox).
type ffCase struct {
	name    string
	kernel  vasm.Kernel
	configs []*Config
}

// ffCases exercise every wake-up source the fast-forward hints must model:
// vector port occupancy, Vbox dispatch backpressure, the L1/MSHR scalar load
// path, write-buffer drains (DRAINM), branches, and the memory controller's
// queuing. The mixed scalar-FP + vector-scalar kernel mirrors the pattern
// (fft) that exposed the V-bus staging bug during development.
func ffCases() []ffCase {
	return []ffCase{
		{"vector-arith", func(b *vasm.Builder) {
			for i := 0; i < 64; i++ {
				b.VV(isa.OpVADDQ, isa.V(i%8), isa.V(8+i%8), isa.V(16+i%8))
			}
			b.Halt()
		}, []*Config{T()}},
		{"mixed-scalar-vector", func(b *vasm.Builder) {
			base := b.AllocF64(4096, 0)
			b.Li(isa.R(1), int64(base))
			b.SetVLImm(isa.R(9), 64)
			b.Loop(isa.R(2), 16, func(iter int) {
				b.LdT(isa.F(1), isa.R(1), int64(iter*8))
				b.Op3(isa.OpADDT, isa.F(2), isa.F(1), isa.F(1))
				b.Op3(isa.OpMULT, isa.F(3), isa.F(2), isa.F(1))
				b.VLdQ(isa.V(1), isa.R(1), int64(iter*512))
				b.VS(isa.OpVSMULT, isa.V(2), isa.V(1), isa.F(3))
				b.VV(isa.OpVADDT, isa.V(3), isa.V(2), isa.V(1))
				b.VStQ(isa.V(3), isa.R(1), int64(iter*512))
				b.StT(isa.F(3), isa.R(1), int64(iter*8))
			})
			b.DrainM()
			b.Halt()
		}, []*Config{T()}},
		{"vector-memory-bound", func(b *vasm.Builder) {
			// Strided traffic well past the L2: long Zbox waits are exactly
			// the windows the fast-forward jumps over.
			base := b.AllocF64(1<<17, 0)
			b.Li(isa.R(1), int64(base))
			b.SetVLImm(isa.R(9), 128)
			b.SetVSImm(isa.R(10), 1024)
			b.Loop(isa.R(2), 8, func(iter int) {
				b.VLdQ(isa.V(1), isa.R(1), int64(iter*8))
				b.VV(isa.OpVADDT, isa.V(2), isa.V(1), isa.V(1))
				b.VStQ(isa.V(2), isa.R(1), int64(iter*8))
			})
			b.Halt()
		}, []*Config{T()}},
		{"scalar-loads-and-stores", func(b *vasm.Builder) {
			base := b.AllocF64(1<<15, 0)
			b.Li(isa.R(1), int64(base))
			b.Loop(isa.R(2), 64, func(iter int) {
				b.LdT(isa.F(1), isa.R(1), int64(iter*512))
				b.Op3(isa.OpADDT, isa.F(2), isa.F(1), isa.F(1))
				b.StT(isa.F(2), isa.R(1), int64(iter*512+8))
			})
			b.DrainM()
			b.Halt()
		}, []*Config{T(), EV8()}},
	}
}

func runFF(cfg *Config, k vasm.Kernel, ff bool) *stats.Stats {
	chip := New(cfg)
	chip.SetFastForward(ff)
	m := arch.New(mem.New())
	tr := vasm.NewTrace(m, k)
	defer tr.Close()
	chip.RunTrace(tr)
	return chip.Stats
}

// TestFastForwardHintsSound single-steps each kernel while auditing every
// fast-forward hint: if any statistic changes inside a window a NextWake
// claimed was idle, a real jump would have skipped real work.
func TestFastForwardHintsSound(t *testing.T) {
	for _, c := range ffCases() {
		for _, cfg := range c.configs {
			setFFVerify(true)
			runFF(cfg, c.kernel, false) // single-step so the audit sees every cycle
			for _, v := range setFFVerify(false) {
				t.Errorf("%s/%s: %s", cfg.Name, c.name, v)
			}
		}
	}
}

// TestFastForwardBitIdentical runs each kernel with the fast-forward on and
// off and requires the complete statistics records to match exactly — the
// optimisation must be invisible in simulated time.
func TestFastForwardBitIdentical(t *testing.T) {
	for _, c := range ffCases() {
		for _, cfg := range c.configs {
			on := runFF(cfg, c.kernel, true)
			off := runFF(cfg, c.kernel, false)
			if *on != *off {
				t.Errorf("%s/%s: fast-forward changed the statistics:\n  on:  %+v\n  off: %+v",
					cfg.Name, c.name, *on, *off)
			}
		}
	}
}
