package sim

import (
	"fmt"
	"strings"

	"repro/internal/check"
)

// Occupancy is a per-component queue snapshot taken when a run fails. It is
// the first thing to read when diagnosing a wedge: the component whose
// queues are full (or suspiciously empty) is where progress stopped.
type Occupancy struct {
	// Core.
	ROB, Ready, Blocked, WriteBuf, MSHR int
	// Vbox (zero for pure-EV8 configurations).
	VPortsBusy, VMemInFly, VQueued, VSlicesWait int
	// L2.
	L2ReadQ, L2WriteQ, L2Retry, MAF int
	// Memory controller.
	MemQueue int
}

func (o Occupancy) String() string {
	return fmt.Sprintf(
		"core[rob=%d ready=%d blocked=%d wb=%d mshr=%d] vbox[ports=%d mem=%d q=%d slices=%d] l2[rd=%d wr=%d retry=%d maf=%d] mem[q=%d]",
		o.ROB, o.Ready, o.Blocked, o.WriteBuf, o.MSHR,
		o.VPortsBusy, o.VMemInFly, o.VQueued, o.VSlicesWait,
		o.L2ReadQ, o.L2WriteQ, o.L2Retry, o.MAF,
		o.MemQueue)
}

// Wedge reasons.
const (
	ReasonWatchdog  = "watchdog"  // no retirement progress for a full window
	ReasonDeadline  = "deadline"  // wall-clock budget exhausted
	ReasonInvariant = "invariant" // the checker caught a broken invariant
	ReasonTrace     = "trace"     // the kernel's functional execution died
)

// WedgeError is the structured failure report of a checked run: which
// machine, why it stopped, the simulated cycle, how far the program got
// (retired count plus the last-retired instruction's sequence number and
// static-site id — the PC stand-in), and the queue occupancy of every
// component at the moment of failure.
type WedgeError struct {
	Config   string // machine configuration name
	Reason   string // one of the Reason* constants
	Cycle    uint64 // simulated cycle at failure
	Window   uint64 // watchdog window in effect (ReasonWatchdog)
	Retired  uint64 // instructions retired before the failure
	LastSeq  uint64 // sequence number of the last retired instruction
	LastSite uint32 // static-site id of the last retired instruction

	Occ Occupancy

	// Violation is set for ReasonInvariant.
	Violation *check.Violation
	// Cause is set for ReasonTrace (typically a *vasm.BuildError).
	Cause error
}

func (e *WedgeError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim(%s): %s at cycle %d", e.Config, e.reasonText(), e.Cycle)
	fmt.Fprintf(&b, " (%d insts retired, last seq=%d site=%d)", e.Retired, e.LastSeq, e.LastSite)
	fmt.Fprintf(&b, "; occupancy %s", e.Occ)
	if e.Violation != nil {
		fmt.Fprintf(&b, "; %s", e.Violation.Error())
	}
	if e.Cause != nil {
		fmt.Fprintf(&b, "; cause: %s", e.Cause.Error())
	}
	return b.String()
}

func (e *WedgeError) reasonText() string {
	switch e.Reason {
	case ReasonWatchdog:
		return fmt.Sprintf("no retirement progress for %d cycles", e.Window)
	case ReasonDeadline:
		return "wall-clock deadline exceeded"
	case ReasonInvariant:
		return "invariant violation"
	case ReasonTrace:
		return "trace generation failed"
	default:
		return e.Reason
	}
}

// Unwrap exposes the underlying cause (a trace BuildError or a checker
// Violation) to errors.Is/As.
func (e *WedgeError) Unwrap() error {
	if e.Cause != nil {
		return e.Cause
	}
	if e.Violation != nil {
		return e.Violation
	}
	return nil
}

// occupancy snapshots every component's queues at the current cycle.
func (ch *Chip) occupancy() Occupancy {
	var o Occupancy
	o.ROB, o.Ready, o.Blocked, o.WriteBuf, o.MSHR = ch.c.Depths()
	if ch.vb != nil {
		u := ch.vb.Snapshot(ch.now)
		o.VPortsBusy, o.VMemInFly, o.VQueued, o.VSlicesWait =
			u.PortsBusy, u.MemInFly, u.Queued, u.SlicesWait
	}
	o.L2ReadQ, o.L2WriteQ, o.L2Retry, o.MAF = ch.l2.Depths()
	o.MemQueue = ch.z.QueueDepth()
	return o
}

// wedge assembles the failure report for the current machine state.
func (ch *Chip) wedge(reason string, window uint64) *WedgeError {
	seq, site := ch.c.LastRetired()
	return &WedgeError{
		Config:    ch.Cfg.Name,
		Reason:    reason,
		Cycle:     ch.now,
		Window:    window,
		Retired:   ch.Stats.ScalarIns + ch.Stats.VectorIns,
		LastSeq:   seq,
		LastSite:  site,
		Occ:       ch.occupancy(),
		Violation: ch.chk.Violation(),
	}
}
