package sim

import (
	"fmt"
	"strings"

	"repro/internal/check"
	"repro/internal/metrics"
)

// Occupancy is a per-component queue snapshot taken when a run fails: every
// occupancy gauge registered against the chip's metric registry, read at the
// failure cycle, in registration order. It is the first thing to read when
// diagnosing a wedge: the component whose queues are full (or suspiciously
// empty) is where progress stopped.
type Occupancy []metrics.GaugeSample

// String renders the samples grouped by component namespace:
// "zbox[queue=0] l2[read_q=3 ...] ... core[rob=126 ...]". Components appear
// in gauge-registration order, so the format tracks whatever the components
// register without this package enumerating their queues.
func (o Occupancy) String() string {
	var b strings.Builder
	lastComp := ""
	for _, g := range o {
		comp, metric, ok := strings.Cut(g.Name, ".")
		if !ok {
			comp, metric = "chip", g.Name
		}
		switch {
		case comp == lastComp:
			b.WriteByte(' ')
		case lastComp != "":
			fmt.Fprintf(&b, "] %s[", comp)
		default:
			fmt.Fprintf(&b, "%s[", comp)
		}
		fmt.Fprintf(&b, "%s=%d", metric, g.Value)
		lastComp = comp
	}
	if lastComp != "" {
		b.WriteByte(']')
	}
	return b.String()
}

// Wedge reasons.
const (
	ReasonWatchdog  = "watchdog"  // no retirement progress for a full window
	ReasonDeadline  = "deadline"  // wall-clock budget exhausted
	ReasonInvariant = "invariant" // the checker caught a broken invariant
	ReasonTrace     = "trace"     // the kernel's functional execution died
)

// WedgeError is the structured failure report of a checked run: which
// machine, why it stopped, the simulated cycle, how far the program got
// (retired count plus the last-retired instruction's sequence number and
// static-site id — the PC stand-in), and the queue occupancy of every
// component at the moment of failure.
type WedgeError struct {
	Config   string // machine configuration name
	Reason   string // one of the Reason* constants
	Cycle    uint64 // simulated cycle at failure
	Window   uint64 // watchdog window in effect (ReasonWatchdog)
	Retired  uint64 // instructions retired before the failure
	LastSeq  uint64 // sequence number of the last retired instruction
	LastSite uint32 // static-site id of the last retired instruction

	Occ Occupancy

	// Violation is set for ReasonInvariant.
	Violation *check.Violation
	// Cause is set for ReasonTrace (typically a *vasm.BuildError).
	Cause error
}

func (e *WedgeError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim(%s): %s at cycle %d", e.Config, e.reasonText(), e.Cycle)
	fmt.Fprintf(&b, " (%d insts retired, last seq=%d site=%d)", e.Retired, e.LastSeq, e.LastSite)
	fmt.Fprintf(&b, "; occupancy %s", e.Occ)
	if e.Violation != nil {
		fmt.Fprintf(&b, "; %s", e.Violation.Error())
	}
	if e.Cause != nil {
		fmt.Fprintf(&b, "; cause: %s", e.Cause.Error())
	}
	return b.String()
}

func (e *WedgeError) reasonText() string {
	switch e.Reason {
	case ReasonWatchdog:
		return fmt.Sprintf("no retirement progress for %d cycles", e.Window)
	case ReasonDeadline:
		return "wall-clock deadline exceeded"
	case ReasonInvariant:
		return "invariant violation"
	case ReasonTrace:
		return "trace generation failed"
	default:
		return e.Reason
	}
}

// Unwrap exposes the underlying cause (a trace BuildError or a checker
// Violation) to errors.Is/As.
func (e *WedgeError) Unwrap() error {
	if e.Cause != nil {
		return e.Cause
	}
	if e.Violation != nil {
		return e.Violation
	}
	return nil
}

// occupancy snapshots every registered occupancy gauge at the current cycle.
func (ch *Chip) occupancy() Occupancy {
	return Occupancy(ch.Reg.ReadGauges(ch.now))
}

// wedge assembles the failure report for the current machine state.
func (ch *Chip) wedge(reason string, window uint64) *WedgeError {
	seq, site := ch.c.LastRetired()
	return &WedgeError{
		Config:    ch.Cfg.Name,
		Reason:    reason,
		Cycle:     ch.now,
		Window:    window,
		Retired:   ch.Stats.ScalarIns + ch.Stats.VectorIns,
		LastSeq:   seq,
		LastSite:  site,
		Occ:       ch.occupancy(),
		Violation: ch.chk.Violation(),
	}
}
