package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/vasm"
)

// wedgeKernel is a long-running memory-bound vector kernel: plenty of
// pre-storm retirement, plenty of idle windows for the hint audit, and far
// too much remaining work to halt before an injected stall storm lands.
func wedgeKernel(b *vasm.Builder) {
	base := b.AllocF64(1<<16, 0)
	b.Li(isa.R(1), int64(base))
	b.SetVLImm(isa.R(9), 128)
	b.Loop(isa.R(2), 64, func(iter int) {
		b.VLdQ(isa.V(1), isa.R(1), int64(iter%8*1024))
		b.VV(isa.OpVADDT, isa.V(2), isa.V(1), isa.V(1))
		b.VStQ(isa.V(2), isa.R(1), int64(iter%8*1024))
	})
	b.Halt()
}

// TestWatchdogWedgeError: a stall storm guarantees a wedge; the watchdog
// must convert it into a diagnosable WedgeError instead of a hang or panic.
func TestWatchdogWedgeError(t *testing.T) {
	cfg := *T()
	cfg.Faults = &faults.Config{StallStormFrom: 300}
	cfg.Watchdog = 30_000
	_, _, err := RunChecked(&cfg, wedgeKernel)
	var w *WedgeError
	if !errors.As(err, &w) {
		t.Fatalf("err = %v (%T), want *WedgeError", err, err)
	}
	if w.Reason != ReasonWatchdog {
		t.Errorf("Reason = %q, want %q", w.Reason, ReasonWatchdog)
	}
	if w.Window != 30_000 {
		t.Errorf("Window = %d, want the configured 30000", w.Window)
	}
	if w.Cycle < 300 {
		t.Errorf("Cycle = %d, want after the cy-300 storm start", w.Cycle)
	}
	if w.Retired == 0 {
		t.Error("Retired = 0, want the pre-storm retirement count")
	}
	if !strings.Contains(w.Error(), "no retirement progress") {
		t.Errorf("Error() = %q missing the watchdog explanation", w.Error())
	}
	if !strings.Contains(w.Error(), "rob=") {
		t.Errorf("Error() = %q missing the occupancy snapshot", w.Error())
	}
}

// TestWatchdogWedgeFastForwardAgrees: the idle-cycle fast-forward clamps its
// jumps at the watchdog boundary, so a wedged machine reports the same
// verdict with the optimisation on or off.
func TestWatchdogWedgeFastForwardAgrees(t *testing.T) {
	run := func(ff bool) *WedgeError {
		cfg := *T()
		cfg.Faults = &faults.Config{StallStormFrom: 300}
		cfg.Watchdog = 30_000
		chip := New(&cfg)
		chip.SetFastForward(ff)
		m := arch.New(mem.New())
		tr := vasm.NewTrace(m, wedgeKernel)
		defer tr.Close()
		err := chip.RunTraceChecked(tr)
		var w *WedgeError
		if !errors.As(err, &w) {
			t.Fatalf("ff=%v: err = %v, want *WedgeError", ff, err)
		}
		return w
	}
	on, off := run(true), run(false)
	if on.Reason != off.Reason || on.Retired != off.Retired {
		t.Errorf("fast-forward changed the wedge verdict:\n  on:  %+v\n  off: %+v", on, off)
	}
}

// TestLegacyRunPanicsOnWedge: the historical surface is preserved — Run is a
// thin wrapper that panics with the same typed error RunChecked returns.
func TestLegacyRunPanicsOnWedge(t *testing.T) {
	cfg := *T()
	cfg.Faults = &faults.Config{StallStormFrom: 300}
	cfg.Watchdog = 30_000
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on a wedge")
		}
		if _, ok := r.(*WedgeError); !ok {
			t.Fatalf("Run panicked with %T, want *WedgeError", r)
		}
	}()
	Run(&cfg, wedgeKernel)
}

// TestDeadlineWedge: an expired wall-clock budget aborts promptly with the
// deadline reason, even on a healthy machine.
func TestDeadlineWedge(t *testing.T) {
	cfg := *T()
	cfg.Deadline = time.Nanosecond
	_, _, err := RunChecked(&cfg, wedgeKernel)
	var w *WedgeError
	if !errors.As(err, &w) {
		t.Fatalf("err = %v, want *WedgeError", err)
	}
	if w.Reason != ReasonDeadline {
		t.Errorf("Reason = %q, want %q", w.Reason, ReasonDeadline)
	}
}

// TestBrokenHintCaughtByChecker is the regression demanded by the integrity
// layer: seed the too-late-NextWake bug class and require the checker's
// hint audit to convict it as an invariant violation.
func TestBrokenHintCaughtByChecker(t *testing.T) {
	cfg := *T()
	cfg.Check = true
	cfg.Faults = &faults.Config{Seed: 42, DropWakePct: 100, DropWakeSpan: 64}
	_, _, err := RunChecked(&cfg, wedgeKernel)
	var w *WedgeError
	if !errors.As(err, &w) {
		t.Fatalf("seeded broken hints went undetected: err = %v", err)
	}
	if w.Reason != ReasonInvariant {
		t.Fatalf("Reason = %q, want %q", w.Reason, ReasonInvariant)
	}
	if w.Violation == nil || w.Violation.Invariant != "nextwake" {
		t.Fatalf("Violation = %+v, want the nextwake audit", w.Violation)
	}
}

// TestTraceDeathSurfacesAsWedge: a kernel that dies mid-trace never emits
// HALT; the health poll must report the positional build error promptly
// instead of spinning until the watchdog.
func TestTraceDeathSurfacesAsWedge(t *testing.T) {
	cfg := *T()
	_, _, err := RunChecked(&cfg, func(b *vasm.Builder) {
		b.Li(isa.R(1), 1234) // not 8-aligned
		b.LdT(isa.F(1), isa.R(1), 0)
		b.Halt()
	})
	var w *WedgeError
	if !errors.As(err, &w) {
		t.Fatalf("err = %v, want *WedgeError", err)
	}
	if w.Reason != ReasonTrace {
		t.Errorf("Reason = %q, want %q", w.Reason, ReasonTrace)
	}
	var be *vasm.BuildError
	if !errors.As(err, &be) {
		t.Fatalf("wedge does not wrap the *vasm.BuildError: %v", err)
	}
	if be.Seq != 2 {
		t.Errorf("BuildError.Seq = %d, want 2 (the ldt)", be.Seq)
	}
	if !strings.Contains(be.Error(), "unaligned") {
		t.Errorf("BuildError = %q missing the cause", be.Error())
	}
}

// TestCheckerCleanOnFFCases: the invariant checker must pass every kernel of
// the fast-forward soundness suite without a violation — the checker exists
// to catch bugs, not to manufacture them.
func TestCheckerCleanOnFFCases(t *testing.T) {
	for _, c := range ffCases() {
		for _, base := range c.configs {
			cfg := *base
			cfg.Check = true
			chip := New(&cfg)
			m := arch.New(mem.New())
			tr := vasm.NewTrace(m, c.kernel)
			if err := chip.RunTraceChecked(tr); err != nil {
				t.Errorf("%s/%s: %v", cfg.Name, c.name, err)
			}
			tr.Close()
		}
	}
}

// TestCheckedRunBitIdentical: enabling the checker must not change simulated
// time — it only observes.
func TestCheckedRunBitIdentical(t *testing.T) {
	for _, c := range ffCases() {
		base := c.configs[0]
		plain := runFF(base, c.kernel, false)
		cfg := *base
		cfg.Check = true
		chip := New(&cfg)
		m := arch.New(mem.New())
		tr := vasm.NewTrace(m, c.kernel)
		if err := chip.RunTraceChecked(tr); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		tr.Close()
		if *chip.Stats != *plain {
			t.Errorf("%s: checker changed the statistics:\n  checked: %+v\n  plain:   %+v",
				c.name, *chip.Stats, *plain)
		}
	}
}
