package sim

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/vasm"
)

// TestRandomKernelSoup generates random (but well-formed) instruction soup —
// scalar and vector arithmetic, strided and random memory, masks, vl/vs
// changes, DrainM, short loops — and runs it on every configuration. The
// assertion is liveness: the chip retires everything and halts without
// tripping the watchdog. This is the broadest deadlock hunter in the suite.
func TestRandomKernelSoup(t *testing.T) {
	const region = 1 << 20 // data region size (bytes), quadword-aligned ops
	soup := func(seed int64) vasm.Kernel {
		return func(b *vasm.Builder) {
			rng := rand.New(rand.NewSource(seed))
			base := isa.R(1)
			b.Li(base, 1<<20)
			b.SetVSImm(isa.R(9), 8)
			// A valid index vector for gathers/scatters.
			for i := 0; i < isa.VLMax; i++ {
				b.M.V[15][i] = uint64(rng.Intn(region/8)) * 8
			}
			strides := []int64{8, 16, 24, 40, 64, 8 * 16, 8 * 96}
			for n := 0; n < 600; n++ {
				switch rng.Intn(12) {
				case 0:
					b.SetVLImm(isa.R(9), 1+rng.Intn(isa.VLMax))
				case 1:
					st := strides[rng.Intn(len(strides))]
					// Keep strided accesses inside the region.
					b.SetVSImm(isa.R(9), st)
					b.Li(base, 1<<20+int64(rng.Intn(1024))*8)
					b.VLdQ(isa.V(rng.Intn(8)), base, 0)
					b.SetVSImm(isa.R(9), 8)
				case 2:
					b.VStQ(isa.V(rng.Intn(8)), base, int64(rng.Intn(128))*8)
				case 3:
					b.VGath(isa.V(rng.Intn(8)), isa.V(15), base)
				case 4:
					b.VScat(isa.V(rng.Intn(8)), isa.V(15), base)
				case 5:
					b.VV(isa.OpVADDT, isa.V(rng.Intn(8)), isa.V(rng.Intn(8)), isa.V(rng.Intn(8)))
				case 6:
					b.VS(isa.OpVSMULT, isa.V(rng.Intn(8)), isa.V(rng.Intn(8)), isa.F(1))
				case 7:
					b.VV(isa.OpVCMPLT, isa.V(9), isa.V(rng.Intn(8)), isa.V(rng.Intn(8)))
					b.SetVM(isa.V(9))
					b.VVM(isa.OpVADDQ, isa.V(rng.Intn(8)), isa.V(rng.Intn(8)), isa.V(rng.Intn(8)))
					b.ClrVM()
				case 8:
					b.LdQ(isa.R(10), base, int64(rng.Intn(512))*8)
					b.OpImm(isa.OpADDQ, isa.R(10), isa.R(10), 1)
					b.StQ(isa.R(10), base, int64(rng.Intn(512))*8)
				case 9:
					b.DrainM()
				case 10:
					b.Loop(isa.R(16), 1+rng.Intn(4), func(int) {
						b.VV(isa.OpVMULT, isa.V(10), isa.V(11), isa.V(12))
					})
				case 11:
					b.WH64(base, int64(rng.Intn(512))*64)
				}
			}
			b.Halt()
		}
	}

	configs := []*Config{T(), NoPump(T()), T10(), EV8()}
	for _, cfg := range configs {
		seed := int64(7)
		k := soup(seed)
		if !cfg.HasVbox {
			// Scalar-only machines get a scalar-only soup.
			k = func(b *vasm.Builder) {
				rng := rand.New(rand.NewSource(seed))
				b.Li(isa.R(1), 1<<20)
				for n := 0; n < 2000; n++ {
					switch rng.Intn(4) {
					case 0:
						b.LdQ(isa.R(10), isa.R(1), int64(rng.Intn(2048))*8)
					case 1:
						b.StQ(isa.R(10), isa.R(1), int64(rng.Intn(2048))*8)
					case 2:
						b.Op3(isa.OpADDT, isa.F(2), isa.F(2), isa.F(3))
					case 3:
						b.Loop(isa.R(16), 1+rng.Intn(3), func(int) {
							b.OpImm(isa.OpADDQ, isa.R(11), isa.R(11), 1)
						})
					}
				}
				b.Halt()
			}
		}
		st, _ := Run(cfg, k) // the sim watchdog panics on livelock
		if st.Cycles == 0 {
			t.Fatalf("%s: no cycles", cfg.Name)
		}
		if st.ScalarIns+st.VectorIns == 0 {
			t.Fatalf("%s: nothing retired", cfg.Name)
		}
	}
}
