package sim_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// captureSnapshot produces one real chip snapshot (rndcopy@test on T).
func captureSnapshot(tb testing.TB) []byte {
	tb.Helper()
	b, err := workloads.Get("rndcopy")
	if err != nil {
		tb.Fatal(err)
	}
	var blob []byte
	if _, err := b.RunOpt(sim.T(), workloads.Test, workloads.RunOpts{
		OnWarmupSnapshot: func(_ uint64, bb []byte) { blob = bb },
	}); err != nil {
		tb.Fatal(err)
	}
	return blob
}

// FuzzSnapshotDecode hammers the full restore path — envelope validation
// plus every component's LoadState — with mutated snapshot bytes. Whatever
// the input, RestoreChip must return a chip or an error: never panic,
// never allocate beyond the blob's own size class, never half-restore
// (an error means no chip).
func FuzzSnapshotDecode(f *testing.F) {
	valid := captureSnapshot(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                      // truncated
	f.Add(valid[:16])                                // header only
	f.Add([]byte{})                                  // empty
	f.Add([]byte("TARSNAP\x00garbage after a magic")) // magic, junk body
	for _, i := range []int{8, 12, 20, len(valid) / 2, len(valid) - 5} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		f.Add(mut)
	}
	cfg := sim.T()
	f.Fuzz(func(t *testing.T, raw []byte) {
		ch, m, err := sim.RestoreChip(cfg, raw)
		if err != nil {
			if ch != nil || m != nil {
				t.Fatal("failed restore returned a half-built chip")
			}
			return
		}
		if ch == nil || m == nil {
			t.Fatal("successful restore returned a nil chip or machine")
		}
	})
}

// TestRestoreChipRejectsWrongShape pins the geometry checks: a snapshot
// captured on one configuration must not restore onto another.
func TestRestoreChipRejectsWrongShape(t *testing.T) {
	blob := captureSnapshot(t)
	scalar := sim.EV8() // no Vbox: presence flag must mismatch
	if _, _, err := sim.RestoreChip(scalar, blob); err == nil {
		t.Error("vector snapshot restored onto a scalar config")
	}
	small := sim.T()
	small.L2.Bytes = small.L2.Bytes / 2
	if _, _, err := sim.RestoreChip(small, blob); err == nil {
		t.Error("snapshot restored onto a config with a different L2 geometry")
	}
}
