package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/snapshot"
)

// SaveState encodes the full chip state — memory image, architectural
// registers, metric counters and every timing component's durable state —
// at a quiescent cycle boundary: all threads halted, no in-flight uops,
// fills, slices or wheel events anywhere on the chip. Mid-flight state
// holds completion closures and uop pointer graphs that cannot be
// serialized, so snapshots are only defined at phase boundaries (the
// post-Setup warm-up boundary being the canonical one); a busy chip is an
// error, never a silent partial save.
//
// The blob is deterministic for a given chip state: map-backed structures
// are emitted in sorted key order and all absolute-cycle reservations are
// delta-encoded against the snapshot cycle, so two chips in the same state
// at different absolute clocks produce byte-identical payloads after the
// leading cycle word.
//
// Fault campaigns consume per-operation injector state that a restored
// chip cannot replay, so snapshots refuse chips with faults armed.
func (ch *Chip) SaveState(m *arch.Machine) ([]byte, error) {
	if ch.inj != nil {
		return nil, fmt.Errorf("sim: snapshots do not compose with fault campaigns (injector position is not serializable)")
	}
	if !ch.c.Halted() {
		return nil, fmt.Errorf("sim: core not halted; snapshots require a quiescent chip")
	}
	if ch.anyBusy() {
		return nil, fmt.Errorf("sim: background work in flight; snapshots require a quiescent chip")
	}
	w := snapshot.NewWriter()
	w.Tag("chip")
	w.U64(ch.now)
	w.Bool(ch.vb != nil)
	m.Mem.SaveState(w)
	m.SaveState(w)
	ch.Reg.SaveState(w)
	if err := ch.c.SaveState(w, ch.now); err != nil {
		return nil, err
	}
	if err := ch.l2.SaveState(w, ch.now); err != nil {
		return nil, err
	}
	if err := ch.z.SaveState(w, ch.now); err != nil {
		return nil, err
	}
	if ch.vb != nil {
		if err := ch.vb.SaveState(w, ch.now); err != nil {
			return nil, err
		}
	}
	return w.Finish(), nil
}

// RestoreChip rebuilds a chip and its architectural machine from a blob
// produced by SaveState, for the same configuration. The chip is
// constructed fresh via New (so all wiring — registry, injector-free
// component graph, OnDone callbacks — is identical to a straight run) and
// component state is loaded over it; the clock resumes at the snapshot
// cycle. Running the same kernel on the restored chip is bit-identical to
// running Setup then the kernel on a fresh chip (the A/B tests enforce
// this).
//
// Geometry mismatches between the blob and cfg (cache shape, port/lane
// counts, counter-set skew) are reported as snapshot.ErrCorrupt; envelope
// damage and schema skew surface from the reader as snapshot.ErrCorrupt /
// snapshot.ErrSchema. cfg must not arm fault campaigns (see SaveState).
func RestoreChip(cfg *Config, blob []byte) (*Chip, *arch.Machine, error) {
	if cfg.Faults != nil {
		return nil, nil, fmt.Errorf("sim: snapshots do not compose with fault campaigns (injector position is not serializable)")
	}
	r, err := snapshot.NewReader(blob)
	if err != nil {
		return nil, nil, err
	}
	r.Tag("chip")
	now := r.U64()
	hasVbox := r.Bool()
	if r.Err() != nil {
		return nil, nil, r.Err()
	}
	if hasVbox != cfg.HasVbox {
		return nil, nil, fmt.Errorf("%w: snapshot vbox presence %v, config has %v", snapshot.ErrCorrupt, hasVbox, cfg.HasVbox)
	}
	ch := New(cfg)
	m := arch.New(mem.New())
	if err := m.Mem.LoadState(r); err != nil {
		return nil, nil, err
	}
	if err := m.LoadState(r); err != nil {
		return nil, nil, err
	}
	if err := ch.Reg.LoadState(r); err != nil {
		return nil, nil, err
	}
	if err := ch.c.LoadState(r, now); err != nil {
		return nil, nil, err
	}
	if err := ch.l2.LoadState(r, now); err != nil {
		return nil, nil, err
	}
	if err := ch.z.LoadState(r, now); err != nil {
		return nil, nil, err
	}
	if ch.vb != nil {
		if err := ch.vb.LoadState(r, now); err != nil {
			return nil, nil, err
		}
	}
	if err := r.Close(); err != nil {
		return nil, nil, err
	}
	ch.now = now
	// Seed the sampler's interval baselines from the restored counters so a
	// sampled resume reports interval (not since-boot) IPC and bytes at its
	// first point, matching a straight run sampled across the boundary.
	ch.lastRetired = ch.Stats.ScalarIns + ch.Stats.VectorIns
	ch.lastRawBytes = ch.Stats.RawMemBytes()
	return ch, m, nil
}
