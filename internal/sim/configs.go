package sim

import (
	"repro/internal/core"
	"repro/internal/l2"
	"repro/internal/vbox"
	"repro/internal/zbox"
)

// The configurations of Table 3. Frequencies derive from the RAMBUS clock:
// EV8/EV8+/T run at 2.13 GHz (1:2 of 1066 MHz DDR), T4 at 4.8 GHz (1:4 of
// 1200 MHz), T10 at 10.6 GHz (1:8 of 1333 MHz, Figure 8).

// baseCore returns the EV8 core parameters shared by every machine:
// 8-wide issue, peak 8 int / 4 FP, 2+2 loads/stores, 64 outstanding misses.
func baseCore() core.Config {
	return core.Config{
		FetchWidth:        8,
		RetireWidth:       8,
		ROBSize:           256,
		IntWidth:          8,
		FPWidth:           4,
		LoadWidth:         2,
		StoreWidth:        2,
		MispredictPenalty: 14,
		L1Bytes:           64 << 10,
		L1Assoc:           2,
		L1Line:            64,
		L1Lat:             3,
		MSHRs:             64,
		WriteBuffer:       32,
		StoreForwardLat:   3,
		DrainPenalty:      24,
		VBusWidth:         3,
	}
}

// baseVbox returns the Vbox parameters of §3.2–§3.4.
func baseVbox() vbox.Config {
	return vbox.Config{
		Lanes:           16,
		Queue:           64,
		DispatchWidth:   3,
		OperandBuses:    2,
		Ports:           2,
		MemInsts:        16,
		PumpEnabled:     true,
		TLBEntries:      32,
		PageBits:        29, // 512 MB pages
		TLBRefillCycles: 200,
		TLBRefillAll:    true,
		WritebackLat:    2,
		// EV7-class generosity: 32 architected + 96 rename copies. The
		// paper notes multithreading forced a large file; the ablation
		// benchmarks sweep this down to where it binds.
		PhysVRegs: 128,
	}
}

// tarantulaL2 is the 16 MB cache with Table 3's vector latencies.
func tarantulaL2() l2.Config {
	return l2.Config{
		Bytes:           16 << 20,
		Assoc:           8,
		LineBytes:       64,
		ScalarLat:       28,
		VecLatPump:      34,
		VecLatOdd:       38,
		MAFSize:         64,
		ReplayThreshold: 8,
		RetryDelay:      6,
		SliceQueue:      16,
		PBitPenalty:     12,
	}
}

// ZboxAt derives the controller timing from the port bandwidth and the CPU
// clock: a 64-byte transaction occupies its port 64/(GB/s ÷ GHz) cycles.
// Exported so the design-space-exploration layer can rebuild memory-system
// timing when it sweeps the port count or the CPU clock.
func ZboxAt(ports int, totalGBs, cpuGHz float64) zbox.Config {
	perPortBytesPerCycle := (totalGBs / float64(ports)) / cpuGHz
	lineCycles := int(64/perPortBytesPerCycle + 0.5)
	scale := func(base float64) int { return int(base*cpuGHz/2.13 + 0.5) }
	return zbox.Config{
		Ports:          ports,
		LineCycles:     lineCycles,
		BaseLatency:    scale(100), // ~47 ns load-to-use beyond the L2
		RowBytes:       2048,
		DevicesPerPort: 32,
		RowMissCycles:  scale(12),
		TurnCycles:     scale(5),
	}
}

// EV8 is the baseline: the superscalar core alone with a 4 MB L2 and a
// two-port RAMBUS controller (16.6 GB/s).
func EV8() *Config {
	l2c := tarantulaL2()
	l2c.Bytes = 4 << 20
	l2c.ScalarLat = 12
	return &Config{
		Name:   "EV8",
		CPUGHz: 2.13,
		Core:   baseCore(),
		L2:     l2c,
		Zbox:   ZboxAt(2, 16.6, 2.13),
	}
}

// EV8Plus is an EV8 core equipped with Tarantula's memory system (16 MB L2,
// eight RAMBUS ports) but no vector unit — the control in Figure 7 that
// shows the bigger cache alone does not explain the speedup.
func EV8Plus() *Config {
	l2c := tarantulaL2()
	l2c.ScalarLat = 12 // Table 3 keeps the 12-cycle scalar load-to-use
	return &Config{
		Name:   "EV8+",
		CPUGHz: 2.13,
		Core:   baseCore(),
		L2:     l2c,
		Zbox:   ZboxAt(8, 66.6, 2.13),
	}
}

// T is the Tarantula processor.
func T() *Config {
	return &Config{
		Name:    "T",
		CPUGHz:  2.13,
		HasVbox: true,
		Core:    baseCore(),
		Vbox:    baseVbox(),
		L2:      tarantulaL2(),
		Zbox:    ZboxAt(8, 66.6, 2.13),
	}
}

// T4 is the aggressively clocked Tarantula (4.8 GHz, 1:4 RAMBUS ratio).
func T4() *Config {
	c := T()
	c.Name = "T4"
	c.CPUGHz = 4.8
	c.Zbox = ZboxAt(8, 75.0, 4.8)
	return c
}

// T10 is the Figure 8 extreme: 10.6 GHz against 1333 MHz RAMBUS (1:8).
func T10() *Config {
	c := T()
	c.Name = "T10"
	c.CPUGHz = 10.6
	c.Zbox = ZboxAt(8, 83.3, 10.6)
	return c
}

// NoPump returns a copy of cfg with stride-1 double-bandwidth mode disabled
// (the Figure 9 ablation).
func NoPump(cfg *Config) *Config {
	c := *cfg
	c.Name = cfg.Name + "-nopump"
	c.Vbox.PumpEnabled = false
	return &c
}

// Names lists the canonical Table 3 configurations in presentation order —
// the set a service layer can offer without inventing machines.
func Names() []string {
	return []string{"EV8", "EV8+", "T", "T4", "T10"}
}

// Configs returns the named configuration, or nil.
func ByName(name string) *Config {
	switch name {
	case "EV8", "ev8":
		return EV8()
	case "EV8+", "ev8+", "ev8plus":
		return EV8Plus()
	case "T", "t":
		return T()
	case "T4", "t4":
		return T4()
	case "T10", "t10":
		return T10()
	}
	return nil
}
