package sim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/vasm"
)

// RunSpec describes one simulation for Execute, unifying the historical
// entry-point zoo (Run/RunROI/RunSMT and the Chip trace drivers) behind a
// single declarative surface. Exactly one execution mode must be selected:
//
//   - Kernel (optionally with Setup): one kernel on a fresh machine. When
//     Setup is present it runs first on the same chip as a warm-up phase and
//     the returned statistics cover the region of interest alone.
//   - Kernels: SMT — one kernel per hardware thread, each with its own
//     architectural machine and address space, sharing caches, Vbox and the
//     memory system.
//   - Trace / Traces: drive a caller-assembled Chip with pre-built traces
//     (the low-level surface tarsim's sampler path uses). Requires Chip.
//
// Config supplies the machine for the kernel modes; the trace modes take
// the configuration from Chip.Cfg instead.
type RunSpec struct {
	// Config is the machine configuration (kernel modes). Ignored when Chip
	// is set.
	Config *Config

	// Chip, when non-nil, is a caller-assembled chip to drive (trace modes);
	// it carries its own configuration and accumulated state.
	Chip *Chip

	// Setup is an optional warm-up kernel (cache warming, data preloading)
	// excluded from the returned statistics — the equivalent of starting the
	// STREAM timer after the warm-up pass. Only valid with Kernel.
	Setup vasm.Kernel

	// Kernel is the single-threaded kernel.
	Kernel vasm.Kernel

	// Kernels is the SMT mode: one kernel per hardware thread.
	Kernels []vasm.Kernel

	// WarmupSnapshot, when non-nil, is a chip snapshot (SaveState blob)
	// captured at this spec's post-Setup boundary on a matching
	// configuration. The run restores it instead of simulating Setup —
	// bit-identical to the straight run, minus the warm-up cycles. Only
	// valid with Setup+Kernel.
	WarmupSnapshot []byte

	// OnWarmupSnapshot, when non-nil, receives the encoded chip state and
	// its cycle at the post-Setup quiescent boundary, right before the
	// region of interest starts. Ignored when WarmupSnapshot already
	// skipped the warm-up phase. Only valid with Setup+Kernel.
	OnWarmupSnapshot func(cycle uint64, blob []byte)

	// Trace is a pre-built trace to drive on Chip.
	Trace *vasm.Trace

	// Traces drives Chip with one pre-built trace per hardware thread.
	Traces []*vasm.Trace
}

// Outcome is the result of one Execute call. On failure the returned error
// is a typed *WedgeError and the Outcome still carries the statistics and
// machine state at the moment of failure, mirroring the historical Checked
// entry points — post-mortems read the partial Outcome next to the error.
type Outcome struct {
	// Stats are the run's counters. For a Setup+Kernel run they cover the
	// region of interest alone; otherwise they are the chip's counters
	// (cumulative across phases when a Chip is reused).
	Stats *stats.Stats

	// Machine is the architectural state after a single-threaded run.
	Machine *arch.Machine

	// Machines holds the per-thread architectural state of an SMT run.
	Machines []*arch.Machine

	// Chip is the chip that executed the spec, for callers that want to keep
	// driving it (further phases, sampler dumps, occupancy reads).
	Chip *Chip

	// Series is the cycle-interval sample series, present only when the
	// configuration armed the sampler and the run succeeded.
	Series *metrics.SeriesDump

	// WarmupCycles is the cycle of the post-Setup boundary: the cost of the
	// warm-up phase, whether it was simulated or skipped via
	// RunSpec.WarmupSnapshot. Zero when the spec had no Setup.
	WarmupCycles uint64

	// WarmupRestored reports that the warm-up phase was restored from a
	// snapshot instead of simulated — WarmupCycles is then the simulation
	// cost the restore avoided.
	WarmupRestored bool

	// SimCycles and SimWall are the chip's cumulative simulated cycles
	// (drain included) and the wall-clock time its cycle loop consumed
	// producing them — together, the run's simulation throughput
	// (cycles/sec). Cumulative across phases when a Chip is reused.
	SimCycles uint64
	SimWall   time.Duration
}

// MCPS returns the outcome's simulation throughput in millions of simulated
// cycles per wall-clock second (0 when no loop time was recorded).
func (o *Outcome) MCPS() float64 {
	if o.SimWall <= 0 {
		return 0
	}
	return float64(o.SimCycles) / o.SimWall.Seconds() / 1e6
}

// Execute runs one simulation described by spec. It is the single execution
// entry point; the legacy Run*/Run*Checked names are thin deprecated
// wrappers over it. A wedged machine, a blown deadline, a failed invariant
// or a dead trace returns a typed *WedgeError; the Outcome is non-nil even
// then, carrying the partial statistics and machine state for post-mortems.
func Execute(spec RunSpec) (*Outcome, error) {
	modes := 0
	if spec.Kernel != nil {
		modes++
	}
	if spec.Kernels != nil {
		modes++
	}
	if spec.Trace != nil {
		modes++
	}
	if spec.Traces != nil {
		modes++
	}
	if modes != 1 {
		return nil, fmt.Errorf("sim: RunSpec must select exactly one of Kernel, Kernels, Trace or Traces (got %d)", modes)
	}
	if spec.Setup != nil && spec.Kernel == nil {
		return nil, errors.New("sim: RunSpec.Setup is only valid with Kernel")
	}
	if (spec.WarmupSnapshot != nil || spec.OnWarmupSnapshot != nil) && spec.Setup == nil {
		return nil, errors.New("sim: RunSpec warm-up snapshot hooks are only valid with Setup")
	}
	switch {
	case spec.Trace != nil, spec.Traces != nil:
		if spec.Chip == nil {
			return nil, errors.New("sim: RunSpec trace modes require Chip")
		}
		return executeTraces(spec)
	default:
		if spec.Chip != nil {
			return nil, errors.New("sim: RunSpec kernel modes assemble their own chip; drive an existing Chip with Trace/Traces")
		}
		if spec.Config == nil {
			return nil, errors.New("sim: RunSpec.Config is required")
		}
		if spec.Kernels != nil {
			return executeSMT(spec)
		}
		return executeKernel(spec)
	}
}

// executeKernel runs Setup (optional) then Kernel on one fresh chip.
func executeKernel(spec RunSpec) (*Outcome, error) {
	cfg := spec.Config
	var (
		m    *arch.Machine
		chip *Chip
	)
	if spec.WarmupSnapshot != nil {
		var err error
		chip, m, err = RestoreChip(cfg, spec.WarmupSnapshot)
		if err != nil {
			return nil, fmt.Errorf("sim: restoring warm-up snapshot: %w", err)
		}
	} else {
		m = arch.New(mem.New())
		chip = New(cfg)
	}
	out := &Outcome{Stats: chip.Stats, Machine: m, Chip: chip}
	if spec.WarmupSnapshot != nil {
		out.WarmupCycles = chip.Clock()
		out.WarmupRestored = true
	} else if spec.Setup != nil {
		setup := spec.Setup
		tr := vasm.NewTrace(m, func(b *vasm.Builder) { setup(b); b.Halt() })
		err := chip.runTraces([]*vasm.Trace{tr}, false)
		tr.Close()
		if err != nil {
			return out, err
		}
		out.WarmupCycles = chip.Clock()
		// Capture before ResetHalt: SaveState requires the halted, drained
		// boundary state, and a restored chip comes up un-halted anyway
		// (New + LoadState is equivalent to the post-ResetHalt chip).
		if spec.OnWarmupSnapshot != nil {
			blob, err := chip.SaveState(m)
			if err != nil {
				return out, fmt.Errorf("sim: capturing warm-up snapshot: %w", err)
			}
			spec.OnWarmupSnapshot(chip.Clock(), blob)
		}
		chip.c.ResetHalt()
	}
	before := *chip.Stats
	tr := vasm.NewTrace(m, spec.Kernel)
	defer tr.Close()
	if err := chip.runTraces([]*vasm.Trace{tr}, false); err != nil {
		return out, err
	}
	if spec.Setup != nil {
		out.Stats = stats.Sub(chip.Stats, &before)
	}
	finishOutcome(out, chip)
	return out, nil
}

// executeSMT runs one kernel per hardware thread on one fresh chip.
func executeSMT(spec RunSpec) (*Outcome, error) {
	chip := New(spec.Config)
	machines := make([]*arch.Machine, len(spec.Kernels))
	traces := make([]*vasm.Trace, len(spec.Kernels))
	for i, k := range spec.Kernels {
		machines[i] = arch.New(mem.New())
		traces[i] = vasm.NewTrace(machines[i], k)
		defer traces[i].Close()
	}
	out := &Outcome{Stats: chip.Stats, Machines: machines, Chip: chip}
	if err := chip.runTraces(traces, true); err != nil {
		return out, err
	}
	finishOutcome(out, chip)
	return out, nil
}

// executeTraces drives a caller-assembled chip with pre-built traces.
func executeTraces(spec RunSpec) (*Outcome, error) {
	ch := spec.Chip
	out := &Outcome{Stats: ch.Stats, Chip: ch}
	var err error
	if spec.Trace != nil {
		err = ch.runTraces([]*vasm.Trace{spec.Trace}, false)
	} else {
		err = ch.runTraces(spec.Traces, true)
	}
	if err != nil {
		return out, err
	}
	finishOutcome(out, ch)
	return out, nil
}

// finishOutcome attaches the sampler series to a successful outcome and
// feeds the legacy OnSeries callback, preserving the pre-Execute contract.
func finishOutcome(out *Outcome, ch *Chip) {
	out.Series = ch.Series()
	out.SimCycles = ch.Clock()
	out.SimWall = ch.SimWall()
	if ch.Cfg.onSeries != nil {
		ch.Cfg.onSeries(out.Series)
	}
}

// runTraces binds trs to the chip (SMT binding when smt is true, which is
// also how a single-trace slice of the SMT surface stays distinct from the
// single-threaded binding) and drives the machine to completion.
func (ch *Chip) runTraces(trs []*vasm.Trace, smt bool) error {
	if smt {
		ch.c.BindSMT(trs)
	} else {
		ch.c.Bind(trs[0])
	}
	t0 := time.Now()
	err := ch.runBound(trs)
	ch.simWall += time.Since(t0)
	return err
}
