package serve

import (
	"runtime"
	"sync"
	"sync/atomic"

	chipmetrics "repro/internal/metrics"
	"repro/internal/workloads"
)

// Backend executes fully-resolved job specs on behalf of the server. Two
// implementations exist: the in-process pool (simulations run as goroutines
// inside the server binary, the historical behavior) and the subprocess
// fleet (each simulation runs in its own tarworker process, so a wedged or
// crashing model build can be SIGKILLed without taking the service down).
//
// The contract both must honor: Execute(spec) returns a *workloads.Result
// whose JobResult encoding is byte-identical across backends for the same
// spec, and every failure is (or converts via toJobError into) a *JobError
// carrying the stable wire envelope.
type Backend interface {
	// Kind names the backend on /healthz ("inprocess" or "subprocess").
	Kind() string
	// Execute runs one spec to completion, blocking the calling worker
	// goroutine. Concurrency is bounded by the server's worker pool, not
	// by the backend.
	Execute(spec *JobSpec) (*workloads.Result, error)
	// Alive reports the execution slots currently able to take work: the
	// configured pool size for the in-process backend, live worker
	// processes for the subprocess fleet.
	Alive() int
	// Registry exposes the backend's gauge set (workers.alive,
	// workers.restarts, workers.retries, ...) for the /metrics exposition.
	Registry() *chipmetrics.Registry
	// Close releases backend resources (kills idle workers). Called once,
	// after the server's drain completes.
	Close()
}

// inProcessBackend runs simulations as goroutines in the server process —
// the zero-overhead default. Isolation is panic recovery only: a wedge is
// detected by the simulator's own watchdog/deadline machinery, not by
// killing anything.
type inProcessBackend struct {
	run     RunFunc
	workers int
	reg     *chipmetrics.Registry
	alive   atomic.Int64
	closed  sync.Once
}

// newInProcessBackend wraps run (the real simulator, or a test stub) as a
// Backend with the given slot count.
func newInProcessBackend(run RunFunc, workers int) *inProcessBackend {
	if run == nil {
		run = defaultRun
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &inProcessBackend{run: run, workers: workers, reg: chipmetrics.NewRegistry()}
	b.alive.Store(int64(workers))
	b.reg.RegisterGauge("workers.alive", "Execution slots able to take work.",
		func(uint64) int { return int(b.alive.Load()) })
	b.reg.RegisterGauge("workers.restarts", "Worker processes respawned after dying (always 0 in-process).",
		func(uint64) int { return 0 })
	b.reg.RegisterGauge("workers.retries", "Jobs re-executed after a worker death (always 0 in-process).",
		func(uint64) int { return 0 })
	return b
}

func (b *inProcessBackend) Kind() string                    { return "inprocess" }
func (b *inProcessBackend) Alive() int                      { return int(b.alive.Load()) }
func (b *inProcessBackend) Registry() *chipmetrics.Registry { return b.reg }
func (b *inProcessBackend) Close()                          { b.closed.Do(func() { b.alive.Store(0) }) }

// Execute runs the spec in this process with panic isolation, mirroring
// the sweep runner's per-cell recovery: a model bug in one experiment must
// not take the service down.
func (b *inProcessBackend) Execute(spec *JobSpec) (res *workloads.Result, err error) {
	cfg, scale, buildErr := spec.Build()
	if buildErr != nil {
		return nil, &JobError{Status: 400, JSON: ErrorJSON{Code: ErrCodeBadRequest, Message: buildErr.Error()}}
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, panicError{p}
		}
	}()
	return b.run(spec.Bench, cfg, scale)
}

var _ Backend = (*inProcessBackend)(nil)
var _ Backend = (*SubprocessBackend)(nil)
