package serve

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/confhash"
)

// The one-build-path contract: resolving a request through BuildSpec and
// then replaying the resolved JobSpec through the worker wire path (JSON
// round-trip + JobSpec.Build, exactly what tarworker does) must yield the
// same spec bytes, the same decorated configuration, and the same
// confhash. If these ever diverge, the subprocess backend would simulate a
// different experiment than the in-process one under the same identity.
func TestBuildSpecCrossPathEquivalence(t *testing.T) {
	req := &SubmitRequest{
		Bench:     "dgemm",
		Config:    "T",
		Scale:     "test",
		Check:     true,
		FaultSeed: 11,
		Knobs:     map[string]float64{"lanes": 8},
	}
	defaults := SpecDefaults{
		DefaultDeadline: 2 * time.Minute,
		MaxDeadline:     5 * time.Minute,
		SampleEvery:     128,
		SampleCap:       64,
	}

	spec, cfg, scale, err := BuildSpec(req, defaults)
	if err != nil {
		t.Fatalf("BuildSpec: %v", err)
	}
	if spec.DeadlineMs != (2 * time.Minute).Milliseconds() {
		t.Errorf("default deadline not applied: %d", spec.DeadlineMs)
	}
	if spec.SampleEvery != 128 || spec.SampleCap != 64 {
		t.Errorf("sampler not applied: every=%d cap=%d", spec.SampleEvery, spec.SampleCap)
	}

	// The worker wire path: the spec crosses a process boundary as JSON.
	wire, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var replayed JobSpec
	if err := json.Unmarshal(wire, &replayed); err != nil {
		t.Fatal(err)
	}
	rewire, err := json.Marshal(&replayed)
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != string(rewire) {
		t.Errorf("spec JSON not byte-stable across the wire:\n%s\n%s", wire, rewire)
	}

	cfg2, scale2, err := replayed.Build()
	if err != nil {
		t.Fatalf("replayed Build: %v", err)
	}
	if scale != scale2 {
		t.Errorf("scale diverged: %v vs %v", scale, scale2)
	}
	k1 := confhash.Key(spec.Bench, scale.String(), cfg)
	k2 := confhash.Key(replayed.Bench, scale2.String(), cfg2)
	if k1 != k2 {
		t.Errorf("confhash diverged across build paths: %s vs %s", k1, k2)
	}
	c1, _ := json.Marshal(cfg)
	c2, _ := json.Marshal(cfg2)
	if string(c1) != string(c2) {
		t.Errorf("decorated configs diverged:\n%s\n%s", c1, c2)
	}
}

// RouteKey is the cluster placement identity: a pure function of the
// request bytes, computed with zero server defaults so every node and
// router agrees on the owner no matter what defaults they would apply at
// execution time. Anything that changes the experiment's confhash —
// including integrity knobs like an explicit deadline — changes placement,
// because it names a different cache entry.
func TestRouteKeyPlacementIdentity(t *testing.T) {
	base := func() *SubmitRequest {
		return &SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"}
	}
	k0, err := RouteKey(base())
	if err != nil {
		t.Fatal(err)
	}

	// An explicit deadline is part of the confhash identity (a different
	// integrity envelope is a different experiment), so it legitimately
	// routes elsewhere — what matters is that it does so deterministically.
	withDeadline := base()
	withDeadline.DeadlineMs = 30000
	kd, err := RouteKey(withDeadline)
	if err != nil {
		t.Fatal(err)
	}
	if kd == k0 {
		t.Error("explicit deadline did not change the confhash identity")
	}
	if kd2, _ := RouteKey(withDeadline); kd2 != kd {
		t.Errorf("deadline-carrying request not deterministic: %s vs %s", kd2, kd)
	}

	otherConfig := base()
	otherConfig.Config = "EV8"
	if k, _ := RouteKey(otherConfig); k == k0 {
		t.Error("different config produced the same route key")
	}

	withKnob := base()
	withKnob.Knobs = map[string]float64{"lanes": 8}
	if k, _ := RouteKey(withKnob); k == k0 {
		t.Error("knob perturbation produced the same route key")
	}

	// Placement must also agree with zero-default resolution no matter what
	// server-side defaults the executing node would apply.
	again, err := RouteKey(base())
	if err != nil {
		t.Fatal(err)
	}
	if again != k0 {
		t.Errorf("route key not deterministic: %s vs %s", again, k0)
	}
}
