package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/faults"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/workloads"
)

// Store is the pluggable result store: completed experiments keyed by
// confhash content address within one JobResult schema version. It is the
// seam the cluster's shared store plugs into — the server only ever talks
// to this interface, whether the implementation is the in-memory tier, the
// crash-safe disk store, or the shared-directory cluster store.
//
// The contract every implementation must honor: Get either returns a result
// whose JobResult encoding is byte-identical to what Put received (the
// content address makes that checkable) or reports a miss — a store may
// lose artifacts (eviction, I/O faults, corruption quarantine) but may
// never serve a wrong or corrupt one.
//
// All three faces (Store, BlobStore, SnapshotStore) are served by one
// generic content-addressed implementation, internal/store, with typed
// namespaces; this typed surface is the adapter that keeps serve call
// sites working in terms of decoded results.
type Store interface {
	// Get returns the stored result for a content key, or a miss. A miss
	// is always safe: the caller re-simulates.
	Get(key string) (*workloads.Result, bool)
	// Put stores a completed result under its content key. Best-effort:
	// a failed put costs durability, never correctness.
	Put(key string, res *workloads.Result)
	// Len reports resident entries (the fastest tier's count for a
	// multi-tier store).
	Len() int
	// Status reports the store's health for /healthz and /metrics.
	Status() StoreStatus
	// Close releases store resources. Idempotent.
	Close() error
}

// BlobStore is the optional second face of a Store: schema-versioned
// aggregate blobs (completed sweep results) keyed by content address,
// alongside the per-experiment artifacts. The built-in stores implement
// it; the server feature-detects with a type assertion so substitute
// stores in tests stay valid without blob support — they just lose sweep
// durability, never correctness (a blob miss replays the sweep through the
// per-experiment store, which dedups the actual simulations).
type BlobStore interface {
	// GetBlob returns the stored blob bytes for a content key, or a miss.
	GetBlob(key string) ([]byte, bool)
	// PutBlob stores blob bytes under a content key. Best-effort, like Put.
	PutBlob(key string, raw []byte)
}

// SnapshotStore is the optional third face of a Store: chip snapshot blobs
// (the internal/snapshot binary encoding) keyed by warm-up content address
// (confhash.WarmupKey). Like BlobStore it is feature-detected with a type
// assertion, so substitute stores without it just lose warm-up reuse —
// every experiment re-simulates its own warm-up, never incorrectly.
//
// The safety contract mirrors the artifact one, with the extra teeth the
// snapshot envelope provides: implementations must never return a blob
// that fails snapshot.Verify — a damaged file is quarantined and reported
// as a miss, and a miss always just costs the warm-up simulation.
type SnapshotStore interface {
	// GetSnapshot returns the stored snapshot blob for a warm-up key, or a
	// miss.
	GetSnapshot(key string) ([]byte, bool)
	// PutSnapshot stores a snapshot blob under a warm-up key. Best-effort.
	PutSnapshot(key string, blob []byte)
}

// StoreStatus is the store-health block reported on /healthz and rendered
// as tarserved_store_* series on /metrics.
type StoreStatus struct {
	// Tier names the configuration: "mem", "mem+disk" or "mem+shared".
	Tier string `json:"tier"`
	// MemEntries/DiskEntries count resident artifacts per tier.
	MemEntries  int `json:"mem_entries"`
	DiskEntries int `json:"disk_entries"`
	// DiskBytes is the disk tier's resident artifact bytes.
	DiskBytes int64 `json:"disk_bytes,omitempty"`
	// WarmStart counts artifacts recovered from disk when the store opened
	// — the crash-recovery payoff, visible at a glance after a restart.
	WarmStart int `json:"warm_start,omitempty"`
	// WarmHits counts gets answered by the disk tier after a memory miss
	// (warm-started artifacts being served without re-simulation).
	WarmHits uint64 `json:"warm_hits,omitempty"`
	// Quarantined counts undecodable or schema-skewed files the loader set
	// aside instead of serving or crashing on.
	Quarantined uint64 `json:"quarantined,omitempty"`
	// IOErrors counts disk reads/writes that failed (real or injected).
	IOErrors uint64 `json:"io_errors,omitempty"`
	// Evicted counts artifacts dropped by the disk tier's size cap.
	Evicted uint64 `json:"evicted,omitempty"`
	// SnapEntries/SnapBytes count chip snapshots resident in the disk tier
	// (memory-tier snapshots for a memory-only store) and their bytes.
	SnapEntries int   `json:"snapshot_entries,omitempty"`
	SnapBytes   int64 `json:"snapshot_bytes,omitempty"`
	// SnapQuarantined counts snapshot blobs that failed envelope
	// verification and were set aside; SnapEvicted counts snapshots
	// dropped by the disk tier's snapshot byte cap.
	SnapQuarantined uint64 `json:"snapshot_quarantined,omitempty"`
	SnapEvicted     uint64 `json:"snapshot_evicted,omitempty"`
}

// maxBlobs bounds retained aggregate blobs in the memory tier.
const maxBlobs = 256

// maxSnapBytes bounds retained chip snapshots in the memory tier.
const maxSnapBytes = 256 << 20

// storeConfig is the serve layer's namespace policy set: the schema
// versions, on-disk layout, validators and retention bounds for each
// artifact kind. This — not store code — is what distinguishes results
// from sweeps from snapshots.
func storeConfig(memEntries int) store.Config {
	if memEntries <= 0 {
		memEntries = 4096
	}
	return store.Config{
		store.Results: {
			Schema: SchemaVersion,
			Ext:    ".json",
			Validate: func(key string, raw []byte) error {
				_, err := decodeArtifact(key, raw)
				return err
			},
			ScanOnOpen:     true,
			VerifyOnRead:   true,
			DiskEvict:      true,
			TornWriteChaos: true,
			MemEntries:     memEntries,
			MemLRU:         true,
		},
		// Sweep blobs: validation (schema stamp, key match) belongs to the
		// caller, which owns the blob encoding; retention is a small FIFO
		// in memory and unindexed direct reads on disk.
		store.Sweeps: {
			Schema:     SweepSchemaVersion,
			Subdir:     "sweeps",
			Ext:        ".json",
			MemEntries: maxBlobs,
		},
		// Chip snapshots: envelope-verified on scan, on every disk read and
		// on put; byte-bounded in memory (full memory images) and evicted
		// separately from artifacts on disk.
		store.Snapshots: {
			Schema: snapshot.SchemaVersion,
			Subdir: "snapshots",
			Ext:    ".snap",
			Validate: func(_ string, raw []byte) error {
				return snapshot.Verify(raw)
			},
			ScanOnOpen:    true,
			VerifyOnRead:  true,
			ValidateOnPut: true,
			DiskEvict:     true,
			MemBytes:      maxSnapBytes,
		},
	}
}

// OpenStore builds the production store: the bounded in-memory tier alone
// when dir is empty, or the memory tier as a read-through/write-through
// cache in front of the crash-safe disk store at dir. chaos arms the disk
// tier's fault-injection hooks (nil = none).
func OpenStore(dir string, memEntries int, maxBytes int64, chaos *faults.Config) (Store, error) {
	cfg := storeConfig(memEntries)
	mem := store.NewMem(cfg)
	if dir == "" {
		return &storeAdapter{inner: mem}, nil
	}
	disk, err := store.OpenDisk(dir, maxBytes, faults.New(chaos), cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: disk store: %w", err)
	}
	return &storeAdapter{inner: store.NewTiered(mem, disk)}, nil
}

// OpenSharedStore builds the cluster store: the memory tier in front of a
// shared-directory (NFS-style) tier that many nodes point at the same
// path. Every artifact namespace is read directly from the filesystem with
// read-time validation, so any node's Put is every node's hit — the
// cluster-wide cache that makes cross-node single-flight cheap. No node
// indexes or evicts the shared directory: it is a fleet resource no single
// process owns.
func OpenSharedStore(dir string, memEntries int, chaos *faults.Config) (Store, error) {
	cfg := storeConfig(memEntries)
	mem := store.NewMem(cfg)
	shared, err := store.OpenShared(dir, faults.New(chaos), cfg)
	if err != nil {
		return nil, fmt.Errorf("serve: shared store: %w", err)
	}
	return &storeAdapter{inner: store.NewTiered(mem, shared)}, nil
}

// newMemStore is the default store when none is configured: memory-only.
func newMemStore(memEntries int) Store {
	return &storeAdapter{inner: store.NewMem(storeConfig(memEntries))}
}

// storeAdapter keeps the serve call sites speaking in decoded results and
// typed faces while the underlying store moves opaque bytes by
// (namespace, key). The encode/decode round trip is byte-stable (the
// cross-backend byte-identity test pins it), so a result surviving the
// adapter is the same artifact the API serves.
type storeAdapter struct {
	inner store.Interface
}

func (a *storeAdapter) Get(key string) (*workloads.Result, bool) {
	raw, ok := a.inner.Get(store.Results, key)
	if !ok {
		return nil, false
	}
	res, err := decodeArtifact(key, raw)
	if err != nil {
		return nil, false
	}
	return res, true
}

func (a *storeAdapter) Put(key string, res *workloads.Result) {
	raw, err := json.Marshal(EncodeResult(key, res))
	if err != nil {
		return
	}
	a.inner.Put(store.Results, key, raw)
}

func (a *storeAdapter) Len() int { return a.inner.Len(store.Results) }

func (a *storeAdapter) GetBlob(key string) ([]byte, bool) {
	return a.inner.Get(store.Sweeps, key)
}

func (a *storeAdapter) PutBlob(key string, raw []byte) {
	a.inner.Put(store.Sweeps, key, raw)
}

func (a *storeAdapter) GetSnapshot(key string) ([]byte, bool) {
	return a.inner.Get(store.Snapshots, key)
}

func (a *storeAdapter) PutSnapshot(key string, blob []byte) {
	a.inner.Put(store.Snapshots, key, blob)
}

func (a *storeAdapter) Status() StoreStatus {
	return translateStatus(a.inner.Status())
}

func (a *storeAdapter) Close() error { return a.inner.Close() }

// translateStatus maps the generic per-namespace store status onto the
// stable wire shape /healthz and /metrics have always reported.
func translateStatus(st store.Status) StoreStatus {
	r := st.NS[store.Results]
	s := st.NS[store.Snapshots]
	out := StoreStatus{Tier: st.Tier, MemEntries: r.MemEntries, IOErrors: st.IOErrors}
	if st.Tier == "mem" {
		// Memory-only store: snapshots are memory-resident.
		out.SnapEntries = s.MemEntries
		out.SnapBytes = s.MemBytes
		out.SnapEvicted = s.MemEvicted
		return out
	}
	out.DiskEntries = r.DiskEntries
	out.DiskBytes = r.DiskBytes
	out.WarmStart = r.WarmStart
	out.WarmHits = r.WarmHits
	out.Quarantined = r.Quarantined
	out.Evicted = r.Evicted
	out.SnapEntries = s.DiskEntries
	out.SnapBytes = s.DiskBytes
	out.SnapQuarantined = s.Quarantined
	out.SnapEvicted = s.Evicted
	return out
}

// decodeArtifact validates one stored artifact end to end: JSON shape,
// schema stamp, self-consistent content key, and a reconstructible result.
// Anything less is quarantine material.
func decodeArtifact(key string, raw []byte) (*workloads.Result, error) {
	var jr JobResult
	if err := json.Unmarshal(raw, &jr); err != nil {
		return nil, fmt.Errorf("undecodable artifact: %w", err)
	}
	if jr.Schema != SchemaVersion {
		return nil, fmt.Errorf("schema skew: artifact is schema %d, this build writes %d", jr.Schema, SchemaVersion)
	}
	if jr.Key != key {
		return nil, fmt.Errorf("key mismatch: file named %s carries key %s", key, jr.Key)
	}
	res, err := resultFromWire(&jr)
	if err != nil {
		return nil, err
	}
	return res, nil
}

var (
	_ Store         = (*storeAdapter)(nil)
	_ BlobStore     = (*storeAdapter)(nil)
	_ SnapshotStore = (*storeAdapter)(nil)
)
