package serve

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/faults"
	"repro/internal/workloads"
)

// Store is the pluggable result store: completed experiments keyed by
// confhash content address within one JobResult schema version. It is the
// seam the ROADMAP's shared cluster store plugs into — the server only ever
// talks to this interface, whether the implementation is the in-memory LRU,
// the crash-safe disk store, or (later) a remote shared store.
//
// The contract every implementation must honor: Get either returns a result
// whose JobResult encoding is byte-identical to what Put received (the
// content address makes that checkable) or reports a miss — a store may
// lose artifacts (eviction, I/O faults, corruption quarantine) but may
// never serve a wrong or corrupt one.
type Store interface {
	// Get returns the stored result for a content key, or a miss. A miss
	// is always safe: the caller re-simulates.
	Get(key string) (*workloads.Result, bool)
	// Put stores a completed result under its content key. Best-effort:
	// a failed put costs durability, never correctness.
	Put(key string, res *workloads.Result)
	// Len reports resident entries (the fastest tier's count for a
	// multi-tier store).
	Len() int
	// Status reports the store's health for /healthz and /metrics.
	Status() StoreStatus
	// Close releases store resources. Idempotent.
	Close() error
}

// BlobStore is the optional second face of a Store: schema-versioned
// aggregate blobs (completed sweep results) keyed by content address,
// alongside the per-experiment artifacts. All three built-in stores
// implement it; the server feature-detects with a type assertion so
// substitute stores in tests stay valid without blob support — they just
// lose sweep durability, never correctness (a blob miss replays the sweep
// through the per-experiment store, which dedups the actual simulations).
type BlobStore interface {
	// GetBlob returns the stored blob bytes for a content key, or a miss.
	GetBlob(key string) ([]byte, bool)
	// PutBlob stores blob bytes under a content key. Best-effort, like Put.
	PutBlob(key string, raw []byte)
}

// SnapshotStore is the optional third face of a Store: chip snapshot blobs
// (the internal/snapshot binary encoding) keyed by warm-up content address
// (confhash.WarmupKey). Like BlobStore it is feature-detected with a type
// assertion, so substitute stores without it just lose warm-up reuse —
// every experiment re-simulates its own warm-up, never incorrectly.
//
// The safety contract mirrors the artifact one, with the extra teeth the
// snapshot envelope provides: implementations must never return a blob
// that fails snapshot.Verify — a damaged file is quarantined and reported
// as a miss, and a miss always just costs the warm-up simulation.
type SnapshotStore interface {
	// GetSnapshot returns the stored snapshot blob for a warm-up key, or a
	// miss.
	GetSnapshot(key string) ([]byte, bool)
	// PutSnapshot stores a snapshot blob under a warm-up key. Best-effort.
	PutSnapshot(key string, blob []byte)
}

// StoreStatus is the store-health block reported on /healthz and rendered
// as tarserved_store_* series on /metrics.
type StoreStatus struct {
	// Tier names the configuration: "mem" or "mem+disk".
	Tier string `json:"tier"`
	// MemEntries/DiskEntries count resident artifacts per tier.
	MemEntries  int `json:"mem_entries"`
	DiskEntries int `json:"disk_entries"`
	// DiskBytes is the disk tier's resident artifact bytes.
	DiskBytes int64 `json:"disk_bytes,omitempty"`
	// WarmStart counts artifacts recovered from disk when the store opened
	// — the crash-recovery payoff, visible at a glance after a restart.
	WarmStart int `json:"warm_start,omitempty"`
	// WarmHits counts gets answered by the disk tier after a memory miss
	// (warm-started artifacts being served without re-simulation).
	WarmHits uint64 `json:"warm_hits,omitempty"`
	// Quarantined counts undecodable or schema-skewed files the loader set
	// aside instead of serving or crashing on.
	Quarantined uint64 `json:"quarantined,omitempty"`
	// IOErrors counts disk reads/writes that failed (real or injected).
	IOErrors uint64 `json:"io_errors,omitempty"`
	// Evicted counts artifacts dropped by the disk tier's size cap.
	Evicted uint64 `json:"evicted,omitempty"`
	// SnapEntries/SnapBytes count chip snapshots resident in the disk tier
	// (memory-tier snapshots for a memory-only store) and their bytes.
	SnapEntries int   `json:"snapshot_entries,omitempty"`
	SnapBytes   int64 `json:"snapshot_bytes,omitempty"`
	// SnapQuarantined counts snapshot blobs that failed envelope
	// verification and were set aside; SnapEvicted counts snapshots
	// dropped by the disk tier's snapshot byte cap.
	SnapQuarantined uint64 `json:"snapshot_quarantined,omitempty"`
	SnapEvicted     uint64 `json:"snapshot_evicted,omitempty"`
}

// OpenStore builds the production store: the bounded in-memory LRU alone
// when dir is empty, or the LRU as a read-through/write-through tier in
// front of the crash-safe disk store at dir. chaos arms the disk tier's
// fault-injection hooks (nil = none).
func OpenStore(dir string, memEntries int, maxBytes int64, chaos *faults.Config) (Store, error) {
	mem := newLRU(memEntries)
	if dir == "" {
		return mem, nil
	}
	disk, err := openDiskStore(dir, maxBytes, faults.New(chaos))
	if err != nil {
		return nil, fmt.Errorf("serve: disk store: %w", err)
	}
	return newTieredStore(mem, disk), nil
}

// tieredStore layers the in-memory LRU over the disk store: gets read
// through (memory first, disk on miss, promoting hits), puts write through
// to both. Per-key shard locks serialize a disk load against a concurrent
// completion of the same confhash, so a result finishing during a
// warm-start load can neither be dropped nor written twice — the lru.add
// single-flight gap called out in ISSUE 7.
type tieredStore struct {
	mem  *lru
	disk *diskStore

	// shards are per-key mutexes (hash-sharded): held across the slow path
	// (disk read + memory promote) and across Put, never across the pure
	// memory fast path.
	shards [64]sync.Mutex

	mu       sync.Mutex
	warmHits uint64
}

func newTieredStore(mem *lru, disk *diskStore) *tieredStore {
	return &tieredStore{mem: mem, disk: disk}
}

func (t *tieredStore) shard(key string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &t.shards[h.Sum32()%uint32(len(t.shards))]
}

func (t *tieredStore) Get(key string) (*workloads.Result, bool) {
	if res, ok := t.mem.Get(key); ok {
		return res, true
	}
	lock := t.shard(key)
	lock.Lock()
	defer lock.Unlock()
	// Re-check under the key lock: a Put may have landed between the fast
	// path and here, and its (identical, content-addressed) result must
	// not be raced by a stale disk load.
	if res, ok := t.mem.Get(key); ok {
		return res, true
	}
	res, ok := t.disk.Get(key)
	if !ok {
		return nil, false
	}
	t.mem.Put(key, res)
	t.mu.Lock()
	t.warmHits++
	t.mu.Unlock()
	return res, true
}

func (t *tieredStore) Put(key string, res *workloads.Result) {
	lock := t.shard(key)
	lock.Lock()
	defer lock.Unlock()
	t.mem.Put(key, res)
	t.disk.Put(key, res)
}

func (t *tieredStore) Len() int { return t.mem.Len() }

// GetBlob reads through: memory first, disk on miss (promoting hits), under
// the same per-key shard lock as artifact access so a blob completing
// during a read cannot be raced by a stale disk load.
func (t *tieredStore) GetBlob(key string) ([]byte, bool) {
	if raw, ok := t.mem.GetBlob(key); ok {
		return raw, true
	}
	lock := t.shard(key)
	lock.Lock()
	defer lock.Unlock()
	if raw, ok := t.mem.GetBlob(key); ok {
		return raw, true
	}
	raw, ok := t.disk.GetBlob(key)
	if !ok {
		return nil, false
	}
	t.mem.PutBlob(key, raw)
	return raw, true
}

// PutBlob writes through to both tiers.
func (t *tieredStore) PutBlob(key string, raw []byte) {
	lock := t.shard(key)
	lock.Lock()
	defer lock.Unlock()
	t.mem.PutBlob(key, raw)
	t.disk.PutBlob(key, raw)
}

// GetSnapshot reads through: memory first, disk on miss (promoting hits),
// under the per-key shard lock like the other faces.
func (t *tieredStore) GetSnapshot(key string) ([]byte, bool) {
	if blob, ok := t.mem.GetSnapshot(key); ok {
		return blob, true
	}
	lock := t.shard(key)
	lock.Lock()
	defer lock.Unlock()
	if blob, ok := t.mem.GetSnapshot(key); ok {
		return blob, true
	}
	blob, ok := t.disk.GetSnapshot(key)
	if !ok {
		return nil, false
	}
	t.mem.PutSnapshot(key, blob)
	return blob, true
}

// PutSnapshot writes through to both tiers.
func (t *tieredStore) PutSnapshot(key string, blob []byte) {
	lock := t.shard(key)
	lock.Lock()
	defer lock.Unlock()
	t.mem.PutSnapshot(key, blob)
	t.disk.PutSnapshot(key, blob)
}

func (t *tieredStore) Status() StoreStatus {
	st := t.disk.Status()
	st.Tier = "mem+disk"
	st.MemEntries = t.mem.Len()
	t.mu.Lock()
	st.WarmHits = t.warmHits
	t.mu.Unlock()
	return st
}

func (t *tieredStore) Close() error { return t.disk.Close() }

var (
	_ Store = (*lru)(nil)
	_ Store = (*tieredStore)(nil)
	_ Store = (*diskStore)(nil)

	_ BlobStore = (*lru)(nil)
	_ BlobStore = (*tieredStore)(nil)
	_ BlobStore = (*diskStore)(nil)

	_ SnapshotStore = (*lru)(nil)
	_ SnapshotStore = (*tieredStore)(nil)
	_ SnapshotStore = (*diskStore)(nil)
)
