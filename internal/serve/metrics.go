package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// metrics is the server's counter set, exported in Prometheus text format
// on /metrics. Everything is guarded by one mutex — the counters are
// touched once per job transition, not per simulated cycle, so contention
// is irrelevant next to a simulation's runtime.
type metrics struct {
	mu sync.Mutex

	submitted   uint64 // jobs accepted
	rejected    uint64 // jobs refused (drain, queue overflow)
	done        uint64 // jobs reaching StateDone
	failed      uint64 // jobs reaching StateFailed
	wedged      uint64 // subset of failed whose cause is a *sim.WedgeError
	cacheHits   uint64 // submissions answered straight from the LRU
	cacheMisses uint64
	dedupJoined uint64 // submissions that attached to an in-flight run
	simsStarted uint64 // underlying simulations begun
	simsDone    uint64 // underlying simulations finished (either way)

	queued  int // jobs waiting for a worker
	running int // jobs whose simulation is executing

	// latencies is a ring of recent job latencies (seconds, submit →
	// terminal state, cache hits included) from which the quantile lines
	// are computed at scrape time.
	latencies [2048]float64
	latN      uint64
}

func (m *metrics) recordLatency(sec float64) {
	m.latencies[m.latN%uint64(len(m.latencies))] = sec
	m.latN++
}

// quantiles returns the p50/p99 of the retained latency window.
func (m *metrics) quantiles() (p50, p99 float64, n uint64) {
	n = m.latN
	fill := int(n)
	if fill > len(m.latencies) {
		fill = len(m.latencies)
	}
	if fill == 0 {
		return 0, 0, 0
	}
	window := make([]float64, fill)
	copy(window, m.latencies[:fill])
	sort.Float64s(window)
	at := func(q float64) float64 {
		i := int(q * float64(fill-1))
		return window[i]
	}
	return at(0.50), at(0.99), n
}

// render writes the Prometheus exposition. cacheLen is sampled by the
// caller (the cache has its own lock).
func (m *metrics) render(w io.Writer, cacheLen int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("tarserved_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", m.submitted)
	counter("tarserved_jobs_rejected_total", "Jobs refused (draining or queue overflow).", m.rejected)
	counter("tarserved_jobs_done_total", "Jobs that completed successfully.", m.done)
	counter("tarserved_jobs_failed_total", "Jobs that reached a failure state.", m.failed)
	counter("tarserved_jobs_wedged_total", "Failed jobs whose cause was a simulator wedge.", m.wedged)
	counter("tarserved_cache_hits_total", "Submissions answered from the result cache.", m.cacheHits)
	counter("tarserved_cache_misses_total", "Submissions that missed the result cache.", m.cacheMisses)
	counter("tarserved_dedup_joined_total", "Submissions deduplicated onto an in-flight simulation.", m.dedupJoined)
	counter("tarserved_sims_started_total", "Underlying simulations started.", m.simsStarted)
	counter("tarserved_sims_completed_total", "Underlying simulations finished.", m.simsDone)
	gauge("tarserved_jobs_queued", "Jobs waiting for a worker.", m.queued)
	gauge("tarserved_jobs_running", "Jobs whose simulation is executing.", m.running)
	gauge("tarserved_cache_entries", "Entries resident in the result cache.", cacheLen)
	p50, p99, n := m.quantiles()
	fmt.Fprintf(w, "# HELP tarserved_job_latency_seconds Job latency, submit to terminal state.\n")
	fmt.Fprintf(w, "# TYPE tarserved_job_latency_seconds summary\n")
	fmt.Fprintf(w, "tarserved_job_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(w, "tarserved_job_latency_seconds{quantile=\"0.99\"} %g\n", p99)
	fmt.Fprintf(w, "tarserved_job_latency_seconds_count %d\n", n)
}
