package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/workloads"
)

// maxExperimentSeries bounds the per-experiment summary table on /metrics:
// past it, the oldest experiment's labels are dropped (insertion order).
// The bound keeps the scrape surface finite no matter how many distinct
// experiments a long-lived server executes.
const maxExperimentSeries = 512

// expSeries is one experiment's series summary, labeled on /metrics by
// content key, benchmark and configuration. samplePoints is zero when the
// server runs with sampling disabled.
type expSeries struct {
	key, bench, config string
	cycles             uint64
	ipc                float64
	mcps               float64
	samplePoints       int
	cacheHits          uint64
}

// metrics is the server's counter set, exported in Prometheus text format
// on /metrics. Everything is guarded by one mutex — the counters are
// touched once per job transition, not per simulated cycle, so contention
// is irrelevant next to a simulation's runtime.
type metrics struct {
	mu sync.Mutex

	submitted   uint64 // jobs accepted
	rejected    uint64 // jobs refused (drain, queue overflow, admission, poison)
	done        uint64 // jobs reaching StateDone
	failed      uint64 // jobs reaching StateFailed
	wedged      uint64 // subset of failed whose cause is a *sim.WedgeError
	cacheHits   uint64 // submissions answered straight from the result store
	cacheMisses uint64
	dedupJoined uint64 // submissions that attached to an in-flight run
	simsStarted uint64 // underlying simulations begun
	simsDone    uint64 // underlying simulations finished (either way)

	// Overload-protection counters: submissions refused by the admission
	// controller or queue bound (shedQueueFull), jobs shed from the queue
	// when their deadline expired before a worker freed up (shedDeadline),
	// and submissions refused because their confhash is quarantined after
	// crash-looping the fleet (poisonShed).
	shedQueueFull uint64
	shedDeadline  uint64
	poisonShed    uint64

	// Sweep-orchestration counters: sweeps accepted, finished (either way),
	// answered whole from the durable sweep store, joined onto an identical
	// in-flight sweep, and the per-experiment traffic sweeps generated.
	sweepsSubmitted  uint64
	sweepsDone       uint64
	sweepsFailed     uint64
	sweepCacheHits   uint64
	sweepDedupJoined uint64
	sweepExperiments uint64
	sweepsRunning    int

	// Cluster counters: flights handed to the owning peer instead of the
	// local backend (jobsForwarded), flights executed locally because their
	// owner was unreachable (forwardFallback), and forwarded submissions
	// that were answered by this node's store or joined an in-flight run —
	// the fleet-wide single-flight payoff (crossNodeDedup).
	jobsForwarded   uint64
	forwardFallback uint64
	crossNodeDedup  uint64

	// Warm-up snapshot counters: simulations whose warm-up phase was
	// restored from a stored chip snapshot (snapHits) or simulated and
	// captured (snapMisses), and the cumulative simulated cycles those
	// restores avoided — the checkpoint feature's payoff in one number.
	snapHits          uint64
	snapMisses        uint64
	warmupCyclesSaved uint64

	// ewmaJob is the exponentially-weighted moving average of simulation
	// execution seconds (dequeue → completion), the admission controller's
	// queue-wait estimator. Zero until the first completion.
	ewmaJob float64

	// simCycles/simWallNs accumulate the timing simulator's own
	// throughput across every completed simulation, so a scrape can
	// derive the server's aggregate MCPS (cache hits add nothing — no
	// simulation ran).
	simCycles uint64
	simWallNs uint64

	queued  int // jobs waiting for a worker
	running int // jobs whose simulation is executing

	// latencies is a ring of recent job latencies (seconds, submit →
	// terminal state, cache hits included) from which the quantile lines
	// are computed at scrape time.
	latencies [2048]float64
	latN      uint64

	// experiments holds one series summary per completed experiment,
	// keyed by content address, bounded at maxExperimentSeries with
	// insertion-order eviction (expOrder).
	experiments map[string]*expSeries
	expOrder    []string
}

// recordExperiment captures one completed simulation's series summary for
// the /metrics per-experiment table. A re-run of the same key (cache
// eviction and resubmission) overwrites the summary in place, keeping its
// accumulated cache-hit count.
func (m *metrics) recordExperiment(key, bench, config string, res *workloads.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.experiments == nil {
		m.experiments = make(map[string]*expSeries)
	}
	e, ok := m.experiments[key]
	if !ok {
		e = &expSeries{key: key, bench: bench, config: config}
		m.experiments[key] = e
		m.expOrder = append(m.expOrder, key)
		for len(m.expOrder) > maxExperimentSeries {
			delete(m.experiments, m.expOrder[0])
			m.expOrder = m.expOrder[1:]
		}
	}
	e.cycles = res.Stats.Cycles
	e.mcps = res.MCPS()
	m.simCycles += res.SimCycles
	m.simWallNs += uint64(res.WallNs)
	if res.Stats.Cycles > 0 {
		e.ipc = float64(res.Stats.ScalarIns+res.Stats.VectorIns) / float64(res.Stats.Cycles)
	}
	if res.Series != nil {
		e.samplePoints = len(res.Series.Points)
		if ipc := res.Series.MeanIPC(); ipc > 0 {
			e.ipc = ipc
		}
	}
}

// bumpExperimentHitLocked counts a cache-served submission against its
// experiment's summary. Requires m.mu.
func (m *metrics) bumpExperimentHitLocked(key string) {
	if e, ok := m.experiments[key]; ok {
		e.cacheHits++
	}
}

func (m *metrics) recordLatency(sec float64) {
	m.latencies[m.latN%uint64(len(m.latencies))] = sec
	m.latN++
}

// quantiles returns the p50/p99 of the retained latency window.
func (m *metrics) quantiles() (p50, p99 float64, n uint64) {
	n = m.latN
	fill := int(n)
	if fill > len(m.latencies) {
		fill = len(m.latencies)
	}
	if fill == 0 {
		return 0, 0, 0
	}
	window := make([]float64, fill)
	copy(window, m.latencies[:fill])
	sort.Float64s(window)
	at := func(q float64) float64 {
		i := int(q * float64(fill-1))
		return window[i]
	}
	return at(0.50), at(0.99), n
}

// render writes the Prometheus exposition. st is the store's health block
// and poisoned the count of quarantined confhashes, both sampled by the
// caller (store and server have their own locks).
func (m *metrics) render(w io.Writer, st StoreStatus, poisoned int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("tarserved_jobs_submitted_total", "Jobs accepted by POST /v1/jobs.", m.submitted)
	counter("tarserved_jobs_rejected_total", "Jobs refused (draining or queue overflow).", m.rejected)
	counter("tarserved_jobs_done_total", "Jobs that completed successfully.", m.done)
	counter("tarserved_jobs_failed_total", "Jobs that reached a failure state.", m.failed)
	counter("tarserved_jobs_wedged_total", "Failed jobs whose cause was a simulator wedge.", m.wedged)
	counter("tarserved_cache_hits_total", "Submissions answered from the result cache.", m.cacheHits)
	counter("tarserved_cache_misses_total", "Submissions that missed the result cache.", m.cacheMisses)
	counter("tarserved_dedup_joined_total", "Submissions deduplicated onto an in-flight simulation.", m.dedupJoined)
	counter("tarserved_sims_started_total", "Underlying simulations started.", m.simsStarted)
	counter("tarserved_sims_completed_total", "Underlying simulations finished.", m.simsDone)
	counter("tarserved_sim_cycles_total", "Simulated cycles across all completed simulations.", m.simCycles)
	fmt.Fprintf(w, "# HELP tarserved_sim_wall_seconds_total Host wall-clock spent inside the simulation loop across all completed simulations.\n# TYPE tarserved_sim_wall_seconds_total counter\ntarserved_sim_wall_seconds_total %g\n", float64(m.simWallNs)/1e9)
	counter("tarserved_sweeps_submitted_total", "Sweeps accepted by POST /v1/sweeps.", m.sweepsSubmitted)
	counter("tarserved_sweeps_done_total", "Sweeps that completed successfully.", m.sweepsDone)
	counter("tarserved_sweeps_failed_total", "Sweeps that reached a failure state.", m.sweepsFailed)
	counter("tarserved_sweep_cache_hits_total", "Sweeps answered whole from the durable sweep store.", m.sweepCacheHits)
	counter("tarserved_sweep_dedup_joined_total", "Sweep submissions joined onto an identical in-flight sweep.", m.sweepDedupJoined)
	counter("tarserved_sweep_experiments_total", "Per-experiment submissions generated by sweep orchestration.", m.sweepExperiments)
	gauge("tarserved_sweeps_running", "Sweeps currently orchestrating experiments.", m.sweepsRunning)
	counter("tarserved_snapshot_hits_total", "Simulations whose warm-up phase was restored from a stored chip snapshot.", m.snapHits)
	counter("tarserved_snapshot_misses_total", "Simulations that simulated (and captured) their warm-up phase.", m.snapMisses)
	counter("tarserved_warmup_cycles_saved_total", "Simulated cycles avoided by restoring warm-up snapshots.", m.warmupCyclesSaved)
	counter("tarserved_jobs_forwarded_total", "Flights routed to the owning cluster peer instead of the local backend.", m.jobsForwarded)
	counter("tarserved_forward_fallback_total", "Flights executed locally because their owning peer was unreachable.", m.forwardFallback)
	counter("tarserved_cross_node_dedup_total", "Forwarded submissions answered by this node's store or an in-flight run.", m.crossNodeDedup)
	counter("tarserved_shed_queue_full_total", "Submissions refused because the queue was full or the estimated wait exceeded the deadline.", m.shedQueueFull)
	counter("tarserved_shed_deadline_total", "Queued jobs shed because their deadline expired before a worker freed up.", m.shedDeadline)
	counter("tarserved_poison_shed_total", "Submissions refused because their confhash is quarantined after crash-looping workers.", m.poisonShed)
	gauge("tarserved_jobs_queued", "Jobs waiting for a worker.", m.queued)
	gauge("tarserved_jobs_running", "Jobs whose simulation is executing.", m.running)
	gauge("tarserved_cache_entries", "Entries resident in the result cache.", st.MemEntries)
	gauge("tarserved_poisoned_confhashes", "Confhashes currently quarantined by the crash circuit breaker.", poisoned)
	fmt.Fprintf(w, "# HELP tarserved_job_ewma_seconds EWMA of simulation execution seconds, the admission controller's wait estimator.\n# TYPE tarserved_job_ewma_seconds gauge\ntarserved_job_ewma_seconds %g\n", m.ewmaJob)
	renderStore(w, st)
	p50, p99, n := m.quantiles()
	fmt.Fprintf(w, "# HELP tarserved_job_latency_seconds Job latency, submit to terminal state.\n")
	fmt.Fprintf(w, "# TYPE tarserved_job_latency_seconds summary\n")
	fmt.Fprintf(w, "tarserved_job_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(w, "tarserved_job_latency_seconds{quantile=\"0.99\"} %g\n", p99)
	fmt.Fprintf(w, "tarserved_job_latency_seconds_count %d\n", n)
	m.renderExperimentsLocked(w)
}

// renderStore writes the store-health gauges. The store tier is a label so
// one dashboard query covers memory-only and tiered deployments.
func renderStore(w io.Writer, st StoreStatus) {
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s{tier=%q} %d\n", name, help, name, name, st.Tier, v)
	}
	g("tarserved_store_mem_entries", "Artifacts resident in the in-memory store tier.", int64(st.MemEntries))
	g("tarserved_store_disk_entries", "Artifacts resident in the disk store tier.", int64(st.DiskEntries))
	g("tarserved_store_disk_bytes", "Bytes of artifacts resident on disk.", st.DiskBytes)
	g("tarserved_store_warm_start", "Artifacts recovered from disk when the store opened.", int64(st.WarmStart))
	g("tarserved_store_warm_hits", "Gets answered by the disk tier after a memory miss.", int64(st.WarmHits))
	g("tarserved_store_quarantined", "Undecodable or schema-skewed files quarantined by the loader.", int64(st.Quarantined))
	g("tarserved_store_io_errors", "Disk reads and writes that failed (real or injected).", int64(st.IOErrors))
	g("tarserved_store_evicted", "Artifacts dropped by the disk tier's size cap.", int64(st.Evicted))
	g("tarserved_snapshot_entries", "Chip snapshots resident in the store.", int64(st.SnapEntries))
	g("tarserved_snapshot_bytes", "Bytes of chip snapshots resident in the store.", st.SnapBytes)
	g("tarserved_snapshot_quarantined", "Chip snapshots that failed envelope verification and were set aside.", int64(st.SnapQuarantined))
	g("tarserved_snapshot_evicted", "Chip snapshots dropped by the snapshot byte cap.", int64(st.SnapEvicted))
}

// renderExperimentsLocked writes the per-experiment series summaries as
// labeled gauges, in insertion order so the scrape is deterministic.
// Requires m.mu.
func (m *metrics) renderExperimentsLocked(w io.Writer) {
	if len(m.expOrder) == 0 {
		return
	}
	help := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	labels := func(e *expSeries) string {
		return fmt.Sprintf("{key=%q,bench=%q,config=%q}", e.key, e.bench, e.config)
	}
	help("tarserved_experiment_cycles", "Simulated cycles of the experiment's last run.")
	for _, k := range m.expOrder {
		e := m.experiments[k]
		fmt.Fprintf(w, "tarserved_experiment_cycles%s %d\n", labels(e), e.cycles)
	}
	help("tarserved_experiment_ipc", "Retired instructions per cycle (series mean when sampled).")
	for _, k := range m.expOrder {
		e := m.experiments[k]
		fmt.Fprintf(w, "tarserved_experiment_ipc%s %g\n", labels(e), e.ipc)
	}
	help("tarserved_experiment_mcps", "Simulator throughput of the experiment's last run, millions of simulated cycles per host wall second.")
	for _, k := range m.expOrder {
		e := m.experiments[k]
		fmt.Fprintf(w, "tarserved_experiment_mcps%s %g\n", labels(e), e.mcps)
	}
	help("tarserved_experiment_sample_points", "Retained cycle-interval sample points (0 = sampler off).")
	for _, k := range m.expOrder {
		e := m.experiments[k]
		fmt.Fprintf(w, "tarserved_experiment_sample_points%s %d\n", labels(e), e.samplePoints)
	}
	help("tarserved_experiment_cache_hits", "Submissions of this experiment answered from the result cache.")
	for _, k := range m.expOrder {
		e := m.experiments[k]
		fmt.Fprintf(w, "tarserved_experiment_cache_hits%s %d\n", labels(e), e.cacheHits)
	}
}
