package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faults"
	chipmetrics "repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestMain doubles this test binary as the tarworker: when the supervisor
// spawns it with TARWORKER_BE_WORKER=1 it runs the worker protocol instead
// of the test suite. TARWORKER_TEST_DELAY_MS inserts a sleep between the
// hello line and the simulation, giving the SIGKILL drills a deterministic
// window in which the worker is visibly busy.
func TestMain(m *testing.M) {
	if os.Getenv("TARWORKER_BE_WORKER") == "1" {
		var after func()
		if ms, _ := strconv.Atoi(os.Getenv("TARWORKER_TEST_DELAY_MS")); ms > 0 {
			after = func() { time.Sleep(time.Duration(ms) * time.Millisecond) }
		}
		os.Exit(workerRun(os.Stdin, os.Stdout, after))
	}
	os.Exit(m.Run())
}

// newSubprocServer builds a server on a subprocess fleet whose workers are
// re-executions of this test binary.
func newSubprocServer(t *testing.T, workers, delayMs int, fcfg *faults.Config) (*Server, *httptest.Server, *SubprocessBackend) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	env := append(os.Environ(), "TARWORKER_BE_WORKER=1")
	if delayMs > 0 {
		env = append(env, fmt.Sprintf("TARWORKER_TEST_DELAY_MS=%d", delayMs))
	}
	be, err := NewSubprocessBackend(SubprocessOptions{
		WorkerBin: exe,
		Workers:   workers,
		Env:       env,
		Faults:    fcfg,
		Retry:     RetryPolicy{MaxRetries: 2, BackoffBase: 10 * time.Millisecond},
		Stderr:    io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: workers, Backend: be})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts, be
}

// TestWorkerProtocol drives WorkerMain directly: one spec in, a hello line
// and an ok reply out, with the result keyed and schema-stamped.
func TestWorkerProtocol(t *testing.T) {
	spec := JobSpec{Bench: "streams_copy", Config: "T", Scale: "test"}
	in, _ := json.Marshal(spec)
	var out bytes.Buffer
	if code := WorkerMain(bytes.NewReader(in), &out); code != 0 {
		t.Fatalf("worker exit %d, output:\n%s", code, out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("worker wrote %d lines, want 2:\n%s", len(lines), out.String())
	}
	var h workerHello
	if err := json.Unmarshal([]byte(lines[0]), &h); err != nil || h.Event != "start" || h.Schema != SchemaVersion {
		t.Fatalf("bad hello %q (err %v)", lines[0], err)
	}
	var r workerReply
	if err := json.Unmarshal([]byte(lines[1]), &r); err != nil || !r.OK || r.Result == nil {
		t.Fatalf("bad reply %q (err %v)", lines[1], err)
	}
	if r.Result.Schema != SchemaVersion || r.Result.Bench != "streams_copy" || r.Result.Key == "" {
		t.Fatalf("bad result %+v", r.Result)
	}
}

// TestWorkerProtocolBadSpec: an invalid spec comes back as a structured
// envelope over the protocol (exit 0), not a process failure.
func TestWorkerProtocolBadSpec(t *testing.T) {
	in, _ := json.Marshal(JobSpec{Bench: "no-such-bench", Config: "T", Scale: "test"})
	var out bytes.Buffer
	if code := WorkerMain(bytes.NewReader(in), &out); code != 0 {
		t.Fatalf("worker exit %d", code)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	var r workerReply
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &r); err != nil {
		t.Fatal(err)
	}
	if r.OK || r.Error == nil || r.Error.Code != ErrCodeBadRequest || r.Status != 400 {
		t.Fatalf("bad-spec reply = %+v", r)
	}
}

// TestSubprocessBackendE2E: a real job through the fleet, plus gauge and
// healthz checks.
func TestSubprocessBackendE2E(t *testing.T) {
	_, ts, _ := newSubprocServer(t, 2, 0, nil)
	st, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "T", Scale: "test"})
	fin := waitDone(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job failed: %+v", fin.Error)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	var hz struct {
		Status       string `json:"status"`
		Backend      string `json:"backend"`
		WorkersAlive int    `json:"workers_alive"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Backend != "subprocess" || hz.Status != "ok" || hz.WorkersAlive == 0 {
		t.Fatalf("healthz body = %+v", hz)
	}
	if alive := metric(t, ts.URL, "tarserved_workers_alive"); alive == 0 {
		t.Error("workers_alive gauge is 0")
	}
}

// TestSubprocessWorkerSIGKILLMidJob is the headline resilience drill: a
// busy worker is SIGKILLed mid-job from outside; the job must be retried on
// another worker and still complete, the client sees 200, and the server
// keeps serving.
func TestSubprocessWorkerSIGKILLMidJob(t *testing.T) {
	_, ts, be := newSubprocServer(t, 2, 800, nil)
	st, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "T", Scale: "test"})

	// The delay hook holds the worker visibly busy; aim at its pid.
	var pid int
	deadline := time.Now().Add(10 * time.Second)
	for pid == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no worker went busy")
		}
		if pids := be.busyPids(); len(pids) > 0 {
			pid = pids[0]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		t.Fatalf("kill %d: %v", pid, err)
	}

	fin := waitDone(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("killed job did not recover: %+v", fin.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result after retry: HTTP %d, want 200", resp.StatusCode)
	}
	if r := metric(t, ts.URL, "tarserved_workers_retries"); r < 1 {
		t.Errorf("workers_retries = %v, want >= 1", r)
	}
	if r := metric(t, ts.URL, "tarserved_workers_restarts"); r < 1 {
		t.Errorf("workers_restarts = %v, want >= 1", r)
	}
	// The fleet still serves: a fresh job completes.
	st2, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "EV8", Scale: "test"})
	if fin2 := waitDone(t, ts.URL, st2.ID); fin2.State != StateDone {
		t.Fatalf("post-kill job failed: %+v", fin2.Error)
	}
}

// TestSubprocessFaultCampaignKill drives the same drill through the faults
// harness: a WorkerKiller campaign SIGKILLs the targeted cell's worker on
// its first attempt, and the retry completes the job.
func TestSubprocessFaultCampaignKill(t *testing.T) {
	_, ts, _ := newSubprocServer(t, 2, 0, faults.WorkerKiller("streams_copy@T"))
	st, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "T", Scale: "test"})
	fin := waitDone(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("targeted job did not recover: %+v", fin.Error)
	}
	if r := metric(t, ts.URL, "tarserved_workers_retries"); r < 1 {
		t.Errorf("workers_retries = %v, want >= 1", r)
	}
	// An untargeted cell is untouched: no further retries accrue.
	before := metric(t, ts.URL, "tarserved_workers_retries")
	st2, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "EV8", Scale: "test"})
	if fin2 := waitDone(t, ts.URL, st2.ID); fin2.State != StateDone {
		t.Fatalf("untargeted job failed: %+v", fin2.Error)
	}
	if after := metric(t, ts.URL, "tarserved_workers_retries"); after != before {
		t.Errorf("untargeted cell accrued retries: %v -> %v", before, after)
	}
}

// TestCrossBackendByteEquality is the tentpole's correctness contract: the
// same submission produces byte-identical /result artifacts whether it ran
// in-process or in a subprocess worker.
func TestCrossBackendByteEquality(t *testing.T) {
	fetch := func(ts *httptest.Server) []byte {
		st, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "T", Scale: "test"})
		fin := waitDone(t, ts.URL, st.ID)
		if fin.State != StateDone {
			t.Fatalf("job failed: %+v", fin.Error)
		}
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return body
	}
	_, inproc := newTestServer(t, Options{Workers: 1}) // real simulator
	_, subproc, _ := newSubprocServer(t, 1, 0, nil)
	a, b := fetch(inproc), fetch(subproc)
	if err := CompareArtifacts(a, b); err != nil {
		t.Fatalf("backends disagree: %v\ninprocess: %s\nsubprocess: %s", err, a, b)
	}
}

// TestRetryPolicyDelay pins the backoff schedule: exponential from the
// base, capped at the max.
func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{BackoffBase: 100 * time.Millisecond, BackoffMax: 5 * time.Second}.withDefaults()
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 3200 * time.Millisecond,
		5 * time.Second, 5 * time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestRetryCrashesBackoffAndCap drives the requeue loop with a fake clock:
// a job that kills every worker it touches is retried with exponential
// backoff, then fails with code "worker_crash" and its attempt count.
func TestRetryCrashesBackoffAndCap(t *testing.T) {
	var sleeps []time.Duration
	sleep := func(d time.Duration) { sleeps = append(sleeps, d) }
	p := RetryPolicy{MaxRetries: 3, BackoffBase: 50 * time.Millisecond, BackoffMax: 100 * time.Millisecond}

	attempts := 0
	_, err := retryCrashes(p, sleep, func(try int) (*workloads.Result, bool, error) {
		if try != attempts {
			t.Errorf("attempt counter skew: try=%d attempts=%d", try, attempts)
		}
		attempts++
		return nil, true, fmt.Errorf("worker died (attempt %d)", try)
	})
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4 (1 + MaxRetries)", attempts)
	}
	wantSleeps := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 100 * time.Millisecond}
	if len(sleeps) != len(wantSleeps) {
		t.Fatalf("sleeps = %v, want %v", sleeps, wantSleeps)
	}
	for i, w := range wantSleeps {
		if sleeps[i] != w {
			t.Errorf("sleep %d = %v, want %v", i, sleeps[i], w)
		}
	}
	je, ok := err.(*JobError)
	if !ok {
		t.Fatalf("error type %T, want *JobError", err)
	}
	if je.Status != 500 || je.JSON.Code != ErrCodeWorkerCrash || je.JSON.Attempts != 4 {
		t.Fatalf("exhausted-retries error = %+v", je)
	}
}

// TestRetryCrashesRecoversAndPassesThrough: one crash then success costs
// exactly one backoff; a non-retryable failure is returned untouched with
// no sleeping at all.
func TestRetryCrashesRecoversAndPassesThrough(t *testing.T) {
	var sleeps []time.Duration
	sleep := func(d time.Duration) { sleeps = append(sleeps, d) }
	p := RetryPolicy{MaxRetries: 2, BackoffBase: 10 * time.Millisecond}

	res, err := retryCrashes(p, sleep, func(try int) (*workloads.Result, bool, error) {
		if try == 0 {
			return nil, true, fmt.Errorf("worker died")
		}
		return fakeResult("dgemm", "T"), false, nil
	})
	if err != nil || res == nil {
		t.Fatalf("recovery failed: res=%v err=%v", res, err)
	}
	if len(sleeps) != 1 {
		t.Fatalf("sleeps = %v, want exactly one backoff", sleeps)
	}

	sleeps = nil
	wedge := &JobError{Status: 422, JSON: ErrorJSON{Code: ErrCodeWedge, Message: "wedged"}}
	_, err = retryCrashes(p, sleep, func(try int) (*workloads.Result, bool, error) {
		return nil, false, wedge
	})
	if err != wedge {
		t.Fatalf("non-retryable error rewritten: %v", err)
	}
	if len(sleeps) != 0 {
		t.Fatalf("non-retryable failure slept: %v", sleeps)
	}
}

// fakeBackend lets healthz tests dial in arbitrary fleet states.
type fakeBackend struct {
	kind  string
	alive int
	reg   *chipmetrics.Registry
}

func (f *fakeBackend) Kind() string { return f.kind }
func (f *fakeBackend) Execute(spec *JobSpec) (*workloads.Result, error) {
	return fakeResult(spec.Bench, spec.Config), nil
}
func (f *fakeBackend) Alive() int                      { return f.alive }
func (f *fakeBackend) Registry() *chipmetrics.Registry { return f.reg }
func (f *fakeBackend) Close()                          {}

// TestHealthzDegradedWhenNoWorkers: a fleet with zero live workers must
// fail its health check even though the HTTP surface is up.
func TestHealthzDegradedWhenNoWorkers(t *testing.T) {
	fb := &fakeBackend{kind: "subprocess", alive: 0, reg: chipmetrics.NewRegistry()}
	_, ts := newTestServer(t, Options{Workers: 1, Backend: fb})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead fleet: HTTP %d, want 503", resp.StatusCode)
	}
	var hz struct {
		Status  string `json:"status"`
		Backend string `json:"backend"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.Backend != "subprocess" {
		t.Fatalf("healthz body = %+v", hz)
	}
}

// TestHealthzReportsBackend: the in-process default reports its kind and
// slot count.
func TestHealthzReportsBackend(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 3, Run: func(b string, c *sim.Config, s workloads.Scale) (*workloads.Result, error) {
		return fakeResult(b, c.Name), nil
	}})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status       string `json:"status"`
		Backend      string `json:"backend"`
		WorkersAlive int    `json:"workers_alive"`
		QueueDepth   int    `json:"queue_depth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Backend != "inprocess" || hz.WorkersAlive != 3 {
		t.Fatalf("healthz body = %+v", hz)
	}
}
