package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faults"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// defaultDiskMaxBytes bounds the disk store when no cap is configured: 1 GiB
// of artifacts, far beyond any single-node sweep at today's scales.
const defaultDiskMaxBytes = 1 << 30

// diskStore is the crash-safe tier of the result store: one file per
// artifact under <dir>/schema-<N>/<confhash>.json, in the same
// schema-versioned JobResult encoding the API serves. Durability comes from
// the write protocol (temp file → fsync → rename); schema isolation comes
// from the directory name (a store written by an older build is simply a
// different directory, never a byte-diff hazard); and corruption tolerance
// comes from the loader: any file that fails to decode, carries a skewed
// schema stamp, or contradicts its own filename is moved to
// <dir>/quarantine/ and counted — never served, never fatal.
//
// Eviction is least-recently-accessed by a logical access clock (seeded
// from file modification order at open), driven by an on-disk byte cap.
type diskStore struct {
	dir      string // artifact directory (schema-versioned)
	quarDir  string
	blobDir  string // aggregate blobs (sweep results), own schema namespace
	snapDir  string // chip snapshots, keyed by the snapshot wire schema
	maxBytes int64
	inj      *faults.Injector

	mu        sync.Mutex
	entries   map[string]*diskEntry
	total     int64
	clock     int64 // logical access time, bumped per touch
	warmStart int   // artifacts validated at open
	quarCount uint64
	ioErrors  uint64
	evicted   uint64

	// Snapshot-face accounting, separate from the artifact index: chip
	// snapshots are large (full memory images) and evict against their own
	// byte cap so they can never push experiment results out of the store.
	snaps     map[string]*diskEntry
	snapTotal int64
	snapQuar  uint64
	snapEvict uint64
}

type diskEntry struct {
	size  int64
	atime int64
}

// openDiskStore scans dir, validating every artifact of this build's schema
// and quarantining what it cannot trust. Crash debris (orphaned temp files)
// is removed. The scan is the warm start: everything that survives it is
// served without re-simulation.
func openDiskStore(dir string, maxBytes int64, inj *faults.Injector) (*diskStore, error) {
	if maxBytes <= 0 {
		maxBytes = defaultDiskMaxBytes
	}
	d := &diskStore{
		dir: filepath.Join(dir, fmt.Sprintf("schema-%d", SchemaVersion)),
		// Sweep blobs live outside the artifact scan directory (the loader
		// quarantines anything there it cannot decode as a JobResult) and
		// carry their own schema namespace.
		blobDir: filepath.Join(dir, "sweeps", fmt.Sprintf("schema-%d", SweepSchemaVersion)),
		// Chip snapshots are versioned by the snapshot wire schema, not the
		// JobResult schema: the two evolve independently, and a directory
		// per version means a build never even scans blobs it cannot read.
		snapDir:  filepath.Join(dir, "snapshots", fmt.Sprintf("schema-%d", snapshot.SchemaVersion)),
		quarDir:  filepath.Join(dir, "quarantine"),
		maxBytes: maxBytes,
		inj:      inj,
		entries:  make(map[string]*diskEntry),
		snaps:    make(map[string]*diskEntry),
	}
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(d.quarDir, 0o755); err != nil {
		return nil, err
	}
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	// Validate in modification order so the seeded access clock preserves
	// the previous process's recency ordering for eviction purposes.
	type candidate struct {
		name string
		mod  int64
	}
	var cands []candidate
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(d.dir, name)) // crash debris
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		cands = append(cands, candidate{name: name, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mod < cands[j].mod })
	for _, c := range cands {
		key := strings.TrimSuffix(c.name, ".json")
		path := filepath.Join(d.dir, c.name)
		raw, err := os.ReadFile(path)
		if err != nil {
			d.ioErrors++
			continue
		}
		if _, err := decodeArtifact(key, raw); err != nil {
			d.quarantineLocked(key, path)
			continue
		}
		d.clock++
		d.entries[key] = &diskEntry{size: int64(len(raw)), atime: d.clock}
		d.total += int64(len(raw))
	}
	d.warmStart = len(d.entries)
	d.evictLocked()
	d.scanSnapshots()
	return d, nil
}

// snapSuffix names chip-snapshot files; the extension matches the binary
// snapshot encoding rather than the JSON artifact one.
const snapSuffix = ".snap"

// scanSnapshots validates every resident chip snapshot at open: envelope
// verification (magic, schema, CRC) for each file, quarantine for anything
// that fails, tmp-debris removal, and an access clock seeded from file
// modification order so eviction preserves the previous process's recency.
func (d *diskStore) scanSnapshots() {
	names, err := os.ReadDir(d.snapDir)
	if err != nil {
		return // no snapshot directory yet: first run, nothing to recover
	}
	type candidate struct {
		name string
		mod  int64
	}
	var cands []candidate
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(d.snapDir, name))
			continue
		}
		if !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		cands = append(cands, candidate{name: name, mod: info.ModTime().UnixNano()})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mod < cands[j].mod })
	for _, c := range cands {
		key := strings.TrimSuffix(c.name, snapSuffix)
		path := filepath.Join(d.snapDir, c.name)
		raw, err := os.ReadFile(path)
		if err != nil {
			d.ioErrors++
			continue
		}
		if snapshot.Verify(raw) != nil {
			d.quarantineSnapLocked(key, path)
			continue
		}
		d.clock++
		d.snaps[key] = &diskEntry{size: int64(len(raw)), atime: d.clock}
		d.snapTotal += int64(len(raw))
	}
	d.evictSnapsLocked()
}

const tmpPrefix = ".tmp-"

// safeKey reports whether a content key can be used as a filename verbatim.
// Real confhash keys are 32 hex characters; anything outside the safe set
// (or absurdly long) is not persisted rather than risking path tricks.
func safeKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

func (d *diskStore) path(key string) string { return filepath.Join(d.dir, key+".json") }

// Put persists one completed result. Content-addressed idempotence makes a
// re-put of a resident key a no-op, which is exactly what the tiered
// store's single-flight contract needs: a result completing while a
// warm-start load is in flight cannot be written twice. Failures (real or
// injected) cost durability for this one artifact, nothing else.
func (d *diskStore) Put(key string, res *workloads.Result) {
	if !safeKey(key) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[key]; ok {
		return
	}
	raw, err := json.Marshal(EncodeResult(key, res))
	if err != nil {
		d.ioErrors++
		return
	}
	if d.inj.DiskWriteError() {
		d.ioErrors++
		return
	}
	if d.inj.TornWrite() {
		// Chaos: a prefix lands at the final path, as if a crash beat the
		// atomic-rename protocol. The entry is registered so the next read
		// exercises the quarantine path.
		torn := raw[:len(raw)/2]
		if err := os.WriteFile(d.path(key), torn, 0o644); err != nil {
			d.ioErrors++
			return
		}
		d.clock++
		d.entries[key] = &diskEntry{size: int64(len(torn)), atime: d.clock}
		d.total += int64(len(torn))
		d.evictLocked()
		return
	}
	tmp, err := os.CreateTemp(d.dir, tmpPrefix+key+"-*")
	if err != nil {
		d.ioErrors++
		return
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		d.ioErrors++
		return
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		d.ioErrors++
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		d.ioErrors++
		return
	}
	if err := os.Rename(tmpName, d.path(key)); err != nil {
		os.Remove(tmpName)
		d.ioErrors++
		return
	}
	d.syncDir()
	d.clock++
	d.entries[key] = &diskEntry{size: int64(len(raw)), atime: d.clock}
	d.total += int64(len(raw))
	d.evictLocked()
}

// syncDir flushes the directory entry so the rename itself is durable.
// Best-effort: a failure here narrows the crash window, it does not corrupt
// anything (the artifact file is already synced).
func (d *diskStore) syncDir() {
	if f, err := os.Open(d.dir); err == nil {
		f.Sync()
		f.Close()
	}
}

// Get loads one artifact. A read failure is a transient miss; a decode or
// validation failure quarantines the file and misses. Either way the caller
// re-simulates — the store never serves bytes it cannot vouch for.
func (d *diskStore) Get(key string) (*workloads.Result, bool) {
	if !safeKey(key) {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[key]
	if !ok {
		return nil, false
	}
	if d.inj.DiskReadError() {
		d.ioErrors++
		return nil, false
	}
	path := d.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		d.ioErrors++
		return nil, false
	}
	res, err := decodeArtifact(key, raw)
	if err != nil {
		d.dropLocked(key, e)
		d.quarantineLocked(key, path)
		return nil, false
	}
	d.clock++
	e.atime = d.clock
	return res, true
}

// dropLocked removes an entry from the index without touching its file.
func (d *diskStore) dropLocked(key string, e *diskEntry) {
	delete(d.entries, key)
	d.total -= e.size
}

// quarantineLocked moves a distrusted file aside (removing it if the move
// fails) and counts it. Requires d.mu at open time the lock is not yet
// contended, so the same helper serves both paths.
func (d *diskStore) quarantineLocked(key, path string) {
	dst := filepath.Join(d.quarDir, key+".json")
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	d.quarCount++
}

// evictLocked enforces the byte cap: least-recently-accessed artifacts are
// deleted until the store fits. Requires d.mu.
func (d *diskStore) evictLocked() {
	for d.total > d.maxBytes && len(d.entries) > 0 {
		var coldKey string
		var cold *diskEntry
		for k, e := range d.entries {
			if cold == nil || e.atime < cold.atime {
				coldKey, cold = k, e
			}
		}
		d.dropLocked(coldKey, cold)
		os.Remove(d.path(coldKey))
		d.evicted++
	}
}

func (d *diskStore) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

func (d *diskStore) Status() StoreStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	return StoreStatus{
		Tier:            "disk",
		DiskEntries:     len(d.entries),
		DiskBytes:       d.total,
		WarmStart:       d.warmStart,
		Quarantined:     d.quarCount,
		IOErrors:        d.ioErrors,
		Evicted:         d.evicted,
		SnapEntries:     len(d.snaps),
		SnapBytes:       d.snapTotal,
		SnapQuarantined: d.snapQuar,
		SnapEvicted:     d.snapEvict,
	}
}

// GetBlob reads one aggregate blob. Read failures are misses; blob
// validation (schema stamp, key match) belongs to the caller, which owns
// the blob encoding.
func (d *diskStore) GetBlob(key string) ([]byte, bool) {
	if !safeKey(key) {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inj.DiskReadError() {
		d.ioErrors++
		return nil, false
	}
	raw, err := os.ReadFile(filepath.Join(d.blobDir, key+".json"))
	if err != nil {
		return nil, false
	}
	return raw, true
}

// PutBlob persists one aggregate blob with the artifact write protocol
// (temp file → fsync → rename), so a crash mid-write leaves debris, never a
// half blob at the final path.
func (d *diskStore) PutBlob(key string, raw []byte) {
	if !safeKey(key) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := os.MkdirAll(d.blobDir, 0o755); err != nil {
		d.ioErrors++
		return
	}
	if d.inj.DiskWriteError() {
		d.ioErrors++
		return
	}
	tmp, err := os.CreateTemp(d.blobDir, tmpPrefix+key+"-*")
	if err != nil {
		d.ioErrors++
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(raw)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmpName)
		d.ioErrors++
		return
	}
	if err := os.Rename(tmpName, filepath.Join(d.blobDir, key+".json")); err != nil {
		os.Remove(tmpName)
		d.ioErrors++
	}
}

func (d *diskStore) snapPath(key string) string { return filepath.Join(d.snapDir, key+snapSuffix) }

// GetSnapshot loads one chip snapshot, re-verifying the envelope on every
// read — bytes that rotted on disk since the open-time scan are quarantined
// and reported as a miss, never handed to RestoreChip.
func (d *diskStore) GetSnapshot(key string) ([]byte, bool) {
	if !safeKey(key) {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.snaps[key]
	if !ok {
		return nil, false
	}
	if d.inj.DiskReadError() {
		d.ioErrors++
		return nil, false
	}
	path := d.snapPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		d.ioErrors++
		return nil, false
	}
	if snapshot.Verify(raw) != nil {
		delete(d.snaps, key)
		d.snapTotal -= e.size
		d.quarantineSnapLocked(key, path)
		return nil, false
	}
	d.clock++
	e.atime = d.clock
	return raw, true
}

// PutSnapshot persists one chip snapshot with the artifact write protocol
// (temp file → fsync → rename → dir sync). Blobs that fail envelope
// verification are refused outright — the store never persists bytes it
// would later quarantine.
func (d *diskStore) PutSnapshot(key string, blob []byte) {
	if !safeKey(key) || snapshot.Verify(blob) != nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.snaps[key]; ok {
		return
	}
	if err := os.MkdirAll(d.snapDir, 0o755); err != nil {
		d.ioErrors++
		return
	}
	if d.inj.DiskWriteError() {
		d.ioErrors++
		return
	}
	tmp, err := os.CreateTemp(d.snapDir, tmpPrefix+key+"-*")
	if err != nil {
		d.ioErrors++
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(blob)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmpName)
		d.ioErrors++
		return
	}
	if err := os.Rename(tmpName, d.snapPath(key)); err != nil {
		os.Remove(tmpName)
		d.ioErrors++
		return
	}
	d.syncDir()
	d.clock++
	d.snaps[key] = &diskEntry{size: int64(len(blob)), atime: d.clock}
	d.snapTotal += int64(len(blob))
	d.evictSnapsLocked()
}

// quarantineSnapLocked moves a distrusted snapshot aside and counts it
// separately from artifact quarantines. Requires d.mu (or open-time
// exclusivity).
func (d *diskStore) quarantineSnapLocked(key, path string) {
	dst := filepath.Join(d.quarDir, key+snapSuffix)
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	d.snapQuar++
}

// evictSnapsLocked enforces the snapshot byte cap (the same configured cap
// as artifacts, accounted separately): least-recently-accessed snapshots
// are deleted until the tier fits. Requires d.mu.
func (d *diskStore) evictSnapsLocked() {
	for d.snapTotal > d.maxBytes && len(d.snaps) > 0 {
		var coldKey string
		var cold *diskEntry
		for k, e := range d.snaps {
			if cold == nil || e.atime < cold.atime {
				coldKey, cold = k, e
			}
		}
		delete(d.snaps, coldKey)
		d.snapTotal -= cold.size
		os.Remove(d.snapPath(coldKey))
		d.snapEvict++
	}
}

// Close is a no-op: every put is already durable at rename time.
func (d *diskStore) Close() error { return nil }

// decodeArtifact validates one on-disk artifact end to end: JSON shape,
// schema stamp, self-consistent content key, and a reconstructible result.
// Anything less is quarantine material.
func decodeArtifact(key string, raw []byte) (*workloads.Result, error) {
	var jr JobResult
	if err := json.Unmarshal(raw, &jr); err != nil {
		return nil, fmt.Errorf("undecodable artifact: %w", err)
	}
	if jr.Schema != SchemaVersion {
		return nil, fmt.Errorf("schema skew: artifact is schema %d, this build writes %d", jr.Schema, SchemaVersion)
	}
	if jr.Key != key {
		return nil, fmt.Errorf("key mismatch: file named %s carries key %s", key, jr.Key)
	}
	res, err := resultFromWire(&jr)
	if err != nil {
		return nil, err
	}
	return res, nil
}
