package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/confhash"
	"repro/internal/dse"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// sweepRunCounter counts real simulations per confhash key, so sweep tests
// can assert the dedup contract: simulations == unique content addresses.
type sweepRunCounter struct {
	mu   sync.Mutex
	runs map[string]int
	// delay slows each "simulation" down to force overlap windows.
	delay time.Duration
}

func (c *sweepRunCounter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.runs {
		n += v
	}
	return n
}

func (c *sweepRunCounter) unique() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.runs)
}

// run is the stub RunFunc: cycles shrink with lane count and grow with a
// small L2, so swept points land at distinct, physically plausible spots in
// the objective space (more lanes = faster but hotter and bigger).
func (c *sweepRunCounter) run(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
	key := confhash.Key(bench, scale.String(), cfg)
	c.mu.Lock()
	if c.runs == nil {
		c.runs = make(map[string]int)
	}
	c.runs[key]++
	c.mu.Unlock()
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	lanes := 1
	if cfg.HasVbox {
		lanes = cfg.Vbox.Lanes
	}
	cycles := uint64(16_000_000 / lanes)
	if cfg.L2.Bytes < 16<<20 {
		cycles += 500_000
	}
	return &workloads.Result{
		Bench:  bench,
		Config: cfg.Name,
		Scale:  scale,
		Stats:  &stats.Stats{Cycles: cycles, Flops: 512, MemOps: 256, OtherOps: 64, ScalarIns: 100, VectorIns: 10, VecOps: 768},
	}, nil
}

func postSweep(t *testing.T, url string, spec dse.Spec) (SweepStatus, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding sweep response (HTTP %d): %v", resp.StatusCode, err)
	}
	return st, resp.StatusCode
}

func waitSweepDone(t *testing.T, url, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/sweeps/" + id + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		var st SweepStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
	}
	t.Fatalf("sweep %s never reached a terminal state", id)
	return SweepStatus{}
}

func sweep2x2() dse.Spec {
	return dse.Spec{
		Config:  "T",
		Benches: []string{"dgemm", "fft"},
		Scale:   "test",
		Axes: map[string]dse.Axis{
			"lanes": {Values: []float64{8, 16}},
			"l2_kb": {Values: []float64{4096, 16384}},
		},
	}
}

// TestSweepEndToEnd drives a 2×2 grid over two benches through the full
// pipeline and checks the tentpole contract: simulations == unique
// confhashes (the {lanes:16, l2_kb:16384} point IS the baseline and must
// not re-simulate), the baseline's speedup is exactly 1, and the Pareto
// frontier is non-empty with no dominated member.
func TestSweepEndToEnd(t *testing.T) {
	rc := &sweepRunCounter{}
	_, ts := newTestServer(t, Options{Run: rc.run, Workers: 4})
	st, code := postSweep(t, ts.URL, sweep2x2())
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST /v1/sweeps = HTTP %d", code)
	}
	if st.Total != 10 { // (4 grid + 1 baseline) × 2 benches
		t.Fatalf("total = %d, want 10", st.Total)
	}
	fin := waitSweepDone(t, ts.URL, st.ID)
	if fin.State != StateDone || fin.Done != 10 || fin.Failed != 0 {
		t.Fatalf("sweep finished %s done=%d failed=%d: %+v", fin.State, fin.Done, fin.Failed, fin.Error)
	}
	if got, want := rc.total(), 8; got != want {
		// 4 unique configs (baseline == one grid point) × 2 benches.
		t.Errorf("simulations = %d, want %d (dedup must collapse the baseline-identical point)", got, want)
	}
	if rc.total() != rc.unique() {
		t.Errorf("some confhash simulated twice: %d runs over %d keys", rc.total(), rc.unique())
	}
	res := fin.Result
	if res == nil {
		t.Fatal("done sweep carries no result")
	}
	if len(res.Points) != 5 {
		t.Fatalf("result has %d points, want 5", len(res.Points))
	}
	if !res.Points[0].Baseline || res.Points[0].Cost.Speedup != 1 {
		t.Errorf("baseline point: %+v (want first, speedup exactly 1)", res.Points[0])
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty Pareto frontier")
	}
	for _, i := range res.Frontier {
		if !res.Points[i].OnFrontier {
			t.Errorf("frontier index %d not flagged on its point", i)
		}
		for j, q := range res.Points {
			if q.Cost.Dominates(res.Points[i].Cost) {
				t.Errorf("frontier point %d is dominated by point %d", i, j)
			}
		}
	}
	// The 16-lane 16 MB point is the baseline config in disguise: its cells
	// must carry the very same content addresses.
	for _, p := range res.Points[1:] {
		if p.Knobs["lanes"] == 16 && p.Knobs["l2_kb"] == 16384 {
			for b, cell := range p.Benches {
				if cell.Confhash != res.Points[0].Benches[b].Confhash {
					t.Errorf("%s: baseline-identical point has a different confhash", b)
				}
			}
		}
	}
	// GET /v1/sweeps/{id}/result returns the bare result with HTTP 200.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var sr SweepResult
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || sr.Key != fin.Key || len(sr.Points) != 5 {
		t.Errorf("result endpoint: HTTP %d, key %s, %d points (%v)", resp.StatusCode, sr.Key, len(sr.Points), err)
	}
}

// TestSweepDeterministicReplay: an equivalent spec (benches and axis values
// permuted) canonicalizes to the same key, joins the finished sweep, and
// simulates nothing new; point order and confhashes are identical.
func TestSweepDeterministicReplay(t *testing.T) {
	rc := &sweepRunCounter{}
	_, ts := newTestServer(t, Options{Run: rc.run, Workers: 4})
	st1, _ := postSweep(t, ts.URL, sweep2x2())
	fin1 := waitSweepDone(t, ts.URL, st1.ID)
	if fin1.State != StateDone {
		t.Fatalf("first sweep failed: %+v", fin1.Error)
	}
	sims := rc.total()
	spec2 := dse.Spec{
		Config:  "T",
		Benches: []string{"fft", "dgemm"},
		Scale:   "test",
		Axes: map[string]dse.Axis{
			"l2_kb": {Values: []float64{16384, 4096}},
			"lanes": {Values: []float64{16, 8}},
		},
	}
	st2, _ := postSweep(t, ts.URL, spec2)
	if st2.Key != fin1.Key {
		t.Fatalf("equivalent specs got different keys %s vs %s", st2.Key, fin1.Key)
	}
	if st2.ID != st1.ID {
		t.Fatalf("equivalent spec started a second sweep %s instead of joining %s", st2.ID, st1.ID)
	}
	fin2 := waitSweepDone(t, ts.URL, st2.ID)
	if rc.total() != sims {
		t.Errorf("replay simulated %d new experiments, want 0", rc.total()-sims)
	}
	for i, p := range fin2.Result.Points {
		for b, cell := range p.Benches {
			if cell.Confhash != fin1.Result.Points[i].Benches[b].Confhash {
				t.Errorf("point %d bench %s: confhash differs across replays", i, b)
			}
		}
	}
}

// TestSweepOverlapDedup: two overlapping sweeps share single-flight — total
// simulations equal the unique confhashes across both grids.
func TestSweepOverlapDedup(t *testing.T) {
	rc := &sweepRunCounter{delay: 30 * time.Millisecond}
	_, ts := newTestServer(t, Options{Run: rc.run, Workers: 4})
	a := dse.Spec{Config: "T", Benches: []string{"dgemm"}, Scale: "test",
		Axes: map[string]dse.Axis{"lanes": {Values: []float64{8, 16}}}}
	b := dse.Spec{Config: "T", Benches: []string{"dgemm"}, Scale: "test",
		Axes: map[string]dse.Axis{"lanes": {Values: []float64{8, 32}}}}
	stA, _ := postSweep(t, ts.URL, a)
	stB, _ := postSweep(t, ts.URL, b) // posted while A is still running
	finA := waitSweepDone(t, ts.URL, stA.ID)
	finB := waitSweepDone(t, ts.URL, stB.ID)
	if finA.State != StateDone || finB.State != StateDone {
		t.Fatalf("sweeps finished %s/%s", finA.State, finB.State)
	}
	// Unique configs across both grids: T (the shared baseline, identical to
	// lanes:16), lanes:8, lanes:32 → 3 simulations for 6 experiments.
	if got := rc.total(); got != 3 {
		t.Errorf("simulations = %d, want 3 (overlap must share single-flight)", got)
	}
	if rc.total() != rc.unique() {
		t.Errorf("some confhash simulated twice: %d runs over %d keys", rc.total(), rc.unique())
	}
}

// TestSweepKnobsEndpoint: the registry is advertised with names, types and
// ranges, and bad axes come back as bad_request envelopes naming the field.
func TestSweepKnobsEndpoint(t *testing.T) {
	rc := &sweepRunCounter{}
	_, ts := newTestServer(t, Options{Run: rc.run})
	resp, err := http.Get(ts.URL + "/v1/sweeps/knobs")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Knobs []dse.Knob `json:"knobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sweeps/knobs: HTTP %d, %v", resp.StatusCode, err)
	}
	seen := map[string]dse.Knob{}
	for _, k := range body.Knobs {
		seen[k.Name] = k
	}
	for _, want := range []string{"clock_ghz", "l2_kb", "lanes", "phys_vregs", "pump", "zbox_ports"} {
		if _, ok := seen[want]; !ok {
			t.Errorf("knob %q not advertised", want)
		}
	}
	if k := seen["lanes"]; !k.PowerOfTwo || !k.VectorOnly || k.Min != 2 || k.Max != 64 {
		t.Errorf("lanes knob misdescribed: %+v", k)
	}

	for _, bad := range []struct {
		name string
		spec dse.Spec
		want string
	}{
		{"unknown knob", dse.Spec{Benches: []string{"dgemm"}, Scale: "test",
			Axes: map[string]dse.Axis{"mvl": {Values: []float64{64}}}}, `unknown knob "mvl"`},
		{"non power of two", dse.Spec{Benches: []string{"dgemm"}, Scale: "test",
			Axes: map[string]dse.Axis{"lanes": {Values: []float64{12}}}}, `knob "lanes"`},
		{"vector knob on scalar base", dse.Spec{Config: "EV8", Benches: []string{"dgemm"}, Scale: "test",
			Axes: map[string]dse.Axis{"pump": {Values: []float64{0, 1}}}}, `knob "pump"`},
	} {
		raw, _ := json.Marshal(bad.spec)
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Error ErrorJSON `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&envelope)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest || envelope.Error.Code != ErrCodeBadRequest {
			t.Errorf("%s: HTTP %d code %q, want 400 bad_request", bad.name, resp.StatusCode, envelope.Error.Code)
		}
		if !strings.Contains(envelope.Error.Message, bad.want) {
			t.Errorf("%s: message %q does not name the field (%q)", bad.name, envelope.Error.Message, bad.want)
		}
	}
}

// newSweepServerAt builds a server over a disk-backed store in dir without
// registering cleanup, so restart tests control the lifecycle explicitly.
func newSweepServerAt(t *testing.T, dir string, run RunFunc) (*httptest.Server, func()) {
	t.Helper()
	store, err := OpenStore(dir, 128, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Run: run, Store: store, Workers: 4})
	ts := httptest.NewServer(s.Handler())
	return ts, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	}
}

// TestSweepRestartResume is the durability contract: a restarted server
// answers an already-completed spec whole from the sweep blob (zero
// simulations), and a superset spec resumes point-by-point from the result
// store, simulating only the genuinely new configurations.
func TestSweepRestartResume(t *testing.T) {
	dir := t.TempDir()

	rc1 := &sweepRunCounter{}
	ts1, stop1 := newSweepServerAt(t, dir, rc1.run)
	st1, _ := postSweep(t, ts1.URL, sweep2x2())
	fin1 := waitSweepDone(t, ts1.URL, st1.ID)
	if fin1.State != StateDone {
		t.Fatalf("first sweep failed: %+v", fin1.Error)
	}
	if rc1.total() != 8 {
		t.Fatalf("first run simulated %d, want 8", rc1.total())
	}
	stop1() // "restart": drain, then a fresh server over the same directory

	rc2 := &sweepRunCounter{}
	ts2, stop2 := newSweepServerAt(t, dir, rc2.run)
	defer stop2()

	// Same spec: answered whole from the durable sweep blob.
	st2, code := postSweep(t, ts2.URL, sweep2x2())
	if code != http.StatusOK || st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("replay after restart: HTTP %d state %s cache_hit %v", code, st2.State, st2.CacheHit)
	}
	if st2.Key != fin1.Key {
		t.Errorf("replay key %s != original %s", st2.Key, fin1.Key)
	}
	if rc2.total() != 0 {
		t.Errorf("replay after restart simulated %d experiments, want 0", rc2.total())
	}
	if st2.Result == nil || len(st2.Result.Points) != len(fin1.Result.Points) {
		t.Fatalf("replayed result missing or truncated: %+v", st2.Result)
	}

	// Superset spec: a new sweep key, but every previously-simulated point
	// resumes from the result store; only the two 64 MB configs run.
	super := sweep2x2()
	super.Axes = map[string]dse.Axis{
		"lanes": {Values: []float64{8, 16}},
		"l2_kb": {Values: []float64{4096, 16384, 65536}},
	}
	st3, _ := postSweep(t, ts2.URL, super)
	if st3.Key == fin1.Key {
		t.Fatal("superset spec reused the original key")
	}
	fin3 := waitSweepDone(t, ts2.URL, st3.ID)
	if fin3.State != StateDone || fin3.Failed != 0 {
		t.Fatalf("superset sweep failed: %+v", fin3.Error)
	}
	if fin3.Total != 14 { // (6 grid + baseline) × 2 benches
		t.Errorf("superset total = %d, want 14", fin3.Total)
	}
	if rc2.total() != 4 { // {lanes 8, lanes 16} × {l2 64MB} × 2 benches
		t.Errorf("superset simulated %d experiments, want 4 (rest must resume from the store)", rc2.total())
	}
	if fin3.PointCacheHits != 10 {
		t.Errorf("superset point_cache_hits = %d, want 10", fin3.PointCacheHits)
	}
}

// TestBlobStoreRoundTrip pins the BlobStore face of both store tiers: blobs
// survive a put/get cycle in memory and a reopen from disk.
func TestBlobStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bs, ok := store.(BlobStore)
	if !ok {
		t.Fatal("tiered store does not implement BlobStore")
	}
	key := strings.Repeat("ab", 16)
	if _, ok := bs.GetBlob(key); ok {
		t.Fatal("blob present before put")
	}
	raw := []byte(`{"schema":1,"key":"` + key + `"}`)
	bs.PutBlob(key, raw)
	got, ok := bs.GetBlob(key)
	if !ok || !bytes.Equal(got, raw) {
		t.Fatalf("round trip: ok=%v got=%s", ok, got)
	}
	store.Close()

	reopened, err := OpenStore(dir, 8, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got, ok = reopened.(BlobStore).GetBlob(key)
	if !ok || !bytes.Equal(got, raw) {
		t.Fatalf("blob lost across reopen: ok=%v got=%s", ok, got)
	}
}
