package serve

import (
	"time"

	"repro/internal/workloads"
)

// RetryPolicy governs how the subprocess backend reacts to a worker dying
// mid-job (crash, OOM kill, deadline SIGKILL): the job is requeued onto
// another worker up to MaxRetries times, with exponential backoff between
// attempts so a poisoned job (one that deterministically kills every worker
// it touches) cannot hot-loop the fleet through respawn churn.
type RetryPolicy struct {
	// MaxRetries is the requeue cap: a job is executed at most 1+MaxRetries
	// times before failing with code "worker_crash". Default 2. Negative
	// disables retries entirely.
	MaxRetries int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMax. Defaults 100ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// withDefaults resolves zero fields to the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 100 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 5 * time.Second
	}
	return p
}

// Delay returns the backoff before retry n (1-based): base doubled per
// retry, capped at BackoffMax.
func (p RetryPolicy) Delay(retry int) time.Duration {
	if retry < 1 {
		return 0
	}
	d := p.BackoffBase
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.BackoffMax {
			return p.BackoffMax
		}
	}
	if d > p.BackoffMax {
		return p.BackoffMax
	}
	return d
}

// retryCrashes drives attempt() under policy p: worker deaths (attempt
// returns retryable=true) are retried with backoff until the cap, then
// surfaced as a *JobError with code "worker_crash". sleep is time.Sleep in
// production and a recorder under test.
func retryCrashes(p RetryPolicy, sleep func(time.Duration), attempt func(try int) (*workloads.Result, bool, error)) (*workloads.Result, error) {
	p = p.withDefaults()
	var lastErr error
	for try := 0; ; try++ {
		res, retryable, err := attempt(try)
		if err == nil {
			return res, nil
		}
		if !retryable {
			return nil, err
		}
		lastErr = err
		if try >= p.MaxRetries {
			return nil, &JobError{
				Status: 500,
				JSON: ErrorJSON{
					Code:     ErrCodeWorkerCrash,
					Message:  "worker crashed and retry budget exhausted: " + lastErr.Error(),
					Attempts: try + 1,
				},
			}
		}
		sleep(p.Delay(try + 1))
	}
}
