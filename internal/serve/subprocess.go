package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	chipmetrics "repro/internal/metrics"
	"repro/internal/workloads"
)

// SubprocessOptions configures the out-of-process worker fleet.
type SubprocessOptions struct {
	// WorkerBin is the tarworker binary path (required).
	WorkerBin string
	// Workers is the fleet size (default GOMAXPROCS). Each worker process
	// runs exactly one job, then is recycled: the slot reaps the exited
	// process and pre-spawns a fresh one, so address-space leaks in a
	// long campaign can never accumulate.
	Workers int
	// Retry governs requeue-on-worker-death behavior.
	Retry RetryPolicy
	// KillGrace is how long past a job's deadline the supervisor waits
	// before SIGKILLing the worker (default 10s). The grace exists because
	// the simulator's own deadline machinery normally wins and reports a
	// structured wedge; the kill is the backstop for a model build whose
	// event loop is too stuck to notice its deadline.
	KillGrace time.Duration
	// Faults arms the supervisor-side fault campaign (WorkerKill drills).
	// This is the server operator's knob, deliberately outside sim.Config —
	// it perturbs the fleet, not the simulated machine, so it never enters
	// the confhash identity.
	Faults *faults.Config
	// Env overrides the worker process environment (nil = inherit).
	Env []string
	// Stderr receives worker stderr (default os.Stderr).
	Stderr io.Writer
}

// SubprocessBackend executes each job in its own tarworker process. The
// fleet is pre-spawned: Workers slot loops each keep one idle process
// blocked on stdin, so dispatch latency is a pipe write, not a fork+exec.
//
// Slot lifecycle: spawn → idle (awaiting a job or reaping an idle death) →
// busy (spec written, hello read, reply awaited) → reap → respawn. A worker
// that dies idle or mid-job counts as a restart; a worker that completes
// its one job and exits is a recycle, which is the normal path.
type SubprocessBackend struct {
	opts SubprocessOptions
	reg  *chipmetrics.Registry
	inj  *faults.Injector

	jobs chan *dispatch
	stop chan struct{}
	wg   sync.WaitGroup

	alive    atomic.Int64 // live worker processes
	restarts atomic.Int64 // respawns after an unexpected death or failed spawn
	retries  atomic.Int64 // job re-executions after a worker death

	// sleep is time.Sleep, substituted by the fake-clock retry tests.
	sleep func(time.Duration)

	busyMu sync.Mutex
	busy   map[int]int // slot → pid of the worker currently running a job

	closed sync.Once
}

// dispatch hands one job attempt to a slot and carries its outcome back.
type dispatch struct {
	spec    *JobSpec
	attempt int
	done    chan dispatchResult
}

type dispatchResult struct {
	res     *workloads.Result
	err     error // terminal (non-retryable) failure, nil on success
	crashed bool  // the worker died before delivering a reply
}

// NewSubprocessBackend starts the worker fleet. The returned backend is
// ready immediately; slots spawn their workers concurrently.
func NewSubprocessBackend(opts SubprocessOptions) (*SubprocessBackend, error) {
	if opts.WorkerBin == "" {
		return nil, errors.New("serve: SubprocessOptions.WorkerBin is required")
	}
	if _, err := exec.LookPath(opts.WorkerBin); err != nil {
		return nil, fmt.Errorf("serve: worker binary: %w", err)
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.KillGrace <= 0 {
		opts.KillGrace = 10 * time.Second
	}
	if opts.Stderr == nil {
		opts.Stderr = os.Stderr
	}
	opts.Retry = opts.Retry.withDefaults()
	b := &SubprocessBackend{
		opts:  opts,
		reg:   chipmetrics.NewRegistry(),
		inj:   faults.New(opts.Faults),
		jobs:  make(chan *dispatch),
		stop:  make(chan struct{}),
		sleep: time.Sleep,
		busy:  make(map[int]int),
	}
	b.reg.RegisterGauge("workers.alive", "Live worker processes able to take work.",
		func(uint64) int { return int(b.alive.Load()) })
	b.reg.RegisterGauge("workers.restarts", "Worker processes respawned after an unexpected death.",
		func(uint64) int { return int(b.restarts.Load()) })
	b.reg.RegisterGauge("workers.retries", "Jobs re-executed after a worker death.",
		func(uint64) int { return int(b.retries.Load()) })
	for i := 0; i < opts.Workers; i++ {
		b.wg.Add(1)
		go b.slotLoop(i)
	}
	return b, nil
}

func (b *SubprocessBackend) Kind() string                    { return "subprocess" }
func (b *SubprocessBackend) Alive() int                      { return int(b.alive.Load()) }
func (b *SubprocessBackend) Registry() *chipmetrics.Registry { return b.reg }

// Close stops every slot and kills idle workers. Jobs already being served
// run to completion first (the server drains before closing the backend).
func (b *SubprocessBackend) Close() {
	b.closed.Do(func() { close(b.stop) })
	b.wg.Wait()
}

// Execute runs one spec on the fleet, retrying worker deaths per the
// policy. Failures come back as *JobError; a crash that exhausts the retry
// budget maps to code "worker_crash" (HTTP 500).
func (b *SubprocessBackend) Execute(spec *JobSpec) (*workloads.Result, error) {
	return retryCrashes(b.opts.Retry, b.sleep, func(try int) (*workloads.Result, bool, error) {
		if try > 0 {
			b.retries.Add(1)
		}
		d := &dispatch{spec: spec, attempt: try, done: make(chan dispatchResult, 1)}
		select {
		case b.jobs <- d:
		case <-b.stop:
			return nil, false, &JobError{Status: 503, JSON: ErrorJSON{Code: ErrCodeDraining, Message: "backend is shutting down"}}
		}
		r := <-d.done
		if r.crashed {
			return nil, true, r.err
		}
		return r.res, false, r.err
	})
}

// busyPids snapshots the pids of workers currently running a job —
// the SIGKILL-drill tests aim at these.
func (b *SubprocessBackend) busyPids() []int {
	b.busyMu.Lock()
	defer b.busyMu.Unlock()
	pids := make([]int, 0, len(b.busy))
	for _, pid := range b.busy {
		pids = append(pids, pid)
	}
	return pids
}

// slotLoop is one slot's lifecycle: keep a worker pre-spawned and idle,
// serve one job through it, reap it, respawn.
func (b *SubprocessBackend) slotLoop(slot int) {
	defer b.wg.Done()
	for {
		select {
		case <-b.stop:
			return
		default:
		}
		w, err := b.spawn()
		if err != nil {
			// Spawn failure (binary vanished, fd exhaustion): count it,
			// back off, try again. Alive stays low, which /healthz reports.
			fmt.Fprintf(b.opts.Stderr, "serve: worker spawn failed: %v\n", err)
			b.restarts.Add(1)
			select {
			case <-b.stop:
				return
			case <-time.After(500 * time.Millisecond):
			}
			continue
		}
		select {
		case <-b.stop:
			w.kill()
			w.await(time.Second)
			return
		case <-w.exited:
			// Idle death: the worker crashed before receiving any job.
			b.restarts.Add(1)
			continue
		case d := <-b.jobs:
			b.serve(slot, w, d)
		}
	}
}

// serve runs one dispatch on one worker, tracking the busy pid for the
// fault drills, and reports the outcome.
func (b *SubprocessBackend) serve(slot int, w *workerProc, d *dispatch) {
	b.busyMu.Lock()
	b.busy[slot] = w.cmd.Process.Pid
	b.busyMu.Unlock()
	defer func() {
		b.busyMu.Lock()
		delete(b.busy, slot)
		b.busyMu.Unlock()
	}()
	res, crashed, err := b.runJob(w, d)
	if crashed {
		b.restarts.Add(1)
	}
	d.done <- dispatchResult{res: res, err: err, crashed: crashed}
}

// runJob drives the worker protocol for one attempt. crashed=true means the
// worker died (or broke the protocol) before delivering a reply — the
// caller's retry loop decides whether to requeue.
func (b *SubprocessBackend) runJob(w *workerProc, d *dispatch) (res *workloads.Result, crashed bool, err error) {
	spec := d.spec

	// Deadline backstop: the simulator inside the worker enforces
	// spec.DeadlineMs itself and reports a structured wedge; the SIGKILL
	// only fires when the worker is too stuck even for that.
	if spec.DeadlineMs > 0 {
		t := time.AfterFunc(time.Duration(spec.DeadlineMs)*time.Millisecond+b.opts.KillGrace, w.kill)
		defer t.Stop()
	}

	payload, merr := json.Marshal(spec)
	if merr != nil {
		w.kill()
		w.await(time.Second)
		return nil, false, &JobError{Status: 500, JSON: ErrorJSON{Code: ErrCodeInternal, Message: "encode job spec: " + merr.Error()}}
	}
	payload = append(payload, '\n')
	if _, werr := w.stdin.Write(payload); werr != nil {
		w.kill()
		w.await(time.Second)
		return nil, true, fmt.Errorf("worker died before accepting the job: %w", werr)
	}
	w.stdin.Close()

	hello, herr := w.readLine()
	if herr != nil {
		w.await(time.Second)
		return nil, true, fmt.Errorf("worker died before starting the job: %w", herr)
	}
	var h workerHello
	if jerr := json.Unmarshal(hello, &h); jerr != nil || h.Event != "start" {
		w.kill()
		w.await(time.Second)
		return nil, true, fmt.Errorf("worker protocol corrupt (hello %q)", truncate(hello, 120))
	}
	if h.Schema != SchemaVersion {
		// Deterministic build skew: retrying cannot help, fail loudly.
		w.kill()
		w.await(time.Second)
		return nil, false, &JobError{Status: 500, JSON: ErrorJSON{
			Code:    ErrCodeInternal,
			Message: fmt.Sprintf("worker schema skew: worker writes schema %d, server expects %d — redeploy matching binaries", h.Schema, SchemaVersion),
		}}
	}

	// Fault drill: SIGKILL the worker mid-job for targeted cells.
	if b.inj.KillWorker(spec.CellKey(), d.attempt) {
		w.kill()
	}

	reply, rerr := w.readLine()
	if rerr != nil {
		w.await(time.Second)
		return nil, true, fmt.Errorf("worker died mid-job: %w", rerr)
	}
	w.await(5 * time.Second)

	var wr workerReply
	if jerr := json.Unmarshal(reply, &wr); jerr != nil {
		return nil, true, fmt.Errorf("worker protocol corrupt (reply %q)", truncate(reply, 120))
	}
	if !wr.OK {
		if wr.Error == nil {
			return nil, true, errors.New("worker reply carries neither result nor error")
		}
		status := wr.Status
		if status == 0 {
			status = 500
		}
		return nil, false, &JobError{Status: status, JSON: *wr.Error}
	}
	if wr.Result == nil {
		return nil, true, errors.New("worker reply ok without a result")
	}
	out, cerr := resultFromWire(wr.Result)
	if cerr != nil {
		return nil, false, &JobError{Status: 500, JSON: ErrorJSON{Code: ErrCodeInternal, Message: cerr.Error()}}
	}
	return out, false, nil
}

func truncate(b []byte, n int) string {
	s := strings.TrimSpace(string(b))
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}

// workerProc is one live tarworker process.
type workerProc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout *bufio.Reader
	exited chan struct{}
}

// spawn starts one worker process and its reaper goroutine. The reaper is
// the single place the alive gauge decrements, so every exit path — recycle,
// crash, SIGKILL — balances the spawn-time increment exactly once.
func (b *SubprocessBackend) spawn() (*workerProc, error) {
	cmd := exec.Command(b.opts.WorkerBin)
	cmd.Env = b.opts.Env
	cmd.Stderr = b.opts.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	w := &workerProc{cmd: cmd, stdin: stdin, stdout: bufio.NewReader(stdout), exited: make(chan struct{})}
	b.alive.Add(1)
	go func() {
		cmd.Wait()
		b.alive.Add(-1)
		close(w.exited)
	}()
	return w, nil
}

// kill SIGKILLs the worker. Idempotent; errors (already dead) are ignored.
func (w *workerProc) kill() {
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
}

// await blocks until the process is reaped, escalating to SIGKILL if it
// lingers past d (a worker has nothing left to do after its reply).
func (w *workerProc) await(d time.Duration) {
	select {
	case <-w.exited:
	case <-time.After(d):
		w.kill()
		<-w.exited
	}
}

// readLine returns the next newline-delimited protocol message. EOF (the
// pipe closing on process death) surfaces as an error.
func (w *workerProc) readLine() ([]byte, error) {
	line, err := w.stdout.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return line, nil
}
