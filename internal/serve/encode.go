package serve

import (
	"repro/internal/stats"
	"repro/internal/workloads"
)

// JobResult is the canonical result encoding, shared between the server's
// GET /v1/jobs/{id}/result endpoint and cmd/tartables -json. Field order is
// fixed by this struct declaration and encoding/json preserves it, so the
// same experiment produces byte-identical artifacts whether it ran through
// the CLI or the service — the content key makes the equivalence checkable.
type JobResult struct {
	Key    string `json:"key"`
	Bench  string `json:"bench"`
	Config string `json:"config"`
	Scale  string `json:"scale"`

	Cycles  uint64  `json:"cycles,omitempty"`
	OPC     float64 `json:"opc,omitempty"`
	FPC     float64 `json:"fpc,omitempty"`
	MPC     float64 `json:"mpc,omitempty"`
	Other   float64 `json:"other,omitempty"`
	VectPct float64 `json:"vect_pct,omitempty"`

	Stats *stats.Stats `json:"stats,omitempty"`

	// Err marks a failed cell (CLI artifacts only; the API reports
	// failures through ErrorJSON with an HTTP 422 instead).
	Err string `json:"error,omitempty"`
}

// EncodeResult builds the wire form of one completed experiment.
func EncodeResult(key string, res *workloads.Result) *JobResult {
	opc, fpc, mpc, other := res.OPC()
	return &JobResult{
		Key:     key,
		Bench:   res.Bench,
		Config:  res.Config,
		Scale:   res.Scale.String(),
		Cycles:  res.Stats.Cycles,
		OPC:     opc,
		FPC:     fpc,
		MPC:     mpc,
		Other:   other,
		VectPct: res.Stats.VectorPct(),
		Stats:   res.Stats,
	}
}
