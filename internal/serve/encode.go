package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	// Aliased: this package's Prometheus counter set is a type named
	// metrics.
	chipmetrics "repro/internal/metrics"

	"repro/internal/stats"
	"repro/internal/workloads"
)

// SchemaVersion identifies the JobResult wire layout. It must be bumped on
// any change to the encoding (field added, removed, renamed or reordered):
// the byte-equality contract between CLI artifacts and API responses is only
// meaningful within one schema, and CompareArtifacts refuses to compare
// across versions. Version 1 was the pre-metrics encoding (no schema field,
// no series); version 2 added both; version 3 replaced the ad-hoc error
// bodies with the stable code-based envelope and extended the byte-equality
// contract across execution backends: the same spec yields the same
// JobResult bytes whether it ran in-process or in a tarworker subprocess
// (the worker protocol itself is versioned by this constant); version 4
// added the simulator-throughput fields (sim_cycles, sim_wall_ns, mcps).
// Those are the one deliberate crack in the byte-equality contract — wall
// time is a property of the host, not the experiment — so CompareArtifacts
// canonicalises them away before comparing same-schema artifacts.
const SchemaVersion = 4

// JobResult is the canonical result encoding, shared between the server's
// GET /v1/jobs/{id}/result endpoint and cmd/tartables -json. Field order is
// fixed by this struct declaration and encoding/json preserves it, so the
// same experiment produces byte-identical artifacts whether it ran through
// the CLI or the service — the content key makes the equivalence checkable.
type JobResult struct {
	// Schema stamps the encoding version so artifacts from different
	// builds fail comparison loudly instead of diffing byte-by-byte.
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	Bench  string `json:"bench"`
	Config string `json:"config"`
	Scale  string `json:"scale"`

	Cycles  uint64  `json:"cycles,omitempty"`
	OPC     float64 `json:"opc,omitempty"`
	FPC     float64 `json:"fpc,omitempty"`
	MPC     float64 `json:"mpc,omitempty"`
	Other   float64 `json:"other,omitempty"`
	VectPct float64 `json:"vect_pct,omitempty"`

	// SimCycles/SimWallNs/MCPS record the timing simulator's own
	// throughput for this run: simulated cycles, host wall-clock spent
	// inside the simulation loop proper (setup, trace verification and
	// encoding excluded), and the derived millions-of-cycles-per-second.
	// Host-dependent by nature: CompareArtifacts zeroes them before the
	// byte comparison, and cached results replay the figures of the run
	// that actually executed.
	SimCycles uint64  `json:"sim_cycles,omitempty"`
	SimWallNs int64   `json:"sim_wall_ns,omitempty"`
	MCPS      float64 `json:"mcps,omitempty"`

	Stats *stats.Stats `json:"stats,omitempty"`

	// Series carries the cycle-interval sample series when the run was
	// executed with the sampler armed (tartables -sample, tarserved
	// -sample). Absent otherwise, so unsampled artifacts keep the same
	// bytes whether or not the build supports sampling.
	Series *chipmetrics.SeriesDump `json:"series,omitempty"`

	// Err marks a failed cell (CLI artifacts only; the API reports
	// failures through ErrorJSON with an HTTP 422 instead).
	Err string `json:"error,omitempty"`
}

// EncodeResult builds the wire form of one completed experiment.
func EncodeResult(key string, res *workloads.Result) *JobResult {
	opc, fpc, mpc, other := res.OPC()
	return &JobResult{
		Schema:  SchemaVersion,
		Key:     key,
		Bench:   res.Bench,
		Config:  res.Config,
		Scale:   res.Scale.String(),
		Cycles:  res.Stats.Cycles,
		OPC:     opc,
		FPC:     fpc,
		MPC:     mpc,
		Other:   other,
		VectPct: res.Stats.VectorPct(),

		SimCycles: res.SimCycles,
		SimWallNs: res.WallNs,
		MCPS:      res.MCPS(),

		Stats:  res.Stats,
		Series: res.Series,
	}
}

// CompareArtifacts checks that two serialized JobResult artifacts are
// byte-identical, guarding the CLI↔API equivalence contract. It first
// extracts each artifact's schema stamp: artifacts from different encoding
// versions (or from a pre-versioning build, schema 0) produce a loud
// schema-skew error naming both versions, never a misleading byte diff.
// Same-schema artifacts that still differ report a plain mismatch.
func CompareArtifacts(a, b []byte) error {
	sa, err := artifactSchema(a)
	if err != nil {
		return fmt.Errorf("artifact A: %w", err)
	}
	sb, err := artifactSchema(b)
	if err != nil {
		return fmt.Errorf("artifact B: %w", err)
	}
	if sa != sb {
		return fmt.Errorf("schema skew: artifact A is schema %d, artifact B is schema %d (this build writes schema %d) — byte comparison across encodings is meaningless, regenerate both with one build",
			sa, sb, SchemaVersion)
	}
	if sa == SchemaVersion {
		// Current-schema artifacts carry host-dependent throughput fields
		// (sim_cycles, sim_wall_ns, mcps) that two otherwise-identical
		// runs will disagree on; canonicalise them to zero before the
		// byte comparison. Decoding through JobResult is lossless for the
		// schema this build writes, so canonical re-encoding cannot mask
		// a real difference.
		ca, err := canonicalArtifact(a)
		if err != nil {
			return fmt.Errorf("artifact A: %w", err)
		}
		cb, err := canonicalArtifact(b)
		if err != nil {
			return fmt.Errorf("artifact B: %w", err)
		}
		a, b = ca, cb
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("artifacts differ despite matching schema %d", sa)
	}
	return nil
}

// canonicalArtifact re-encodes a current-schema artifact with the
// host-dependent throughput fields zeroed (omitempty drops them), giving
// CompareArtifacts a stable basis.
func canonicalArtifact(raw []byte) ([]byte, error) {
	var jr JobResult
	if err := json.Unmarshal(raw, &jr); err != nil {
		return nil, fmt.Errorf("not a JobResult artifact: %w", err)
	}
	jr.SimCycles, jr.SimWallNs, jr.MCPS = 0, 0, 0
	out, err := json.Marshal(&jr)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// artifactSchema pulls the schema stamp out of one artifact. A missing
// field decodes as 0, identifying a pre-versioning (schema 1) artifact;
// that still skews against this build's encoding, which is the point.
func artifactSchema(raw []byte) (int, error) {
	var v struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, fmt.Errorf("not a JobResult artifact: %w", err)
	}
	return v.Schema, nil
}
