package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	// Aliased: this package's Prometheus counter set is a type named
	// metrics.
	chipmetrics "repro/internal/metrics"

	"repro/internal/stats"
	"repro/internal/workloads"
)

// SchemaVersion identifies the JobResult wire layout. It must be bumped on
// any change to the encoding (field added, removed, renamed or reordered):
// the byte-equality contract between CLI artifacts and API responses is only
// meaningful within one schema, and CompareArtifacts refuses to compare
// across versions. Version 1 was the pre-metrics encoding (no schema field,
// no series); version 2 added both; version 3 replaced the ad-hoc error
// bodies with the stable code-based envelope and extended the byte-equality
// contract across execution backends: the same spec yields the same
// JobResult bytes whether it ran in-process or in a tarworker subprocess
// (the worker protocol itself is versioned by this constant).
const SchemaVersion = 3

// JobResult is the canonical result encoding, shared between the server's
// GET /v1/jobs/{id}/result endpoint and cmd/tartables -json. Field order is
// fixed by this struct declaration and encoding/json preserves it, so the
// same experiment produces byte-identical artifacts whether it ran through
// the CLI or the service — the content key makes the equivalence checkable.
type JobResult struct {
	// Schema stamps the encoding version so artifacts from different
	// builds fail comparison loudly instead of diffing byte-by-byte.
	Schema int    `json:"schema"`
	Key    string `json:"key"`
	Bench  string `json:"bench"`
	Config string `json:"config"`
	Scale  string `json:"scale"`

	Cycles  uint64  `json:"cycles,omitempty"`
	OPC     float64 `json:"opc,omitempty"`
	FPC     float64 `json:"fpc,omitempty"`
	MPC     float64 `json:"mpc,omitempty"`
	Other   float64 `json:"other,omitempty"`
	VectPct float64 `json:"vect_pct,omitempty"`

	Stats *stats.Stats `json:"stats,omitempty"`

	// Series carries the cycle-interval sample series when the run was
	// executed with the sampler armed (tartables -sample, tarserved
	// -sample). Absent otherwise, so unsampled artifacts keep the same
	// bytes whether or not the build supports sampling.
	Series *chipmetrics.SeriesDump `json:"series,omitempty"`

	// Err marks a failed cell (CLI artifacts only; the API reports
	// failures through ErrorJSON with an HTTP 422 instead).
	Err string `json:"error,omitempty"`
}

// EncodeResult builds the wire form of one completed experiment.
func EncodeResult(key string, res *workloads.Result) *JobResult {
	opc, fpc, mpc, other := res.OPC()
	return &JobResult{
		Schema:  SchemaVersion,
		Key:     key,
		Bench:   res.Bench,
		Config:  res.Config,
		Scale:   res.Scale.String(),
		Cycles:  res.Stats.Cycles,
		OPC:     opc,
		FPC:     fpc,
		MPC:     mpc,
		Other:   other,
		VectPct: res.Stats.VectorPct(),
		Stats:   res.Stats,
		Series:  res.Series,
	}
}

// CompareArtifacts checks that two serialized JobResult artifacts are
// byte-identical, guarding the CLI↔API equivalence contract. It first
// extracts each artifact's schema stamp: artifacts from different encoding
// versions (or from a pre-versioning build, schema 0) produce a loud
// schema-skew error naming both versions, never a misleading byte diff.
// Same-schema artifacts that still differ report a plain mismatch.
func CompareArtifacts(a, b []byte) error {
	sa, err := artifactSchema(a)
	if err != nil {
		return fmt.Errorf("artifact A: %w", err)
	}
	sb, err := artifactSchema(b)
	if err != nil {
		return fmt.Errorf("artifact B: %w", err)
	}
	if sa != sb {
		return fmt.Errorf("schema skew: artifact A is schema %d, artifact B is schema %d (this build writes schema %d) — byte comparison across encodings is meaningless, regenerate both with one build",
			sa, sb, SchemaVersion)
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("artifacts differ despite matching schema %d", sa)
	}
	return nil
}

// artifactSchema pulls the schema stamp out of one artifact. A missing
// field decodes as 0, identifying a pre-versioning (schema 1) artifact;
// that still skews against this build's encoding, which is the point.
func artifactSchema(raw []byte) (int, error) {
	var v struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, fmt.Errorf("not a JobResult artifact: %w", err)
	}
	return v.Schema, nil
}
