package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/dse"
	"repro/internal/sim"
)

// SweepSchemaVersion stamps the durable SweepResult encoding. Bumping it
// namespaces the blob directory, so sweeps persisted by an older build are
// simply replayed (from the still-valid per-experiment artifacts) instead
// of being misread.
const SweepSchemaVersion = 1

// maxSweepRecords bounds retained sweep records; the oldest terminal
// records are forgotten past it.
const maxSweepRecords = 1024

// SweepCell is one benchmark's outcome at one design point.
type SweepCell struct {
	Confhash string `json:"confhash"`
	Cycles   uint64 `json:"cycles"`
	// Speedup is wall-time relative to the declared baseline at each
	// machine's own clock: (baseCycles/baseGHz) / (cycles/GHz).
	Speedup float64 `json:"speedup"`
}

// SweepPointResult is one evaluated design point of a completed sweep.
type SweepPointResult struct {
	Config   string               `json:"config"`
	Knobs    map[string]float64   `json:"knobs,omitempty"`
	Baseline bool                 `json:"baseline,omitempty"`
	Benches  map[string]SweepCell `json:"benches"`
	// Cost is the point's position in the objective space: geometric-mean
	// speedup across the benches, watts from the §5 power model, die mm²
	// from the Figure 5 floorplan.
	Cost       dse.Cost `json:"cost"`
	OnFrontier bool     `json:"on_frontier,omitempty"`
}

// SweepResult is the durable, schema-versioned outcome of one sweep: every
// evaluated point with its per-bench cells and cost, plus the indices of
// the Pareto frontier (no member dominated on {speedup↑, watts↓, mm²↓};
// exact ties all kept). It is persisted through the store's BlobStore face
// keyed by the spec's content address, so a restarted server answers the
// same spec without re-simulating anything.
type SweepResult struct {
	Schema int       `json:"schema"`
	Key    string    `json:"key"`
	Spec   *dse.Spec `json:"spec"`
	// Points lists the baseline first, then the grid in canonical
	// expansion order (failed points are omitted; a sweep with failures is
	// reported but never persisted).
	Points   []SweepPointResult `json:"points"`
	Frontier []int              `json:"frontier"`
	// Experiments counts the per-experiment submissions the sweep issued;
	// CacheHits the subset answered from the result store without
	// simulation.
	Experiments int   `json:"experiments"`
	CacheHits   int   `json:"cache_hits"`
	ElapsedMs   int64 `json:"elapsed_ms"`
}

// SweepPointStatus is the live progress of one design point.
type SweepPointStatus struct {
	Config    string             `json:"config"`
	Knobs     map[string]float64 `json:"knobs,omitempty"`
	Baseline  bool               `json:"baseline,omitempty"`
	State     string             `json:"state"`
	Done      int                `json:"done"`
	Failed    int                `json:"failed,omitempty"`
	ErrorCode string             `json:"error_code,omitempty"`
}

// SweepStatus is the wire form of a sweep, returned by the submit, list and
// poll endpoints.
type SweepStatus struct {
	ID       string    `json:"id"`
	Key      string    `json:"key"`
	State    string    `json:"state"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	Spec     *dse.Spec `json:"spec"`
	// Total/Done/Failed/Shed count experiments (points × benches); Shed is
	// the subset of failures the overload machinery refused or expired
	// (queue_full, deadline_exceeded). PointCacheHits counts experiments
	// answered from the result store without simulation.
	Total          int                `json:"total"`
	Done           int                `json:"done"`
	Failed         int                `json:"failed"`
	Shed           int                `json:"shed"`
	PointCacheHits int                `json:"point_cache_hits"`
	ElapsedMs      int64              `json:"elapsed_ms,omitempty"`
	Points         []SweepPointStatus `json:"points,omitempty"`
	Result         *SweepResult       `json:"result,omitempty"`
	Error          *ErrorJSON         `json:"error,omitempty"`
}

// sweepPointState is the server-side record of one design point. cfg is
// built once at submission (knobs already validated); per-bench outcomes
// accumulate under the sweep mutex as experiments finish.
type sweepPointState struct {
	cfg      *sim.Config
	knobs    map[string]float64
	baseline bool

	cycles  map[string]uint64
	keys    map[string]string
	done    int
	failed  int
	errCode string
}

// sweep is the server-side record of one sweep orchestration. Fields are
// guarded by mu until the sweep reaches a terminal state (done is closed),
// after which they are immutable.
type sweep struct {
	id        string
	key       string
	spec      *dse.Spec
	submitted time.Time
	done      chan struct{}

	mu        sync.Mutex
	state     string
	cacheHit  bool
	elapsed   time.Duration
	points    []*sweepPointState // index 0 = baseline
	total     int                // experiments = points × benches
	doneExp   int
	failedExp int
	shedExp   int
	cacheHits int
	result    *SweepResult
	err       *JobError
}

// StartSweep registers one sweep and returns its status: answered whole
// from the durable sweep store (terminal immediately), joined onto an
// identical in-flight sweep, or started as a fresh orchestration that fans
// the grid through the job pipeline (dedup, cache, admission control and
// all). A non-nil error is always a *JobError carrying the stable envelope.
// Exported for in-process embedding; the HTTP handler is a thin wrapper.
func (s *Server) StartSweep(spec *dse.Spec) (*SweepStatus, error) {
	if err := spec.Canonicalize(); err != nil {
		return nil, &JobError{Status: http.StatusBadRequest, JSON: ErrorJSON{Code: ErrCodeBadRequest, Message: err.Error()}}
	}
	key := spec.Key()

	// Build every design point up front: baseline first, then the grid in
	// canonical expansion order. Knob values were validated by
	// Canonicalize, so a build failure here is a server bug, not a client
	// error.
	points := []*sweepPointState{{cfg: spec.BaselineConfig(), baseline: true}}
	for _, knobs := range spec.Expand() {
		cfg, err := spec.Build(knobs)
		if err != nil {
			return nil, &JobError{Status: http.StatusInternalServerError, JSON: ErrorJSON{Code: ErrCodeInternal, Message: err.Error()}}
		}
		points = append(points, &sweepPointState{cfg: cfg, knobs: knobs})
	}
	for _, p := range points {
		p.cycles = make(map[string]uint64, len(spec.Benches))
		p.keys = make(map[string]string, len(spec.Benches))
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, &JobError{Status: http.StatusServiceUnavailable, JSON: ErrorJSON{Code: ErrCodeDraining, Message: "server is draining"}}
	}
	if sw, ok := s.sweepByKey[key]; ok {
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.sweepDedupJoined++
		s.m.mu.Unlock()
		return s.sweepStatus(sw, true), nil
	}
	s.sweepSeq++
	sw := &sweep{
		id:        fmt.Sprintf("sweep-%d", s.sweepSeq),
		key:       key,
		spec:      spec,
		submitted: time.Now(),
		done:      make(chan struct{}),
		state:     StateRunning,
		points:    points,
		total:     len(points) * len(spec.Benches),
	}
	s.sweeps[sw.id] = sw
	s.sweepByKey[key] = sw
	s.sweepOrder = append(s.sweepOrder, sw.id)
	s.gcSweepsLocked()
	s.mu.Unlock()

	s.m.mu.Lock()
	s.m.sweepsSubmitted++
	s.m.mu.Unlock()

	// Durable replay: a completed sweep of this exact spec is answered from
	// the store with zero simulations — the restart-resume contract.
	if sr := s.loadSweepBlob(key); sr != nil {
		sw.mu.Lock()
		sw.state = StateDone
		sw.cacheHit = true
		sw.result = sr
		sw.doneExp = sw.total
		sw.cacheHits = sw.total
		for _, p := range sw.points {
			p.done = len(spec.Benches)
		}
		sw.mu.Unlock()
		close(sw.done)
		s.m.mu.Lock()
		s.m.sweepCacheHits++
		s.m.sweepsDone++
		s.m.mu.Unlock()
		return s.sweepStatus(sw, true), nil
	}

	s.m.mu.Lock()
	s.m.sweepsRunning++
	s.m.mu.Unlock()
	s.sweepsWG.Add(1)
	go s.runSweep(sw)
	return s.sweepStatus(sw, true), nil
}

// loadSweepBlob fetches and validates a persisted SweepResult, or nil.
func (s *Server) loadSweepBlob(key string) *SweepResult {
	bs, ok := s.store.(BlobStore)
	if !ok {
		return nil
	}
	raw, ok := bs.GetBlob(key)
	if !ok {
		return nil
	}
	var sr SweepResult
	if err := json.Unmarshal(raw, &sr); err != nil || sr.Schema != SweepSchemaVersion || sr.Key != key {
		return nil // distrusted blob: replay the sweep instead
	}
	return &sr
}

// gcSweepsLocked forgets the oldest terminal sweep records past the
// retention bound. Requires s.mu.
func (s *Server) gcSweepsLocked() {
	for len(s.sweepOrder) > maxSweepRecords {
		id := s.sweepOrder[0]
		sw := s.sweeps[id]
		select {
		case <-sw.done:
			s.sweepOrder = s.sweepOrder[1:]
			delete(s.sweeps, id)
			if s.sweepByKey[sw.key] == sw {
				delete(s.sweepByKey, sw.key)
			}
		default:
			return // oldest record still live; keep everything behind it
		}
	}
}

// runSweep drives one sweep to a terminal state: every experiment (point ×
// bench) is submitted through the ordinary job pipeline — confhash dedup,
// result store, admission control, poison breaker — with a bounded
// in-flight window so a large grid cannot monopolize the queue. queue_full
// rejections back off and retry (the admission controller's Retry-After is
// the hint); draining aborts the sweep.
func (s *Server) runSweep(sw *sweep) {
	defer s.sweepsWG.Done()
	start := time.Now()
	limit := 2 * s.opts.Workers
	if limit < 4 {
		limit = 4
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var abort *JobError

submitLoop:
	for pi := range sw.points {
		p := sw.points[pi]
		for _, bench := range sw.spec.Benches {
			sem <- struct{}{}
			req := &SubmitRequest{Bench: bench, Scale: sw.spec.Scale}
			if p.baseline {
				req.Config = sw.spec.Baseline
			} else {
				req.Config = sw.spec.Config
				req.Knobs = p.knobs
			}
			var st *JobStatus
			var subErr *JobError
			for attempt := 0; ; attempt++ {
				st0, err := s.Submit(req)
				if err == nil {
					st = st0
					break
				}
				je := toJobError(err)
				if je.JSON.Code == ErrCodeQueueFull && attempt < 120 {
					// Saturated: honor the capacity estimate, bounded to
					// keep one sweep's patience finite.
					d := je.RetryAfter
					if d < 50*time.Millisecond {
						d = 50 * time.Millisecond
					}
					if d > 2*time.Second {
						d = 2 * time.Second
					}
					time.Sleep(d)
					continue
				}
				subErr = je
				break
			}
			s.m.mu.Lock()
			s.m.sweepExperiments++
			s.m.mu.Unlock()
			if subErr != nil {
				s.recordSweepExp(sw, pi, bench, "", 0, false, &subErr.JSON)
				<-sem
				if subErr.JSON.Code == ErrCodeDraining {
					abort = subErr
					break submitLoop
				}
				continue
			}
			if st.State == StateDone || st.State == StateFailed {
				// Terminal at submit (store hit, or poisoned at resolve):
				// record straight from the returned status.
				var cycles uint64
				if st.Result != nil {
					cycles = st.Result.Cycles
				}
				s.recordSweepExp(sw, pi, bench, st.Key, cycles, st.CacheHit, st.Error)
				<-sem
				continue
			}
			s.mu.Lock()
			j := s.jobs[st.ID]
			s.mu.Unlock()
			if j == nil {
				// GC can only forget terminal jobs, so a vanished record
				// means the job finished; its submit-time status said
				// otherwise, which is a server bug worth surfacing.
				s.recordSweepExp(sw, pi, bench, st.Key, 0, false,
					&ErrorJSON{Code: ErrCodeInternal, Message: "job record vanished while live"})
				<-sem
				continue
			}
			wg.Add(1)
			go func(pi int, bench string, j *job) {
				defer wg.Done()
				defer func() { <-sem }()
				<-j.done
				if j.err != nil {
					s.recordSweepExp(sw, pi, bench, j.key, 0, false, &j.err.JSON)
					return
				}
				s.recordSweepExp(sw, pi, bench, j.key, j.res.Stats.Cycles, j.cacheHit, nil)
			}(pi, bench, j)
		}
	}
	wg.Wait()
	s.finishSweep(sw, start, abort)
}

// recordSweepExp folds one experiment outcome into its sweep point.
func (s *Server) recordSweepExp(sw *sweep, pi int, bench, key string, cycles uint64, cacheHit bool, errJSON *ErrorJSON) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	p := sw.points[pi]
	if errJSON == nil {
		p.cycles[bench] = cycles
		p.keys[bench] = key
		p.done++
		sw.doneExp++
		if cacheHit {
			sw.cacheHits++
		}
		return
	}
	p.failed++
	if p.errCode == "" {
		p.errCode = errJSON.Code
	}
	sw.failedExp++
	if errJSON.Code == ErrCodeQueueFull || errJSON.Code == ErrCodeDeadlineExceeded {
		sw.shedExp++
	}
}

// finishSweep computes the sweep's terminal state: per-point costs, the
// Pareto frontier, and — when every experiment succeeded — the durable
// blob. A failed baseline fails the sweep (there is nothing to normalize
// speedups against); failed grid points are reported but excluded from the
// ranking.
func (s *Server) finishSweep(sw *sweep, start time.Time, abort *JobError) {
	benches := sw.spec.Benches
	sw.mu.Lock()
	sw.elapsed = time.Since(start)
	base := sw.points[0]
	switch {
	case abort != nil:
		sw.state = StateFailed
		sw.err = abort
	case base.failed > 0 || base.done < len(benches):
		sw.state = StateFailed
		sw.err = &JobError{
			Status: http.StatusUnprocessableEntity,
			JSON: ErrorJSON{
				Code:    ErrCodeWedge,
				Message: fmt.Sprintf("baseline %q failed (%s); no reference to normalize speedups against", sw.spec.Baseline, base.errCode),
			},
		}
		if base.errCode != "" {
			sw.err.JSON.Code = base.errCode
		}
	default:
		sw.state = StateDone
		sr := &SweepResult{
			Schema:      SweepSchemaVersion,
			Key:         sw.key,
			Spec:        sw.spec,
			Experiments: sw.total,
			CacheHits:   sw.cacheHits,
			ElapsedMs:   sw.elapsed.Milliseconds(),
		}
		var costs []dse.Cost
		for _, p := range sw.points {
			if p.failed > 0 || p.done < len(benches) {
				continue
			}
			cells := make(map[string]SweepCell, len(benches))
			var speedups []float64
			for _, b := range benches {
				sp := 0.0
				if p.cycles[b] > 0 && base.cycles[b] > 0 {
					baseTime := float64(base.cycles[b]) / base.cfg.CPUGHz
					ptTime := float64(p.cycles[b]) / p.cfg.CPUGHz
					sp = baseTime / ptTime
				}
				speedups = append(speedups, sp)
				cells[b] = SweepCell{Confhash: p.keys[b], Cycles: p.cycles[b], Speedup: sp}
			}
			watts, mm2 := dse.Evaluate(p.cfg)
			cost := dse.Cost{Speedup: dse.Geomean(speedups), Watts: watts, MM2: mm2}
			costs = append(costs, cost)
			sr.Points = append(sr.Points, SweepPointResult{
				Config:   p.cfg.Name,
				Knobs:    p.knobs,
				Baseline: p.baseline,
				Benches:  cells,
				Cost:     cost,
			})
		}
		sr.Frontier = dse.Frontier(costs)
		for _, i := range sr.Frontier {
			sr.Points[i].OnFrontier = true
		}
		sw.result = sr
	}
	state, failedExp, result := sw.state, sw.failedExp, sw.result
	sw.mu.Unlock()

	// Persist only complete, fully-successful sweeps: partial outcomes
	// (shed or failed points) replay next time, when capacity allows the
	// missing points to actually run.
	if state == StateDone && failedExp == 0 {
		if bs, ok := s.store.(BlobStore); ok {
			if raw, err := json.Marshal(result); err == nil {
				bs.PutBlob(sw.key, raw)
			}
		}
	}

	s.mu.Lock()
	if state == StateFailed && s.sweepByKey[sw.key] == sw {
		// A failed sweep must not absorb retries of the same spec.
		delete(s.sweepByKey, sw.key)
	}
	s.mu.Unlock()

	s.m.mu.Lock()
	s.m.sweepsRunning--
	if state == StateDone {
		s.m.sweepsDone++
	} else {
		s.m.sweepsFailed++
	}
	s.m.mu.Unlock()
	close(sw.done)
}

// sweepStatus renders a sweep's wire form. Terminal sweeps are immutable;
// live ones are read under the sweep mutex.
func (s *Server) sweepStatus(sw *sweep, includePoints bool) *SweepStatus {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := &SweepStatus{
		ID:             sw.id,
		Key:            sw.key,
		State:          sw.state,
		CacheHit:       sw.cacheHit,
		Spec:           sw.spec,
		Total:          sw.total,
		Done:           sw.doneExp,
		Failed:         sw.failedExp,
		Shed:           sw.shedExp,
		PointCacheHits: sw.cacheHits,
		ElapsedMs:      sw.elapsed.Milliseconds(),
		Result:         sw.result,
	}
	if sw.err != nil {
		ej := sw.err.JSON
		st.Error = &ej
	}
	if !includePoints {
		return st
	}
	nb := len(sw.spec.Benches)
	for _, p := range sw.points {
		ps := SweepPointStatus{
			Config:    p.cfg.Name,
			Knobs:     p.knobs,
			Baseline:  p.baseline,
			Done:      p.done,
			Failed:    p.failed,
			ErrorCode: p.errCode,
		}
		switch {
		case p.failed > 0:
			ps.State = StateFailed
		case p.done == nb:
			ps.State = StateDone
		case p.done > 0:
			ps.State = StateRunning
		default:
			ps.State = StateQueued
		}
		st.Points = append(st.Points, ps)
	}
	return st
}

// ---- HTTP handlers ----

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var spec dse.Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	st, err := s.StartSweep(&spec)
	if err != nil {
		writeJobError(w, toJobError(err))
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone || st.State == StateFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleSweepStatus reports one sweep with per-point progress; ?wait=10s
// long-polls until the sweep reaches a terminal state or the wait expires
// (capped at 60s), the same streaming idiom as job status.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "unknown sweep")
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad wait duration: "+err.Error())
			return
		}
		if wait > time.Minute {
			wait = time.Minute
		}
		select {
		case <-sw.done:
		case <-time.After(wait):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, s.sweepStatus(sw, true))
}

// handleSweepResult returns the completed SweepResult (200), the sweep's
// progress (202 while not terminal), or the stable error envelope.
func (s *Server) handleSweepResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "unknown sweep")
		return
	}
	select {
	case <-sw.done:
	default:
		writeJSON(w, http.StatusAccepted, s.sweepStatus(sw, false))
		return
	}
	if sw.err != nil {
		writeJobError(w, sw.err)
		return
	}
	writeJSON(w, http.StatusOK, sw.result)
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.sweepOrder...)
	s.mu.Unlock()
	out := make([]*SweepStatus, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		sw := s.sweeps[id]
		s.mu.Unlock()
		if sw != nil {
			out = append(out, s.sweepStatus(sw, false))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

// handleSweepKnobs advertises the sweepable-knob registry: names, types and
// legal ranges, so clients can build valid specs without guessing.
func (s *Server) handleSweepKnobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"knobs": dse.Knobs()})
}
