package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// ---- disk store ----
//
// Byte-level store mechanics (eviction atime ordering, torn-write chaos,
// shared-directory visibility) live in internal/store. The tests here pin
// the serve-layer contract on top of it: artifact encoding, on-disk layout,
// and the decoded round trip through the Store adapter.

// artifactPath is the serve layer's on-disk layout contract: one result
// artifact per file, under a schema-versioned directory. External tooling
// (and the CI smoke jobs) depend on these literal paths.
func artifactPath(dir, key string) string {
	return filepath.Join(dir, fmt.Sprintf("schema-%d", SchemaVersion), key+".json")
}

// TestDiskStoreRoundTripAndWarmStart: a put survives a process "restart"
// (reopening the store on the same directory) and is served back decoded —
// the crash-recovery primitive everything else builds on.
func TestDiskStoreRoundTripAndWarmStart(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("aaaa1111", fakeResult("dgemm", "T"))
	d.Put("bbbb2222", fakeResult("streams_copy", "T"))
	if d.Len() != 2 {
		t.Fatalf("len = %d, want 2", d.Len())
	}
	if _, ok := d.Get("aaaa1111"); !ok {
		t.Fatal("get missed a just-put artifact")
	}
	d.Close()

	// "Restart": a second store on the same directory must validate and
	// serve everything the first one persisted.
	d2, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := d2.Status()
	if st.WarmStart != 2 || st.DiskEntries != 2 || st.Quarantined != 0 {
		t.Fatalf("warm-start status = %+v", st)
	}
	res, ok := d2.Get("aaaa1111")
	if !ok || res.Bench != "dgemm" {
		t.Fatalf("warm-started get = %+v ok=%v", res, ok)
	}
	// The decoded result must re-encode to the same artifact bytes the
	// first process wrote, at the documented on-disk path.
	disk, err := os.ReadFile(artifactPath(dir, "aaaa1111"))
	if err != nil {
		t.Fatal(err)
	}
	reenc, _ := json.Marshal(EncodeResult("aaaa1111", res))
	if !bytes.Equal(disk, reenc) {
		t.Fatalf("artifact not byte-stable across restart:\ndisk: %s\nre-encoded: %s", disk, reenc)
	}
}

// corruptions is the deterministic corruption table shared by the loader
// test and the fuzz seed corpus: each entry turns a valid artifact into
// something the decoder must quarantine, never serve, never panic on.
var corruptions = []struct {
	name string
	mut  func(valid []byte) []byte
}{
	{"truncated", func(v []byte) []byte { return v[:len(v)/2] }},
	{"bitflip", func(v []byte) []byte {
		c := append([]byte(nil), v...)
		c[len(c)/3] ^= 0x40 // breaks JSON syntax or silently skews a field name
		return c
	}},
	{"wrong_schema", func(v []byte) []byte {
		return bytes.Replace(v, []byte(fmt.Sprintf(`"schema": %d`, SchemaVersion)), []byte(`"schema": 999`), 1)
	}},
	{"garbage", func(v []byte) []byte { return []byte("\x00\xffnot json at all") }},
	{"empty", func(v []byte) []byte { return nil }},
}

// TestDiskStoreCorruptionQuarantine plants every corruption in the table
// on disk and asserts the loader quarantines it at open: counted, moved to
// the quarantine directory, never part of the warm start, never served.
func TestDiskStoreCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Put("good0000", fakeResult("dgemm", "T"))
	d.Put("good1111", fakeResult("streams_copy", "T"))
	d.Close()
	valid, err := os.ReadFile(artifactPath(dir, "good0000"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range corruptions {
		key := "bad_" + c.name
		if err := os.WriteFile(artifactPath(dir, key), c.mut(valid), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A key mismatch: valid bytes filed under the wrong content address.
	if err := os.WriteFile(artifactPath(dir, "bad_keyskew"), valid, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatalf("corrupt files must not fail the open: %v", err)
	}
	st := d2.Status()
	wantQuar := uint64(len(corruptions) + 1)
	if st.Quarantined != wantQuar || st.WarmStart != 2 || st.DiskEntries != 2 {
		t.Fatalf("status after corrupt open = %+v, want %d quarantined / 2 warm", st, wantQuar)
	}
	for _, c := range corruptions {
		if _, ok := d2.Get("bad_" + c.name); ok {
			t.Fatalf("corrupt artifact %q was served", c.name)
		}
	}
	if _, ok := d2.Get("good0000"); !ok {
		t.Fatal("valid artifact lost in the corrupt sweep")
	}
	quar, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
	if len(quar) == 0 {
		t.Fatal("quarantine directory is empty")
	}

	// Corruption landing after the open (torn write racing a crash) is
	// caught at read time: quarantined then, not served. good1111 has not
	// been read since the reopen, so its bytes are not shadowed by the
	// memory tier.
	if err := os.WriteFile(artifactPath(dir, "good1111"), valid[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d2.Get("good1111"); ok {
		t.Fatal("post-open corruption was served")
	}
	if got := d2.Status().Quarantined; got != wantQuar+1 {
		t.Fatalf("read-time quarantine not counted: %d, want %d", got, wantQuar+1)
	}
}

// FuzzDiskArtifactDecode hammers the artifact decoder with mutated bytes:
// whatever the input, it must return a result or an error — never panic,
// never accept bytes that contradict their content address.
func FuzzDiskArtifactDecode(f *testing.F) {
	valid, err := json.Marshal(EncodeResult("fuzzkey0", fakeResult("dgemm", "T")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	for _, c := range corruptions {
		f.Add(c.mut(valid))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		res, err := decodeArtifact("fuzzkey0", raw)
		if err != nil {
			return
		}
		if res == nil || res.Stats == nil {
			t.Fatalf("decode accepted %q but returned res=%v", raw, res)
		}
		var jr JobResult
		if json.Unmarshal(raw, &jr) != nil || jr.Key != "fuzzkey0" || jr.Schema != SchemaVersion {
			t.Fatalf("decode accepted bytes that contradict their address: %q", raw)
		}
	})
}

// TestTieredStoreSingleFlight is the lru single-flight regression test:
// concurrent Put and Get traffic on one confhash (the exact shape of a
// result completing while a warm-start load is in flight) must neither
// drop the artifact nor tear it, and the disk tier ends with exactly one
// copy. Run under -race in CI.
func TestTieredStoreSingleFlight(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := fakeResult("dgemm", "T")
	const key = "cafe0123"

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				if i%2 == 0 {
					store.Put(key, res)
				} else if got, ok := store.Get(key); ok && got.Bench != "dgemm" {
					t.Errorf("torn read: %+v", got)
				}
			}
		}(i)
	}
	wg.Wait()
	got, ok := store.Get(key)
	if !ok || got.Bench != "dgemm" {
		t.Fatalf("artifact lost after concurrent traffic: %+v ok=%v", got, ok)
	}
	if st := store.Status(); st.Tier != "mem+disk" || st.IOErrors != 0 {
		t.Fatalf("tiered status = %+v", st)
	}
	store.Close()
	// The disk tier ends with exactly one copy: a reopen warm-starts
	// exactly one artifact.
	reopened, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := reopened.Status(); st.DiskEntries != 1 || st.WarmStart != 1 {
		t.Fatalf("disk tier after concurrent traffic = %+v, want exactly 1 entry", st)
	}
}

// TestChaosDiskStore writes through the serve store under the DiskChaos
// campaign (injected write errors and torn writes), then "restarts" onto
// the same directory with chaos off: the recovery scan must quarantine
// every torn artifact, warm-start the rest, and serve only valid decoded
// results. (The byte-level chaos drill on the bare disk tier — where the
// memory tier cannot mask read faults — lives in internal/store.)
func TestChaosDiskStore(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenStore(dir, 16, 0, faults.DiskChaos(7))
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		d.Put(fmt.Sprintf("chaos%02d", i), fakeResult("dgemm", "T"))
	}
	if st := d.Status(); st.IOErrors == 0 {
		t.Fatalf("chaos campaign injected no I/O errors: %+v", st)
	}
	d.Close()

	d2, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	st := d2.Status()
	if st.Quarantined == 0 {
		t.Fatalf("no torn write reached the quarantine path: %+v", st)
	}
	served := 0
	for i := 0; i < n; i++ {
		res, ok := d2.Get(fmt.Sprintf("chaos%02d", i))
		if !ok {
			continue // lost to an injected write error or torn — an honest miss
		}
		served++
		if res.Bench != "dgemm" || res.Stats == nil || res.Stats.Cycles != 1000 {
			t.Fatalf("chaos store served a corrupt artifact: %+v", res)
		}
	}
	if served == 0 {
		t.Fatal("chaos store never served anything — campaign too hot to be a test")
	}
	if served != st.WarmStart {
		t.Fatalf("served %d but warm-started %d", served, st.WarmStart)
	}
}

// ---- server restart recovery ----

// TestRestartRecoveryE2E is the acceptance drill: a server on a disk-backed
// store completes real simulations, drains, and a fresh server on the same
// directory answers the same submissions from the warm-started store — no
// re-simulation, byte-identical artifacts under CompareArtifacts.
func TestRestartRecoveryE2E(t *testing.T) {
	dir := t.TempDir()
	cells := []SubmitRequest{
		{Bench: "streams_copy", Config: "T", Scale: "test"},
		{Bench: "dgemm", Config: "T", Scale: "test"},
	}

	store1, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Options{Workers: 2, Store: store1})
	first := make(map[string][]byte)
	for _, c := range cells {
		st, _ := submit(t, ts1.URL, c)
		fin := waitDone(t, ts1.URL, st.ID)
		if fin.State != StateDone {
			t.Fatalf("cell %s failed: %+v", c.Bench, fin.Error)
		}
		resp, err := http.Get(ts1.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		first[fin.Key] = raw
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.Drain(ctx)
	cancel()

	// The "restarted" process: fresh server, fresh store object, same dir.
	store2, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := store2.Status(); st.WarmStart != len(cells) {
		t.Fatalf("warm start recovered %d artifacts, want %d: %+v", st.WarmStart, len(cells), st)
	}
	_, ts2 := newTestServer(t, Options{Workers: 2, Store: store2})
	for _, c := range cells {
		st, _ := submit(t, ts2.URL, c)
		if st.State != StateDone || !st.CacheHit {
			t.Fatalf("restarted server re-simulated %s: %+v", c.Bench, st)
		}
		resp, err := http.Get(ts2.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := CompareArtifacts(first[st.Key], raw); err != nil {
			t.Fatalf("artifact skewed across restart: %v", err)
		}
		if !bytes.Equal(first[st.Key], raw) {
			t.Fatalf("restart artifact not byte-identical:\nbefore: %s\nafter: %s", first[st.Key], raw)
		}
	}
	if got := metric(t, ts2.URL, "tarserved_sims_started_total"); got != 0 {
		t.Fatalf("restarted server ran %v simulations, want 0", got)
	}
	if got := metric(t, ts2.URL, `tarserved_store_warm_hits{tier="mem+disk"}`); got != float64(len(cells)) {
		t.Fatalf("warm hits = %v, want %d", got, len(cells))
	}
}

// ---- overload protection ----

// TestOverloadSheddingAndAdmission drives a one-worker server 5× over
// capacity: the queued jobs' deadlines expire and they are shed promptly
// with the closed envelope code "deadline_exceeded" (never a hang), the
// admission controller then refuses new work up front with "queue_full" +
// Retry-After once the EWMA says the wait is hopeless, and after drain the
// process has not leaked goroutines.
func TestOverloadSheddingAndAdmission(t *testing.T) {
	g0 := runtime.NumGoroutine()
	var gate atomic.Pointer[chan struct{}]
	ch1 := make(chan struct{})
	gate.Store(&ch1)
	s, ts := newTestServer(t, Options{
		Workers:   1,
		QueueWait: 150 * time.Millisecond,
		Run: func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
			if ch := gate.Load(); ch != nil {
				<-*ch
			}
			return fakeResult(bench, cfg.Name), nil
		},
	})

	// Job 0 occupies the only worker; jobs 1..4 queue behind it with no
	// hope of starting inside their wait budget. Distinct fault seeds give
	// distinct confhashes, so nothing deduplicates.
	lead, _ := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test", FaultSeed: 1})
	shedIDs := make([]string, 0, 4)
	for i := 2; i <= 5; i++ {
		st, code := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test", FaultSeed: int64(i)})
		if code != http.StatusAccepted {
			t.Fatalf("job %d not accepted: HTTP %d", i, code)
		}
		shedIDs = append(shedIDs, st.ID)
	}
	for _, id := range shedIDs {
		start := time.Now()
		fin := waitDone(t, ts.URL, id)
		if fin.State != StateFailed || fin.Error == nil || fin.Error.Code != ErrCodeDeadlineExceeded {
			t.Fatalf("queued job %s not shed structurally: %+v", id, fin)
		}
		if fin.Error.Confhash == "" {
			t.Fatal("shed envelope missing confhash")
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("shed took %v — queue wait is not bounded", waited)
		}
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("shed result HTTP %d, want 504", resp.StatusCode)
		}
	}
	if got := metric(t, ts.URL, "tarserved_shed_deadline_total"); got != 4 {
		t.Fatalf("shed_deadline_total = %v, want 4", got)
	}

	// Release the leader; its long execution seeds the EWMA.
	gate.Store(nil)
	close(ch1)
	if fin := waitDone(t, ts.URL, lead.ID); fin.State != StateDone {
		t.Fatalf("leader failed: %+v", fin)
	}

	// Occupy the worker again: with the EWMA in the hundreds of
	// milliseconds and a 150ms budget, the next submission must be turned
	// away at the door with a capacity estimate.
	ch2 := make(chan struct{})
	gate.Store(&ch2)
	busy, _ := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test", FaultSeed: 6})
	waitForRunning(t, ts.URL, busy.ID)
	body, _ := json.Marshal(SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test", FaultSeed: 7})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error ErrorJSON `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || envelope.Error.Code != ErrCodeQueueFull {
		t.Fatalf("admission rejection = HTTP %d %+v, want 503 queue_full", resp.StatusCode, envelope.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue_full rejection carries no Retry-After header")
	}
	if got := metric(t, ts.URL, "tarserved_shed_queue_full_total"); got != 1 {
		t.Fatalf("shed_queue_full_total = %v, want 1", got)
	}
	gate.Store(nil)
	close(ch2)
	waitDone(t, ts.URL, busy.ID)

	// Drain and verify the goroutine census returns to baseline: shed
	// flights left in the channel, the janitor and the worker all exit.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		// Keep-alive connection goroutines (client transport + httptest
		// server) are test plumbing, not server leaks — reap them so the
		// census sees only what Drain is responsible for.
		http.DefaultTransport.(*http.Transport).CloseIdleConnections()
		if runtime.NumGoroutine() <= g0+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked under overload: started with %d, still at %d after drain", g0, runtime.NumGoroutine())
}

// waitForRunning polls until a job leaves the queued state.
func waitForRunning(t *testing.T, url, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateQueued {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestQueueWaitRequestClamp: a request may tighten its queue-wait budget
// below the server bound but never loosen it past the bound.
func TestQueueWaitRequestClamp(t *testing.T) {
	s := New(Options{Workers: 1, QueueWait: 100 * time.Millisecond, Run: func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
		return fakeResult(bench, cfg.Name), nil
	}})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	if got := s.queueWaitFor(&SubmitRequest{}); got != 100*time.Millisecond {
		t.Fatalf("default wait = %v", got)
	}
	if got := s.queueWaitFor(&SubmitRequest{QueueWaitMs: 40}); got != 40*time.Millisecond {
		t.Fatalf("tightened wait = %v", got)
	}
	if got := s.queueWaitFor(&SubmitRequest{QueueWaitMs: 400}); got != 100*time.Millisecond {
		t.Fatalf("loosened wait not clamped: %v", got)
	}
	sOff := New(Options{Workers: 1, Run: func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
		return fakeResult(bench, cfg.Name), nil
	}})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		sOff.Drain(ctx)
	}()
	if got := sOff.queueWaitFor(&SubmitRequest{QueueWaitMs: 40}); got != 0 {
		t.Fatalf("disabled shedding still produced a wait bound: %v", got)
	}
}

// TestPoisonBreaker: a confhash that crash-loops the subprocess fleet
// through its whole retry budget trips the circuit breaker — the recorded
// worker_crash envelope is replayed to resubmissions without spawning a
// single further execution.
func TestPoisonBreaker(t *testing.T) {
	cell := "streams_copy@T"
	_, ts, _ := newSubprocServer(t, 2, 0, faults.KillStorm(11, 10, cell))

	st, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "T", Scale: "test"})
	fin := waitDone(t, ts.URL, st.ID)
	if fin.State != StateFailed || fin.Error == nil || fin.Error.Code != ErrCodeWorkerCrash {
		t.Fatalf("kill storm did not crash the job: %+v", fin)
	}
	started := metric(t, ts.URL, "tarserved_sims_started_total")

	body, _ := json.Marshal(SubmitRequest{Bench: "streams_copy", Config: "T", Scale: "test"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Error ErrorJSON `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || envelope.Error.Code != ErrCodeWorkerCrash {
		t.Fatalf("poisoned resubmission = HTTP %d %+v", resp.StatusCode, envelope.Error)
	}
	if !strings.Contains(envelope.Error.Message, "quarantined") {
		t.Fatalf("poisoned envelope does not say so: %q", envelope.Error.Message)
	}
	if envelope.Error.Confhash != fin.Key {
		t.Fatalf("poisoned envelope confhash %q, want %q", envelope.Error.Confhash, fin.Key)
	}
	if got := metric(t, ts.URL, "tarserved_sims_started_total"); got != started {
		t.Fatalf("poisoned resubmission started a simulation: %v -> %v", started, got)
	}
	if got := metric(t, ts.URL, "tarserved_poison_shed_total"); got != 1 {
		t.Fatalf("poison_shed_total = %v, want 1", got)
	}
	if got := metric(t, ts.URL, "tarserved_poisoned_confhashes"); got != 1 {
		t.Fatalf("poisoned_confhashes gauge = %v, want 1", got)
	}

	// An untargeted cell sails through the same fleet: the breaker is
	// per-confhash, not global.
	ok2, _ := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"})
	if fin2 := waitDone(t, ts.URL, ok2.ID); fin2.State != StateDone {
		t.Fatalf("healthy cell failed alongside the poisoned one: %+v", fin2)
	}

	// Healthz reports the breaker state.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Store    StoreStatus       `json:"store"`
		Shed     map[string]uint64 `json:"shed"`
		Poisoned int               `json:"poisoned"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Poisoned != 1 || health.Shed["poisoned"] != 1 || health.Store.Tier != "mem" {
		t.Fatalf("healthz robustness block = %+v", health)
	}
}

// TestPoisonTTLDisabled: a negative PoisonTTL turns the breaker off — the
// crash-looping confhash is retried on resubmission rather than refused.
func TestPoisonTTLDisabled(t *testing.T) {
	runs := 0
	s := New(Options{
		Workers:   1,
		PoisonTTL: -1,
		Run: func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
			runs++
			return nil, &JobError{Status: 500, JSON: ErrorJSON{Code: ErrCodeWorkerCrash, Message: "synthetic crash"}}
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	}()
	for i := 0; i < 2; i++ {
		st, err := s.Submit(&SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"})
		if err != nil {
			t.Fatalf("submission %d refused: %v", i, err)
		}
		s.mu.Lock()
		j := s.jobs[st.ID]
		s.mu.Unlock()
		<-j.done
	}
	if runs != 2 {
		t.Fatalf("disabled breaker ran %d simulations, want 2", runs)
	}
}
