package serve

import (
	"container/list"
	"sync"

	"repro/internal/workloads"
)

// lru is the in-memory tier of the content-addressed result store: confhash
// key → completed Result, bounded by entry count with least-recently-used
// eviction. Only successful runs are stored — failures like a blown
// wall-clock deadline depend on the machine the server happens to run on,
// so replaying them is the honest choice. Standing alone it is the
// everything-dies-with-the-process store tarserved launched with; under a
// tieredStore it becomes the read cache in front of the disk tier.
type lru struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[string]*list.Element

	// blobs are aggregate artifacts (sweep results), bounded separately at
	// maxBlobs with insertion-order eviction — sweeps are few and chunky
	// next to per-experiment results, so plain FIFO retention suffices.
	blobs     map[string][]byte
	blobOrder []string

	// snaps are chip snapshots keyed by warm-up address, bounded by bytes
	// (they carry full memory images, so an entry-count bound would let a
	// handful of large-scale snapshots dominate the heap) with
	// insertion-order eviction.
	snaps     map[string][]byte
	snapOrder []string
	snapBytes int64
	snapEvict uint64
}

// maxBlobs bounds retained aggregate blobs in the memory tier.
const maxBlobs = 256

// maxSnapBytes bounds retained chip snapshots in the memory tier.
const maxSnapBytes = 256 << 20

type lruEntry struct {
	key string
	res *workloads.Result
}

func newLRU(max int) *lru {
	if max <= 0 {
		max = 4096
	}
	return &lru{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached result and refreshes its recency.
func (c *lru) Get(key string) (*workloads.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// Put inserts (or refreshes) a result, evicting the coldest entry past the
// bound.
func (c *lru) Put(key string, res *workloads.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// Len reports the current entry count.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// GetBlob returns a stored aggregate blob.
func (c *lru) GetBlob(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.blobs[key]
	return raw, ok
}

// PutBlob stores an aggregate blob, evicting the oldest past the bound.
func (c *lru) PutBlob(key string, raw []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.blobs == nil {
		c.blobs = make(map[string][]byte)
	}
	if _, ok := c.blobs[key]; !ok {
		c.blobOrder = append(c.blobOrder, key)
		for len(c.blobOrder) > maxBlobs {
			delete(c.blobs, c.blobOrder[0])
			c.blobOrder = c.blobOrder[1:]
		}
	}
	c.blobs[key] = raw
}

// GetSnapshot returns a stored chip snapshot.
func (c *lru) GetSnapshot(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blob, ok := c.snaps[key]
	return blob, ok
}

// PutSnapshot stores a chip snapshot, evicting oldest-first past the byte
// bound. A single blob larger than the bound is not retained at all.
func (c *lru) PutSnapshot(key string, blob []byte) {
	if int64(len(blob)) > maxSnapBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.snaps == nil {
		c.snaps = make(map[string][]byte)
	}
	if old, ok := c.snaps[key]; ok {
		c.snapBytes -= int64(len(old))
	} else {
		c.snapOrder = append(c.snapOrder, key)
	}
	c.snaps[key] = blob
	c.snapBytes += int64(len(blob))
	for c.snapBytes > maxSnapBytes && len(c.snapOrder) > 0 {
		oldest := c.snapOrder[0]
		c.snapOrder = c.snapOrder[1:]
		if old, ok := c.snaps[oldest]; ok {
			c.snapBytes -= int64(len(old))
			delete(c.snaps, oldest)
			c.snapEvict++
		}
	}
}

// Status reports the memory-only store health.
func (c *lru) Status() StoreStatus {
	c.mu.Lock()
	snapN, snapB, snapE := len(c.snaps), c.snapBytes, c.snapEvict
	c.mu.Unlock()
	return StoreStatus{Tier: "mem", MemEntries: c.Len(),
		SnapEntries: snapN, SnapBytes: snapB, SnapEvicted: snapE}
}

// Close is a no-op: the memory tier has nothing to release.
func (c *lru) Close() error { return nil }
