// Package serve turns the Tarantula simulator into a long-lived,
// multi-tenant job service: experiments are submitted over JSON/HTTP, keyed
// by their confhash content address, deduplicated against in-flight runs,
// answered from a bounded LRU result cache when possible, and executed on a
// bounded worker pool otherwise. The server exposes Prometheus metrics and
// drains in-flight simulations on shutdown, so a deploy never truncates a
// half-finished experiment.
//
// Execution is pluggable behind the Backend interface: the in-process pool
// runs simulations as goroutines in the server binary (zero overhead), and
// the subprocess fleet runs each job in its own tarworker process so a
// wedged or crashing model build can be SIGKILLed and retried without
// taking the service down. Both backends produce byte-identical JobResult
// artifacts for the same spec, and every integrity feature (watchdog,
// deadline, invariant checker, fault campaigns) remains a request knob. A
// wedged machine surfaces as a structured HTTP 422 with error code "wedge"
// — never a hung connection or an anonymous 500.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/confhash"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// RunFunc executes one experiment. The default runs the real simulator;
// tests substitute counting or failing stubs. It is the in-process
// backend's execution function — the subprocess backend replaces the whole
// execution path, not just this hook.
type RunFunc func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error)

func defaultRun(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
	b, err := workloads.Get(bench)
	if err != nil {
		return nil, err
	}
	return b.Run(cfg, scale)
}

// Options configures a Server. Zero values select sensible defaults.
type Options struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds flights waiting for a worker (default 1024);
	// overflow rejects the submission with 503 rather than queueing
	// unboundedly.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 4096).
	CacheEntries int
	// DefaultDeadline is applied to jobs that do not set deadline_ms;
	// MaxDeadline clamps what a request may ask for. Zero disables each.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxJobs bounds retained job records (default 16384); the oldest
	// terminal jobs are forgotten past it.
	MaxJobs int
	// SampleEvery arms the cycle-interval sampler on every simulation the
	// server runs: results carry a metrics.SeriesDump and /metrics exposes
	// per-experiment series summaries. Zero (the default) disables
	// sampling, keeping result bytes identical to an unsampled CLI run.
	// The knob lives outside the confhash identity, so sampled and
	// unsampled runs of one experiment share a content key.
	SampleEvery uint64
	// SampleCap bounds retained points per run (0 = the sampler default).
	SampleCap int
	// Backend substitutes the execution backend. Nil selects the
	// in-process pool (wrapping Run when set).
	Backend Backend
	// Run substitutes the in-process execution function (tests only).
	// Ignored when Backend is set.
	Run RunFunc
}

// Server is the simulation-as-a-service layer. Create with New, mount via
// Handler, stop with Drain.
type Server struct {
	opts    Options
	backend Backend
	cache   *lru
	m       *metrics
	mux     *http.ServeMux

	mu       sync.Mutex
	seq      int
	jobs     map[string]*job
	order    []string // job ids, submission order (listing + record GC)
	flights  map[string]*flight
	queue    chan *flight
	draining bool

	workersWG sync.WaitGroup
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 16384
	}
	s := &Server{
		opts:    opts,
		backend: opts.Backend,
		cache:   newLRU(opts.CacheEntries),
		m:       &metrics{},
		jobs:    make(map[string]*job),
		flights: make(map[string]*flight),
		queue:   make(chan *flight, opts.QueueDepth),
	}
	if s.backend == nil {
		s.backend = newInProcessBackend(opts.Run, opts.Workers)
	}
	s.backend.Registry().RegisterGauge("workers.queue_depth",
		"Flights waiting for an execution slot.",
		func(uint64) int { return len(s.queue) })
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/benches", s.handleBenches)
	s.mux.HandleFunc("GET /v1/configs", s.handleConfigs)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < opts.Workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Backend returns the execution backend (for health introspection and
// tests).
func (s *Server) Backend() Backend { return s.backend }

// Drain stops intake (new submissions get 503), lets queued and in-flight
// simulations finish, closes the backend, and returns when the pool is
// idle or ctx expires. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		s.backend.Close()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %d simulations still in flight: %w", s.inFlight(), ctx.Err())
	}
}

func (s *Server) inFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flights)
}

// ---- execution ----

func (s *Server) worker() {
	defer s.workersWG.Done()
	for f := range s.queue {
		s.mu.Lock()
		wereQueued := 0
		for _, j := range f.jobs {
			if j.state == StateQueued {
				wereQueued++
			}
			j.state = StateRunning
		}
		n := len(f.jobs)
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.simsStarted++
		s.m.queued -= wereQueued
		s.m.running += n
		s.m.mu.Unlock()
		res, err := s.backend.Execute(f.spec)
		var jobErr *JobError
		if err != nil {
			jobErr = toJobError(err)
			jobErr.JSON.Confhash = f.key
		}
		s.complete(f, res, jobErr)
	}
}

// complete publishes a flight's outcome to every attached job, feeds the
// cache, and updates the metrics.
func (s *Server) complete(f *flight, res *workloads.Result, jobErr *JobError) {
	if jobErr == nil {
		s.cache.add(f.key, res)
		s.m.recordExperiment(f.key, f.spec.Bench, res.Config, res)
	}
	now := time.Now()
	s.mu.Lock()
	delete(s.flights, f.key)
	for _, j := range f.jobs {
		j.res, j.err = res, jobErr
		j.elapsed = now.Sub(j.submitted)
		if jobErr == nil {
			j.state = StateDone
		} else {
			j.state = StateFailed
		}
		close(j.done)
	}
	s.mu.Unlock()
	s.m.mu.Lock()
	s.m.simsDone++
	s.m.running -= len(f.jobs)
	for _, j := range f.jobs {
		if jobErr == nil {
			s.m.done++
		} else {
			s.m.failed++
			if jobErr.JSON.Code == ErrCodeWedge {
				s.m.wedged++
			}
		}
		s.m.recordLatency(j.elapsed.Seconds())
	}
	s.m.mu.Unlock()
}

// ---- submission ----

// Submit registers one experiment and returns its status: answered from the
// cache (terminal immediately), attached to an identical in-flight run, or
// queued as a fresh flight. A non-nil error is always a *JobError carrying
// the stable envelope (bad_request, draining or queue_full). Exported for
// in-process embedding; the HTTP handler is a thin wrapper.
func (s *Server) Submit(req *SubmitRequest) (*JobStatus, error) {
	spec, cfg, scale, err := s.resolveSpec(req)
	if err != nil {
		return nil, &JobError{Status: http.StatusBadRequest, JSON: ErrorJSON{Code: ErrCodeBadRequest, Message: err.Error()}}
	}
	key := confhash.Key(spec.Bench, scale.String(), cfg)
	now := time.Now()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.rejected++
		s.m.mu.Unlock()
		return nil, &JobError{Status: http.StatusServiceUnavailable, JSON: ErrorJSON{Code: ErrCodeDraining, Message: "server is draining"}}
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		key:       key,
		bench:     spec.Bench,
		config:    cfg.Name,
		scaleStr:  scale.String(),
		submitted: now,
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.gcLocked()

	if res, ok := s.cache.get(key); ok {
		j.state, j.res, j.cacheHit = StateDone, res, true
		close(j.done)
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.submitted++
		s.m.cacheHits++
		s.m.done++
		s.m.recordLatency(0)
		s.m.bumpExperimentHitLocked(key)
		s.m.mu.Unlock()
		return s.status(j), nil
	}

	if f, ok := s.flights[key]; ok {
		f.jobs = append(f.jobs, j)
		j.state = f.jobs[0].state // queued or running, same as the leader
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.submitted++
		s.m.cacheMisses++
		s.m.dedupJoined++
		if j.state == StateRunning {
			s.m.running++
		} else {
			s.m.queued++
		}
		s.m.mu.Unlock()
		return s.status(j), nil
	}

	f := &flight{key: key, spec: spec, jobs: []*job{j}}
	j.state = StateQueued
	select {
	case s.queue <- f:
	default:
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.rejected++
		s.m.mu.Unlock()
		return nil, &JobError{Status: http.StatusServiceUnavailable, JSON: ErrorJSON{Code: ErrCodeQueueFull, Message: "job queue is full"}}
	}
	s.flights[key] = f
	s.mu.Unlock()
	s.m.mu.Lock()
	s.m.submitted++
	s.m.cacheMisses++
	s.m.queued++
	s.m.mu.Unlock()
	return s.status(j), nil
}

// gcLocked forgets the oldest terminal job records past the retention
// bound. Requires s.mu.
func (s *Server) gcLocked() {
	for len(s.order) > s.opts.MaxJobs {
		id := s.order[0]
		j := s.jobs[id]
		select {
		case <-j.done:
			s.order = s.order[1:]
			delete(s.jobs, id)
		default:
			return // oldest record still live; keep everything behind it
		}
	}
}

// status renders a job's wire form. Terminal jobs are immutable; live ones
// are read under the server mutex.
func (s *Server) status(j *job) *JobStatus {
	s.mu.Lock()
	st := &JobStatus{
		ID:        j.id,
		Key:       j.key,
		Bench:     j.bench,
		Config:    j.config,
		Scale:     j.scaleStr,
		State:     j.state,
		CacheHit:  j.cacheHit,
		ElapsedMs: j.elapsed.Milliseconds(),
	}
	res, jobErr := j.res, j.err
	s.mu.Unlock()
	if st.State == StateDone && res != nil {
		st.Result = EncodeResult(j.key, res)
	}
	if st.State == StateFailed && jobErr != nil {
		ej := jobErr.JSON
		st.Error = &ej
	}
	return st
}

// ---- HTTP handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits the stable envelope: {"error":{"code","message",...}}.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]any{"error": ErrorJSON{Code: code, Message: msg}})
}

// writeJobError emits a JobError's envelope with its HTTP status.
func writeJobError(w http.ResponseWriter, je *JobError) {
	writeJSON(w, je.Status, map[string]any{"error": je.JSON})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	st, err := s.Submit(&req)
	if err != nil {
		writeJobError(w, toJobError(err))
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone || st.State == StateFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleStatus reports one job; ?wait=10s long-polls until the job reaches
// a terminal state or the wait expires (capped at 60s), which is how
// clients "stream" status without a busy loop.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "unknown job")
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad wait duration: "+err.Error())
			return
		}
		if wait > time.Minute {
			wait = time.Minute
		}
		select {
		case <-j.done:
		case <-time.After(wait):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleResult returns the completed result (200), the job's progress (202
// while not terminal), or the stable error envelope — 422 for wedges and
// functional check failures, 500 for server-side faults and crash-looped
// jobs whose retry budget ran out.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "unknown job")
		return
	}
	select {
	case <-j.done:
	default:
		writeJSON(w, http.StatusAccepted, s.status(j))
		return
	}
	if j.err != nil {
		writeJobError(w, j.err)
		return
	}
	writeJSON(w, http.StatusOK, EncodeResult(j.key, j.res))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]*JobStatus, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j != nil {
			out = append(out, s.status(j))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleBenches(w http.ResponseWriter, r *http.Request) {
	type benchInfo struct {
		Name  string `json:"name"`
		Class string `json:"class"`
		Desc  string `json:"desc"`
	}
	var out []benchInfo
	for _, n := range workloads.Names() {
		b, _ := workloads.Get(n)
		out = append(out, benchInfo{Name: n, Class: b.Class, Desc: b.Desc})
	}
	writeJSON(w, http.StatusOK, map[string]any{"benches": out})
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"configs": sim.Names()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.m.render(w, s.cache.len())
	// Backend gauges (workers.alive → tarserved_workers_alive, ...) ride
	// the same exposition so one scrape sees the whole service.
	for _, g := range s.backend.Registry().Gauges() {
		name := "tarserved_" + strings.ReplaceAll(g.Name, ".", "_")
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, g.Help, name, name, g.Read(0))
	}
}

// handleHealthz reports liveness plus the execution backend's health:
// backend kind, live worker count and queue depth. The status degrades to
// 503 while draining and when the backend has no live workers — a fleet
// whose every worker is crash-looping must fail its health check rather
// than accept jobs it cannot run.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	alive := s.backend.Alive()
	body := map[string]any{
		"status":        "ok",
		"backend":       s.backend.Kind(),
		"workers_alive": alive,
		"queue_depth":   len(s.queue),
	}
	code := http.StatusOK
	switch {
	case draining:
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	case alive == 0:
		body["status"] = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
