// Package serve turns the Tarantula simulator into a long-lived,
// multi-tenant job service: experiments are submitted over JSON/HTTP, keyed
// by their confhash content address, deduplicated against in-flight runs,
// answered from a pluggable result store when possible, and executed on a
// bounded worker pool otherwise. The server exposes Prometheus metrics and
// drains in-flight simulations on shutdown, so a deploy never truncates a
// half-finished experiment.
//
// Execution is pluggable behind the Backend interface: the in-process pool
// runs simulations as goroutines in the server binary (zero overhead), and
// the subprocess fleet runs each job in its own tarworker process so a
// wedged or crashing model build can be SIGKILLed and retried without
// taking the service down. Both backends produce byte-identical JobResult
// artifacts for the same spec, and every integrity feature (watchdog,
// deadline, invariant checker, fault campaigns) remains a request knob. A
// wedged machine surfaces as a structured HTTP 422 with error code "wedge"
// — never a hung connection or an anonymous 500.
//
// Results live behind the Store interface: the in-memory LRU alone, or the
// LRU tiered over a crash-safe disk store so a restarted server warm-starts
// from its previous life's artifacts. Under overload the server sheds load
// structurally rather than degrading: the admission controller refuses
// submissions whose estimated queue wait would blow their deadline
// (queue_full + Retry-After), queued jobs whose deadline expires are shed
// with deadline_exceeded before ever occupying a worker, and a confhash
// that crash-loops the worker fleet is quarantined by a circuit breaker
// instead of being retried forever.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/confhash"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// RunFunc executes one experiment. The default runs the real simulator;
// tests substitute counting or failing stubs. It is the in-process
// backend's execution function — the subprocess backend replaces the whole
// execution path, not just this hook.
type RunFunc func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error)

func defaultRun(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
	b, err := workloads.Get(bench)
	if err != nil {
		return nil, err
	}
	return b.Run(cfg, scale)
}

// defaultPoisonTTL is how long a crash-looping confhash stays quarantined
// when Options.PoisonTTL is zero.
const defaultPoisonTTL = 10 * time.Minute

// ForwardedHeader marks a submission that was routed here by a cluster
// peer (its value is the sender's node id). A request carrying it is
// pinned to this node — forwarded again it would loop — and counts toward
// the cross-node dedup statistics when the local store or an in-flight run
// answers it.
const ForwardedHeader = "X-Tarantula-Forwarded"

// RouteVerdict is a Router's decision about one flight.
type RouteVerdict int

const (
	// RouteLocal: this node owns the spec's route key — execute it here.
	RouteLocal RouteVerdict = iota
	// RouteRemote: the owning peer executed the spec; the returned
	// result/error is the flight's outcome.
	RouteRemote
	// RouteFallback: the owning peer is unreachable — execute locally so a
	// dead node degrades placement, never availability.
	RouteFallback
)

// Router is the cluster forwarding hook, consulted by a worker before it
// executes a flight on the local backend. Implementations place the spec's
// Route key on the ring and, when a peer owns it, run the experiment there
// end to end. A Router must never fail a job because a peer was
// unreachable: it reports RouteFallback and the local backend runs the
// simulation.
type Router interface {
	Execute(spec *JobSpec) (*workloads.Result, *JobError, RouteVerdict)
}

// Options configures a Server. Zero values select sensible defaults.
type Options struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds flights waiting for a worker (default 1024);
	// overflow rejects the submission with 503 rather than queueing
	// unboundedly.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 4096). Ignored
	// when Store is set.
	CacheEntries int
	// Store substitutes the result store. Nil selects the in-memory LRU
	// bounded by CacheEntries; OpenStore builds the tiered disk-backed
	// store tarserved uses.
	Store Store
	// QueueWait bounds how long a job may wait for a worker before being
	// shed with code "deadline_exceeded"; it is also the admission
	// controller's wait budget (submissions whose estimated wait exceeds
	// it are refused up front with "queue_full" + Retry-After). A request
	// may ask for less via queue_wait_ms, never more. Zero disables
	// queue-wait shedding and admission control entirely.
	QueueWait time.Duration
	// PoisonTTL is how long the circuit breaker quarantines a confhash
	// whose executions crash-looped the worker fleet: resubmissions are
	// refused with the recorded worker_crash envelope instead of
	// crash-looping again. Zero selects defaultPoisonTTL; negative
	// disables the breaker.
	PoisonTTL time.Duration
	// DefaultDeadline is applied to jobs that do not set deadline_ms;
	// MaxDeadline clamps what a request may ask for. Zero disables each.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxJobs bounds retained job records (default 16384); the oldest
	// terminal jobs are forgotten past it.
	MaxJobs int
	// SampleEvery arms the cycle-interval sampler on every simulation the
	// server runs: results carry a metrics.SeriesDump and /metrics exposes
	// per-experiment series summaries. Zero (the default) disables
	// sampling, keeping result bytes identical to an unsampled CLI run.
	// The knob lives outside the confhash identity, so sampled and
	// unsampled runs of one experiment share a content key.
	SampleEvery uint64
	// SampleCap bounds retained points per run (0 = the sampler default).
	SampleCap int
	// Backend substitutes the execution backend. Nil selects the
	// in-process pool (wrapping Run when set).
	Backend Backend
	// Run substitutes the in-process execution function (tests only).
	// Ignored when Backend is set.
	Run RunFunc
	// Router arms cluster mode: workers consult it before executing a
	// flight locally, and requests carry placement identities (RouteKey).
	// Nil (the default) keeps every flight local.
	Router Router
	// NodeID names this node in a cluster; surfaced on /healthz and used as
	// the forward-marker value. Empty outside cluster mode.
	NodeID string
	// ClusterInfo reports the node's ring view for /healthz (ring
	// generation and live peer count). Nil outside cluster mode.
	ClusterInfo func() (generation uint64, peers int)
}

// poisonRecord is one quarantined confhash: the worker_crash envelope its
// executions earned, replayed to resubmissions until the TTL expires.
type poisonRecord struct {
	until time.Time
	err   ErrorJSON
}

// Server is the simulation-as-a-service layer. Create with New, mount via
// Handler, stop with Drain.
type Server struct {
	opts    Options
	backend Backend
	store   Store
	m       *metrics
	mux     *http.ServeMux

	mu       sync.Mutex
	seq      int
	jobs     map[string]*job
	order    []string // job ids, submission order (listing + record GC)
	flights  map[string]*flight
	queue    chan *flight
	poison   map[string]*poisonRecord
	draining bool

	// Sweep orchestration state: sweep records by id, submission order for
	// listing + GC, and the spec-key index that deduplicates identical
	// sweeps onto one orchestration.
	sweepSeq   int
	sweeps     map[string]*sweep
	sweepOrder []string
	sweepByKey map[string]*sweep

	workersWG   sync.WaitGroup
	sweepsWG    sync.WaitGroup
	janitorWG   sync.WaitGroup
	stopJanitor chan struct{}
	stopOnce    sync.Once
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 16384
	}
	s := &Server{
		opts:        opts,
		backend:     opts.Backend,
		store:       opts.Store,
		m:           &metrics{},
		jobs:        make(map[string]*job),
		flights:     make(map[string]*flight),
		queue:       make(chan *flight, opts.QueueDepth),
		poison:      make(map[string]*poisonRecord),
		sweeps:      make(map[string]*sweep),
		sweepByKey:  make(map[string]*sweep),
		stopJanitor: make(chan struct{}),
	}
	if s.store == nil {
		s.store = newMemStore(opts.CacheEntries)
	}
	if s.backend == nil {
		run := opts.Run
		if run == nil {
			// Warm-up snapshot reuse rides the in-process execution path
			// when the store can hold snapshots. Test stubs (opts.Run) and
			// the subprocess backend keep the plain path: a subprocess
			// worker has no handle on the server's store.
			if ss, ok := s.store.(SnapshotStore); ok {
				run = s.snapshotRun(ss)
			}
		}
		s.backend = newInProcessBackend(run, opts.Workers)
	}
	s.backend.Registry().RegisterGauge("workers.queue_depth",
		"Flights waiting for an execution slot.",
		func(uint64) int { return len(s.queue) })
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/knobs", s.handleSweepKnobs)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepStatus)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/result", s.handleSweepResult)
	s.mux.HandleFunc("GET /v1/benches", s.handleBenches)
	s.mux.HandleFunc("GET /v1/configs", s.handleConfigs)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for i := 0; i < opts.Workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	if opts.QueueWait > 0 {
		s.janitorWG.Add(1)
		go s.janitor()
	}
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Backend returns the execution backend (for health introspection and
// tests).
func (s *Server) Backend() Backend { return s.backend }

// Store returns the result store (for health introspection and tests).
func (s *Server) Store() Store { return s.store }

// Drain stops intake (new submissions get 503), lets queued and in-flight
// simulations finish, stops the shed janitor, closes the backend and the
// store, and returns when the pool is idle or ctx expires. Safe to call
// more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopJanitor) })
	idle := make(chan struct{})
	go func() {
		// Sweep orchestrators first: their pending submissions fail fast
		// against the draining flag, and the experiments they already queued
		// complete as the worker pool drains (workers exit when the closed
		// queue empties, after the orchestrators stop waiting on them).
		s.sweepsWG.Wait()
		s.workersWG.Wait()
		s.janitorWG.Wait()
		s.backend.Close()
		s.store.Close()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain: %d simulations still in flight: %w", s.inFlight(), ctx.Err())
	}
}

func (s *Server) inFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.flights)
}

// ---- execution ----

func (s *Server) worker() {
	defer s.workersWG.Done()
	for f := range s.queue {
		s.mu.Lock()
		if f.shed {
			// The janitor already completed this flight; the channel slot
			// is stale.
			s.mu.Unlock()
			continue
		}
		if !f.deadline.IsZero() && time.Now().After(f.deadline) {
			// Expired in the queue between janitor ticks: shed at dequeue,
			// never start a simulation that already missed its deadline.
			f.shed = true
			s.mu.Unlock()
			s.complete(f, nil, shedError(f.key), -1)
			continue
		}
		f.started = true
		wereQueued := 0
		for _, j := range f.jobs {
			if j.state == StateQueued {
				wereQueued++
			}
			j.state = StateRunning
		}
		n := len(f.jobs)
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.queued -= wereQueued
		s.m.running += n
		s.m.mu.Unlock()

		// Cluster routing: hand the flight to the peer that owns its route
		// key. A remote execution occupies this worker slot (backpressure
		// stays honest) but runs no local simulation — sims_started counts
		// only simulations this node's backend performed, which is what
		// makes cluster-wide dedup observable.
		if r := s.opts.Router; r != nil && !f.spec.NoForward {
			if res, jobErr, verdict := r.Execute(f.spec); verdict == RouteRemote {
				s.m.mu.Lock()
				s.m.jobsForwarded++
				s.m.mu.Unlock()
				s.complete(f, res, jobErr, -1)
				continue
			} else if verdict == RouteFallback {
				s.m.mu.Lock()
				s.m.forwardFallback++
				s.m.mu.Unlock()
			}
		}

		s.m.mu.Lock()
		s.m.simsStarted++
		s.m.mu.Unlock()
		execStart := time.Now()
		res, err := s.backend.Execute(f.spec)
		var jobErr *JobError
		if err != nil {
			jobErr = toJobError(err)
			jobErr.JSON.Confhash = f.key
		}
		s.complete(f, res, jobErr, time.Since(execStart).Seconds())
	}
}

// shedError is the terminal envelope of a job whose deadline expired while
// it was still queued.
func shedError(key string) *JobError {
	return &JobError{
		Status: http.StatusGatewayTimeout,
		JSON: ErrorJSON{
			Code:     ErrCodeDeadlineExceeded,
			Message:  "deadline expired while queued; job shed before execution",
			Confhash: key,
		},
	}
}

// janitor sheds queued flights whose deadline expired before a worker freed
// up, so a saturated server fails them promptly instead of letting them rot
// in the queue past their useful life.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	t := time.NewTicker(25 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-s.stopJanitor:
			return
		case <-t.C:
			s.shedExpired()
		}
	}
}

// shedExpired marks every expired, not-yet-started flight as shed (under
// the server mutex, so shedding and execution are mutually exclusive) and
// completes them with deadline_exceeded. The flight's channel slot stays
// behind; workers skip it via the shed flag.
func (s *Server) shedExpired() {
	now := time.Now()
	s.mu.Lock()
	var expired []*flight
	for _, f := range s.flights {
		if !f.started && !f.shed && !f.deadline.IsZero() && now.After(f.deadline) {
			f.shed = true
			expired = append(expired, f)
		}
	}
	s.mu.Unlock()
	for _, f := range expired {
		s.complete(f, nil, shedError(f.key), -1)
	}
}

// complete publishes a flight's outcome to every attached job, feeds the
// store, and updates the metrics. execSec is the backend execution time
// feeding the admission controller's wait estimator; negative means the
// flight was shed without executing. Crash-looped outcomes arm the circuit
// breaker: the confhash is quarantined so resubmissions fail fast instead
// of crash-looping the fleet again.
func (s *Server) complete(f *flight, res *workloads.Result, jobErr *JobError, execSec float64) {
	if jobErr == nil {
		s.store.Put(f.key, res)
		s.m.recordExperiment(f.key, f.spec.Bench, res.Config, res)
	}
	now := time.Now()
	s.mu.Lock()
	delete(s.flights, f.key)
	if jobErr != nil && jobErr.JSON.Code == ErrCodeWorkerCrash && s.opts.PoisonTTL >= 0 {
		ttl := s.opts.PoisonTTL
		if ttl == 0 {
			ttl = defaultPoisonTTL
		}
		ej := jobErr.JSON
		ej.Message = "confhash quarantined after repeated worker crashes: " + ej.Message
		s.poison[f.key] = &poisonRecord{until: now.Add(ttl), err: ej}
	}
	wereQueued, wereRunning := 0, 0
	for _, j := range f.jobs {
		switch j.state {
		case StateQueued:
			wereQueued++
		case StateRunning:
			wereRunning++
		}
		j.res, j.err = res, jobErr
		j.elapsed = now.Sub(j.submitted)
		if jobErr == nil {
			j.state = StateDone
		} else {
			j.state = StateFailed
		}
		close(j.done)
	}
	s.mu.Unlock()
	s.m.mu.Lock()
	if execSec >= 0 {
		s.m.simsDone++
		if s.m.ewmaJob == 0 {
			s.m.ewmaJob = execSec
		} else {
			s.m.ewmaJob = 0.7*s.m.ewmaJob + 0.3*execSec
		}
	}
	s.m.queued -= wereQueued
	s.m.running -= wereRunning
	for _, j := range f.jobs {
		if jobErr == nil {
			s.m.done++
		} else {
			s.m.failed++
			switch jobErr.JSON.Code {
			case ErrCodeWedge:
				s.m.wedged++
			case ErrCodeDeadlineExceeded:
				s.m.shedDeadline++
			}
		}
		s.m.recordLatency(j.elapsed.Seconds())
	}
	s.m.mu.Unlock()
}

// ---- submission ----

// queueWaitFor resolves a request's queue-wait budget: the server bound,
// tightened (never loosened) by the request's queue_wait_ms. Zero when the
// server has queue-wait shedding disabled.
func (s *Server) queueWaitFor(req *SubmitRequest) time.Duration {
	bound := s.opts.QueueWait
	if bound <= 0 {
		return 0
	}
	if req.QueueWaitMs > 0 {
		if d := time.Duration(req.QueueWaitMs) * time.Millisecond; d < bound {
			return d
		}
	}
	return bound
}

// Submit registers one experiment and returns its status: answered from the
// store (terminal immediately), attached to an identical in-flight run, or
// queued as a fresh flight. A non-nil error is always a *JobError carrying
// the stable envelope (bad_request, draining, queue_full, worker_crash for
// a quarantined confhash). Exported for in-process embedding; the HTTP
// handler is a thin wrapper.
func (s *Server) Submit(req *SubmitRequest) (*JobStatus, error) {
	spec, cfg, scale, err := s.resolveSpec(req)
	if err != nil {
		return nil, &JobError{Status: http.StatusBadRequest, JSON: ErrorJSON{Code: ErrCodeBadRequest, Message: err.Error()}}
	}
	key := confhash.Key(spec.Bench, scale.String(), cfg)
	now := time.Now()
	wait := s.queueWaitFor(req)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.rejected++
		s.m.mu.Unlock()
		return nil, &JobError{Status: http.StatusServiceUnavailable, JSON: ErrorJSON{Code: ErrCodeDraining, Message: "server is draining"}}
	}
	if rec, ok := s.poison[key]; ok {
		if now.After(rec.until) {
			delete(s.poison, key)
		} else {
			s.mu.Unlock()
			s.m.mu.Lock()
			s.m.rejected++
			s.m.poisonShed++
			s.m.mu.Unlock()
			ej := rec.err
			return nil, &JobError{Status: http.StatusInternalServerError, JSON: ej}
		}
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("job-%d", s.seq),
		key:       key,
		bench:     spec.Bench,
		config:    cfg.Name,
		scaleStr:  scale.String(),
		submitted: now,
		done:      make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.gcLocked()

	if res, ok := s.store.Get(key); ok {
		j.state, j.res, j.cacheHit = StateDone, res, true
		close(j.done)
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.submitted++
		s.m.cacheHits++
		s.m.done++
		if req.Forwarded {
			s.m.crossNodeDedup++
		}
		s.m.recordLatency(0)
		s.m.bumpExperimentHitLocked(key)
		s.m.mu.Unlock()
		return s.status(j), nil
	}

	if f, ok := s.flights[key]; ok && !f.shed {
		f.jobs = append(f.jobs, j)
		j.state = f.jobs[0].state // queued or running, same as the leader
		if !f.started && !f.deadline.IsZero() && wait > 0 {
			// A joiner with a later deadline extends the flight's: the
			// flight must live as long as its most patient job.
			if d := now.Add(wait); d.After(f.deadline) {
				f.deadline = d
			}
		}
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.submitted++
		s.m.cacheMisses++
		s.m.dedupJoined++
		if req.Forwarded {
			s.m.crossNodeDedup++
		}
		if j.state == StateRunning {
			s.m.running++
		} else {
			s.m.queued++
		}
		s.m.mu.Unlock()
		return s.status(j), nil
	}

	// Admission control: refuse up front when the estimated queue wait
	// (work ahead × EWMA execution time / workers) would blow the job's
	// wait budget anyway — a structured early rejection with a capacity
	// estimate beats a guaranteed deadline_exceeded later. "Work ahead"
	// counts queued flights plus executing ones minus free workers, so an
	// idle server never rejects.
	if wait > 0 {
		s.m.mu.Lock()
		ewma := s.m.ewmaJob
		active := int(s.m.simsStarted - s.m.simsDone)
		s.m.mu.Unlock()
		if ahead := len(s.queue) + active - s.opts.Workers + 1; ewma > 0 && ahead > 0 {
			estWait := float64(ahead) * ewma / float64(s.opts.Workers)
			if estWait > wait.Seconds() {
				delete(s.jobs, j.id)
				s.order = s.order[:len(s.order)-1]
				s.mu.Unlock()
				s.m.mu.Lock()
				s.m.rejected++
				s.m.shedQueueFull++
				s.m.mu.Unlock()
				retry := time.Duration((estWait - wait.Seconds()) * float64(time.Second))
				if retry < time.Second {
					retry = time.Second
				}
				return nil, &JobError{
					Status:     http.StatusServiceUnavailable,
					JSON:       ErrorJSON{Code: ErrCodeQueueFull, Message: fmt.Sprintf("estimated queue wait %.1fs exceeds wait budget %s", estWait, wait), Confhash: key},
					RetryAfter: retry,
				}
			}
		}
	}

	f := &flight{key: key, spec: spec, jobs: []*job{j}}
	if wait > 0 {
		f.deadline = now.Add(wait)
	}
	j.state = StateQueued
	select {
	case s.queue <- f:
	default:
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.m.mu.Lock()
		s.m.rejected++
		s.m.shedQueueFull++
		s.m.mu.Unlock()
		return nil, &JobError{
			Status:     http.StatusServiceUnavailable,
			JSON:       ErrorJSON{Code: ErrCodeQueueFull, Message: "job queue is full"},
			RetryAfter: time.Second,
		}
	}
	s.flights[key] = f
	s.mu.Unlock()
	s.m.mu.Lock()
	s.m.submitted++
	s.m.cacheMisses++
	s.m.queued++
	s.m.mu.Unlock()
	return s.status(j), nil
}

// gcLocked forgets the oldest terminal job records past the retention
// bound. Requires s.mu.
func (s *Server) gcLocked() {
	for len(s.order) > s.opts.MaxJobs {
		id := s.order[0]
		j := s.jobs[id]
		select {
		case <-j.done:
			s.order = s.order[1:]
			delete(s.jobs, id)
		default:
			return // oldest record still live; keep everything behind it
		}
	}
}

// status renders a job's wire form. Terminal jobs are immutable; live ones
// are read under the server mutex.
func (s *Server) status(j *job) *JobStatus {
	s.mu.Lock()
	st := &JobStatus{
		ID:        j.id,
		Key:       j.key,
		Bench:     j.bench,
		Config:    j.config,
		Scale:     j.scaleStr,
		State:     j.state,
		CacheHit:  j.cacheHit,
		ElapsedMs: j.elapsed.Milliseconds(),
	}
	res, jobErr := j.res, j.err
	s.mu.Unlock()
	if st.State == StateDone && res != nil {
		st.Result = EncodeResult(j.key, res)
	}
	if st.State == StateFailed && jobErr != nil {
		ej := jobErr.JSON
		st.Error = &ej
	}
	return st
}

// ---- HTTP handlers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError emits the stable envelope: {"error":{"code","message",...}}.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]any{"error": ErrorJSON{Code: code, Message: msg}})
}

// writeJobError emits a JobError's envelope with its HTTP status, plus a
// Retry-After header when the rejection carries a capacity estimate.
func writeJobError(w http.ResponseWriter, je *JobError) {
	if je.RetryAfter > 0 {
		secs := int(je.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, je.Status, map[string]any{"error": je.JSON})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad JSON: "+err.Error())
		return
	}
	req.Forwarded = r.Header.Get(ForwardedHeader) != ""
	st, err := s.Submit(&req)
	if err != nil {
		writeJobError(w, toJobError(err))
		return
	}
	code := http.StatusAccepted
	if st.State == StateDone || st.State == StateFailed {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleStatus reports one job; ?wait=10s long-polls until the job reaches
// a terminal state or the wait expires (capped at 60s), which is how
// clients "stream" status without a busy loop.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "unknown job")
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrCodeBadRequest, "bad wait duration: "+err.Error())
			return
		}
		if wait > time.Minute {
			wait = time.Minute
		}
		select {
		case <-j.done:
		case <-time.After(wait):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleResult returns the completed result (200), the job's progress (202
// while not terminal), or the stable error envelope — 422 for wedges and
// functional check failures, 500 for server-side faults and crash-looped
// jobs whose retry budget ran out, 504 for jobs shed in the queue.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, ErrCodeNotFound, "unknown job")
		return
	}
	select {
	case <-j.done:
	default:
		writeJSON(w, http.StatusAccepted, s.status(j))
		return
	}
	if j.err != nil {
		writeJobError(w, j.err)
		return
	}
	writeJSON(w, http.StatusOK, EncodeResult(j.key, j.res))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]*JobStatus, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j != nil {
			out = append(out, s.status(j))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleBenches(w http.ResponseWriter, r *http.Request) {
	type benchInfo struct {
		Name  string `json:"name"`
		Class string `json:"class"`
		Desc  string `json:"desc"`
	}
	var out []benchInfo
	for _, n := range workloads.Names() {
		b, _ := workloads.Get(n)
		out = append(out, benchInfo{Name: n, Class: b.Class, Desc: b.Desc})
	}
	writeJSON(w, http.StatusOK, map[string]any{"benches": out})
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"configs": sim.Names()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.mu.Lock()
	poisoned := len(s.poison)
	s.mu.Unlock()
	s.m.render(w, s.store.Status(), poisoned)
	// Backend gauges (workers.alive → tarserved_workers_alive, ...) ride
	// the same exposition so one scrape sees the whole service.
	for _, g := range s.backend.Registry().Gauges() {
		name := "tarserved_" + strings.ReplaceAll(g.Name, ".", "_")
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, g.Help, name, name, g.Read(0))
	}
}

// handleHealthz reports liveness plus the execution backend's health
// (backend kind, live worker count, queue depth), the result store's
// status block (tier, entry counts, disk bytes, warm-start and quarantine
// counters) and the overload counters (sheds, deadline expiries, poisoned
// confhashes). The status degrades to 503 while draining and when the
// backend has no live workers — a fleet whose every worker is
// crash-looping must fail its health check rather than accept jobs it
// cannot run.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	poisoned := len(s.poison)
	s.mu.Unlock()
	s.m.mu.Lock()
	shed := map[string]uint64{
		"queue_full":        s.m.shedQueueFull,
		"deadline_exceeded": s.m.shedDeadline,
		"poisoned":          s.m.poisonShed,
	}
	s.m.mu.Unlock()
	alive := s.backend.Alive()
	body := map[string]any{
		"status":        "ok",
		"backend":       s.backend.Kind(),
		"workers_alive": alive,
		"queue_depth":   len(s.queue),
		"store":         s.store.Status(),
		"shed":          shed,
		"poisoned":      poisoned,
	}
	if s.opts.NodeID != "" {
		node := map[string]any{"node_id": s.opts.NodeID}
		if s.opts.ClusterInfo != nil {
			gen, peers := s.opts.ClusterInfo()
			node["ring_generation"] = gen
			node["peers"] = peers
		}
		body["node"] = node
	}
	code := http.StatusOK
	switch {
	case draining:
		body["status"] = "draining"
		code = http.StatusServiceUnavailable
	case alive == 0:
		body["status"] = "degraded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
