package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Job states. A job is terminal in StateDone or StateFailed; everything
// else is still moving through the queue/worker pipeline.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// SubmitRequest is the POST /v1/jobs body: one experiment, described with
// exactly the vocabulary of the CLI tools (tarsim flags map 1:1 onto these
// fields). The zero value of every optional field means "the default the
// CLI would use".
type SubmitRequest struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	// Scale is test, bench or full (default bench).
	Scale string `json:"scale,omitempty"`
	// NoPump disables stride-1 double-bandwidth mode (Figure 9 ablation).
	NoPump bool `json:"nopump,omitempty"`
	// Check runs the cell under the microarchitectural invariant checker.
	Check bool `json:"check,omitempty"`
	// DeadlineMs caps the simulation's wall-clock time; 0 inherits the
	// server default, and values above the server maximum are clamped.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// Watchdog overrides the no-retirement-progress window in cycles.
	Watchdog uint64 `json:"watchdog,omitempty"`
	// FaultSeed arms a deterministic fault campaign (0 = off);
	// FaultCampaign selects it: "jitter" (default) or "storm".
	FaultSeed     int64  `json:"fault_seed,omitempty"`
	FaultCampaign string `json:"fault_campaign,omitempty"`
}

// buildConfig validates the request and assembles the decorated machine
// configuration plus the parsed scale. Validation failures are client
// errors (HTTP 400).
func (s *Server) buildConfig(req *SubmitRequest) (*sim.Config, workloads.Scale, error) {
	if req.Bench == "" {
		return nil, 0, errors.New("missing bench")
	}
	if _, err := workloads.Get(req.Bench); err != nil {
		return nil, 0, err
	}
	cfg := sim.ByName(req.Config)
	if cfg == nil {
		return nil, 0, fmt.Errorf("unknown config %q (have %v)", req.Config, sim.Names())
	}
	scaleStr := req.Scale
	if scaleStr == "" {
		scaleStr = "bench"
	}
	scale, err := workloads.ParseScale(scaleStr)
	if err != nil {
		return nil, 0, err
	}
	if req.NoPump {
		cfg = sim.NoPump(cfg)
	}
	cc := *cfg
	cc.Check = req.Check
	cc.Watchdog = req.Watchdog
	if s.opts.SampleEvery > 0 {
		// Server-side observability knob; lives outside the confhash
		// identity so sampled and unsampled runs share a content key.
		cc.EnableSampling(s.opts.SampleEvery, s.opts.SampleCap)
	}
	cc.Deadline = s.opts.DefaultDeadline
	if req.DeadlineMs > 0 {
		cc.Deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if max := s.opts.MaxDeadline; max > 0 && (cc.Deadline == 0 || cc.Deadline > max) {
		cc.Deadline = max
	}
	if req.FaultSeed != 0 {
		switch req.FaultCampaign {
		case "", "jitter":
			cc.Faults = faults.Jitter(req.FaultSeed)
		case "storm":
			cc.Faults = faults.Storm(req.FaultSeed, 0)
		default:
			return nil, 0, fmt.Errorf("unknown fault campaign %q (want jitter or storm)", req.FaultCampaign)
		}
	}
	return &cc, scale, nil
}

// job is the server-side record of one submission. Fields are guarded by
// the server mutex until the job reaches a terminal state (done is closed),
// after which they are immutable.
type job struct {
	id        string
	key       string
	bench     string
	config    string
	scaleStr  string
	cacheHit  bool
	submitted time.Time
	state     string
	res       *workloads.Result
	err       error
	elapsed   time.Duration
	done      chan struct{}
}

// flight is one in-flight simulation: the single execution N deduplicated
// jobs are waiting on.
type flight struct {
	key   string
	bench string
	cfg   *sim.Config
	scale workloads.Scale
	jobs  []*job
}

// JobStatus is the wire form of a job, returned by the submit and poll
// endpoints.
type JobStatus struct {
	ID        string     `json:"id"`
	Key       string     `json:"key"`
	Bench     string     `json:"bench"`
	Config    string     `json:"config"`
	Scale     string     `json:"scale"`
	State     string     `json:"state"`
	CacheHit  bool       `json:"cache_hit"`
	ElapsedMs int64      `json:"elapsed_ms,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Error     *ErrorJSON `json:"error,omitempty"`
}

// ErrorJSON is the structured failure attached to a failed job. Kind
// "wedge" carries the full *sim.WedgeError diagnostics and maps to HTTP
// 422 (the experiment is well-formed but cannot complete — a watchdog
// trip, a blown deadline, an invariant violation or a dead trace); kind
// "check" is a functional miscompare (also 422); kind "internal" is a
// server-side fault (500).
type ErrorJSON struct {
	Kind      string `json:"kind"`
	Message   string `json:"message"`
	Reason    string `json:"reason,omitempty"`
	Config    string `json:"config,omitempty"`
	Cycle     uint64 `json:"cycle,omitempty"`
	Retired   uint64 `json:"retired,omitempty"`
	Occupancy string `json:"occupancy,omitempty"`
}

// encodeError maps a job failure onto the wire form plus its HTTP status.
func encodeError(err error) (*ErrorJSON, int) {
	var w *sim.WedgeError
	if errors.As(err, &w) {
		return &ErrorJSON{
			Kind:      "wedge",
			Message:   err.Error(),
			Reason:    w.Reason,
			Config:    w.Config,
			Cycle:     w.Cycle,
			Retired:   w.Retired,
			Occupancy: w.Occ.String(),
		}, 422
	}
	var p panicError
	if errors.As(err, &p) {
		return &ErrorJSON{Kind: "internal", Message: err.Error()}, 500
	}
	// Anything else from the workload harness is a functional check
	// failure: the simulation ran but computed the wrong answer.
	return &ErrorJSON{Kind: "check", Message: err.Error()}, 422
}

// panicError wraps a recovered worker panic so it maps to kind "internal".
type panicError struct{ v any }

func (p panicError) Error() string { return fmt.Sprintf("worker panicked: %v", p.v) }
