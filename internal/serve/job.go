package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/confhash"
	"repro/internal/dse"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Job states. A job is terminal in StateDone or StateFailed; everything
// else is still moving through the queue/worker pipeline.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// SubmitRequest is the POST /v1/jobs body: one experiment, described with
// exactly the vocabulary of the CLI tools (tarsim flags map 1:1 onto these
// fields). The zero value of every optional field means "the default the
// CLI would use".
type SubmitRequest struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	// Scale is test, bench or full (default bench).
	Scale string `json:"scale,omitempty"`
	// NoPump disables stride-1 double-bandwidth mode (Figure 9 ablation).
	NoPump bool `json:"nopump,omitempty"`
	// Check runs the cell under the microarchitectural invariant checker.
	Check bool `json:"check,omitempty"`
	// DeadlineMs caps the simulation's wall-clock time; 0 inherits the
	// server default, and values above the server maximum are clamped.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// QueueWaitMs caps how long this job may wait for a worker before being
	// shed with code "deadline_exceeded"; 0 inherits the server's queue-wait
	// bound, and values above it are clamped. The request's deadline thus
	// propagates through the queue: a job that cannot start in time is shed
	// without ever occupying a worker.
	QueueWaitMs int64 `json:"queue_wait_ms,omitempty"`
	// Watchdog overrides the no-retirement-progress window in cycles.
	Watchdog uint64 `json:"watchdog,omitempty"`
	// FaultSeed arms a deterministic fault campaign (0 = off);
	// FaultCampaign selects it: "jitter" (default) or "storm".
	FaultSeed     int64  `json:"fault_seed,omitempty"`
	FaultCampaign string `json:"fault_campaign,omitempty"`
	// Knobs perturbs the named config along the design-space-exploration
	// axes (lanes, l2_kb, zbox_ports, clock_ghz, pump, phys_vregs) before
	// simulation. Unknown names or out-of-range values are bad_request.
	Knobs map[string]float64 `json:"knobs,omitempty"`

	// Forwarded marks a request that arrived with the cluster forward
	// marker (ForwardedHeader): a peer routed it here deliberately, so this
	// node must execute it locally rather than forward it again. Set from
	// the header by the HTTP layer, never from the request body.
	Forwarded bool `json:"-"`
}

// JobSpec is the fully-resolved description of one simulation: a
// SubmitRequest after server-side defaulting (deadline resolution and
// clamping, observability knobs). It is the unit of work a Backend
// executes and the exact JSON a subprocess worker receives on stdin, so
// the same spec reproduces the same simulation — and the same JobResult
// bytes — no matter which process runs it.
type JobSpec struct {
	Bench  string `json:"bench"`
	Config string `json:"config"`
	Scale  string `json:"scale"`
	NoPump bool   `json:"nopump,omitempty"`
	Check  bool   `json:"check,omitempty"`
	// DeadlineMs is the resolved wall-clock budget (server default applied,
	// request override clamped). Zero disables the deadline.
	DeadlineMs    int64  `json:"deadline_ms,omitempty"`
	Watchdog      uint64 `json:"watchdog,omitempty"`
	FaultSeed     int64  `json:"fault_seed,omitempty"`
	FaultCampaign string `json:"fault_campaign,omitempty"`
	// Knobs are the design-space-exploration perturbations applied to the
	// named config inside Build — in the worker subprocess too, so a swept
	// point simulates identically on every backend. (Go's canonical map
	// marshalling keeps the wire encoding deterministic.)
	Knobs map[string]float64 `json:"knobs,omitempty"`
	// SampleEvery/SampleCap arm the cycle-interval sampler. They live
	// outside the confhash identity (observation, not configuration), so
	// they ride in the spec rather than the sim.Config hash.
	SampleEvery uint64 `json:"sample_every,omitempty"`
	SampleCap   int    `json:"sample_cap,omitempty"`

	// Route is the cluster placement key (RouteKey of the originating
	// request): the identity the consistent-hash ring places, computed
	// without any server-local defaults so every node and router agrees on
	// the owner. Empty outside cluster mode. Never serialized — placement
	// is a routing concern, not part of the execution protocol.
	Route string `json:"-"`
	// NoForward pins the spec to this node: it arrived with the forward
	// marker (a peer routed or hedged it here), so forwarding it again
	// would loop. Never serialized.
	NoForward bool `json:"-"`
}

// CellKey is the sweep-cell vocabulary ("bench@config") shared with the
// fault harness's Targets selection.
func (sp *JobSpec) CellKey() string { return sp.Bench + "@" + sp.Config }

// Build validates the spec and assembles the decorated machine
// configuration plus the parsed scale. Both backends call it — the
// in-process pool directly, the subprocess fleet inside the tarworker
// binary — so a spec resolves to identical simulation inputs everywhere.
func (sp *JobSpec) Build() (*sim.Config, workloads.Scale, error) {
	if sp.Bench == "" {
		return nil, 0, errors.New("missing bench")
	}
	if _, err := workloads.Get(sp.Bench); err != nil {
		return nil, 0, err
	}
	cfg := sim.ByName(sp.Config)
	if cfg == nil {
		return nil, 0, fmt.Errorf("unknown config %q (have %v)", sp.Config, sim.Names())
	}
	scaleStr := sp.Scale
	if scaleStr == "" {
		scaleStr = "bench"
	}
	scale, err := workloads.ParseScale(scaleStr)
	if err != nil {
		return nil, 0, err
	}
	if sp.NoPump {
		cfg = sim.NoPump(cfg)
	}
	cc := *cfg
	if len(sp.Knobs) > 0 {
		if err := dse.Apply(&cc, sp.Knobs); err != nil {
			return nil, 0, err
		}
	}
	cc.Check = sp.Check
	cc.Watchdog = sp.Watchdog
	if sp.SampleEvery > 0 {
		cc.EnableSampling(sp.SampleEvery, sp.SampleCap)
	}
	cc.Deadline = time.Duration(sp.DeadlineMs) * time.Millisecond
	if sp.FaultSeed != 0 {
		switch sp.FaultCampaign {
		case "", "jitter":
			cc.Faults = faults.Jitter(sp.FaultSeed)
		case "storm":
			cc.Faults = faults.Storm(sp.FaultSeed, 0)
		default:
			return nil, 0, fmt.Errorf("unknown fault campaign %q (want jitter or storm)", sp.FaultCampaign)
		}
	}
	return &cc, scale, nil
}

// SpecDefaults are the server-side knobs folded into a request when it is
// resolved into a JobSpec: deadline defaulting and clamping, plus the
// observability sampler. The zero value applies nothing — the resolution a
// cluster router uses for placement, so every node computes the same
// identity for the same request bytes.
type SpecDefaults struct {
	// DefaultDeadline is applied when the request sets no deadline_ms;
	// MaxDeadline clamps what a request may ask for. Zero disables each.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// SampleEvery/SampleCap arm the cycle-interval sampler on the resolved
	// spec (outside the confhash identity).
	SampleEvery uint64
	SampleCap   int
}

// BuildSpec is the single request→spec build path: it resolves a
// SubmitRequest against the given defaults and validates it by assembling
// the decorated machine configuration plus the parsed scale. Every
// consumer goes through here — the HTTP server (via its own defaults), the
// cluster router (via zero defaults, for placement), and both execution
// backends (via JobSpec.Build on the resolved spec) — so one request
// resolves to identical simulation inputs everywhere.
func BuildSpec(req *SubmitRequest, d SpecDefaults) (*JobSpec, *sim.Config, workloads.Scale, error) {
	sp := &JobSpec{
		Bench:         req.Bench,
		Config:        req.Config,
		Scale:         req.Scale,
		NoPump:        req.NoPump,
		Check:         req.Check,
		Watchdog:      req.Watchdog,
		FaultSeed:     req.FaultSeed,
		FaultCampaign: req.FaultCampaign,
		Knobs:         req.Knobs,
	}
	if sp.Scale == "" {
		sp.Scale = "bench"
	}
	deadline := d.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if max := d.MaxDeadline; max > 0 && (deadline == 0 || deadline > max) {
		deadline = max
	}
	sp.DeadlineMs = deadline.Milliseconds()
	if d.SampleEvery > 0 {
		// Server-side observability knob; lives outside the confhash
		// identity so sampled and unsampled runs share a content key.
		sp.SampleEvery = d.SampleEvery
		sp.SampleCap = d.SampleCap
	}
	cfg, scale, err := sp.Build()
	if err != nil {
		return nil, nil, 0, err
	}
	return sp, cfg, scale, nil
}

// RouteKey is a request's cluster placement identity: its confhash when
// resolved with zero server defaults. Ring placement must be a pure
// function of the request bytes — two nodes with different deadline or
// sampling settings still agree on the owner — while the execution-time
// content key (defaults applied) keeps governing caching and dedup.
func RouteKey(req *SubmitRequest) (string, error) {
	sp, cfg, scale, err := BuildSpec(req, SpecDefaults{})
	if err != nil {
		return "", err
	}
	return confhash.Key(sp.Bench, scale.String(), cfg), nil
}

// resolveSpec turns a request into the fully-resolved JobSpec (server
// defaults applied) plus its built configuration and scale, decorating it
// with the cluster routing fields when this server is part of a ring.
// Validation failures are client errors (HTTP 400).
func (s *Server) resolveSpec(req *SubmitRequest) (*JobSpec, *sim.Config, workloads.Scale, error) {
	sp, cfg, scale, err := BuildSpec(req, SpecDefaults{
		DefaultDeadline: s.opts.DefaultDeadline,
		MaxDeadline:     s.opts.MaxDeadline,
		SampleEvery:     s.opts.SampleEvery,
		SampleCap:       s.opts.SampleCap,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	sp.NoForward = req.Forwarded
	if s.opts.Router != nil && !req.Forwarded {
		route, err := RouteKey(req)
		if err != nil {
			return nil, nil, 0, err
		}
		sp.Route = route
	}
	return sp, cfg, scale, nil
}

// job is the server-side record of one submission. Fields are guarded by
// the server mutex until the job reaches a terminal state (done is closed),
// after which they are immutable.
type job struct {
	id        string
	key       string
	bench     string
	config    string
	scaleStr  string
	cacheHit  bool
	submitted time.Time
	state     string
	res       *workloads.Result
	err       *JobError
	elapsed   time.Duration
	done      chan struct{}
}

// flight is one in-flight simulation: the single execution N deduplicated
// jobs are waiting on. deadline (when set) bounds its queue wait — the shed
// janitor and the dequeuing worker both honor it; started/shed are the
// handshake that makes shedding and execution mutually exclusive (guarded
// by the server mutex).
type flight struct {
	key      string
	spec     *JobSpec
	jobs     []*job
	deadline time.Time
	started  bool
	shed     bool
}

// JobStatus is the wire form of a job, returned by the submit and poll
// endpoints.
type JobStatus struct {
	ID        string     `json:"id"`
	Key       string     `json:"key"`
	Bench     string     `json:"bench"`
	Config    string     `json:"config"`
	Scale     string     `json:"scale"`
	State     string     `json:"state"`
	CacheHit  bool       `json:"cache_hit"`
	ElapsedMs int64      `json:"elapsed_ms,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	Error     *ErrorJSON `json:"error,omitempty"`
}

// Error codes of the stable /v1 error envelope. Every error body any /v1
// endpoint writes is {"error":{"code","message",...}} with code drawn from
// this set; clients switch on the code, never on the message text.
const (
	// ErrCodeBadRequest: the request itself is malformed (unknown bench,
	// config, scale or campaign; bad JSON). HTTP 400.
	ErrCodeBadRequest = "bad_request"
	// ErrCodeNotFound: no such job id. HTTP 404.
	ErrCodeNotFound = "not_found"
	// ErrCodeDraining: the server is shutting down and refuses new work.
	// HTTP 503.
	ErrCodeDraining = "draining"
	// ErrCodeQueueFull: the intake queue is at capacity, or the admission
	// controller estimates the queue wait would blow the job's deadline
	// anyway. HTTP 503 with a Retry-After header. Retry later — the
	// experiment itself is fine.
	ErrCodeQueueFull = "queue_full"
	// ErrCodeDeadlineExceeded: the job's deadline expired while it was
	// still queued; it was shed without occupying a worker. HTTP 504.
	ErrCodeDeadlineExceeded = "deadline_exceeded"
	// ErrCodeWedge: the experiment is well-formed but cannot complete — a
	// watchdog trip, a blown deadline, an invariant violation or a dead
	// trace. Carries the full WedgeError diagnostics. HTTP 422.
	ErrCodeWedge = "wedge"
	// ErrCodeCheckFailed: the simulation ran to completion but computed a
	// functionally wrong answer. HTTP 422.
	ErrCodeCheckFailed = "check_failed"
	// ErrCodeInternal: a server-side fault (recovered panic, protocol
	// corruption). HTTP 500.
	ErrCodeInternal = "internal"
	// ErrCodeWorkerCrash: a subprocess worker died mid-job and the retry
	// budget is exhausted. HTTP 500.
	ErrCodeWorkerCrash = "worker_crash"
	// ErrCodePeerUnreachable: cluster mode only — every node that could own
	// the experiment was unreachable, so the request could not be routed.
	// Retryable; the experiment itself is fine. HTTP 502.
	ErrCodePeerUnreachable = "peer_unreachable"
)

// ErrorCodeStatus is the closed /v1 error-code set and each code's HTTP
// status — the single source of truth the documentation table in DESIGN.md
// is asserted against, and the map cluster components use to reconstruct a
// JobError from a peer's wire envelope.
var ErrorCodeStatus = map[string]int{
	ErrCodeBadRequest:       400,
	ErrCodeNotFound:         404,
	ErrCodeDraining:         503,
	ErrCodeQueueFull:        503,
	ErrCodeDeadlineExceeded: 504,
	ErrCodeWedge:            422,
	ErrCodeCheckFailed:      422,
	ErrCodeInternal:         500,
	ErrCodeWorkerCrash:      500,
	ErrCodePeerUnreachable:  502,
}

// ErrorJSON is the stable /v1 error envelope body. Code is always present;
// Confhash identifies the experiment for errors attached to a resolved
// job; the remaining fields carry WedgeError diagnostics for code "wedge"
// and the execution count for code "worker_crash".
type ErrorJSON struct {
	Code     string `json:"code"`
	Message  string `json:"message"`
	Confhash string `json:"confhash,omitempty"`

	Reason    string `json:"reason,omitempty"`
	Config    string `json:"config,omitempty"`
	Cycle     uint64 `json:"cycle,omitempty"`
	Retired   uint64 `json:"retired,omitempty"`
	Occupancy string `json:"occupancy,omitempty"`

	// Attempts is how many times a job was executed before the server gave
	// up (code "worker_crash" only).
	Attempts int `json:"attempts,omitempty"`
}

// JobError is the normalized failure of one job execution: the stable wire
// envelope plus its HTTP status. Every backend converts failures into this
// form at the source — the in-process pool via toJobError, the subprocess
// fleet inside the worker binary — so error bodies are byte-identical
// across backends for the same deterministic failure.
type JobError struct {
	Status int
	JSON   ErrorJSON
	// RetryAfter, when positive, becomes the HTTP Retry-After header on the
	// rejection response (code "queue_full"): the admission controller's
	// estimate of when capacity frees up. Not part of the JSON envelope.
	RetryAfter time.Duration
}

func (e *JobError) Error() string { return e.JSON.Message }

// toJobError maps a native execution failure onto the envelope plus its
// HTTP status: wedges and functional miscompares are diagnosed experiment
// outcomes (422), recovered panics are server faults (500).
func toJobError(err error) *JobError {
	var je *JobError
	if errors.As(err, &je) {
		return je
	}
	var w *sim.WedgeError
	if errors.As(err, &w) {
		return &JobError{
			Status: 422,
			JSON: ErrorJSON{
				Code:      ErrCodeWedge,
				Message:   err.Error(),
				Reason:    w.Reason,
				Config:    w.Config,
				Cycle:     w.Cycle,
				Retired:   w.Retired,
				Occupancy: w.Occ.String(),
			},
		}
	}
	var p panicError
	if errors.As(err, &p) {
		return &JobError{Status: 500, JSON: ErrorJSON{Code: ErrCodeInternal, Message: err.Error()}}
	}
	// Anything else from the workload harness is a functional check
	// failure: the simulation ran but computed the wrong answer.
	return &JobError{Status: 422, JSON: ErrorJSON{Code: ErrCodeCheckFailed, Message: err.Error()}}
}

// panicError wraps a recovered worker panic so it maps to code "internal".
type panicError struct{ v any }

func (p panicError) Error() string { return fmt.Sprintf("worker panicked: %v", p.v) }
