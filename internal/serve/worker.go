package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/confhash"
	"repro/internal/workloads"
)

// Worker wire protocol (cmd/tarworker ↔ SubprocessBackend), newline-delimited
// JSON over the worker's stdin/stdout:
//
//	supervisor → worker:  one JobSpec, then stdin is closed
//	worker → supervisor:  workerHello as soon as the spec is accepted
//	worker → supervisor:  workerReply when the simulation finishes, then exit
//
// A worker runs exactly one job and exits. Crash isolation falls out of the
// process boundary: if the reply line never arrives, the supervisor knows
// the worker died mid-simulation and retries the job elsewhere.

// workerHello is the worker's first output line: the spec parsed, the
// simulation about to start. It carries the worker's schema so a skewed
// binary pairing (old tarworker next to a new tarserved) fails loudly
// before any simulation time is spent.
type workerHello struct {
	Event  string `json:"event"` // always "start"
	Schema int    `json:"schema"`
	Pid    int    `json:"pid"`
}

// workerReply is the worker's final output line. Exactly one of Result and
// Error is set; Status is the HTTP status the error maps to (the worker
// classifies its own failures so the envelope is byte-identical to the
// in-process backend's).
type workerReply struct {
	OK     bool       `json:"ok"`
	Result *JobResult `json:"result,omitempty"`
	Status int        `json:"status,omitempty"`
	Error  *ErrorJSON `json:"error,omitempty"`
}

// WorkerMain is the entire body of cmd/tarworker: read one JobSpec from r,
// run it, write the hello and reply lines to w, return the process exit
// code. Exit 0 covers handled simulation failures too (the reply line
// carries the envelope); a non-zero exit means the protocol itself broke.
func WorkerMain(r io.Reader, w io.Writer) int {
	return workerRun(r, w, nil)
}

// workerRun is WorkerMain with a test seam: afterStart (when non-nil) runs
// between the hello line and the simulation, giving tests a deterministic
// window in which the worker is visibly busy.
func workerRun(r io.Reader, w io.Writer, afterStart func()) int {
	out := bufio.NewWriter(w)
	defer out.Flush()
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := out.Write(b); err != nil {
			return err
		}
		return out.Flush()
	}

	var spec JobSpec
	if err := json.NewDecoder(r).Decode(&spec); err != nil {
		fmt.Fprintln(os.Stderr, "tarworker: bad job spec:", err)
		return 2
	}
	if err := emit(workerHello{Event: "start", Schema: SchemaVersion, Pid: os.Getpid()}); err != nil {
		fmt.Fprintln(os.Stderr, "tarworker:", err)
		return 2
	}
	if afterStart != nil {
		afterStart()
	}

	res, runErr := workerExecute(&spec)
	if runErr != nil {
		je := toJobError(runErr)
		if emitErr := emit(workerReply{OK: false, Status: je.Status, Error: &je.JSON}); emitErr != nil {
			fmt.Fprintln(os.Stderr, "tarworker:", emitErr)
			return 2
		}
		return 0
	}
	cfg, scale, _ := spec.Build() // already validated by workerExecute
	key := confhash.Key(spec.Bench, scale.String(), cfg)
	if err := emit(workerReply{OK: true, Result: EncodeResult(key, res)}); err != nil {
		fmt.Fprintln(os.Stderr, "tarworker:", err)
		return 2
	}
	return 0
}

// workerExecute builds and runs the spec with panic recovery, classifying
// failures exactly as the in-process backend does.
func workerExecute(spec *JobSpec) (res *workloads.Result, err error) {
	cfg, scale, buildErr := spec.Build()
	if buildErr != nil {
		return nil, &JobError{Status: 400, JSON: ErrorJSON{Code: ErrCodeBadRequest, Message: buildErr.Error()}}
	}
	b, getErr := workloads.Get(spec.Bench)
	if getErr != nil {
		return nil, &JobError{Status: 400, JSON: ErrorJSON{Code: ErrCodeBadRequest, Message: getErr.Error()}}
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, panicError{p}
		}
	}()
	return b.Run(cfg, scale)
}

// DecodeResult reconstructs a workloads.Result from its wire form — the
// exported face of resultFromWire, used by the cluster forwarder to turn a
// peer's artifact back into a local result with the byte-equality contract
// intact.
func DecodeResult(jr *JobResult) (*workloads.Result, error) { return resultFromWire(jr) }

// resultFromWire reconstructs a workloads.Result from a worker's JobResult.
// Only the fields EncodeResult reads are rebuilt; because stats counters are
// integers and series samples round-trip exactly through JSON, re-encoding
// the reconstruction yields bytes identical to the worker's own encoding —
// which is what keeps the cross-backend byte-equality contract honest.
func resultFromWire(jr *JobResult) (*workloads.Result, error) {
	scale, err := workloads.ParseScale(jr.Scale)
	if err != nil {
		return nil, fmt.Errorf("worker result carries bad scale %q: %w", jr.Scale, err)
	}
	if jr.Stats == nil {
		return nil, fmt.Errorf("worker result for %s@%s carries no stats", jr.Bench, jr.Config)
	}
	return &workloads.Result{
		Bench:     jr.Bench,
		Config:    jr.Config,
		Scale:     scale,
		Stats:     jr.Stats,
		Series:    jr.Series,
		SimCycles: jr.SimCycles,
		WallNs:    jr.SimWallNs,
	}, nil
}
