package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/confhash"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// fakeResult builds a plausible completed Result without running the
// simulator.
func fakeResult(bench, config string) *workloads.Result {
	return &workloads.Result{
		Bench:  bench,
		Config: config,
		Scale:  workloads.Test,
		Stats:  &stats.Stats{Cycles: 1000, Flops: 512, MemOps: 256, OtherOps: 64, ScalarIns: 100, VectorIns: 10, VecOps: 768},
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

func submit(t *testing.T, url string, req SubmitRequest) (JobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response (HTTP %d): %v", resp.StatusCode, err)
	}
	return st, resp.StatusCode
}

func waitDone(t *testing.T, url, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/jobs/" + id + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// metric scrapes one numeric series from /metrics.
func metric(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestCacheDedupConcurrent is the satellite's headline guarantee: N
// concurrent identical submissions cost exactly one simulation, and every
// job still completes with the shared result.
func TestCacheDedupConcurrent(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers: 4,
		Run: func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
			runs.Add(1)
			<-release // hold every early submission in the dedup window
			return fakeResult(bench, cfg.Name), nil
		},
	})

	const N = 16
	var wg sync.WaitGroup
	ids := make([]string, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, code := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"})
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("submit %d: HTTP %d", i, code)
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(release)
	for _, id := range ids {
		st := waitDone(t, ts.URL, id)
		if st.State != StateDone {
			t.Fatalf("job %s: state %s", id, st.State)
		}
		if st.Result == nil || st.Result.Cycles != 1000 {
			t.Fatalf("job %s: bad result %+v", id, st.Result)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d submissions caused %d simulations, want 1", N, got)
	}
	if joined := metric(t, ts.URL, "tarserved_dedup_joined_total"); joined != N-1 {
		t.Errorf("dedup_joined = %v, want %d", joined, N-1)
	}
}

// TestCacheHitOnResubmit checks the content-addressed cache: a resubmission
// of a finished experiment is served without a new run and reports
// cache_hit, while a semantically different request (nopump) misses.
func TestCacheHitOnResubmit(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Options{
		Workers: 2,
		Run: func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
			runs.Add(1)
			return fakeResult(bench, cfg.Name), nil
		},
	})
	st, _ := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"})
	waitDone(t, ts.URL, st.ID)

	st2, code := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"})
	if code != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200", code)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("resubmit: cache_hit=%v state=%s", st2.CacheHit, st2.State)
	}
	if st2.Key != st.Key {
		t.Fatalf("same experiment got different keys %s vs %s", st2.Key, st.Key)
	}
	st3, _ := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test", NoPump: true})
	if st3.CacheHit {
		t.Fatal("nopump variant hit the base config's cache line")
	}
	waitDone(t, ts.URL, st3.ID)
	if got := runs.Load(); got != 2 {
		t.Fatalf("runs = %d, want 2 (base + nopump)", got)
	}
	if hits := metric(t, ts.URL, "tarserved_cache_hits_total"); hits != 1 {
		t.Errorf("cache_hits = %v, want 1", hits)
	}
}

// TestWedgeMapsTo422 is the satellite's error-surface guarantee: a wedged
// simulation becomes a structured 422 with the WedgeError diagnostics, not
// a 500.
func TestWedgeMapsTo422(t *testing.T) {
	wedge := &sim.WedgeError{Config: "T", Reason: sim.ReasonWatchdog, Cycle: 4242, Window: 100, Retired: 7}
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Run: func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
			return nil, fmt.Errorf("%s on %s: %w", bench, cfg.Name, wedge)
		},
	})
	st, _ := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"})
	fin := waitDone(t, ts.URL, st.ID)
	if fin.State != StateFailed || fin.Error == nil || fin.Error.Code != ErrCodeWedge {
		t.Fatalf("status = %+v, want failed/wedge", fin)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 422 {
		t.Fatalf("result endpoint: HTTP %d, want 422", resp.StatusCode)
	}
	var body struct {
		Error ErrorJSON `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != ErrCodeWedge || body.Error.Reason != sim.ReasonWatchdog || body.Error.Cycle != 4242 {
		t.Fatalf("error body = %+v", body.Error)
	}
	if body.Error.Confhash == "" {
		t.Fatal("wedge envelope does not carry the confhash")
	}
	if w := metric(t, ts.URL, "tarserved_jobs_wedged_total"); w != 1 {
		t.Errorf("jobs_wedged = %v, want 1", w)
	}
}

// TestGracefulDrain is the satellite's shutdown guarantee: Drain refuses
// new work with 503 but completes in-flight simulations before returning.
func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers: 1,
		Run: func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
			close(started)
			<-release
			return fakeResult(bench, cfg.Name), nil
		},
	})
	st, _ := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "T", Scale: "test"})
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Give Drain a moment to flip intake off, then verify rejection.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, code := submit(t, ts.URL, SubmitRequest{Bench: "dgemm", Config: "EV8", Scale: "test"})
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions still accepted while draining")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v before the in-flight job finished", err)
	default:
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	fin := waitDone(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("in-flight job state after drain: %s", fin.State)
	}
	resp, _ := http.Get(ts.URL + "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: HTTP %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestBadRequests checks the validation surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Run: func(b string, c *sim.Config, s workloads.Scale) (*workloads.Result, error) {
		return fakeResult(b, c.Name), nil
	}})
	cases := []SubmitRequest{
		{},                               // missing bench
		{Bench: "nope", Config: "T"},     // unknown bench
		{Bench: "dgemm", Config: "EV99"}, // unknown config
		{Bench: "dgemm", Config: "T", Scale: "huge"},                          // unknown scale
		{Bench: "dgemm", Config: "T", FaultSeed: 3, FaultCampaign: "gremlin"}, // unknown campaign
	}
	for i, req := range cases {
		_, code := submit(t, ts.URL, req)
		if code != http.StatusBadRequest {
			t.Errorf("case %d: HTTP %d, want 400", i, code)
		}
	}
	resp, _ := http.Get(ts.URL + "/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestResultBytesMatchCLIEncoding runs one real (tiny) simulation through
// the HTTP path and checks the /result body is byte-identical to what the
// CLI's -json artifact would emit for the same experiment — same encoding
// types, same content key, same stats.
func TestResultBytesMatchCLIEncoding(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1}) // real simulator
	st, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "T", Scale: "test"})
	fin := waitDone(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job failed: %+v", fin.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	apiBytes, _ := io.ReadAll(resp.Body)

	b, err := workloads.Get("streams_copy")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(sim.T(), workloads.Test)
	if err != nil {
		t.Fatal(err)
	}
	key := confhash.Key("streams_copy", "test", sim.T())
	var cli bytes.Buffer
	enc := json.NewEncoder(&cli)
	enc.SetIndent("", "  ")
	if err := enc.Encode(EncodeResult(key, res)); err != nil {
		t.Fatal(err)
	}
	// CompareArtifacts rather than bytes.Equal: the artifacts come from two
	// separate executions, so the host-dependent throughput fields differ by
	// design; everything else must match byte for byte.
	if err := CompareArtifacts(apiBytes, cli.Bytes()); err != nil {
		t.Fatalf("API and CLI artifacts differ: %v\nAPI: %s\nCLI: %s", err, apiBytes, cli.Bytes())
	}
	if !strings.Contains(string(apiBytes), fin.Key) {
		t.Fatal("result body does not carry the content key")
	}
}

// TestLRUEviction bounds the cache.
func TestLRUEviction(t *testing.T) {
	c := newMemStore(2)
	c.Put("a", fakeResult("a", "T"))
	c.Put("b", fakeResult("b", "T"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.Put("c", fakeResult("c", "T")) // evicts b (a was refreshed by get)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past the bound")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently-used a was evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

// TestMetricsQuantiles sanity-checks the latency summary.
func TestMetricsQuantiles(t *testing.T) {
	m := &metrics{}
	for i := 1; i <= 100; i++ {
		m.recordLatency(float64(i) / 100)
	}
	p50, p99, n := m.quantiles()
	if n != 100 {
		t.Fatalf("count %d", n)
	}
	if p50 < 0.45 || p50 > 0.55 {
		t.Errorf("p50 = %v", p50)
	}
	if p99 < 0.95 || p99 > 1.0 {
		t.Errorf("p99 = %v", p99)
	}
	var buf bytes.Buffer
	m.render(&buf, StoreStatus{Tier: "mem", MemEntries: 3}, 0)
	for _, want := range []string{"tarserved_job_latency_seconds{quantile=\"0.5\"}", "tarserved_cache_entries 3"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestCompareArtifactsSchemaSkew is the schema-versioning guarantee: the
// byte-equality check between CLI and API artifacts fails loudly — naming
// both versions — when the encodings skew, instead of producing a
// misleading byte diff.
func TestCompareArtifactsSchemaSkew(t *testing.T) {
	res := fakeResult("dgemm", "T")
	good, err := json.Marshal(EncodeResult("cell-1", res))
	if err != nil {
		t.Fatal(err)
	}
	var dec JobResult
	if err := json.Unmarshal(good, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Schema != SchemaVersion {
		t.Fatalf("EncodeResult stamped schema %d, want %d", dec.Schema, SchemaVersion)
	}
	if err := CompareArtifacts(good, good); err != nil {
		t.Fatalf("identical artifacts: %v", err)
	}

	// Same experiment serialized by an older build: only the stamp differs.
	stamp := []byte(fmt.Sprintf(`"schema":%d`, SchemaVersion))
	old := bytes.Replace(good, stamp, []byte(`"schema":1`), 1)
	if bytes.Equal(old, good) {
		t.Fatal("test bug: schema stamp not rewritten")
	}
	err = CompareArtifacts(good, old)
	if err == nil {
		t.Fatal("schema skew not detected")
	}
	for _, want := range []string{"schema skew", fmt.Sprintf("schema %d", SchemaVersion), "schema 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("skew error %q does not mention %q", err, want)
		}
	}

	// A pre-versioning artifact has no stamp at all: that decodes as
	// schema 0 and must also skew, not byte-diff.
	legacy := bytes.Replace(good, append(stamp, ','), nil, 1)
	if err := CompareArtifacts(good, legacy); err == nil || !strings.Contains(err.Error(), "schema skew") {
		t.Fatalf("unversioned artifact: err = %v, want schema skew", err)
	}

	// Same schema, different content: a plain mismatch, not a skew.
	other, _ := json.Marshal(EncodeResult("cell-2", res))
	if err := CompareArtifacts(good, other); err == nil || strings.Contains(err.Error(), "skew") {
		t.Fatalf("content mismatch: err = %v, want plain difference", err)
	}

	if err := CompareArtifacts([]byte("not json"), good); err == nil {
		t.Fatal("garbage artifact accepted")
	}
}

// TestSampledServerCarriesSeries runs a real (tiny) simulation on a server
// with the sampler armed: the result carries the cycle-interval series, the
// content key is unchanged by the sampling knob, and /metrics exposes the
// labeled per-experiment summary with a cache-hit count that moves on
// resubmission.
func TestSampledServerCarriesSeries(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, SampleEvery: 200}) // real simulator
	st, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "T", Scale: "test"})
	fin := waitDone(t, ts.URL, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job failed: %+v", fin.Error)
	}
	if fin.Key != confhash.Key("streams_copy", "test", sim.T()) {
		t.Fatalf("sampling knob changed the content key: %s", fin.Key)
	}
	if fin.Result == nil || fin.Result.Series == nil || len(fin.Result.Series.Points) == 0 {
		t.Fatalf("sampled run returned no series: %+v", fin.Result)
	}
	if fin.Result.Series.Every != 200 {
		t.Fatalf("series period %d, want 200", fin.Result.Series.Every)
	}

	st2, _ := submit(t, ts.URL, SubmitRequest{Bench: "streams_copy", Config: "T", Scale: "test"})
	if !st2.CacheHit {
		t.Fatal("resubmission missed the cache")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	labels := fmt.Sprintf(`{key=%q,bench="streams_copy",config="T"}`, fin.Key)
	for _, name := range []string{
		"tarserved_experiment_cycles", "tarserved_experiment_ipc",
		"tarserved_experiment_sample_points", "tarserved_experiment_cache_hits",
	} {
		if !strings.Contains(string(body), name+labels) {
			t.Errorf("/metrics missing %s%s in:\n%s", name, labels, body)
		}
	}
	re := regexp.MustCompile(`(?m)^tarserved_experiment_cache_hits\{[^}]*\} (\d+)$`)
	m := re.FindSubmatch(body)
	if m == nil || string(m[1]) != "1" {
		t.Errorf("experiment cache_hits = %s, want 1", m)
	}
	re = regexp.MustCompile(`(?m)^tarserved_experiment_sample_points\{[^}]*\} (\d+)$`)
	if m := re.FindSubmatch(body); m == nil || string(m[1]) == "0" {
		t.Errorf("experiment sample_points = %s, want > 0", m)
	}
}
