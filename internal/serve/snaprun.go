package serve

import (
	"errors"
	"sync"

	"repro/internal/confhash"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/workloads"
)

// warmupFlight is one in-flight warm-up simulation. The first runner of a
// warm-up key (the leader) simulates the warm-up phase and publishes the
// chip snapshot the moment the boundary is reached — not when its whole
// run finishes — so concurrent runners of the same key fork from the blob
// as soon as it exists instead of each simulating their own warm-up. This
// is what makes an N-point sweep whose points differ only post-warm-up
// cost the warm-up exactly once even when the points run on N workers at
// the same time.
type warmupFlight struct {
	done chan struct{}
	blob []byte // nil when the leader failed before the boundary
}

// snapshotRun wraps the default execution path with warm-up snapshot
// reuse against ss. It is installed as the in-process backend's RunFunc
// when the server's store carries the SnapshotStore face and no test stub
// overrides Run.
//
// Reuse is skipped — falling back to a plain straight run — whenever a
// snapshot could be refused or observable: benchmarks without a warm-up
// phase, fault campaigns (injector state is not serializable), and sampled
// runs (the sample series of a straight run covers the warm-up; a restored
// run's would not, breaking artifact byte-identity). A stored blob that
// fails to restore (corruption past the envelope check, schema or counter
// skew) also falls back; restore failure is always a cache miss, never a
// job failure.
func (s *Server) snapshotRun(ss SnapshotStore) RunFunc {
	var mu sync.Mutex
	flights := make(map[string]*warmupFlight)
	return func(bench string, cfg *sim.Config, scale workloads.Scale) (*workloads.Result, error) {
		b, err := workloads.Get(bench)
		if err != nil {
			return nil, err
		}
		sampleEvery, _ := cfg.Sampling()
		if b.Setup == nil || cfg.Faults != nil || sampleEvery != 0 {
			return b.Run(cfg, scale)
		}
		wkey := confhash.WarmupKey(bench, scale.String(), cfg)
		restored := func(blob []byte) (*workloads.Result, error) {
			res, err := b.RunOpt(cfg, scale, workloads.RunOpts{WarmupSnapshot: blob})
			if err != nil && (errors.Is(err, snapshot.ErrCorrupt) || errors.Is(err, snapshot.ErrSchema)) {
				// The blob could not be restored: miss, simulate straight.
				s.m.mu.Lock()
				s.m.snapMisses++
				s.m.mu.Unlock()
				return b.Run(cfg, scale)
			}
			if err == nil {
				s.m.mu.Lock()
				s.m.snapHits++
				s.m.warmupCyclesSaved += res.WarmupCycles
				s.m.mu.Unlock()
			}
			return res, err
		}
		if blob, ok := ss.GetSnapshot(wkey); ok {
			return restored(blob)
		}
		mu.Lock()
		if f, ok := flights[wkey]; ok {
			mu.Unlock()
			<-f.done
			if f.blob != nil {
				return restored(f.blob)
			}
			// The leader died before the boundary; simulate our own
			// warm-up rather than racing to become the next leader.
			s.m.mu.Lock()
			s.m.snapMisses++
			s.m.mu.Unlock()
			return b.Run(cfg, scale)
		}
		f := &warmupFlight{done: make(chan struct{})}
		flights[wkey] = f
		mu.Unlock()
		published := false
		publish := func(blob []byte) {
			published = true
			f.blob = blob
			close(f.done)
			mu.Lock()
			delete(flights, wkey)
			mu.Unlock()
		}
		// The leader must always publish — a panic or wedge before the
		// boundary would otherwise strand every follower on f.done.
		defer func() {
			if !published {
				publish(nil)
			}
		}()
		res, err := b.RunOpt(cfg, scale, workloads.RunOpts{
			OnWarmupSnapshot: func(_ uint64, blob []byte) {
				ss.PutSnapshot(wkey, blob)
				publish(blob)
			},
		})
		s.m.mu.Lock()
		s.m.snapMisses++
		s.m.mu.Unlock()
		return res, err
	}
}
