package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dse"
	"repro/internal/snapshot"
)

// snapBlob builds a small, valid snapshot-envelope blob (not a full chip
// snapshot — the store only checks the envelope, by design).
func snapBlob(fill string) []byte {
	w := snapshot.NewWriter()
	w.Tag("chip")
	w.String(fill)
	return w.Finish()
}

// TestSweepWarmupSharedOnce is the checkpoint feature's serve-level
// acceptance drill: a 3-point sweep along phys_vregs — a knob that cannot
// affect the warm-up phase — over a benchmark with a warm-up (rndcopy)
// must simulate that warm-up exactly once. The first point captures the
// post-Setup snapshot; the other two fork from it, whether they hit the
// store or join the leader's in-flight warm-up.
func TestSweepWarmupSharedOnce(t *testing.T) {
	// No Run stub: the real simulator runs, so the snapshot-aware path is
	// wired against the default in-memory store.
	_, ts := newTestServer(t, Options{Workers: 4})
	st, code := postSweep(t, ts.URL, dse.Spec{
		Config:  "T",
		Benches: []string{"rndcopy"},
		Scale:   "test",
		Axes: map[string]dse.Axis{
			"phys_vregs": {Values: []float64{64, 96, 128}},
		},
	})
	if code != 200 && code != 202 {
		t.Fatalf("POST /v1/sweeps = HTTP %d", code)
	}
	fin := waitSweepDone(t, ts.URL, st.ID)
	if fin.State != StateDone || fin.Failed != 0 {
		t.Fatalf("sweep finished %s failed=%d: %+v", fin.State, fin.Failed, fin.Error)
	}
	// Baseline (T unmodified) dedups onto the phys_vregs=128 point: three
	// unique configurations, one shared warm-up key.
	if got := metric(t, ts.URL, "tarserved_snapshot_misses_total"); got != 1 {
		t.Errorf("snapshot misses = %v, want 1 (warm-up must simulate exactly once)", got)
	}
	if got := metric(t, ts.URL, "tarserved_snapshot_hits_total"); got != 2 {
		t.Errorf("snapshot hits = %v, want 2", got)
	}
	if got := metric(t, ts.URL, "tarserved_warmup_cycles_saved_total"); got <= 0 {
		t.Errorf("warmup cycles saved = %v, want > 0", got)
	}
}

// snapPath is the snapshot namespace's on-disk layout contract under a
// store rooted at dir.
func snapPath(dir, key string) string {
	return filepath.Join(dir, "snapshots", fmt.Sprintf("schema-%d", snapshot.SchemaVersion), key+".snap")
}

// TestDiskSnapshotRoundTripAndRecovery: snapshots persist through the disk
// store, survive a close/reopen (warm start), and damaged files are
// quarantined at open — never served, never fatal.
func TestDiskSnapshotRoundTripAndRecovery(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := store.(SnapshotStore)
	ss.PutSnapshot("warmkey0", snapBlob("alpha"))
	ss.PutSnapshot("warmkey1", snapBlob("beta"))
	if st := store.Status(); st.SnapEntries != 2 || st.SnapBytes <= 0 {
		t.Fatalf("status after puts: %+v", st)
	}
	store.Close()

	// Damage one snapshot on disk and drop a truncated alien file plus tmp
	// debris next to it before reopening.
	snapDir := filepath.Dir(snapPath(dir, "warmkey1"))
	path := snapPath(dir, "warmkey1")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(snapDir, "short.snap"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(snapDir, ".tmp-debris"), []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	ss2 := store2.(SnapshotStore)
	if blob, ok := ss2.GetSnapshot("warmkey0"); !ok || snapshot.Verify(blob) != nil {
		t.Error("intact snapshot did not survive reopen")
	}
	if _, ok := ss2.GetSnapshot("warmkey1"); ok {
		t.Error("damaged snapshot was served")
	}
	st := store2.Status()
	if st.SnapQuarantined != 2 {
		t.Errorf("quarantined = %d, want 2 (damaged + truncated)", st.SnapQuarantined)
	}
	if st.SnapEntries != 1 {
		t.Errorf("entries after recovery = %d, want 1", st.SnapEntries)
	}
	for _, name := range []string{"warmkey1.snap", "short.snap"} {
		if _, err := os.Stat(filepath.Join(dir, "quarantine", name)); err != nil {
			t.Errorf("%s not in quarantine: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(snapDir, ".tmp-debris")); !os.IsNotExist(err) {
		t.Error("tmp debris survived reopen")
	}
}

// TestDiskSnapshotReadTimeQuarantine: bytes that rot after the open-time
// scan are caught by the per-read verification. The rot lands after a
// reopen, so the fresh memory tier cannot shadow the damaged disk bytes.
func TestDiskSnapshotReadTimeQuarantine(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(dir, 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1.(SnapshotStore).PutSnapshot("warmkey0", snapBlob("gamma"))
	s1.Close()

	s2, err := OpenStore(dir, 16, 0, nil) // open-time scan sees intact bytes
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	path := snapPath(dir, "warmkey0")
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.(SnapshotStore).GetSnapshot("warmkey0"); ok {
		t.Fatal("post-open corruption was served")
	}
	if st := s2.Status(); st.SnapQuarantined != 1 || st.SnapEntries != 0 {
		t.Errorf("status after read-time quarantine: %+v", st)
	}
}

// TestDiskSnapshotRejectsInvalidPut: the store refuses to persist bytes
// that fail envelope verification, and unsafe keys never touch the disk.
func TestDiskSnapshotRejectsInvalidPut(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 16, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ss := store.(SnapshotStore)
	ss.PutSnapshot("badblob0", []byte("not a snapshot"))
	ss.PutSnapshot("../evil", snapBlob("delta"))
	if st := store.Status(); st.SnapEntries != 0 {
		t.Errorf("invalid put was persisted: %+v", st)
	}
}

// TestDiskSnapshotEviction: the snapshot byte cap evicts least-recently-
// accessed snapshots from the disk tier without touching the artifact
// index. (The strict LRA-ordering drill lives in internal/store; here the
// memory tier still holds everything, so the disk-side status and the
// filesystem are the observables.)
func TestDiskSnapshotEviction(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 16, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ss := store.(SnapshotStore)
	ss.PutSnapshot("snapa000", snapBlob("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
	ss.PutSnapshot("snapb000", snapBlob("bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"))
	ss.PutSnapshot("snapc000", snapBlob("cccccccccccccccccccccccccccccccccccccccc"))
	st := store.Status()
	if st.SnapEvicted == 0 {
		t.Fatalf("byte cap did not evict: %+v", st)
	}
	if st.SnapBytes > 200 {
		t.Errorf("snapshot bytes %d exceed the cap", st.SnapBytes)
	}
	if _, err := os.Stat(snapPath(dir, "snapa000")); !os.IsNotExist(err) {
		t.Errorf("coldest snapshot still on disk: %v", err)
	}
}
