package serve

import (
	"bufio"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// DESIGN.md publishes "The closed /v1 error-code set" as a table and
// promises it never drifts from ErrorCodeStatus. This test is that
// promise: it parses the table out of the document and asserts exact
// equality in both directions — every documented code exists in the map
// with the same HTTP status, and every code in the map is documented.
func TestErrorCodeTableMatchesDesignDoc(t *testing.T) {
	f, err := os.Open("../../DESIGN.md")
	if err != nil {
		t.Fatalf("open DESIGN.md: %v", err)
	}
	defer f.Close()

	row := regexp.MustCompile("^\\| `([a-z_]+)` \\| ([0-9]{3}) \\|")
	documented := map[string]int{}
	inSection := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "### The closed /v1 error-code set"):
			inSection = true
		case inSection && (strings.HasPrefix(line, "## ") || strings.HasPrefix(line, "### ")):
			inSection = false
		case inSection:
			if m := row.FindStringSubmatch(line); m != nil {
				status, err := strconv.Atoi(m[2])
				if err != nil {
					t.Fatalf("bad status in row %q: %v", line, err)
				}
				if _, dup := documented[m[1]]; dup {
					t.Errorf("code %q documented twice", m[1])
				}
				documented[m[1]] = status
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(documented) == 0 {
		t.Fatal("found no error-code rows under '### The closed /v1 error-code set' in DESIGN.md")
	}

	for code, status := range documented {
		got, ok := ErrorCodeStatus[code]
		if !ok {
			t.Errorf("DESIGN.md documents code %q which is not in ErrorCodeStatus", code)
			continue
		}
		if got != status {
			t.Errorf("code %q: DESIGN.md says %d, ErrorCodeStatus says %d", code, status, got)
		}
	}
	for code := range ErrorCodeStatus {
		if _, ok := documented[code]; !ok {
			t.Errorf("ErrorCodeStatus has code %q which DESIGN.md does not document", code)
		}
	}
}
