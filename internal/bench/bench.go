// Package bench measures and records simulator throughput: simulated cycles
// per wall-clock second on the Table 4 memory-bandwidth kernels, plus the
// wall clock of the full `tartables -all` sweep. Results are versioned rows
// in results/BENCH_sim.json, so the repository carries its own performance
// trajectory and CI can fail a change that regresses it.
//
// Every kernel is measured twice: once on the default engine and once with
// the chip pinned to the legacy single-stepping loop. The single-step
// number is the stable reference that makes rows comparable across hosts —
// CI machines differ in absolute speed, but the engine-over-single-step
// ratio is a property of the code, so the regression gate compares ratios,
// not raw cycles/sec. The double run doubles as a production bit-identity
// smoke test: both engines must report exactly the same simulated cycle
// count or the row is refused.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tables"
	"repro/internal/workloads"
)

// Schema is the BENCH_sim.json format version.
const Schema = 1

// Kernels is the measured set: the Table 4 bandwidth microkernels, the
// memory-bound workloads whose simulation speed gates every sweep.
var Kernels = []string{
	"streams_copy", "streams_scale", "streams_add", "streams_triadd",
	"rndcopy", "rndmemscale",
}

// KernelResult is one kernel's throughput measurement.
type KernelResult struct {
	Name   string `json:"name"`
	Config string `json:"config"`
	Scale  string `json:"scale"`
	// Cycles is the simulated cycle count — identical for both engines by
	// the bit-identity contract, which Run enforces.
	Cycles uint64 `json:"cycles"`
	// Default engine: wall seconds and simulated cycles per wall second.
	WallS float64 `json:"wall_s"`
	CPS   float64 `json:"cycles_per_sec"`
	MCPS  float64 `json:"mcps"`
	// Legacy single-stepping loop, the cross-host reference.
	SingleStepWallS float64 `json:"single_step_wall_s"`
	SingleStepCPS   float64 `json:"single_step_cycles_per_sec"`
	// Speedup = CPS / SingleStepCPS, the host-independent figure of merit.
	Speedup float64 `json:"speedup"`
}

// Row is one benchmark session: a labelled set of kernel measurements plus
// the full-sweep wall clock, stamped with the host environment.
type Row struct {
	Label      string         `json:"label"`
	When       string         `json:"when"`
	Host       string         `json:"host"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	NumCPU     int            `json:"num_cpu"`
	Engine     string         `json:"engine"`
	Kernels    []KernelResult `json:"kernels"`
	// SweepWallS is the wall clock of the tartables -all -scale <scale>
	// equivalent (sequential, default engine), the headline ROADMAP number.
	SweepWallS float64 `json:"sweep_wall_s"`
	SweepScale string  `json:"sweep_scale"`
	// WarmupReuse is the checkpoint feature's payoff measurement (absent in
	// rows from builds that predate it).
	WarmupReuse *WarmupReuse `json:"warmup_reuse,omitempty"`
}

// WarmupReuse records the warm-up snapshot payoff: a sweep over a
// post-warm-up knob on a warm-up benchmark, run once cold (every point
// simulates its own warm-up) and once forking every later point from the
// first point's post-warm-up snapshot. Both sweeps must produce
// bit-identical per-point statistics; the speedup is the host-independent
// cold/reuse sim-loop wall-clock ratio.
type WarmupReuse struct {
	Bench        string  `json:"bench"`
	Config       string  `json:"config"`
	Scale        string  `json:"scale"`
	Points       int     `json:"points"`
	WarmupCycles uint64  `json:"warmup_cycles"`
	ColdWallS    float64 `json:"cold_wall_s"`
	ReuseWallS   float64 `json:"reuse_wall_s"`
	Speedup      float64 `json:"speedup"`
}

// File is the whole BENCH_sim.json document.
type File struct {
	Schema int   `json:"schema"`
	Rows   []Row `json:"rows"`
}

// Options configures a Run.
type Options struct {
	Label string
	Scale workloads.Scale
	// Engine names the default engine in the emitted row (informational).
	Engine string
	// SkipSweep omits the full-sweep wall-clock measurement (tests).
	SkipSweep bool
	// Progress, when non-nil, receives one line per measurement step.
	Progress func(string)
}

// Run measures every kernel on both engines (and optionally the full sweep)
// and returns the finished row. It fails if the two engines disagree on any
// simulated cycle count — that is a bit-identity violation, and a throughput
// number for a wrong simulation is worse than none.
func Run(opts Options) (*Row, error) {
	host, _ := os.Hostname()
	row := &Row{
		Label:      opts.Label,
		When:       time.Now().UTC().Format(time.RFC3339),
		Host:       host,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Engine:     opts.Engine,
		SweepScale: opts.Scale.String(),
	}
	cfg := sim.T()
	for _, name := range Kernels {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		defCycles, defWall, err := timeKernel(b, cfg, opts.Scale, true)
		if err != nil {
			return nil, fmt.Errorf("%s (default engine): %w", name, err)
		}
		ssCycles, ssWall, err := timeKernel(b, cfg, opts.Scale, false)
		if err != nil {
			return nil, fmt.Errorf("%s (single-step): %w", name, err)
		}
		if defCycles != ssCycles {
			return nil, fmt.Errorf("%s: engines disagree on simulated time: default=%d cycles, single-step=%d cycles (bit-identity violation)",
				name, defCycles, ssCycles)
		}
		kr := KernelResult{
			Name: name, Config: cfg.Name, Scale: opts.Scale.String(),
			Cycles: defCycles,
			WallS:  defWall, CPS: float64(defCycles) / defWall, MCPS: float64(defCycles) / defWall / 1e6,
			SingleStepWallS: ssWall, SingleStepCPS: float64(ssCycles) / ssWall,
		}
		kr.Speedup = kr.CPS / kr.SingleStepCPS
		row.Kernels = append(row.Kernels, kr)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("%-16s %12d cycles  %8.2f Mcps  (single-step %8.2f Mcps, %.2fx)",
				name, kr.Cycles, kr.MCPS, kr.SingleStepCPS/1e6, kr.Speedup))
		}
	}
	if !opts.SkipSweep {
		if opts.Progress != nil {
			opts.Progress("full sweep (tartables -all equivalent, sequential)...")
		}
		wall, err := timeSweep(opts.Scale)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		row.SweepWallS = wall
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("sweep wall clock: %.2f s", wall))
		}
	}
	wr, err := MeasureWarmupReuse(opts.Scale)
	if err != nil {
		return nil, fmt.Errorf("warmup reuse: %w", err)
	}
	row.WarmupReuse = wr
	if opts.Progress != nil {
		opts.Progress(fmt.Sprintf("warm-up reuse (%s, %d points): cold %.3f s, forked %.3f s — %.2fx",
			wr.Bench, wr.Points, wr.ColdWallS, wr.ReuseWallS, wr.Speedup))
	}
	return row, nil
}

// warmupReuseRepeats: each sweep variant is run this many times and the best
// (minimum) total sim-loop wall clock kept, the same noise-shedding rule as
// timeKernel.
const warmupReuseRepeats = 5

// MeasureWarmupReuse times a physical-register sweep on rndcopy — the
// warm-up benchmark, over a knob the warm-up cannot observe — cold and with
// warm-up forking, and verifies the two sweeps agree point by point before
// reporting the speedup.
func MeasureWarmupReuse(s workloads.Scale) (*WarmupReuse, error) {
	b, err := workloads.Get("rndcopy")
	if err != nil {
		return nil, err
	}
	base := sim.T()
	var cfgs []*sim.Config
	for _, p := range []int{64, 96, 128} {
		cc := *base
		cc.Vbox.PhysVRegs = p
		cfgs = append(cfgs, &cc)
	}

	wr := &WarmupReuse{Bench: b.Name, Config: base.Name, Scale: s.String(), Points: len(cfgs)}
	var coldStats []stats.Stats
	for rep := 0; rep < warmupReuseRepeats; rep++ {
		var ns int64
		var st []stats.Stats
		for _, cfg := range cfgs {
			res, err := b.Run(cfg, s)
			if err != nil {
				return nil, err
			}
			ns += res.WallNs
			st = append(st, *res.Stats)
		}
		if wall := float64(ns) / 1e9; rep == 0 || wall < wr.ColdWallS {
			wr.ColdWallS = wall
		}
		coldStats = st
	}
	for rep := 0; rep < warmupReuseRepeats; rep++ {
		var ns int64
		var blob []byte
		for i, cfg := range cfgs {
			var opts workloads.RunOpts
			if i == 0 {
				opts.OnWarmupSnapshot = func(_ uint64, bb []byte) { blob = bb }
			} else {
				opts.WarmupSnapshot = blob
			}
			res, err := b.RunOpt(cfg, s, opts)
			if err != nil {
				return nil, err
			}
			ns += res.WallNs
			if *res.Stats != coldStats[i] {
				return nil, fmt.Errorf("point %d (phys_vregs=%d): forked run's statistics differ from the cold run's (bit-identity violation)",
					i, cfg.Vbox.PhysVRegs)
			}
			if i > 0 && !res.WarmupRestored {
				return nil, fmt.Errorf("point %d did not restore the warm-up snapshot", i)
			}
			wr.WarmupCycles = res.WarmupCycles
		}
		if wall := float64(ns) / 1e9; rep == 0 || wall < wr.ReuseWallS {
			wr.ReuseWallS = wall
		}
	}
	if wr.ReuseWallS <= 0 {
		wr.ReuseWallS = 1e-9
	}
	wr.Speedup = wr.ColdWallS / wr.ReuseWallS
	return wr, nil
}

// kernelRepeats bounds how many times timeKernel runs each kernel; the fastest
// repeat is kept, the standard way to shed scheduler noise from a
// deterministic workload.
const kernelRepeats = 25

// kernelMeasureFloor is the cumulative sim-loop wall clock timeKernel keeps
// measuring toward before trusting its minimum. Test-scale kernels finish in
// single-digit milliseconds, where one GC pause or a scheduler hiccup swings
// a lone sample by tens of percent; accumulating a quarter second of real
// measurement (still well under kernelRepeats at bench scale, where a single
// run exceeds the floor on its own) makes the reported minimum — and the
// engine-speedup ratio the CI gate compares — reproducible.
const kernelMeasureFloor = 250 * time.Millisecond

// timeKernel runs one kernel kernelRepeats times and returns (simulated
// cycles, best wall seconds). The wall clock is the chip loop's own
// (Result.WallNs), not the process wall: at test scale the kernels simulate
// only a few thousand cycles, so trace construction and functional
// verification would otherwise dominate and hide the engine entirely.
// fastForward=false pins the legacy single-stepping chip loop via the
// package-wide engine default (restored before returning).
func timeKernel(b *workloads.Benchmark, cfg *sim.Config, s workloads.Scale, fastForward bool) (uint64, float64, error) {
	saved := sim.FastForward
	sim.FastForward = fastForward
	defer func() { sim.FastForward = saved }()
	var cycles uint64
	best := 0.0
	var accum time.Duration
	for i := 0; i < kernelRepeats; i++ {
		if i >= 3 && accum >= kernelMeasureFloor {
			break
		}
		res, err := b.Run(cfg, s)
		if err != nil {
			return 0, 0, err
		}
		accum += time.Duration(res.WallNs)
		wall := float64(res.WallNs) / 1e9
		if wall <= 0 {
			wall = 1e-9
		}
		if i == 0 {
			cycles, best = res.SimCycles, wall
		} else {
			if res.SimCycles != cycles {
				return 0, 0, fmt.Errorf("%s: nondeterministic simulated time: %d cycles then %d", b.Name, cycles, res.SimCycles)
			}
			if wall < best {
				best = wall
			}
		}
	}
	return cycles, best, nil
}

// timeSweep runs the full table/figure sweep sequentially and returns its
// wall clock. Sequential on purpose: the number tracks single-core simulator
// throughput, not the host's core count.
func timeSweep(s workloads.Scale) (float64, error) {
	r := tables.NewRunner(s)
	r.Parallel = 1
	r.Quiet = true
	t0 := time.Now()
	r.Prewarm()
	if _, err := r.Table2(); err != nil {
		return 0, err
	}
	if _, err := r.Table4(); err != nil {
		return 0, err
	}
	if _, err := r.Fig6(); err != nil {
		return 0, err
	}
	if _, err := r.Fig7(); err != nil {
		return 0, err
	}
	if _, err := r.Fig8(); err != nil {
		return 0, err
	}
	if _, err := r.Fig9(); err != nil {
		return 0, err
	}
	return time.Since(t0).Seconds(), nil
}

// Load reads a BENCH_sim.json file. A missing file is an empty File, not an
// error, so the first run bootstraps the baseline.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{Schema: Schema}, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %d, this binary writes schema %d", path, f.Schema, Schema)
	}
	return &f, nil
}

// Append adds row to the file at path (creating it if needed) and writes it
// back, indented and newline-terminated.
func Append(path string, row *Row) error {
	f, err := Load(path)
	if err != nil {
		return err
	}
	f.Schema = Schema
	f.Rows = append(f.Rows, *row)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RegressionTolerance is the fraction of the committed speedup a fresh
// measurement may lose before CheckRegression fails (the CI gate's ">20%
// regression" threshold).
const RegressionTolerance = 0.20

// CheckRegression compares a fresh row against the last committed row,
// kernel by kernel, on the host-independent speedup ratio (default engine
// over single-step). It returns an error naming every kernel whose ratio
// regressed by more than RegressionTolerance. An empty committed file passes
// (bootstrap).
func CheckRegression(committed *File, fresh *Row) error {
	if len(committed.Rows) == 0 {
		return nil
	}
	base := committed.Rows[len(committed.Rows)-1]
	ref := map[string]float64{}
	for _, k := range base.Kernels {
		ref[k.Name] = k.Speedup
	}
	var bad []string
	for _, k := range fresh.Kernels {
		want, ok := ref[k.Name]
		if !ok || want <= 0 {
			continue
		}
		if k.Speedup < (1-RegressionTolerance)*want {
			bad = append(bad, fmt.Sprintf("%s: speedup %.2fx vs committed %.2fx (>%d%% regression)",
				k.Name, k.Speedup, want, int(RegressionTolerance*100)))
		}
	}
	if fresh.WarmupReuse != nil {
		wr := fresh.WarmupReuse
		if wr.Speedup < 1 {
			bad = append(bad, fmt.Sprintf("warmup reuse: sweep with snapshot forking is slower than cold (%.2fx)", wr.Speedup))
		}
		if cw := base.WarmupReuse; cw != nil && cw.Speedup > 0 &&
			wr.Speedup < (1-RegressionTolerance)*cw.Speedup {
			bad = append(bad, fmt.Sprintf("warmup reuse: speedup %.2fx vs committed %.2fx (>%d%% regression)",
				wr.Speedup, cw.Speedup, int(RegressionTolerance*100)))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("cycles/sec regression vs committed baseline (%s):\n  %s",
			base.Label, joinLines(bad))
	}
	return nil
}

func joinLines(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
