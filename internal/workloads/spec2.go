package workloads

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/vasm"
)

// ---- art: image recognition / neural network (SPEC FP 2000 179.art) ----
//
// The surrogate keeps art's hot structure: a match phase computing the
// bottom-up activation of every F2 unit as a long dot product over the F1
// field, a winner-take-all scan, and a masked resonance update of the
// winner's weights (elements above the vigilance threshold adapt — the
// masked execution the paper credits for part of moldyn/art's speedup).

func artN(s Scale) (f1, f2, pres int) {
	switch s {
	case Test:
		return 1024, 16, 1
	case Full:
		return 16384, 64, 3
	}
	return 8192, 64, 2
}

func artLayout(f1, f2 int) (in, w, t, scratch uint64) {
	in = 1 << 20
	w = in + uint64(f1)*8 + 4096
	t = w + uint64(f1*f2)*8 + 4096
	scratch = t + uint64(f2)*8 + 4096
	return
}

func artInit(bd *vasm.Builder, f1, f2 int) {
	in, w, _, _ := artLayout(f1, f2)
	for i := 0; i < f1; i++ {
		bd.M.Mem.StoreQ(in+uint64(i)*8, fbits(0.5+0.4*math.Sin(float64(i)*0.01)))
	}
	for j := 0; j < f2; j++ {
		for i := 0; i < f1; i++ {
			bd.M.Mem.StoreQ(w+uint64(j*f1+i)*8, fbits(0.3+0.6*math.Cos(float64(j*f1+i)*0.003)))
		}
	}
}

const (
	artLearn = 0.25
	artVigil = 0.55
)

// artRef mirrors the kernel.
func artRef(f1, f2, pres int) (tOut []float64, w []float64) {
	in := make([]float64, f1)
	w = make([]float64, f1*f2)
	for i := range in {
		in[i] = 0.5 + 0.4*math.Sin(float64(i)*0.01)
	}
	for k := range w {
		w[k] = 0.3 + 0.6*math.Cos(float64(k)*0.003)
	}
	tOut = make([]float64, f2)
	for p := 0; p < pres; p++ {
		for j := 0; j < f2; j++ {
			sum := 0.0
			for i := 0; i < f1; i++ {
				sum += in[i] * w[j*f1+i]
			}
			tOut[j] = sum
		}
		win := 0
		for j := 1; j < f2; j++ {
			if tOut[j] > tOut[win] {
				win = j
			}
		}
		for i := 0; i < f1; i++ {
			if w[win*f1+i] > artVigil {
				w[win*f1+i] = (1-artLearn)*w[win*f1+i] + artLearn*in[i]
			}
		}
	}
	return
}

func artVector(s Scale) vasm.Kernel {
	f1, f2, pres := artN(s)
	return func(bd *vasm.Builder) {
		artInit(bd, f1, f2)
		inB, wB, tB, scratch := artLayout(f1, f2)
		rs, rIn, rW, rT := isa.R(9), isa.R(1), isa.R(2), isa.R(3)
		learn := constF64(bd, 1, artLearn)
		oneMinus := constF64(bd, 2, 1-artLearn)
		vigil := constF64(bd, 3, artVigil)
		bd.SetVSImm(rs, 8)
		for p := 0; p < pres; p++ {
			// Match phase: T[j] = Σ_i I[i]·W[j][i].
			for j := 0; j < f2; j++ {
				bd.VV(isa.OpVXOR, isa.V(2), isa.V(2), isa.V(2)) // accumulator
				bd.Li(rIn, int64(inB))
				bd.Li(rW, int64(wB)+int64(j*f1)*8)
				bd.Loop(isa.R(16), f1/isa.VLMax, func(int) {
					bd.VPref(rW, 4*chunkBytes)
					bd.VLdQ(isa.V(0), rIn, 0)
					bd.VLdQ(isa.V(1), rW, 0)
					bd.VV(isa.OpVMULT, isa.V(0), isa.V(0), isa.V(1))
					bd.VV(isa.OpVADDT, isa.V(2), isa.V(2), isa.V(0))
					bd.AddImm(rIn, rIn, chunkBytes)
					bd.AddImm(rW, rW, chunkBytes)
				})
				hsum(bd, isa.V(2), isa.V(3), isa.F(4), scratch, rs, isa.R(10), isa.VLMax)
				bd.Li(rT, int64(tB)+int64(j)*8)
				bd.StT(isa.F(4), rT, 0)
				bd.SetVSImm(rs, 8) // hsum changed vl
				bd.SetVLImm(rs, isa.VLMax)
			}
			// Winner-take-all: branchy scalar scan over the f2 activations
			// (the data-dependent branches art's scalar residue carries).
			bd.Li(rT, int64(tB))
			bd.LdT(isa.F(5), rT, 0) // best
			bd.Li(isa.R(11), 0)     // best index
			for j := 1; j < f2; j++ {
				bd.LdT(isa.F(6), rT, int64(j)*8)
				bd.Op3(isa.OpCMPTLT, isa.R(12), isa.F(5), isa.F(6))
				bd.Emit(isa.Inst{Op: isa.OpBEQ, Src1: isa.R(12), Imm: 1})
				if ffrom(bd.M.F[5]) < ffrom(bd.M.F[6]) { // trace follows the taken path
					bd.OpImm(isa.OpADDQ, isa.R(11), isa.RZero, int64(j))
					bd.Op3(isa.OpADDT, isa.F(5), isa.F(6), isa.FZero)
				}
			}
			// Resonance: masked weight update of the winner row.
			winIdx := int(bd.M.R[11])
			bd.Li(rW, int64(wB)+int64(winIdx*f1)*8)
			bd.Li(rIn, int64(inB))
			bd.Loop(isa.R(16), f1/isa.VLMax, func(int) {
				bd.VLdQ(isa.V(0), rW, 0)
				bd.VLdQ(isa.V(1), rIn, 0)
				// mask = W > vigil  ⇔  !(W <= vigil)
				bd.VS(isa.OpVSCMPTLE, isa.V(4), isa.V(0), vigil)
				bd.Li(isa.R(12), 1)
				bd.VS(isa.OpVSXOR, isa.V(4), isa.V(4), isa.R(12))
				bd.SetVM(isa.V(4))
				// W = (1-L)·W + L·I under mask
				bd.VS(isa.OpVSMULT, isa.V(5), isa.V(0), oneMinus)
				bd.VS(isa.OpVSMULT, isa.V(6), isa.V(1), learn)
				bd.VV(isa.OpVADDT, isa.V(5), isa.V(5), isa.V(6))
				bd.VVM(isa.OpVBIS, isa.V(0), isa.V(5), isa.V(5)) // masked move
				bd.VStQ(isa.V(0), rW, 0)
				bd.AddImm(rW, rW, chunkBytes)
				bd.AddImm(rIn, rIn, chunkBytes)
			})
		}
		bd.Halt()
	}
}

func artScalar(s Scale) vasm.Kernel {
	f1, f2, pres := artN(s)
	return func(bd *vasm.Builder) {
		artInit(bd, f1, f2)
		inB, wB, tB, _ := artLayout(f1, f2)
		rIn, rW, rT := isa.R(1), isa.R(2), isa.R(3)
		learn := constF64(bd, 1, artLearn)
		oneMinus := constF64(bd, 2, 1-artLearn)
		for p := 0; p < pres; p++ {
			for j := 0; j < f2; j++ {
				// Four-accumulator dot product.
				for a := 0; a < 4; a++ {
					bd.Op3(isa.OpSUBT, isa.F(10+a), isa.FZero, isa.FZero)
				}
				bd.Li(rIn, int64(inB))
				bd.Li(rW, int64(wB)+int64(j*f1)*8)
				bd.Loop(isa.R(16), f1/4, func(int) {
					bd.Prefetch(rW, 256)
					for u := 0; u < 4; u++ {
						off := int64(u * 8)
						bd.LdT(isa.F(4), rIn, off)
						bd.LdT(isa.F(5), rW, off)
						bd.Op3(isa.OpMULT, isa.F(4), isa.F(4), isa.F(5))
						bd.Op3(isa.OpADDT, isa.F(10+u), isa.F(10+u), isa.F(4))
					}
					bd.AddImm(rIn, rIn, 32)
					bd.AddImm(rW, rW, 32)
				})
				bd.Op3(isa.OpADDT, isa.F(10), isa.F(10), isa.F(11))
				bd.Op3(isa.OpADDT, isa.F(12), isa.F(12), isa.F(13))
				bd.Op3(isa.OpADDT, isa.F(10), isa.F(10), isa.F(12))
				bd.Li(rT, int64(tB)+int64(j)*8)
				bd.StT(isa.F(10), rT, 0)
			}
			// Winner scan (scalar, branchy).
			bd.Li(rT, int64(tB))
			bd.LdT(isa.F(5), rT, 0)
			bd.Li(isa.R(11), 0)
			for j := 1; j < f2; j++ {
				bd.LdT(isa.F(6), rT, int64(j)*8)
				bd.Op3(isa.OpCMPTLT, isa.R(12), isa.F(5), isa.F(6))
				bd.Emit(isa.Inst{Op: isa.OpBEQ, Src1: isa.R(12), Imm: 1})
				if ffrom(bd.M.F[5]) < ffrom(bd.M.F[6]) {
					bd.OpImm(isa.OpADDQ, isa.R(11), isa.RZero, int64(j))
					bd.Op3(isa.OpADDT, isa.F(5), isa.F(6), isa.FZero)
				}
			}
			winIdx := int(bd.M.R[11])
			vig := constF64(bd, 3, artVigil)
			bd.Li(rW, int64(wB)+int64(winIdx*f1)*8)
			bd.Li(rIn, int64(inB))
			bd.Loop(isa.R(16), f1, func(int) {
				bd.LdT(isa.F(6), rW, 0)
				bd.Op3(isa.OpCMPTLE, isa.R(12), isa.F(6), vig)
				bd.Emit(isa.Inst{Op: isa.OpBNE, Src1: isa.R(12), Imm: 1})
				if ffrom(bd.M.F[6]) > artVigil {
					bd.LdT(isa.F(7), rIn, 0)
					bd.Op3(isa.OpMULT, isa.F(6), isa.F(6), oneMinus)
					bd.Op3(isa.OpMULT, isa.F(7), isa.F(7), learn)
					bd.Op3(isa.OpADDT, isa.F(6), isa.F(6), isa.F(7))
					bd.StT(isa.F(6), rW, 0)
				}
				bd.AddImm(rW, rW, 8)
				bd.AddImm(rIn, rIn, 8)
			})
		}
		bd.Halt()
	}
}

func artCheck(m *arch.Machine, s Scale) error {
	f1, f2, pres := artN(s)
	_, wB, tB, _ := artLayout(f1, f2)
	wantT, wantW := artRef(f1, f2, pres)
	for j := 0; j < f2; j++ {
		got := ffrom(m.Mem.LoadQ(tB + uint64(j)*8))
		if math.Abs(got-wantT[j]) > 1e-6*math.Max(1, math.Abs(wantT[j])) {
			return fmt.Errorf("art: T[%d] = %g, want %g", j, got, wantT[j])
		}
	}
	for k := 0; k < f1*f2; k += 509 {
		got := ffrom(m.Mem.LoadQ(wB + uint64(k)*8))
		if math.Abs(got-wantW[k]) > 1e-6 {
			return fmt.Errorf("art: W[%d] = %g, want %g", k, got, wantW[k])
		}
	}
	return nil
}

var benchArt = register(&Benchmark{
	Name:   "art",
	Class:  "SpecFP2000",
	Desc:   "adaptive resonance image recognition (dot products + masked update)",
	Vector: artVector,
	Scalar: artScalar,
	Check:  artCheck,
})

// ---- sixtrack: high-energy physics particle tracking ----
//
// A 6-D phase-space map applied turn by turn: drift, quadrupole and
// sextupole kicks over the particle arrays, vectorised stride-1, plus the
// per-turn scalar bookkeeping (RF phase, closed-orbit correction) that
// keeps the benchmark's vectorisation at 93.7% (Table 2).

func sixtrackN(s Scale) (particles, turns int) {
	switch s {
	case Test:
		return 1024, 4
	case Full:
		return 8192, 48
	}
	return 4096, 24
}

const (
	sixL  = 0.125 // drift length
	sixK1 = 0.02  // quad strength
	sixK2 = 0.003 // sextupole strength
)

func sixLayout(n int) (x, px, y, py [2]uint64, bases [4]uint64) {
	addr := uint64(1 << 20)
	for i := range bases {
		bases[i] = addr
		addr += uint64(n)*8 + 4096
	}
	return [2]uint64{bases[0]}, [2]uint64{bases[1]}, [2]uint64{bases[2]}, [2]uint64{bases[3]}, bases
}

func sixInitVals(n int) (x, px, y, py []float64) {
	x = make([]float64, n)
	px = make([]float64, n)
	y = make([]float64, n)
	py = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = 1e-3 * math.Sin(float64(i)*0.37)
		px[i] = 1e-4 * math.Cos(float64(i)*0.61)
		y[i] = 1e-3 * math.Cos(float64(i)*0.23)
		py[i] = 1e-4 * math.Sin(float64(i)*0.41)
	}
	return
}

func sixRef(n, turns int) (x, px, y, py []float64) {
	x, px, y, py = sixInitVals(n)
	for t := 0; t < turns; t++ {
		for i := 0; i < n; i++ {
			// drift
			x[i] += sixL * px[i]
			y[i] += sixL * py[i]
			// quad kick
			px[i] -= sixK1 * x[i]
			py[i] += sixK1 * y[i]
			// sextupole kick
			px[i] -= sixK2 * (x[i]*x[i] - y[i]*y[i])
			py[i] += 2 * sixK2 * x[i] * y[i]
		}
	}
	return
}

func sixtrackVector(s Scale) vasm.Kernel {
	n, turns := sixtrackN(s)
	return func(bd *vasm.Builder) {
		_, _, _, _, bases := sixLayout(n)
		x0, px0, y0, py0 := sixInitVals(n)
		fillF64(bd, bases[0], x0)
		fillF64(bd, bases[1], px0)
		fillF64(bd, bases[2], y0)
		fillF64(bd, bases[3], py0)
		rs := isa.R(9)
		l := constF64(bd, 1, sixL)
		k1 := constF64(bd, 2, sixK1)
		k2 := constF64(bd, 3, sixK2)
		k22 := constF64(bd, 4, 2*sixK2)
		bd.SetVSImm(rs, 8)
		rX, rPX, rY, rPY := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		for t := 0; t < turns; t++ {
			// Per-turn scalar bookkeeping: RF phase advance & orbit sums —
			// the ~6% scalar residue of Table 2.
			for k := 0; k < 24; k++ {
				bd.OpImm(isa.OpADDQ, isa.R(20), isa.R(20), int64(k+1))
				bd.Op3(isa.OpMULT, isa.F(20), isa.F(20), l)
				bd.Op3(isa.OpADDT, isa.F(21), isa.F(21), isa.F(20))
			}
			bd.Li(rX, int64(bases[0]))
			bd.Li(rPX, int64(bases[1]))
			bd.Li(rY, int64(bases[2]))
			bd.Li(rPY, int64(bases[3]))
			bd.Loop(isa.R(16), n/isa.VLMax, func(int) {
				bd.VLdQ(isa.V(0), rX, 0)
				bd.VLdQ(isa.V(1), rPX, 0)
				bd.VLdQ(isa.V(2), rY, 0)
				bd.VLdQ(isa.V(3), rPY, 0)
				// drift
				bd.VS(isa.OpVSMULT, isa.V(4), isa.V(1), l)
				bd.VV(isa.OpVADDT, isa.V(0), isa.V(0), isa.V(4))
				bd.VS(isa.OpVSMULT, isa.V(4), isa.V(3), l)
				bd.VV(isa.OpVADDT, isa.V(2), isa.V(2), isa.V(4))
				// quad
				bd.VS(isa.OpVSMULT, isa.V(4), isa.V(0), k1)
				bd.VV(isa.OpVSUBT, isa.V(1), isa.V(1), isa.V(4))
				bd.VS(isa.OpVSMULT, isa.V(4), isa.V(2), k1)
				bd.VV(isa.OpVADDT, isa.V(3), isa.V(3), isa.V(4))
				// sextupole
				bd.VV(isa.OpVMULT, isa.V(5), isa.V(0), isa.V(0))
				bd.VV(isa.OpVMULT, isa.V(6), isa.V(2), isa.V(2))
				bd.VV(isa.OpVSUBT, isa.V(5), isa.V(5), isa.V(6))
				bd.VS(isa.OpVSMULT, isa.V(5), isa.V(5), k2)
				bd.VV(isa.OpVSUBT, isa.V(1), isa.V(1), isa.V(5))
				bd.VV(isa.OpVMULT, isa.V(5), isa.V(0), isa.V(2))
				bd.VS(isa.OpVSMULT, isa.V(5), isa.V(5), k22)
				bd.VV(isa.OpVADDT, isa.V(3), isa.V(3), isa.V(5))
				bd.VStQ(isa.V(0), rX, 0)
				bd.VStQ(isa.V(1), rPX, 0)
				bd.VStQ(isa.V(2), rY, 0)
				bd.VStQ(isa.V(3), rPY, 0)
				for _, rr := range []isa.Reg{rX, rPX, rY, rPY} {
					bd.AddImm(rr, rr, chunkBytes)
				}
			})
		}
		bd.Halt()
	}
}

func sixtrackScalar(s Scale) vasm.Kernel {
	n, turns := sixtrackN(s)
	return func(bd *vasm.Builder) {
		_, _, _, _, bases := sixLayout(n)
		x0, px0, y0, py0 := sixInitVals(n)
		fillF64(bd, bases[0], x0)
		fillF64(bd, bases[1], px0)
		fillF64(bd, bases[2], y0)
		fillF64(bd, bases[3], py0)
		l := constF64(bd, 1, sixL)
		k1 := constF64(bd, 2, sixK1)
		k2 := constF64(bd, 3, sixK2)
		k22 := constF64(bd, 4, 2*sixK2)
		rX, rPX, rY, rPY := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		for t := 0; t < turns; t++ {
			for k := 0; k < 24; k++ {
				bd.OpImm(isa.OpADDQ, isa.R(20), isa.R(20), int64(k+1))
				bd.Op3(isa.OpMULT, isa.F(20), isa.F(20), l)
				bd.Op3(isa.OpADDT, isa.F(21), isa.F(21), isa.F(20))
			}
			bd.Li(rX, int64(bases[0]))
			bd.Li(rPX, int64(bases[1]))
			bd.Li(rY, int64(bases[2]))
			bd.Li(rPY, int64(bases[3]))
			bd.Loop(isa.R(16), n, func(int) {
				bd.LdT(isa.F(10), rX, 0)
				bd.LdT(isa.F(11), rPX, 0)
				bd.LdT(isa.F(12), rY, 0)
				bd.LdT(isa.F(13), rPY, 0)
				bd.Op3(isa.OpMULT, isa.F(14), isa.F(11), l)
				bd.Op3(isa.OpADDT, isa.F(10), isa.F(10), isa.F(14))
				bd.Op3(isa.OpMULT, isa.F(14), isa.F(13), l)
				bd.Op3(isa.OpADDT, isa.F(12), isa.F(12), isa.F(14))
				bd.Op3(isa.OpMULT, isa.F(14), isa.F(10), k1)
				bd.Op3(isa.OpSUBT, isa.F(11), isa.F(11), isa.F(14))
				bd.Op3(isa.OpMULT, isa.F(14), isa.F(12), k1)
				bd.Op3(isa.OpADDT, isa.F(13), isa.F(13), isa.F(14))
				bd.Op3(isa.OpMULT, isa.F(15), isa.F(10), isa.F(10))
				bd.Op3(isa.OpMULT, isa.F(16), isa.F(12), isa.F(12))
				bd.Op3(isa.OpSUBT, isa.F(15), isa.F(15), isa.F(16))
				bd.Op3(isa.OpMULT, isa.F(15), isa.F(15), k2)
				bd.Op3(isa.OpSUBT, isa.F(11), isa.F(11), isa.F(15))
				bd.Op3(isa.OpMULT, isa.F(15), isa.F(10), isa.F(12))
				bd.Op3(isa.OpMULT, isa.F(15), isa.F(15), k22)
				bd.Op3(isa.OpADDT, isa.F(13), isa.F(13), isa.F(15))
				bd.StT(isa.F(10), rX, 0)
				bd.StT(isa.F(11), rPX, 0)
				bd.StT(isa.F(12), rY, 0)
				bd.StT(isa.F(13), rPY, 0)
				for _, rr := range []isa.Reg{rX, rPX, rY, rPY} {
					bd.AddImm(rr, rr, 8)
				}
			})
		}
		bd.Halt()
	}
}

func sixtrackCheck(m *arch.Machine, s Scale) error {
	n, turns := sixtrackN(s)
	_, _, _, _, bases := sixLayout(n)
	wx, wpx, wy, wpy := sixRef(n, turns)
	for i := 0; i < n; i += 101 {
		for k, want := range [][]float64{wx, wpx, wy, wpy} {
			got := ffrom(m.Mem.LoadQ(bases[k] + uint64(i)*8))
			if math.Abs(got-want[i]) > 1e-9*math.Max(1e-6, math.Abs(want[i])) {
				return fmt.Errorf("sixtrack: array %d particle %d = %g, want %g", k, i, got, want[i])
			}
		}
	}
	return nil
}

var benchSixtrack = register(&Benchmark{
	Name:   "sixtrack",
	Class:  "SpecFP2000",
	Desc:   "6-D particle tracking map with per-turn scalar residue",
	Vector: sixtrackVector,
	Scalar: sixtrackScalar,
	Check:  sixtrackCheck,
})
