package workloads

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/vasm"
)

// ---- swim: shallow-water model (SPEC FP 2000 171.swim) ----
//
// The surrogate keeps swim's structure — two stencil sweeps over a 2-D grid
// producing intermediate fields (CU, CV, Z, H) and new time-level fields,
// followed by a copy-back sweep, processed in row blocks (the tiling the
// paper stresses: the non-tiled version was "almost 2X slower") — with one
// simplification recorded in EXPERIMENTS.md: the per-point division in the
// Z field is replaced by a constant scale, because Tarantula's unpipelined
// vector divide would otherwise dominate the sweep in a way the paper's
// numbers rule out.

func swimN(s Scale) (n, steps int) {
	switch s {
	case Test:
		return 128, 1
	case Full:
		return 512, 2
	}
	return 256, 2
}

const swimBlock = 32 // rows per tile

// swim field layout: 10 arrays of n rows × (n+16) columns (halo pad).
func swimLayout(n int) (pitch int, bases [10]uint64) {
	pitch = n + 16
	sz := uint64(n*pitch) * 8
	addr := uint64(1 << 20)
	for i := range bases {
		bases[i] = addr
		addr += sz + 4096
	}
	return
}

const (
	swP, swU, swV, swCU, swCV, swZ, swH, swUN, swVN, swPN = 0, 1, 2, 3, 4, 5, 6, 7, 8, 9
)

const (
	swFsdx, swFsdy, swTdts8, swTdtsdx, swTdtsdy = 1.1, 0.9, 0.013, 0.011, 0.009
)

func swimInitVals(n, pitch int) (p, u, v []float64) {
	p = make([]float64, n*pitch)
	u = make([]float64, n*pitch)
	v = make([]float64, n*pitch)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			p[i*pitch+j] = 2.0 + math.Sin(float64(i)*0.1)*math.Cos(float64(j)*0.1)
			u[i*pitch+j] = math.Sin(float64(i+j) * 0.05)
			v[i*pitch+j] = math.Cos(float64(i-j) * 0.05)
		}
	}
	return
}

func swimInit(bd *vasm.Builder, n int) {
	pitch, bases := swimLayout(n)
	p, u, v := swimInitVals(n, pitch)
	fillF64(bd, bases[swP], p)
	fillF64(bd, bases[swU], u)
	fillF64(bd, bases[swV], v)
}

// swimRef mirrors the kernels' block structure exactly so results compare
// bit-for-bit.
func swimRef(n, steps int) [10][]float64 {
	pitch := n + 16
	var f [10][]float64
	for i := range f {
		f[i] = make([]float64, n*pitch)
	}
	f[swP], f[swU], f[swV] = swimInitVals(n, pitch)
	at := func(a int, i, j int) float64 { return f[a][i*pitch+j] }
	for s := 0; s < steps; s++ {
		for lo := 0; lo < n-1; lo += swimBlock {
			hi := min(lo+swimBlock, n-1) // rows [lo,hi) plus halo row hi
			for i := lo; i <= hi && i < n-1; i++ {
				for j := 0; j < n; j++ {
					f[swCU][i*pitch+j] = 0.5 * (at(swP, i, j) + at(swP, i+1, j)) * at(swU, i, j)
					f[swCV][i*pitch+j] = 0.5 * (at(swP, i, j) + at(swP, i, j+1)) * at(swV, i, j)
					f[swZ][i*pitch+j] = swFsdx*(at(swV, i, j+1)-at(swV, i, j)) - swFsdy*(at(swU, i+1, j)-at(swU, i, j))
					f[swH][i*pitch+j] = at(swP, i, j) + 0.25*(at(swU, i, j)*at(swU, i, j)+at(swV, i, j)*at(swV, i, j))
				}
			}
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					f[swUN][i*pitch+j] = at(swU, i, j) +
						swTdts8*(at(swZ, i, j)+at(swZ, i+1, j))*(at(swCV, i, j)+at(swCV, i, j+1)) -
						swTdtsdx*(at(swH, i, j+1)-at(swH, i, j))
					f[swVN][i*pitch+j] = at(swV, i, j) -
						swTdts8*(at(swZ, i, j)+at(swZ, i, j+1))*(at(swCU, i, j)+at(swCU, i+1, j)) -
						swTdtsdy*(at(swH, i+1, j)-at(swH, i, j))
					f[swPN][i*pitch+j] = at(swP, i, j) -
						swTdtsdx*(at(swCU, i, j+1)-at(swCU, i, j)) -
						swTdtsdy*(at(swCV, i+1, j)-at(swCV, i, j))
				}
			}
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					f[swU][i*pitch+j] = f[swUN][i*pitch+j]
					f[swV][i*pitch+j] = f[swVN][i*pitch+j]
					f[swP][i*pitch+j] = f[swPN][i*pitch+j]
				}
			}
		}
	}
	return f
}

func swimVector(s Scale) vasm.Kernel {
	n, steps := swimN(s)
	return swimVectorBlocked(n, steps, swimBlock)
}

// swimVectorBlocked is the kernel with an explicit tile height; block ≥ n
// gives the naive (non-tiled) version the paper measured at "almost 2X
// slower" — each sweep then streams the whole grid before the next starts,
// so the intermediate fields fall out of the L2 between sweeps once the
// working set exceeds it.
func swimVectorBlocked(n, steps, block int) vasm.Kernel {
	return func(bd *vasm.Builder) {
		swimInit(bd, n)
		pitch, bases := swimLayout(n)
		rowB := int64(pitch) * 8
		rs := isa.R(9)
		r := func(k int) isa.Reg { return isa.R(1 + k) } // base pointers
		bd.SetVSImm(rs, 8)
		cF := [5]isa.Reg{
			constF64(bd, 1, swFsdx), constF64(bd, 2, swFsdy),
			constF64(bd, 3, swTdts8), constF64(bd, 4, swTdtsdx), constF64(bd, 5, swTdtsdy),
		}
		half := constF64(bd, 6, 0.5)
		quarter := constF64(bd, 7, 0.25)
		ld := func(v isa.Reg, arr, i int, j0 int, colOff int64) {
			bd.Li(r(0), int64(bases[arr])+int64(i)*rowB+int64(j0)*8+colOff*8)
			bd.VLdQ(v, r(0), 0)
		}
		st := func(v isa.Reg, arr, i, j0 int) {
			bd.Li(r(0), int64(bases[arr])+int64(i)*rowB+int64(j0)*8)
			bd.VStQ(v, r(0), 0)
		}
		for s := 0; s < steps; s++ {
			for lo := 0; lo < n-1; lo += block {
				hi := min(lo+block, n-1)
				for i := lo; i <= hi && i < n-1; i++ {
					vchunks(bd, rs, n, func(j0, vl int) {
						bd.VPref(r(0), rowB)          // prefetch the next row's P
						ld(isa.V(0), swP, i, j0, 0)   // P
						ld(isa.V(1), swP, i+1, j0, 0) // P_r
						ld(isa.V(2), swP, i, j0, 1)   // P_c (misaligned stride-1)
						ld(isa.V(3), swU, i, j0, 0)   // U
						ld(isa.V(4), swU, i+1, j0, 0) // U_r
						ld(isa.V(5), swV, i, j0, 0)   // V
						ld(isa.V(6), swV, i, j0, 1)   // V_c
						// CU = 0.5*(P+P_r)*U
						bd.VV(isa.OpVADDT, isa.V(8), isa.V(0), isa.V(1))
						bd.VS(isa.OpVSMULT, isa.V(8), isa.V(8), half)
						bd.VV(isa.OpVMULT, isa.V(8), isa.V(8), isa.V(3))
						st(isa.V(8), swCU, i, j0)
						// CV = 0.5*(P+P_c)*V
						bd.VV(isa.OpVADDT, isa.V(9), isa.V(0), isa.V(2))
						bd.VS(isa.OpVSMULT, isa.V(9), isa.V(9), half)
						bd.VV(isa.OpVMULT, isa.V(9), isa.V(9), isa.V(5))
						st(isa.V(9), swCV, i, j0)
						// Z = fsdx*(V_c-V) - fsdy*(U_r-U)
						bd.VV(isa.OpVSUBT, isa.V(10), isa.V(6), isa.V(5))
						bd.VS(isa.OpVSMULT, isa.V(10), isa.V(10), cF[0])
						bd.VV(isa.OpVSUBT, isa.V(11), isa.V(4), isa.V(3))
						bd.VS(isa.OpVSMULT, isa.V(11), isa.V(11), cF[1])
						bd.VV(isa.OpVSUBT, isa.V(10), isa.V(10), isa.V(11))
						st(isa.V(10), swZ, i, j0)
						// H = P + 0.25*(U² + V²)
						bd.VV(isa.OpVMULT, isa.V(12), isa.V(3), isa.V(3))
						bd.VV(isa.OpVMULT, isa.V(13), isa.V(5), isa.V(5))
						bd.VV(isa.OpVADDT, isa.V(12), isa.V(12), isa.V(13))
						bd.VS(isa.OpVSMULT, isa.V(12), isa.V(12), quarter)
						bd.VV(isa.OpVADDT, isa.V(12), isa.V(12), isa.V(0))
						st(isa.V(12), swH, i, j0)
					})
				}
				for i := lo; i < hi; i++ {
					vchunks(bd, rs, n, func(j0, vl int) {
						ld(isa.V(0), swZ, i, j0, 0)
						ld(isa.V(1), swZ, i+1, j0, 0)
						ld(isa.V(2), swZ, i, j0, 1)
						ld(isa.V(3), swCV, i, j0, 0)
						ld(isa.V(4), swCV, i, j0, 1)
						ld(isa.V(5), swCU, i, j0, 0)
						ld(isa.V(6), swCU, i+1, j0, 0)
						ld(isa.V(7), swCU, i, j0, 1)
						ld(isa.V(8), swH, i, j0, 0)
						ld(isa.V(9), swH, i, j0, 1)
						ld(isa.V(10), swH, i+1, j0, 0)
						ld(isa.V(11), swCV, i+1, j0, 0)
						// UNEW = U + tdts8*(Z+Z_r)*(CV+CV_c) - tdtsdx*(H_c-H)
						bd.VV(isa.OpVADDT, isa.V(12), isa.V(0), isa.V(1))
						bd.VV(isa.OpVADDT, isa.V(13), isa.V(3), isa.V(4))
						bd.VV(isa.OpVMULT, isa.V(12), isa.V(12), isa.V(13))
						bd.VS(isa.OpVSMULT, isa.V(12), isa.V(12), cF[2])
						bd.VV(isa.OpVSUBT, isa.V(13), isa.V(9), isa.V(8))
						bd.VS(isa.OpVSMULT, isa.V(13), isa.V(13), cF[3])
						bd.VV(isa.OpVSUBT, isa.V(12), isa.V(12), isa.V(13))
						ld(isa.V(14), swU, i, j0, 0)
						bd.VV(isa.OpVADDT, isa.V(12), isa.V(12), isa.V(14))
						st(isa.V(12), swUN, i, j0)
						// VNEW = V - tdts8*(Z+Z_c)*(CU+CU_r) - tdtsdy*(H_r-H)
						bd.VV(isa.OpVADDT, isa.V(12), isa.V(0), isa.V(2))
						bd.VV(isa.OpVADDT, isa.V(13), isa.V(5), isa.V(6))
						bd.VV(isa.OpVMULT, isa.V(12), isa.V(12), isa.V(13))
						bd.VS(isa.OpVSMULT, isa.V(12), isa.V(12), cF[2])
						bd.VV(isa.OpVSUBT, isa.V(13), isa.V(10), isa.V(8))
						bd.VS(isa.OpVSMULT, isa.V(13), isa.V(13), cF[4])
						bd.VV(isa.OpVADDT, isa.V(12), isa.V(12), isa.V(13))
						ld(isa.V(14), swV, i, j0, 0)
						bd.VV(isa.OpVSUBT, isa.V(12), isa.V(14), isa.V(12))
						st(isa.V(12), swVN, i, j0)
						// PNEW = P - tdtsdx*(CU_c-CU) - tdtsdy*(CV_r-CV)
						bd.VV(isa.OpVSUBT, isa.V(12), isa.V(7), isa.V(5))
						bd.VS(isa.OpVSMULT, isa.V(12), isa.V(12), cF[3])
						bd.VV(isa.OpVSUBT, isa.V(13), isa.V(11), isa.V(3))
						bd.VS(isa.OpVSMULT, isa.V(13), isa.V(13), cF[4])
						bd.VV(isa.OpVADDT, isa.V(12), isa.V(12), isa.V(13))
						ld(isa.V(14), swP, i, j0, 0)
						bd.VV(isa.OpVSUBT, isa.V(12), isa.V(14), isa.V(12))
						st(isa.V(12), swPN, i, j0)
					})
				}
				for i := lo; i < hi; i++ {
					vchunks(bd, rs, n, func(j0, vl int) {
						ld(isa.V(0), swUN, i, j0, 0)
						st(isa.V(0), swU, i, j0)
						ld(isa.V(1), swVN, i, j0, 0)
						st(isa.V(1), swV, i, j0)
						ld(isa.V(2), swPN, i, j0, 0)
						st(isa.V(2), swP, i, j0)
					})
				}
			}
		}
		bd.Halt()
	}
}

func swimScalar(s Scale) vasm.Kernel {
	n, steps := swimN(s)
	return func(bd *vasm.Builder) {
		swimInit(bd, n)
		pitch, bases := swimLayout(n)
		rowB := int64(pitch) * 8
		cF := [5]isa.Reg{
			constF64(bd, 1, swFsdx), constF64(bd, 2, swFsdy),
			constF64(bd, 3, swTdts8), constF64(bd, 4, swTdtsdx), constF64(bd, 5, swTdtsdy),
		}
		half := constF64(bd, 6, 0.5)
		quarter := constF64(bd, 7, 0.25)
		addr := func(arr, i int) int64 { return int64(bases[arr]) + int64(i)*rowB }
		ldf := func(f isa.Reg, base isa.Reg, off int64) { bd.LdT(f, base, off) }
		for s := 0; s < steps; s++ {
			for lo := 0; lo < n-1; lo += swimBlock {
				hi := min(lo+swimBlock, n-1)
				for i := lo; i <= hi && i < n-1; i++ {
					bd.Li(isa.R(1), addr(swP, i))
					bd.Li(isa.R(2), addr(swP, i+1))
					bd.Li(isa.R(3), addr(swU, i))
					bd.Li(isa.R(4), addr(swU, i+1))
					bd.Li(isa.R(5), addr(swV, i))
					bd.Li(isa.R(6), addr(swCU, i))
					bd.Li(isa.R(7), addr(swCV, i))
					bd.Li(isa.R(8), addr(swZ, i))
					bd.Li(isa.R(10), addr(swH, i))
					bd.Loop(isa.R(16), n, func(int) {
						bd.Prefetch(isa.R(2), 128)
						ldf(isa.F(10), isa.R(1), 0) // P
						ldf(isa.F(11), isa.R(2), 0) // P_r
						ldf(isa.F(12), isa.R(1), 8) // P_c
						ldf(isa.F(13), isa.R(3), 0) // U
						ldf(isa.F(14), isa.R(4), 0) // U_r
						ldf(isa.F(15), isa.R(5), 0) // V
						ldf(isa.F(16), isa.R(5), 8) // V_c
						// CU
						bd.Op3(isa.OpADDT, isa.F(17), isa.F(10), isa.F(11))
						bd.Op3(isa.OpMULT, isa.F(17), isa.F(17), half)
						bd.Op3(isa.OpMULT, isa.F(17), isa.F(17), isa.F(13))
						bd.StT(isa.F(17), isa.R(6), 0)
						// CV
						bd.Op3(isa.OpADDT, isa.F(18), isa.F(10), isa.F(12))
						bd.Op3(isa.OpMULT, isa.F(18), isa.F(18), half)
						bd.Op3(isa.OpMULT, isa.F(18), isa.F(18), isa.F(15))
						bd.StT(isa.F(18), isa.R(7), 0)
						// Z
						bd.Op3(isa.OpSUBT, isa.F(19), isa.F(16), isa.F(15))
						bd.Op3(isa.OpMULT, isa.F(19), isa.F(19), cF[0])
						bd.Op3(isa.OpSUBT, isa.F(20), isa.F(14), isa.F(13))
						bd.Op3(isa.OpMULT, isa.F(20), isa.F(20), cF[1])
						bd.Op3(isa.OpSUBT, isa.F(19), isa.F(19), isa.F(20))
						bd.StT(isa.F(19), isa.R(8), 0)
						// H
						bd.Op3(isa.OpMULT, isa.F(21), isa.F(13), isa.F(13))
						bd.Op3(isa.OpMULT, isa.F(22), isa.F(15), isa.F(15))
						bd.Op3(isa.OpADDT, isa.F(21), isa.F(21), isa.F(22))
						bd.Op3(isa.OpMULT, isa.F(21), isa.F(21), quarter)
						bd.Op3(isa.OpADDT, isa.F(21), isa.F(21), isa.F(10))
						bd.StT(isa.F(21), isa.R(10), 0)
						for _, rr := range []int{1, 2, 3, 4, 5, 6, 7, 8, 10} {
							bd.AddImm(isa.R(rr), isa.R(rr), 8)
						}
					})
				}
				for i := lo; i < hi; i++ {
					bd.Li(isa.R(1), addr(swZ, i))
					bd.Li(isa.R(2), addr(swZ, i+1))
					bd.Li(isa.R(3), addr(swCV, i))
					bd.Li(isa.R(4), addr(swCU, i))
					bd.Li(isa.R(5), addr(swCU, i+1))
					bd.Li(isa.R(6), addr(swH, i))
					bd.Li(isa.R(7), addr(swH, i+1))
					bd.Li(isa.R(8), addr(swU, i))
					bd.Li(isa.R(10), addr(swV, i))
					bd.Li(isa.R(11), addr(swP, i))
					bd.Li(isa.R(12), addr(swUN, i))
					bd.Li(isa.R(13), addr(swVN, i))
					bd.Li(isa.R(14), addr(swPN, i))
					bd.Li(isa.R(15), addr(swCV, i+1))
					bd.Loop(isa.R(16), n, func(int) {
						ldf(isa.F(8), isa.R(1), 0)   // Z
						ldf(isa.F(9), isa.R(2), 0)   // Z_r
						ldf(isa.F(10), isa.R(1), 8)  // Z_c
						ldf(isa.F(11), isa.R(3), 0)  // CV
						ldf(isa.F(12), isa.R(3), 8)  // CV_c
						ldf(isa.F(13), isa.R(4), 0)  // CU
						ldf(isa.F(14), isa.R(5), 0)  // CU_r
						ldf(isa.F(15), isa.R(4), 8)  // CU_c
						ldf(isa.F(16), isa.R(6), 0)  // H
						ldf(isa.F(17), isa.R(6), 8)  // H_c
						ldf(isa.F(18), isa.R(7), 0)  // H_r
						ldf(isa.F(19), isa.R(15), 0) // CV_r
						// UNEW
						bd.Op3(isa.OpADDT, isa.F(20), isa.F(8), isa.F(9))
						bd.Op3(isa.OpADDT, isa.F(21), isa.F(11), isa.F(12))
						bd.Op3(isa.OpMULT, isa.F(20), isa.F(20), isa.F(21))
						bd.Op3(isa.OpMULT, isa.F(20), isa.F(20), cF[2])
						bd.Op3(isa.OpSUBT, isa.F(21), isa.F(17), isa.F(16))
						bd.Op3(isa.OpMULT, isa.F(21), isa.F(21), cF[3])
						bd.Op3(isa.OpSUBT, isa.F(20), isa.F(20), isa.F(21))
						ldf(isa.F(22), isa.R(8), 0)
						bd.Op3(isa.OpADDT, isa.F(20), isa.F(20), isa.F(22))
						bd.StT(isa.F(20), isa.R(12), 0)
						// VNEW
						bd.Op3(isa.OpADDT, isa.F(20), isa.F(8), isa.F(10))
						bd.Op3(isa.OpADDT, isa.F(21), isa.F(13), isa.F(14))
						bd.Op3(isa.OpMULT, isa.F(20), isa.F(20), isa.F(21))
						bd.Op3(isa.OpMULT, isa.F(20), isa.F(20), cF[2])
						bd.Op3(isa.OpSUBT, isa.F(21), isa.F(18), isa.F(16))
						bd.Op3(isa.OpMULT, isa.F(21), isa.F(21), cF[4])
						bd.Op3(isa.OpADDT, isa.F(20), isa.F(20), isa.F(21))
						ldf(isa.F(22), isa.R(10), 0)
						bd.Op3(isa.OpSUBT, isa.F(20), isa.F(22), isa.F(20))
						bd.StT(isa.F(20), isa.R(13), 0)
						// PNEW
						bd.Op3(isa.OpSUBT, isa.F(20), isa.F(15), isa.F(13))
						bd.Op3(isa.OpMULT, isa.F(20), isa.F(20), cF[3])
						bd.Op3(isa.OpSUBT, isa.F(21), isa.F(19), isa.F(11))
						bd.Op3(isa.OpMULT, isa.F(21), isa.F(21), cF[4])
						bd.Op3(isa.OpADDT, isa.F(20), isa.F(20), isa.F(21))
						ldf(isa.F(22), isa.R(11), 0)
						bd.Op3(isa.OpSUBT, isa.F(20), isa.F(22), isa.F(20))
						bd.StT(isa.F(20), isa.R(14), 0)
						for _, rr := range []int{1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 14, 15} {
							bd.AddImm(isa.R(rr), isa.R(rr), 8)
						}
					})
				}
				for i := lo; i < hi; i++ {
					bd.Li(isa.R(1), addr(swUN, i))
					bd.Li(isa.R(2), addr(swU, i))
					bd.Li(isa.R(3), addr(swVN, i))
					bd.Li(isa.R(4), addr(swV, i))
					bd.Li(isa.R(5), addr(swPN, i))
					bd.Li(isa.R(6), addr(swP, i))
					bd.Loop(isa.R(16), n/4, func(int) {
						for u := 0; u < 4; u++ {
							off := int64(u * 8)
							bd.LdT(isa.F(8), isa.R(1), off)
							bd.StT(isa.F(8), isa.R(2), off)
							bd.LdT(isa.F(9), isa.R(3), off)
							bd.StT(isa.F(9), isa.R(4), off)
							bd.LdT(isa.F(10), isa.R(5), off)
							bd.StT(isa.F(10), isa.R(6), off)
						}
						for _, rr := range []int{1, 2, 3, 4, 5, 6} {
							bd.AddImm(isa.R(rr), isa.R(rr), 32)
						}
					})
				}
			}
		}
		bd.Halt()
	}
}

func swimCheck(m *arch.Machine, s Scale) error {
	n, steps := swimN(s)
	pitch, bases := swimLayout(n)
	want := swimRef(n, steps)
	for _, arr := range []int{swP, swU, swV} {
		for i := 1; i < n-2; i += 17 {
			for j := 1; j < n-1; j += 13 {
				got := ffrom(m.Mem.LoadQ(bases[arr] + uint64(i*pitch+j)*8))
				w := want[arr][i*pitch+j]
				if math.Abs(got-w) > 1e-9*math.Max(1, math.Abs(w)) {
					return fmt.Errorf("swim: field %d [%d][%d] = %g, want %g", arr, i, j, got, w)
				}
			}
		}
	}
	return nil
}

var benchSwim = register(&Benchmark{
	Name:   "swim",
	Class:  "SpecFP2000",
	Desc:   "shallow water model, tiled stencil sweeps",
	Pref:   true,
	Vector: swimVector,
	Scalar: swimScalar,
	Check:  swimCheck,
})

// swim_untiled is the §6 tiling experiment: the same shallow-water sweeps
// with no row blocking. Sized above the L2 it shows the paper's "almost 2X
// slower" result; the ablation benchmark runs the comparison.
var benchSwimUntiled = register(&Benchmark{
	Name:  "swim_untiled",
	Class: "Extensions",
	Desc:  "swim without tiling (the §6 naive-version experiment)",
	Pref:  true,
	Vector: func(s Scale) vasm.Kernel {
		n, steps := swimN(s)
		return swimVectorBlocked(n, steps, n) // one block: no tiling
	},
	Scalar: swimScalar, // baseline unchanged
	Check:  swimCheck,  // identical arithmetic, identical result
})
