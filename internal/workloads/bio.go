package workloads

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/vasm"
)

// ---- moldyn: molecular dynamics, 500-molecule system (Table 2) ----
//
// The hot loop is the pair-force computation over each molecule's neighbour
// list: a gather of neighbour positions, a cutoff comparison that becomes a
// vector mask (the paper singles out moldyn's masks as a speedup source:
// "by executing under mask, Tarantula avoids hard-to-predict branches"),
// a masked force evaluation, and a masked scatter-accumulate back into the
// neighbour forces. The i-molecule's own accumulation reduces through the
// cache, and each outer iteration ends in the scalar force update that
// makes the following vector pass require DrainM.
//
// One simplification (EXPERIMENTS.md): the Lennard-Jones 1/r² terms are
// replaced by a quadratic polynomial in r² so the unpipelined vector divide
// does not swamp the masked-arithmetic behaviour under study.

func moldynN(s Scale) (mols, steps, maxNbr int) {
	switch s {
	case Test:
		return 200, 1, 64
	case Full:
		return 500, 4, 96
	}
	return 500, 2, 96
}

const (
	mdCutoff2 = 0.10 // squared cutoff radius
	mdC0      = 3.0
	mdC1      = 0.5
	mdDt      = 1e-4
)

type mdSystem struct {
	n       int
	x, y, z []float64
	nbr     [][]int // neighbour list (j > i within skin radius)
}

func buildMD(n, maxNbr int) *mdSystem {
	rng := newLCG(97)
	s := &mdSystem{n: n}
	s.x = make([]float64, n)
	s.y = make([]float64, n)
	s.z = make([]float64, n)
	for i := 0; i < n; i++ {
		s.x[i] = float64(rng.intn(1000)) / 1000
		s.y[i] = float64(rng.intn(1000)) / 1000
		s.z[i] = float64(rng.intn(1000)) / 1000
	}
	skin2 := mdCutoff2 * 2.5
	s.nbr = make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && len(s.nbr[i]) < maxNbr; j++ {
			dx, dy, dz := s.x[i]-s.x[j], s.y[i]-s.y[j], s.z[i]-s.z[j]
			if dx*dx+dy*dy+dz*dz < skin2 {
				s.nbr[i] = append(s.nbr[i], j)
			}
		}
	}
	return s
}

// force returns the polynomial pair force given squared distance.
func mdForce(r2 float64) float64 { return (mdC0 - r2) * (mdC1 - r2) }

// mdRef mirrors the kernels: per step, pair forces over neighbour lists,
// then a position update x += f·dt.
func mdRef(n, steps, maxNbr int) (x, y, z []float64) {
	s := buildMD(n, maxNbr)
	x, y, z = s.x, s.y, s.z
	fx := make([]float64, n)
	fy := make([]float64, n)
	fz := make([]float64, n)
	for t := 0; t < steps; t++ {
		for i := range fx {
			fx[i], fy[i], fz[i] = 0, 0, 0
		}
		for i := 0; i < n; i++ {
			for _, j := range s.nbr[i] {
				dx, dy, dz := x[i]-x[j], y[i]-y[j], z[i]-z[j]
				r2 := dx*dx + dy*dy + dz*dz
				if r2 < mdCutoff2 {
					f := mdForce(r2)
					fx[i] += f * dx
					fy[i] += f * dy
					fz[i] += f * dz
					fx[j] -= f * dx
					fy[j] -= f * dy
					fz[j] -= f * dz
				}
			}
		}
		for i := 0; i < n; i++ {
			x[i] += fx[i] * mdDt
			y[i] += fy[i] * mdDt
			z[i] += fz[i] * mdDt
		}
	}
	return
}

// layout: x,y,z,fx,fy,fz then per-i neighbour offset lists.
func mdLayout(n int) (pos [6]uint64, nbrBase, scratch uint64) {
	addr := uint64(1 << 20)
	for i := range pos {
		pos[i] = addr
		addr += uint64(n)*8 + 256
	}
	nbrBase = addr
	return
}

func moldynVector(s Scale) vasm.Kernel {
	n, steps, maxNbr := moldynN(s)
	return func(bd *vasm.Builder) {
		sys := buildMD(n, maxNbr)
		pos, nbrBase, _ := mdLayout(n)
		fillF64(bd, pos[0], sys.x)
		fillF64(bd, pos[1], sys.y)
		fillF64(bd, pos[2], sys.z)
		// Neighbour lists as byte offsets, one padded block per molecule.
		nbrOff := make([]uint64, n)
		addr := nbrBase
		for i := 0; i < n; i++ {
			nbrOff[i] = addr
			for _, j := range sys.nbr[i] {
				bd.M.Mem.StoreQ(addr, uint64(j)*8)
				addr += 8
			}
			addr = (addr + 1023) &^ 1023
		}
		scratch := (addr + 1023) &^ 1023
		rs := isa.R(9)
		cut := constF64(bd, 1, mdCutoff2)
		c0 := constF64(bd, 2, mdC0)
		c1 := constF64(bd, 3, mdC1)
		dt := constF64(bd, 4, mdDt)
		one := isa.R(10)
		bd.Li(one, 1)
		bd.SetVSImm(rs, 8)
		for t := 0; t < steps; t++ {
			// Zero forces.
			vchunks(bd, rs, n, func(o, vl int) {
				bd.VV(isa.OpVXOR, isa.V(0), isa.V(0), isa.V(0))
				for a := 3; a < 6; a++ {
					bd.Li(isa.R(1), int64(pos[a])+int64(o)*8)
					bd.VStQ(isa.V(0), isa.R(1), 0)
				}
			})
			for i := 0; i < n; i++ {
				nn := len(sys.nbr[i])
				if nn == 0 {
					continue
				}
				bd.SetVLImm(rs, nn)
				bd.Li(isa.R(1), int64(nbrOff[i]))
				bd.VLdQ(isa.V(1), isa.R(1), 0) // neighbour byte offsets
				// Gather neighbour positions; i's position as VS scalars.
				for a := 0; a < 3; a++ {
					bd.Li(isa.R(2), int64(pos[a]))
					bd.VGath(isa.V(2+a), isa.V(1), isa.R(2))
					bd.Li(isa.R(3), int64(pos[a])+int64(i)*8)
					bd.LdT(isa.F(5+a), isa.R(3), 0)
				}
				// d = pos_i - pos_j  (VS reverse-subtract: d = -(pos_j - s))
				for a := 0; a < 3; a++ {
					bd.VS(isa.OpVSSUBT, isa.V(2+a), isa.V(2+a), isa.F(5+a))
					bd.VV(isa.OpVSUBT, isa.V(2+a), isa.VZero, isa.V(2+a))
				}
				// r² = dx²+dy²+dz²
				bd.VV(isa.OpVMULT, isa.V(5), isa.V(2), isa.V(2))
				bd.VV(isa.OpVMULT, isa.V(6), isa.V(3), isa.V(3))
				bd.VV(isa.OpVADDT, isa.V(5), isa.V(5), isa.V(6))
				bd.VV(isa.OpVMULT, isa.V(6), isa.V(4), isa.V(4))
				bd.VV(isa.OpVADDT, isa.V(5), isa.V(5), isa.V(6))
				// mask = r² < cutoff²  (the §2 idiom: compare into a vector
				// register, then setvm)
				bd.VS(isa.OpVSCMPTLT, isa.V(6), isa.V(5), cut)
				bd.SetVM(isa.V(6))
				// f = (c0 - r²)(c1 - r²) under mask
				bd.VS(isa.OpVSSUBT, isa.V(7), isa.V(5), c0) // r²-c0
				bd.VV(isa.OpVSUBT, isa.V(7), isa.VZero, isa.V(7))
				bd.VS(isa.OpVSSUBT, isa.V(8), isa.V(5), c1)
				bd.VV(isa.OpVSUBT, isa.V(8), isa.VZero, isa.V(8))
				bd.VV(isa.OpVMULT, isa.V(7), isa.V(7), isa.V(8))
				// fcomp per axis (v20..v22), with masked-zero copies for
				// the reduction (v23..v25).
				for a := 0; a < 3; a++ {
					bd.VV(isa.OpVMULT, isa.V(20+a), isa.V(7), isa.V(2+a))
					bd.VV(isa.OpVXOR, isa.V(23+a), isa.V(23+a), isa.V(23+a))
					bd.VVM(isa.OpVBIS, isa.V(23+a), isa.V(20+a), isa.V(20+a))
				}
				// Σ fcomp for molecule i: three interleaved cache folds.
				hsum3(bd, [3]isa.Reg{isa.V(23), isa.V(24), isa.V(25)}, isa.V(11),
					[3]isa.Reg{isa.F(7), isa.F(8), isa.F(9)}, scratch, isa.R(4), isa.R(5), nn)
				bd.SetVSImm(rs, 8)
				bd.SetVLImm(rs, nn)
				for a := 0; a < 3; a++ {
					// f[i] += sum (scalar)
					bd.Li(isa.R(6), int64(pos[3+a])+int64(i)*8)
					bd.LdT(isa.F(15), isa.R(6), 0)
					bd.Op3(isa.OpADDT, isa.F(15), isa.F(15), isa.F(7+a))
					bd.StT(isa.F(15), isa.R(6), 0)
					// f[j] -= fcomp: masked gather-modify-scatter.
					bd.Li(isa.R(7), int64(pos[3+a]))
					bd.Emit(isa.Inst{Op: isa.OpVGATHQ, Dst: isa.V(12), Idx: isa.V(1), Src2: isa.R(7), Masked: true})
					bd.VVM(isa.OpVSUBT, isa.V(12), isa.V(12), isa.V(20+a))
					bd.VScatM(isa.V(12), isa.V(1), isa.R(7))
				}
			}
			// The pair loop updated f[i] with scalar stores sitting in the
			// store queue / write buffer; the vector loads below must see
			// them — the scalar-write → vector-read case DrainM exists for
			// (§3.4). (Within the pair loop no barrier is needed: neighbour
			// lists hold j > i, so gathers never touch scalar-written
			// slots.)
			bd.DrainM()
			// Position update: x += f·dt (unmasked long vectors).
			bd.ClrVM()
			vchunks(bd, rs, n, func(o, vl int) {
				for a := 0; a < 3; a++ {
					bd.Li(isa.R(1), int64(pos[a])+int64(o)*8)
					bd.Li(isa.R(2), int64(pos[3+a])+int64(o)*8)
					bd.VLdQ(isa.V(0), isa.R(1), 0)
					bd.VLdQ(isa.V(1), isa.R(2), 0)
					bd.VS(isa.OpVSMULT, isa.V(1), isa.V(1), dt)
					bd.VV(isa.OpVADDT, isa.V(0), isa.V(0), isa.V(1))
					bd.VStQ(isa.V(0), isa.R(1), 0)
				}
			})
		}
		bd.Halt()
	}
}

func moldynScalar(s Scale) vasm.Kernel {
	n, steps, maxNbr := moldynN(s)
	return func(bd *vasm.Builder) {
		sys := buildMD(n, maxNbr)
		pos, nbrBase, _ := mdLayout(n)
		fillF64(bd, pos[0], sys.x)
		fillF64(bd, pos[1], sys.y)
		fillF64(bd, pos[2], sys.z)
		nbrOff := make([]uint64, n)
		addr := nbrBase
		for i := 0; i < n; i++ {
			nbrOff[i] = addr
			for _, j := range sys.nbr[i] {
				bd.M.Mem.StoreQ(addr, uint64(j)*8)
				addr += 8
			}
			addr = (addr + 1023) &^ 1023
		}
		cut := constF64(bd, 1, mdCutoff2)
		c0 := constF64(bd, 2, mdC0)
		c1 := constF64(bd, 3, mdC1)
		dt := constF64(bd, 4, mdDt)
		for t := 0; t < steps; t++ {
			// Zero forces.
			for a := 3; a < 6; a++ {
				bd.Li(isa.R(1), int64(pos[a]))
				bd.Loop(isa.R(16), n, func(int) {
					bd.StT(isa.FZero, isa.R(1), 0)
					bd.AddImm(isa.R(1), isa.R(1), 8)
				})
			}
			for i := 0; i < n; i++ {
				nn := len(sys.nbr[i])
				if nn == 0 {
					continue
				}
				// i's position and force accumulators in registers.
				for a := 0; a < 3; a++ {
					bd.Li(isa.R(1), int64(pos[a])+int64(i)*8)
					bd.LdT(isa.F(10+a), isa.R(1), 0)
					bd.Op3(isa.OpSUBT, isa.F(13+a), isa.FZero, isa.FZero)
				}
				bd.Li(isa.R(2), int64(nbrOff[i]))
				bd.Loop(isa.R(16), nn, func(int) {
					bd.LdQ(isa.R(3), isa.R(2), 0) // neighbour offset
					for a := 0; a < 3; a++ {
						bd.Li(isa.R(4), int64(pos[a]))
						bd.Op3(isa.OpADDQ, isa.R(5), isa.R(4), isa.R(3))
						bd.LdT(isa.F(16+a), isa.R(5), 0) // pos_j
						bd.Op3(isa.OpSUBT, isa.F(16+a), isa.F(10+a), isa.F(16+a))
					}
					// r²
					bd.Op3(isa.OpMULT, isa.F(20), isa.F(16), isa.F(16))
					bd.Op3(isa.OpMULT, isa.F(21), isa.F(17), isa.F(17))
					bd.Op3(isa.OpADDT, isa.F(20), isa.F(20), isa.F(21))
					bd.Op3(isa.OpMULT, isa.F(21), isa.F(18), isa.F(18))
					bd.Op3(isa.OpADDT, isa.F(20), isa.F(20), isa.F(21))
					// The cutoff branch the vector code replaces by a mask —
					// data-dependent and hard to predict.
					bd.Op3(isa.OpCMPTLT, isa.R(6), isa.F(20), cut)
					bd.Emit(isa.Inst{Op: isa.OpBEQ, Src1: isa.R(6), Imm: 1})
					if ffrom(bd.M.F[20]) < mdCutoff2 {
						bd.Op3(isa.OpSUBT, isa.F(21), c0, isa.F(20))
						bd.Op3(isa.OpSUBT, isa.F(22), c1, isa.F(20))
						bd.Op3(isa.OpMULT, isa.F(21), isa.F(21), isa.F(22))
						for a := 0; a < 3; a++ {
							bd.Op3(isa.OpMULT, isa.F(23), isa.F(21), isa.F(16+a))
							bd.Op3(isa.OpADDT, isa.F(13+a), isa.F(13+a), isa.F(23))
							bd.Li(isa.R(4), int64(pos[3+a]))
							bd.Op3(isa.OpADDQ, isa.R(5), isa.R(4), isa.R(3))
							bd.LdT(isa.F(24), isa.R(5), 0)
							bd.Op3(isa.OpSUBT, isa.F(24), isa.F(24), isa.F(23))
							bd.StT(isa.F(24), isa.R(5), 0)
						}
					}
					bd.AddImm(isa.R(2), isa.R(2), 8)
				})
				for a := 0; a < 3; a++ {
					bd.Li(isa.R(1), int64(pos[3+a])+int64(i)*8)
					bd.LdT(isa.F(25), isa.R(1), 0)
					bd.Op3(isa.OpADDT, isa.F(25), isa.F(25), isa.F(13+a))
					bd.StT(isa.F(25), isa.R(1), 0)
				}
			}
			for a := 0; a < 3; a++ {
				bd.Li(isa.R(1), int64(pos[a]))
				bd.Li(isa.R(2), int64(pos[3+a]))
				bd.Loop(isa.R(16), n, func(int) {
					bd.LdT(isa.F(8), isa.R(1), 0)
					bd.LdT(isa.F(9), isa.R(2), 0)
					bd.Op3(isa.OpMULT, isa.F(9), isa.F(9), dt)
					bd.Op3(isa.OpADDT, isa.F(8), isa.F(8), isa.F(9))
					bd.StT(isa.F(8), isa.R(1), 0)
					bd.AddImm(isa.R(1), isa.R(1), 8)
					bd.AddImm(isa.R(2), isa.R(2), 8)
				})
			}
		}
		bd.Halt()
	}
}

func moldynCheck(m *arch.Machine, s Scale) error {
	n, steps, maxNbr := moldynN(s)
	pos, _, _ := mdLayout(n)
	wx, wy, wz := mdRef(n, steps, maxNbr)
	for i := 0; i < n; i += 7 {
		for a, want := range [][]float64{wx, wy, wz} {
			got := ffrom(m.Mem.LoadQ(pos[a] + uint64(i)*8))
			if math.Abs(got-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				return fmt.Errorf("moldyn: axis %d mol %d = %g, want %g", a, i, got, want[i])
			}
		}
	}
	return nil
}

var benchMoldyn = register(&Benchmark{
	Name:   "moldyn",
	Class:  "Bioinformatics",
	Desc:   "molecular dynamics, 500-molecule system, masked pair forces",
	Pref:   true,
	DrainM: true,
	Vector: moldynVector,
	Scalar: moldynScalar,
	Check:  moldynCheck,
})
