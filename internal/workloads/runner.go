package workloads

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Result is one benchmark execution on one machine.
type Result struct {
	Bench  string
	Config string
	Scale  Scale
	Stats  *stats.Stats
	// Series is the cycle-interval sample series, present only when the
	// configuration armed the sampler (Config.EnableSampling). For ROI
	// benchmarks it covers the whole run including warm-up, since the
	// sampler observes the chip, not the ROI window.
	Series *metrics.SeriesDump
	// SimCycles and WallNs are the chip's total simulated cycles (all
	// phases, drain included) and the wall-clock nanoseconds its cycle
	// loop consumed — the run's simulation throughput, independent of
	// trace-construction and verification overhead.
	SimCycles uint64
	WallNs    int64
	// WarmupCycles is the cycle cost of the warm-up phase (0 when the
	// benchmark has none); WarmupRestored reports it was restored from a
	// snapshot instead of simulated, in which case SimCycles still counts
	// it (restore lands the clock at the boundary) but WallNs does not.
	WarmupCycles   uint64
	WarmupRestored bool
}

// MCPS returns the run's simulation throughput in millions of simulated
// cycles per wall-clock second (0 when no loop time was recorded).
func (r *Result) MCPS() float64 {
	if r.WallNs <= 0 {
		return 0
	}
	return float64(r.SimCycles) / (float64(r.WallNs) / 1e9) / 1e6
}

// OPC returns the Figure 6 quantities.
func (r *Result) OPC() (opc, fpc, mpc, other float64) { return r.Stats.OPC() }

// Run executes the benchmark on cfg, using the vector kernel when the
// machine has a Vbox and the scalar kernel otherwise. The warm-up setup
// phase (when the benchmark defines one) is excluded from the returned
// statistics, and the functional result is verified. A wedged, deadlined
// or invariant-violating run comes back as an error (a *sim.WedgeError
// wrapped with the benchmark/machine pair), not a panic.
func (b *Benchmark) Run(cfg *sim.Config, s Scale) (*Result, error) {
	return b.RunOpt(cfg, s, RunOpts{})
}

// RunOpts carries the optional warm-up snapshot hooks of one execution.
type RunOpts struct {
	// WarmupSnapshot, when non-nil, restores the post-Setup chip state
	// from the blob instead of simulating the warm-up phase. It must have
	// been captured for the same benchmark, scale and warm-up key
	// (confhash.WarmupKey); only meaningful for benchmarks with a Setup.
	WarmupSnapshot []byte
	// OnWarmupSnapshot, when non-nil, receives the chip state captured at
	// the post-Setup boundary. Ignored when WarmupSnapshot skipped the
	// warm-up, or when the benchmark has no Setup.
	OnWarmupSnapshot func(cycle uint64, blob []byte)
}

// RunOpt is Run with warm-up snapshot hooks: restore the post-Setup state
// instead of simulating it, or capture that state for later reuse.
func (b *Benchmark) RunOpt(cfg *sim.Config, s Scale, opts RunOpts) (*Result, error) {
	kernelFn := b.Scalar
	if cfg.HasVbox {
		kernelFn = b.Vector
	}
	spec := sim.RunSpec{Config: cfg, Kernel: kernelFn(s)}
	if b.Setup != nil {
		spec.Setup = b.Setup(s, cfg.HasVbox)
		spec.WarmupSnapshot = opts.WarmupSnapshot
		spec.OnWarmupSnapshot = opts.OnWarmupSnapshot
	}
	out, err := sim.Execute(spec)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", b.Name, cfg.Name, err)
	}
	if b.Check != nil {
		if err := b.Check(out.Machine, s); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", b.Name, cfg.Name, err)
		}
	}
	return &Result{
		Bench: b.Name, Config: cfg.Name, Scale: s,
		Stats: out.Stats, Series: out.Series,
		SimCycles: out.SimCycles, WallNs: int64(out.SimWall),
		WarmupCycles: out.WarmupCycles, WarmupRestored: out.WarmupRestored,
	}, nil
}
