package workloads

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Result is one benchmark execution on one machine.
type Result struct {
	Bench  string
	Config string
	Scale  Scale
	Stats  *stats.Stats
	// Series is the cycle-interval sample series, present only when the
	// configuration armed the sampler (Config.EnableSampling). For ROI
	// benchmarks it covers the whole run including warm-up, since the
	// sampler observes the chip, not the ROI window.
	Series *metrics.SeriesDump
}

// OPC returns the Figure 6 quantities.
func (r *Result) OPC() (opc, fpc, mpc, other float64) { return r.Stats.OPC() }

// Run executes the benchmark on cfg, using the vector kernel when the
// machine has a Vbox and the scalar kernel otherwise. The warm-up setup
// phase (when the benchmark defines one) is excluded from the returned
// statistics, and the functional result is verified. A wedged, deadlined
// or invariant-violating run comes back as an error (a *sim.WedgeError
// wrapped with the benchmark/machine pair), not a panic.
func (b *Benchmark) Run(cfg *sim.Config, s Scale) (*Result, error) {
	var series *metrics.SeriesDump
	if every, _ := cfg.Sampling(); every > 0 {
		// Capture the series through a private copy so the caller's
		// config (often shared across cells) keeps its own callback.
		cc := *cfg
		cc.SetOnSeries(func(d *metrics.SeriesDump) { series = d })
		cfg = &cc
	}
	kernelFn := b.Scalar
	if cfg.HasVbox {
		kernelFn = b.Vector
	}
	var st *stats.Stats
	var err error
	if b.Setup != nil {
		stROI, m, rerr := sim.RunROIChecked(cfg, b.Setup(s, cfg.HasVbox), kernelFn(s))
		if rerr != nil {
			return nil, fmt.Errorf("%s on %s: %w", b.Name, cfg.Name, rerr)
		}
		st = stROI
		if b.Check != nil {
			err = b.Check(m, s)
		}
	} else {
		stRun, m, rerr := sim.RunChecked(cfg, kernelFn(s))
		if rerr != nil {
			return nil, fmt.Errorf("%s on %s: %w", b.Name, cfg.Name, rerr)
		}
		st = stRun
		if b.Check != nil {
			err = b.Check(m, s)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", b.Name, cfg.Name, err)
	}
	return &Result{Bench: b.Name, Config: cfg.Name, Scale: s, Stats: st, Series: series}, nil
}
