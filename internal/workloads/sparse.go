package workloads

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/vasm"
)

// ---- sparse MxV: y = A·x in CSR, vectorised jagged-diagonal style ----
//
// The hand-vectorised form is the classic jagged-diagonal (Ellpack-T)
// transform: rows are sorted by length and processed 128 at a time, one
// "diagonal" per vector instruction — a stride-1 load of values, a stride-1
// load of column offsets, and a gather of x. The y results scatter back
// through the row permutation. Gathers dominate, which is why sparse MxV
// sits at the low end of Figure 6.

type csrMatrix struct {
	n      int
	rowPtr []int
	cols   []int
	vals   []float64
	nnz    int
	perm   []int // rows sorted by descending length
}

func sparseN(s Scale) (rows, avgNnz int) {
	switch s {
	case Test:
		return 512, 12
	case Full:
		return 24576, 36
	}
	return 8192, 36
}

func buildCSR(rows, avgNnz int) *csrMatrix {
	rng := newLCG(31)
	m := &csrMatrix{n: rows, rowPtr: make([]int, rows+1)}
	for i := 0; i < rows; i++ {
		nnz := avgNnz/2 + rng.intn(avgNnz)
		m.rowPtr[i+1] = m.rowPtr[i] + nnz
		for k := 0; k < nnz; k++ {
			m.cols = append(m.cols, rng.intn(rows))
			m.vals = append(m.vals, float64(rng.intn(17))-8)
		}
	}
	m.nnz = len(m.vals)
	m.perm = make([]int, rows)
	for i := range m.perm {
		m.perm[i] = i
	}
	sort.SliceStable(m.perm, func(a, b int) bool {
		la := m.rowPtr[m.perm[a]+1] - m.rowPtr[m.perm[a]]
		lb := m.rowPtr[m.perm[b]+1] - m.rowPtr[m.perm[b]]
		return la > lb
	})
	return m
}

func (m *csrMatrix) rowLen(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// sparseJagged lays the matrix out for the vector kernel. For each chunk of
// 128 sorted rows and each diagonal t, the values and column byte-offsets of
// every chunk row longer than t are stored contiguously.
type jagged struct {
	valBase, colBase, permBase, xBase, yBase uint64
	chunks                                   []jChunk
}

type jChunk struct {
	rows    int
	diags   []jDiag
	permOff uint64 // byte offset of this chunk's row-index table
}

type jDiag struct {
	off uint64 // byte offset into valBase/colBase
	cnt int
}

func buildJagged(bd *vasm.Builder, m *csrMatrix) *jagged {
	j := &jagged{}
	j.xBase = 1 << 20
	j.yBase = j.xBase + uint64(m.n)*8 + 4096
	j.permBase = j.yBase + uint64(m.n)*8 + 4096
	j.valBase = j.permBase + uint64(m.n)*8 + 4096
	j.colBase = j.valBase + uint64(m.nnz)*8 + 4096
	for i := 0; i < m.n; i++ {
		bd.M.Mem.StoreQ(j.xBase+uint64(i)*8, fbits(1.0+float64(i%13)*0.25))
		bd.M.Mem.StoreQ(j.yBase+uint64(i)*8, 0)
	}
	for i, p := range m.perm {
		bd.M.Mem.StoreQ(j.permBase+uint64(i)*8, uint64(p)*8) // byte offsets into y
	}
	pos := 0
	for c0 := 0; c0 < m.n; c0 += isa.VLMax {
		rows := min(isa.VLMax, m.n-c0)
		ch := jChunk{rows: rows, permOff: uint64(c0) * 8}
		maxLen := m.rowLen(m.perm[c0])
		for t := 0; t < maxLen; t++ {
			d := jDiag{off: uint64(pos) * 8}
			for r := 0; r < rows; r++ {
				row := m.perm[c0+r]
				if m.rowLen(row) <= t {
					break // rows sorted descending: the rest are shorter
				}
				e := m.rowPtr[row] + t
				bd.M.Mem.StoreQ(j.valBase+uint64(pos)*8, fbits(m.vals[e]))
				bd.M.Mem.StoreQ(j.colBase+uint64(pos)*8, uint64(m.cols[e])*8)
				pos++
				d.cnt++
			}
			ch.diags = append(ch.diags, d)
		}
		j.chunks = append(j.chunks, ch)
	}
	return j
}

func sparseVector(s Scale) vasm.Kernel {
	rows, avg := sparseN(s)
	return func(bd *vasm.Builder) {
		m := buildCSR(rows, avg)
		j := buildJagged(bd, m)
		rs := isa.R(9)
		rV, rC, rX, rP, rY := isa.R(1), isa.R(2), isa.R(3), isa.R(4), isa.R(5)
		bd.Li(rX, int64(j.xBase))
		bd.Li(rY, int64(j.yBase))
		bd.SetVSImm(rs, 8)
		for _, ch := range j.chunks {
			bd.SetVLImm(rs, ch.rows)
			bd.VV(isa.OpVXOR, isa.V(4), isa.V(4), isa.V(4)) // y accumulator
			for _, d := range ch.diags {
				bd.SetVLImm(rs, d.cnt)
				bd.Li(rV, int64(j.valBase+d.off))
				bd.Li(rC, int64(j.colBase+d.off))
				bd.VPref(rV, chunkBytes)
				bd.VLdQ(isa.V(0), rV, 0)         // values
				bd.VLdQ(isa.V(1), rC, 0)         // column byte offsets
				bd.VGath(isa.V(2), isa.V(1), rX) // x[col]
				bd.VV(isa.OpVMULT, isa.V(0), isa.V(0), isa.V(2))
				bd.VV(isa.OpVADDT, isa.V(4), isa.V(4), isa.V(0))
			}
			// Scatter the chunk's y values through the row permutation.
			bd.SetVLImm(rs, ch.rows)
			bd.Li(rP, int64(j.permBase+ch.permOff))
			bd.VLdQ(isa.V(5), rP, 0)
			bd.VScat(isa.V(4), isa.V(5), rY)
		}
		bd.Halt()
	}
}

func sparseScalar(s Scale) vasm.Kernel {
	rows, avg := sparseN(s)
	return func(bd *vasm.Builder) {
		m := buildCSR(rows, avg)
		j := buildJagged(bd, m) // same memory image; scalar walks CSR order
		// Store CSR vals/cols contiguously too (reuse jagged arrays is
		// wrong for CSR order, so lay down a scalar-friendly copy).
		csrVal := j.colBase + uint64(m.nnz)*8 + 4096
		csrCol := csrVal + uint64(m.nnz)*8 + 4096
		for e := 0; e < m.nnz; e++ {
			bd.M.Mem.StoreQ(csrVal+uint64(e)*8, fbits(m.vals[e]))
			bd.M.Mem.StoreQ(csrCol+uint64(e)*8, uint64(m.cols[e])*8)
		}
		rV, rC, rX, rY := isa.R(1), isa.R(2), isa.R(3), isa.R(4)
		bd.Li(rV, int64(csrVal))
		bd.Li(rC, int64(csrCol))
		bd.Li(rX, int64(j.xBase))
		// Four accumulators and 4-way unrolling break the FP-add recurrence
		// (a compiler-grade CSR inner loop).
		acc := []isa.Reg{isa.F(1), isa.F(4), isa.F(5), isa.F(6)}
		for i := 0; i < m.n; i++ {
			for _, a := range acc {
				bd.Op3(isa.OpSUBT, a, isa.FZero, isa.FZero)
			}
			nnz := m.rowLen(i)
			elem := func(u int) {
				off := int64(u * 8)
				bd.LdT(isa.F(2), rV, off)
				bd.LdQ(isa.R(10), rC, off)
				bd.Op3(isa.OpADDQ, isa.R(11), isa.R(10), rX)
				bd.LdT(isa.F(3), isa.R(11), 0)
				bd.Op3(isa.OpMULT, isa.F(2), isa.F(2), isa.F(3))
				bd.Op3(isa.OpADDT, acc[u%4], acc[u%4], isa.F(2))
			}
			bd.Loop(isa.R(16), nnz/4, func(int) {
				bd.Prefetch(rV, 192)
				for u := 0; u < 4; u++ {
					elem(u)
				}
				bd.AddImm(rV, rV, 32)
				bd.AddImm(rC, rC, 32)
			})
			for u := 0; u < nnz%4; u++ {
				elem(u)
			}
			if r := nnz % 4; r > 0 {
				bd.AddImm(rV, rV, int64(r)*8)
				bd.AddImm(rC, rC, int64(r)*8)
			}
			bd.Op3(isa.OpADDT, isa.F(1), isa.F(1), isa.F(4))
			bd.Op3(isa.OpADDT, isa.F(5), isa.F(5), isa.F(6))
			bd.Op3(isa.OpADDT, isa.F(1), isa.F(1), isa.F(5))
			bd.Li(rY, int64(j.yBase)+int64(i)*8)
			bd.StT(isa.F(1), rY, 0)
		}
		bd.Halt()
	}
}

func sparseCheck(m *arch.Machine, s Scale) error {
	rows, avg := sparseN(s)
	mat := buildCSR(rows, avg)
	x := make([]float64, rows)
	for i := range x {
		x[i] = 1.0 + float64(i%13)*0.25
	}
	yBase := uint64(1<<20) + uint64(rows)*8 + 4096
	for i := 0; i < rows; i += 37 {
		want := 0.0
		for e := mat.rowPtr[i]; e < mat.rowPtr[i+1]; e++ {
			want += mat.vals[e] * x[mat.cols[e]]
		}
		got := ffrom(m.Mem.LoadQ(yBase + uint64(i)*8))
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			return fmt.Errorf("sparsemxv: y[%d] = %g, want %g", i, got, want)
		}
	}
	return nil
}

var benchSparse = register(&Benchmark{
	Name:   "sparsemxv",
	Class:  "Algebra",
	Desc:   "sparse matrix-vector product, jagged-diagonal vectorisation",
	Pref:   true,
	Vector: sparseVector,
	Scalar: sparseScalar,
	Check:  sparseCheck,
})
