package workloads

import (
	"testing"

	"repro/internal/sim"
)

func simT() *sim.Config { return sim.T() }

// runBoth executes a benchmark at Test scale on Tarantula and EV8, checking
// functional correctness on both, and returns the two results.
func runBoth(t *testing.T, name string) (vec, sc *Result) {
	t.Helper()
	b, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	vec, err = b.Run(sim.T(), Test)
	if err != nil {
		t.Fatalf("vector run: %v", err)
	}
	sc, err = b.Run(sim.EV8(), Test)
	if err != nil {
		t.Fatalf("scalar run: %v", err)
	}
	if vec.Stats.VectorIns == 0 {
		t.Errorf("%s vector kernel retired no vector instructions", name)
	}
	if sc.Stats.VectorIns != 0 {
		t.Errorf("%s scalar kernel retired vector instructions", name)
	}
	opcV, _, _, _ := vec.OPC()
	opcS, _, _, _ := sc.OPC()
	t.Logf("%s: T %d cy (opc %.2f) | EV8 %d cy (opc %.2f) | speedup %.2fx",
		name, vec.Stats.Cycles, opcV, sc.Stats.Cycles, opcS,
		float64(sc.Stats.Cycles)/float64(vec.Stats.Cycles))
	return vec, sc
}

func TestRegistryComplete(t *testing.T) {
	// Table 2 lists fifteen benchmarks.
	want := []string{
		"streams_copy", "streams_scale", "streams_add", "streams_triadd",
		"rndcopy", "rndmemscale",
		"swim", "art", "sixtrack",
		"dgemm", "dtrmm", "sparsemxv", "fft", "lu", "linpack100", "linpacktpp",
		"moldyn", "ccradix",
	}
	for _, n := range want {
		if _, err := Get(n); err != nil {
			t.Errorf("missing benchmark %s", n)
		}
	}
}

func TestDgemm(t *testing.T)      { runBoth(t, "dgemm") }
func TestDtrmm(t *testing.T)      { runBoth(t, "dtrmm") }
func TestLU(t *testing.T)         { runBoth(t, "lu") }
func TestLinpack100(t *testing.T) { runBoth(t, "linpack100") }
func TestLinpackTPP(t *testing.T) { runBoth(t, "linpacktpp") }

func TestStreamsCopy(t *testing.T)  { runBoth(t, "streams_copy") }
func TestStreamsTriad(t *testing.T) { runBoth(t, "streams_triadd") }
func TestRndCopy(t *testing.T)      { runBoth(t, "rndcopy") }
func TestRndMemScale(t *testing.T)  { runBoth(t, "rndmemscale") }

func TestSwim(t *testing.T) { runBoth(t, "swim") }

func TestArt(t *testing.T)      { runBoth(t, "art") }
func TestSixtrack(t *testing.T) { runBoth(t, "sixtrack") }

func TestSparseMxV(t *testing.T) { runBoth(t, "sparsemxv") }
func TestFFT(t *testing.T)       { runBoth(t, "fft") }

func TestMoldyn(t *testing.T) { runBoth(t, "moldyn") }

func TestCcradix(t *testing.T) { runBoth(t, "ccradix") }

func TestDgemmFMA(t *testing.T) {
	fma, _ := runBoth(t, "dgemm_fma")
	base, err := Get("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := base.Run(simT(), Test)
	if err != nil {
		t.Fatal(err)
	}
	speed := float64(ref.Stats.Cycles) / float64(fma.Stats.Cycles)
	t.Logf("FMA over mul+add on dgemm: %.2fx (paper §5: ≈2x peak)", speed)
	if speed < 1.4 {
		t.Fatalf("FMA kernel only %.2fx faster; expected a large win", speed)
	}
	if fma.Stats.Flops != ref.Stats.Flops {
		t.Fatalf("flop counts differ: fma %d vs base %d", fma.Stats.Flops, ref.Stats.Flops)
	}
}

func TestSwimUntiledCorrect(t *testing.T) {
	b, err := Get("swim_untiled")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(sim.T(), Test)
	if err != nil {
		t.Fatalf("untiled swim functional check failed: %v", err)
	}
	tiled, _ := Get("swim")
	ref, err := tiled.Run(sim.T(), Test)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("untiled %d cy vs tiled %d cy at Test scale (L2-resident: expect parity)",
		res.Stats.Cycles, ref.Stats.Cycles)
}

func TestVectorPctColumn(t *testing.T) {
	// Table 2's Vect.% column: every vector kernel should be dominantly
	// vectorised (>90%).
	for _, name := range Figure6Set() {
		b, _ := Get(name)
		res, err := b.Run(sim.T(), Test)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pct := res.Stats.VectorPct(); pct < 90 {
			t.Errorf("%s: vectorisation %.1f%% — kernel is not vector-dominated", name, pct)
		}
	}
}
