package workloads

import (
	"math"

	"repro/internal/isa"
	"repro/internal/vasm"
)

// Register conventions shared by the kernels, so the hand-written assembly
// stays readable: r1–r8 pointers/counters, r9–r15 scratch, r16+ loop
// counters; f1–f7 scalar constants; v0–v15 data, v16+ scratch.

func fbits(v float64) uint64 { return math.Float64bits(v) }
func ffrom(b uint64) float64 { return math.Float64frombits(b) }

// lcg is a small deterministic generator for index/key arrays so runs are
// reproducible without package math/rand state.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 17
}

func (l *lcg) intn(n int) int { return int(l.next() % uint64(n)) }

// fillF64 writes vals[i] into the simulated array at base (host-side setup,
// untimed — initialised memory before the timer starts).
func fillF64(b *vasm.Builder, base uint64, vals []float64) {
	for i, v := range vals {
		b.M.Mem.StoreQ(base+uint64(i)*8, fbits(v))
	}
}

// fillQ writes integer values.
func fillQ(b *vasm.Builder, base uint64, vals []uint64) {
	for i, v := range vals {
		b.M.Mem.StoreQ(base+uint64(i)*8, v)
	}
}

// constF64 places v in scalar float register f (host-side, stands in for a
// load from the constant pool outside the timed loop).
func constF64(b *vasm.Builder, f int, v float64) isa.Reg {
	b.M.WriteF(f, v)
	return isa.F(f)
}

// vchunks iterates a range [0,n) in vector-length chunks, emitting a SETVL
// when the chunk is shorter than the current one. body receives the element
// offset and the chunk length. The loop-closing branch uses one static site
// via b.Loop when chunk counts allow, otherwise bodies are emitted straight.
func vchunks(b *vasm.Builder, scratch isa.Reg, n int, body func(off, vl int)) {
	full := n / isa.VLMax
	if full > 0 {
		b.SetVLImm(scratch, isa.VLMax)
		for c := 0; c < full; c++ {
			body(c*isa.VLMax, isa.VLMax)
		}
	}
	if rem := n % isa.VLMax; rem > 0 {
		b.SetVLImm(scratch, rem)
		body(full*isa.VLMax, rem)
	}
}

// hsum reduces vector register v horizontally into scalar register fd using
// the memory-folding idiom (store, reload halves, add) — Tarantula has no
// reduction instruction and the VEXTR round trip costs 20 cycles, so real
// kernels fold through the cache. scratch is a 1 KiB aligned buffer, rs an
// integer scratch register, vl the live length of v. vt is clobbered.
func hsum(b *vasm.Builder, v, vt isa.Reg, fd isa.Reg, scratch uint64, rs, rbase isa.Reg, vl int) {
	// Pad the buffer with zeros so folds read zeros beyond vl.
	for i := 0; i < isa.VLMax; i++ {
		// Host-side zeroing would be untimed; a real kernel keeps a
		// persistent zeroed pad. We model that persistent pad.
		if i >= vl {
			b.M.Mem.StoreQ(scratch+uint64(i)*8, 0)
		}
	}
	b.Li(rbase, int64(scratch))
	b.SetVSImm(rs, 8)
	b.SetVLImm(rs, vl)
	b.VStQ(v, rbase, 0)
	for width := 64; width >= 1; width /= 2 {
		b.SetVLImm(rs, width)
		b.VLdQ(vt, rbase, 0)
		b.VLdQ(v, rbase, int64(width)*8)
		b.VV(isa.OpVADDT, vt, vt, v)
		b.VStQ(vt, rbase, 0)
	}
	b.LdT(fd, rbase, 0)
}

// reference helpers for Check functions

func refMatMul(a, bm []float64, n, m, p int) []float64 {
	c := make([]float64, n*p)
	for i := 0; i < n; i++ {
		for k := 0; k < m; k++ {
			av := a[i*m+k]
			if av == 0 {
				continue
			}
			row := bm[k*p : (k+1)*p]
			out := c[i*p : (i+1)*p]
			for j := range row {
				out[j] += av * row[j]
			}
		}
	}
	return c
}

// sampleDistinct draws k distinct values from [0,n) (partial Fisher–Yates
// over a lazily materialised permutation).
func (l *lcg) sampleDistinct(n, k int) []int {
	if k > n {
		panic("sampleDistinct: k > n")
	}
	swapped := map[int]int{}
	at := func(i int) int {
		if v, ok := swapped[i]; ok {
			return v
		}
		return i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + l.intn(n-i)
		out[i] = at(j)
		swapped[j] = at(i)
	}
	return out
}

// hsum3 reduces three vector registers at once, interleaving the
// memory-fold chains so their L2 latencies overlap (one chain would
// serialise ~7 dependent round trips). Results land in fd[0..2]. Uses three
// 1 KiB scratch buffers starting at scratch. Clobbers vt, rs, rbase, vl/vs.
func hsum3(b *vasm.Builder, v [3]isa.Reg, vt isa.Reg, fd [3]isa.Reg, scratch uint64, rs, rbase isa.Reg, vl int) {
	for c := 0; c < 3; c++ {
		buf := scratch + uint64(c)*1024
		for i := vl; i < isa.VLMax; i++ {
			b.M.Mem.StoreQ(buf+uint64(i)*8, 0)
		}
	}
	b.SetVSImm(rs, 8)
	b.SetVLImm(rs, vl)
	for c := 0; c < 3; c++ {
		b.Li(rbase, int64(scratch+uint64(c)*1024))
		b.VStQ(v[c], rbase, 0)
	}
	for width := 64; width >= 1; width /= 2 {
		b.SetVLImm(rs, width)
		for c := 0; c < 3; c++ {
			b.Li(rbase, int64(scratch+uint64(c)*1024))
			b.VLdQ(v[c], rbase, 0)
			b.VLdQ(vt, rbase, int64(width)*8)
			b.VV(isa.OpVADDT, v[c], v[c], vt)
			b.VStQ(v[c], rbase, 0)
		}
	}
	for c := 0; c < 3; c++ {
		b.Li(rbase, int64(scratch+uint64(c)*1024))
		b.LdT(fd[c], rbase, 0)
	}
}
