package workloads

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/vasm"
)

// Sizes for the bandwidth microkernels. STREAMS arrays stream once, so they
// are memory-bound at any size; RndCopy is L2-resident by design; and
// RndMemScale's table must exceed the 16 MB L2 to keep "all data from
// memory" true.
func streamsN(s Scale) int {
	switch s {
	case Test:
		return 8 * 1024
	case Full:
		return 2 * 1024 * 1024
	}
	return 512 * 1024
}

func rndCopyN(s Scale) (elems, accesses int) {
	switch s {
	case Test:
		return 16 * 1024, 16 * 1024
	case Full:
		return 512 * 1024, 1024 * 1024
	}
	return 128 * 1024, 256 * 1024
}

func rndMemN(s Scale) (tableElems, accesses int) {
	switch s {
	case Test:
		return 64 * 1024, 8 * 1024
	case Full:
		return 8 * 1024 * 1024, 1024 * 1024
	}
	return 4 * 1024 * 1024, 256 * 1024
}

// streamsPad is the paper's Table 2 padding between STREAMS arrays.
const streamsPad = 65856

// prefDist is the software-prefetch distance in 128-element iterations.
const prefDist = 8

const chunkBytes = isa.VLMax * 8

// streamsKernelV builds the vector form of one STREAMS kernel. nIn names
// the input arrays; out is written with WH64 pre-allocation one iteration
// ahead, and inputs are vector-prefetched prefDist iterations ahead.
func streamsKernelV(n int, op func(b *vasm.Builder, v0, v1 isa.Reg), nIn int, wantScale bool) vasm.Kernel {
	return func(b *vasm.Builder) {
		bases := make([]uint64, nIn+1)
		for i := range bases {
			bases[i] = b.AllocF64(n+2*isa.VLMax, streamsPad)
		}
		for i := 0; i < nIn; i++ {
			vals := make([]float64, n)
			for j := range vals {
				vals[j] = float64(j%97) + float64(i)
			}
			fillF64(b, bases[i], vals)
		}
		rs := isa.R(9)
		if wantScale {
			constF64(b, 1, 3.0)
		}
		regs := []isa.Reg{isa.R(1), isa.R(2), isa.R(3), isa.R(4)}
		for i := 0; i <= nIn; i++ {
			b.Li(regs[i], int64(bases[i]))
		}
		rout := regs[nIn]
		b.SetVSImm(rs, 8)
		b.Loop(isa.R(16), n/isa.VLMax, func(int) {
			// Prefetch inputs ahead; write-hint the output lines one
			// iteration ahead so stores never read-for-ownership.
			for i := 0; i < nIn; i++ {
				b.VPref(regs[i], prefDist*chunkBytes)
			}
			for l := 0; l < 16; l++ {
				b.WH64(rout, int64(chunkBytes+l*64))
			}
			b.VLdQ(isa.V(0), regs[0], 0)
			if nIn > 1 {
				b.VLdQ(isa.V(1), regs[1], 0)
			}
			op(b, isa.V(0), isa.V(1))
			b.VStQ(isa.V(0), rout, 0)
			for i := 0; i <= nIn; i++ {
				b.AddImm(regs[i], regs[i], chunkBytes)
			}
		})
		b.Halt()
	}
}

// streamsKernelS is the scalar (EV8) form, unrolled 8-wide with scalar
// prefetch and WH64.
func streamsKernelS(n int, op func(b *vasm.Builder, f0, f1 isa.Reg), nIn int, wantScale bool) vasm.Kernel {
	return func(b *vasm.Builder) {
		bases := make([]uint64, nIn+1)
		for i := range bases {
			bases[i] = b.AllocF64(n+128, streamsPad)
		}
		for i := 0; i < nIn; i++ {
			vals := make([]float64, n)
			for j := range vals {
				vals[j] = float64(j%97) + float64(i)
			}
			fillF64(b, bases[i], vals)
		}
		if wantScale {
			constF64(b, 1, 3.0)
		}
		regs := []isa.Reg{isa.R(1), isa.R(2), isa.R(3), isa.R(4)}
		for i := 0; i <= nIn; i++ {
			b.Li(regs[i], int64(bases[i]))
		}
		rout := regs[nIn]
		b.Loop(isa.R(16), n/8, func(int) {
			for i := 0; i < nIn; i++ {
				b.Prefetch(regs[i], 512)
			}
			b.WH64(rout, 64)
			for u := 0; u < 8; u++ {
				off := int64(u * 8)
				b.LdT(isa.F(2), regs[0], off)
				if nIn > 1 {
					b.LdT(isa.F(3), regs[1], off)
				}
				op(b, isa.F(2), isa.F(3))
				b.StT(isa.F(2), rout, off)
			}
			for i := 0; i <= nIn; i++ {
				b.AddImm(regs[i], regs[i], 64)
			}
		})
		b.Halt()
	}
}

func streamsBench(name string, bytesPerElem int, nIn int, wantScale bool,
	vop func(b *vasm.Builder, v0, v1 isa.Reg), sop func(b *vasm.Builder, f0, f1 isa.Reg)) *Benchmark {
	return register(&Benchmark{
		Name:  name,
		Class: "MicroKernels",
		Desc:  "STREAMS " + name[8:] + " kernel, reference-style, padding=65856 bytes",
		Pref:  true,
		Vector: func(s Scale) vasm.Kernel {
			return streamsKernelV(streamsN(s), vop, nIn, wantScale)
		},
		Scalar: func(s Scale) vasm.Kernel {
			return streamsKernelS(streamsN(s), sop, nIn, wantScale)
		},
		UsefulBytes: func(s Scale) uint64 {
			return uint64(streamsN(s)) * uint64(bytesPerElem)
		},
	})
}

var (
	// STREAMS Copy: C = A. 16 useful bytes per element.
	benchCopy = streamsBench("streams_copy", 16, 1, false,
		func(b *vasm.Builder, v0, v1 isa.Reg) {},
		func(b *vasm.Builder, f0, f1 isa.Reg) {})

	// STREAMS Scale: B = s*A.
	benchScale = streamsBench("streams_scale", 16, 1, true,
		func(b *vasm.Builder, v0, v1 isa.Reg) { b.VS(isa.OpVSMULT, v0, v0, isa.F(1)) },
		func(b *vasm.Builder, f0, f1 isa.Reg) { b.Op3(isa.OpMULT, f0, f0, isa.F(1)) })

	// STREAMS Add: C = A + B. 24 useful bytes per element.
	benchAdd = streamsBench("streams_add", 24, 2, false,
		func(b *vasm.Builder, v0, v1 isa.Reg) { b.VV(isa.OpVADDT, v0, v0, v1) },
		func(b *vasm.Builder, f0, f1 isa.Reg) { b.Op3(isa.OpADDT, f0, f0, f1) })

	// STREAMS Triadd: A = B + s*C. 24 useful bytes per element.
	benchTriad = streamsBench("streams_triadd", 24, 2, true,
		func(b *vasm.Builder, v0, v1 isa.Reg) {
			b.VS(isa.OpVSMULT, v1, v1, isa.F(1))
			b.VV(isa.OpVADDT, v0, v0, v1)
		},
		func(b *vasm.Builder, f0, f1 isa.Reg) {
			b.Op3(isa.OpMULT, f1, f1, isa.F(1))
			b.Op3(isa.OpADDT, f0, f0, f1)
		})
)

// ---- RndCopy: B(i) = A(index(i)), data resident in the L2 ----

// rndLayout fixes the microkernel's addresses so setup and ROI agree.
func rndCopyLayout(s Scale) (aBase, idxBase, bBase uint64, elems, accesses int) {
	elems, accesses = rndCopyN(s)
	aBase = 1 << 20
	idxBase = aBase + uint64(elems)*8 + 4096
	bBase = idxBase + uint64(accesses)*8 + 4096
	return
}

func rndCopyInit(b *vasm.Builder, s Scale) (aBase, idxBase, bBase uint64, elems, accesses int) {
	aBase, idxBase, bBase, elems, accesses = rndCopyLayout(s)
	rng := newLCG(7)
	for i := 0; i < elems; i++ {
		b.M.Mem.StoreQ(aBase+uint64(i)*8, fbits(float64(i)))
	}
	for i := 0; i < accesses; i++ {
		// Byte offsets into A, stored directly (the idiom real gather code
		// uses to avoid a shift in the loop).
		b.M.Mem.StoreQ(idxBase+uint64(i)*8, uint64(rng.intn(elems))*8)
	}
	return
}

func rndCopySetup(s Scale, vector bool) vasm.Kernel {
	return func(b *vasm.Builder) {
		aBase, idxBase, bBase, elems, accesses := rndCopyInit(b, s)
		// Walk everything once so it is resident in the L2 ("Prefetched
		// into L2", Table 2).
		touch := func(base uint64, n int) {
			b.Li(isa.R(1), int64(base))
			if vector {
				b.SetVSImm(isa.R(9), 8)
				b.Loop(isa.R(16), n/isa.VLMax, func(int) {
					b.VPref(isa.R(1), 0)
					b.AddImm(isa.R(1), isa.R(1), chunkBytes)
				})
			} else {
				b.Loop(isa.R(16), n*8/64, func(int) {
					b.Prefetch(isa.R(1), 0)
					b.AddImm(isa.R(1), isa.R(1), 64)
				})
			}
		}
		touch(aBase, elems)
		touch(idxBase, accesses)
		touch(bBase, accesses)
	}
}

var benchRndCopy = register(&Benchmark{
	Name:  "rndcopy",
	Class: "MicroKernels",
	Desc:  "B(i) = A(index(i)); gather bandwidth from the L2 (no misses)",
	Pref:  true,
	Setup: rndCopySetup,
	Vector: func(s Scale) vasm.Kernel {
		return func(b *vasm.Builder) {
			aBase, idxBase, bBase, _, accesses := rndCopyLayout(s)
			ra, ri, rb, rs := isa.R(1), isa.R(2), isa.R(3), isa.R(9)
			b.Li(ra, int64(aBase))
			b.Li(ri, int64(idxBase))
			b.Li(rb, int64(bBase))
			b.SetVSImm(rs, 8)
			b.Loop(isa.R(16), accesses/isa.VLMax, func(int) {
				b.VLdQ(isa.V(1), ri, 0)         // index vector (byte offsets)
				b.VGath(isa.V(2), isa.V(1), ra) // gather from A
				b.VStQ(isa.V(2), rb, 0)         // unit-stride store to B
				b.AddImm(ri, ri, chunkBytes)
				b.AddImm(rb, rb, chunkBytes)
			})
			b.Halt()
		}
	},
	Scalar: func(s Scale) vasm.Kernel {
		return func(b *vasm.Builder) {
			aBase, idxBase, bBase, _, accesses := rndCopyLayout(s)
			_ = aBase
			ra, ri, rb := isa.R(1), isa.R(2), isa.R(3)
			b.Li(ra, int64(aBase))
			b.Li(ri, int64(idxBase))
			b.Li(rb, int64(bBase))
			b.Loop(isa.R(16), accesses/4, func(int) {
				for u := 0; u < 4; u++ {
					off := int64(u * 8)
					b.LdQ(isa.R(10), ri, off)                   // offset
					b.Op3(isa.OpADDQ, isa.R(11), isa.R(10), ra) // &A[idx]
					b.LdT(isa.F(2), isa.R(11), 0)
					b.StT(isa.F(2), rb, off)
				}
				b.AddImm(ri, ri, 32)
				b.AddImm(rb, rb, 32)
			})
			b.Halt()
		}
	},
	UsefulBytes: func(s Scale) uint64 {
		// The paper's RndCopy row counts gathered bytes (73.4 GB/s equals
		// its quoted 4.3 addresses/cycle × 8 B at 2.13 GHz), so we follow
		// that convention: 8 bytes per access.
		_, accesses := rndCopyN(s)
		return uint64(accesses) * 8
	},
	Check: func(m *arch.Machine, s Scale) error {
		aBase, idxBase, bBase, _, accesses := rndCopyLayout(s)
		for i := 0; i < accesses; i += 997 {
			off := m.Mem.LoadQ(idxBase + uint64(i)*8)
			want := m.Mem.LoadQ(aBase + off)
			got := m.Mem.LoadQ(bBase + uint64(i)*8)
			if got != want {
				return fmt.Errorf("rndcopy: B[%d]=%#x, want %#x", i, got, want)
			}
		}
		return nil
	},
})

// ---- RndMemScale: B(index(i)) += 1, all data from memory ----

func rndMemLayout(s Scale) (bBase, idxBase uint64, tableElems, accesses int) {
	tableElems, accesses = rndMemN(s)
	bBase = 1 << 20
	idxBase = bBase + uint64(tableElems)*8 + 4096
	return
}

var benchRndMemScale = register(&Benchmark{
	Name:  "rndmemscale",
	Class: "MicroKernels",
	Desc:  "B(index(i)) += 1 over a table larger than the L2 (RAMBUS page behaviour)",
	Vector: func(s Scale) vasm.Kernel {
		return func(b *vasm.Builder) {
			bBase, idxBase, tableElems, accesses := rndMemLayout(s)
			rng := newLCG(11)
			// Sample table slots without replacement so no two updates
			// collide (GEN_RANDOM_PERMUT in the paper's semantics).
			perm := rng.sampleDistinct(tableElems, accesses)
			for i, p := range perm {
				b.M.Mem.StoreQ(idxBase+uint64(i)*8, uint64(p)*8)
			}
			rb, ri, rs, rone := isa.R(1), isa.R(2), isa.R(9), isa.R(10)
			b.Li(rb, int64(bBase))
			b.Li(ri, int64(idxBase))
			b.Li(rone, 1)
			b.SetVSImm(rs, 8)
			b.Loop(isa.R(16), accesses/isa.VLMax, func(int) {
				b.VLdQ(isa.V(1), ri, 0)
				b.VGath(isa.V(2), isa.V(1), rb)
				b.VS(isa.OpVSADDQ, isa.V(2), isa.V(2), rone)
				b.VScat(isa.V(2), isa.V(1), rb)
				b.AddImm(ri, ri, chunkBytes)
			})
			b.Halt()
		}
	},
	Scalar: func(s Scale) vasm.Kernel {
		return func(b *vasm.Builder) {
			bBase, idxBase, tableElems, accesses := rndMemLayout(s)
			rng := newLCG(11)
			perm := rng.sampleDistinct(tableElems, accesses)
			for i, p := range perm {
				b.M.Mem.StoreQ(idxBase+uint64(i)*8, uint64(p)*8)
			}
			rb, ri := isa.R(1), isa.R(2)
			b.Li(rb, int64(bBase))
			b.Li(ri, int64(idxBase))
			b.Loop(isa.R(16), accesses/4, func(int) {
				for u := 0; u < 4; u++ {
					b.LdQ(isa.R(10), ri, int64(u*8))
					b.Op3(isa.OpADDQ, isa.R(11), isa.R(10), rb)
					b.LdQ(isa.R(12), isa.R(11), 0)
					b.OpImm(isa.OpADDQ, isa.R(12), isa.R(12), 1)
					b.StQ(isa.R(12), isa.R(11), 0)
				}
				b.AddImm(ri, ri, 32)
			})
			b.Halt()
		}
	},
	UsefulBytes: func(s Scale) uint64 {
		_, accesses := rndMemN(s)
		return uint64(accesses) * 16
	},
	Check: func(m *arch.Machine, s Scale) error {
		bBase, idxBase, _, accesses := rndMemLayout(s)
		for i := 0; i < accesses; i += 503 {
			off := m.Mem.LoadQ(idxBase + uint64(i)*8)
			if got := m.Mem.LoadQ(bBase + off); got != 1 {
				return fmt.Errorf("rndmemscale: B[%d] = %d, want 1", off/8, got)
			}
		}
		return nil
	},
})
