// Package workloads contains every benchmark of the paper's Table 2, each
// hand-coded twice against the functional machine: a vector (Tarantula)
// kernel in the new ISA and a scalar (EV8) kernel in the Alpha subset,
// mirroring the paper's methodology of hand-vectorising the hot routines.
//
// Inputs are scaled relative to the paper's so simulations finish in
// seconds while each kernel stays in the same memory-hierarchy regime
// (L2-resident vs memory-bound); EXPERIMENTS.md records the scaling.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/vasm"
)

// Scale selects input sizes.
type Scale int

const (
	// Test is tiny: functional verification in unit tests.
	Test Scale = iota
	// Bench is the default evaluation size (seconds per simulation).
	Bench
	// Full is closer to the paper's inputs (minutes per simulation).
	Full
)

// ParseScale maps the user-facing scale names ("test", "bench", "full") to
// a Scale; every entry point (tarsim, tartables, the tarserved job API)
// shares this one parser so they accept exactly the same vocabulary.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "test":
		return Test, nil
	case "bench":
		return Bench, nil
	case "full":
		return Full, nil
	}
	return Test, fmt.Errorf("workloads: unknown scale %q (want test, bench or full)", s)
}

func (s Scale) String() string {
	switch s {
	case Test:
		return "test"
	case Bench:
		return "bench"
	case Full:
		return "full"
	}
	return "scale?"
}

// Benchmark is one Table 2 entry.
type Benchmark struct {
	Name  string
	Class string // MicroKernels / SpecFP2000 / Algebra / Bioinformatics / Integer
	Desc  string

	Pref   bool // uses software prefetching (Table 2 column)
	DrainM bool // uses the DrainM barrier (Table 2 column)

	// Setup returns an untimed warm-up kernel (e.g. "prefetched into L2"),
	// or nil. vector selects vector or scalar-only code (the scalar
	// machines have no Vbox to prefetch with).
	Setup func(s Scale, vector bool) vasm.Kernel
	// Vector is the Tarantula kernel.
	Vector func(s Scale) vasm.Kernel
	// Scalar is the EV8 kernel for the same computation.
	Scalar func(s Scale) vasm.Kernel

	// UsefulBytes gives the STREAMS-convention byte count for bandwidth
	// rows (Table 4); zero for non-bandwidth benchmarks.
	UsefulBytes func(s Scale) uint64

	// Check verifies the functional result after a run; nil means the
	// kernel self-checks some other way.
	Check func(m *arch.Machine, s Scale) error
}

var registry = map[string]*Benchmark{}

// table2Order is the paper's Table 2 ordering.
var table2Order = []string{
	"streams_copy", "streams_scale", "streams_add", "streams_triadd",
	"rndcopy", "rndmemscale",
	"swim", "art", "sixtrack",
	"dgemm", "dtrmm", "sparsemxv", "fft", "lu", "linpack100", "linpacktpp",
	"moldyn",
	"ccradix",
	"dgemm_fma",    // §5 FMAC extension study (Extensions class)
	"swim_untiled", // §6 tiling experiment (Extensions class)
}

func register(b *Benchmark) *Benchmark {
	if _, dup := registry[b.Name]; dup {
		panic("workloads: duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
	return b
}

// Get returns a benchmark by name.
func Get(name string) (*Benchmark, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown benchmark %q (have %v)", name, Names())
	}
	return b, nil
}

// Names lists all benchmarks in the paper's Table 2 order.
func Names() []string {
	var out []string
	for _, n := range table2Order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// ByClass returns benchmark names grouped and ordered by Table 2 class.
func ByClass() map[string][]string {
	m := map[string][]string{}
	for _, n := range Names() {
		b := registry[n]
		m[b.Class] = append(m[b.Class], n)
	}
	for _, v := range m {
		sort.Strings(v)
	}
	return m
}

// Figure6Set lists the benchmarks shown in Figures 6–9 (everything except
// the pure bandwidth microkernels).
func Figure6Set() []string {
	var out []string
	for _, n := range Names() {
		if c := registry[n].Class; c == "MicroKernels" || c == "Extensions" {
			continue
		}
		out = append(out, n)
	}
	return out
}
