package workloads

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/vasm"
)

// ---- ccradix: tiled integer radix sort (Jiménez-González et al. [10]) ----
//
// The vector formulation is the classic one for machines with gather/scatter
// (Zagha & Blelloch): each of the 128 vector element slots owns a logical
// block of keys, so per-slot histograms keyed by (digit, slot) make the
// counting and permutation passes collision-free within a vector instruction
// and the sort stable. Keys live in a slot-transposed physical layout
// (logical position p at physical index (p mod blk)·128 + p÷blk), so every
// key load is a stride-1 pump access while the logical order that stability
// is defined over is preserved; the last pass scatters to natural order.
// Both passes lean on gather/scatter against the offset table, which is why
// the paper calls radix sort out as the gather/scatter-intensive case
// (≈3X over EV8, 15 sustained ops/cycle).
//
// The digit-offset table is prefix-summed by scalar code between the vector
// passes; the scalar writes followed by vector gathers are exactly the
// DrainM case of §3.4.

const (
	rxDigits  = 256 // 8-bit digits
	rxPasses  = 2   // 16-bit keys
	rxKeyMask = rxDigits*rxDigits - 1
)

func ccradixN(s Scale) int {
	switch s {
	case Test:
		return 8 * 1024
	case Full:
		return 256 * 1024
	}
	return 64 * 1024
}

// layout: in, out (ping-pong), table (128 slots × 256 digits, slot-major),
// slot-offset vector, per-digit sum/prefix buffers.
func rxLayout(n int) (in, out, table, slotVec, digitSum uint64) {
	in = 1 << 20
	out = in + uint64(n)*8 + 4096
	table = out + uint64(n)*8 + 4096
	slotVec = table + uint64(rxDigits*isa.VLMax)*8 + 4096
	digitSum = slotVec + uint64(isa.VLMax)*8 + 4096
	return
}

func rxKeys(n int) []uint64 {
	rng := newLCG(5)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.next() & rxKeyMask
	}
	return keys
}

func ccradixVector(s Scale) vasm.Kernel {
	n := ccradixN(s)
	blk := n / isa.VLMax // keys per logical slot block
	lg := 0
	for 1<<lg < blk {
		lg++
	}
	return func(bd *vasm.Builder) {
		inB, outB, tblB, slotB, sumB := rxLayout(n)
		// Pass 0 reads the input array in transposed interpretation:
		// element (step t, slot s) is physical index t·128+s, logical
		// position s·blk+t. A fixed input pre-permutation is harmless to a
		// sort, so the keys go in as-is.
		fillQ(bd, inB, rxKeys(n))
		for sl := 0; sl < isa.VLMax; sl++ {
			// Byte offset of each slot's table row (slot-major layout).
			bd.M.Mem.StoreQ(slotB+uint64(sl)*8, uint64(sl)*uint64(rxDigits)*8)
		}
		rs := isa.R(9)
		rT, rSrc, rDst := isa.R(1), isa.R(2), isa.R(3)
		bd.SetVSImm(rs, 8)
		bd.SetVLImm(rs, isa.VLMax)
		// Slot-offset constant vector (loaded once).
		bd.Li(isa.R(4), int64(slotB))
		bd.VLdQ(isa.V(15), isa.R(4), 0)
		bd.Li(rT, int64(tblB))
		src, dst := inB, outB
		for pass := 0; pass < rxPasses; pass++ {
			shift := int64(8 * pass)
			last := pass == rxPasses-1
			// Zero the (digit, slot) count table with long vector stores.
			bd.VV(isa.OpVXOR, isa.V(0), isa.V(0), isa.V(0))
			bd.Loop(isa.R(16), rxDigits, func(c int) {
				bd.Li(isa.R(4), int64(tblB)+int64(c*isa.VLMax)*8)
				bd.VStQ(isa.V(0), isa.R(4), 0)
			})
			// Counting pass: a stride-1 (pump) key load per step — step t
			// reads physical [t·128, t·128+128), i.e. logical element t of
			// every slot's block — then gather/modify/scatter on the
			// (digit, slot) counters.
			bd.Li(isa.R(10), 0xff)
			bd.Li(isa.R(11), 3) // digit·8 within the slot row
			bd.Li(isa.R(12), 3)
			bd.Li(isa.R(13), shift)
			bd.Li(isa.R(14), 1)
			bd.Li(rSrc, int64(src))
			bd.Loop(isa.R(16), blk, func(int) {
				bd.VLdQ(isa.V(0), rSrc, 0) // 128 keys, one per slot
				bd.VS(isa.OpVSSRL, isa.V(1), isa.V(0), isa.R(13))
				bd.VS(isa.OpVSAND, isa.V(1), isa.V(1), isa.R(10))
				bd.VS(isa.OpVSSLL, isa.V(2), isa.V(1), isa.R(11))
				bd.VV(isa.OpVADDQ, isa.V(2), isa.V(2), isa.V(15)) // + slot·8
				bd.VGath(isa.V(4), isa.V(2), rT)
				bd.VS(isa.OpVSADDQ, isa.V(4), isa.V(4), isa.R(14))
				bd.VScat(isa.V(4), isa.V(2), rT)
				bd.AddImm(rSrc, rSrc, chunkBytes)
			})
			// Two-level exclusive scan over (digit, slot) in lexicographic
			// order, vectorised over the digit dimension (Zagha & Blelloch
			// style). Level 1: per-digit totals across the 128 slot rows.
			rowB := int64(rxDigits) * 8
			bd.VV(isa.OpVXOR, isa.V(20), isa.V(20), isa.V(20))
			bd.VV(isa.OpVXOR, isa.V(21), isa.V(21), isa.V(21))
			bd.Loop(isa.R(16), isa.VLMax, func(sl int) {
				bd.Li(isa.R(5), int64(tblB)+int64(sl)*rowB)
				bd.VLdQ(isa.V(0), isa.R(5), 0)
				bd.VV(isa.OpVADDQ, isa.V(20), isa.V(20), isa.V(0))
				bd.VLdQ(isa.V(0), isa.R(5), int64(isa.VLMax)*8)
				bd.VV(isa.OpVADDQ, isa.V(21), isa.V(21), isa.V(0))
			})
			bd.Li(isa.R(5), int64(sumB))
			bd.VStQ(isa.V(20), isa.R(5), 0)
			bd.VStQ(isa.V(21), isa.R(5), int64(isa.VLMax)*8)
			// Level 2: scalar exclusive prefix across the 256 digit totals.
			bd.Li(isa.R(5), int64(sumB))
			bd.Li(isa.R(6), 0)
			bd.Loop(isa.R(16), rxDigits, func(int) {
				bd.LdQ(isa.R(7), isa.R(5), 0)
				bd.StQ(isa.R(6), isa.R(5), 0)
				bd.Op3(isa.OpADDQ, isa.R(6), isa.R(6), isa.R(7))
				bd.AddImm(isa.R(5), isa.R(5), 8)
			})
			// The digit bases were scalar-written and the sweep below reads
			// them with vector loads: the scalar-write → vector-read
			// barrier of §3.4.
			bd.DrainM()
			// Level 3: sweep the slot rows, replacing counts with running
			// offsets (v22/v23 carry the per-digit running positions).
			bd.Li(isa.R(5), int64(sumB))
			bd.VLdQ(isa.V(22), isa.R(5), 0)
			bd.VLdQ(isa.V(23), isa.R(5), int64(isa.VLMax)*8)
			bd.Loop(isa.R(16), isa.VLMax, func(sl int) {
				bd.Li(isa.R(5), int64(tblB)+int64(sl)*rowB)
				bd.VLdQ(isa.V(0), isa.R(5), 0)
				bd.VStQ(isa.V(22), isa.R(5), 0)
				bd.VV(isa.OpVADDQ, isa.V(22), isa.V(22), isa.V(0))
				bd.VLdQ(isa.V(1), isa.R(5), int64(isa.VLMax)*8)
				bd.VStQ(isa.V(23), isa.R(5), int64(isa.VLMax)*8)
				bd.VV(isa.OpVADDQ, isa.V(23), isa.V(23), isa.V(1))
			})
			// Permutation pass. Logical destination p maps to physical
			// (p mod blk)·128 + p÷blk on intermediate passes (so the next
			// pass reads stride-1) and to p on the last.
			bd.Li(isa.R(15), int64(lg))
			bd.Li(isa.R(18), int64(blk-1))
			bd.Li(isa.R(19), 7+3) // (· mod blk)·128·8 = << 10
			bd.Li(rSrc, int64(src))
			bd.Li(rDst, int64(dst))
			bd.Loop(isa.R(17), blk, func(int) {
				bd.VLdQ(isa.V(0), rSrc, 0)
				bd.VS(isa.OpVSSRL, isa.V(1), isa.V(0), isa.R(13))
				bd.VS(isa.OpVSAND, isa.V(1), isa.V(1), isa.R(10))
				bd.VS(isa.OpVSSLL, isa.V(2), isa.V(1), isa.R(11))
				bd.VV(isa.OpVADDQ, isa.V(2), isa.V(2), isa.V(15))
				bd.VGath(isa.V(4), isa.V(2), rT) // logical index p (elements)
				if last {
					bd.VS(isa.OpVSSLL, isa.V(5), isa.V(4), isa.R(12)) // p·8
				} else {
					bd.VS(isa.OpVSAND, isa.V(5), isa.V(4), isa.R(18)) // p mod blk
					bd.VS(isa.OpVSSLL, isa.V(5), isa.V(5), isa.R(19)) // ·1024
					bd.VS(isa.OpVSSRL, isa.V(6), isa.V(4), isa.R(15)) // p ÷ blk
					bd.VS(isa.OpVSSLL, isa.V(6), isa.V(6), isa.R(12)) // ·8
					bd.VV(isa.OpVADDQ, isa.V(5), isa.V(5), isa.V(6))
				}
				bd.VScat(isa.V(0), isa.V(5), rDst) // out[phys] = key
				bd.VS(isa.OpVSADDQ, isa.V(4), isa.V(4), isa.R(14))
				bd.VScat(isa.V(4), isa.V(2), rT) // bump the counter
				bd.AddImm(rSrc, rSrc, chunkBytes)
			})
			src, dst = dst, src
		}
		bd.Halt()
	}
}

func ccradixScalar(s Scale) vasm.Kernel {
	n := ccradixN(s)
	return func(bd *vasm.Builder) {
		inB, outB, tblB, _, _ := rxLayout(n)
		fillQ(bd, inB, rxKeys(n))
		rT, rSrc, rDst := isa.R(1), isa.R(2), isa.R(3)
		bd.Li(rT, int64(tblB))
		src, dst := inB, outB
		for pass := 0; pass < rxPasses; pass++ {
			shift := int64(8 * pass)
			bd.Li(isa.R(13), shift)
			bd.Li(isa.R(10), 0xff)
			// Zero 256 counters.
			bd.Li(isa.R(5), int64(tblB))
			bd.Loop(isa.R(16), rxDigits, func(int) {
				bd.StQ(isa.RZero, isa.R(5), 0)
				bd.AddImm(isa.R(5), isa.R(5), 8)
			})
			// Count.
			bd.Li(rSrc, int64(src))
			bd.Loop(isa.R(16), n/4, func(int) {
				for u := 0; u < 4; u++ {
					bd.LdQ(isa.R(6), rSrc, int64(u*8))
					bd.Op3(isa.OpSRL, isa.R(6), isa.R(6), isa.R(13))
					bd.Op3(isa.OpAND, isa.R(6), isa.R(6), isa.R(10))
					bd.Emit(isa.Inst{Op: isa.OpS8ADDQ, Dst: isa.R(7), Src1: isa.R(6), Src2: rT})
					bd.LdQ(isa.R(8), isa.R(7), 0)
					bd.OpImm(isa.OpADDQ, isa.R(8), isa.R(8), 1)
					bd.StQ(isa.R(8), isa.R(7), 0)
				}
				bd.AddImm(rSrc, rSrc, 32)
			})
			// Exclusive prefix.
			bd.Li(isa.R(5), int64(tblB))
			bd.Li(isa.R(6), 0)
			bd.Loop(isa.R(16), rxDigits, func(int) {
				bd.LdQ(isa.R(7), isa.R(5), 0)
				bd.StQ(isa.R(6), isa.R(5), 0)
				bd.Op3(isa.OpADDQ, isa.R(6), isa.R(6), isa.R(7))
				bd.AddImm(isa.R(5), isa.R(5), 8)
			})
			// Permute.
			bd.Li(rSrc, int64(src))
			bd.Li(rDst, int64(dst))
			bd.Loop(isa.R(16), n, func(int) {
				bd.LdQ(isa.R(6), rSrc, 0)
				bd.Op3(isa.OpSRL, isa.R(7), isa.R(6), isa.R(13))
				bd.Op3(isa.OpAND, isa.R(7), isa.R(7), isa.R(10))
				bd.Emit(isa.Inst{Op: isa.OpS8ADDQ, Dst: isa.R(8), Src1: isa.R(7), Src2: rT})
				bd.LdQ(isa.R(11), isa.R(8), 0) // output index
				bd.Emit(isa.Inst{Op: isa.OpS8ADDQ, Dst: isa.R(12), Src1: isa.R(11), Src2: rDst})
				bd.StQ(isa.R(6), isa.R(12), 0)
				bd.OpImm(isa.OpADDQ, isa.R(11), isa.R(11), 1)
				bd.StQ(isa.R(11), isa.R(8), 0)
				bd.AddImm(rSrc, rSrc, 8)
			})
			src, dst = dst, src
		}
		bd.Halt()
	}
}

func ccradixCheck(m *arch.Machine, s Scale) error {
	n := ccradixN(s)
	inB, _, _, _, _ := rxLayout(n)
	// rxPasses is even, so the sorted data is back in the input buffer.
	want := rxKeys(n)
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	for i := 0; i < n; i++ {
		got := m.Mem.LoadQ(inB + uint64(i)*8)
		if got != want[i] {
			return fmt.Errorf("ccradix: out[%d] = %d, want %d", i, got, want[i])
		}
	}
	return nil
}

var benchCcradix = register(&Benchmark{
	Name:   "ccradix",
	Class:  "Integer",
	Desc:   "tiled integer radix sort, slot-blocked counting + permutation",
	Pref:   true,
	DrainM: true,
	Vector: ccradixVector,
	Scalar: ccradixScalar,
	Check:  ccradixCheck,
})
