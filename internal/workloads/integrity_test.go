package workloads

import (
	"testing"

	"repro/internal/sim"
)

// TestInvariantCheckerCleanAllWorkloads runs every registered benchmark at
// test scale under the microarchitectural invariant checker on the full
// Tarantula machine. The checker single-steps and audits every fast-forward
// hint, so a clean pass here means the paper's workloads exercise no latent
// retire-order, store-queue, inclusion or NextWake bug.
func TestInvariantCheckerCleanAllWorkloads(t *testing.T) {
	cfg := *sim.T()
	cfg.Check = true
	for _, name := range Names() {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Run(&cfg, Test); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestInvariantCheckerCleanScalarMachine repeats the drill on the EV8
// scalar-only machine for one L2-resident and one memory-bound kernel, the
// pair the CI smoke job also exercises.
func TestInvariantCheckerCleanScalarMachine(t *testing.T) {
	cfg := *sim.EV8()
	cfg.Check = true
	for _, name := range []string{"dgemm", "streams_copy"} {
		b, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Run(&cfg, Test); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
