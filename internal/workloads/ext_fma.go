package workloads

import (
	"repro/internal/isa"
	"repro/internal/vasm"
)

// dgemm_fma is the §5 extension study in executable form: the same
// register-tiled matrix multiply as dgemm, but using the VFMAT/VSFMAT
// multiply-accumulate extension — half the vector arithmetic instructions,
// double the flops per instruction, so the ablation benchmarks can measure
// how close "this rate could be doubled" comes on a real kernel.
//
// It lives in the Extensions class, which keeps it out of the Figure 6–9
// sets (those reproduce the paper's machine, which had no FMAC).
func dgemmFMAVector(s Scale) vasm.Kernel {
	n := dgemmN(s)
	const rowTile = 8
	return func(bd *vasm.Builder) {
		dgemmInit(bd, n)
		aB, bB, cB := dgemmLayout(n)
		rs := isa.R(9)
		rA, rB, rC := isa.R(1), isa.R(2), isa.R(3)
		bd.SetVSImm(rs, 8)
		vchunks(bd, rs, n, func(j0, vl int) {
			for i0 := 0; i0 < n; i0 += rowTile {
				for r := 0; r < rowTile; r++ {
					bd.VV(isa.OpVXOR, isa.V(r), isa.V(r), isa.V(r))
				}
				bd.Li(rA, int64(aB+uint64(i0*n)*8))
				bd.Li(rB, int64(bB+uint64(j0)*8))
				bd.Loop(isa.R(16), n, func(k int) {
					if k%8 == 0 {
						bd.VPref(rB, int64(8*n)*8)
					}
					bd.VLdQ(isa.V(10), rB, 0)
					for r := 0; r < rowTile; r++ {
						f := isa.F(2 + r)
						bd.LdT(f, rA, int64(r*n)*8)
						// One instruction where dgemm needs two.
						bd.VSFMA(isa.V(r), isa.V(10), f)
					}
					bd.AddImm(rA, rA, 8)
					bd.AddImm(rB, rB, int64(n)*8)
				})
				bd.Li(rC, int64(cB+uint64(i0*n+j0)*8))
				for r := 0; r < rowTile; r++ {
					bd.VStQ(isa.V(r), rC, int64(r*n)*8)
				}
			}
		})
		bd.Halt()
	}
}

var benchDgemmFMA = register(&Benchmark{
	Name:   "dgemm_fma",
	Class:  "Extensions",
	Desc:   "dgemm using the §5 FMAC extension (VSFMAT)",
	Pref:   true,
	Vector: dgemmFMAVector,
	Scalar: dgemmScalar, // same baseline as dgemm
	Check:  dgemmCheck,
})
