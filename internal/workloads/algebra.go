package workloads

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/vasm"
)

// ---- dgemm: dense tiled matrix multiply ----

func dgemmN(s Scale) int {
	switch s {
	case Test:
		return 48
	case Full:
		return 320
	}
	return 128
}

// dgemmLayout: row-major A (n×n), B (n×n), C (n×n).
func dgemmLayout(n int) (a, b, c uint64) {
	a = 1 << 20
	b = a + uint64(n*n)*8 + 4096
	c = b + uint64(n*n)*8 + 4096
	return
}

func dgemmInit(bd *vasm.Builder, n int) {
	a, b, _ := dgemmLayout(n)
	for i := 0; i < n*n; i++ {
		bd.M.Mem.StoreQ(a+uint64(i)*8, fbits(float64(i%7)+1))
		bd.M.Mem.StoreQ(b+uint64(i)*8, fbits(float64(i%5)-2))
	}
}

// dgemmVector is the register-tiled vector kernel: an 8-row tile of C lives
// in v0..v7 across the whole k loop; each k costs one vector load of a B row
// chunk plus 16 vector-scalar flop instructions — 32 flops/cycle at peak.
func dgemmVector(s Scale) vasm.Kernel {
	n := dgemmN(s)
	const rowTile = 8
	return func(bd *vasm.Builder) {
		dgemmInit(bd, n)
		aB, bB, cB := dgemmLayout(n)
		rs := isa.R(9)
		rA, rB, rC := isa.R(1), isa.R(2), isa.R(3)
		bd.SetVSImm(rs, 8)
		vchunks(bd, rs, n, func(j0, vl int) {
			for i0 := 0; i0 < n; i0 += rowTile {
				// Zero the C tile (vxor v,v).
				for r := 0; r < rowTile; r++ {
					bd.VV(isa.OpVXOR, isa.V(r), isa.V(r), isa.V(r))
				}
				bd.Li(rA, int64(aB+uint64(i0*n)*8))
				bd.Li(rB, int64(bB+uint64(j0)*8))
				bd.Loop(isa.R(16), n, func(k int) {
					// Prefetch the B row a few iterations ahead.
					if k%8 == 0 {
						bd.VPref(rB, int64(8*n)*8)
					}
					bd.VLdQ(isa.V(10), rB, 0) // B[k][j0:j0+vl]
					for r := 0; r < rowTile; r++ {
						f := isa.F(2 + r)
						bd.LdT(f, rA, int64(r*n)*8) // A[i0+r][k]
						bd.VS(isa.OpVSMULT, isa.V(11), isa.V(10), f)
						bd.VV(isa.OpVADDT, isa.V(r), isa.V(r), isa.V(11))
					}
					bd.AddImm(rA, rA, 8)          // next k within the row
					bd.AddImm(rB, rB, int64(n)*8) // next B row
				})
				bd.Li(rC, int64(cB+uint64(i0*n+j0)*8))
				for r := 0; r < rowTile; r++ {
					bd.VStQ(isa.V(r), rC, int64(r*n)*8)
				}
			}
		})
		bd.Halt()
	}
}

// dgemmScalar is the EV8 version: a 2×4 register-blocked k-loop, the shape
// a good scheduler produces — eight accumulators hide the FP-add latency
// and the loop is bounded by the 4-wide FP issue (the paper measured EV8
// dgemm at ~2.5 flops/cycle with an EV6-scheduled binary).
func dgemmScalar(s Scale) vasm.Kernel {
	n := dgemmN(s)
	return func(bd *vasm.Builder) {
		dgemmInit(bd, n)
		aB, bB, cB := dgemmLayout(n)
		rA, rB := isa.R(1), isa.R(2)
		// Accumulators f8..f15 (2 rows × 4 columns); a0/a1 in f1/f2,
		// b0..b3 in f4..f7.
		for i0 := 0; i0 < n; i0 += 2 {
			for j0 := 0; j0 < n; j0 += 4 {
				for r := 0; r < 8; r++ {
					bd.Op3(isa.OpSUBT, isa.F(8+r), isa.FZero, isa.FZero)
				}
				bd.Li(rA, int64(aB+uint64(i0*n)*8))
				bd.Li(rB, int64(bB+uint64(j0)*8))
				bd.Loop(isa.R(16), n, func(k int) {
					if k%8 == 0 {
						bd.Prefetch(rB, int64(8*n)*8)
					}
					bd.LdT(isa.F(1), rA, 0)          // A[i0][k]
					bd.LdT(isa.F(2), rA, int64(n)*8) // A[i0+1][k]
					for c := 0; c < 4; c++ {
						bd.LdT(isa.F(4+c), rB, int64(c)*8) // B[k][j0+c]
					}
					for r := 0; r < 2; r++ {
						for c := 0; c < 4; c++ {
							bd.Op3(isa.OpMULT, isa.F(3), isa.F(1+r), isa.F(4+c))
							bd.Op3(isa.OpADDT, isa.F(8+r*4+c), isa.F(8+r*4+c), isa.F(3))
						}
					}
					bd.AddImm(rA, rA, 8)
					bd.AddImm(rB, rB, int64(n)*8)
				})
				for r := 0; r < 2; r++ {
					bd.Li(isa.R(3), int64(cB+uint64((i0+r)*n+j0)*8))
					for c := 0; c < 4; c++ {
						bd.StT(isa.F(8+r*4+c), isa.R(3), int64(c)*8)
					}
				}
			}
		}
		bd.Halt()
	}
}

func dgemmCheck(m *arch.Machine, s Scale) error {
	n := dgemmN(s)
	aB, bB, cB := dgemmLayout(n)
	av := make([]float64, n*n)
	bv := make([]float64, n*n)
	for i := range av {
		av[i] = ffrom(m.Mem.LoadQ(aB + uint64(i)*8))
		bv[i] = ffrom(m.Mem.LoadQ(bB + uint64(i)*8))
	}
	want := refMatMul(av, bv, n, n, n)
	step := n*n/64 + 1
	for i := 0; i < n*n; i += step {
		got := ffrom(m.Mem.LoadQ(cB + uint64(i)*8))
		if math.Abs(got-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
			return fmt.Errorf("dgemm: C[%d] = %g, want %g", i, got, want[i])
		}
	}
	return nil
}

var benchDgemm = register(&Benchmark{
	Name:   "dgemm",
	Class:  "Algebra",
	Desc:   "dense, tiled, register-tiled matrix multiply",
	Pref:   true,
	Vector: dgemmVector,
	Scalar: dgemmScalar,
	Check:  dgemmCheck,
})

// ---- dtrmm: triangular matrix multiply C = L·B (L lower-triangular) ----

func dtrmmN(s Scale) (n, p int) {
	switch s {
	case Test:
		return 40, 72
	case Full:
		return 240, 264
	}
	return 120, 136
}

func dtrmmLayout(n, p int) (l, b, c uint64) {
	l = 1 << 20
	b = l + uint64(n*n)*8 + 4096
	c = b + uint64(n*p)*8 + 4096
	return
}

func dtrmmInit(bd *vasm.Builder, n, p int) {
	l, b, _ := dtrmmLayout(n, p)
	for i := 0; i < n; i++ {
		for k := 0; k <= i; k++ {
			bd.M.Mem.StoreQ(l+uint64(i*n+k)*8, fbits(float64((i+k)%5)+1))
		}
	}
	for i := 0; i < n*p; i++ {
		bd.M.Mem.StoreQ(b+uint64(i)*8, fbits(float64(i%9)-4))
	}
}

func dtrmmVector(s Scale) vasm.Kernel {
	n, p := dtrmmN(s)
	const rowTile = 4
	return func(bd *vasm.Builder) {
		dtrmmInit(bd, n, p)
		lB, bB, cB := dtrmmLayout(n, p)
		rs := isa.R(9)
		rL, rB, rC := isa.R(1), isa.R(2), isa.R(3)
		bd.SetVSImm(rs, 8)
		vchunks(bd, rs, p, func(j0, vl int) {
			for i0 := 0; i0 < n; i0 += rowTile {
				for r := 0; r < rowTile; r++ {
					bd.VV(isa.OpVXOR, isa.V(r), isa.V(r), isa.V(r))
				}
				kmax := i0 + rowTile // rows i0..i0+3 need k ≤ i
				bd.Li(rL, int64(lB+uint64(i0*n)*8))
				bd.Li(rB, int64(bB+uint64(j0)*8))
				bd.Loop(isa.R(16), kmax, func(k int) {
					bd.VLdQ(isa.V(10), rB, 0)
					for r := 0; r < rowTile; r++ {
						if k > i0+r {
							continue // above the diagonal: structural zero
						}
						f := isa.F(2 + r)
						bd.LdT(f, rL, int64(r*n)*8)
						bd.VS(isa.OpVSMULT, isa.V(11), isa.V(10), f)
						bd.VV(isa.OpVADDT, isa.V(r), isa.V(r), isa.V(11))
					}
					bd.AddImm(rL, rL, 8)
					bd.AddImm(rB, rB, int64(p)*8)
				})
				bd.Li(rC, int64(cB+uint64(i0*p+j0)*8))
				for r := 0; r < rowTile; r++ {
					bd.VStQ(isa.V(r), rC, int64(r*p)*8)
				}
			}
		})
		bd.Halt()
	}
}

func dtrmmScalar(s Scale) vasm.Kernel {
	n, p := dtrmmN(s)
	return func(bd *vasm.Builder) {
		dtrmmInit(bd, n, p)
		lB, bB, cB := dtrmmLayout(n, p)
		rB, rC := isa.R(2), isa.R(3)
		for i := 0; i < n; i++ {
			// Zero C row.
			bd.Li(rC, int64(cB+uint64(i*p)*8))
			bd.Loop(isa.R(16), p/4, func(int) {
				for u := 0; u < 4; u++ {
					bd.StT(isa.FZero, rC, int64(u*8))
				}
				bd.AddImm(rC, rC, 32)
			})
			for k := 0; k <= i; k++ {
				bd.Li(isa.R(1), int64(lB+uint64(i*n+k)*8))
				bd.LdT(isa.F(1), isa.R(1), 0)
				bd.Li(rB, int64(bB+uint64(k*p)*8))
				bd.Li(rC, int64(cB+uint64(i*p)*8))
				bd.Loop(isa.R(16), p/4, func(int) {
					for u := 0; u < 4; u++ {
						off := int64(u * 8)
						bd.LdT(isa.F(2), rB, off)
						bd.LdT(isa.F(3), rC, off)
						bd.Op3(isa.OpMULT, isa.F(2), isa.F(2), isa.F(1))
						bd.Op3(isa.OpADDT, isa.F(3), isa.F(3), isa.F(2))
						bd.StT(isa.F(3), rC, off)
					}
					bd.AddImm(rB, rB, 32)
					bd.AddImm(rC, rC, 32)
				})
			}
		}
		bd.Halt()
	}
}

func dtrmmCheck(m *arch.Machine, s Scale) error {
	n, p := dtrmmN(s)
	lB, bB, cB := dtrmmLayout(n, p)
	lv := make([]float64, n*n)
	bv := make([]float64, n*p)
	for i := range lv {
		lv[i] = ffrom(m.Mem.LoadQ(lB + uint64(i)*8))
	}
	for i := range bv {
		bv[i] = ffrom(m.Mem.LoadQ(bB + uint64(i)*8))
	}
	want := refMatMul(lv, bv, n, n, p)
	step := n*p/64 + 1
	for i := 0; i < n*p; i += step {
		got := ffrom(m.Mem.LoadQ(cB + uint64(i)*8))
		if math.Abs(got-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
			return fmt.Errorf("dtrmm: C[%d] = %g, want %g", i, got, want[i])
		}
	}
	return nil
}

var benchDtrmm = register(&Benchmark{
	Name:   "dtrmm",
	Class:  "Algebra",
	Desc:   "triangular matrix multiply, tiled",
	Pref:   true,
	Vector: dtrmmVector,
	Scalar: dtrmmScalar,
	Check:  dtrmmCheck,
})

// ---- lu / linpackTPP: in-place LU decomposition (no pivoting; the
// matrices are made diagonally dominant) ----

func luN(s Scale, tpp bool) int {
	switch s {
	case Test:
		if tpp {
			return 56
		}
		return 48
	case Full:
		if tpp {
			return 512
		}
		return 288
	}
	if tpp {
		return 256
	}
	return 192
}

func luLayout() uint64 { return 1 << 20 }

func luInit(bd *vasm.Builder, n int) {
	a := luLayout()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := float64((i*j)%7) - 3
			if i == j {
				v = float64(8*n) + float64(i%5) // diagonally dominant
			}
			bd.M.Mem.StoreQ(a+uint64(i*n+j)*8, fbits(v))
		}
	}
}

// luVector factors A in place with rank-1 row updates. When regTile is
// true (the paper register-tiled lu but not LinpackTPP, §6), four rows are
// updated per pass so each pivot-row chunk is loaded once per four rows;
// otherwise it is reloaded for every row, raising the memory-op count.
func luVector(n int, regTile, drainM bool) vasm.Kernel {
	tile := 1
	if regTile {
		tile = 4
	}
	return func(bd *vasm.Builder) {
		luInit(bd, n)
		aB := luLayout()
		rs := isa.R(9)
		rP, rI := isa.R(1), isa.R(2)
		row := func(i int) int64 { return int64(aB + uint64(i*n)*8) }
		bd.SetVSImm(rs, 8)
		for k := 0; k < n-1; k++ {
			if drainM {
				// The full solver's scalar pivot bookkeeping writes just
				// before the vector sweep reads: the code needs the DrainM
				// barrier of §3.4 once per elimination step.
				bd.DrainM()
			}
			// Multipliers: A[i][k] /= A[k][k] for i>k — a strided column
			// access (stride n·8) handled per the stride class.
			bd.Li(rP, row(k)+int64(k)*8)
			bd.LdT(isa.F(1), rP, 0) // pivot
			// recip = 1/pivot, computed once (scalar divide).
			constF64(bd, 2, 1.0)
			bd.Op3(isa.OpDIVT, isa.F(1), isa.F(2), isa.F(1))
			m := n - 1 - k
			bd.SetVSImm(isa.R(10), int64(n)*8) // column stride
			bd.Li(rI, row(k+1)+int64(k)*8)
			vchunks(bd, rs, m, func(off, vl int) {
				bd.VLdQ(isa.V(0), rI, int64(off*n)*8)
				bd.VS(isa.OpVSMULT, isa.V(0), isa.V(0), isa.F(1))
				bd.VStQ(isa.V(0), rI, int64(off*n)*8)
			})
			bd.SetVSImm(isa.R(10), 8) // back to unit stride
			// Rank-1 update of the trailing matrix, row-wise.
			width := n - 1 - k
			for i := k + 1; i < n; i += tile {
				rows := tile
				if i+rows > n {
					rows = n - i
				}
				// Multipliers for these rows.
				for r := 0; r < rows; r++ {
					bd.Li(isa.R(11), row(i+r)+int64(k)*8)
					bd.LdT(isa.F(3+r), isa.R(11), 0)
				}
				bd.Li(rP, row(k)+int64(k+1)*8)
				bd.Li(rI, row(i)+int64(k+1)*8)
				vchunks(bd, rs, width, func(j0, vl int) {
					bd.VLdQ(isa.V(10), rP, int64(j0)*8) // pivot row chunk
					for r := 0; r < rows; r++ {
						bd.VLdQ(isa.V(r), rI, int64(r*n+j0)*8)
						bd.VS(isa.OpVSMULT, isa.V(11), isa.V(10), isa.F(3+r))
						bd.VV(isa.OpVSUBT, isa.V(r), isa.V(r), isa.V(11))
						bd.VStQ(isa.V(r), rI, int64(r*n+j0)*8)
					}
				})
			}
		}
		bd.Halt()
	}
}

func luScalar(n int) vasm.Kernel {
	return func(bd *vasm.Builder) {
		luInit(bd, n)
		aB := luLayout()
		row := func(i int) int64 { return int64(aB + uint64(i*n)*8) }
		for k := 0; k < n-1; k++ {
			bd.Li(isa.R(1), row(k)+int64(k)*8)
			bd.LdT(isa.F(1), isa.R(1), 0)
			constF64(bd, 2, 1.0)
			bd.Op3(isa.OpDIVT, isa.F(1), isa.F(2), isa.F(1))
			for i := k + 1; i < n; i++ {
				bd.Li(isa.R(2), row(i)+int64(k)*8)
				bd.LdT(isa.F(3), isa.R(2), 0)
				bd.Op3(isa.OpMULT, isa.F(3), isa.F(3), isa.F(1)) // multiplier
				bd.StT(isa.F(3), isa.R(2), 0)
				width := n - 1 - k
				bd.Li(isa.R(3), row(k)+int64(k+1)*8)
				bd.Li(isa.R(4), row(i)+int64(k+1)*8)
				unroll := 4
				bd.Loop(isa.R(16), width/unroll, func(int) {
					for u := 0; u < unroll; u++ {
						off := int64(u * 8)
						bd.LdT(isa.F(4), isa.R(3), off)
						bd.LdT(isa.F(5), isa.R(4), off)
						bd.Op3(isa.OpMULT, isa.F(4), isa.F(4), isa.F(3))
						bd.Op3(isa.OpSUBT, isa.F(5), isa.F(5), isa.F(4))
						bd.StT(isa.F(5), isa.R(4), off)
					}
					bd.AddImm(isa.R(3), isa.R(3), int64(unroll)*8)
					bd.AddImm(isa.R(4), isa.R(4), int64(unroll)*8)
				})
				// Remainder elements.
				rem := width % unroll
				for u := 0; u < rem; u++ {
					off := int64(u * 8)
					bd.LdT(isa.F(4), isa.R(3), off)
					bd.LdT(isa.F(5), isa.R(4), off)
					bd.Op3(isa.OpMULT, isa.F(4), isa.F(4), isa.F(3))
					bd.Op3(isa.OpSUBT, isa.F(5), isa.F(5), isa.F(4))
					bd.StT(isa.F(5), isa.R(4), off)
				}
			}
		}
		bd.Halt()
	}
}

// luCheck verifies the in-place factorisation against a Go reference.
func luCheck(n int) func(m *arch.Machine, s Scale) error {
	return func(m *arch.Machine, s Scale) error {
		a := make([]float64, n*n)
		aB := luLayout()
		// Rebuild the original matrix and refactor it.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := float64((i*j)%7) - 3
				if i == j {
					v = float64(8*n) + float64(i%5)
				}
				a[i*n+j] = v
			}
		}
		for k := 0; k < n-1; k++ {
			recip := 1.0 / a[k*n+k]
			for i := k + 1; i < n; i++ {
				a[i*n+k] *= recip
				mult := a[i*n+k]
				for j := k + 1; j < n; j++ {
					a[i*n+j] -= mult * a[k*n+j]
				}
			}
		}
		step := n*n/64 + 1
		for i := 0; i < n*n; i += step {
			got := ffrom(m.Mem.LoadQ(aB + uint64(i)*8))
			if math.Abs(got-a[i]) > 1e-6*math.Max(1, math.Abs(a[i])) {
				return fmt.Errorf("lu: A[%d] = %g, want %g", i, got, a[i])
			}
		}
		return nil
	}
}

var benchLU = register(&Benchmark{
	Name:   "lu",
	Class:  "Algebra",
	Desc:   "lower-upper decomposition, tiled + register-tiled",
	Pref:   true,
	Vector: func(s Scale) vasm.Kernel { return luVector(luN(s, false), true, false) },
	Scalar: func(s Scale) vasm.Kernel { return luScalar(luN(s, false)) },
	Check:  func(m *arch.Machine, s Scale) error { return luCheck(luN(s, false))(m, s) },
})

var benchLinpackTPP = register(&Benchmark{
	Name:   "linpacktpp",
	Class:  "Algebra",
	Desc:   "dense linear solver, TPP rules (tiled, not register-tiled)",
	Pref:   true,
	DrainM: true,
	Vector: func(s Scale) vasm.Kernel { return luVector(luN(s, true), false, true) },
	Scalar: func(s Scale) vasm.Kernel { return luScalar(luN(s, true)) },
	Check:  func(m *arch.Machine, s Scale) error { return luCheck(luN(s, true))(m, s) },
})

// ---- linpack100: 100×100, column-major daxpy form, no reorganisation ----

const linpackN = 100

func linpackLayout() uint64 { return 1 << 20 }

func linpackInit(bd *vasm.Builder) {
	a := linpackLayout()
	// Column-major storage, diagonally dominant.
	for j := 0; j < linpackN; j++ {
		for i := 0; i < linpackN; i++ {
			v := float64((i*j)%11) - 5
			if i == j {
				v = float64(16 * linpackN)
			}
			bd.M.Mem.StoreQ(a+uint64(j*linpackN+i)*8, fbits(v))
		}
	}
}

func linpack100Vector(s Scale) vasm.Kernel {
	return func(bd *vasm.Builder) {
		linpackInit(bd)
		aB := linpackLayout()
		col := func(j int) int64 { return int64(aB + uint64(j*linpackN)*8) }
		rs := isa.R(9)
		bd.SetVSImm(rs, 8)
		for k := 0; k < linpackN-1; k++ {
			m := linpackN - 1 - k
			// The real dgefa's scalar pivot search and row swap write just
			// ahead of the vector daxpys: DrainM orders them (§3.4).
			bd.DrainM()
			// Scale column k below the diagonal: vl = m (short vectors —
			// the reason linpack100 trails linpackTPP in Figure 6).
			bd.Li(isa.R(1), col(k)+int64(k)*8)
			bd.LdT(isa.F(1), isa.R(1), 0)
			constF64(bd, 2, -1.0)
			bd.Op3(isa.OpDIVT, isa.F(1), isa.F(2), isa.F(1)) // -1/pivot
			bd.SetVLImm(rs, m)
			bd.VLdQ(isa.V(0), isa.R(1), 8)
			bd.VS(isa.OpVSMULT, isa.V(0), isa.V(0), isa.F(1))
			bd.VStQ(isa.V(0), isa.R(1), 8)
			// daxpy into each trailing column: col_j += m_col * a[k][j].
			for j := k + 1; j < linpackN; j++ {
				bd.Li(isa.R(2), col(j)+int64(k)*8)
				bd.LdT(isa.F(3), isa.R(2), 0) // a[k][j]
				bd.VLdQ(isa.V(1), isa.R(2), 8)
				bd.VS(isa.OpVSMULT, isa.V(2), isa.V(0), isa.F(3))
				bd.VV(isa.OpVADDT, isa.V(1), isa.V(1), isa.V(2))
				bd.VStQ(isa.V(1), isa.R(2), 8)
			}
		}
		bd.Halt()
	}
}

func linpack100Scalar(s Scale) vasm.Kernel {
	return func(bd *vasm.Builder) {
		linpackInit(bd)
		aB := linpackLayout()
		col := func(j int) int64 { return int64(aB + uint64(j*linpackN)*8) }
		for k := 0; k < linpackN-1; k++ {
			m := linpackN - 1 - k
			bd.Li(isa.R(1), col(k)+int64(k)*8)
			bd.LdT(isa.F(1), isa.R(1), 0)
			constF64(bd, 2, -1.0)
			bd.Op3(isa.OpDIVT, isa.F(1), isa.F(2), isa.F(1))
			for i := 0; i < m; i++ {
				off := int64(i+1) * 8
				bd.LdT(isa.F(3), isa.R(1), off)
				bd.Op3(isa.OpMULT, isa.F(3), isa.F(3), isa.F(1))
				bd.StT(isa.F(3), isa.R(1), off)
			}
			for j := k + 1; j < linpackN; j++ {
				bd.Li(isa.R(2), col(j)+int64(k)*8)
				bd.LdT(isa.F(3), isa.R(2), 0)
				bd.Li(isa.R(3), col(k)+int64(k)*8)
				bd.Loop(isa.R(16), m, func(i int) {
					off := int64(i+1) * 8
					bd.LdT(isa.F(4), isa.R(3), off) // multiplier
					bd.LdT(isa.F(5), isa.R(2), off)
					bd.Op3(isa.OpMULT, isa.F(4), isa.F(4), isa.F(3))
					bd.Op3(isa.OpADDT, isa.F(5), isa.F(5), isa.F(4))
					bd.StT(isa.F(5), isa.R(2), off)
				})
			}
		}
		bd.Halt()
	}
}

func linpack100Check(m *arch.Machine, s Scale) error {
	n := linpackN
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := float64((i*j)%11) - 5
			if i == j {
				v = float64(16 * n)
			}
			a[j*n+i] = v
		}
	}
	for k := 0; k < n-1; k++ {
		scale := -1.0 / a[k*n+k]
		for i := k + 1; i < n; i++ {
			a[k*n+i] *= scale
		}
		for j := k + 1; j < n; j++ {
			t := a[j*n+k]
			for i := k + 1; i < n; i++ {
				a[j*n+i] += a[k*n+i] * t
			}
		}
	}
	aB := linpackLayout()
	for idx := 0; idx < n*n; idx += 131 {
		got := ffrom(m.Mem.LoadQ(aB + uint64(idx)*8))
		if math.Abs(got-a[idx]) > 1e-6*math.Max(1, math.Abs(a[idx])) {
			return fmt.Errorf("linpack100: a[%d] = %g, want %g", idx, got, a[idx])
		}
	}
	return nil
}

var benchLinpack100 = register(&Benchmark{
	Name:   "linpack100",
	Class:  "Algebra",
	Desc:   "100×100 dense solver, daxpy form, no code reorganisation",
	Pref:   true,
	DrainM: true,
	Vector: linpack100Vector,
	Scalar: linpack100Scalar,
	Check:  linpack100Check,
})
