package workloads

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/vasm"
)

// ---- fft: radix-4 decimation-in-frequency, batched across transforms ----
//
// The vector form follows the standard batched layout: F independent
// transforms stored point-major ([point][fft]), so every butterfly operand
// is a stride-1 vector of length F across the batch and the twiddles are
// scalars riding the operand buses (VS group). Output is left in
// digit-reversed order, as the paper's libraries did between passes; the
// checker applies the digit reversal.

func fftN(s Scale) (points, batch, sets int) {
	switch s {
	case Test:
		return 64, 128, 1
	case Full:
		return 1024, 128, 4
	}
	return 256, 128, 2
}

func fftLayout(points, batch int) (re, im, tw uint64) {
	re = 1 << 20
	im = re + uint64(points*batch)*8 + 4096
	tw = im + uint64(points*batch)*8 + 4096
	return
}

func fftInitVals(points, batch int) (re, im []float64) {
	re = make([]float64, points*batch)
	im = make([]float64, points*batch)
	for k := 0; k < points; k++ {
		for f := 0; f < batch; f++ {
			re[k*batch+f] = math.Sin(float64(k)*0.3 + float64(f)*0.011)
			im[k*batch+f] = math.Cos(float64(k)*0.7 - float64(f)*0.017)
		}
	}
	return
}

// fftRef runs the same radix-4 DIF on the host (output digit-reversed).
func fftRef(points, batch, sets int) (re, im []float64) {
	re, im = fftInitVals(points, batch)
	for s := 0; s < sets; s++ {
		for f := 0; f < batch; f++ {
			for span := points / 4; span >= 1; span /= 4 {
				for j0 := 0; j0 < points; j0 += 4 * span {
					for k := 0; k < span; k++ {
						i0, i1, i2, i3 := j0+k, j0+k+span, j0+k+2*span, j0+k+3*span
						ar, ai := re[i0*batch+f], im[i0*batch+f]
						br, bi := re[i1*batch+f], im[i1*batch+f]
						cr, ci := re[i2*batch+f], im[i2*batch+f]
						dr, di := re[i3*batch+f], im[i3*batch+f]
						t0r, t0i := ar+cr, ai+ci
						t1r, t1i := ar-cr, ai-ci
						t2r, t2i := br+dr, bi+di
						t3r, t3i := bi-di, dr-br // -j(b-d)
						ang := -2 * math.Pi * float64(k) / float64(4*span)
						w1r, w1i := math.Cos(ang), math.Sin(ang)
						w2r, w2i := math.Cos(2*ang), math.Sin(2*ang)
						w3r, w3i := math.Cos(3*ang), math.Sin(3*ang)
						re[i0*batch+f], im[i0*batch+f] = t0r+t2r, t0i+t2i
						u1r, u1i := t1r+t3r, t1i+t3i
						re[i1*batch+f], im[i1*batch+f] = u1r*w1r-u1i*w1i, u1r*w1i+u1i*w1r
						u2r, u2i := t0r-t2r, t0i-t2i
						re[i2*batch+f], im[i2*batch+f] = u2r*w2r-u2i*w2i, u2r*w2i+u2i*w2r
						u3r, u3i := t1r-t3r, t1i-t3i
						re[i3*batch+f], im[i3*batch+f] = u3r*w3r-u3i*w3i, u3r*w3i+u3i*w3r
					}
				}
			}
		}
	}
	return
}

// fftTwiddles writes the per-(stage,k) twiddle table: 6 doubles per entry.
func fftTwiddles(bd *vasm.Builder, points int, tw uint64) map[[2]int]uint64 {
	idx := map[[2]int]uint64{}
	pos := tw
	for span := points / 4; span >= 1; span /= 4 {
		for k := 0; k < span; k++ {
			ang := -2 * math.Pi * float64(k) / float64(4*span)
			vals := []float64{
				math.Cos(ang), math.Sin(ang),
				math.Cos(2 * ang), math.Sin(2 * ang),
				math.Cos(3 * ang), math.Sin(3 * ang),
			}
			idx[[2]int{span, k}] = pos
			for _, v := range vals {
				bd.M.Mem.StoreQ(pos, fbits(v))
				pos += 8
			}
		}
	}
	return idx
}

func fftVector(s Scale) vasm.Kernel {
	points, batch, sets := fftN(s)
	return func(bd *vasm.Builder) {
		reB, imB, twB := fftLayout(points, batch)
		re0, im0 := fftInitVals(points, batch)
		fillF64(bd, reB, re0)
		fillF64(bd, imB, im0)
		twIdx := fftTwiddles(bd, points, twB)
		rs := isa.R(9)
		rT := isa.R(8)
		bd.SetVSImm(rs, 8)
		bd.SetVLImm(rs, batch)
		rowB := int64(batch) * 8
		ld := func(v isa.Reg, base uint64, row int) {
			bd.Li(isa.R(1), int64(base)+int64(row)*rowB)
			bd.VLdQ(v, isa.R(1), 0)
		}
		st := func(v isa.Reg, base uint64, row int) {
			bd.Li(isa.R(1), int64(base)+int64(row)*rowB)
			bd.VStQ(v, isa.R(1), 0)
		}
		// Complex multiply helper: (vr,vi) *= scalar (fr,fi); clobbers v14/v15.
		cmul := func(vr, vi isa.Reg, fr, fi isa.Reg) {
			bd.VS(isa.OpVSMULT, isa.V(14), vr, fr)
			bd.VS(isa.OpVSMULT, isa.V(15), vi, fi)
			bd.VV(isa.OpVSUBT, isa.V(14), isa.V(14), isa.V(15)) // new re
			bd.VS(isa.OpVSMULT, isa.V(15), vr, fi)
			bd.VS(isa.OpVSMULT, vr, vi, fr)
			bd.VV(isa.OpVADDT, vi, isa.V(15), vr) // new im
			bd.VV(isa.OpVBIS, vr, isa.V(14), isa.V(14))
		}
		for set := 0; set < sets; set++ {
			for span := points / 4; span >= 1; span /= 4 {
				for j0 := 0; j0 < points; j0 += 4 * span {
					for k := 0; k < span; k++ {
						i0, i1, i2, i3 := j0+k, j0+k+span, j0+k+2*span, j0+k+3*span
						// Load twiddles (6 scalar loads from the table).
						bd.Li(rT, int64(twIdx[[2]int{span, k}]))
						for w := 0; w < 6; w++ {
							bd.LdT(isa.F(1+w), rT, int64(w)*8)
						}
						ld(isa.V(0), reB, i0) // a
						ld(isa.V(1), imB, i0)
						ld(isa.V(2), reB, i1) // b
						ld(isa.V(3), imB, i1)
						ld(isa.V(4), reB, i2) // c
						ld(isa.V(5), imB, i2)
						ld(isa.V(6), reB, i3) // d
						ld(isa.V(7), imB, i3)
						// t0 = a+c (v8,v9); t1 = a-c (v0,v1 reuse)
						bd.VV(isa.OpVADDT, isa.V(8), isa.V(0), isa.V(4))
						bd.VV(isa.OpVADDT, isa.V(9), isa.V(1), isa.V(5))
						bd.VV(isa.OpVSUBT, isa.V(0), isa.V(0), isa.V(4))
						bd.VV(isa.OpVSUBT, isa.V(1), isa.V(1), isa.V(5))
						// t2 = b+d (v10,v11); t3 = -j(b-d) = (bi-di, dr-br) (v12,v13)
						bd.VV(isa.OpVADDT, isa.V(10), isa.V(2), isa.V(6))
						bd.VV(isa.OpVADDT, isa.V(11), isa.V(3), isa.V(7))
						bd.VV(isa.OpVSUBT, isa.V(12), isa.V(3), isa.V(7))
						bd.VV(isa.OpVSUBT, isa.V(13), isa.V(6), isa.V(2))
						// x0 = t0 + t2 → rows i0
						bd.VV(isa.OpVADDT, isa.V(2), isa.V(8), isa.V(10))
						bd.VV(isa.OpVADDT, isa.V(3), isa.V(9), isa.V(11))
						st(isa.V(2), reB, i0)
						st(isa.V(3), imB, i0)
						// x1 = (t1 + t3)·W1 → rows i1
						bd.VV(isa.OpVADDT, isa.V(2), isa.V(0), isa.V(12))
						bd.VV(isa.OpVADDT, isa.V(3), isa.V(1), isa.V(13))
						cmul(isa.V(2), isa.V(3), isa.F(1), isa.F(2))
						st(isa.V(2), reB, i1)
						st(isa.V(3), imB, i1)
						// x2 = (t0 - t2)·W2 → rows i2
						bd.VV(isa.OpVSUBT, isa.V(2), isa.V(8), isa.V(10))
						bd.VV(isa.OpVSUBT, isa.V(3), isa.V(9), isa.V(11))
						cmul(isa.V(2), isa.V(3), isa.F(3), isa.F(4))
						st(isa.V(2), reB, i2)
						st(isa.V(3), imB, i2)
						// x3 = (t1 - t3)·W3 → rows i3
						bd.VV(isa.OpVSUBT, isa.V(2), isa.V(0), isa.V(12))
						bd.VV(isa.OpVSUBT, isa.V(3), isa.V(1), isa.V(13))
						cmul(isa.V(2), isa.V(3), isa.F(5), isa.F(6))
						st(isa.V(2), reB, i3)
						st(isa.V(3), imB, i3)
					}
				}
			}
		}
		bd.Halt()
	}
}

func fftScalar(s Scale) vasm.Kernel {
	points, batch, sets := fftN(s)
	return func(bd *vasm.Builder) {
		reB, imB, twB := fftLayout(points, batch)
		re0, im0 := fftInitVals(points, batch)
		fillF64(bd, reB, re0)
		fillF64(bd, imB, im0)
		twIdx := fftTwiddles(bd, points, twB)
		rowB := int64(batch) * 8
		rT, rF := isa.R(8), isa.R(7)
		// cmulS: (f20,f21) *= (fr,fi), clobbers f22/f23.
		cmulS := func(fr, fi isa.Reg) {
			bd.Op3(isa.OpMULT, isa.F(22), isa.F(20), fr)
			bd.Op3(isa.OpMULT, isa.F(23), isa.F(21), fi)
			bd.Op3(isa.OpSUBT, isa.F(22), isa.F(22), isa.F(23))
			bd.Op3(isa.OpMULT, isa.F(23), isa.F(20), fi)
			bd.Op3(isa.OpMULT, isa.F(20), isa.F(21), fr)
			bd.Op3(isa.OpADDT, isa.F(21), isa.F(23), isa.F(20))
			bd.Op3(isa.OpADDT, isa.F(20), isa.F(22), isa.FZero)
		}
		for set := 0; set < sets; set++ {
			for span := points / 4; span >= 1; span /= 4 {
				for j0 := 0; j0 < points; j0 += 4 * span {
					for k := 0; k < span; k++ {
						i0, i1, i2, i3 := j0+k, j0+k+span, j0+k+2*span, j0+k+3*span
						bd.Li(rT, int64(twIdx[[2]int{span, k}]))
						for w := 0; w < 6; w++ {
							bd.LdT(isa.F(1+w), rT, int64(w)*8)
						}
						// Loop over the batch of transforms.
						bd.Li(rF, 0)
						bd.Loop(isa.R(16), batch, func(int) {
							base := func(b uint64, row int) isa.Reg {
								bd.Li(isa.R(1), int64(b)+int64(row)*rowB)
								bd.Op3(isa.OpADDQ, isa.R(1), isa.R(1), rF)
								return isa.R(1)
							}
							ldf := func(f isa.Reg, b uint64, row int) {
								bd.LdT(f, base(b, row), 0)
							}
							stf := func(f isa.Reg, b uint64, row int) {
								bd.StT(f, base(b, row), 0)
							}
							ldf(isa.F(8), reB, i0)  // ar
							ldf(isa.F(9), imB, i0)  // ai
							ldf(isa.F(10), reB, i1) // br
							ldf(isa.F(11), imB, i1)
							ldf(isa.F(12), reB, i2) // cr
							ldf(isa.F(13), imB, i2)
							ldf(isa.F(14), reB, i3) // dr
							ldf(isa.F(15), imB, i3)
							// t0 (f16,f17), t1 (f8,f9)
							bd.Op3(isa.OpADDT, isa.F(16), isa.F(8), isa.F(12))
							bd.Op3(isa.OpADDT, isa.F(17), isa.F(9), isa.F(13))
							bd.Op3(isa.OpSUBT, isa.F(8), isa.F(8), isa.F(12))
							bd.Op3(isa.OpSUBT, isa.F(9), isa.F(9), isa.F(13))
							// t2 (f18,f19), t3 (f12,f13)
							bd.Op3(isa.OpADDT, isa.F(18), isa.F(10), isa.F(14))
							bd.Op3(isa.OpADDT, isa.F(19), isa.F(11), isa.F(15))
							bd.Op3(isa.OpSUBT, isa.F(12), isa.F(11), isa.F(15))
							bd.Op3(isa.OpSUBT, isa.F(13), isa.F(14), isa.F(10))
							// x0
							bd.Op3(isa.OpADDT, isa.F(20), isa.F(16), isa.F(18))
							bd.Op3(isa.OpADDT, isa.F(21), isa.F(17), isa.F(19))
							stf(isa.F(20), reB, i0)
							stf(isa.F(21), imB, i0)
							// x1
							bd.Op3(isa.OpADDT, isa.F(20), isa.F(8), isa.F(12))
							bd.Op3(isa.OpADDT, isa.F(21), isa.F(9), isa.F(13))
							cmulS(isa.F(1), isa.F(2))
							stf(isa.F(20), reB, i1)
							stf(isa.F(21), imB, i1)
							// x2
							bd.Op3(isa.OpSUBT, isa.F(20), isa.F(16), isa.F(18))
							bd.Op3(isa.OpSUBT, isa.F(21), isa.F(17), isa.F(19))
							cmulS(isa.F(3), isa.F(4))
							stf(isa.F(20), reB, i2)
							stf(isa.F(21), imB, i2)
							// x3
							bd.Op3(isa.OpSUBT, isa.F(20), isa.F(8), isa.F(12))
							bd.Op3(isa.OpSUBT, isa.F(21), isa.F(9), isa.F(13))
							cmulS(isa.F(5), isa.F(6))
							stf(isa.F(20), reB, i3)
							stf(isa.F(21), imB, i3)
							bd.AddImm(rF, rF, 8)
						})
					}
				}
			}
		}
		bd.Halt()
	}
}

func fftCheck(m *arch.Machine, s Scale) error {
	points, batch, sets := fftN(s)
	reB, imB, _ := fftLayout(points, batch)
	wantRe, wantIm := fftRef(points, batch, sets)
	for idx := 0; idx < points*batch; idx += 271 {
		gr := ffrom(m.Mem.LoadQ(reB + uint64(idx)*8))
		gi := ffrom(m.Mem.LoadQ(imB + uint64(idx)*8))
		if math.Abs(gr-wantRe[idx]) > 1e-6 || math.Abs(gi-wantIm[idx]) > 1e-6 {
			return fmt.Errorf("fft: elem %d = (%g,%g), want (%g,%g)",
				idx, gr, gi, wantRe[idx], wantIm[idx])
		}
	}
	return nil
}

var benchFFT = register(&Benchmark{
	Name:   "fft",
	Class:  "Algebra",
	Desc:   "radix-4 FFT, batched across independent transforms",
	Pref:   true,
	Vector: fftVector,
	Scalar: fftScalar,
	Check:  fftCheck,
})
