package tables

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// goldenCells loads the pre-refactor full test-scale sweep captured in
// testdata: every (benchmark, machine) cell's counters as they were before
// the typed metrics registry replaced direct stats.Stats mutation.
func goldenCells(t *testing.T) map[[2]string]*stats.Stats {
	t.Helper()
	raw, err := os.ReadFile("testdata/golden_cells_test_scale.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Scale string `json:"scale"`
		Cells []struct {
			Bench  string       `json:"bench"`
			Config string       `json:"config"`
			Stats  *stats.Stats `json:"stats"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Scale != "test" {
		t.Fatalf("golden scale %q, want test", doc.Scale)
	}
	out := make(map[[2]string]*stats.Stats, len(doc.Cells))
	for _, c := range doc.Cells {
		out[[2]string{c.Bench, c.Config}] = c.Stats
	}
	return out
}

// fullSweep reproduces the tartables -all cell set on r: every table and
// figure that runs simulations, in the CLI's order (Table 4 stamps
// UsefulBytes into its kernels' stats, so ordering is part of the contract).
func fullSweep(t *testing.T, r *Runner) []CellResult {
	t.Helper()
	r.Prewarm()
	if _, err := r.Table2(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Table4(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fig6(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fig7(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fig8(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Fig9(); err != nil {
		t.Fatal(err)
	}
	return r.Cells()
}

// TestSweepMatchesPreRefactorGolden is the refactor's central guarantee,
// checked against a committed artifact rather than a same-build A/B: every
// counter of every cell in the full test-scale sweep is bit-identical to
// the sweep captured before counters moved behind the metrics registry.
func TestSweepMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full test-scale sweep (~10s) skipped in -short mode")
	}
	golden := goldenCells(t)
	r := NewRunner(workloads.Test)
	r.Quiet = true
	r.Parallel = runtime.GOMAXPROCS(0)
	cells := fullSweep(t, r)
	if len(cells) != len(golden) {
		t.Errorf("sweep produced %d cells, golden has %d", len(cells), len(golden))
	}
	seen := map[[2]string]bool{}
	for _, c := range cells {
		id := [2]string{c.Bench, c.Config}
		seen[id] = true
		want, ok := golden[id]
		if !ok {
			t.Errorf("%s on %s: not in the golden capture", c.Bench, c.Config)
			continue
		}
		if c.Err != "" {
			t.Errorf("%s on %s: failed: %s", c.Bench, c.Config, c.Err)
			continue
		}
		if *c.Res.Stats != *want {
			t.Errorf("%s on %s: counters drifted from the pre-refactor golden:\n  got:  %+v\n  want: %+v",
				c.Bench, c.Config, *c.Res.Stats, *want)
		}
	}
	for id := range golden {
		if !seen[id] {
			t.Errorf("%s on %s: in the golden capture but missing from the sweep", id[0], id[1])
		}
	}
}

// TestSampledSweepBitIdentical is the observation-only contract at sweep
// granularity: running the identical sweep with the cycle-interval sampler
// armed leaves every cell's counters bit-identical to the golden while
// attaching a series to every successful cell — and the sampling knob does
// not move any cell's content key.
func TestSampledSweepBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full test-scale sweep (~10s) skipped in -short mode")
	}
	golden := goldenCells(t)
	plain := NewRunner(workloads.Test)
	sampled := NewRunner(workloads.Test)
	sampled.Quiet = true
	sampled.Parallel = runtime.GOMAXPROCS(0)
	sampled.SampleEvery = 1000
	cells := fullSweep(t, sampled)
	for _, c := range cells {
		if c.Err != "" {
			t.Errorf("%s on %s: failed: %s", c.Bench, c.Config, c.Err)
			continue
		}
		if want, ok := golden[[2]string{c.Bench, c.Config}]; ok && *c.Res.Stats != *want {
			t.Errorf("%s on %s: sampling changed the counters:\n  got:  %+v\n  want: %+v",
				c.Bench, c.Config, *c.Res.Stats, *want)
		}
		if c.Res.Series == nil || len(c.Res.Series.Points) == 0 {
			t.Errorf("%s on %s: sampled cell carries no series", c.Bench, c.Config)
		}
	}
	// Spot-check the key invariance on one cell of each kind.
	for _, probe := range []struct{ bench, config string }{
		{"streams_copy", "T"}, {"dgemm", "EV8"},
	} {
		cfg := sim.ByName(probe.config)
		if cfg == nil {
			t.Fatalf("unknown config %q", probe.config)
		}
		if pk, sk := plain.CellKey(probe.bench, cfg), sampled.CellKey(probe.bench, cfg); pk != sk {
			t.Errorf("%s on %s: sampling knob moved the cell key %s -> %s",
				probe.bench, probe.config, pk, sk)
		}
	}
}
