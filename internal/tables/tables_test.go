package tables

import (
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func TestTable1Renders(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Vbox", "Gflops/Watt", "3.6X"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable3AllConfigs(t *testing.T) {
	s := Table3()
	for _, want := range []string{"EV8+", "T10", "32+32", "RAMBUS ports"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, s)
		}
	}
}

func TestTable4SmallScale(t *testing.T) {
	r := NewRunner(workloads.Test)
	r.Quiet = true
	rows, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, row := range rows {
		if row.StreamsMBs <= 0 {
			t.Errorf("%s: zero bandwidth", row.Name)
		}
	}
	// The paper's strongest Table 4 contrast: RndMemScale far below the
	// STREAMS kernels, RndCopy (L2-resident) above RndMemScale.
	byName := map[string]Table4Row{}
	for _, row := range rows {
		byName[row.Name] = row
	}
	if byName["rndmemscale"].StreamsMBs >= byName["streams_copy"].StreamsMBs/2 {
		t.Error("RndMemScale should be far below STREAMS copy")
	}
	if byName["rndcopy"].StreamsMBs <= byName["rndmemscale"].StreamsMBs {
		t.Error("L2-resident RndCopy should beat memory-resident RndMemScale")
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "paper strm") {
		t.Error("formatted table missing paper column")
	}
}

func TestFig9SubsetShape(t *testing.T) {
	// Run a focused Figure 9 contrast at test scale: a stride-1-hungry
	// benchmark must lose more from the pump ablation than a flop-bound
	// one. (The full sweep is the Fig9 benchmark; this guards the shape.)
	r := NewRunner(workloads.Test)
	r.Quiet = true
	rows, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	rel := map[string]float64{}
	for _, row := range rows {
		rel[row.Name] = row.Relative
		if row.Relative > 1.05 {
			t.Errorf("%s got faster without the pump (%.2f)", row.Name, row.Relative)
		}
	}
	if rel["linpack100"] >= rel["dgemm"] {
		t.Errorf("linpack100 (%.2f) should suffer more than dgemm (%.2f) without the pump",
			rel["linpack100"], rel["dgemm"])
	}
}

// TestParallelSweepDeterministic runs the same sweep sequentially and on a
// 4-worker pool and requires byte-identical formatted output and identical
// memoised statistics — parallelism must be invisible in the results.
func TestParallelSweepDeterministic(t *testing.T) {
	seq := NewRunner(workloads.Test)
	seq.Quiet, seq.Parallel = true, 1
	par := NewRunner(workloads.Test)
	par.Quiet, par.Parallel = true, 4

	seqRows, err := seq.Table4()
	if err != nil {
		t.Fatal(err)
	}
	parRows, err := par.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if s, p := FormatTable4(seqRows), FormatTable4(parRows); s != p {
		t.Errorf("parallel Table 4 differs from sequential:\nseq:\n%s\npar:\n%s", s, p)
	}
	for key, sc := range seq.results {
		pc, ok := par.results[key]
		if !ok {
			t.Errorf("parallel runner never ran %s", key)
			continue
		}
		if *sc.res.Stats != *pc.res.Stats {
			t.Errorf("%s: parallel run changed the statistics:\nseq: %+v\npar: %+v",
				key, *sc.res.Stats, *pc.res.Stats)
		}
	}
}

// ---- confhash memoisation key (PR 3) ----

// TestCellKeyContentAddressed proves the memo key is the experiment's
// content, not its display name: identical configs collide (dedup) and any
// integrity knob — deadline, checker, watchdog, fault campaign — separates
// them.
func TestCellKeyContentAddressed(t *testing.T) {
	r := NewRunner(workloads.Test)
	base := r.CellKey("dgemm", sim.T())
	if got := r.CellKey("dgemm", sim.T()); got != base {
		t.Fatal("two identical cells got different keys")
	}
	renamed := sim.T()
	renamed.Name = "T-alias"
	if got := r.CellKey("dgemm", renamed); got != base {
		t.Fatal("renaming a config changed its cell key")
	}
	if got := r.CellKey("dtrmm", sim.T()); got == base {
		t.Fatal("different benchmarks share a cell key")
	}

	rd := NewRunner(workloads.Test)
	rd.Deadline = 90 * time.Second
	if got := rd.CellKey("dgemm", sim.T()); got == base {
		t.Fatal("a deadline-decorated cell aliases the plain one")
	}
	rc := NewRunner(workloads.Test)
	rc.Check = true
	if got := rc.CellKey("dgemm", sim.T()); got == base {
		t.Fatal("a checker-decorated cell aliases the plain one")
	}
	rw := NewRunner(workloads.Test)
	rw.Watchdog = 12345
	if got := rw.CellKey("dgemm", sim.T()); got == base {
		t.Fatal("a watchdog-decorated cell aliases the plain one")
	}
	rf := NewRunner(workloads.Test)
	rf.Faults = &faults.Config{Seed: 1, MemJitter: 8, Cells: []string{"dgemm@T"}}
	if got := rf.CellKey("dgemm", sim.T()); got == base {
		t.Fatal("a fault-targeted cell aliases the plain one")
	}
	// The same campaign NOT targeting this cell must leave the key alone,
	// or an injected sweep would never share work with a clean one.
	if got := rf.CellKey("dtrmm", sim.T()); got != r.CellKey("dtrmm", sim.T()) {
		t.Fatal("an untargeted cell's key changed under a fault campaign")
	}

	rs := NewRunner(workloads.Bench)
	if got := rs.CellKey("dgemm", sim.T()); got == base {
		t.Fatal("different scales share a cell key")
	}
}

// TestCellsSnapshotDeterministic runs two cells and checks the exported
// snapshot carries keys, display identity and results in sorted order.
func TestCellsSnapshotDeterministic(t *testing.T) {
	r := NewRunner(workloads.Test)
	r.Quiet = true
	r.Parallel = 1
	if _, err := r.run("streams_copy", sim.T()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.run("streams_copy", sim.EV8()); err != nil {
		t.Fatal(err)
	}
	cells := r.Cells()
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Config != "EV8" || cells[1].Config != "T" {
		t.Fatalf("cells not sorted: %q, %q", cells[0].Config, cells[1].Config)
	}
	for _, c := range cells {
		if c.Key == "" || c.Res == nil || c.Err != "" {
			t.Fatalf("bad cell %+v", c)
		}
		if c.Key != r.CellKey(c.Bench, sim.ByName(c.Config)) {
			t.Fatalf("cell key mismatch for %s@%s", c.Bench, c.Config)
		}
	}
}
