package tables

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func TestTable1Renders(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Vbox", "Gflops/Watt", "3.6X"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable3AllConfigs(t *testing.T) {
	s := Table3()
	for _, want := range []string{"EV8+", "T10", "32+32", "RAMBUS ports"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, s)
		}
	}
}

func TestTable4SmallScale(t *testing.T) {
	r := NewRunner(workloads.Test)
	r.Quiet = true
	rows, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, row := range rows {
		if row.StreamsMBs <= 0 {
			t.Errorf("%s: zero bandwidth", row.Name)
		}
	}
	// The paper's strongest Table 4 contrast: RndMemScale far below the
	// STREAMS kernels, RndCopy (L2-resident) above RndMemScale.
	byName := map[string]Table4Row{}
	for _, row := range rows {
		byName[row.Name] = row
	}
	if byName["rndmemscale"].StreamsMBs >= byName["streams_copy"].StreamsMBs/2 {
		t.Error("RndMemScale should be far below STREAMS copy")
	}
	if byName["rndcopy"].StreamsMBs <= byName["rndmemscale"].StreamsMBs {
		t.Error("L2-resident RndCopy should beat memory-resident RndMemScale")
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "paper strm") {
		t.Error("formatted table missing paper column")
	}
}

func TestFig9SubsetShape(t *testing.T) {
	// Run a focused Figure 9 contrast at test scale: a stride-1-hungry
	// benchmark must lose more from the pump ablation than a flop-bound
	// one. (The full sweep is the Fig9 benchmark; this guards the shape.)
	r := NewRunner(workloads.Test)
	r.Quiet = true
	rows, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	rel := map[string]float64{}
	for _, row := range rows {
		rel[row.Name] = row.Relative
		if row.Relative > 1.05 {
			t.Errorf("%s got faster without the pump (%.2f)", row.Name, row.Relative)
		}
	}
	if rel["linpack100"] >= rel["dgemm"] {
		t.Errorf("linpack100 (%.2f) should suffer more than dgemm (%.2f) without the pump",
			rel["linpack100"], rel["dgemm"])
	}
}

// TestParallelSweepDeterministic runs the same sweep sequentially and on a
// 4-worker pool and requires byte-identical formatted output and identical
// memoised statistics — parallelism must be invisible in the results.
func TestParallelSweepDeterministic(t *testing.T) {
	seq := NewRunner(workloads.Test)
	seq.Quiet, seq.Parallel = true, 1
	par := NewRunner(workloads.Test)
	par.Quiet, par.Parallel = true, 4

	seqRows, err := seq.Table4()
	if err != nil {
		t.Fatal(err)
	}
	parRows, err := par.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if s, p := FormatTable4(seqRows), FormatTable4(parRows); s != p {
		t.Errorf("parallel Table 4 differs from sequential:\nseq:\n%s\npar:\n%s", s, p)
	}
	for key, sc := range seq.results {
		pc, ok := par.results[key]
		if !ok {
			t.Errorf("parallel runner never ran %s", key)
			continue
		}
		if *sc.res.Stats != *pc.res.Stats {
			t.Errorf("%s: parallel run changed the statistics:\nseq: %+v\npar: %+v",
				key, *sc.res.Stats, *pc.res.Stats)
		}
	}
}
