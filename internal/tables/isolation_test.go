package tables

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vasm"
	"repro/internal/workloads"
)

// TestSweepIsolation is the fault drill the per-cell hardening exists for: a
// campaign wedges exactly one cell of the Table 4 sweep, which must come
// back as an error row carrying the watchdog diagnostics while every other
// row stays bit-identical to a fault-free sequential run.
func TestSweepIsolation(t *testing.T) {
	clean := NewRunner(workloads.Test)
	clean.Quiet = true
	want, err := clean.Table4()
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner(workloads.Test)
	r.Quiet = true
	r.Watchdog = 30_000
	r.Faults = &faults.Config{Cells: []string{"streams_add@T"}, StallStormFrom: 300}
	got, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i, row := range got {
		if row.Name == "streams_add" {
			if row.Err == "" {
				t.Fatal("wedged cell streams_add did not produce an error row")
			}
			if !strings.Contains(row.Err, "no retirement progress") {
				t.Errorf("error row %q missing the watchdog diagnostics", row.Err)
			}
			continue
		}
		if row != want[i] {
			t.Errorf("untargeted cell %s diverged from the fault-free run:\n  got:  %+v\n  want: %+v",
				row.Name, row, want[i])
		}
	}
}

// TestSweepIsolationParallel repeats the drill through the worker pool: the
// wedge verdict and the surviving rows must not depend on scheduling.
func TestSweepIsolationParallel(t *testing.T) {
	seq := NewRunner(workloads.Test)
	seq.Quiet = true
	seq.Watchdog = 30_000
	seq.Faults = &faults.Config{Cells: []string{"streams_add@T"}, StallStormFrom: 300}
	want, err := seq.Table4()
	if err != nil {
		t.Fatal(err)
	}

	par := NewRunner(workloads.Test)
	par.Quiet = true
	par.Parallel = 4
	par.Watchdog = 30_000
	par.Faults = &faults.Config{Cells: []string{"streams_add@T"}, StallStormFrom: 300}
	got, err := par.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %s differs between sequential and parallel fault runs:\n  seq: %+v\n  par: %+v",
				want[i].Name, want[i], got[i])
		}
	}
}

// TestCellPanicIsolated: a cell whose code panics outright (here a broken
// functional Check) must yield an error, not take the sweep down.
func TestCellPanicIsolated(t *testing.T) {
	r := NewRunner(workloads.Test)
	r.Quiet = true
	bad := &workloads.Benchmark{
		Name: "boom",
		Vector: func(s workloads.Scale) vasm.Kernel {
			return func(b *vasm.Builder) {
				b.VV(isa.OpVADDQ, isa.V(1), isa.V(2), isa.V(3))
				b.Halt()
			}
		},
		Check: func(m *arch.Machine, s workloads.Scale) error { panic("kaboom") },
	}
	_, err := r.runCell(bad, "boom", sim.T())
	if err == nil {
		t.Fatal("panicking cell returned no error")
	}
	if !strings.Contains(err.Error(), "cell panicked") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error %q missing the panic diagnostics", err)
	}
}

// TestDecorateLeavesUntargetedCellsAlone: with only a fault campaign set,
// untargeted cells must receive the original *sim.Config pointer — that is
// what makes their rows bit-identical by construction.
func TestDecorateLeavesUntargetedCellsAlone(t *testing.T) {
	r := NewRunner(workloads.Test)
	r.Faults = &faults.Config{Cells: []string{"streams_add@T"}}
	cfg := sim.T()
	if got := r.decorate("streams_copy", cfg); got != cfg {
		t.Error("untargeted cell's config was copied or decorated")
	}
	dec := r.decorate("streams_add", cfg)
	if dec == cfg || dec.Faults != r.Faults {
		t.Error("targeted cell's config not decorated with the campaign")
	}
	if cfg.Faults != nil {
		t.Error("decorate mutated the shared config literal")
	}
}
