// Package tables regenerates every table and figure of the paper's
// evaluation: Table 1 (power/area), Table 3 (configurations), Table 4
// (memory bandwidth microkernels), Figure 6 (sustained operations per
// cycle), Figure 7 (speedup over EV8), Figure 8 (frequency scaling) and
// Figure 9 (the stride-1 double-bandwidth ablation). cmd/tartables and the
// top-level benchmarks are thin wrappers around this package.
package tables

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/confhash"
	"repro/internal/faults"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// Runner executes benchmarks on demand and memoises results, since Figures
// 6–9 share many (benchmark, machine) pairs. Distinct pairs run concurrently
// on a bounded worker pool; each pair runs exactly once (duplicate requests
// wait for the first), and every table/figure assembles its rows in the same
// deterministic order as a sequential run.
type Runner struct {
	Scale workloads.Scale
	// Quiet suppresses progress output.
	Quiet bool
	// Parallel caps how many simulations run concurrently. NewRunner
	// defaults it to GOMAXPROCS; set 1 to run everything sequentially on
	// the calling goroutine.
	Parallel int

	// ---- per-cell integrity knobs (zero values = no hardening) ----

	// Deadline bounds each cell's wall-clock time; a run that exceeds it is
	// reported as an error row instead of hanging the sweep.
	Deadline time.Duration
	// Check enables the invariant checker on every cell.
	Check bool
	// Watchdog overrides the per-cell no-progress window in cycles.
	Watchdog uint64
	// Faults arms deterministic fault injection on the cells the campaign
	// targets (Config.Targets); untargeted cells run fault-free and must
	// produce bit-identical results to an uninjected sweep.
	Faults *faults.Config
	// SampleEvery arms the cycle-interval sampler on every cell (0 = off):
	// results carry a metrics.SeriesDump that rides along in the -json
	// artifact. Sampling is observation-only — it lives outside the
	// confhash cell key and leaves every counter bit-identical.
	SampleEvery uint64
	// SampleCap bounds retained points per cell (0 = the sampler default).
	SampleCap int

	mu      sync.Mutex
	results map[string]*call
	sem     chan struct{}
	semOnce sync.Once
	outMu   sync.Mutex // serialises progress lines from the workers
}

// call is a singleflight slot for one (benchmark, machine) pair: the first
// requester computes, everyone else waits on done.
type call struct {
	done          chan struct{}
	bench, config string // display identity (the key is the content hash)
	key           string
	res           *workloads.Result
	err           error
}

// NewRunner returns a memoising runner at the given scale.
func NewRunner(s workloads.Scale) *Runner {
	return &Runner{Scale: s, Parallel: runtime.GOMAXPROCS(0), results: make(map[string]*call)}
}

// CellKey is the content address of one sweep cell: the confhash over the
// benchmark, the runner's scale, and the cell's fully decorated machine
// configuration. Decorating first means a fault-targeted cell or a
// checker-enabled sweep occupies different cache lines than a plain run of
// the same machine — identical inputs dedupe, perturbed ones never alias.
func (r *Runner) CellKey(bench string, cfg *sim.Config) string {
	return confhash.Key(bench, r.Scale.String(), r.decorate(bench, cfg))
}

// lookup returns the pair's singleflight slot, creating it if needed; owner
// reports whether the caller created it (and so must execute the run).
func (r *Runner) lookup(bench string, cfg *sim.Config) (c *call, owner bool) {
	key := r.CellKey(bench, cfg)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.results[key]; ok {
		return c, false
	}
	c = &call{done: make(chan struct{}), bench: bench, config: cfg.Name, key: key}
	r.results[key] = c
	return c, true
}

// CellResult is one memoised cell, exported for artifact emission
// (tartables -json): the content key plus the display identity and the
// outcome. Err is non-empty for failed cells.
type CellResult struct {
	Key           string
	Bench, Config string
	Res           *workloads.Result
	Err           string
}

// Cells snapshots every completed cell in deterministic order (benchmark,
// then machine, then key). Cells still running are skipped, so callers
// should invoke it only after the tables/figures they requested have
// returned.
func (r *Runner) Cells() []CellResult {
	r.mu.Lock()
	calls := make([]*call, 0, len(r.results))
	for _, c := range r.results {
		calls = append(calls, c)
	}
	r.mu.Unlock()
	var out []CellResult
	for _, c := range calls {
		select {
		case <-c.done:
		default:
			continue // still in flight
		}
		cell := CellResult{Key: c.key, Bench: c.bench, Config: c.config, Res: c.res}
		if c.err != nil {
			cell.Err = c.err.Error()
		}
		out = append(out, cell)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		if out[i].Config != out[j].Config {
			return out[i].Config < out[j].Config
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// decorate applies the runner's integrity knobs to a cell's machine
// configuration. The original Config literal is never mutated (cells share
// them); a shallow copy carries the per-cell settings. Fault campaigns
// attach only to targeted cells so the rest of the sweep stays bit-exact.
func (r *Runner) decorate(bench string, cfg *sim.Config) *sim.Config {
	injected := r.Faults.Targets(bench + "@" + cfg.Name)
	if r.Deadline == 0 && !r.Check && r.Watchdog == 0 && !injected && r.SampleEvery == 0 {
		return cfg
	}
	cc := *cfg
	cc.Deadline = r.Deadline
	cc.Check = r.Check
	cc.Watchdog = r.Watchdog
	if injected {
		cc.Faults = r.Faults
	}
	if r.SampleEvery > 0 {
		cc.EnableSampling(r.SampleEvery, r.SampleCap)
	}
	return &cc
}

// runCell executes one (benchmark, machine) pair with panic isolation: a
// cell that panics (a model bug, a broken benchmark Check) yields an error
// for its own rows while the rest of the sweep completes.
func (r *Runner) runCell(b *workloads.Benchmark, bench string, cfg *sim.Config) (res *workloads.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			if e, ok := p.(error); ok {
				err = fmt.Errorf("%s on %s: cell panicked: %w", bench, cfg.Name, e)
			} else {
				err = fmt.Errorf("%s on %s: cell panicked: %v", bench, cfg.Name, p)
			}
		}
	}()
	return b.Run(r.decorate(bench, cfg), r.Scale)
}

// exec runs the pair and publishes the result into its slot.
func (r *Runner) exec(c *call, bench string, cfg *sim.Config) {
	defer close(c.done)
	b, err := workloads.Get(bench)
	if err != nil {
		c.err = err
		return
	}
	seq := r.Parallel <= 1
	if !r.Quiet && seq {
		fmt.Printf("  running %-14s on %-10s ...", bench, cfg.Name)
	}
	res, err := r.runCell(b, bench, cfg)
	if err != nil {
		c.err = err
		if !r.Quiet {
			r.outMu.Lock()
			if seq {
				fmt.Printf(" FAILED: %v\n", err)
			} else {
				fmt.Printf("  running %-14s on %-10s ... FAILED: %v\n", bench, cfg.Name, err)
			}
			r.outMu.Unlock()
		}
		return
	}
	if !r.Quiet {
		opc, _, _, _ := res.OPC()
		if seq {
			fmt.Printf(" %12d cycles  opc %6.2f\n", res.Stats.Cycles, opc)
		} else {
			// Concurrent runs report a whole line at completion so lines
			// never interleave mid-row (order across pairs may vary).
			r.outMu.Lock()
			fmt.Printf("  running %-14s on %-10s ... %12d cycles  opc %6.2f\n",
				bench, cfg.Name, res.Stats.Cycles, opc)
			r.outMu.Unlock()
		}
	}
	c.res = res
}

// start schedules the pair on the worker pool if it is not already running
// or memoised. A no-op in sequential mode — run computes inline there.
func (r *Runner) start(bench string, cfg *sim.Config) {
	if r.Parallel <= 1 {
		return
	}
	c, owner := r.lookup(bench, cfg)
	if !owner {
		return
	}
	r.semOnce.Do(func() { r.sem = make(chan struct{}, r.Parallel) })
	go func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		r.exec(c, bench, cfg)
	}()
}

// run blocks until the pair's result is available, computing it inline when
// nothing has scheduled it yet.
func (r *Runner) run(bench string, cfg *sim.Config) (*workloads.Result, error) {
	if r.Parallel > 1 {
		r.start(bench, cfg)
	}
	c, owner := r.lookup(bench, cfg)
	if owner { // sequential mode only: start() owns the slot otherwise
		r.exec(c, bench, cfg)
	}
	<-c.done
	return c.res, c.err
}

// Prewarm schedules every (benchmark, machine) pair the full evaluation
// (tartables -all) needs, so the worker pool crosses section boundaries
// instead of draining at the end of each table. A no-op in sequential mode.
func (r *Runner) Prewarm() {
	for _, name := range table4Kernels {
		r.start(name, sim.T())
	}
	for _, name := range workloads.Names() {
		if b, _ := workloads.Get(name); b != nil && b.Class == "Extensions" {
			continue
		}
		r.start(name, sim.T())
	}
	for _, name := range workloads.Figure6Set() {
		r.start(name, sim.EV8())
		r.start(name, sim.EV8Plus())
		r.start(name, sim.T())
		r.start(name, sim.T4())
		r.start(name, sim.T10())
		r.start(name, sim.NoPump(sim.T()))
	}
}

// ---- Table 1 ----

// Table1 renders the power and area study.
func Table1() string {
	return power.Table(power.Paper2006())
}

// ---- Table 3 ----

// Table3 renders the four machine configurations (plus T10).
func Table3() string {
	cfgs := []*sim.Config{sim.EV8(), sim.EV8Plus(), sim.T(), sim.T4(), sim.T10()}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s", "Symbol")
	for _, c := range cfgs {
		fmt.Fprintf(&b, "%10s", c.Name)
	}
	fmt.Fprintln(&b)
	row := func(name string, f func(c *sim.Config) string) {
		fmt.Fprintf(&b, "%-24s", name)
		for _, c := range cfgs {
			fmt.Fprintf(&b, "%10s", f(c))
		}
		fmt.Fprintln(&b)
	}
	row("Core Speed (GHz)", func(c *sim.Config) string { return fmt.Sprintf("%.2f", c.CPUGHz) })
	row("Core Issue", func(c *sim.Config) string { return fmt.Sprint(c.Core.FetchWidth) })
	row("Vbox Issue", func(c *sim.Config) string {
		if !c.HasVbox {
			return "-"
		}
		return fmt.Sprint(c.Vbox.DispatchWidth)
	})
	row("Peak Int/FP", func(c *sim.Config) string {
		if c.HasVbox {
			return "32"
		}
		return fmt.Sprintf("%d/%d", c.Core.IntWidth, c.Core.FPWidth)
	})
	row("Peak Ld+St", func(c *sim.Config) string {
		if c.HasVbox {
			return "32+32"
		}
		return fmt.Sprintf("%d+%d", c.Core.LoadWidth, c.Core.StoreWidth)
	})
	row("L1 assoc", func(c *sim.Config) string { return fmt.Sprint(c.Core.L1Assoc) })
	row("L1 line (bytes)", func(c *sim.Config) string { return fmt.Sprint(c.Core.L1Line) })
	row("L2 size (MB)", func(c *sim.Config) string { return fmt.Sprint(c.L2.Bytes >> 20) })
	row("L2 assoc", func(c *sim.Config) string { return fmt.Sprint(c.L2.Assoc) })
	row("L2 line (bytes)", func(c *sim.Config) string { return fmt.Sprint(c.L2.LineBytes) })
	row("L2 scalar lat", func(c *sim.Config) string { return fmt.Sprint(c.L2.ScalarLat) })
	row("L2 vec stride-1 lat", func(c *sim.Config) string {
		if !c.HasVbox {
			return "-"
		}
		return fmt.Sprint(c.L2.VecLatPump)
	})
	row("L2 vec odd-stride lat", func(c *sim.Config) string {
		if !c.HasVbox {
			return "-"
		}
		return fmt.Sprint(c.L2.VecLatOdd)
	})
	row("RAMBUS ports", func(c *sim.Config) string { return fmt.Sprint(c.Zbox.Ports) })
	row("Mem cyc/line/port", func(c *sim.Config) string { return fmt.Sprint(c.Zbox.LineCycles) })
	return b.String()
}

// ---- Table 4 ----

// Table4Row is one bandwidth microkernel result.
type Table4Row struct {
	Name       string  `json:"name"`
	StreamsMBs float64 `json:"streams_mbs"`
	RawMBs     float64 `json:"raw_mbs"`
	// Paper values for the comparison column (MB/s).
	PaperStreams float64 `json:"paper_streams"`
	PaperRaw     float64 `json:"paper_raw"`
	// Err, when non-empty, marks a failed cell (wedge, deadline, panic);
	// the numeric columns are meaningless and the message carries the
	// WedgeError diagnostics.
	Err string `json:"error,omitempty"`
}

// firstErr returns the first non-nil error among errs.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// table4Kernels lists the bandwidth microkernels in presentation order.
var table4Kernels = []string{
	"streams_copy", "streams_scale", "streams_add", "streams_triadd",
	"rndcopy", "rndmemscale",
}

var table4Paper = map[string][2]float64{
	"streams_copy":   {42983, 64475},
	"streams_scale":  {41689, 62492},
	"streams_add":    {43097, 57463},
	"streams_triadd": {47970, 63960},
	"rndcopy":        {73456, 0},
	"rndmemscale":    {7512, 50106},
}

// Table4 runs the six microkernels on Tarantula and reports sustained
// bandwidth in the STREAMS convention and raw controller traffic.
func (r *Runner) Table4() ([]Table4Row, error) {
	cfg := sim.T()
	for _, name := range table4Kernels {
		r.start(name, cfg)
	}
	var rows []Table4Row
	for _, name := range table4Kernels {
		res, err := r.run(name, cfg)
		if err != nil {
			p := table4Paper[name]
			rows = append(rows, Table4Row{Name: name, PaperStreams: p[0], PaperRaw: p[1], Err: err.Error()})
			continue
		}
		b, _ := workloads.Get(name)
		res.Stats.UsefulBytes = b.UsefulBytes(r.Scale)
		p := table4Paper[name]
		rows = append(rows, Table4Row{
			Name:         name,
			StreamsMBs:   res.Stats.BandwidthMBs(cfg.CPUGHz),
			RawMBs:       res.Stats.RawBandwidthMBs(cfg.CPUGHz),
			PaperStreams: p[0],
			PaperRaw:     p[1],
		})
	}
	return rows, nil
}

// FormatTable4 renders the rows.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s   %12s %12s\n",
		"Kernel", "Streams MB/s", "Raw MB/s", "paper strm", "paper raw")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s ERROR: %s\n", r.Name, r.Err)
			continue
		}
		raw := fmt.Sprintf("%12.0f", r.RawMBs)
		praw := fmt.Sprintf("%12.0f", r.PaperRaw)
		if r.PaperRaw == 0 {
			praw = fmt.Sprintf("%12s", "NA")
		}
		fmt.Fprintf(&b, "%-16s %12.0f %s   %12.0f %s\n",
			r.Name, r.StreamsMBs, raw, r.PaperStreams, praw)
	}
	return b.String()
}

// ---- Figure 6 ----

// Fig6Row is one benchmark's sustained operations-per-cycle breakdown.
type Fig6Row struct {
	Name  string  `json:"name"`
	OPC   float64 `json:"opc"`
	FPC   float64 `json:"fpc"`
	MPC   float64 `json:"mpc"`
	Other float64 `json:"other"`
	Err   string  `json:"error,omitempty"` // non-empty marks a failed cell
}

// Fig6 runs every evaluation benchmark on Tarantula.
func (r *Runner) Fig6() ([]Fig6Row, error) {
	for _, name := range workloads.Figure6Set() {
		r.start(name, sim.T())
	}
	var rows []Fig6Row
	for _, name := range workloads.Figure6Set() {
		res, err := r.run(name, sim.T())
		if err != nil {
			rows = append(rows, Fig6Row{Name: name, Err: err.Error()})
			continue
		}
		opc, fpc, mpc, other := res.OPC()
		rows = append(rows, Fig6Row{Name: name, OPC: opc, FPC: fpc, MPC: mpc, Other: other})
	}
	return rows, nil
}

// FormatFig6 renders the rows plus a crude bar.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %7s %7s %7s %7s\n", "Benchmark", "OPC", "FPC", "MPC", "Other")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-12s ERROR: %s\n", r.Name, r.Err)
			continue
		}
		bar := strings.Repeat("#", int(r.OPC+0.5))
		fmt.Fprintf(&b, "%-12s %7.2f %7.2f %7.2f %7.2f  %s\n", r.Name, r.OPC, r.FPC, r.MPC, r.Other, bar)
	}
	return b.String()
}

// ---- Figure 7 ----

// Fig7Row is one benchmark's speedup over EV8.
type Fig7Row struct {
	Name    string  `json:"name"`
	EV8Plus float64 `json:"ev8plus"`         // speedup over EV8
	T       float64 `json:"t"`               // speedup over EV8
	Err     string  `json:"error,omitempty"` // non-empty marks a failed cell
}

// Fig7 runs each benchmark on EV8, EV8+ and T.
func (r *Runner) Fig7() ([]Fig7Row, error) {
	for _, name := range workloads.Figure6Set() {
		r.start(name, sim.EV8())
		r.start(name, sim.EV8Plus())
		r.start(name, sim.T())
	}
	var rows []Fig7Row
	for _, name := range workloads.Figure6Set() {
		base, errB := r.run(name, sim.EV8())
		plus, errP := r.run(name, sim.EV8Plus())
		tar, errT := r.run(name, sim.T())
		if err := firstErr(errB, errP, errT); err != nil {
			rows = append(rows, Fig7Row{Name: name, Err: err.Error()})
			continue
		}
		rows = append(rows, Fig7Row{
			Name:    name,
			EV8Plus: float64(base.Stats.Cycles) / float64(plus.Stats.Cycles),
			T:       float64(base.Stats.Cycles) / float64(tar.Stats.Cycles),
		})
	}
	return rows, nil
}

// FormatFig7 renders the rows and the mean speedups.
func FormatFig7(rows []Fig7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s\n", "Benchmark", "EV8+", "T")
	var ts, ps []float64
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-12s ERROR: %s\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-12s %8.2f %8.2f  %s\n", r.Name, r.EV8Plus, r.T,
			strings.Repeat("#", int(r.T+0.5)))
		ts = append(ts, r.T)
		ps = append(ps, r.EV8Plus)
	}
	fmt.Fprintf(&b, "\ngeometric-mean speedup: EV8+ %.2fX, T %.2fX (paper: T ≈ 5X average)\n",
		stats.GMean(ps), stats.GMean(ts))
	return b.String()
}

// ---- Figure 8 ----

// Fig8Row is one benchmark's frequency-scaling behaviour.
type Fig8Row struct {
	Name string  `json:"name"`
	T4   float64 `json:"t4"`              // speedup relative to T
	T10  float64 `json:"t10"`             // speedup relative to T
	Err  string  `json:"error,omitempty"` // non-empty marks a failed cell
}

// Fig8 runs each benchmark on T, T4 and T10.
func (r *Runner) Fig8() ([]Fig8Row, error) {
	for _, name := range workloads.Figure6Set() {
		r.start(name, sim.T())
		r.start(name, sim.T4())
		r.start(name, sim.T10())
	}
	var rows []Fig8Row
	for _, name := range workloads.Figure6Set() {
		t, errT := r.run(name, sim.T())
		t4, err4 := r.run(name, sim.T4())
		t10, err10 := r.run(name, sim.T10())
		if err := firstErr(errT, err4, err10); err != nil {
			rows = append(rows, Fig8Row{Name: name, Err: err.Error()})
			continue
		}
		// Speedup in wall-clock time: cycles scale by frequency.
		wall := func(res *workloads.Result, ghz float64) float64 {
			return float64(res.Stats.Cycles) / ghz
		}
		rows = append(rows, Fig8Row{
			Name: name,
			T4:   wall(t, 2.13) / wall(t4, 4.8),
			T10:  wall(t, 2.13) / wall(t10, 10.6),
		})
	}
	return rows, nil
}

// FormatFig8 renders the rows.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s   (frequency ratios: 2.25x, 5.0x)\n", "Benchmark", "T4", "T10")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-12s ERROR: %s\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-12s %8.2f %8.2f\n", r.Name, r.T4, r.T10)
	}
	return b.String()
}

// ---- Figure 9 ----

// Fig9Row is one benchmark's pump ablation.
type Fig9Row struct {
	Name     string  `json:"name"`
	Relative float64 `json:"relative"`        // performance with the pump disabled, relative to T (≤1)
	Err      string  `json:"error,omitempty"` // non-empty marks a failed cell
}

// Fig9 disables stride-1 double-bandwidth mode and reruns on T.
func (r *Runner) Fig9() ([]Fig9Row, error) {
	for _, name := range workloads.Figure6Set() {
		r.start(name, sim.T())
		r.start(name, sim.NoPump(sim.T()))
	}
	var rows []Fig9Row
	for _, name := range workloads.Figure6Set() {
		t, errT := r.run(name, sim.T())
		np, errN := r.run(name, sim.NoPump(sim.T()))
		if err := firstErr(errT, errN); err != nil {
			rows = append(rows, Fig9Row{Name: name, Err: err.Error()})
			continue
		}
		rows = append(rows, Fig9Row{
			Name:     name,
			Relative: float64(t.Stats.Cycles) / float64(np.Stats.Cycles),
		})
	}
	return rows, nil
}

// FormatFig9 renders the rows.
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s\n", "Benchmark", "Rel. perf")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-12s ERROR: %s\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-12s %10.2f  %s\n", r.Name, r.Relative,
			strings.Repeat("#", int(r.Relative*20+0.5)))
	}
	return b.String()
}

// ---- Table 2 ----

// Table2Row describes one benchmark with its measured vectorisation.
type Table2Row struct {
	Name         string  `json:"name"`
	Class        string  `json:"class"`
	Desc         string  `json:"desc"`
	Pref         bool    `json:"pref"`
	DrainM       bool    `json:"drainm"`
	VectPct      float64 `json:"vect_pct"` // measured on the Tarantula run
	PaperVectPct float64 `json:"paper_vect_pct"`
	Err          string  `json:"error,omitempty"` // non-empty marks a failed cell
}

// table2Paper is the "Vect. %" column of Table 2.
var table2Paper = map[string]float64{
	"streams_copy": 99.5, "streams_scale": 99.5, "streams_add": 99.5, "streams_triadd": 99.5,
	"rndcopy": 99.9, "rndmemscale": 99.9,
	"swim": 99.3, "art": 93.7, "sixtrack": 93.7,
	"dgemm": 99.0, "dtrmm": 98.9, "sparsemxv": 99.3, "fft": 98.7, "lu": 98.6,
	"linpack100": 85.5, "linpacktpp": 96.5,
	"moldyn": 99.5, "ccradix": 98.0,
}

// Table2 runs every benchmark on Tarantula and reports the measured
// vectorisation percentage next to the paper's column.
func (r *Runner) Table2() ([]Table2Row, error) {
	for _, name := range workloads.Names() {
		if b, _ := workloads.Get(name); b != nil && b.Class != "Extensions" {
			r.start(name, sim.T())
		}
	}
	var rows []Table2Row
	for _, name := range workloads.Names() {
		b, _ := workloads.Get(name)
		if b.Class == "Extensions" {
			continue
		}
		res, err := r.run(name, sim.T())
		if err != nil {
			rows = append(rows, Table2Row{
				Name: name, Class: b.Class, Desc: b.Desc,
				Pref: b.Pref, DrainM: b.DrainM,
				PaperVectPct: table2Paper[name],
				Err:          err.Error(),
			})
			continue
		}
		rows = append(rows, Table2Row{
			Name: name, Class: b.Class, Desc: b.Desc,
			Pref: b.Pref, DrainM: b.DrainM,
			VectPct:      res.Stats.VectorPct(),
			PaperVectPct: table2Paper[name],
		})
	}
	return rows, nil
}

// FormatTable2 renders the rows.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-14s %5s %7s %8s %10s\n",
		"Benchmark", "Class", "Pref?", "DrainM?", "Vect.%", "paper %")
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return ""
	}
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-14s %-14s ERROR: %s\n", r.Name, r.Class, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-14s %-14s %5s %7s %8.1f %10.1f\n",
			r.Name, r.Class, yn(r.Pref), yn(r.DrainM), r.VectPct, r.PaperVectPct)
	}
	return b.String()
}
