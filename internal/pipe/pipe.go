// Package pipe holds the building blocks shared by the EV8 core and Vbox
// timing models: the in-flight micro-op record with its dataflow links, an
// event wheel for completion scheduling, per-class functional-unit pools,
// and the branch predictor.
package pipe

import (
	"container/heap"

	"repro/internal/arch"
	"repro/internal/isa"
)

// State tracks a micro-op through the pipeline.
type State uint8

const (
	// StateWaiting: renamed, waiting on source operands.
	StateWaiting State = iota
	// StateReady: all sources available, waiting for an issue slot.
	StateReady
	// StateIssued: executing (or walking the memory pipeline).
	StateIssued
	// StateDone: result available; waits in the ROB for in-order retire.
	StateDone
	// StateRetired: left the machine.
	StateRetired
)

// UOp is one in-flight dynamic instruction. The same record flows through
// the core and, for vector instructions, the Vbox (the paper's narrow
// interface: the core fetches, renames and retires on the Vbox's behalf).
type UOp struct {
	Seq  uint64
	Site uint32
	Inst isa.Inst
	Eff  arch.Effect

	State State

	// Dataflow: deps counts unresolved sources; Consumers are woken when
	// this op completes.
	Deps      int
	Consumers []*UOp

	FetchCyc uint64
	ReadyCyc uint64 // cycle all operands became available
	DoneCyc  uint64

	// VBox bookkeeping.
	SlicesOut int  // slices still in flight in the L2
	InVbox    bool // dispatched over the 3-instruction bus
	AgenDone  bool // address generation finished
	ScalarsIn bool // scalar operands transferred over the operand buses
}

// MarkReady transitions the op to Ready at cycle c, recording when its last
// operand arrived.
func (u *UOp) MarkReady(c uint64) {
	u.State = StateReady
	if c > u.ReadyCyc {
		u.ReadyCyc = c
	}
}

// ---- ready queue (oldest-first issue policy) ----
//
// (The event wheel that used to live here is now sched.Wheel: a hierarchical
// timing wheel with O(1) amortised At/Advance/Next, shared by every
// component. The map-based multimap made Next() an O(pending) scan, which
// dominated the simulator's profile once the chip loop went event-driven.)

// ReadyQueue is a min-heap of ready ops ordered by sequence number, so the
// schedulers issue oldest-first like real wakeup/select logic.
type ReadyQueue struct{ h uopHeap }

func (q *ReadyQueue) Push(u *UOp) { heap.Push(&q.h, u) }
func (q *ReadyQueue) Pop() *UOp   { return heap.Pop(&q.h).(*UOp) }
func (q *ReadyQueue) Peek() *UOp  { return q.h[0] }
func (q *ReadyQueue) Len() int    { return len(q.h) }

type uopHeap []*UOp

func (h uopHeap) Len() int            { return len(h) }
func (h uopHeap) Less(i, j int) bool  { return h[i].Seq < h[j].Seq }
func (h uopHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *uopHeap) Push(x interface{}) { *h = append(*h, x.(*UOp)) }
func (h *uopHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// ---- functional unit pools ----

// FUPool enforces per-cycle issue limits for one class of functional units,
// plus busy periods for unpipelined units (divide/sqrt).
type FUPool struct {
	Width     int      // issues per cycle when pipelined
	busyUntil []uint64 // per-unit next-free cycle (unpipelined reservations)
	usedAt    uint64   // cycle the per-cycle counter refers to
	used      int
}

// NewFUPool returns a pool issuing up to width ops per cycle, with width
// underlying units for unpipelined reservations.
func NewFUPool(width int) *FUPool {
	return &FUPool{Width: width, busyUntil: make([]uint64, width)}
}

// TryIssue attempts to issue at cycle c an op that occupies its unit for
// occupancy cycles (1 for pipelined ops). It returns false when the
// per-cycle width is exhausted or no unit is free.
func (p *FUPool) TryIssue(c uint64, occupancy int) bool {
	if p.Width == 0 {
		return false
	}
	if p.usedAt != c {
		p.usedAt, p.used = c, 0
	}
	if p.used >= p.Width {
		return false
	}
	for i := range p.busyUntil {
		if p.busyUntil[i] <= c {
			if occupancy > 1 {
				p.busyUntil[i] = c + uint64(occupancy)
			}
			p.used++
			return true
		}
	}
	return false
}

// ---- branch prediction ----

// Predictor is a table of 2-bit saturating counters keyed by static site,
// standing in for EV8's (far larger) predictor. On the loop-closing
// branches the kernels emit, it converges to predicting taken and
// mispredicts once per loop exit — the behaviour that matters for the
// vector/scalar comparison.
type Predictor struct {
	counters map[uint32]uint8
}

// NewPredictor returns an empty predictor (counters start weakly taken,
// matching the compiler's backward-taken hint).
func NewPredictor() *Predictor {
	return &Predictor{counters: make(map[uint32]uint8)}
}

// Predict returns the predicted direction and updates the counter with the
// actual outcome, reporting whether the prediction was wrong.
func (p *Predictor) Predict(site uint32, taken bool) (mispredict bool) {
	ctr, ok := p.counters[site]
	if !ok {
		ctr = 2 // weakly taken
	}
	pred := ctr >= 2
	if taken && ctr < 3 {
		ctr++
	} else if !taken && ctr > 0 {
		ctr--
	}
	p.counters[site] = ctr
	return pred != taken
}
