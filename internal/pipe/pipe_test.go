package pipe

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestReadyQueueOldestFirst(t *testing.T) {
	var q ReadyQueue
	for _, seq := range []uint64{5, 1, 9, 3, 7} {
		q.Push(&UOp{Seq: seq})
	}
	var got []uint64
	for q.Len() > 0 {
		got = append(got, q.Pop().Seq)
	}
	want := []uint64{1, 3, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestReadyQueueProperty(t *testing.T) {
	f := func(seqs []uint64) bool {
		var q ReadyQueue
		for _, s := range seqs {
			q.Push(&UOp{Seq: s})
		}
		prev := uint64(0)
		for q.Len() > 0 {
			s := q.Pop().Seq
			if s < prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFUPoolWidth(t *testing.T) {
	p := NewFUPool(2)
	if !p.TryIssue(1, 1) || !p.TryIssue(1, 1) {
		t.Fatal("pool of width 2 must accept two ops in one cycle")
	}
	if p.TryIssue(1, 1) {
		t.Fatal("third issue in one cycle must fail")
	}
	if !p.TryIssue(2, 1) {
		t.Fatal("next cycle must accept again")
	}
}

func TestFUPoolUnpipelined(t *testing.T) {
	p := NewFUPool(1)
	if !p.TryIssue(1, 10) {
		t.Fatal("first unpipelined op must issue")
	}
	for cy := uint64(2); cy <= 10; cy++ {
		if p.TryIssue(cy, 10) {
			t.Fatalf("unit should be busy at cycle %d", cy)
		}
	}
	if !p.TryIssue(11, 10) {
		t.Fatal("unit must free at cycle 11")
	}
}

func TestFUPoolZeroWidth(t *testing.T) {
	p := NewFUPool(0)
	if p.TryIssue(1, 1) {
		t.Fatal("zero-width pool must never issue")
	}
}

func TestPredictorLoopBranch(t *testing.T) {
	p := NewPredictor()
	// A loop branch: taken 9 times, then not taken.
	mis := 0
	for i := 0; i < 9; i++ {
		if p.Predict(1, true) {
			mis++
		}
	}
	if mis != 0 {
		t.Fatalf("loop iterations mispredicted %d times", mis)
	}
	if !p.Predict(1, false) {
		t.Fatal("loop exit should mispredict")
	}
	// Re-entering the loop: the 2-bit counter recovers within one step.
	wrong := 0
	for i := 0; i < 5; i++ {
		if p.Predict(1, true) {
			wrong++
		}
	}
	if wrong > 1 {
		t.Fatalf("re-entry mispredicted %d times, want ≤1", wrong)
	}
}

func TestPredictorAlternating(t *testing.T) {
	p := NewPredictor()
	mis := 0
	for i := 0; i < 100; i++ {
		if p.Predict(7, i%2 == 0) {
			mis++
		}
	}
	// A 2-bit counter cannot do better than ~50% on alternation.
	if mis < 40 {
		t.Fatalf("alternating pattern mispredicted only %d/100 — too clairvoyant", mis)
	}
}

func TestUOpMarkReady(t *testing.T) {
	u := &UOp{Inst: isa.Inst{Op: isa.OpVADDT}}
	u.MarkReady(10)
	if u.State != StateReady || u.ReadyCyc != 10 {
		t.Fatalf("state=%v readyCyc=%d", u.State, u.ReadyCyc)
	}
	u.MarkReady(5) // earlier wake must not move ReadyCyc backwards
	if u.ReadyCyc != 10 {
		t.Fatalf("ReadyCyc regressed to %d", u.ReadyCyc)
	}
}
