package pipe

import (
	"fmt"
	"sort"

	"repro/internal/snapshot"
)

// SaveState encodes the pool's reservation state. Per-unit busy-until
// cycles are delta-encoded against the snapshot cycle (a unit that freed in
// the past is simply free); the per-cycle issue counter is meaningful only
// within one cycle and resets at the boundary, so only its shape survives.
func (p *FUPool) SaveState(w *snapshot.Writer, now uint64) {
	w.Tag("fu")
	w.Int(p.Width)
	w.U64(uint64(len(p.busyUntil)))
	for _, b := range p.busyUntil {
		w.Delta(b, now)
	}
}

// LoadState restores the pool. The pool must already be constructed with
// the configuration's width; the blob's geometry is cross-checked against
// it so a snapshot from a different configuration fails loudly.
func (p *FUPool) LoadState(r *snapshot.Reader, now uint64) error {
	r.Tag("fu")
	width := r.Int()
	n := r.Len(8)
	if r.Err() != nil {
		return r.Err()
	}
	if width != p.Width || n != len(p.busyUntil) {
		return fmt.Errorf("%w: FU pool width %d/%d units, chip has %d/%d", snapshot.ErrCorrupt, width, n, p.Width, len(p.busyUntil))
	}
	for i := range p.busyUntil {
		p.busyUntil[i] = r.Abs(now)
	}
	p.usedAt, p.used = 0, 0
	return r.Err()
}

// SaveState encodes the predictor's counter table in sorted site order so
// identical training histories always produce identical bytes.
func (p *Predictor) SaveState(w *snapshot.Writer) {
	w.Tag("pred")
	sites := make([]uint32, 0, len(p.counters))
	for s := range p.counters {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	w.U64(uint64(len(sites)))
	for _, s := range sites {
		w.U32(s)
		w.U8(p.counters[s])
	}
}

// LoadState replaces the counter table with the encoded one.
func (p *Predictor) LoadState(r *snapshot.Reader) error {
	r.Tag("pred")
	n := r.Len(5)
	p.counters = make(map[uint32]uint8, n)
	for i := 0; i < n; i++ {
		s := r.U32()
		c := r.U8()
		if r.Err() != nil {
			return r.Err()
		}
		if c > 3 {
			return fmt.Errorf("%w: predictor counter %d out of 2-bit range", snapshot.ErrCorrupt, c)
		}
		if _, dup := p.counters[s]; dup {
			return fmt.Errorf("%w: duplicate predictor site %d", snapshot.ErrCorrupt, s)
		}
		p.counters[s] = c
	}
	return r.Err()
}
