package check

import (
	"fmt"
	"strings"
	"testing"
)

// TestNilCheckerNoOps: components call every method unconditionally, so the
// disabled (nil) checker must accept all of them.
func TestNilCheckerNoOps(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Error("nil checker reports enabled")
	}
	c.Record("event %d", 1)
	c.Failf("x", 10, "boom")
	c.RetireInOrder(10, 0, 1)
	if c.Violated() || c.Violation() != nil {
		t.Error("nil checker recorded a violation")
	}
}

// TestFirstViolationWins: knock-on failures must not overwrite the original
// divergence.
func TestFirstViolationWins(t *testing.T) {
	c := New()
	c.Failf("store-queue", 100, "first")
	c.Failf("retire-order", 200, "second")
	v := c.Violation()
	if v == nil || v.Invariant != "store-queue" || v.Cycle != 100 || v.Detail != "first" {
		t.Errorf("got %+v, want the first violation", v)
	}
	if !strings.Contains(v.Error(), "store-queue") || !strings.Contains(v.Error(), "cycle 100") {
		t.Errorf("Error() = %q missing invariant or cycle", v.Error())
	}
}

// TestHistoryBounded: the ring keeps only the newest 64 events, oldest first.
func TestHistoryBounded(t *testing.T) {
	c := New()
	for i := 0; i < 200; i++ {
		c.Record("event %d", i)
	}
	c.Failf("x", 1, "overflow check")
	h := c.Violation().History
	if len(h) != 64 {
		t.Fatalf("history length %d, want 64", len(h))
	}
	if h[0] != "event 136" || h[63] != "event 199" {
		t.Errorf("history window [%q .. %q], want [event 136 .. event 199]", h[0], h[63])
	}
}

// TestHistoryFrozenAtViolation: events after the verdict must not rotate the
// evidence out of the ring.
func TestHistoryFrozenAtViolation(t *testing.T) {
	c := New()
	c.Record("before")
	c.Failf("x", 1, "stop")
	c.Record("after")
	h := c.Violation().History
	if len(h) != 1 || h[0] != "before" {
		t.Errorf("history = %v, want the single pre-violation event", h)
	}
}

// TestRetireInOrder validates the ROB contract check: strictly increasing
// per-thread sequence numbers, with threads independent of each other.
func TestRetireInOrder(t *testing.T) {
	c := New()
	c.RetireInOrder(10, 0, 5)
	c.RetireInOrder(11, 1, 3) // other thread, lower global seq: fine
	c.RetireInOrder(12, 0, 6)
	if c.Violated() {
		t.Fatalf("in-order retirement flagged: %v", c.Violation())
	}
	c.RetireInOrder(13, 0, 6) // duplicate seq on thread 0
	v := c.Violation()
	if v == nil || v.Invariant != "retire-order" {
		t.Fatalf("out-of-order retirement not caught: %+v", v)
	}
	if len(v.History) == 0 {
		t.Error("violation carries no event history")
	}
	for i, want := range []string{
		fmt.Sprintf("cy=%d t0 retire seq=5", 10),
		fmt.Sprintf("cy=%d t1 retire seq=3", 11),
		fmt.Sprintf("cy=%d t0 retire seq=6", 12),
	} {
		if v.History[i] != want {
			t.Errorf("history[%d] = %q, want %q", i, v.History[i], want)
		}
	}
}
