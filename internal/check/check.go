// Package check is the simulator's opt-in microarchitectural invariant
// checker. The timing model is trusted to be *fast*; this package is how we
// prove it is also *right* while it runs. When enabled (sim.Config.Check /
// tarsim -check), components validate structural invariants at every
// retirement — ROB in-order retirement, store-queue forwarding consistency,
// L1/L2 inclusion — and the run harness audits NextWake hint soundness by
// single-stepping through would-be fast-forward jumps. The first violation
// aborts the run with a bounded ring of the events that led up to it.
//
// The checker is deliberately stateless about the machine: components own
// their invariant logic and call Failf with the evidence; the checker owns
// only the verdict and the history. That keeps the package free of import
// cycles (it sees no core/l2/vbox types) and keeps the per-retirement cost
// near zero when disabled (a nil *Checker no-ops every method).
package check

import "fmt"

// ringSize bounds the event history attached to a violation report. 64
// events is enough to show the retirement pattern around a failure without
// turning every WedgeError into a core dump.
const ringSize = 64

// Violation describes the first invariant failure observed in a run.
type Violation struct {
	// Invariant names the broken rule, e.g. "retire-order", "store-queue",
	// "l1-inclusion", "nextwake".
	Invariant string
	// Cycle is the simulated cycle at which the violation was detected.
	Cycle uint64
	// Detail is the component's formatted evidence.
	Detail string
	// History is the bounded tail of recorded events, oldest first.
	History []string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("invariant %q violated at cycle %d: %s", v.Invariant, v.Cycle, v.Detail)
}

// Checker collects events and records the first violation. A nil *Checker
// is valid and disables all checking; components may call every method
// unconditionally. Checker is not safe for concurrent use — one chip, one
// goroutine, one checker, matching the simulator's execution model.
type Checker struct {
	ring  [ringSize]string
	n     int // total events ever recorded
	first *Violation

	// lastSeq tracks per-thread retirement order for RetireInOrder.
	lastSeq map[int]uint64
}

// New returns an enabled checker.
func New() *Checker {
	return &Checker{lastSeq: make(map[int]uint64)}
}

// Enabled reports whether checking is on.
func (c *Checker) Enabled() bool { return c != nil }

// Record appends a formatted event to the bounded history ring.
func (c *Checker) Record(format string, args ...any) {
	if c == nil || c.first != nil {
		return
	}
	c.ring[c.n%ringSize] = fmt.Sprintf(format, args...)
	c.n++
}

// Failf records the first violation; later failures are ignored so the
// report always shows the original divergence, not its knock-on effects.
func (c *Checker) Failf(invariant string, cycle uint64, format string, args ...any) {
	if c == nil || c.first != nil {
		return
	}
	c.first = &Violation{
		Invariant: invariant,
		Cycle:     cycle,
		Detail:    fmt.Sprintf(format, args...),
		History:   c.history(),
	}
}

// history returns the recorded events oldest-first.
func (c *Checker) history() []string {
	if c.n == 0 {
		return nil
	}
	k := c.n
	if k > ringSize {
		k = ringSize
	}
	out := make([]string, 0, k)
	for j := c.n - k; j < c.n; j++ {
		out = append(out, c.ring[j%ringSize])
	}
	return out
}

// Violation returns the first recorded violation, or nil.
func (c *Checker) Violation() *Violation {
	if c == nil {
		return nil
	}
	return c.first
}

// Violated reports whether any invariant has failed. The run harness polls
// this to abort at the first violation instead of simulating on top of a
// known-bad state.
func (c *Checker) Violated() bool { return c != nil && c.first != nil }

// RetireInOrder validates that thread's retirement sequence numbers are
// strictly increasing — the ROB contract. Builder sequence numbers are
// global across threads, so the order is per-thread, not chip-wide.
func (c *Checker) RetireInOrder(cycle uint64, thread int, seq uint64) {
	if c == nil || c.first != nil {
		return
	}
	if last, ok := c.lastSeq[thread]; ok && seq <= last {
		c.Failf("retire-order", cycle,
			"thread %d retired seq %d after seq %d", thread, seq, last)
		return
	}
	c.lastSeq[thread] = seq
	c.Record("cy=%d t%d retire seq=%d", cycle, thread, seq)
}
