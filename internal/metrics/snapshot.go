package metrics

import (
	"fmt"
	"reflect"

	"repro/internal/snapshot"
)

// SaveState encodes every counter's value in counterDefs order — the same
// declaration-order walk NewRegistry validates against stats.Stats, so the
// layout is stable, complete (the registry construction panics if a uint64
// field has no def) and independent of map iteration. Gauges are live reads
// over component state, not storage, and are not serialized.
func (r *Registry) SaveState(w *snapshot.Writer) {
	w.Tag("metrics")
	sv := reflect.ValueOf(&r.compat).Elem()
	w.U64(uint64(len(counterDefs)))
	for _, d := range counterDefs {
		w.U64(sv.FieldByName(d.Field).Uint())
	}
}

// LoadState restores the counter values and bumps the epoch once, so epoch
// observers (the NextWake hint audits) see the restore as a mutation.
func (r *Registry) LoadState(rd *snapshot.Reader) error {
	rd.Tag("metrics")
	n := rd.Len(8)
	if rd.Err() != nil {
		return rd.Err()
	}
	if n != len(counterDefs) {
		return fmt.Errorf("%w: blob has %d counters, this build defines %d", snapshot.ErrCorrupt, n, len(counterDefs))
	}
	sv := reflect.ValueOf(&r.compat).Elem()
	for _, d := range counterDefs {
		sv.FieldByName(d.Field).SetUint(rd.U64())
	}
	r.epoch++
	return rd.Err()
}
