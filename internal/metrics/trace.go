package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// traceEvent is one entry of the Chrome trace-event format ("JSON Object
// Format"), loadable by chrome://tracing and Perfetto. We emit only counter
// events (ph "C") — one track per metric — plus process/thread metadata so
// the viewer labels the tracks.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders a sampled series as a Chrome trace-event file.
// Each sample becomes a set of counter events at the sample's wall-clock
// time (simulated cycle / clock): the interval IPC, the interval memory
// bandwidth in MB/s, and every occupancy gauge grouped by component. name
// labels the process track ("dgemm on T"); cpuGHz converts cycles to
// microseconds (0 falls back to 1 GHz so the file is still valid).
func WriteChromeTrace(w io.Writer, name string, cpuGHz float64, d *SeriesDump) error {
	if d == nil {
		return fmt.Errorf("metrics: no series to trace (was sampling enabled?)")
	}
	if cpuGHz <= 0 {
		cpuGHz = 1
	}
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Tid: 1, Args: map[string]any{"name": name}},
	}}
	// Group gauges by component so each component renders as one multi-line
	// counter track ("l2" with read_q/write_q/... series) instead of a dozen
	// single-line tracks.
	type group struct {
		name string
		idx  []int
		key  []string
	}
	var groups []group
	byComp := map[string]int{}
	for i, g := range d.Gauges {
		comp, metric, ok := strings.Cut(g, ".")
		if !ok {
			comp, metric = "chip", g
		}
		gi, seen := byComp[comp]
		if !seen {
			gi = len(groups)
			byComp[comp] = gi
			groups = append(groups, group{name: comp + " occupancy"})
		}
		groups[gi].idx = append(groups[gi].idx, i)
		groups[gi].key = append(groups[gi].key, metric)
	}
	usToCycle := 1 / (cpuGHz * 1e3) // microseconds per cycle
	for _, p := range d.Points {
		ts := float64(p.Cycle) * usToCycle
		tf.TraceEvents = append(tf.TraceEvents,
			traceEvent{Name: "ipc", Ph: "C", Ts: ts, Pid: 1, Tid: 1,
				Args: map[string]any{"ipc": p.IPC}},
			traceEvent{Name: "memory bandwidth (MB/s)", Ph: "C", Ts: ts, Pid: 1, Tid: 1,
				Args: map[string]any{"mbs": intervalMBs(p.RawBytes, d.Every, cpuGHz)}},
		)
		for _, g := range groups {
			args := make(map[string]any, len(g.idx))
			for k, i := range g.idx {
				if i < len(p.Gauges) {
					args[g.key[k]] = p.Gauges[i]
				}
			}
			tf.TraceEvents = append(tf.TraceEvents,
				traceEvent{Name: g.name, Ph: "C", Ts: ts, Pid: 1, Tid: 1, Args: args})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tf)
}

// intervalMBs converts bytes moved over an every-cycle interval into MB/s.
func intervalMBs(bytes, every uint64, cpuGHz float64) float64 {
	if every == 0 {
		return 0
	}
	secs := float64(every) / (cpuGHz * 1e9)
	return float64(bytes) / secs / 1e6
}
