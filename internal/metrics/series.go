package metrics

// Point is one cycle-interval sample: where the machine was, what it
// retired, how it moved. IPC and RawBytes are interval quantities (since the
// previous point), not cumulative, so a plot of points is directly the
// phase profile.
type Point struct {
	Cycle    uint64  `json:"cycle"`
	Retired  uint64  `json:"retired"`   // cumulative instructions retired
	IPC      float64 `json:"ipc"`       // instructions per cycle over the interval
	RawBytes uint64  `json:"raw_bytes"` // memory-controller bytes moved in the interval
	Gauges   []int   `json:"gauges"`    // occupancy values, parallel to Series gauge names
}

// Series is the cycle-interval sample ring. It is bounded: once Cap points
// have been taken the oldest are overwritten, so an arbitrarily long run
// costs O(Cap) memory and the retained window always ends at the present.
type Series struct {
	every  uint64
	names  []string
	buf   []Point
	next  int // ring write position
	n     int // total points ever added
}

// DefaultSeriesCap bounds the ring when the caller does not.
const DefaultSeriesCap = 4096

// NewSeries builds a ring sampling every `every` cycles with the given
// capacity (0 selects DefaultSeriesCap) over the named gauges.
func NewSeries(every uint64, capacity int, gaugeNames []string) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Series{
		every: every,
		names: append([]string(nil), gaugeNames...),
		buf:   make([]Point, 0, capacity),
	}
}

// Every returns the sampling period in cycles.
func (s *Series) Every() uint64 { return s.every }

// GaugeNames returns the gauge column names, in Point.Gauges order.
func (s *Series) GaugeNames() []string { return s.names }

// Add appends a point, overwriting the oldest once the ring is full. The
// point's Gauges slice is copied, so callers may reuse their scratch.
func (s *Series) Add(p Point) {
	p.Gauges = append([]int(nil), p.Gauges...)
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, p)
	} else {
		s.buf[s.next] = p
		s.next = (s.next + 1) % cap(s.buf)
	}
	s.n++
}

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.buf) }

// Dropped returns how many points were overwritten by the ring bound.
func (s *Series) Dropped() int { return s.n - len(s.buf) }

// Points returns the retained points oldest-first.
func (s *Series) Points() []Point {
	out := make([]Point, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// SeriesDump is the JSON-stable export of a Series: the time-series block
// carried by tartables -json cells, the tarserved result encoding, and the
// Chrome trace writer. Field order fixes the artifact's byte layout.
type SeriesDump struct {
	Every   uint64   `json:"every"`
	Gauges  []string `json:"gauges"`
	Dropped int      `json:"dropped,omitempty"`
	Points  []Point  `json:"points"`
}

// Dump exports the series oldest-first.
func (s *Series) Dump() *SeriesDump {
	return &SeriesDump{
		Every:   s.every,
		Gauges:  s.GaugeNames(),
		Dropped: s.Dropped(),
		Points:  s.Points(),
	}
}

// MeanIPC returns the average of the points' interval IPC (0 for an empty
// series) — the summary figure the tarserved /metrics endpoint exposes per
// experiment.
func (d *SeriesDump) MeanIPC() float64 {
	if d == nil || len(d.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range d.Points {
		sum += p.IPC
	}
	return sum / float64(len(d.Points))
}
