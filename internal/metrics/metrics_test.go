package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestNamespaceCoversEveryStatsField is the registration half of the
// "never silently dropped" guarantee: every uint64 counter field of the
// compat struct must have exactly one namespaced metric, and every def must
// resolve. (NewRegistry panics on drift; this test makes the failure a
// readable diff instead of a panic trace.)
func TestNamespaceCoversEveryStatsField(t *testing.T) {
	byField := map[string]string{}
	for _, d := range Defs() {
		if prev, dup := byField[d.Field]; dup {
			t.Errorf("field %s registered twice (%s and %s)", d.Field, prev, d.Name)
		}
		byField[d.Field] = d.Name
		comp, _, ok := strings.Cut(d.Name, ".")
		if !ok {
			t.Errorf("metric %q is not namespaced component.metric", d.Name)
		}
		switch comp {
		case "core", "vbox", "l2", "zbox", "mem", "sim":
		default:
			t.Errorf("metric %q uses unknown component namespace %q", d.Name, comp)
		}
	}
	st := reflect.TypeOf(stats.Stats{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Type.Kind() != reflect.Uint64 {
			continue
		}
		if _, ok := byField[f.Name]; !ok {
			t.Errorf("stats.Stats.%s has no registered metric — add it to counterDefs", f.Name)
		}
	}
	// And construction itself must hold the same invariant.
	_ = NewRegistry()
}

// TestCompatViewIsLive: counter increments through handles are immediately
// visible in the stats.Stats compat view, and vice versa for direct writes.
func TestCompatViewIsLive(t *testing.T) {
	r := NewRegistry()
	c := r.Scope("l2").Counter("vec_slices")
	c.Add(41)
	c.Inc()
	if got := r.Stats().L2VecSlices; got != 42 {
		t.Fatalf("compat view L2VecSlices = %d, want 42", got)
	}
	r.Stats().UsefulBytes = 1 << 20 // harness-style direct write stays legal
	if got := r.Counter("sim.useful_bytes").Value(); got != 1<<20 {
		t.Fatalf("direct write invisible through handle: %d", got)
	}
}

// TestEpochTracksEveryMutation: the epoch is the dirty check — it must move
// on Inc/Add, move on an effective Peak, and hold still otherwise.
func TestEpochTracksEveryMutation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zbox.row_hits")
	peak := r.Counter("l2.maf_peak")
	e0 := r.Epoch()
	c.Inc()
	if r.Epoch() == e0 {
		t.Fatal("Inc did not move the epoch")
	}
	e1 := r.Epoch()
	c.Add(5)
	if r.Epoch() == e1 {
		t.Fatal("Add did not move the epoch")
	}
	e2 := r.Epoch()
	peak.Peak(10)
	if r.Epoch() == e2 {
		t.Fatal("effective Peak did not move the epoch")
	}
	e3 := r.Epoch()
	peak.Peak(3) // below the peak: no state change, no epoch change
	if r.Epoch() != e3 {
		t.Fatal("ineffective Peak moved the epoch")
	}
	if got := c.Value(); got != 6 {
		t.Fatalf("counter value = %d, want 6", got)
	}
}

// TestCounterMutationsZeroAlloc is the hot-path contract: counter
// increments must not allocate. CI runs this on every push.
func TestCounterMutationsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Scope("core").Counter("flops")
	p := r.Counter("l2.maf_peak")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(128)
		p.Peak(c.Value())
	}); n != 0 {
		t.Fatalf("counter mutations allocate %v allocs/op, want 0", n)
	}
}

// BenchmarkRegistryOverhead measures the raw handle increment next to the
// direct struct-field increment it replaced; run with -benchmem to see the
// zero-alloc claim.
func BenchmarkRegistryOverhead(b *testing.B) {
	b.Run("handle", func(b *testing.B) {
		r := NewRegistry()
		c := r.Scope("core").Counter("flops")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Add(2)
		}
	})
	b.Run("direct", func(b *testing.B) {
		var st stats.Stats
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.Flops += 2
		}
	})
}

// TestGaugeRegistrationAndSnapshot: gauges read in registration order, with
// the cycle forwarded to probes that need it.
func TestGaugeRegistrationAndSnapshot(t *testing.T) {
	r := NewRegistry()
	depth := 3
	r.Scope("l2").Gauge("read_q", "read queue", func(uint64) int { return depth })
	r.Scope("vbox").Gauge("ports_busy", "busy ports", func(cy uint64) int { return int(cy % 7) })
	got := r.ReadGauges(16)
	want := []GaugeSample{{Name: "l2.read_q", Value: 3}, {Name: "vbox.ports_busy", Value: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadGauges = %+v, want %+v", got, want)
	}
	vals := r.ReadGaugeValues(16, nil)
	if !reflect.DeepEqual(vals, []int{3, 2}) {
		t.Fatalf("ReadGaugeValues = %v", vals)
	}
}

// TestSeriesRing: the ring retains the newest Cap points in order and
// reports what it dropped.
func TestSeriesRing(t *testing.T) {
	s := NewSeries(100, 4, []string{"l2.read_q"})
	for i := 1; i <= 10; i++ {
		s.Add(Point{Cycle: uint64(i * 100), Retired: uint64(i), Gauges: []int{i}})
	}
	if s.Len() != 4 || s.Dropped() != 6 {
		t.Fatalf("Len=%d Dropped=%d, want 4/6", s.Len(), s.Dropped())
	}
	pts := s.Points()
	for i, p := range pts {
		wantCycle := uint64((7 + i) * 100)
		if p.Cycle != wantCycle {
			t.Fatalf("point %d cycle = %d, want %d (oldest-first)", i, p.Cycle, wantCycle)
		}
	}
	d := s.Dump()
	if d.Every != 100 || d.Dropped != 6 || len(d.Points) != 4 || d.Gauges[0] != "l2.read_q" {
		t.Fatalf("dump = %+v", d)
	}
}

// TestWriteChromeTrace: the exported file must be valid JSON in the Chrome
// trace-event object format — a traceEvents array of counter events with
// microsecond timestamps — or Perfetto will refuse to load it.
func TestWriteChromeTrace(t *testing.T) {
	s := NewSeries(1000, 0, []string{"l2.read_q", "l2.maf", "vbox.ports_busy"})
	s.Add(Point{Cycle: 1000, Retired: 500, IPC: 0.5, RawBytes: 4096, Gauges: []int{1, 2, 3}})
	s.Add(Point{Cycle: 2000, Retired: 1500, IPC: 1.0, RawBytes: 0, Gauges: []int{0, 1, 0}})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, "dgemm on T", 1.25, s.Dump()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("trace is not valid JSON:\n%s", buf.String())
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	counters, meta := 0, 0
	var sawIPC bool
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "C":
			counters++
			if ev.Name == "ipc" && ev.Args["ipc"] == 0.5 {
				sawIPC = true
			}
			if ev.Ts < 0 {
				t.Fatalf("negative timestamp: %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// 2 points × (ipc + bandwidth + 2 component groups) = 8 counter events.
	if counters != 8 || meta != 1 {
		t.Fatalf("counters=%d meta=%d, want 8/1", counters, meta)
	}
	if !sawIPC {
		t.Fatal("first point's ipc counter missing")
	}
	// ts of the first point: 1000 cycles at 1.25 GHz = 0.8 µs.
	if ts := tf.TraceEvents[1].Ts; ts < 0.79 || ts > 0.81 {
		t.Fatalf("ts = %v µs, want 0.8", ts)
	}
	if err := WriteChromeTrace(&buf, "x", 1, nil); err == nil {
		t.Fatal("nil series must error, not write an empty trace")
	}
}

// TestMeanIPC summarises per-experiment series for /metrics.
func TestMeanIPC(t *testing.T) {
	d := &SeriesDump{Points: []Point{{IPC: 1}, {IPC: 3}}}
	if got := d.MeanIPC(); got != 2 {
		t.Fatalf("MeanIPC = %v, want 2", got)
	}
	if (&SeriesDump{}).MeanIPC() != 0 || (*SeriesDump)(nil).MeanIPC() != 0 {
		t.Fatal("empty/nil series must report 0")
	}
}
