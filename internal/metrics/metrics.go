// Package metrics is the chip's typed, hierarchical metrics layer. Every
// component (core, vbox, l2, zbox, mem, sim) registers its counters and
// occupancy gauges under a namespaced metric name ("l2.vec_slices",
// "mem.row_hits", "core.rob_occupancy") against one per-chip Registry at
// construction time.
//
// The design is two-faced on purpose:
//
//   - The hot path is untyped and free: a Counter handle is a pair of plain
//     *uint64 (the value slot and the registry's epoch), so an increment is
//     two machine adds — no map lookups, no interfaces, no allocations
//     (BenchmarkRegistryOverhead holds this at zero allocs/op).
//
//   - The cold path is fully typed: the registry can enumerate every metric
//     with its namespaced name, render occupancy snapshots, and drive the
//     cycle-interval sampler (Series) that feeds tartables -json, the
//     tarserved /metrics endpoint and the Chrome trace-event export.
//
// Counter storage *is* a stats.Stats value owned by the registry: the legacy
// flat struct survives as a live compat view (Registry.Stats), which keeps
// ROI deltas (stats.Sub), the evaluation tables and the byte-comparable
// serve encoding bit-identical to the pre-registry simulator. Registering a
// counter therefore requires a backing stats.Stats field; the registry
// panics at construction if the def table and the struct ever drift, and a
// reflect-based test holds stats.Sub to the same coverage — a new metric can
// never be silently dropped from ROI deltas.
package metrics

import (
	"fmt"
	"reflect"
	"sort"

	"repro/internal/stats"
)

// Def describes one registered counter: the namespaced metric name, the
// stats.Stats field that backs it (the compat view), and help text for
// exposition formats.
type Def struct {
	Name  string // namespaced: "<component>.<metric>"
	Field string // backing stats.Stats field
	Help  string
}

// counterDefs is the canonical namespace: every counter the chip model can
// register, in exposition order. NewRegistry verifies the table covers every
// uint64 field of stats.Stats exactly once, so the compat view and the
// registry can never disagree about what exists.
var counterDefs = []Def{
	{"sim.cycles", "Cycles", "Simulated cycles inside timed regions."},
	{"core.flops", "Flops", "Floating-point operations retired (element granularity)."},
	{"core.mem_ops", "MemOps", "Memory operations retired (element granularity)."},
	{"core.other_ops", "OtherOps", "Integer/scalar/control operations retired."},
	{"core.scalar_ins", "ScalarIns", "Scalar instructions retired."},
	{"core.vector_ins", "VectorIns", "Vector instructions retired."},
	{"core.vec_ops", "VecOps", "Element operations retired by vector instructions."},
	{"core.l1_hits", "L1Hits", "L1 data cache hits."},
	{"core.l1_misses", "L1Misses", "L1 data cache misses."},
	{"l2.hits", "L2Hits", "L2 hits (slice or scalar granularity)."},
	{"l2.misses", "L2Misses", "L2 misses."},
	{"l2.scalar_reqs", "L2ScalarReqs", "Scalar requests presented to the L2."},
	{"l2.vec_slices", "L2VecSlices", "Vector slices accepted by the L2."},
	{"l2.pump_slices", "L2PumpSlices", "Slices served in stride-1 double-bandwidth mode."},
	{"l2.slice_replays", "L2SliceReplays", "Slices replayed after a conflict."},
	{"l2.panic_events", "L2PanicEvents", "Panic-mode events (MAF pressure relief)."},
	{"l2.pbit_invalidates", "L2PBitInvalidates", "P-bit L1 invalidations issued."},
	{"l2.writebacks", "L2Writebacks", "Dirty lines written back to memory."},
	{"l2.maf_peak", "MAFPeak", "Peak miss-address-file occupancy (max-style)."},
	{"l2.maf_full_stalls", "MAFFullStalls", "Requests stalled on a full MAF."},
	{"vbox.cr_rounds", "CRRounds", "Conflict-resolution rounds."},
	{"vbox.cr_slices", "CRSlices", "Slices processed by conflict resolution."},
	{"vbox.reorder_slices", "ReorderSlices", "Slices reordered before issue."},
	{"vbox.addr_gen_cycles", "AddrGenCycles", "Address-generator busy cycles."},
	{"vbox.tlb_misses", "TLBMisses", "Vector TLB misses."},
	{"vbox.tlb_refills", "TLBRefills", "Vector TLB refills via PALcode."},
	{"core.drain_ms", "DrainMs", "DrainM barriers executed."},
	{"core.branch_mispredicts", "BranchMispredicts", "Branch mispredictions."},
	{"core.branches", "Branches", "Conditional branches retired."},
	{"vbox.vs_bus_transfers", "VSBusTransfers", "Scalar-operand bus transfers to the Vbox."},
	{"zbox.reads", "MemReads", "Memory-controller read transactions (64 B)."},
	{"zbox.writes", "MemWrites", "Memory-controller write transactions (64 B)."},
	{"zbox.dir_ops", "MemDirOps", "Directory-only transactions (64 B)."},
	{"zbox.row_activates", "RowActivates", "DRAM row activations."},
	{"zbox.row_hits", "RowHits", "Accesses hitting an open DRAM row."},
	{"zbox.turnarounds", "Turnarounds", "Read/write bus turnarounds."},
	{"sim.useful_bytes", "UsefulBytes", "Useful bytes moved (STREAMS convention)."},
}

// Defs returns the canonical counter namespace in exposition order.
func Defs() []Def { return append([]Def(nil), counterDefs...) }

// CounterNames returns every registered counter name, sorted.
func CounterNames() []string {
	names := make([]string, len(counterDefs))
	for i, d := range counterDefs {
		names[i] = d.Name
	}
	sort.Strings(names)
	return names
}

// Counter is a zero-overhead handle to one registered counter: a pointer to
// the value slot plus a pointer to the registry's epoch. Incrementing is two
// plain adds; the epoch is what lets the simulator's idle-window audits ask
// "did anything change?" in O(1) instead of comparing a 40-field struct.
type Counter struct{ v, epoch *uint64 }

// Inc adds one.
func (c Counter) Inc() { *c.v++; *c.epoch++ }

// Add adds n.
func (c Counter) Add(n uint64) { *c.v += n; *c.epoch++ }

// Peak raises the counter to n when larger — max-style metrics such as
// l2.maf_peak. The epoch moves only when the value does.
func (c Counter) Peak(n uint64) {
	if n > *c.v {
		*c.v = n
		*c.epoch++
	}
}

// Value reads the counter.
func (c Counter) Value() uint64 { return *c.v }

// Gauge is a registered occupancy probe: a named closure the registry can
// read at any simulated cycle (some occupancies — busy ports — are a
// function of the current cycle, so Read takes it).
type Gauge struct {
	Name string
	Help string
	Read func(cy uint64) int
}

// GaugeSample is one gauge's value at a point in time.
type GaugeSample struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

// Registry is one chip's metric namespace. Construct with NewRegistry; hand
// one to every component constructor; read it from the run harness.
type Registry struct {
	compat stats.Stats // canonical counter storage — the live compat view
	epoch  uint64      // bumped by every counter mutation

	byName   map[string]Counter
	gauges   []Gauge
	gaugeIdx map[string]int
}

// NewRegistry builds an empty registry and verifies the counter namespace
// against the compat struct: every def must resolve to a distinct uint64
// field and every uint64 field must have a def.
func NewRegistry() *Registry {
	r := &Registry{
		byName:   make(map[string]Counter, len(counterDefs)),
		gaugeIdx: make(map[string]int),
	}
	sv := reflect.ValueOf(&r.compat).Elem()
	covered := make(map[string]bool, len(counterDefs))
	for _, d := range counterDefs {
		f := sv.FieldByName(d.Field)
		if !f.IsValid() || f.Kind() != reflect.Uint64 {
			panic(fmt.Sprintf("metrics: def %q names no uint64 stats.Stats field %q", d.Name, d.Field))
		}
		if covered[d.Field] {
			panic(fmt.Sprintf("metrics: stats.Stats field %q registered twice", d.Field))
		}
		if _, dup := r.byName[d.Name]; dup {
			panic(fmt.Sprintf("metrics: counter %q registered twice", d.Name))
		}
		covered[d.Field] = true
		r.byName[d.Name] = Counter{v: f.Addr().Interface().(*uint64), epoch: &r.epoch}
	}
	t := sv.Type()
	for i := 0; i < t.NumField(); i++ {
		if t.Field(i).Type.Kind() == reflect.Uint64 && !covered[t.Field(i).Name] {
			panic(fmt.Sprintf("metrics: stats.Stats field %q has no registered metric — add it to counterDefs", t.Field(i).Name))
		}
	}
	return r
}

// Counter resolves a namespaced counter handle. The map lookup happens once,
// at component construction; the returned handle is lookup-free.
func (r *Registry) Counter(name string) Counter {
	c, ok := r.byName[name]
	if !ok {
		panic(fmt.Sprintf("metrics: unknown counter %q (register it in counterDefs)", name))
	}
	return c
}

// Stats returns the live compat view: the flat stats.Stats struct the
// pre-registry simulator shared. Reads observe counter updates immediately;
// direct field writes (the workload harness crediting UsefulBytes) remain
// legal, they just do not move the epoch.
func (r *Registry) Stats() *stats.Stats { return &r.compat }

// Epoch returns the mutation counter: it advances on every counter change,
// so two equal epochs bracket a window in which no counter moved. This is
// the registry replacement for the old whole-struct equality dirty checks.
func (r *Registry) Epoch() uint64 { return r.epoch }

// RegisterGauge adds an occupancy probe under a namespaced name.
// Registration order is preserved in every snapshot and export.
func (r *Registry) RegisterGauge(name, help string, read func(cy uint64) int) {
	if _, dup := r.gaugeIdx[name]; dup {
		panic(fmt.Sprintf("metrics: gauge %q registered twice", name))
	}
	r.gaugeIdx[name] = len(r.gauges)
	r.gauges = append(r.gauges, Gauge{Name: name, Help: help, Read: read})
}

// Gauges returns the registered occupancy probes in registration order.
func (r *Registry) Gauges() []Gauge { return r.gauges }

// GaugeNames returns the gauge names in registration order.
func (r *Registry) GaugeNames() []string {
	names := make([]string, len(r.gauges))
	for i, g := range r.gauges {
		names[i] = g.Name
	}
	return names
}

// ReadGauges samples every gauge at cycle cy, in registration order.
func (r *Registry) ReadGauges(cy uint64) []GaugeSample {
	out := make([]GaugeSample, len(r.gauges))
	for i, g := range r.gauges {
		out[i] = GaugeSample{Name: g.Name, Value: g.Read(cy)}
	}
	return out
}

// ReadGaugeValues samples gauge values only (no names) into dst, for the
// cycle-interval sampler: reusing dst keeps the per-sample cost flat.
func (r *Registry) ReadGaugeValues(cy uint64, dst []int) []int {
	if cap(dst) < len(r.gauges) {
		dst = make([]int, len(r.gauges))
	}
	dst = dst[:len(r.gauges)]
	for i, g := range r.gauges {
		dst[i] = g.Read(cy)
	}
	return dst
}

// Scope is a component-local view of the registry: metric names resolve
// under the component prefix, so the l2 registers "vec_slices" and gets
// "l2.vec_slices".
type Scope struct {
	r      *Registry
	prefix string
}

// Scope returns the component-local registration view for a component name
// ("core", "vbox", "l2", "mem", "sim").
func (r *Registry) Scope(component string) Scope {
	return Scope{r: r, prefix: component + "."}
}

// Counter resolves a counter handle under the scope's component prefix.
func (s Scope) Counter(name string) Counter { return s.r.Counter(s.prefix + name) }

// Gauge registers an occupancy probe under the scope's component prefix.
func (s Scope) Gauge(name, help string, read func(cy uint64) int) {
	s.r.RegisterGauge(s.prefix+name, help, read)
}
