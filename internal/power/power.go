// Package power reproduces the paper's §5 power and area study (Table 1):
// estimates for a CMP built from two EV8 cores versus Tarantula, both with
// the same 16 MB L2 and memory system, obtained by scaling EV7's measured
// area and power densities to 65 nm at 2.5 GHz and slightly under 1 V, with
// a 20% leakage uplift on the total.
//
// The Vbox's power is extrapolated from the power density of EV7's floating
// point units, which the paper notes makes it a lower bound (TLBs and
// address generators are not separately accounted).
package power

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Tech holds the technology assumptions of the study.
type Tech struct {
	Node        string  // process
	ClockGHz    float64 // 2.5 GHz in the paper
	VoltageV    float64 // slightly under 1 V
	LeakageFrac float64 // fraction of dynamic power added as leakage
}

// Paper2006 is the paper's 2006-timeframe assumption set.
func Paper2006() Tech {
	return Tech{Node: "65nm", ClockGHz: 2.5, VoltageV: 0.95, LeakageFrac: 0.20}
}

// Block is one floorplan component with its area share and power density
// (both derived by scaling EV7 measurements, per §5).
type Block struct {
	Name    string
	AreaPct float64 // % of die area
	// DensityRel is the block's switching power per unit area relative to
	// the EV7 core logic reference (caches low, datapaths high).
	DensityRel float64
}

// Design is a whole-chip configuration for the Table 1 comparison.
type Design struct {
	Name   string
	DieMM2 float64
	Blocks []Block
	PeakGF float64 // peak double-precision Gflops at Tech.ClockGHz
}

// refDensity is the EV7-derived core switching density scaled to 65 nm,
// 2.5 GHz, <1 V, in W/mm². Calibrated once so the EV8 core block of the CMP
// design reproduces the paper's 54.3 W at 42% of a 250 mm² die.
const refDensity = 54.3 / (0.42 * 250)

// CMPEV8 is the paper's two-core EV8 chip multiprocessor with Tarantula's
// L2 and memory system.
func CMPEV8() Design {
	return Design{
		Name:   "CMP-EV8",
		DieMM2: 250,
		Blocks: []Block{
			{Name: "Core", AreaPct: 42, DensityRel: 1.0},
			{Name: "IO Drivers", AreaPct: 0, DensityRel: 0}, // pad ring: fixed power below
			{Name: "IO logic", AreaPct: 14, DensityRel: 0.36},
			{Name: "L2 cache", AreaPct: 33, DensityRel: 0.12},
			{Name: "R/Z Box", AreaPct: 5, DensityRel: 0.97},
			{Name: "Other", AreaPct: 6, DensityRel: 1.02},
		},
		PeakGF: 2 * 4 * 2.5, // two 4-flop/cycle cores at 2.5 GHz
	}
}

// Tarantula is the vector chip: one EV8 core plus the 16-lane Vbox.
func Tarantula() Design {
	return Design{
		Name:   "Tarantula",
		DieMM2: 286,
		Blocks: []Block{
			{Name: "Core", AreaPct: 15, DensityRel: 1.0},
			{Name: "IO Drivers", AreaPct: 0, DensityRel: 0},
			{Name: "IO logic", AreaPct: 8, DensityRel: 0.36},
			{Name: "L2 cache", AreaPct: 43, DensityRel: 0.12},
			{Name: "R/Z Box", AreaPct: 7, DensityRel: 0.97},
			// The Vbox runs at FPU-like density — the lower bound of §5.
			{Name: "Vbox", AreaPct: 15, DensityRel: 1.39},
			{Name: "Other", AreaPct: 12, DensityRel: 1.02},
		},
		PeakGF: 32 * 2.5, // 32 flops/cycle at 2.5 GHz
	}
}

// ioDriverWatts is the pad-ring drive power, identical for both designs
// (same package and board interface).
const ioDriverWatts = 26.5

// Row is one line of Table 1.
type Row struct {
	Name    string
	AreaPct float64
	Watts   float64
}

// Estimate computes the Table 1 breakdown for d under t.
type Estimate struct {
	Design     string
	Rows       []Row
	TotalWatts float64 // includes leakage uplift
	DieMM2     float64
	PeakGF     float64
	GFPerWatt  float64
}

// Model evaluates the analytical model.
func Model(d Design, t Tech) Estimate {
	e := Estimate{Design: d.Name, DieMM2: d.DieMM2, PeakGF: d.PeakGF}
	// Dynamic power scales with area, density, V² and f relative to the
	// calibration point (2.5 GHz, 0.95 V).
	scale := (t.VoltageV * t.VoltageV / (0.95 * 0.95)) * (t.ClockGHz / 2.5)
	sum := 0.0
	for _, b := range d.Blocks {
		w := 0.0
		if b.Name == "IO Drivers" {
			w = ioDriverWatts
		} else {
			w = refDensity * b.DensityRel * (b.AreaPct / 100) * d.DieMM2 * scale
		}
		e.Rows = append(e.Rows, Row{Name: b.Name, AreaPct: b.AreaPct, Watts: w})
		sum += w
	}
	e.TotalWatts = sum * (1 + t.LeakageFrac)
	e.GFPerWatt = d.PeakGF / e.TotalWatts
	return e
}

// Ratio returns Tarantula's Gflops/W advantage over the CMP under t (the
// paper reports 3.4X).
func Ratio(t Tech) float64 {
	tar := Model(Tarantula(), t)
	cmp := Model(CMPEV8(), t)
	return tar.GFPerWatt / cmp.GFPerWatt
}

// Table renders the two estimates side by side in the format of Table 1.
func Table(t Tech) string {
	cmp := Model(CMPEV8(), t)
	tar := Model(Tarantula(), t)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %12s | %12s\n", "Circuitry", "CMP-EV8", "Tarantula")
	fmt.Fprintf(&b, "%-12s | %5s %6s | %5s %6s\n", "", "Area%", "W", "Area%", "W")
	fmt.Fprintln(&b, strings.Repeat("-", 48))
	find := func(e Estimate, name string) *Row {
		for i := range e.Rows {
			if e.Rows[i].Name == name {
				return &e.Rows[i]
			}
		}
		return nil
	}
	names := []string{"Core", "IO Drivers", "IO logic", "L2 cache", "R/Z Box", "Vbox", "Other"}
	for _, n := range names {
		rc, rt := find(cmp, n), find(tar, n)
		line := fmt.Sprintf("%-12s |", n)
		if rc != nil {
			line += fmt.Sprintf(" %4.0f %7.1f |", rc.AreaPct, rc.Watts)
		} else {
			line += fmt.Sprintf(" %4s %7s |", "-", "-")
		}
		if rt != nil {
			line += fmt.Sprintf(" %4.0f %7.1f", rt.AreaPct, rt.Watts)
		} else {
			line += fmt.Sprintf(" %4s %7s", "-", "-")
		}
		fmt.Fprintln(&b, line)
	}
	fmt.Fprintln(&b, strings.Repeat("-", 48))
	fmt.Fprintf(&b, "%-12s | %12.1f | %12.1f\n", "Total (+20%)", cmp.TotalWatts, tar.TotalWatts)
	fmt.Fprintf(&b, "%-12s | %9.0f mm² | %9.0f mm²\n", "Die Area", cmp.DieMM2, tar.DieMM2)
	fmt.Fprintf(&b, "%-12s | %12.0f | %12.0f\n", "Peak Gflops", cmp.PeakGF, tar.PeakGF)
	fmt.Fprintf(&b, "%-12s | %12.2f | %12.2f\n", "Gflops/Watt", cmp.GFPerWatt, tar.GFPerWatt)
	fmt.Fprintf(&b, "\nTarantula advantage: %.1fX Gflops/Watt\n", Ratio(t))
	return b.String()
}

// Reference scaling anchors for DesignFor: the paper's fixed designs
// describe exactly one point each (16 lanes, 16 MB L2, 8 RAMBUS ports); a
// swept configuration scales the matching blocks' silicon area around that
// anchor while everything else (core, IO, "other") keeps its absolute mm².
const (
	refLanes             = 16
	refL2Bytes           = 16 << 20
	refRZPorts           = 8
	refFlopsPerLaneCycle = 2 // Tarantula: 32 flops/cycle over 16 lanes
	refScalarFlopsCycle  = 4 // one EV8 core: 4 FP pipes
)

// singleEV8 is the scalar-design anchor DesignFor uses for configurations
// without a Vbox: one EV8 core carved out of the paper's two-core CMP (the
// core block halves; the shared L2, IO and R/Z blocks keep their absolute
// areas), so a swept EV8-class point stays consistent with the Table 1
// calibration.
func singleEV8() Design {
	cmp := CMPEV8()
	var blocks []Block
	die := 0.0
	for _, b := range cmp.Blocks {
		mm2 := b.AreaPct / 100 * cmp.DieMM2
		if b.Name == "Core" {
			mm2 /= 2
		}
		die += mm2
		blocks = append(blocks, Block{Name: b.Name, AreaPct: mm2, DensityRel: b.DensityRel})
	}
	// AreaPct temporarily held mm²; normalise once the die is known.
	for i := range blocks {
		blocks[i].AreaPct = blocks[i].AreaPct / die * 100
	}
	return Design{
		Name:   "EV8-1core",
		DieMM2: die,
		Blocks: blocks,
		PeakGF: refScalarFlopsCycle * 2.5,
	}
}

// DesignFor derives a whole-chip design from a machine configuration: the
// Table 1 anchor design (Tarantula for vector machines, a single-core EV8
// derivative otherwise) with the Vbox block scaled by the lane count, the
// L2 block by the cache capacity and the R/Z block by the RAMBUS port
// count, all in absolute silicon area; the die grows or shrinks by exactly
// the area the scaled blocks gained or lost. Peak Gflops follow the lane
// count (2 flops/lane/cycle, 4 for the scalar core) at the technology
// clock, matching the paper's convention of quoting peak rates at the
// process's design frequency rather than the simulated RAMBUS-ratio clock.
//
// At the anchor point itself — sim.T(), 16 lanes × 16 MB × 8 ports — every
// scale factor is exactly 1 and the result reproduces Tarantula() (and
// with it the Table 1 golden values) bit-for-bit; tests pin this.
func DesignFor(cfg *sim.Config, t Tech) Design {
	ref := Tarantula()
	if !cfg.HasVbox {
		ref = singleEV8()
	}
	factor := func(name string) float64 {
		switch name {
		case "Vbox":
			return float64(cfg.Vbox.Lanes) / refLanes
		case "L2 cache":
			return float64(cfg.L2.Bytes) / refL2Bytes
		case "R/Z Box":
			return float64(cfg.Zbox.Ports) / refRZPorts
		}
		return 1
	}
	identity := true
	for _, b := range ref.Blocks {
		if factor(b.Name) != 1 {
			identity = false
			break
		}
	}
	d := Design{Name: cfg.Name}
	if identity {
		// At the anchor the mm²→percent round trip would only add float
		// noise; reproduce the reference geometry exactly.
		d.DieMM2, d.Blocks = ref.DieMM2, ref.Blocks
	} else {
		// Scale in absolute mm², then recompute die and percentages.
		die := 0.0
		mm2 := make([]float64, len(ref.Blocks))
		for i, b := range ref.Blocks {
			mm2[i] = b.AreaPct / 100 * ref.DieMM2 * factor(b.Name)
			die += mm2[i]
		}
		d.DieMM2 = die
		for i, b := range ref.Blocks {
			d.Blocks = append(d.Blocks, Block{
				Name:       b.Name,
				AreaPct:    mm2[i] / die * 100,
				DensityRel: b.DensityRel,
			})
		}
	}
	if cfg.HasVbox {
		d.PeakGF = refFlopsPerLaneCycle * float64(cfg.Vbox.Lanes) * t.ClockGHz
	} else {
		d.PeakGF = refScalarFlopsCycle * t.ClockGHz
	}
	return d
}

// EstimateFor evaluates the power model for a machine configuration at its
// own simulated clock: the Table 1 technology assumptions with ClockGHz
// replaced by cfg.CPUGHz, so a T4-class point pays for its 4.8 GHz. This is
// the watts axis of the design-space-exploration service.
func EstimateFor(cfg *sim.Config) Estimate {
	t := Paper2006()
	t.ClockGHz = cfg.CPUGHz
	return Model(DesignFor(cfg, t), t)
}

// TarantulaFMA is the §5 extension estimate: "adding floating point
// multiply-accumulate units (FMAC) to Tarantula, this rate could be doubled
// with very little extra complexity and power". Peak doubles; the Vbox
// datapath grows modestly.
func TarantulaFMA() Design {
	d := Tarantula()
	d.Name = "Tarantula-FMA"
	d.PeakGF = 2 * d.PeakGF
	for i := range d.Blocks {
		if d.Blocks[i].Name == "Vbox" {
			d.Blocks[i].DensityRel *= 1.12 // wider accumulate datapath
		}
	}
	return d
}
