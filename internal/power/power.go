// Package power reproduces the paper's §5 power and area study (Table 1):
// estimates for a CMP built from two EV8 cores versus Tarantula, both with
// the same 16 MB L2 and memory system, obtained by scaling EV7's measured
// area and power densities to 65 nm at 2.5 GHz and slightly under 1 V, with
// a 20% leakage uplift on the total.
//
// The Vbox's power is extrapolated from the power density of EV7's floating
// point units, which the paper notes makes it a lower bound (TLBs and
// address generators are not separately accounted).
package power

import (
	"fmt"
	"strings"
)

// Tech holds the technology assumptions of the study.
type Tech struct {
	Node        string  // process
	ClockGHz    float64 // 2.5 GHz in the paper
	VoltageV    float64 // slightly under 1 V
	LeakageFrac float64 // fraction of dynamic power added as leakage
}

// Paper2006 is the paper's 2006-timeframe assumption set.
func Paper2006() Tech {
	return Tech{Node: "65nm", ClockGHz: 2.5, VoltageV: 0.95, LeakageFrac: 0.20}
}

// Block is one floorplan component with its area share and power density
// (both derived by scaling EV7 measurements, per §5).
type Block struct {
	Name    string
	AreaPct float64 // % of die area
	// DensityRel is the block's switching power per unit area relative to
	// the EV7 core logic reference (caches low, datapaths high).
	DensityRel float64
}

// Design is a whole-chip configuration for the Table 1 comparison.
type Design struct {
	Name   string
	DieMM2 float64
	Blocks []Block
	PeakGF float64 // peak double-precision Gflops at Tech.ClockGHz
}

// refDensity is the EV7-derived core switching density scaled to 65 nm,
// 2.5 GHz, <1 V, in W/mm². Calibrated once so the EV8 core block of the CMP
// design reproduces the paper's 54.3 W at 42% of a 250 mm² die.
const refDensity = 54.3 / (0.42 * 250)

// CMPEV8 is the paper's two-core EV8 chip multiprocessor with Tarantula's
// L2 and memory system.
func CMPEV8() Design {
	return Design{
		Name:   "CMP-EV8",
		DieMM2: 250,
		Blocks: []Block{
			{Name: "Core", AreaPct: 42, DensityRel: 1.0},
			{Name: "IO Drivers", AreaPct: 0, DensityRel: 0}, // pad ring: fixed power below
			{Name: "IO logic", AreaPct: 14, DensityRel: 0.36},
			{Name: "L2 cache", AreaPct: 33, DensityRel: 0.12},
			{Name: "R/Z Box", AreaPct: 5, DensityRel: 0.97},
			{Name: "Other", AreaPct: 6, DensityRel: 1.02},
		},
		PeakGF: 2 * 4 * 2.5, // two 4-flop/cycle cores at 2.5 GHz
	}
}

// Tarantula is the vector chip: one EV8 core plus the 16-lane Vbox.
func Tarantula() Design {
	return Design{
		Name:   "Tarantula",
		DieMM2: 286,
		Blocks: []Block{
			{Name: "Core", AreaPct: 15, DensityRel: 1.0},
			{Name: "IO Drivers", AreaPct: 0, DensityRel: 0},
			{Name: "IO logic", AreaPct: 8, DensityRel: 0.36},
			{Name: "L2 cache", AreaPct: 43, DensityRel: 0.12},
			{Name: "R/Z Box", AreaPct: 7, DensityRel: 0.97},
			// The Vbox runs at FPU-like density — the lower bound of §5.
			{Name: "Vbox", AreaPct: 15, DensityRel: 1.39},
			{Name: "Other", AreaPct: 12, DensityRel: 1.02},
		},
		PeakGF: 32 * 2.5, // 32 flops/cycle at 2.5 GHz
	}
}

// ioDriverWatts is the pad-ring drive power, identical for both designs
// (same package and board interface).
const ioDriverWatts = 26.5

// Row is one line of Table 1.
type Row struct {
	Name    string
	AreaPct float64
	Watts   float64
}

// Estimate computes the Table 1 breakdown for d under t.
type Estimate struct {
	Design     string
	Rows       []Row
	TotalWatts float64 // includes leakage uplift
	DieMM2     float64
	PeakGF     float64
	GFPerWatt  float64
}

// Model evaluates the analytical model.
func Model(d Design, t Tech) Estimate {
	e := Estimate{Design: d.Name, DieMM2: d.DieMM2, PeakGF: d.PeakGF}
	// Dynamic power scales with area, density, V² and f relative to the
	// calibration point (2.5 GHz, 0.95 V).
	scale := (t.VoltageV * t.VoltageV / (0.95 * 0.95)) * (t.ClockGHz / 2.5)
	sum := 0.0
	for _, b := range d.Blocks {
		w := 0.0
		if b.Name == "IO Drivers" {
			w = ioDriverWatts
		} else {
			w = refDensity * b.DensityRel * (b.AreaPct / 100) * d.DieMM2 * scale
		}
		e.Rows = append(e.Rows, Row{Name: b.Name, AreaPct: b.AreaPct, Watts: w})
		sum += w
	}
	e.TotalWatts = sum * (1 + t.LeakageFrac)
	e.GFPerWatt = d.PeakGF / e.TotalWatts
	return e
}

// Ratio returns Tarantula's Gflops/W advantage over the CMP under t (the
// paper reports 3.4X).
func Ratio(t Tech) float64 {
	tar := Model(Tarantula(), t)
	cmp := Model(CMPEV8(), t)
	return tar.GFPerWatt / cmp.GFPerWatt
}

// Table renders the two estimates side by side in the format of Table 1.
func Table(t Tech) string {
	cmp := Model(CMPEV8(), t)
	tar := Model(Tarantula(), t)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s | %12s | %12s\n", "Circuitry", "CMP-EV8", "Tarantula")
	fmt.Fprintf(&b, "%-12s | %5s %6s | %5s %6s\n", "", "Area%", "W", "Area%", "W")
	fmt.Fprintln(&b, strings.Repeat("-", 48))
	find := func(e Estimate, name string) *Row {
		for i := range e.Rows {
			if e.Rows[i].Name == name {
				return &e.Rows[i]
			}
		}
		return nil
	}
	names := []string{"Core", "IO Drivers", "IO logic", "L2 cache", "R/Z Box", "Vbox", "Other"}
	for _, n := range names {
		rc, rt := find(cmp, n), find(tar, n)
		line := fmt.Sprintf("%-12s |", n)
		if rc != nil {
			line += fmt.Sprintf(" %4.0f %7.1f |", rc.AreaPct, rc.Watts)
		} else {
			line += fmt.Sprintf(" %4s %7s |", "-", "-")
		}
		if rt != nil {
			line += fmt.Sprintf(" %4.0f %7.1f", rt.AreaPct, rt.Watts)
		} else {
			line += fmt.Sprintf(" %4s %7s", "-", "-")
		}
		fmt.Fprintln(&b, line)
	}
	fmt.Fprintln(&b, strings.Repeat("-", 48))
	fmt.Fprintf(&b, "%-12s | %12.1f | %12.1f\n", "Total (+20%)", cmp.TotalWatts, tar.TotalWatts)
	fmt.Fprintf(&b, "%-12s | %9.0f mm² | %9.0f mm²\n", "Die Area", cmp.DieMM2, tar.DieMM2)
	fmt.Fprintf(&b, "%-12s | %12.0f | %12.0f\n", "Peak Gflops", cmp.PeakGF, tar.PeakGF)
	fmt.Fprintf(&b, "%-12s | %12.2f | %12.2f\n", "Gflops/Watt", cmp.GFPerWatt, tar.GFPerWatt)
	fmt.Fprintf(&b, "\nTarantula advantage: %.1fX Gflops/Watt\n", Ratio(t))
	return b.String()
}

// TarantulaFMA is the §5 extension estimate: "adding floating point
// multiply-accumulate units (FMAC) to Tarantula, this rate could be doubled
// with very little extra complexity and power". Peak doubles; the Vbox
// datapath grows modestly.
func TarantulaFMA() Design {
	d := Tarantula()
	d.Name = "Tarantula-FMA"
	d.PeakGF = 2 * d.PeakGF
	for i := range d.Blocks {
		if d.Blocks[i].Name == "Vbox" {
			d.Blocks[i].DensityRel *= 1.12 // wider accumulate datapath
		}
	}
	return d
}
