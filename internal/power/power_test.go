package power

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// Paper Table 1 values for comparison.
var paperCMP = map[string]float64{
	"Core": 54.3, "IO Drivers": 26.5, "IO logic": 6.6, "L2 cache": 5.1,
	"R/Z Box": 6.3, "Other": 7.9,
}

var paperTar = map[string]float64{
	"Core": 22.2, "IO Drivers": 26.5, "IO logic": 4.3, "L2 cache": 7.6,
	"R/Z Box": 10.1, "Vbox": 30.9, "Other": 18.2,
}

func TestCMPTable1Rows(t *testing.T) {
	e := Model(CMPEV8(), Paper2006())
	for _, r := range e.Rows {
		want := paperCMP[r.Name]
		if math.Abs(r.Watts-want) > 0.15*want+0.5 {
			t.Errorf("CMP %s = %.1f W, paper says %.1f", r.Name, r.Watts, want)
		}
	}
	if math.Abs(e.TotalWatts-128.0) > 6 {
		t.Errorf("CMP total = %.1f W, paper says 128.0", e.TotalWatts)
	}
}

func TestTarantulaTable1Rows(t *testing.T) {
	e := Model(Tarantula(), Paper2006())
	for _, r := range e.Rows {
		want := paperTar[r.Name]
		if math.Abs(r.Watts-want) > 0.15*want+0.5 {
			t.Errorf("Tarantula %s = %.1f W, paper says %.1f", r.Name, r.Watts, want)
		}
	}
	if math.Abs(e.TotalWatts-143.7) > 7 {
		t.Errorf("Tarantula total = %.1f W, paper says 143.7", e.TotalWatts)
	}
}

func TestGflopsPerWatt(t *testing.T) {
	cmp := Model(CMPEV8(), Paper2006())
	tar := Model(Tarantula(), Paper2006())
	if math.Abs(cmp.GFPerWatt-0.16) > 0.02 {
		t.Errorf("CMP Gflops/W = %.3f, paper says 0.16", cmp.GFPerWatt)
	}
	if math.Abs(tar.GFPerWatt-0.55) > 0.05 {
		t.Errorf("Tarantula Gflops/W = %.3f, paper says 0.55", tar.GFPerWatt)
	}
	if r := Ratio(Paper2006()); math.Abs(r-3.4) > 0.3 {
		t.Errorf("ratio = %.2f, paper says 3.4", r)
	}
}

func TestPeakGflops(t *testing.T) {
	if g := Tarantula().PeakGF; g != 80 {
		t.Errorf("Tarantula peak = %v Gflops, paper says 80", g)
	}
	if g := CMPEV8().PeakGF; g != 20 {
		t.Errorf("CMP peak = %v Gflops, paper says 20", g)
	}
}

func TestVoltageFrequencyScaling(t *testing.T) {
	// Halving frequency should roughly halve dynamic power (leakage frac
	// constant in this model).
	base := Model(Tarantula(), Paper2006())
	slow := Paper2006()
	slow.ClockGHz = 1.25
	half := Model(Tarantula(), slow)
	dynBase := base.TotalWatts/1.2 - ioDriverWatts
	dynHalf := half.TotalWatts/1.2 - ioDriverWatts
	if math.Abs(dynHalf/dynBase-0.5) > 0.01 {
		t.Errorf("frequency scaling wrong: ratio %.3f", dynHalf/dynBase)
	}
}

func TestTableRenders(t *testing.T) {
	s := Table(Paper2006())
	for _, want := range []string{"Vbox", "Gflops/Watt", "Tarantula advantage"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

// TestDesignForReproducesTable1 pins the parameterization against the
// paper's fixed design: at the anchor point (sim.T(): 16 lanes, 16 MB L2,
// 8 RAMBUS ports) DesignFor must reproduce Tarantula() — and with it every
// Table 1 golden value — exactly, not approximately.
func TestDesignForReproducesTable1(t *testing.T) {
	got := DesignFor(sim.T(), Paper2006())
	ref := Tarantula()
	if !reflect.DeepEqual(got.Blocks, ref.Blocks) {
		t.Errorf("DesignFor(T) blocks diverge from Tarantula():\n got %+v\nwant %+v", got.Blocks, ref.Blocks)
	}
	if got.DieMM2 != ref.DieMM2 {
		t.Errorf("DesignFor(T) die = %v mm², Tarantula() says %v", got.DieMM2, ref.DieMM2)
	}
	if got.PeakGF != ref.PeakGF {
		t.Errorf("DesignFor(T) peak = %v Gflops, Tarantula() says %v", got.PeakGF, ref.PeakGF)
	}
	em, er := Model(got, Paper2006()), Model(ref, Paper2006())
	if em.TotalWatts != er.TotalWatts || em.GFPerWatt != er.GFPerWatt {
		t.Errorf("DesignFor(T) model %.4f W %.4f GF/W ≠ Tarantula %.4f W %.4f GF/W",
			em.TotalWatts, em.GFPerWatt, er.TotalWatts, er.GFPerWatt)
	}
}

// TestDesignForScalesWithKnobs checks the monotone physics of the sweep
// axes: fewer lanes shrink die and watts, a bigger L2 grows both, fewer
// ports shrink the R/Z block, and a scalar design carries no Vbox at all.
func TestDesignForScalesWithKnobs(t *testing.T) {
	base := EstimateFor(sim.T())

	small := sim.T()
	small.Vbox.Lanes = 8
	es := EstimateFor(small)
	if es.DieMM2 >= base.DieMM2 || es.TotalWatts >= base.TotalWatts {
		t.Errorf("8-lane design should shrink: die %v→%v, watts %v→%v",
			base.DieMM2, es.DieMM2, base.TotalWatts, es.TotalWatts)
	}

	bigL2 := sim.T()
	bigL2.L2.Bytes = 32 << 20
	eb := EstimateFor(bigL2)
	if eb.DieMM2 <= base.DieMM2 || eb.TotalWatts <= base.TotalWatts {
		t.Errorf("32 MB design should grow: die %v→%v, watts %v→%v",
			base.DieMM2, eb.DieMM2, base.TotalWatts, eb.TotalWatts)
	}

	scalar := sim.EV8()
	for _, b := range DesignFor(scalar, Paper2006()).Blocks {
		if b.Name == "Vbox" {
			t.Errorf("scalar design grew a Vbox block")
		}
	}
	if ev := EstimateFor(scalar); ev.DieMM2 >= base.DieMM2 {
		t.Errorf("EV8 (4 MB, 2 ports, no Vbox) die %v should be well under Tarantula's %v", ev.DieMM2, base.DieMM2)
	}

	// Clock shows up through EstimateFor: a T4-class point pays for 4.8 GHz.
	if e4 := EstimateFor(sim.T4()); e4.TotalWatts <= base.TotalWatts {
		t.Errorf("T4 at 4.8 GHz should burn more than T at 2.13: %v vs %v", e4.TotalWatts, base.TotalWatts)
	}
}

func TestFMADoublesGflopsPerWatt(t *testing.T) {
	base := Model(Tarantula(), Paper2006())
	fma := Model(TarantulaFMA(), Paper2006())
	if fma.PeakGF != 160 {
		t.Fatalf("FMA peak = %v, want 160", fma.PeakGF)
	}
	ratio := fma.GFPerWatt / base.GFPerWatt
	// "could be doubled with very little extra complexity and power":
	// nearly 2x Gflops/W.
	if ratio < 1.8 || ratio > 2.0 {
		t.Fatalf("FMA Gflops/W gain = %.2fx, want ≈2x", ratio)
	}
}
