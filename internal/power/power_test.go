package power

import (
	"math"
	"strings"
	"testing"
)

// Paper Table 1 values for comparison.
var paperCMP = map[string]float64{
	"Core": 54.3, "IO Drivers": 26.5, "IO logic": 6.6, "L2 cache": 5.1,
	"R/Z Box": 6.3, "Other": 7.9,
}

var paperTar = map[string]float64{
	"Core": 22.2, "IO Drivers": 26.5, "IO logic": 4.3, "L2 cache": 7.6,
	"R/Z Box": 10.1, "Vbox": 30.9, "Other": 18.2,
}

func TestCMPTable1Rows(t *testing.T) {
	e := Model(CMPEV8(), Paper2006())
	for _, r := range e.Rows {
		want := paperCMP[r.Name]
		if math.Abs(r.Watts-want) > 0.15*want+0.5 {
			t.Errorf("CMP %s = %.1f W, paper says %.1f", r.Name, r.Watts, want)
		}
	}
	if math.Abs(e.TotalWatts-128.0) > 6 {
		t.Errorf("CMP total = %.1f W, paper says 128.0", e.TotalWatts)
	}
}

func TestTarantulaTable1Rows(t *testing.T) {
	e := Model(Tarantula(), Paper2006())
	for _, r := range e.Rows {
		want := paperTar[r.Name]
		if math.Abs(r.Watts-want) > 0.15*want+0.5 {
			t.Errorf("Tarantula %s = %.1f W, paper says %.1f", r.Name, r.Watts, want)
		}
	}
	if math.Abs(e.TotalWatts-143.7) > 7 {
		t.Errorf("Tarantula total = %.1f W, paper says 143.7", e.TotalWatts)
	}
}

func TestGflopsPerWatt(t *testing.T) {
	cmp := Model(CMPEV8(), Paper2006())
	tar := Model(Tarantula(), Paper2006())
	if math.Abs(cmp.GFPerWatt-0.16) > 0.02 {
		t.Errorf("CMP Gflops/W = %.3f, paper says 0.16", cmp.GFPerWatt)
	}
	if math.Abs(tar.GFPerWatt-0.55) > 0.05 {
		t.Errorf("Tarantula Gflops/W = %.3f, paper says 0.55", tar.GFPerWatt)
	}
	if r := Ratio(Paper2006()); math.Abs(r-3.4) > 0.3 {
		t.Errorf("ratio = %.2f, paper says 3.4", r)
	}
}

func TestPeakGflops(t *testing.T) {
	if g := Tarantula().PeakGF; g != 80 {
		t.Errorf("Tarantula peak = %v Gflops, paper says 80", g)
	}
	if g := CMPEV8().PeakGF; g != 20 {
		t.Errorf("CMP peak = %v Gflops, paper says 20", g)
	}
}

func TestVoltageFrequencyScaling(t *testing.T) {
	// Halving frequency should roughly halve dynamic power (leakage frac
	// constant in this model).
	base := Model(Tarantula(), Paper2006())
	slow := Paper2006()
	slow.ClockGHz = 1.25
	half := Model(Tarantula(), slow)
	dynBase := base.TotalWatts/1.2 - ioDriverWatts
	dynHalf := half.TotalWatts/1.2 - ioDriverWatts
	if math.Abs(dynHalf/dynBase-0.5) > 0.01 {
		t.Errorf("frequency scaling wrong: ratio %.3f", dynHalf/dynBase)
	}
}

func TestTableRenders(t *testing.T) {
	s := Table(Paper2006())
	for _, want := range []string{"Vbox", "Gflops/Watt", "Tarantula advantage"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestFMADoublesGflopsPerWatt(t *testing.T) {
	base := Model(Tarantula(), Paper2006())
	fma := Model(TarantulaFMA(), Paper2006())
	if fma.PeakGF != 160 {
		t.Fatalf("FMA peak = %v, want 160", fma.PeakGF)
	}
	ratio := fma.GFPerWatt / base.GFPerWatt
	// "could be doubled with very little extra complexity and power":
	// nearly 2x Gflops/W.
	if ratio < 1.8 || ratio > 2.0 {
		t.Fatalf("FMA Gflops/W gain = %.2fx, want ≈2x", ratio)
	}
}
